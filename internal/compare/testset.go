package compare

import "fmt"

// Robust two-pattern test generation for comparison units (Section 3.3).
//
// The generator reproduces the construction demonstrated in the paper's
// Figure 6 / Table 1 example:
//
//   - a free variable x_i gets its transition with the other free variables
//     at their fixed values and the block variables at L_F, keeping both
//     blocks steady at 1;
//   - a variable tested through the >=L block gets x_j = l_j for the
//     positions above it; below it, x_j = l_j when l_i = 1 (the chain must
//     hold steady 1 under an AND) and x_j = 0 when l_i = 0 (the chain must
//     hold steady 0 under an OR) — the "smallest possible decimal value that
//     propagates the transition";
//   - the <=U tests are the mirror image on the complemented literals.
//
// Every generated pair is a robust test: side inputs along the tested path
// are steady at non-controlling values whenever the on-path transition moves
// toward the controlling value (the delay package re-verifies this with its
// 5-valued simulation in the integration tests).

// BlockKind identifies which structure a tested path goes through.
type BlockKind int

// Path locations within a comparison unit.
const (
	FreePath BlockKind = iota // free variable -> output AND
	GeqPath                   // through the >=L block
	LeqPath                   // through the <=U block
)

func (b BlockKind) String() string {
	switch b {
	case FreePath:
		return "free"
	case GeqPath:
		return ">=L"
	case LeqPath:
		return "<=U"
	}
	return "?"
}

// UnitTest is a robust two-pattern test for one path delay fault of a unit.
type UnitTest struct {
	Input  int       // original (unpermuted) input index, 0-based
	Pos    int       // permuted position, 1-based (x_Pos)
	Block  BlockKind // structure the tested path goes through
	Rising bool      // transition direction at the unit input
	V1, V2 []bool    // the two patterns, indexed by original input
}

func (t UnitTest) String() string {
	dir := "1x0"
	if t.Rising {
		dir = "0x1"
	}
	return fmt.Sprintf("x%d %s %s", t.Pos, t.Block, dir)
}

// TestSet generates a complete robust test set for the unit: one rising and
// one falling test for every structural path from an input to the output.
// The number of tests is therefore exactly 2 * sum_i Kp(i).
func (s Spec) TestSet() []UnitTest {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	var tests []UnitTest
	f := s.FreeCount()
	for i := 1; i <= s.N; i++ {
		if i <= f {
			base := s.baseAssignment(func(j int) int { return s.lbit(j) })
			tests = s.appendPair(tests, i, FreePath, base)
			continue
		}
		if s.InGeq(i) {
			base := make([]int, s.N+1)
			for j := 1; j <= s.N; j++ {
				switch {
				case j < i:
					base[j] = s.lbit(j)
				case j > i && s.lbit(i) == 1:
					base[j] = s.lbit(j)
				case j > i:
					base[j] = 0
				}
			}
			tests = s.appendPair(tests, i, GeqPath, base)
		}
		if s.InLeq(i) {
			base := make([]int, s.N+1)
			for j := 1; j <= s.N; j++ {
				switch {
				case j < i:
					base[j] = s.ubit(j)
				case j > i && s.ubit(i) == 0:
					base[j] = s.ubit(j)
				case j > i:
					base[j] = 1
				}
			}
			tests = s.appendPair(tests, i, LeqPath, base)
		}
	}
	return tests
}

// baseAssignment builds a full positional assignment from a bit function.
func (s Spec) baseAssignment(bit func(int) int) []int {
	base := make([]int, s.N+1)
	for j := 1; j <= s.N; j++ {
		base[j] = bit(j)
	}
	return base
}

// appendPair adds the rising and falling tests for position i on top of the
// base positional assignment (base[i] is overridden by the transition).
func (s Spec) appendPair(tests []UnitTest, i int, block BlockKind, base []int) []UnitTest {
	for _, rising := range []bool{true, false} {
		v1 := make([]bool, s.N)
		v2 := make([]bool, s.N)
		for j := 1; j <= s.N; j++ {
			orig := s.Perm[j-1]
			if j == i {
				v1[orig] = !rising
				v2[orig] = rising
			} else {
				v1[orig] = base[j] == 1
				v2[orig] = base[j] == 1
			}
		}
		tests = append(tests, UnitTest{
			Input: s.Perm[i-1], Pos: i, Block: block, Rising: rising,
			V1: v1, V2: v2,
		})
	}
	return tests
}

// NumPathFaults returns the number of path delay faults in the unit:
// two (rising/falling) per structural input-to-output path.
func (s Spec) NumPathFaults() int {
	n := 0
	for i := 1; i <= s.N; i++ {
		n += s.Kp(i)
	}
	return 2 * n
}
