package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"compsynth/internal/circuit"
)

// Flags holds the runtime flags shared by every command:
//
//	-trace              record and print a span tree for the run
//	-metrics-out FILE   write the JSON run report to FILE
//	-v                  verbose progress on stderr
//	-listen ADDR        serve live telemetry (/metrics, /progress, /healthz,
//	                    /debug/pprof) on ADDR
//	-pprof ADDR         deprecated alias for -listen
//	-events FILE        stream NDJSON run events (flight recorder) to FILE
//	-heartbeat D        heartbeat snapshot interval for -events (0 disables)
//	-workers N          worker goroutines for the parallel phases
type Flags struct {
	Trace      bool
	Verbose    bool
	MetricsOut string
	PprofAddr  string

	// Listen serves the live telemetry endpoints on this address. The
	// server itself lives in the obs/telemetry subpackage (commands import
	// it for side effects); -pprof is kept as a deprecated alias and serves
	// the same mux.
	Listen string

	// Events streams NDJSON run events — span begin/end, throttled hot-loop
	// progress, periodic heartbeats — to this file while the run is live.
	Events string

	// Heartbeat is the -events snapshot interval (0 disables heartbeats).
	Heartbeat time.Duration

	// Workers is the shared worker-count option threaded into every
	// parallel engine (resynthesis, fault simulation, the experiment
	// driver). Results are bit-identical for every value; 1 disables all
	// fan-out. The default, GOMAXPROCS, uses all available CPUs.
	Workers int

	// Check enables circuit IR invariant validation (circuit.Check and the
	// paper's comparison-unit path bound) on the circuits a command reads
	// and produces, and after every resynthesis pass. Off by default: the
	// pipeline's outputs are byte-identical either way, -check only adds
	// failure detection.
	Check bool
}

// AddFlags registers the shared flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Trace, "trace", false, "record per-phase spans and print the span tree on exit")
	fs.BoolVar(&f.Verbose, "v", false, "verbose progress output on stderr")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON run report to this file")
	fs.StringVar(&f.Listen, "listen", "", "serve live telemetry (/metrics, /progress, /healthz, /debug/pprof) on this address (e.g. localhost:6060)")
	fs.StringVar(&f.PprofAddr, "pprof", "", "deprecated alias for -listen")
	fs.StringVar(&f.Events, "events", "", "stream NDJSON run events (flight recorder) to this file")
	fs.DurationVar(&f.Heartbeat, "heartbeat", time.Second, "heartbeat snapshot interval for -events (0 disables)")
	fs.IntVar(&f.Workers, "workers", runtime.GOMAXPROCS(0),
		"worker goroutines for parallel phases (results are identical for any value; 1 = serial)")
	fs.BoolVar(&f.Check, "check", false,
		"validate circuit IR invariants (acyclicity, arity, fanout consistency, comparison-unit path bound) on inputs, outputs and after every resynthesis pass")
	return f
}

// TelemetryServer is the handle Run.Finish uses to stop the -listen HTTP
// server gracefully. The obs/telemetry subpackage implements it.
type TelemetryServer interface {
	Addr() string
	Shutdown(ctx context.Context) error
}

// telemetryStart is installed by the obs/telemetry package's init. The
// indirection keeps the server (which imports obs for the registry and the
// span tree) out of obs's own import graph; commands blank-import
// compsynth/internal/obs/telemetry to link it in, mirroring how
// net/http/pprof registers itself.
var telemetryStart func(r *Run, addr string) (TelemetryServer, error)

// RegisterTelemetry installs the -listen server constructor.
func RegisterTelemetry(start func(r *Run, addr string) (TelemetryServer, error)) {
	telemetryStart = start
}

// Run bundles the live observability state of one tool invocation.
type Run struct {
	Tracer  *Tracer // nil unless -trace, -metrics-out, -events or -listen was given
	Log     *Logger
	Metrics *Metrics
	Report  *Report

	flags    Flags
	root     *Span
	base     Snapshot
	start    time.Time
	server   TelemetryServer
	recorder *Recorder
}

// Start builds the run state from the parsed flags. Failures to honor an
// explicitly requested facility — an -events file that cannot be created, a
// -listen address that cannot be bound — are reported unconditionally on
// stderr and exit the process with status 2: an artifact or endpoint the
// user asked for must never go missing silently.
func (f *Flags) Start(tool string) *Run {
	r, err := f.start(tool)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	return r
}

// start is Start with the error path exposed (for tests).
func (f *Flags) start(tool string) (*Run, error) {
	r := &Run{
		Log:     NewLogger(os.Stdout, os.Stderr, f.Verbose),
		Metrics: Default(),
		flags:   *f,
		start:   time.Now(),
	}
	listen := f.Listen
	if listen == "" {
		listen = f.PprofAddr
	}
	// The tracer doubles as the live span tree for /progress and the span
	// event source for -events, so any of those facilities enables it.
	if f.Trace || f.MetricsOut != "" || f.Events != "" || listen != "" {
		r.Tracer = NewTracer()
	}
	r.base = r.Metrics.Snapshot()
	r.Report = &Report{
		Tool:  tool,
		Args:  os.Args[1:],
		Start: r.start,
		Env:   Environment(),
	}
	if f.Events != "" {
		rec, err := NewRecorder(f.Events, f.Heartbeat, r.Metrics)
		if err != nil {
			return nil, fmt.Errorf("-events: %v", err)
		}
		r.recorder = rec
		rec.RunStart(tool, os.Args[1:])
		r.Tracer.SetObserver(rec)
		SetProgressSink(rec)
		r.Log.Verbosef("recording events to %s", f.Events)
	}
	if listen != "" {
		if telemetryStart == nil {
			r.closeRecorder()
			return nil, fmt.Errorf("-listen %s: telemetry server not linked in (import compsynth/internal/obs/telemetry)", listen)
		}
		srv, err := telemetryStart(r, listen)
		if err != nil {
			r.closeRecorder()
			return nil, fmt.Errorf("-listen %s: %v", listen, err)
		}
		r.server = srv
		r.Log.Verbosef("telemetry on http://%s/metrics (progress at /progress, pprof at /debug/pprof)", srv.Addr())
	}
	r.root = r.Tracer.StartSpan(tool)
	return r, nil
}

// Server returns the live telemetry server, or nil when -listen is off
// (tests use it to reach the bound address).
func (r *Run) Server() TelemetryServer { return r.server }

// CheckEnabled reports whether the run was started with -check; commands use
// it to thread per-pass validation into resynth.Options.Check and
// exper.Config.Check.
func (r *Run) CheckEnabled() bool { return r.flags.Check }

// CircuitBefore records (and verbosely logs) the input circuit.
func (r *Run) CircuitBefore(c *circuit.Circuit) {
	info := InfoOf(c)
	r.Report.CircuitBefore = &info
	r.Log.Verbosef("input %s: %v, paths %d", c.Name, c.Stats(), info.Paths)
}

// CircuitAfter records (and verbosely logs) the output circuit.
func (r *Run) CircuitAfter(c *circuit.Circuit) {
	info := InfoOf(c)
	r.Report.CircuitAfter = &info
	r.Log.Verbosef("output %s: %v, paths %d", c.Name, c.Stats(), info.Paths)
}

// CheckCircuit validates c's IR invariants — circuit.Check plus the paper's
// comparison-unit path bound — when the run was started with -check; without
// the flag it is a no-op. label names the circuit in the error ("input",
// "after resynthesis", ...). Parsed netlists may legitimately carry gates no
// output reads, so unreachable nodes are tolerated; the stricter post-
// optimizer sweep lives in resynth.Options.Check.
func (r *Run) CheckCircuit(label string, c *circuit.Circuit) error {
	if !r.flags.Check {
		return nil
	}
	sp := r.Tracer.StartSpan("check")
	defer sp.End()
	if err := circuit.CheckWith(c, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
		return fmt.Errorf("check %s circuit: %w", label, err)
	}
	if err := circuit.CheckComparisonUnits(c); err != nil {
		return fmt.Errorf("check %s circuit: %w", label, err)
	}
	r.Log.Verbosef("check %s circuit: ok", label)
	return nil
}

// closeRecorder detaches and closes the flight recorder, returning its
// first recording error.
func (r *Run) closeRecorder() error {
	if r.recorder == nil {
		return nil
	}
	SetProgressSink(nil)
	r.Tracer.SetObserver(nil)
	err := r.recorder.Close()
	r.recorder = nil
	return err
}

// Finish closes the root span, snapshots metrics into the report, prints
// the span tree under -trace, shuts the telemetry server down gracefully,
// closes the flight recorder, and writes the JSON report when requested.
// It returns the first artifact error (report or event stream); callers
// treat it as fatal so a missing artifact never passes silently.
func (r *Run) Finish() error {
	r.root.End()
	r.Report.DurationMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.Report.Spans = r.Tracer.Export()
	r.Report.Metrics = r.Metrics.Snapshot().Diff(r.base)
	if r.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := r.server.Shutdown(ctx); err != nil {
			r.Log.Verbosef("telemetry shutdown: %v", err)
		}
		cancel()
		r.server = nil
	}
	var firstErr error
	if r.recorder != nil {
		r.recorder.RunEnd(r.Report.DurationMS, r.Report.Error)
		if err := r.closeRecorder(); err != nil {
			firstErr = fmt.Errorf("-events: %v", err)
		}
	}
	if r.flags.Trace {
		r.Tracer.Dump(os.Stderr)
	}
	if r.Log.Verbose() {
		os.Stderr.WriteString(r.Report.Metrics.Format())
	}
	if r.flags.MetricsOut != "" {
		if err := r.Report.WriteFile(r.flags.MetricsOut); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			r.Log.Verbosef("wrote report %s", r.flags.MetricsOut)
		}
	}
	return firstErr
}

// Fail reports err, records it on the run report, and finishes the run —
// the -metrics-out report and the event stream are still written, carrying
// the error — then returns a non-zero status for os.Exit. Every command
// routes its post-Start failures through Fail so error runs leave the same
// artifacts as successful ones.
func (r *Run) Fail(err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", r.Report.Tool, err)
	r.Report.Error = err.Error()
	if ferr := r.Finish(); ferr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", r.Report.Tool, ferr)
	}
	return 1
}
