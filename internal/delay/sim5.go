// Package delay implements path delay fault analysis: 5-valued two-pattern
// simulation, robust sensitization checking (Lin-Reddy conditions), path
// enumeration, and random-pattern robust-coverage campaigns (Table 7).
package delay

import (
	"compsynth/internal/circuit"
)

// V5 is the 5-valued two-pattern signal algebra.
type V5 int8

// Signal values: S0/S1 are hazard-free stable values, R is a single rising
// transition (0x1), F a single falling transition (1x0), and XX covers
// hazards and unknowns.
const (
	S0 V5 = iota
	S1
	R
	F
	XX
)

func (v V5) String() string {
	switch v {
	case S0:
		return "000"
	case S1:
		return "111"
	case R:
		return "0x1"
	case F:
		return "1x0"
	}
	return "xxx"
}

// Initial returns the value under the first pattern (-1 if unknown).
func (v V5) Initial() int {
	switch v {
	case S0, R:
		return 0
	case S1, F:
		return 1
	}
	return -1
}

// Final returns the value under the second pattern (-1 if unknown).
func (v V5) Final() int {
	switch v {
	case S0, F:
		return 0
	case S1, R:
		return 1
	}
	return -1
}

// FromPair builds the value of a primary input from its two pattern bits.
func FromPair(v1, v2 bool) V5 {
	switch {
	case !v1 && !v2:
		return S0
	case v1 && v2:
		return S1
	case !v1 && v2:
		return R
	default:
		return F
	}
}

// Invert complements a value.
func (v V5) Invert() V5 {
	switch v {
	case S0:
		return S1
	case S1:
		return S0
	case R:
		return F
	case F:
		return R
	}
	return XX
}

// andV folds two values through an AND gate, conservatively mapping
// mixed-direction transitions (potential hazards) to XX.
func andV(a, b V5) V5 {
	if a == S0 || b == S0 {
		return S0
	}
	if a == S1 {
		return b
	}
	if b == S1 {
		return a
	}
	if a == XX || b == XX {
		return XX
	}
	if a == b {
		return a // R&R = R, F&F = F (monotone, hazard-free)
	}
	return XX // R & F: static-0 hazard
}

func orV(a, b V5) V5 {
	return andV(a.Invert(), b.Invert()).Invert()
}

func xorV(a, b V5) V5 {
	switch {
	case a == XX || b == XX:
		return XX
	case a == S0:
		return b
	case a == S1:
		return b.Invert()
	case b == S0:
		return a
	case b == S1:
		return a.Invert()
	default:
		return XX // two transitioning XOR inputs: timing unknown
	}
}

// EvalGate computes the 5-valued output of a gate type over input values.
func EvalGate(t circuit.GateType, in []V5) V5 {
	switch t {
	case circuit.Const0:
		return S0
	case circuit.Const1:
		return S1
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return in[0].Invert()
	case circuit.And, circuit.Nand:
		v := S1
		for _, x := range in {
			v = andV(v, x)
		}
		if t == circuit.Nand {
			return v.Invert()
		}
		return v
	case circuit.Or, circuit.Nor:
		v := S0
		for _, x := range in {
			v = orV(v, x)
		}
		if t == circuit.Nor {
			return v.Invert()
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := S0
		for _, x := range in {
			v = xorV(v, x)
		}
		if t == circuit.Xnor {
			return v.Invert()
		}
		return v
	}
	panic("delay: EvalGate on " + t.String())
}

// Sim5 simulates a two-pattern pair over the whole circuit, returning the
// value of every node.
func Sim5(c *circuit.Circuit, v1, v2 []bool) []V5 {
	val := make([]V5, len(c.Nodes))
	for j, in := range c.Inputs {
		val[in] = FromPair(v1[j], v2[j])
	}
	var buf []V5
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		buf = buf[:0]
		for _, f := range nd.Fanin {
			buf = append(buf, val[f])
		}
		val[id] = EvalGate(nd.Type, buf)
	}
	return val
}
