#!/usr/bin/env bash
# Tier-1 gate for the repository (see ROADMAP.md): formatting, vet, build and
# the full test suite under the race detector. Run from anywhere; exits
# non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== sftlint =="
# Repo-specific static analysis (cmd/sftlint, internal/lint): the syntactic
# rules (wall-clock and global-RNG bans in deterministic packages,
# map-iteration-order hazards, obs metric naming, par.Cache key types,
# circuit-node mutation discipline) plus the interprocedural rules on the
# whole-module call graph (purity of par task/cache/speculative seams,
# transitive wall-clock taint, unsynchronized goroutine-captured writes).
# Two directions: the tree must lint clean beyond the committed
# lint_baseline.json (new findings fail; stale baseline entries fail), and
# the injected-violation fixtures must still fail — a rule that silently
# stops firing is as bad as a dirty tree.
# Run the built binary, not "go run": go run collapses every non-zero exit
# to 1, and the fixture gates below must distinguish findings (1) from a
# load failure (2).
sftlint="$(mktemp)"
trap 'rm -f "$sftlint"' EXIT
go build -o "$sftlint" ./cmd/sftlint
# Tree gate. The SARIF artifact lands next to the run reports
# (BENCH_*.json) at the repo root; it records every finding including the
# baselined debt, and the output is byte-stable, so the committed copy only
# changes when the findings do.
"$sftlint" -baseline lint_baseline.json -sarif sftlint.sarif ./...
# Suppression-debt gate: the //lint:ordered///lint:speculative comment
# counts and the baselined-finding tally must match the counts pinned in
# lint_baseline.json — growing debt without a reviewed baseline update in
# the same commit fails here.
"$sftlint" -debt -baseline lint_baseline.json >/dev/null
set +e
"$sftlint" -det-all internal/lint/testdata/src/... >/dev/null 2>&1
sftlint_status=$?
set -e
if [ "$sftlint_status" -ne 1 ]; then
    echo "sftlint: fixture run exited $sftlint_status, want 1 (findings)" >&2
    exit 1
fi
# Per-rule must-fail gates for the interprocedural rules: each rule is run
# alone against its dedicated fixture so a rule that stops firing cannot
# hide behind the others' findings in the combined run above.
for gate in wallclock:badwallflow purity:badpurity sharedmut:badsharedmut; do
    rule="${gate%%:*}"
    fixture="${gate##*:}"
    set +e
    "$sftlint" -det-all -rules "$rule" "internal/lint/testdata/src/$fixture" >/dev/null 2>&1
    rule_status=$?
    set -e
    if [ "$rule_status" -ne 1 ]; then
        echo "sftlint: rule $rule on $fixture exited $rule_status, want 1 (findings)" >&2
        exit 1
    fi
done

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
# A few seconds of parser fuzzing (FuzzParseBench): replays the committed
# corpus (including past crashers) and hunts briefly for new ones. Accepted
# netlists must pass circuit.Check and round-trip through the writer.
go test ./internal/bench -fuzz FuzzParseBench -fuzztime 5s -run '^$' >/dev/null
# Same budget for the frozen-CSR invariant fuzzer: every accepted netlist is
# run through a mutation script with an incremental Freeze + deep audit
# against a from-scratch rebuild after each step.
go test ./internal/bench -fuzz FuzzCSRFreeze -fuzztime 5s -run '^$' >/dev/null
# And for the sharded-resynthesis planner: the region partition must be a
# disjoint cover with contained footprints on every accepted netlist, and a
# sharded pass must match the serial sweep byte for byte.
go test ./internal/bench -fuzz FuzzRegionPartition -fuzztime 5s -run '^$' >/dev/null

echo "== bench smoke =="
# One iteration of every benchmark, no measurement: catches benches that no
# longer compile or fail at runtime without paying for a real sweep (full
# sweeps are scripts/bench.sh).
go test -bench . -benchtime 1x -run '^$' ./...

echo "== obsdiff smoke =="
# Regenerate the adder4 run report and diff it against the committed golden
# (internal/obsdiff/testdata). The pipeline is deterministic, so every
# counter, span count and circuit stat must match exactly (tolerance 0);
# wall-clock quantities get a huge tolerance because machines differ. The
# worker count is pinned to the golden's. A drifted counter or a grown
# circuit fails CI here; the injected-regression direction of the gate is
# covered by the internal/obsdiff tests.
fresh="$(mktemp)"
trap 'rm -f "$sftlint" "$fresh"' EXIT
go run ./cmd/sft -in circuits/adder4.bench -report -workers 2 \
    -metrics-out "$fresh" >/dev/null
go run ./cmd/obsdiff -tol 0 -tol-time 100 \
    internal/obsdiff/testdata/golden_report.json "$fresh"
# Parser sanity on the committed bench baselines (self-diff must be clean).
go run ./cmd/obsdiff BENCH_2026-08-06.json BENCH_2026-08-06.json >/dev/null
go run ./cmd/obsdiff BENCH_2026-08-06_lean.json BENCH_2026-08-06_lean.json >/dev/null
go run ./cmd/obsdiff BENCH_2026-08-08_csr.json BENCH_2026-08-08_csr.json >/dev/null
go run ./cmd/obsdiff BENCH_2026-08-08_sharded.json BENCH_2026-08-08_sharded.json >/dev/null

echo "== bench gate =="
# Re-measure the resynthesis/identification benchmark set and diff against
# the committed baseline (BENCH_2026-08-06_lean.json, recorded by
# scripts/bench.sh with the same pattern/benchtime). Allocation metrics are
# deterministic — measured run-to-run drift is <1% (sync.Pool refills under
# GC timing) — so allocs/op is gated at 1%: an optimization-killing change
# cannot hide. Wall-clock ns/op on a shared single-CPU container is only
# an order-of-magnitude signal: identical binaries measured 97-235us/op on
# the microsecond-scale identify bench (2.4x spread under CI load), so the
# default ns/op tolerance is 100% — it catches complexity-class blowups,
# which is all this hardware can resolve. Tighten on a quiet dedicated
# machine with e.g. BENCH_TOL_NS=0.10 scripts/ci.sh.
benchgate="$(mktemp)"
trap 'rm -f "$sftlint" "$fresh" "$benchgate"' EXIT
scripts/bench.sh 'Table2Procedure2|ResynthParallel|AblationIdentify' 1 "$benchgate" 20x >/dev/null
go run ./cmd/obsdiff -tol-bench "${BENCH_TOL_NS:-1.0}" -tol-alloc 0.01 \
    BENCH_2026-08-06_lean.json "$benchgate"

echo "== CSR bench gate =="
# Same contract for the frozen-CSR phase benches (BENCH_2026-08-08_csr.json):
# the csr variants of the path-count and fault-sim benches must hold their
# allocation profile (0 and 3 allocs/op — an order of magnitude below the
# map variants kept alongside as Ref* references), and the incremental
# CSRRebuild must stay allocation-free. A change that quietly un-ports a
# phase back to map lookups, or makes Freeze allocate per patch, trips the
# 1% allocs gate here. The ns/op tolerance is wider than the main gate's:
# this set includes microsecond-scale benches (path count ~6us/op) whose
# wall clock swings >2x under CI load, so only allocations are a reliable
# signal at this scale.
csrgate="$(mktemp)"
trap 'rm -f "$sftlint" "$fresh" "$benchgate" "$csrgate"' EXIT
scripts/bench.sh 'CSR(Full)?Rebuild|PathCountProcedure1|FaultSimulation$' 1 "$csrgate" 20x \
    . ./internal/circuit >/dev/null
go run ./cmd/obsdiff -tol-bench "${BENCH_TOL_NS_CSR:-4.0}" -tol-alloc 0.01 \
    BENCH_2026-08-08_csr.json "$csrgate"

echo "== sharded bench gate =="
# The region-sharded sweep's allocation profile (speculation buffers,
# footprint scratch, queue rounds) is pinned the same way: re-measure
# BenchmarkResynthSharded and hold allocs/op to 1% of the committed
# BENCH_2026-08-08_sharded.json baseline. On this single-CPU host the
# sharded sweep cannot win wall-clock — the gate is that its bookkeeping
# stays cheap, with ns/op once more only an order-of-magnitude backstop.
shardgate="$(mktemp)"
trap 'rm -f "$sftlint" "$fresh" "$benchgate" "$csrgate" "$shardgate"' EXIT
scripts/bench.sh 'ResynthSharded' 1 "$shardgate" 20x >/dev/null
go run ./cmd/obsdiff -tol-bench "${BENCH_TOL_NS:-1.0}" -tol-alloc 0.01 \
    BENCH_2026-08-08_sharded.json "$shardgate"

echo "== sftverify gate =="
# Provenance round trip, both directions (README "Provenance & verification").
# Forward: a fresh c17 run recorded with -events/-cert must replay cleanly
# through sftverify (chain, Merkle roots, circuit digests, equivalence
# witness, per-replacement evidence, path proof — exit 0). Reverse: the
# committed tampered stream (one flipped digit mid-record) must be rejected
# with exit 1, distinguished from a usage/IO failure (2). Built binaries,
# not "go run", for the same exit-code reason as the sftlint gate.
provdir="$(mktemp -d)"
trap 'rm -f "$sftlint" "$fresh" "$benchgate" "$csrgate" "$shardgate"; rm -rf "$provdir"' EXIT
go build -o "$provdir/sft" ./cmd/sft
go build -o "$provdir/sftverify" ./cmd/sftverify
"$provdir/sft" -in circuits/c17.bench -out "$provdir/c17_out.bench" \
    -events "$provdir/c17.ndjson" -cert "$provdir/c17.cert.json" \
    -heartbeat 0 -workers 2 >/dev/null
"$provdir/sftverify" -ledger "$provdir/c17.ndjson" -cert "$provdir/c17.cert.json" \
    -in circuits/c17.bench -out "$provdir/c17_out.bench" >/dev/null
set +e
"$provdir/sftverify" -ledger internal/ledger/testdata/tampered_c17.ndjson >/dev/null
sftverify_status=$?
set -e
if [ "$sftverify_status" -ne 1 ]; then
    echo "sftverify: tampered fixture exited $sftverify_status, want 1 (verification failure)" >&2
    exit 1
fi
# Certificates are a pure function of input + options: two runs with
# different machine knobs (-workers) must produce byte-identical files.
"$provdir/sft" -in circuits/adder4.bench -cert "$provdir/a1.json" \
    -heartbeat 0 -workers 2 >/dev/null
"$provdir/sft" -in circuits/adder4.bench -cert "$provdir/a2.json" \
    -heartbeat 0 -workers 4 >/dev/null
cmp "$provdir/a1.json" "$provdir/a2.json"

echo "== sftexplain gate =="
# The decision trace is part of the determinism contract: records are
# emitted only from the serial sweep and carry no scheduling-dependent
# fields, so two -dtrace=full runs differing only in -workers must export
# byte-identical canonical record streams. The query surface (why, reasons,
# funnel, diff) must answer over a real c17 trace without error; 22 is a
# c17 primary-output NAND. See README "Decision trace (-dtrace)".
go build -o "$provdir/sftexplain" ./cmd/sftexplain
"$provdir/sft" -in circuits/c17.bench -events "$provdir/dt2.ndjson" \
    -dtrace=full -heartbeat 0 -workers 2 >/dev/null
"$provdir/sft" -in circuits/c17.bench -events "$provdir/dt4.ndjson" \
    -dtrace=full -heartbeat 0 -workers 4 >/dev/null
"$provdir/sftexplain" export "$provdir/dt2.ndjson" > "$provdir/dt2.records"
"$provdir/sftexplain" export "$provdir/dt4.ndjson" > "$provdir/dt4.records"
test -s "$provdir/dt2.records"
cmp "$provdir/dt2.records" "$provdir/dt4.records"
"$provdir/sftexplain" why 22 "$provdir/dt2.ndjson" >/dev/null
"$provdir/sftexplain" reasons "$provdir/dt2.ndjson" >/dev/null
"$provdir/sftexplain" funnel "$provdir/dt2.ndjson" >/dev/null
"$provdir/sftexplain" reasons -pass 1 "$provdir/dt2.ndjson" >/dev/null
"$provdir/sftexplain" funnel -pass 1 "$provdir/dt2.ndjson" >/dev/null
"$provdir/sftexplain" diff "$provdir/dt2.ndjson" "$provdir/dt4.ndjson" >/dev/null

echo "== sharded determinism gate =="
# The region-sharded sweep (-shard) is a machine knob like -workers: the
# optimized netlist, the run certificate (a pure function of input +
# semantic options; these runs carry no -events), and the canonical
# decision-record stream must be byte-identical to the serial sweep at
# every worker count. A scheduling leak anywhere in the
# speculate/validate/commit pipeline fails one of these cmps.
for cir in c17 adder4; do
    "$provdir/sft" -in "circuits/$cir.bench" -out "$provdir/${cir}_serial.bench" \
        -cert "$provdir/${cir}_serial.cert.json" -heartbeat 0 -workers 1 >/dev/null
    for w in 1 2 4; do
        "$provdir/sft" -in "circuits/$cir.bench" -shard -workers "$w" \
            -out "$provdir/${cir}_shard_w$w.bench" \
            -cert "$provdir/${cir}_shard_w$w.cert.json" -heartbeat 0 >/dev/null
        cmp "$provdir/${cir}_serial.bench" "$provdir/${cir}_shard_w$w.bench"
        cmp "$provdir/${cir}_serial.cert.json" "$provdir/${cir}_shard_w$w.cert.json"
    done
done
# Decision traces too: a sharded -dtrace=full run must export exactly the
# record stream the serial runs in the sftexplain gate produced.
"$provdir/sft" -in circuits/c17.bench -events "$provdir/dts.ndjson" \
    -dtrace=full -shard -heartbeat 0 -workers 4 >/dev/null
"$provdir/sftexplain" export "$provdir/dts.ndjson" > "$provdir/dts.records"
cmp "$provdir/dt2.records" "$provdir/dts.records"

echo "== staleness =="
# The committed experiment outputs must match what the tree regenerates.
# figures_output.txt is fully deterministic and fast, so it is always
# checked. tables_output.txt (go run ./cmd/tables -scale 0.15, ~4 min) is
# gated behind CI_TABLES=1; its "# suite ready in ..."/"# table N in ..."/
# "# total ..." timing lines are wall-clock and filtered from both sides.
go run ./cmd/figures > "$provdir/figures.txt"
diff figures_output.txt "$provdir/figures.txt"
if [ "${CI_TABLES:-0}" = "1" ]; then
    go run ./cmd/tables -scale 0.15 > "$provdir/tables.txt"
    filter_times() { grep -vE '^# (suite ready in|table [0-9] in|total )' "$1"; }
    diff <(filter_times tables_output.txt) <(filter_times "$provdir/tables.txt")
fi

echo "ci: all checks passed"
