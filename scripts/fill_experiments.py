#!/usr/bin/env python3
"""Splice a cmd/tables run into EXPERIMENTS.md.

Usage: python3 scripts/fill_experiments.py tables_output.txt
"""
import re
import sys


def main():
    src = open(sys.argv[1]).read()
    md = open("EXPERIMENTS.md").read()

    suite = "\n".join(l for l in src.splitlines() if l.startswith("#   ")) or "(missing)"
    md = md.replace("<!-- SUITE -->", "```\n" + suite + "\n```")

    def grab(title, stop):
        m = re.search(re.escape(title) + r".*?(?=" + re.escape(stop) + ")", src, re.S)
        return m.group(0).rstrip() if m else "(table missing from run)"

    md = md.replace("<!-- TABLE2 -->", "```\n" + grab("Table 2:", "# table 2") + "\n```")
    md = md.replace("<!-- TABLE3 -->", "```\n" + grab("Table 3:", "# table 3") + "\n```")
    md = md.replace("<!-- TABLE4 -->", "```\n" + grab("Table 4(a):", "# table 4") + "\n```")
    md = md.replace("<!-- TABLE5 -->", "```\n" + grab("Table 5:", "# table 5") + "\n```")
    md = md.replace("<!-- TABLE6 -->", "```\n" + grab("Table 6:", "# table 6") + "\n```")
    md = md.replace("<!-- TABLE7 -->", "```\n" + grab("Table 7:", "# table 7") + "\n```")

    scale = re.search(r"scale=([0-9.]+)", src)
    total = re.search(r"# total (.+)", src)
    header = (
        "Recorded run: `go run ./cmd/tables -scale %s` "
        "(wall clock %s, single core).\n" % (
            scale.group(1) if scale else "?",
            total.group(1) if total else "?",
        )
    )
    md = md.replace(
        "Reproduction commands:",
        header + "\nReproduction commands:",
        1,
    )
    open("EXPERIMENTS.md", "w").write(md)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
