package logic

import "compsynth/internal/digest"

// Key is a fixed-size, comparable identity for a truth table, built so the
// hot identification caches never allocate a string per lookup:
//
//   - n <= 6 (one word): the key embeds the word itself, so it is EXACT —
//     two tables share a key iff they are the same function. Every
//     subcircuit at the paper's K = 5..6 lands here.
//   - n >= 7: the key is a 128-bit digest of the word slice. Collisions are
//     possible in principle but need ~2^64 distinct functions to become
//     likely, far beyond any enumeration this system performs.
//
// N participates in the key, so equal bit patterns over different variable
// counts never collide. Keys are deterministic across processes (the digest
// is seedless), which lets sampling-mode RNG seeds be derived from them.
type Key struct {
	N      int32
	Lo, Hi uint64
}

// Key returns the table's cache key. It performs no allocation.
func (t TT) Key() Key {
	if t.n <= 6 {
		return Key{N: int32(t.n), Lo: t.words[0]}
	}
	d := digest.New().Words(t.words)
	return Key{N: int32(t.n), Lo: d.Lo, Hi: d.Hi}
}

// Seed folds the key and a base seed into a deterministic RNG seed: a pure
// function of (base, function), independent of visit order and worker
// count, as required by sampling-mode identification under the concurrent
// prefetch.
func (k Key) Seed(base int64) int64 {
	return int64(digest.New().Word(uint64(base)).Word(uint64(k.N)).Word(k.Lo).Word(k.Hi).Sum64())
}
