package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The three interprocedural rules, run on the whole-module call graph:
//
//	purity    - every function handed to a par fan-out primitive (Run, Map,
//	            MapErr, Queue.Drain), a par.Cache.GetOrCompute compute
//	            argument, or annotated //lint:speculative must be
//	            transitively free of unguarded writes to shared state,
//	            wall-clock/global-RNG reads (in deterministic packages), and
//	            — for speculative seams — mutating circuit.Circuit calls.
//	wallclock - (transitive extension of the syntactic rule) taint from
//	            time.Now / the global math/rand surface propagates through
//	            module calls into deterministic packages; calls into the
//	            observability packages are sanitizers, par.SetClock is a
//	            boundary.
//	sharedmut - variables captured (or globals reached) by goroutine-
//	            spawning closures and written without a sync/channel/atomic
//	            barrier; the static screen complementing the -race tests.
//
// Every finding carries a call-path witness: seam -> call chain -> sink.

// entrySeam is one function whose whole call tree the purity rule verifies.
type entrySeam struct {
	node *fnode
	seam string    // label: "par.Run task", "//lint:speculative function", ...
	pos  token.Pos // the seam site: where the function is handed over/declared
	pkg  *Package  // package owning the seam site (diagnostic placement)
}

var seamLabels = map[string]string{
	"Run":          "par.Run task",
	"Map":          "par.Map task",
	"MapErr":       "par.MapErr task",
	"Drain":        "par.Queue.Drain task",
	"GetOrCompute": "par.Cache.GetOrCompute compute",
}

// analyzeInterproc builds the call graph over everything the loader has
// type-checked and runs the interprocedural rules, reporting only on the
// requested packages.
func analyzeInterproc(l *Loader, requested []*Package, cfg Config) []Diagnostic {
	needed := cfg.ruleEnabled("purity") || cfg.ruleEnabled("wallclock") || cfg.ruleEnabled("sharedmut")
	if !needed {
		return nil
	}
	g := buildGraph(l)
	closeParamMut(g)

	req := map[*Package]bool{}
	for _, p := range requested {
		req[p] = true
	}
	ir := &interprocRunner{g: g, l: l, cfg: cfg, req: req}

	if cfg.ruleEnabled("purity") {
		ir.purity()
	}
	if cfg.ruleEnabled("wallclock") {
		ir.wallclockTransitive()
	}
	if cfg.ruleEnabled("sharedmut") {
		ir.sharedmut()
	}
	return ir.diags
}

type interprocRunner struct {
	g     *graph
	l     *Loader
	cfg   Config
	req   map[*Package]bool
	diags []Diagnostic
}

// posf formats a position as file:line (absolute; Analyze relativizes).
func (ir *interprocRunner) posf(pos token.Pos) string {
	p := ir.l.fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

func (ir *interprocRunner) report(pos token.Pos, rule, id string, witness []string, format string, args ...any) {
	position := ir.l.fset.Position(pos)
	ir.diags = append(ir.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Msg:     fmt.Sprintf(format, args...),
		ID:      id,
		Witness: witness,
	})
}

// ---------------------------------------------------------------------------
// purity

// collectEntries finds every seam: functions handed to par fan-out/cache
// primitives from requested packages, plus //lint:speculative declarations.
// par's own internal wrapper closures are excluded — the pool machinery is
// the seam, and it is covered at the outer call sites.
func (ir *interprocRunner) collectEntries() []entrySeam {
	parPath := ir.l.ModPath + "/internal/par"
	var entries []entrySeam
	seen := map[string]bool{}
	add := func(e entrySeam) {
		key := fmt.Sprintf("%d/%s", e.node.id, e.seam)
		if !seen[key] {
			seen[key] = true
			entries = append(entries, e)
		}
	}
	for _, u := range ir.g.nodes {
		if !ir.req[u.pkg] || u.pkg.Path == parPath {
			continue
		}
		for _, site := range u.calls {
			if !site.boundary {
				continue
			}
			callee := site.ext
			if callee == nil && len(site.callees) == 1 {
				callee = site.callees[0].obj
			}
			if callee == nil {
				continue
			}
			label, isSeam := seamLabels[callee.Name()]
			if !isSeam {
				continue
			}
			for _, fa := range site.funcArgs {
				refs := []funcRef{fa.ref}
				if fa.varObj != nil {
					refs = ir.g.assigns[fa.varObj]
				}
				for _, ref := range refs {
					if ref.node != nil {
						add(entrySeam{node: ref.node, seam: label, pos: site.pos, pkg: u.pkg})
					}
				}
			}
		}
	}
	for _, n := range ir.g.nodes {
		if n.speculative && n.decl != nil && ir.req[n.pkg] && n.pkg.Path != parPath {
			add(entrySeam{node: n, seam: "//lint:speculative function", pos: n.pos, pkg: n.pkg})
		}
	}
	// Deterministic report order: by seam position, then entry name.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].pos != entries[j].pos {
			return entries[i].pos < entries[j].pos
		}
		return entries[i].node.name < entries[j].node.name
	})
	return entries
}

func (ir *interprocRunner) purity() {
	for _, e := range ir.collectEntries() {
		if e.seam == "//lint:speculative function" {
			ir.puritySpeculative(e)
		} else {
			ir.purityTask(e)
		}
	}
}

// sharedForEntry decides whether an operand root is shared across tasks of
// this entry. Globals always are. A captured variable is shared only when
// the capture crosses the entry's own boundary: the entry closure (and
// literals lexically nested in it) capturing coordinator state. Deeper in
// the call tree, captured variables belong to activation records created
// per task, hence private — with the known imprecision that a closure
// created elsewhere and reached through a stored function value is trusted.
func sharedForEntry(e entrySeam, u *fnode, kind rootKind, obj interface{ Pos() token.Pos }) bool {
	switch kind {
	case rootGlobal:
		return true
	case rootCaptured:
		if u != e.node && !(u.lit != nil && u.pos >= e.node.pos && u.end <= e.node.end) {
			return false
		}
		return obj == nil || obj.Pos() < e.node.pos || obj.Pos() > e.node.end
	}
	return false
}

// purityTask checks one pool/cache entry: its whole reachable call tree
// (stopping at par boundaries, observability calls and speculative seams)
// must not write shared state, read the clock (deterministic packages), or
// perform unverifiable dynamic calls on shared values.
func (ir *interprocRunner) purityTask(e entrySeam) {
	order, parents := reachFrom(e.node, reachOpts{})
	det := ir.cfg.deterministic(e.pkg.Path, ir.l.ModPath)
	seenDesc := map[string]bool{}

	emit := func(u *fnode, pos token.Pos, desc string) {
		if seenDesc[desc] {
			return
		}
		seenDesc[desc] = true
		w := ir.witness(e, u, parents, pos, desc)
		id := fmt.Sprintf("purity/%s/%08x", e.node.name, fnv32a(desc))
		ir.report(e.pos, "purity", id, w,
			"%s %s is impure: %s — tasks run concurrently and must only touch task-indexed or properly synchronized state (see witness)",
			e.seam, e.node.name, desc)
	}

	for _, u := range order {
		if det {
			for _, f := range u.clockReads {
				emit(u, f.pos, f.desc+" (wall-clock/global-RNG read)")
			}
		}
		for _, f := range u.globalWrites {
			emit(u, f.pos, f.desc)
		}
		if u == e.node || (u.lit != nil && u.pos >= e.node.pos && u.end <= e.node.end) {
			for _, f := range u.capturedWrites {
				if f.obj == nil || f.obj.Pos() < e.node.pos || f.obj.Pos() > e.node.end {
					emit(u, f.pos, f.desc)
				}
			}
		}
		for _, site := range u.calls {
			if site.boundary || site.sanitized || site.guarded {
				continue
			}
			for ai, arg := range site.args {
				i := ai
				if site.calleeRooted {
					if ai == 0 {
						continue
					}
					i = ai - 1
				}
				if sharedForEntry(e, u, arg.kind, arg.obj) && calleeMutatesArg(site, i) {
					emit(u, site.pos, fmt.Sprintf("call mutates %s %s", arg.kind, objName(arg.obj)))
				}
			}
			if site.dynamic && len(site.callees) == 0 && len(site.args) > 0 {
				arg := site.args[0]
				if (site.calleeRooted || site.ext != nil) && sharedForEntry(e, u, arg.kind, arg.obj) {
					what := "function value"
					if site.ext != nil {
						what = "interface method " + site.ext.Name()
					}
					emit(u, site.pos, fmt.Sprintf("unresolvable dynamic call (%s) on %s %s", what, arg.kind, objName(arg.obj)))
				}
			}
		}
	}
}

// puritySpeculative checks one //lint:speculative seam: the function runs
// concurrently against a shared circuit snapshot, so its whole call tree
// must not mutate the circuit, write globals unguarded, or (in
// deterministic packages) read the clock. Parameter-rooted mutation is
// allowed — speculative evaluators buffer results through their own
// arguments, and the serial commit phase owns them.
func (ir *interprocRunner) puritySpeculative(e entrySeam) {
	order, parents := reachFrom(e.node, reachOpts{intoSpeculative: true})
	det := ir.cfg.deterministic(e.pkg.Path, ir.l.ModPath)
	seenDesc := map[string]bool{}

	emit := func(u *fnode, pos token.Pos, desc string) {
		if seenDesc[desc] {
			return
		}
		seenDesc[desc] = true
		w := ir.witness(e, u, parents, pos, desc)
		id := fmt.Sprintf("purity/%s/%08x", e.node.name, fnv32a(desc))
		ir.report(e.pos, "purity", id, w,
			"%s %s is impure: %s — speculative code runs concurrently against a shared snapshot (see witness)",
			e.seam, e.node.name, desc)
	}

	for _, u := range order {
		if det {
			for _, f := range u.clockReads {
				emit(u, f.pos, f.desc+" (wall-clock/global-RNG read)")
			}
		}
		for _, f := range u.globalWrites {
			emit(u, f.pos, f.desc)
		}
		if u != e.node && !(u.lit != nil && u.pos >= e.node.pos && u.end <= e.node.end) {
			// Circuit mutations lexically inside the annotated body are the
			// syntactic nodemut rule's findings; the interprocedural layer
			// adds the ones hidden behind calls.
			for _, f := range u.circuitCalls {
				emit(u, f.pos, f.desc+" (mutating circuit method)")
			}
		}
	}
}

// witness renders the call-path: seam -> call chain -> sink.
func (ir *interprocRunner) witness(e entrySeam, sink *fnode, parents map[*fnode]parentEdge, pos token.Pos, desc string) []string {
	w := []string{fmt.Sprintf("seam %s: %s is %s", ir.posf(e.pos), e.node.name, e.seam)}
	for _, st := range witnessTo(sink, parents) {
		w = append(w, fmt.Sprintf("calls %s at %s", st.name, ir.posf(st.pos)))
	}
	w = append(w, fmt.Sprintf("sink %s: %s", ir.posf(pos), desc))
	return w
}

// ---------------------------------------------------------------------------
// wallclock, transitive

// wallclockTransitive flags declared functions in deterministic requested
// packages whose call chains reach a wall-clock fact, and calls through
// function values that resolve to a clock source. Direct reads are the
// syntactic rule's findings and are not duplicated here.
func (ir *interprocRunner) wallclockTransitive() {
	reach, hops := clockReachability(ir.g)
	for _, n := range ir.g.nodes {
		if n.decl == nil || !ir.req[n.pkg] || n.speculative {
			continue
		}
		if !ir.cfg.deterministic(n.pkg.Path, ir.l.ModPath) {
			continue
		}
		direct := false
		for _, f := range n.clockReads {
			if f.indirect {
				id := fmt.Sprintf("wallclock/%s/%08x", n.name, fnv32a(f.desc))
				ir.report(f.pos, "wallclock", id,
					[]string{fmt.Sprintf("sink %s: %s", ir.posf(f.pos), f.desc)},
					"%s in deterministic package %s: %s — results must be a pure function of (inputs, options, seed)",
					n.name, n.pkg.Name, f.desc)
			} else {
				direct = true
			}
		}
		if direct || len(n.clockReads) > 0 {
			continue // direct reads are the syntactic rule's findings
		}
		if !reach[n.id] || hops[n.id].next == nil {
			continue
		}
		// Follow the shortest-hop chain to the sink for the witness.
		var w []string
		cur := n
		for hops[cur.id].next != nil {
			h := hops[cur.id]
			w = append(w, fmt.Sprintf("calls %s at %s", h.next.name, ir.posf(h.site.pos)))
			cur = h.next
		}
		sink := cur.clockReads[0]
		w = append(w, fmt.Sprintf("sink %s: %s", ir.posf(sink.pos), sink.desc))
		id := fmt.Sprintf("wallclock/%s/transitive", n.name)
		ir.report(hops[n.id].site.pos, "wallclock", id, w,
			"%s in deterministic package %s reaches %s through the call graph — results must be a pure function of (inputs, options, seed)",
			n.name, n.pkg.Name, sink.desc)
	}
}

// ---------------------------------------------------------------------------
// sharedmut

// sharedmut flags goroutine-spawned functions that write state shared with
// the spawning side without a barrier. The check is one call level deep by
// design: raw go statements in this repository hand off either to
// self-contained loops or through channels, and deep fan-out goes through
// par, whose seams the purity rule verifies exhaustively.
func (ir *interprocRunner) sharedmut() {
	for _, u := range ir.g.nodes {
		if !ir.req[u.pkg] {
			continue
		}
		for _, site := range u.calls {
			if !site.spawned {
				continue
			}
			for _, t := range site.callees {
				ir.checkSpawned(u, site, t)
			}
			// A named function spawned with shared operands that it writes
			// through races the same way a captured write does.
			if !site.guarded {
				for ai, arg := range site.args {
					if (arg.kind == rootCaptured || arg.kind == rootGlobal) && calleeMutatesArg(site, ai) {
						id := fmt.Sprintf("sharedmut/%s/%08x", u.name, fnv32a(objName(arg.obj)))
						ir.report(site.pos, "sharedmut", id,
							[]string{fmt.Sprintf("go statement %s in %s", ir.posf(site.pos), u.name),
								fmt.Sprintf("sink %s: spawned call mutates %s %s", ir.posf(site.pos), arg.kind, objName(arg.obj))},
							"goroutine spawned in %s mutates %s %s without a sync/channel/atomic barrier",
							u.name, arg.kind, objName(arg.obj))
					}
				}
			}
		}
	}
}

func (ir *interprocRunner) checkSpawned(u *fnode, site *callSite, t *fnode) {
	emit := func(pos token.Pos, desc string) {
		id := fmt.Sprintf("sharedmut/%s/%08x", u.name, fnv32a(desc))
		ir.report(pos, "sharedmut", id,
			[]string{fmt.Sprintf("go statement %s in %s spawns %s", ir.posf(site.pos), u.name, t.name),
				fmt.Sprintf("sink %s: %s", ir.posf(pos), desc)},
			"goroutine %s (spawned in %s): %s without a sync/channel/atomic barrier — one side writes while the other reads",
			t.name, u.name, desc)
	}
	for _, f := range t.capturedWrites {
		emit(f.pos, f.desc)
	}
	for _, f := range t.globalWrites {
		emit(f.pos, f.desc)
	}
	for _, s2 := range t.calls {
		if s2.guarded || s2.boundary || s2.sanitized {
			continue
		}
		for ai, arg := range s2.args {
			i := ai
			if s2.calleeRooted {
				if ai == 0 {
					continue
				}
				i = ai - 1
			}
			if (arg.kind == rootCaptured || arg.kind == rootGlobal) && calleeMutatesArg(s2, i) {
				emit(s2.pos, fmt.Sprintf("call mutates %s %s", arg.kind, objName(arg.obj)))
			}
		}
	}
}

// fnv32a is FNV-1a over a string, used for stable, line-independent
// diagnostic IDs.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// relativizeWitness rewrites absolute paths in witness lines.
func relativizeWitness(w []string, root string) []string {
	if root == "" || len(w) == 0 {
		return w
	}
	out := make([]string, len(w))
	for i, s := range w {
		out[i] = strings.ReplaceAll(s, root+"/", "")
	}
	return out
}
