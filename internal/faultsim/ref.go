package faultsim

import (
	"math/rand"

	"compsynth/internal/circuit"
	"compsynth/internal/faults"
)

// Pre-CSR fault simulator, kept as the executable reference: per-sparse-node
// state, cached topological order, pointer-chasing fanin reads, serial
// detection, fresh allocations per campaign. The determinism tests pin
// Campaign == RefCampaign word for word, and the benchmark suite reports
// both. No metrics are emitted here, so reference runs never perturb the
// counters the real pipeline reports.
type refSimulator struct {
	c       *circuit.Circuit
	topo    []int
	pos     []int
	good    []uint64
	cur     []uint64
	dirty   []bool
	touched []int
	inQueue []bool
	queue   []int
	buf     []uint64
	poMask  map[int]bool
}

func newRefSimulator(c *circuit.Circuit) *refSimulator {
	topo := c.Topo()
	pos := make([]int, len(c.Nodes))
	for i, id := range topo {
		pos[id] = i
	}
	po := map[int]bool{}
	for _, o := range c.Outputs {
		po[o] = true
	}
	c.RebuildFanouts()
	return &refSimulator{
		c: c, topo: topo, pos: pos,
		good:    make([]uint64, len(c.Nodes)),
		cur:     make([]uint64, len(c.Nodes)),
		dirty:   make([]bool, len(c.Nodes)),
		inQueue: make([]bool, len(c.Nodes)),
		poMask:  po,
	}
}

func (s *refSimulator) setInputs(words []uint64) {
	for j, in := range s.c.Inputs {
		s.good[in] = words[j]
	}
}

func (s *refSimulator) runGood() {
	for _, id := range s.topo {
		nd := s.c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range nd.Fanin {
			s.buf = append(s.buf, s.good[f])
		}
		s.good[id] = nd.Type.EvalWords(s.buf)
	}
}

func (s *refSimulator) detectWord(f faults.Fault) uint64 {
	var detected uint64
	s.queue = s.queue[:0]

	inject := func(id int, w uint64) {
		if w == s.good[id] && !s.dirty[id] {
			return
		}
		s.cur[id] = w
		if !s.dirty[id] {
			s.dirty[id] = true
			s.touched = append(s.touched, id)
		}
		if s.poMask[id] {
			detected |= w ^ s.good[id]
		}
		for _, consumer := range s.c.Fanouts(id) {
			s.push(consumer)
		}
	}

	faultyWord := uint64(0)
	if f.Stuck {
		faultyWord = ^uint64(0)
	}

	if f.Pin < 0 {
		inject(f.Node, faultyWord)
	} else {
		nd := s.c.Nodes[f.Node]
		s.buf = s.buf[:0]
		for pin, fn := range nd.Fanin {
			w := s.good[fn]
			if pin == f.Pin {
				w = faultyWord
			}
			s.buf = append(s.buf, w)
		}
		inject(f.Node, nd.Type.EvalWords(s.buf))
	}

	for len(s.queue) > 0 {
		id := s.pop()
		nd := s.c.Nodes[id]
		s.buf = s.buf[:0]
		for _, fn := range nd.Fanin {
			s.buf = append(s.buf, s.val(fn))
		}
		w := nd.Type.EvalWords(s.buf)
		if w != s.val(id) {
			inject(id, w)
		}
	}

	for _, id := range s.touched {
		s.dirty[id] = false
	}
	s.touched = s.touched[:0]
	return detected
}

func (s *refSimulator) val(id int) uint64 {
	if s.dirty[id] {
		return s.cur[id]
	}
	return s.good[id]
}

func (s *refSimulator) push(id int) {
	if s.inQueue[id] {
		return
	}
	s.inQueue[id] = true
	s.queue = append(s.queue, id)
}

func (s *refSimulator) pop() int {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		if s.pos[s.queue[i]] < s.pos[s.queue[best]] {
			best = i
		}
	}
	id := s.queue[best]
	s.queue[best] = s.queue[len(s.queue)-1]
	s.queue = s.queue[:len(s.queue)-1]
	s.inQueue[id] = false
	return id
}

// RefCampaign is the pre-CSR serial campaign: same pattern sequence, same
// merge discipline, evaluated through the mutable representation.
func RefCampaign(c *circuit.Circuit, fl []faults.Fault, patterns int, seed int64) CampaignResult {
	s := newRefSimulator(c)
	rng := rand.New(rand.NewSource(seed))
	remaining := append([]faults.Fault(nil), fl...)
	res := CampaignResult{TotalFaults: len(fl)}
	words := make([]uint64, len(c.Inputs))
	detect := make([]uint64, len(remaining))
	blocks := (patterns + 63) / 64
	for b := 0; b < blocks && len(remaining) > 0; b++ {
		for j := range words {
			words[j] = rng.Uint64()
		}
		s.setInputs(words)
		s.runGood()
		for i, f := range remaining {
			detect[i] = s.detectWord(f)
		}
		kept := remaining[:0]
		for i, f := range remaining {
			d := detect[i]
			if d == 0 {
				kept = append(kept, f)
				continue
			}
			res.Detected++
			first := b*64 + lowestBit(d) + 1
			if first > res.LastEffective {
				res.LastEffective = first
			}
		}
		remaining = kept
	}
	res.Remaining = append([]faults.Fault(nil), remaining...)
	res.Patterns = blocks * 64
	return res
}
