// Package subckt enumerates candidate subcircuits for replacement and
// extracts the functions they implement (Section 4.1 of the paper).
//
// A candidate C' is a set of gates with a designated output g. Its inputs I'
// are the lines that feed gates of C' from outside. Starting from the single
// gate driving g, candidates grow by absorbing a gate that drives one of the
// current inputs, as long as the input count stays within the limit K.
package subckt

import (
	"math/bits"
	"sort"
	"sync"

	"compsynth/internal/circuit"
	"compsynth/internal/digest"
	"compsynth/internal/logic"
)

// Subcircuit is one candidate C' with output Out.
type Subcircuit struct {
	Out    int          // output node ID (a gate of the host circuit)
	Gates  map[int]bool // node IDs inside C' (includes absorbed constants)
	Inputs []int        // external driving node IDs, sorted ascending

	key   Key // lazily computed by Key()
	keyed bool
}

// Options bounds the enumeration.
type Options struct {
	// MaxInputs is K, the input limit for candidate subcircuits.
	MaxInputs int
	// MaxCandidates caps the number of candidates generated per output
	// (0 = unlimited). The paper's enumeration is exhaustive; the cap keeps
	// worst-case gates from dominating runtime.
	MaxCandidates int
}

// DefaultOptions matches the paper's experiments (K = 5).
func DefaultOptions() Options {
	return Options{MaxInputs: 5, MaxCandidates: 300}
}

// Enumerate generates the candidate subcircuits with output g, in expansion
// order, starting with the single-gate subcircuit. g must be a gate output.
func Enumerate(c *circuit.Circuit, g int, opt Options) []*Subcircuit {
	nd := c.Nodes[g]
	if nd.Type == circuit.Input {
		panic("subckt: enumeration from a primary input")
	}
	first := newSub(c, g, map[int]bool{g: true})
	if len(first.Inputs) > opt.MaxInputs {
		return nil
	}
	out := []*Subcircuit{first}
	seen := map[Key]bool{first.Key(): true}
	for i := 0; i < len(out); i++ {
		if opt.MaxCandidates > 0 && len(out) >= opt.MaxCandidates {
			break
		}
		cur := out[i]
		for _, in := range cur.Inputs {
			h := c.Nodes[in]
			if h.Type == circuit.Input {
				continue
			}
			gates := make(map[int]bool, len(cur.Gates)+1)
			for id := range cur.Gates {
				gates[id] = true
			}
			gates[in] = true
			cand := newSub(c, g, gates)
			if len(cand.Inputs) > opt.MaxInputs || len(cand.Inputs) == 0 {
				continue
			}
			k := cand.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, cand)
			if opt.MaxCandidates > 0 && len(out) >= opt.MaxCandidates {
				break
			}
		}
	}
	return out
}

// newSub computes the input set and absorbs constant drivers.
func newSub(c *circuit.Circuit, g int, gates map[int]bool) *Subcircuit {
	// Constants inside cost nothing and have fixed values; absorb them so
	// they never occupy input slots.
	inSet := map[int]bool{}
	//lint:ordered inserted entries are constants with no fanin, so visiting them is a no-op and inSet is the same either way
	for id := range gates {
		for _, f := range c.Nodes[id].Fanin {
			if gates[f] {
				continue
			}
			t := c.Nodes[f].Type
			if t == circuit.Const0 || t == circuit.Const1 {
				gates[f] = true
				continue
			}
			inSet[f] = true
		}
	}
	inputs := make([]int, 0, len(inSet))
	for id := range inSet {
		inputs = append(inputs, id)
	}
	sort.Ints(inputs)
	return &Subcircuit{Out: g, Gates: gates, Inputs: inputs}
}

// Key is a canonical, fixed-size, comparable identity for a subcircuit
// within one circuit snapshot. The gate set is folded order-independently —
// each gate ID is digested individually and the 128-bit digests are combined
// with two independent commutative operators (addition mod 2^128 and XOR) —
// so the key needs no sorted ID slice and no string: computing it allocates
// nothing. Out and the gate count ride along as exact fields.
//
// Unlike the packed-byte string key this replaces, IDs of any magnitude are
// handled (the old 3-byte packing silently collided for IDs >= 2^24).
type Key struct {
	SumLo, SumHi uint64 // sum mod 2^128 of per-gate digests
	XorLo        uint64 // xor fold of per-gate digest low halves
	Out          int32
	N            int32 // gate count
}

// Key returns the subcircuit's identity, computing it on first use. Two
// candidates with equal keys implement the same function as long as no gate
// in the set changed type or fanin, which holds for the duration of one
// optimizer pass (replacements only add nodes and rewire consumers of
// already-visited outputs), so Key doubles as the truth-table memoization
// key for Extract.
func (s *Subcircuit) Key() Key {
	if s.keyed {
		return s.key
	}
	k := Key{Out: int32(s.Out), N: int32(len(s.Gates))}
	//lint:ordered commutative fold: mod-2^128 addition and XOR of per-gate digests give the same key for any order
	for id := range s.Gates {
		d := digest.New().Int(id)
		var carry uint64
		k.SumLo, carry = bits.Add64(k.SumLo, d.Lo, 0)
		k.SumHi, _ = bits.Add64(k.SumHi, d.Hi, carry)
		k.XorLo ^= d.Lo
	}
	s.key, s.keyed = k, true
	return k
}

// varTabs caches the variable truth tables Var(n, 1..n) per input count, so
// Extract does not rebuild them for every candidate. The tables are
// immutable once published.
var (
	varTabMu sync.Mutex
	varTabs  = map[int][]logic.TT{}
)

func varTablesFor(n int) []logic.TT {
	varTabMu.Lock()
	defer varTabMu.Unlock()
	if t, ok := varTabs[n]; ok {
		return t
	}
	t := make([]logic.TT, n)
	for j := 0; j < n; j++ {
		t[j] = logic.Var(n, j+1)
	}
	varTabs[n] = t
	return t
}

// extractScratch is the reusable per-Extract working set: a small
// linear-scan association from node ID to its current 64-pattern word (the
// sets involved are tiny — |gates| + |inputs| is bounded by the cut size),
// the internal topological order, and the fanin word buffer. Pooled so
// concurrent prefetch workers each grab their own.
type extractScratch struct {
	ids   []int
	vals  []uint64
	state []int8 // DFS state per ids entry: 0 unseen, 1 visiting, 2 done
	order []int
	buf   []uint64
}

var extractPool = sync.Pool{New: func() any { return new(extractScratch) }}

func (sc *extractScratch) reset() {
	sc.ids = sc.ids[:0]
	sc.vals = sc.vals[:0]
	sc.state = sc.state[:0]
	sc.order = sc.order[:0]
	sc.buf = sc.buf[:0]
}

func (sc *extractScratch) idx(id int) int {
	for i, x := range sc.ids {
		if x == id {
			return i
		}
	}
	return -1
}

func (sc *extractScratch) add(id int) int {
	if i := sc.idx(id); i >= 0 {
		return i
	}
	sc.ids = append(sc.ids, id)
	sc.vals = append(sc.vals, 0)
	sc.state = append(sc.state, 0)
	return len(sc.ids) - 1
}

// Extract computes the truth table of the function C' implements on Out,
// over the inputs in Subcircuit.Inputs order (input j = variable y_{j+1},
// most significant first, per the logic package convention). All working
// storage comes from a pooled scratch, so steady-state calls allocate only
// the returned table.
func (s *Subcircuit) Extract(c *circuit.Circuit) logic.TT {
	n := len(s.Inputs)
	tt := logic.New(n)
	vt := varTablesFor(n)
	sc := extractPool.Get().(*extractScratch)
	sc.reset()
	for _, in := range s.Inputs {
		sc.add(in)
	}
	s.topoInto(c, sc)
	// Evaluate internal gates in topological order, 64 minterms at a time,
	// driving each input with its variable pattern.
	words := tt.Words()
	outIdx := sc.idx(s.Out)
	for w := range words {
		for j, in := range s.Inputs {
			sc.vals[sc.idx(in)] = vt[j].Words()[w]
		}
		for _, id := range sc.order {
			nd := c.Nodes[id]
			sc.buf = sc.buf[:0]
			for _, f := range nd.Fanin {
				sc.buf = append(sc.buf, sc.vals[sc.idx(f)])
			}
			sc.vals[sc.idx(id)] = nd.Type.EvalWords(sc.buf)
		}
		words[w] = sc.vals[outIdx]
	}
	// Trim invalid high bits for n < 6.
	if n < 6 {
		words[0] &= (uint64(1) << (1 << n)) - 1
	}
	extractPool.Put(sc)
	return tt
}

// topoInto appends the subcircuit's gates to sc.order in topological order,
// registering each in the scratch association.
func (s *Subcircuit) topoInto(c *circuit.Circuit, sc *extractScratch) {
	var visit func(id int)
	visit = func(id int) {
		if !s.Gates[id] {
			return
		}
		i := sc.add(id)
		if sc.state[i] == 2 {
			return
		}
		if sc.state[i] == 1 {
			panic("subckt: cycle inside subcircuit")
		}
		sc.state[i] = 1
		for _, f := range c.Nodes[id].Fanin {
			visit(f)
		}
		sc.state[i] = 2
		sc.order = append(sc.order, id)
	}
	visit(s.Out)
	// Gates unreachable from Out (can happen when an absorbed gate only
	// feeds outside) are appended; they do not affect the function.
	for id := range s.Gates {
		visit(id)
	}
}

// Removable returns the set of gates that disappear if C' is replaced by a
// new realization driving Out: a gate is removable iff it is not a PO driver
// (Out excepted: its consumers are rewired to the replacement) and every
// fanout pin goes to a removable gate of C'. This implements the paper's
// "common gates are not included in the count N".
func (s *Subcircuit) Removable(c *circuit.Circuit) map[int]bool {
	rm := map[int]bool{s.Out: true}
	for {
		changed := false
		for id := range s.Gates {
			if rm[id] || id == s.Out {
				continue
			}
			if c.NumPOUses(id) > 0 {
				continue
			}
			ok := true
			for _, consumer := range c.Fanouts(id) {
				if !rm[consumer] {
					ok = false
					break
				}
			}
			if ok {
				rm[id] = true
				changed = true
			}
		}
		if !changed {
			return rm
		}
	}
}

// GateSavings returns the equivalent-2-input weight of the removable gates:
// the paper's N for this candidate.
func (s *Subcircuit) GateSavings(c *circuit.Circuit) int {
	n := 0
	for id := range s.Removable(c) {
		nd := c.Nodes[id]
		n += circuit.Equiv2Weight(nd.Type, len(nd.Fanin))
	}
	return n
}
