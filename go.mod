module compsynth

go 1.24
