package dtrace

import (
	"encoding/json"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", Mode{Level: LevelOff}, true},
		{"", Mode{Level: LevelOff}, true},
		{"full", Mode{Level: LevelFull}, true},
		{"sampled:1", Mode{Level: LevelSampled, N: 1}, true},
		{"sampled:100", Mode{Level: LevelSampled, N: 100}, true},
		{"sampled:0", Mode{}, false},
		{"sampled:-3", Mode{}, false},
		{"sampled:x", Mode{}, false},
		{"verbose", Mode{}, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseMode(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseMode(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestModeRoundTrip(t *testing.T) {
	for _, s := range []string{"off", "full", "sampled:7"} {
		m, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
		if m.String() != s {
			t.Errorf("ParseMode(%q).String() = %q", s, m.String())
		}
	}
}

func TestReasonJSONRoundTrip(t *testing.T) {
	for r := Accepted; r < numReasons; r++ {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %v: %v", r, err)
		}
		var back Reason
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != r {
			t.Errorf("round trip %v -> %s -> %v", r, b, back)
		}
	}
	var bad Reason
	if err := json.Unmarshal([]byte(`"not_a_reason"`), &bad); err == nil {
		t.Error("unmarshal of an unknown reason succeeded")
	}
	if _, err := json.Marshal(numReasons); err == nil {
		t.Error("marshal of an out-of-range reason succeeded")
	}
}

func TestReasonsCoverEnum(t *testing.T) {
	names := Reasons()
	if len(names) != int(numReasons) {
		t.Fatalf("Reasons() has %d entries, want %d", len(names), numReasons)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("reason %d has no name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate reason name %q", n)
		}
		seen[n] = true
		if r, err := ParseReason(n); err != nil || r != Reason(i) {
			t.Errorf("ParseReason(%q) = %v, %v; want %d", n, r, err, i)
		}
	}
}

func TestNilTracerNoAlloc(t *testing.T) {
	var dt *Tracer
	if n := testing.AllocsPerRun(200, func() {
		dt.Emit(Record{Kind: "cand", Node: 7, Outcome: Dominated})
	}); n != 0 {
		t.Fatalf("nil tracer Emit allocates %v times per call, want 0", n)
	}
	if dt.Emitted() != 0 || dt.Mode().Level != LevelOff {
		t.Error("nil tracer reports non-zero state")
	}
}

func TestNewOffIsNil(t *testing.T) {
	if New(Mode{Level: LevelOff}, func(*Record) {}) != nil {
		t.Error("New(off) is not the nil tracer")
	}
	if New(Mode{Level: LevelFull}, nil) != nil {
		t.Error("New(full, nil sink) is not the nil tracer")
	}
}

// TestSamplingDeterministic pins the sampling filter: acceptances and gate
// summaries always pass, rejections pass on a deterministic 1-in-N counter,
// and sequence numbers stay dense over the kept records.
func TestSamplingDeterministic(t *testing.T) {
	run := func() []Record {
		var got []Record
		dt := New(Mode{Level: LevelSampled, N: 3}, func(r *Record) { got = append(got, *r) })
		for i := 0; i < 10; i++ {
			dt.Emit(Record{Kind: "cand", Node: i, Outcome: Dominated})
		}
		dt.Emit(Record{Kind: "cand", Node: 99, Outcome: Accepted})
		dt.Emit(Record{Kind: "gate", Node: 99, Outcome: Replaced})
		return got
	}
	a, b := run(), run()
	// 10 rejections at stride 3 keep nodes 0, 3, 6, 9; both acceptances pass.
	wantNodes := []int{0, 3, 6, 9, 99, 99}
	if len(a) != len(wantNodes) {
		t.Fatalf("kept %d records, want %d: %+v", len(a), len(wantNodes), a)
	}
	for i, r := range a {
		if r.Node != wantNodes[i] {
			t.Errorf("record %d node = %d, want %d", i, r.Node, wantNodes[i])
		}
		if r.Seq != int64(i) {
			t.Errorf("record %d seq = %d, want dense %d", i, r.Seq, i)
		}
		if !recordsEqual(a[i], b[i]) {
			t.Errorf("sampling not deterministic at record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// recordsEqual compares records by their canonical JSON form (Record carries
// a slice field, so == does not apply).
func recordsEqual(a, b Record) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

func TestFullModeKeepsEverything(t *testing.T) {
	var got []Record
	dt := New(Mode{Level: LevelFull}, func(r *Record) { got = append(got, *r) })
	for i := 0; i < 5; i++ {
		dt.Emit(Record{Kind: "cand", Node: i, Outcome: NoComparisonUnit})
	}
	if len(got) != 5 || dt.Emitted() != 5 {
		t.Fatalf("full mode kept %d/%d records, want 5/5", len(got), dt.Emitted())
	}
}
