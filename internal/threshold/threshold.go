// Package threshold captures the relationship of Section 3.1 between
// comparison blocks and threshold functions: a >=L comparison block over
// (x1..xn), x1 most significant, is the threshold function with weight
// 2^(n-i) on x_i and threshold T = L; a <=U block is the complement of the
// threshold function with T = U+1. A comparison unit is therefore the AND of
// a threshold gate and a complemented threshold gate.
package threshold

import (
	"fmt"

	"compsynth/internal/logic"
)

// Gate is a linear threshold gate: fires (outputs 1) when the weighted sum
// of its inputs reaches T.
type Gate struct {
	Weights []int
	T       int
}

// Eval computes the gate output for an input assignment.
func (g Gate) Eval(in []bool) bool {
	if len(in) != len(g.Weights) {
		panic("threshold: input width mismatch")
	}
	sum := 0
	for i, v := range in {
		if v {
			sum += g.Weights[i]
		}
	}
	return sum >= g.T
}

// Table returns the gate's truth table (input i = variable y_{i+1}, MSB
// first, matching the logic package convention).
func (g Gate) Table() logic.TT {
	n := len(g.Weights)
	tt := logic.New(n)
	in := make([]bool, n)
	for m := 0; m < tt.Size(); m++ {
		for i := 0; i < n; i++ {
			in[i] = m&(1<<(n-1-i)) != 0
		}
		if g.Eval(in) {
			tt.Set(m, true)
		}
	}
	return tt
}

// GeqGate returns the threshold realization of a >=L comparison block over
// n inputs: weights 2^(n-1) .. 1 and T = L.
func GeqGate(n, l int) Gate {
	return Gate{Weights: binaryWeights(n), T: l}
}

// LeqGateComplement returns the threshold gate whose COMPLEMENT realizes a
// <=U comparison block: weights 2^(n-1) .. 1 and T = U+1 (the paper's
// ">= U+1, then invert" construction).
func LeqGateComplement(n, u int) Gate {
	return Gate{Weights: binaryWeights(n), T: u + 1}
}

func binaryWeights(n int) []int {
	w := make([]int, n)
	for i := 0; i < n; i++ {
		w[i] = 1 << (n - 1 - i)
	}
	return w
}

// UnitTable composes the Section 3.1 construction for the interval [L,U]:
// AND of the >=L gate and the complemented >=U+1 gate.
func UnitTable(n, l, u int) logic.TT {
	return GeqGate(n, l).Table().And(LeqGateComplement(n, u).Table().Not())
}

// IsUnate reports whether the function of a threshold gate is positive
// unate in every variable with positive weight (a classic threshold-gate
// property; sanity check used in tests).
func IsUnate(g Gate) bool {
	tt := g.Table()
	n := len(g.Weights)
	for i := 1; i <= n; i++ {
		c0 := tt.Cofactor(i, false)
		c1 := tt.Cofactor(i, true)
		// Positive weight: f|x=0 <= f|x=1 pointwise.
		if g.Weights[i-1] >= 0 {
			if !c0.And(c1.Not()).IsConst(false) {
				return false
			}
		} else {
			if !c1.And(c0.Not()).IsConst(false) {
				return false
			}
		}
	}
	return true
}

func (g Gate) String() string {
	return fmt.Sprintf("thr{w=%v T=%d}", g.Weights, g.T)
}
