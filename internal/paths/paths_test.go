package paths

import (
	"math/big"
	"testing"
	"testing/quick"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
)

func mustParse(t *testing.T, src, name string) *circuit.Circuit {
	t.Helper()
	c, err := bench.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountChain(t *testing.T) {
	// a -> NOT -> NOT -> o : exactly one path.
	c := circuit.New("chain")
	a := c.AddInput("a")
	g1 := c.AddGate(circuit.Not, "", a)
	g2 := c.AddGate(circuit.Not, "", g1)
	c.MarkOutput(g2)
	if n := MustCount(c); n != 1 {
		t.Fatalf("chain paths = %d, want 1", n)
	}
}

func TestCountReconvergence(t *testing.T) {
	// a fans out to two gates that reconverge: 2 paths from a, 1 from b, 1
	// from d; total at output = 2+1+1 = 4? Structure:
	// g1 = AND(a,b); g2 = OR(a,d); o = AND(g1,g2).
	c := circuit.New("reconv")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "", a, b)
	g2 := c.AddGate(circuit.Or, "", a, d)
	o := c.AddGate(circuit.And, "", g1, g2)
	c.MarkOutput(o)
	if n := MustCount(c); n != 4 {
		t.Fatalf("reconv paths = %d, want 4", n)
	}
}

func TestCountC17(t *testing.T) {
	c := mustParse(t, bench.C17, "c17")
	// Hand count: Np(10)=2, Np(11)=2, Np(16)=3, Np(19)=3,
	// Np(22)=2+3=5, Np(23)=3+3=6, total=11.
	if n := MustCount(c); n != 11 {
		t.Fatalf("c17 paths = %d, want 11", n)
	}
}

func TestPaperExampleKp(t *testing.T) {
	// Section 2 example: f_{1,1} = x1'x2x4 + x1x2'x3' + x2x3'x4 as a
	// two-level circuit. K_p(x_i) equals the number of literal occurrences
	// of x_i: 2, 3, 2, 2. We verify both the K_p mechanism (FanoutWeights)
	// and that the output label is sum of K_p under unit PI labels.
	c := circuit.New("f11")
	x1 := c.AddInput("x1")
	x2 := c.AddInput("x2")
	x3 := c.AddInput("x3")
	x4 := c.AddInput("x4")
	n1 := c.AddGate(circuit.Not, "", x1)
	n2 := c.AddGate(circuit.Not, "", x2)
	n3 := c.AddGate(circuit.Not, "", x3)
	p1 := c.AddGate(circuit.And, "", n1, x2, x4)
	p2 := c.AddGate(circuit.And, "", x1, n2, n3)
	p3 := c.AddGate(circuit.And, "", x2, n3, x4)
	o := c.AddGate(circuit.Or, "", p1, p2, p3)
	c.MarkOutput(o)
	np, ok := Labels(c)
	if !ok {
		t.Fatal("overflow")
	}
	// Kp per input = number of literal occurrences: x1:2 x2:3 x3:2 x4:2.
	if np[o] != 2+3+2+2 {
		t.Fatalf("Np(out) = %d, want 9 (unit PI labels)", np[o])
	}
	// Through-count decomposition: Np(xi)*Kp(xi) summed equals total.
	w := FanoutWeights(c)
	if w[x1] != 2 || w[x2] != 3 || w[x3] != 2 || w[x4] != 2 {
		t.Fatalf("Kp = %d %d %d %d", w[x1], w[x2], w[x3], w[x4])
	}
}

func TestFanoutWeightsDecomposition(t *testing.T) {
	c := mustParse(t, bench.C17, "c17")
	np, _ := Labels(c)
	w := FanoutWeights(c)
	// Sum over PIs of Np*Kp must equal the total count.
	var sum uint64
	for _, in := range c.Inputs {
		sum += np[in] * w[in]
	}
	if sum != MustCount(c) {
		t.Fatalf("decomposition sum = %d, want %d", sum, MustCount(c))
	}
	// Through() agrees on each input.
	for _, in := range c.Inputs {
		if Through(c, in) != np[in]*w[in] {
			t.Fatal("Through mismatch")
		}
	}
}

func TestBigMatchesUint64(t *testing.T) {
	c := mustParse(t, bench.C17, "c17")
	b := CountBig(c)
	if b.Cmp(big.NewInt(11)) != 0 {
		t.Fatalf("big count = %v", b)
	}
}

func TestOverflowDetection(t *testing.T) {
	// Chain of doubling gates: 70 stages of XOR(x,x) doubles Np each stage,
	// exceeding 2^64.
	c := circuit.New("boom")
	prev := c.AddInput("a")
	for i := 0; i < 70; i++ {
		prev = c.AddGate(circuit.Xor, "", prev, prev)
	}
	c.MarkOutput(prev)
	if _, err := Count(c); err == nil {
		t.Fatal("expected overflow")
	}
	want := new(big.Int).Lsh(big.NewInt(1), 70)
	if got := CountBig(c); got.Cmp(want) != 0 {
		t.Fatalf("big count = %v, want 2^70", got)
	}
}

func TestConstantsStartNoPaths(t *testing.T) {
	c := circuit.New("k")
	a := c.AddInput("a")
	one := c.AddGate(circuit.Const1, "")
	g := c.AddGate(circuit.And, "", a, one)
	c.MarkOutput(g)
	if n := MustCount(c); n != 1 {
		t.Fatalf("const contributes paths: %d", n)
	}
}

func TestMultiplePODesignations(t *testing.T) {
	// The same line designated as two outputs counts twice (two PO lines).
	c := circuit.New("dup")
	a := c.AddInput("a")
	g := c.AddGate(circuit.Not, "", a)
	c.MarkOutput(g)
	c.MarkOutput(g)
	if n := MustCount(c); n != 2 {
		t.Fatalf("dual PO count = %d, want 2", n)
	}
}

// Property: for any random circuit, the total path count decomposes as
// sum over primary inputs of Np(pi) * Kp(pi).
func TestQuickDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		p := gen.Params{Name: "q", Inputs: 6, Outputs: 4, Gates: 40, Layers: 6,
			MaxFanin: 3, Locality: 0.7, InvProb: 0.2, Seed: seed}
		c := gen.Random(p)
		np, ok := Labels(c)
		if !ok {
			return true // overflow: skip
		}
		w := FanoutWeights(c)
		var sum uint64
		for _, in := range c.Inputs {
			sum += np[in] * w[in]
		}
		return sum == MustCount(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
