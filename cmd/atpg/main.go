// Command atpg runs PODEM on every collapsed stuck-at fault of a .bench
// netlist and classifies the circuit's faults as testable, redundant or
// aborted.
//
// Usage:
//
//	atpg [-backtracks n] [-filter n] [-tests] circuit.bench
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"compsynth"
	"compsynth/internal/atpg"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atpg: ")
	backtracks := flag.Int("backtracks", 20000, "PODEM backtrack limit")
	filter := flag.Int("filter", 2048, "random patterns to drop easy faults first (0 = none)")
	showTests := flag.Bool("tests", false, "print a test per hard testable fault")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: atpg [-backtracks n] circuit.bench")
		os.Exit(2)
	}
	c, err := compsynth.LoadBench(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fl := faults.Collapse(c)
	fmt.Printf("%s: %v, %d collapsed faults\n", c.Name, c.Stats(), len(fl))

	hard := fl
	easy := 0
	if *filter > 0 {
		res := faultsim.RunRandom(c, fl, *filter, 7)
		hard = res.Remaining
		easy = res.Detected
	}
	testable, redundant, aborted := easy, 0, 0
	for _, f := range hard {
		r := atpg.Generate(c, f, atpg.Options{BacktrackLimit: *backtracks})
		switch r.Status {
		case atpg.Testable:
			testable++
			if *showTests {
				fmt.Printf("  %v: test %v (%d backtracks)\n", f, asBits(r.Test), r.Backtracks)
			}
		case atpg.Redundant:
			redundant++
			fmt.Printf("  %v: redundant\n", f)
		case atpg.Aborted:
			aborted++
			fmt.Printf("  %v: aborted after %d backtracks\n", f, r.Backtracks)
		}
	}
	fmt.Printf("testable: %d (random: %d, podem: %d), redundant: %d, aborted: %d\n",
		testable, easy, testable-easy, redundant, aborted)
	if redundant == 0 && aborted == 0 {
		fmt.Println("circuit is fully testable for single stuck-at faults")
	}
}

func asBits(t []bool) string {
	b := make([]byte, len(t))
	for i, v := range t {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
