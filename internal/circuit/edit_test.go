package circuit

import (
	"testing"
	"time"
)

func TestRename(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	g := c.AddGate(Not, "g", a)
	c.MarkOutput(g)
	if !c.Rename(g, "out") {
		t.Fatal("rename failed")
	}
	if c.NodeByName("out") != g || c.NodeByName("g") >= 0 {
		t.Fatal("name map stale after rename")
	}
	// Renaming to an existing other name fails.
	if c.Rename(g, "a") {
		t.Fatal("rename onto existing name succeeded")
	}
	// Renaming to own name is a no-op success.
	if !c.Rename(g, "out") {
		t.Fatal("self-rename failed")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreservePONames(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	g1 := c.AddGate(Not, "f", a)
	c.MarkOutput(g1)
	names := c.PONames()
	// Replace the PO driver by new logic.
	g2 := c.AddGate(Buf, "tmp", a)
	c.ReplaceUses(g1, g2)
	c.SweepDead()
	c.PreservePONames(names)
	if got := c.Nodes[c.Outputs[0]].Name; got != "f" {
		t.Fatalf("PO name = %q, want f", got)
	}
}

func TestSetFanin(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g := c.AddGate(And, "", a, b)
	c.MarkOutput(g)
	c.SetFanin(g, 1, d)
	if got := c.Eval([]bool{true, false, true})[0]; !got {
		t.Fatal("SetFanin did not rewire")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddFaninFront(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g := c.AddGate(And, "", a, b)
	c.MarkOutput(g)
	c.AddFaninFront(g, d)
	if len(c.Nodes[g].Fanin) != 3 || c.Nodes[g].Fanin[0] != d {
		t.Fatalf("fanin = %v", c.Nodes[g].Fanin)
	}
	if got := c.Eval([]bool{true, true, false})[0]; got {
		t.Fatal("new fanin not effective")
	}
}

func TestSweepDeadKeepsSharedLogic(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "", a, b)
	g2 := c.AddGate(Not, "", g1)
	g3 := c.AddGate(Or, "", g1, a)
	c.MarkOutput(g3)
	// g2 is dead, g1 is shared and must stay.
	if n := c.SweepDead(); n != 1 {
		t.Fatalf("swept %d nodes, want 1", n)
	}
	if !c.Alive(g1) || c.Alive(g2) {
		t.Fatal("wrong nodes swept")
	}
}

func TestKillPanicsOnPODriver(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	g := c.AddGate(Not, "", a)
	c.MarkOutput(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Kill(g)
}

func TestSimplifyNestedBuffers(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b1 := c.AddGate(Buf, "", a)
	b2 := c.AddGate(Buf, "", b1)
	b3 := c.AddGate(Buf, "", b2)
	c.MarkOutput(b3)
	c.Simplify()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []bool{false, true} {
		if c.Eval([]bool{v})[0] != v {
			t.Fatal("buffer chain broken")
		}
	}
	// At most the PO buffer remains.
	if c.NumGates() > 1 {
		t.Fatalf("%d gates remain after simplifying buffer chain", c.NumGates())
	}
}

func TestSimplifyTerminates(t *testing.T) {
	// Regression: a dead buffer must not keep Simplify spinning.
	c := New("t")
	a := c.AddInput("a")
	buf := c.AddGate(Buf, "", a)
	g := c.AddGate(Not, "", a)
	_ = buf
	c.MarkOutput(g)
	done := make(chan struct{})
	go func() {
		c.Simplify()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Simplify did not terminate")
	}
}
