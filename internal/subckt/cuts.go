package subckt

import (
	"sort"

	"compsynth/internal/circuit"
	"compsynth/internal/digest"
)

// K-feasible cut enumeration (the standard technology-mapping algorithm).
//
// A cut of gate g is a set of lines such that every path from the primary
// inputs to g passes through a line of the set; the gates strictly between
// the cut and g form a single-output subcircuit with the cut as its inputs.
// Cuts reach through arbitrarily wide gates, which the incremental growth of
// Enumerate cannot (a 6-input gate's trivial subcircuit already has 6
// inputs), so the optimizer enumerates candidates from cuts.
//
// cuts(PI)       = { {PI} }
// cuts(constant) = { {} }
// cuts(gate g)   = { {g} } ∪ { c1 ∪ ... ∪ ck : ci ∈ cuts(fanin_i) },
// keeping only sets of at most K lines, capped per node by cut count.

// CutDB holds the K-feasible cuts of every node of one circuit snapshot.
type CutDB struct {
	K       int
	maxCuts int
	cuts    [][][]int // per node: list of cuts; each cut is sorted node IDs
}

// ComputeCuts enumerates up to maxCuts K-feasible cuts per node, smallest
// first. maxCuts <= 0 selects a default of 64.
func ComputeCuts(c *circuit.Circuit, k, maxCuts int) *CutDB {
	db := NewCutDB(c, k, maxCuts)
	for _, id := range c.Topo() {
		db.ComputeNode(c, id)
	}
	return db
}

// NewCutDB returns an empty database sized for c; callers fill it with
// ComputeNode in topological order (ComputeCuts does exactly that). The
// split exists for incremental recomputation: after a local rewiring, only
// the dirty cone's nodes need ComputeNode again.
func NewCutDB(c *circuit.Circuit, k, maxCuts int) *CutDB {
	if maxCuts <= 0 {
		maxCuts = 64
	}
	return &CutDB{K: k, maxCuts: maxCuts, cuts: make([][][]int, len(c.Nodes))}
}

// Grow extends per-node storage to cover IDs up to len(c.Nodes)-1; newly
// covered nodes start with no cuts.
func (db *CutDB) Grow(c *circuit.Circuit) {
	for len(db.cuts) < len(c.Nodes) {
		db.cuts = append(db.cuts, nil)
	}
}

// ComputeNode (re)computes the cuts of one node from its fanins' current cut
// sets, which must already be up to date. The result is a pure function of
// the node's type/fanin and the fanin cut sets, so recomputing any superset
// of the changed cone in topological order reproduces exactly what a full
// ComputeCuts would build.
//
// The node's type and fanin are read through the circuit's frozen CSR view:
// the resynthesis loop calls ComputeNode in bulk between edits (full rebuild
// or dirty-cone refresh), so after the first call of a batch Freeze is a
// two-load cache hit and the sweep reads flat arrays instead of per-node
// heap objects. Cut contents stay keyed by sparse node ID — they outlive
// any one frozen view. Must not be called while another goroutine reads the
// circuit (Freeze refreshes derived caches, like Topo).
func (db *CutDB) ComputeNode(c *circuit.Circuit, id int) {
	v := c.Freeze()
	d := v.DenseOf[id]
	if d < 0 {
		db.cuts[id] = nil // dead node: no cuts
		return
	}
	k, maxCuts := db.K, db.maxCuts
	switch v.Kind[d] {
	case circuit.Input:
		db.cuts[id] = [][]int{{id}}
	case circuit.Const0, circuit.Const1:
		db.cuts[id] = [][]int{{}}
	default:
		merged := [][]int{{id}} // the trivial cut
		// Cartesian merge across fanins, width-capped.
		acc := [][]int{{}}
		for _, fd := range v.FaninOf(d) {
			f := int(v.NodeID[fd])
			var next [][]int
			for _, a := range acc {
				for _, cf := range db.cuts[f] {
					u := unionSorted(a, cf, k)
					if u != nil {
						next = append(next, u)
					}
					if len(next) > 4*maxCuts {
						break
					}
				}
				if len(next) > 4*maxCuts {
					break
				}
			}
			acc = dedupeCuts(next)
			if len(acc) > 2*maxCuts {
				sortCuts(acc)
				acc = acc[:2*maxCuts]
			}
			if len(acc) == 0 {
				break
			}
		}
		merged = append(merged, acc...)
		merged = dedupeCuts(merged)
		sortCuts(merged)
		if len(merged) > maxCuts {
			merged = merged[:maxCuts]
		}
		db.cuts[id] = merged
	}
}

// Cuts returns the cuts of node id (shared storage; do not mutate).
func (db *CutDB) Cuts(id int) [][]int { return db.cuts[id] }

// unionSorted merges two sorted sets, returning nil if the union exceeds k.
func unionSorted(a, b []int, k int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > k {
			return nil
		}
	}
	return out
}

func dedupeCuts(cs [][]int) [][]int {
	// Cuts are sorted ID slices, so a length-framed digest is a canonical
	// set identity: no per-cut string is built. (The packed-byte string key
	// this replaces also collided for IDs >= 2^24.)
	seen := map[digest.D]bool{}
	out := cs[:0]
	for _, c := range cs {
		k := digest.New().Ints(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

func sortCuts(cs [][]int) {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) < len(cs[j])
		}
		for x := range cs[i] {
			if cs[i][x] != cs[j][x] {
				return cs[i][x] < cs[j][x]
			}
		}
		return false
	})
}

// SubcircuitFor materializes the subcircuit induced by a cut of g: all gates
// on paths between the cut lines and g. Returns nil for the trivial cut {g}
// or when the cut yields no gates.
func SubcircuitFor(c *circuit.Circuit, g int, cut []int) *Subcircuit {
	if !c.Alive(g) {
		return nil
	}
	inCut := map[int]bool{}
	for _, id := range cut {
		if !c.Alive(id) {
			return nil
		}
		inCut[id] = true
	}
	if inCut[g] {
		return nil
	}
	gates := map[int]bool{}
	var walk func(id int) bool
	walk = func(id int) bool {
		if inCut[id] {
			return true
		}
		if gates[id] {
			return true
		}
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			return false // a path escapes the cut: not a valid cover
		}
		gates[id] = true
		for _, f := range nd.Fanin {
			if !walk(f) {
				return false
			}
		}
		return true
	}
	if !walk(g) {
		return nil
	}
	return newSub(c, g, gates)
}

// EnumerateFromCuts generates the candidate subcircuits of g from its cut
// set. The single-gate candidate (cut = fanins of g) comes first when it is
// K-feasible.
func (db *CutDB) EnumerateFromCuts(c *circuit.Circuit, g int) []*Subcircuit {
	var out []*Subcircuit
	for _, cut := range db.cuts[g] {
		s := SubcircuitFor(c, g, cut)
		if s != nil && len(s.Inputs) > 0 {
			out = append(out, s)
		}
	}
	return out
}
