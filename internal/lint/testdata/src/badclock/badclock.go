// Package badclock injects wallclock-rule violations. It is a lint fixture:
// the go tool never builds testdata, only sftlint's own loader does.
package badclock

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Roll uses the process-global v1 RNG.
func Roll() int {
	return rand.Intn(6)
}

// RollV2 uses the process-global v2 RNG.
func RollV2() int {
	return randv2.IntN(6)
}

// RollSeeded is clean: an explicit generator built from a caller-provided
// seed, the pattern par.SeedFor feeds.
func RollSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}
