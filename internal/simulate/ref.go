package simulate

import (
	"math/rand"

	"compsynth/internal/circuit"
)

// refSim is the pre-CSR simulator: per-sparse-node words, topological order
// from the circuit's cache, pointer-chasing fanin reads. Kept as the
// executable reference the determinism tests pin EquivalentRandom against.
type refSim struct {
	c     *circuit.Circuit
	words []uint64 // indexed by sparse node ID
	topo  []int
	buf   []uint64
}

func newRefSim(c *circuit.Circuit) *refSim {
	return &refSim{c: c, words: make([]uint64, len(c.Nodes)), topo: c.Topo()}
}

func (s *refSim) run() {
	for _, id := range s.topo {
		nd := s.c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range nd.Fanin {
			s.buf = append(s.buf, s.words[f])
		}
		s.words[id] = nd.Type.EvalWords(s.buf)
	}
}

// RefEquivalentRandom is the pre-CSR EquivalentRandom: same patterns, same
// seed discipline, evaluated through the mutable representation.
func RefEquivalentRandom(a, b *circuit.Circuit, rounds int, maxExhaustive int, seed int64) bool {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	n := len(a.Inputs)
	sa, sb := newRefSim(a), newRefSim(b)
	if n <= maxExhaustive && n < 30 {
		return refEquivalentExhaustive(sa, sb, n)
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		for j := 0; j < n; j++ {
			w := rng.Uint64()
			sa.words[a.Inputs[j]] = w
			sb.words[b.Inputs[j]] = w
		}
		sa.run()
		sb.run()
		for j := range a.Outputs {
			if sa.words[a.Outputs[j]] != sb.words[b.Outputs[j]] {
				return false
			}
		}
	}
	return true
}

func refEquivalentExhaustive(sa, sb *refSim, n int) bool {
	total := uint64(1) << n
	for base := uint64(0); base < total; base += 64 {
		for j := 0; j < n; j++ {
			var w uint64
			for b := uint64(0); b < 64 && base+b < total; b++ {
				if (base+b)>>(uint(j))&1 == 1 {
					w |= 1 << b
				}
			}
			sa.words[sa.c.Inputs[j]] = w
			sb.words[sb.c.Inputs[j]] = w
		}
		sa.run()
		sb.run()
		for j := range sa.c.Outputs {
			m := mask64(total - base)
			if (sa.words[sa.c.Outputs[j]]^sb.words[sb.c.Outputs[j]])&m != 0 {
				return false
			}
		}
	}
	return true
}
