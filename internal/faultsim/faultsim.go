// Package faultsim is a parallel-pattern single-fault-propagation stuck-at
// fault simulator in the style of FSIM [17]: 64 patterns are simulated per
// word; each undetected fault is injected and propagated event-driven
// through its fanout cone only, with early exit when the effect dies out.
package faultsim

import (
	"math/bits"
	"math/rand"
	"sort"

	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/obs"
	"compsynth/internal/par"
)

// blockGrain is the minimum number of undetected faults in a block worth
// fanning out over workers; smaller blocks run inline on the calling
// goroutine.
const blockGrain = 128

// Simulation metrics (batched adds: one per 64-pattern block).
var (
	mPatterns  = obs.C("faultsim.patterns_simulated")
	mFaultEval = obs.C("faultsim.fault_evals")
	mDetected  = obs.C("faultsim.faults_detected")
	gBlocks    = obs.G("faultsim.blocks_done")
)

// Simulator simulates one circuit.
type Simulator struct {
	c       *circuit.Circuit
	topo    []int
	pos     []int // topo position per node ID
	good    []uint64
	cur     []uint64
	dirty   []bool
	touched []int
	inQueue []bool
	queue   []int
	buf     []uint64
	poMask  map[int]bool
}

// New builds a simulator for c.
func New(c *circuit.Circuit) *Simulator {
	topo := c.Topo()
	pos := make([]int, len(c.Nodes))
	for i, id := range topo {
		pos[id] = i
	}
	po := map[int]bool{}
	for _, o := range c.Outputs {
		po[o] = true
	}
	c.RebuildFanouts()
	return &Simulator{
		c: c, topo: topo, pos: pos,
		good:    make([]uint64, len(c.Nodes)),
		cur:     make([]uint64, len(c.Nodes)),
		dirty:   make([]bool, len(c.Nodes)),
		inQueue: make([]bool, len(c.Nodes)),
		poMask:  po,
	}
}

// SetInputs loads one 64-pattern block: words[j] drives primary input j.
func (s *Simulator) SetInputs(words []uint64) {
	for j, in := range s.c.Inputs {
		s.good[in] = words[j]
	}
}

// RunGood computes the fault-free values for the current block.
func (s *Simulator) RunGood() {
	for _, id := range s.topo {
		nd := s.c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range nd.Fanin {
			s.buf = append(s.buf, s.good[f])
		}
		s.good[id] = nd.Type.EvalWords(s.buf)
	}
}

// GoodWord returns the fault-free word of a node.
func (s *Simulator) GoodWord(id int) uint64 { return s.good[id] }

// Fork returns a simulator for concurrent DetectWord calls on the same
// block: circuit structure, topological order and the good-value words are
// shared read-only with s, while the fault-propagation scratch state (cur,
// dirty, queue) is private. Forks must not call SetInputs or RunGood — load
// each block through the parent, then detect through the forks.
func (s *Simulator) Fork() *Simulator {
	return &Simulator{
		c: s.c, topo: s.topo, pos: s.pos, good: s.good, poMask: s.poMask,
		cur:     make([]uint64, len(s.c.Nodes)),
		dirty:   make([]bool, len(s.c.Nodes)),
		inQueue: make([]bool, len(s.c.Nodes)),
	}
}

// DetectWord simulates fault f against the current block and returns the
// 64-bit word of patterns that detect it (difference observed at any PO).
func (s *Simulator) DetectWord(f faults.Fault) uint64 {
	// Faulty values start equal to good values; cur is restored lazily via
	// the touched list.
	var detected uint64
	s.queue = s.queue[:0]

	inject := func(id int, w uint64) {
		if w == s.good[id] && !s.dirty[id] {
			return
		}
		s.cur[id] = w
		if !s.dirty[id] {
			s.dirty[id] = true
			s.touched = append(s.touched, id)
		}
		if s.poMask[id] {
			detected |= w ^ s.good[id]
		}
		for _, consumer := range s.c.Fanouts(id) {
			s.push(consumer)
		}
	}

	faultyWord := uint64(0)
	if f.Stuck {
		faultyWord = ^uint64(0)
	}

	if f.Pin < 0 {
		inject(f.Node, faultyWord)
	} else {
		// Branch fault: re-evaluate the consuming gate with the pin forced.
		nd := s.c.Nodes[f.Node]
		s.buf = s.buf[:0]
		for pin, fn := range nd.Fanin {
			w := s.good[fn]
			if pin == f.Pin {
				w = faultyWord
			}
			s.buf = append(s.buf, w)
		}
		inject(f.Node, nd.Type.EvalWords(s.buf))
	}

	for len(s.queue) > 0 {
		// Pop the topologically smallest queued node.
		id := s.pop()
		nd := s.c.Nodes[id]
		s.buf = s.buf[:0]
		for _, fn := range nd.Fanin {
			s.buf = append(s.buf, s.val(fn))
		}
		w := nd.Type.EvalWords(s.buf)
		if w != s.val(id) {
			inject(id, w)
		}
	}

	// Restore.
	for _, id := range s.touched {
		s.dirty[id] = false
	}
	s.touched = s.touched[:0]
	return detected
}

// val returns the current (possibly faulty) word of a node.
func (s *Simulator) val(id int) uint64 {
	if s.dirty[id] {
		return s.cur[id]
	}
	return s.good[id]
}

func (s *Simulator) push(id int) {
	if s.inQueue[id] {
		return
	}
	s.inQueue[id] = true
	s.queue = append(s.queue, id)
}

func (s *Simulator) pop() int {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		if s.pos[s.queue[i]] < s.pos[s.queue[best]] {
			best = i
		}
	}
	id := s.queue[best]
	s.queue[best] = s.queue[len(s.queue)-1]
	s.queue = s.queue[:len(s.queue)-1]
	s.inQueue[id] = false
	return id
}

// CampaignResult summarizes a random-pattern campaign (Table 6 columns).
type CampaignResult struct {
	TotalFaults   int
	Detected      int
	Remaining     []faults.Fault
	LastEffective int // 1-based index of the last pattern that detected a new fault
	Patterns      int // patterns applied
}

// Coverage returns detected / total.
func (r CampaignResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// CampaignOptions configures a random-pattern campaign.
type CampaignOptions struct {
	Patterns int   // random patterns to apply (rounded up to blocks of 64)
	Seed     int64 // pattern generator seed

	// Workers bounds the goroutines detecting faults within each pattern
	// block (0 = runtime.GOMAXPROCS(0), 1 = serial). The undetected-fault
	// list is partitioned across workers, each propagating through its own
	// forked simulator over the shared good values; detection words land in
	// a fault-indexed slice and are merged serially, so the result is
	// bit-identical for every worker count.
	Workers int

	// Tracer, when non-nil, wraps the campaign in a span.
	Tracer *obs.Tracer
}

// RunRandom applies maxPatterns random patterns (rounded up to blocks of 64)
// to the collapsed fault list and reports detection statistics. The same
// seed yields the same pattern sequence for circuits with equal input
// counts, mirroring the paper's before/after comparison methodology.
func RunRandom(c *circuit.Circuit, fl []faults.Fault, maxPatterns int, seed int64) CampaignResult {
	return Campaign(c, fl, CampaignOptions{Patterns: maxPatterns, Seed: seed})
}

// Campaign is RunRandom with explicit options (tracing in particular).
func Campaign(c *circuit.Circuit, fl []faults.Fault, opt CampaignOptions) CampaignResult {
	sp := opt.Tracer.StartSpan("faultsim.campaign")
	defer sp.End()
	sp.SetInt("faults", int64(len(fl)))
	s := New(c)
	w := par.Workers(opt.Workers)
	sp.SetInt("workers", int64(w))
	sims := []*Simulator{s}
	for len(sims) < w {
		sims = append(sims, s.Fork())
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	remaining := append([]faults.Fault(nil), fl...)
	res := CampaignResult{TotalFaults: len(fl)}
	words := make([]uint64, len(c.Inputs))
	detect := make([]uint64, len(remaining))
	blocks := (opt.Patterns + 63) / 64
	for b := 0; b < blocks && len(remaining) > 0; b++ {
		for j := range words {
			words[j] = rng.Uint64()
		}
		s.SetInputs(words)
		s.RunGood()
		mPatterns.Add(64)
		mFaultEval.Add(int64(len(remaining)))
		// Detect in parallel into the fault-indexed slice (DetectWord is a
		// pure function of the fault and the shared good block), then merge
		// serially in fault order: Detected, Remaining and LastEffective
		// come out exactly as in the serial loop. Campaign tails with few
		// undetected faults run inline — the goroutine spawn would cost
		// more than the block; the threshold only reschedules work, it
		// cannot change results. The nil tracer keeps the per-block
		// fan-out from flooding the span buffer.
		rem := remaining
		bw := w
		if len(rem) < blockGrain {
			bw = 1
		}
		par.Run(nil, "faultsim.block", bw, len(rem), func(worker, i int) {
			detect[i] = sims[worker].DetectWord(rem[i])
		})
		kept := remaining[:0]
		for i, f := range remaining {
			d := detect[i]
			if d == 0 {
				kept = append(kept, f)
				continue
			}
			res.Detected++
			first := b*64 + lowestBit(d) + 1
			if first > res.LastEffective {
				res.LastEffective = first
			}
		}
		remaining = kept
		// Per-block completion for the live gauge and the flight recorder
		// (the recorder throttles; off path is one atomic store + load).
		gBlocks.Set(int64(b + 1))
		obs.EmitProgress("faultsim.blocks", int64(b+1), int64(blocks))
	}
	res.Remaining = append([]faults.Fault(nil), remaining...)
	res.Patterns = blocks * 64
	mDetected.Add(int64(res.Detected))
	sp.SetInt("patterns", int64(res.Patterns))
	sp.SetInt("detected", int64(res.Detected))
	return res
}

func lowestBit(w uint64) int {
	return bits.TrailingZeros64(w)
}

// DetectedBy reports whether pattern pi (one bool per input) detects fault f.
func DetectedBy(c *circuit.Circuit, f faults.Fault, pi []bool) bool {
	s := New(c)
	words := make([]uint64, len(pi))
	for j, v := range pi {
		if v {
			words[j] = 1
		}
	}
	s.SetInputs(words)
	s.RunGood()
	return s.DetectWord(f)&1 != 0
}

// SortFaults orders a fault list deterministically (test helper).
func SortFaults(fl []faults.Fault) {
	sort.Slice(fl, func(i, j int) bool {
		a, b := fl[i], fl[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.Stuck && b.Stuck
	})
}
