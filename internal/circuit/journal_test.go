package circuit

import "testing"

func TestJournalRecordsEdits(t *testing.T) {
	c := New("j")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "g", a, b)
	h := c.AddGate(Or, "h", g, b)
	c.MarkOutput(h)

	c.BeginJournal()
	if j := c.TakeJournal(); len(j) != 0 {
		t.Fatalf("fresh journal not empty: %v", j)
	}

	c.SetFanin(h, 0, a)
	j := c.TakeJournal()
	if !j[h] || !j[a] {
		t.Fatalf("SetFanin journal missing endpoints: %v", j)
	}

	// g lost its last consumer; SweepDead must report it.
	c.SweepDead()
	j = c.TakeJournal()
	if !j[g] {
		t.Fatalf("SweepDead journal missing removed node: %v", j)
	}

	k := c.AddGate(Nand, "k", a, b)
	c.ReplaceUses(h, k)
	j = c.TakeJournal()
	if !j[k] || !j[h] {
		t.Fatalf("AddGate+ReplaceUses journal incomplete: %v", j)
	}

	c.EndJournal()
	c.SetFanin(h, 0, b)
	if c.journal != nil {
		t.Fatal("journal still recording after EndJournal")
	}
}

func TestJournalCoversSimplify(t *testing.T) {
	c := New("s")
	a := c.AddInput("a")
	one := c.AddGate(Const1, "one")
	g := c.AddGate(And, "g", a, one) // AND with identity constant: pin dropped
	h := c.AddGate(And, "h", g, g)   // duplicate fanin, then 1-input -> Buf
	c.MarkOutput(h)

	c.BeginJournal()
	c.Simplify()
	j := c.TakeJournal()
	if !j[g] {
		t.Fatalf("simplify journal missing rewritten gate g: %v", j)
	}
	if !j[h] {
		t.Fatalf("simplify journal missing rewritten gate h: %v", j)
	}
}

func TestJournalOffByDefault(t *testing.T) {
	c := New("off")
	a := c.AddInput("a")
	g := c.AddGate(Not, "g", a)
	c.MarkOutput(g)
	if j := c.TakeJournal(); j != nil {
		t.Fatalf("TakeJournal without BeginJournal = %v", j)
	}
}
