package delay

import (
	"math/rand"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/paths"
)

func TestAlgebraBasics(t *testing.T) {
	if FromPair(false, true) != R || FromPair(true, false) != F ||
		FromPair(false, false) != S0 || FromPair(true, true) != S1 {
		t.Fatal("FromPair wrong")
	}
	for _, v := range []V5{S0, S1, R, F, XX} {
		if v.Invert().Invert() != v {
			t.Fatalf("Invert not involutive on %v", v)
		}
	}
	// AND: controlling S0 dominates even XX.
	if andV(XX, S0) != S0 || andV(S0, R) != S0 {
		t.Fatal("AND S0 domination")
	}
	if andV(R, R) != R || andV(F, F) != F {
		t.Fatal("AND same-direction transitions")
	}
	if andV(R, F) != XX {
		t.Fatal("AND mixed transitions must be XX (hazard)")
	}
	if orV(S1, XX) != S1 || orV(R, R) != R || orV(R, F) != XX {
		t.Fatal("OR rules")
	}
	if xorV(R, S0) != R || xorV(R, S1) != F || xorV(R, F) != XX {
		t.Fatal("XOR rules")
	}
}

func TestSim5ConsistentWithBooleanSim(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, b := range gen.SmallSuite()[:2] {
		c := b.Build()
		n := len(c.Inputs)
		for trial := 0; trial < 50; trial++ {
			v1 := make([]bool, n)
			v2 := make([]bool, n)
			for j := 0; j < n; j++ {
				v1[j] = rng.Intn(2) == 1
				v2[j] = rng.Intn(2) == 1
			}
			val := Sim5(c, v1, v2)
			e1 := evalAll(c, v1)
			e2 := evalAll(c, v2)
			for _, id := range c.Topo() {
				ini, fin := val[id].Initial(), val[id].Final()
				if ini >= 0 && (ini == 1) != e1[id] {
					t.Fatalf("%s node %d: initial mismatch (%v)", b.Name, id, val[id])
				}
				if fin >= 0 && (fin == 1) != e2[id] {
					t.Fatalf("%s node %d: final mismatch (%v)", b.Name, id, val[id])
				}
			}
		}
	}
}

func evalAll(c *circuit.Circuit, pi []bool) []bool {
	val := make([]bool, len(c.Nodes))
	for i, id := range c.Inputs {
		val[id] = pi[i]
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		in := make([]bool, len(nd.Fanin))
		for i, f := range nd.Fanin {
			in[i] = val[f]
		}
		val[id] = nd.Type.Eval(in)
	}
	return val
}

func TestEnumeratePathsMatchesProcedure1(t *testing.T) {
	// The number of enumerated paths must equal the Procedure 1 count.
	c17, _ := bench.ParseString(bench.C17, "c17")
	if got, want := len(EnumeratePaths(c17, 0)), int(paths.MustCount(c17)); got != want {
		t.Fatalf("c17: enumerated %d, Procedure 1 says %d", got, want)
	}
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		want := paths.MustCount(c)
		if want > 200000 {
			continue
		}
		if got := len(EnumeratePaths(c, 0)); uint64(got) != want {
			t.Fatalf("%s: enumerated %d, Procedure 1 says %d", b.Name, got, want)
		}
	}
}

func TestEnumeratePathsParallelEdges(t *testing.T) {
	// XOR(x, x) has two parallel edges: two paths.
	c := circuit.New("px")
	x := c.AddInput("x")
	g := c.AddGate(circuit.Xor, "", x, x)
	c.MarkOutput(g)
	ps := EnumeratePaths(c, 0)
	if len(ps) != 2 {
		t.Fatalf("parallel edges give %d paths, want 2", len(ps))
	}
}

func TestEdgeRobustAndGate(t *testing.T) {
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, "", a, b)
	c.MarkOutput(g)
	cases := []struct {
		v1, v2 []bool
		pin    int
		want   bool
	}{
		// a falls (toward controlling 0): side must be S1.
		{[]bool{true, true}, []bool{false, true}, 0, true},
		// a rises with side S1: allowed.
		{[]bool{false, true}, []bool{true, true}, 0, true},
		// a rises with side rising: allowed (robust for transitions away
		// from controlling).
		{[]bool{false, false}, []bool{true, true}, 0, true},
		// a falls with side rising: NOT robust.
		{[]bool{true, false}, []bool{false, true}, 0, false},
		// a falls with side S0: output stuck at 0, not sensitized.
		{[]bool{true, false}, []bool{false, false}, 0, false},
	}
	for i, cse := range cases {
		val := Sim5(c, cse.v1, cse.v2)
		if got := EdgeRobust(c, val, g, cse.pin); got != cse.want {
			t.Errorf("case %d: EdgeRobust = %v, want %v", i, got, cse.want)
		}
	}
}

func TestEdgeRobustOrGate(t *testing.T) {
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.Or, "", a, b)
	c.MarkOutput(g)
	// a rises (toward controlling 1): side must be steady S0.
	val := Sim5(c, []bool{false, false}, []bool{true, false})
	if !EdgeRobust(c, val, g, 0) {
		t.Fatal("rising through OR with side S0 should be robust")
	}
	// a rises with side falling: not robust.
	val = Sim5(c, []bool{false, true}, []bool{true, false})
	if EdgeRobust(c, val, g, 0) {
		t.Fatal("rising through OR with falling side accepted")
	}
	// a falls with side falling: robust (away from controlling).
	val = Sim5(c, []bool{true, true}, []bool{false, false})
	if !EdgeRobust(c, val, g, 0) {
		t.Fatal("falling through OR with falling side should be robust")
	}
}

func TestPathRobustChain(t *testing.T) {
	// a -> AND(a,b) -> OR(.,d) -> out
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "", a, b)
	g2 := c.AddGate(circuit.Or, "", g1, d)
	c.MarkOutput(g2)
	path := []int{a, g1, g2}
	pins := []int{0, 0}
	// a rises, b=S1, d=S0: robust.
	if !PathRobust(c, path, pins, []bool{false, true, false}, []bool{true, true, false}) {
		t.Fatal("clean sensitization rejected")
	}
	// d=S1 blocks the OR.
	if PathRobust(c, path, pins, []bool{false, true, true}, []bool{true, true, true}) {
		t.Fatal("blocked path accepted")
	}
	// No transition on a.
	if PathRobust(c, path, pins, []bool{true, true, false}, []bool{true, true, false}) {
		t.Fatal("steady launch accepted")
	}
}

func TestRunRandomCampaignBasics(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	res := RunRandom(c, CampaignOptions{MaxPairs: 3000, Seed: 1})
	if res.TotalFaults != 22 {
		t.Fatalf("c17 total path faults = %d, want 22 (2*11 paths)", res.TotalFaults)
	}
	if res.Detected == 0 {
		t.Fatal("no robust detections on c17")
	}
	if uint64(res.Detected) > res.TotalFaults {
		t.Fatalf("detected %d > total %d", res.Detected, res.TotalFaults)
	}
	r2 := RunRandom(c, CampaignOptions{MaxPairs: 3000, Seed: 1})
	if r2.Detected != res.Detected || r2.LastEffective != res.LastEffective {
		t.Fatal("campaign not deterministic")
	}
}

func TestRunRandomMatchesBruteForce(t *testing.T) {
	// Tiny circuit: brute-force every (v1,v2) pair over every path and
	// compare the total robustly-detectable fault count with a saturating
	// campaign.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.Nand, "", a, b)
	g2 := c.AddGate(circuit.Or, "", g1, a)
	c.MarkOutput(g2)

	ps := EnumeratePaths(c, 0)
	brute := map[string]bool{}
	for pidx, p := range ps {
		for m1 := 0; m1 < 4; m1++ {
			for m2 := 0; m2 < 4; m2++ {
				v1 := []bool{m1&2 != 0, m1&1 != 0}
				v2 := []bool{m2&2 != 0, m2&1 != 0}
				if PathRobust(c, p.Nodes, p.Pins, v1, v2) {
					dir := "r"
					if Sim5(c, v1, v2)[p.Nodes[0]] == F {
						dir = "f"
					}
					brute[string(rune('0'+pidx))+dir] = true
				}
			}
		}
	}
	res := RunRandom(c, CampaignOptions{MaxPairs: 5000, Seed: 3})
	if res.Detected != len(brute) {
		t.Fatalf("campaign detected %d, brute force %d", res.Detected, len(brute))
	}
}

func TestQuietStopping(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	res := RunRandom(c, CampaignOptions{MaxPairs: 100000, QuietPairs: 500, Seed: 2})
	if res.Pairs >= 100000 {
		t.Fatal("quiet stopping did not trigger")
	}
	if res.LastEffective > res.Pairs {
		t.Fatal("inconsistent effective pair index")
	}
}
