package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the conservative static call graph the interprocedural
// rules (rules_interproc.go) run on. The graph covers every module package
// the loader has type-checked — the requested packages plus everything they
// import inside the module — so an effect hidden an arbitrary number of
// calls deep is still attributed to the seam that reaches it.
//
// Resolution strategy, most to least precise:
//
//   - direct calls and concrete method calls resolve through go/types
//     (instantiated generics resolve to their generic declaration);
//   - calls through function-typed variables, struct fields and parameters
//     resolve to the set of function values ever observed flowing into that
//     object anywhere in the analyzed module (assignments, var initializers,
//     composite-literal fields, and arguments at resolved call sites);
//   - interface method calls and any remaining indirect calls are
//     unresolvable: they carry no edges, and the purity rule reports them as
//     worst-case when the called value is rooted in shared state.
//
// Effects recorded per function while scanning bodies:
//
//   - wall-clock / global-RNG reads (the wallclock rule's source set, plus
//     indirect calls whose tracked value set includes such a function);
//   - unguarded writes to package-level variables;
//   - unguarded writes to captured variables (function literals);
//   - calls to mutating circuit.Circuit methods (the nodemut mutator set);
//   - the set of parameters (receiver first) the function writes through,
//     which dataflow.go closes over calls with a fixpoint.
//
// "Unguarded" is a lexical heuristic: a write is considered barriered when a
// sync Lock/RLock/Wait/Once.Do call, a channel operation, or a select
// statement appears earlier in the same function body. That is exactly the
// shape of every sanctioned site in this repository (mutex-guarded memo
// tables, signal-channel handoff); anything cleverer needs a justification.

// rootKind classifies what an lvalue or call-operand expression is
// ultimately rooted in, from the perspective of one function.
type rootKind int

const (
	rootLocal    rootKind = iota // local variable or fresh value — task-private
	rootParam                    // reached through a parameter (receiver = 0)
	rootCaptured                 // free variable of a function literal
	rootGlobal                   // package-level variable
)

func (k rootKind) String() string {
	switch k {
	case rootParam:
		return "parameter"
	case rootCaptured:
		return "captured variable"
	case rootGlobal:
		return "global variable"
	}
	return "local"
}

// fact is one locally observed effect: position, human-readable description
// for witnesses, the root variable when one is involved, and whether the
// effect was reached through a tracked function value rather than directly.
type fact struct {
	pos      token.Pos
	desc     string
	obj      types.Object // written variable, for captured/global writes
	indirect bool         // reached via a function-typed variable
}

// argInfo is the rooting of one call operand (receiver first for methods).
type argInfo struct {
	pos      token.Pos
	kind     rootKind
	paramIdx int          // index into the caller's params when kind == rootParam
	obj      types.Object // root variable for captured/global roots
}

// callSite is one call expression inside a function body.
type callSite struct {
	pos     token.Pos
	callees []*fnode    // resolved module callees (>1 for tracked func values)
	ext     *types.Func // resolved non-module or bodiless callee
	dynamic bool        // interface dispatch or untracked function value
	guarded bool        // lexically after a barrier in the same body
	// sanitized marks calls into the observability packages (the wallclock
	// rule's nondeterministicPkgs set): effects inside them do not propagate
	// out — their clock readings feed reports and telemetry, never pipeline
	// results (obsdiff enforces that dynamically), and their internals are
	// synchronized under their own -race coverage.
	sanitized bool
	// boundary marks the par fan-out/cache primitives: every closure handed
	// to them is verified at its own seam by the purity rule, so
	// reachability does not tunnel through the pool machinery itself.
	boundary bool
	spawned  bool      // call is the operand of a go statement
	args     []argInfo // receiver first for method calls; for dynamic
	// ident/selector calls, args[0] is the rooting of the called value.
	calleeRooted bool // args[0] is the called value, not a receiver/argument
	// funcArgs records function values appearing as arguments (positional
	// index, receiver excluded), for seam-entry discovery: literals and
	// function names resolve immediately; a variable argument carries its
	// object for resolution against the assignment index.
	funcArgs []funcArg
}

type funcArg struct {
	idx    int // positional argument index
	ref    funcRef
	varObj types.Object // set when the argument is a function-typed variable
}

// fnode is one function in the graph: a declared function/method or a
// function literal.
type fnode struct {
	id   int
	obj  *types.Func   // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	decl *ast.FuncDecl // nil for literals
	pkg  *Package
	name string // display name: pkg.Fn, pkg.(*T).M, pkg.Fn$N for literals
	pos  token.Pos
	end  token.Pos
	body *ast.BlockStmt

	params      []types.Object // receiver first, then declared parameters
	speculative bool           // carries (or is nested in) //lint:speculative
	litCount    int            // literals numbered under this function

	calls          []*callSite
	clockReads     []fact
	globalWrites   []fact
	capturedWrites []fact
	circuitCalls   []fact // calls to mutating circuit.Circuit methods
	mutLocal       uint64 // bit i: writes through params[i] in this body
	mutAll         uint64 // closed over calls by the dataflow fixpoint
}

// funcDisplayName renders a stable human-readable name for diagnostics.
func funcDisplayName(pkg *Package, obj *types.Func) string {
	if obj == nil {
		return pkg.Name + ".func"
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		if named := namedOf(t); named != nil {
			return fmt.Sprintf("%s.(%s%s).%s", pkg.Name, ptr, named.Obj().Name(), obj.Name())
		}
	}
	return pkg.Name + "." + obj.Name()
}

// graph is the whole-module call graph plus the function-value assignment
// index used to resolve indirect calls.
type graph struct {
	l     *Loader
	pkgs  []*Package // analysis universe, sorted by import path
	nodes []*fnode
	byObj map[*types.Func]*fnode
	byLit map[*ast.FuncLit]*fnode

	// assigns maps a function-typed variable/field/parameter object to every
	// function value observed flowing into it anywhere in the universe.
	assigns map[types.Object][]funcRef

	pending []pendingCall // indirect calls, resolved once assigns is complete
}

// funcRef is one function value: a module node, or an external function.
type funcRef struct {
	node *fnode
	ext  *types.Func
}

type pendingCall struct {
	owner *fnode
	site  *callSite
	root  types.Object // the called variable/field
}

// buildGraph constructs the call graph over every package the loader has
// type-checked. The node order (and therefore every diagnostic order
// downstream) is deterministic: packages sorted by path, files in parse
// order, declarations in source order.
func buildGraph(l *Loader) *graph {
	g := &graph{
		l:       l,
		pkgs:    l.Loaded(),
		byObj:   map[*types.Func]*fnode{},
		byLit:   map[*ast.FuncLit]*fnode{},
		assigns: map[types.Object][]funcRef{},
	}
	// Register every declared function first, scan bodies second: calls
	// resolve through byObj, which must cover forward references (a call to
	// a function declared later in the file or package).
	var decls []*fnode
	for _, p := range g.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
					decls = append(decls, g.addDecl(p, decl))
				}
			}
		}
	}
	for _, p := range g.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if decl, ok := d.(*ast.GenDecl); ok {
					g.scanPkgDecl(p, decl)
				}
			}
		}
	}
	for _, n := range decls {
		g.scanBody(n)
	}
	// Second pass: resolve indirect calls against the assignment index. A
	// call through a variable that ever held a wall-clock source becomes a
	// clock fact on the calling function.
	for _, pc := range g.pending {
		refs := g.assigns[pc.root]
		if len(refs) == 0 {
			pc.site.dynamic = true
			continue
		}
		for _, r := range refs {
			if r.node != nil {
				pc.site.callees = append(pc.site.callees, r.node)
			} else if r.ext != nil {
				if pc.site.ext == nil {
					pc.site.ext = r.ext
				}
				if isClockSource(r.ext) {
					pc.owner.clockReads = append(pc.owner.clockReads, fact{
						pos: pc.site.pos,
						desc: fmt.Sprintf("call through %s resolves to %s.%s",
							objName(pc.root), r.ext.Pkg().Path(), r.ext.Name()),
						indirect: true,
					})
				}
			}
		}
	}
	g.classifyCallSites()
	return g
}

// scanPkgDecl records function values flowing into package-level variables
// and composite-literal fields in their initializers.
func (g *graph) scanPkgDecl(p *Package, decl *ast.GenDecl) {
	if decl.Tok != token.VAR {
		return
	}
	// Pseudo-node giving initializer literals a package context; not part of
	// the graph itself (package init order is outside the rules' scope).
	pseudo := &fnode{pkg: p, name: p.Name + ".init", pos: decl.Pos(), end: decl.End()}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			g.recordFuncFlow(pseudo, name, vs.Values[i])
			g.scanCompositeFlows(pseudo, vs.Values[i])
		}
	}
}

// scanCompositeFlows records function values stored into struct fields via
// composite literals anywhere inside e.
func (g *graph) scanCompositeFlows(n *fnode, e ast.Expr) {
	ast.Inspect(e, func(nd ast.Node) bool {
		kv, ok := nd.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := n.pkg.Info.ObjectOf(key).(*types.Var); ok && v.IsField() {
			if ref, ok := g.funcValueOf(n, kv.Value); ok {
				g.assigns[v] = append(g.assigns[v], ref)
			}
		}
		return true
	})
}

func (g *graph) addDecl(p *Package, fd *ast.FuncDecl) *fnode {
	obj, _ := p.Info.Defs[fd.Name].(*types.Func)
	n := &fnode{
		id:          len(g.nodes),
		obj:         obj,
		decl:        fd,
		pkg:         p,
		name:        funcDisplayName(p, obj),
		pos:         fd.Pos(),
		end:         fd.End(),
		body:        fd.Body,
		speculative: isSpeculative(fd),
	}
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			if sig.Recv() != nil {
				n.params = append(n.params, sig.Recv())
			}
			for i := 0; i < sig.Params().Len(); i++ {
				n.params = append(n.params, sig.Params().At(i))
			}
		}
		g.byObj[obj] = n
	}
	g.nodes = append(g.nodes, n)
	return n
}

// addLit creates (or returns) the node for a function literal nested in
// parent.
func (g *graph) addLit(parent *fnode, lit *ast.FuncLit) *fnode {
	if n, ok := g.byLit[lit]; ok {
		return n
	}
	parent.litCount++
	n := &fnode{
		id:   len(g.nodes),
		lit:  lit,
		pkg:  parent.pkg,
		name: fmt.Sprintf("%s$%d", parent.name, parent.litCount),
		pos:  lit.Pos(),
		end:  lit.End(),
		body: lit.Body,
		// A literal inside a //lint:speculative function inherits the seam:
		// the annotation's contract covers nested closures (the syntactic
		// rule already checks them as one body).
		speculative: parent.speculative,
	}
	if sig, ok := parent.pkg.Info.Types[lit].Type.(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			n.params = append(n.params, sig.Params().At(i))
		}
	}
	g.byLit[lit] = n
	g.nodes = append(g.nodes, n)
	g.scanBody(n)
	return n
}

// barrierPositions collects the lexical positions of synchronization
// barriers in one body: sync Lock/RLock/Wait/Do calls, channel sends and
// receives, channel ranges, and select statements.
func (g *graph) barrierPositions(n *fnode) []token.Pos {
	var out []token.Pos
	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			return false // nested literals barrier for themselves
		case *ast.SendStmt:
			out = append(out, s.Pos())
		case *ast.SelectStmt:
			out = append(out, s.Pos())
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				out = append(out, s.Pos())
			}
		case *ast.RangeStmt:
			if tv, ok := n.pkg.Info.Types[s.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					out = append(out, s.Pos())
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if fn, _ := n.pkg.Info.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					switch fn.Name() {
					case "Lock", "RLock", "Wait", "Do":
						out = append(out, s.Pos())
					}
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func guardedAt(barriers []token.Pos, pos token.Pos) bool {
	i := sort.Search(len(barriers), func(i int) bool { return barriers[i] >= pos })
	return i > 0
}

// scanBody walks one function body (stopping at nested literals, which get
// their own nodes) recording calls, writes, clock reads and function-value
// flows.
func (g *graph) scanBody(n *fnode) {
	barriers := g.barrierPositions(n)
	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			g.addLit(n, s)
			return false
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if len(s.Rhs) == len(s.Lhs) {
					g.recordFuncFlow(n, lhs, s.Rhs[i])
				}
				if s.Tok != token.DEFINE {
					g.recordWrite(n, lhs, guardedAt(barriers, lhs.Pos()), "")
				}
			}
		case *ast.IncDecStmt:
			g.recordWrite(n, s.X, guardedAt(barriers, s.Pos()), "")
		case *ast.GoStmt:
			g.addCall(n, s.Call, barriers, true)
			return false
		case *ast.DeferStmt:
			g.addCall(n, s.Call, barriers, false)
			return false
		case *ast.CallExpr:
			g.addCall(n, s, barriers, false)
			return false
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					g.recordFuncFlow(n, name, s.Values[i])
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := s.Key.(*ast.Ident); ok {
				if v, ok := n.pkg.Info.ObjectOf(key).(*types.Var); ok && v.IsField() {
					if ref, ok := g.funcValueOf(n, s.Value); ok {
						g.assigns[v] = append(g.assigns[v], ref)
					}
				}
			}
		}
		return true
	})
}

// scanNested visits an operand expression for nested calls, literals and
// composite-literal function flows (used for call arguments and callee
// expressions, which addCall does not descend into via scanBody).
func (g *graph) scanNested(n *fnode, e ast.Expr, barriers []token.Pos) {
	ast.Inspect(e, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			g.addLit(n, s)
			return false
		case *ast.CallExpr:
			g.addCall(n, s, barriers, false)
			return false
		case *ast.KeyValueExpr:
			if key, ok := s.Key.(*ast.Ident); ok {
				if v, ok := n.pkg.Info.ObjectOf(key).(*types.Var); ok && v.IsField() {
					if ref, ok := g.funcValueOf(n, s.Value); ok {
						g.assigns[v] = append(g.assigns[v], ref)
					}
				}
			}
		}
		return true
	})
}

// addCall records one call site: resolution, operand rooting, builtin
// write-throughs, and recursion into nested expressions.
func (g *graph) addCall(n *fnode, call *ast.CallExpr, barriers []token.Pos, spawned bool) {
	info := n.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversions are not calls; their operand may still contain one.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			g.scanNested(n, a, barriers)
		}
		return
	}

	site := &callSite{pos: call.Pos(), guarded: guardedAt(barriers, call.Pos()), spawned: spawned}

	g.scanNested(n, call.Fun, barriers)
	for _, a := range call.Args {
		g.scanNested(n, a, barriers)
	}

	var recvExpr ast.Expr
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			g.resolveStatic(n, site, obj)
		case *types.Builtin:
			g.recordBuiltin(n, call, obj.Name(), barriers)
			return
		case *types.Var:
			g.pending = append(g.pending, pendingCall{n, site, obj})
			site.args = append(site.args, g.rootOf(n, fn))
			site.calleeRooted = true
		default:
			site.dynamic = true
		}
	case *ast.SelectorExpr:
		switch obj := info.Uses[fn.Sel].(type) {
		case *types.Func:
			if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
				recvExpr = fn.X
			}
			g.resolveStatic(n, site, obj)
		case *types.Var:
			g.pending = append(g.pending, pendingCall{n, site, obj})
			site.args = append(site.args, g.rootOf(n, fn))
			site.calleeRooted = true
		default:
			site.dynamic = true
		}
	case *ast.FuncLit:
		site.callees = append(site.callees, g.addLit(n, fn))
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Explicit generic instantiation f[T](...), or a call of an indexed
		// function value (the latter stays dynamic).
		var base ast.Expr
		switch ix := fun.(type) {
		case *ast.IndexExpr:
			base = ix.X
		case *ast.IndexListExpr:
			base = ix.X
		}
		switch b := ast.Unparen(base).(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[b].(*types.Func); ok {
				g.resolveStatic(n, site, obj)
			} else {
				site.dynamic = true
			}
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[b.Sel].(*types.Func); ok {
				if sel, ok := info.Selections[b]; ok && sel.Kind() == types.MethodVal {
					recvExpr = b.X
				}
				g.resolveStatic(n, site, obj)
			} else {
				site.dynamic = true
			}
		default:
			site.dynamic = true
		}
	default:
		site.dynamic = true
	}

	// Operand rooting: receiver first, then positional arguments.
	if recvExpr != nil {
		site.args = append(site.args, g.rootOf(n, recvExpr))
	}
	for _, a := range call.Args {
		site.args = append(site.args, g.rootOf(n, a))
	}

	// Direct wall-clock / global-RNG call.
	if site.ext != nil && isClockSource(site.ext) {
		n.clockReads = append(n.clockReads, fact{pos: call.Pos(),
			desc: site.ext.Pkg().Path() + "." + site.ext.Name()})
	}

	// Mutating circuit.Circuit method call (the nodemut mutator set).
	if mut := g.circuitMutator(site); mut != "" {
		n.circuitCalls = append(n.circuitCalls, fact{pos: call.Pos(), desc: "Circuit." + mut})
	}

	g.trackArgFlows(n, site, call)

	n.calls = append(n.calls, site)
}

// circuitMutator reports the method name when the site statically calls one
// of the mutating circuit.Circuit methods.
func (g *graph) circuitMutator(site *callSite) string {
	fn := site.ext
	if fn == nil && len(site.callees) > 0 {
		fn = site.callees[0].obj
	}
	if fn == nil || !circuitMutators[fn.Name()] {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Name() == "Circuit" && obj.Pkg() != nil && obj.Pkg().Path() == g.l.ModPath+"/internal/circuit" {
		return fn.Name()
	}
	return ""
}

// resolveStatic settles a call with a statically known *types.Func callee.
func (g *graph) resolveStatic(n *fnode, site *callSite, obj *types.Func) {
	obj = origin(obj)
	if target, ok := g.byObj[obj]; ok {
		site.callees = append(site.callees, target)
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			site.dynamic = true // interface dispatch: unresolvable
			site.ext = obj
			return
		}
	}
	site.ext = obj // external (stdlib) or bodiless module function
}

// origin maps an instantiated generic function back to its declaration.
func origin(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// trackArgFlows records function values appearing in call arguments: into
// the resolved callee's parameter objects (for later indirect resolution).
// A callback handed to a call with no resolved module callee is
// conservatively treated as invoked by the caller.
func (g *graph) trackArgFlows(n *fnode, site *callSite, call *ast.CallExpr) {
	for i, a := range call.Args {
		ref, ok := g.funcValueOf(n, a)
		if !ok {
			// A function-typed variable argument: remember the object so
			// seam-entry discovery can resolve it via the assignment index.
			if id, isIdent := ast.Unparen(a).(*ast.Ident); isIdent {
				if v, isVar := n.pkg.Info.Uses[id].(*types.Var); isVar {
					if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
						site.funcArgs = append(site.funcArgs, funcArg{idx: i, varObj: v})
					}
				}
			}
			continue
		}
		site.funcArgs = append(site.funcArgs, funcArg{idx: i, ref: ref})
		for _, callee := range site.callees {
			off := 0
			if callee.obj != nil {
				if sig, sok := callee.obj.Type().(*types.Signature); sok && sig.Recv() != nil {
					off = 1
				}
			}
			idx := i + off
			if idx >= len(callee.params) && len(callee.params) > 0 {
				idx = len(callee.params) - 1 // variadic tail
			}
			if idx >= 0 && idx < len(callee.params) {
				g.assigns[callee.params[idx]] = append(g.assigns[callee.params[idx]], ref)
			}
		}
		if len(site.callees) == 0 && ref.node != nil {
			site.callees = append(site.callees, ref.node)
		}
	}
}

// recordFuncFlow tracks a function value flowing into a variable or field.
func (g *graph) recordFuncFlow(n *fnode, lhs ast.Node, rhs ast.Expr) {
	ref, ok := g.funcValueOf(n, rhs)
	if !ok {
		return
	}
	var target types.Object
	switch l := lhs.(type) {
	case *ast.Ident:
		target = n.pkg.Info.ObjectOf(l)
	case ast.Expr:
		switch le := ast.Unparen(l).(type) {
		case *ast.Ident:
			target = n.pkg.Info.ObjectOf(le)
		case *ast.SelectorExpr:
			target = n.pkg.Info.ObjectOf(le.Sel)
		}
	}
	if target != nil {
		g.assigns[target] = append(g.assigns[target], ref)
	}
}

// funcValueOf resolves an expression denoting a function value: a literal, a
// function identifier, or a method value.
func (g *graph) funcValueOf(n *fnode, e ast.Expr) (funcRef, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.FuncLit:
		return funcRef{node: g.addLit(n, x)}, true
	case *ast.Ident:
		if fn, ok := n.pkg.Info.Uses[x].(*types.Func); ok {
			fn = origin(fn)
			if target, ok := g.byObj[fn]; ok {
				return funcRef{node: target}, true
			}
			return funcRef{ext: fn}, true
		}
	case *ast.SelectorExpr:
		if fn, ok := n.pkg.Info.Uses[x.Sel].(*types.Func); ok {
			fn = origin(fn)
			if target, ok := g.byObj[fn]; ok {
				return funcRef{node: target}, true
			}
			return funcRef{ext: fn}, true
		}
	}
	return funcRef{}, false
}

// recordBuiltin handles builtins with write-through semantics and still
// scans their arguments.
func (g *graph) recordBuiltin(n *fnode, call *ast.CallExpr, name string, barriers []token.Pos) {
	switch name {
	case "copy", "delete":
		if len(call.Args) > 0 {
			g.recordWrite(n, call.Args[0], guardedAt(barriers, call.Pos()), name)
		}
	}
	for _, a := range call.Args {
		g.scanNested(n, a, barriers)
	}
}

// recordWrite classifies one write target by its root and files the
// corresponding effect. via names the builtin (copy/delete) when the write
// happens through one.
func (g *graph) recordWrite(n *fnode, lhs ast.Expr, guarded bool, via string) {
	ai := g.rootOf(n, lhs)
	if guarded {
		return
	}
	prefix := "write to"
	if via != "" {
		prefix = via + " into"
	}
	switch ai.kind {
	case rootGlobal:
		n.globalWrites = append(n.globalWrites, fact{pos: lhs.Pos(), obj: ai.obj,
			desc: fmt.Sprintf("%s global %s", prefix, objName(ai.obj))})
	case rootCaptured:
		n.capturedWrites = append(n.capturedWrites, fact{pos: lhs.Pos(), obj: ai.obj,
			desc: fmt.Sprintf("%s captured %s", prefix, objName(ai.obj))})
	case rootParam:
		// Re-binding the parameter variable itself is a local write; only a
		// write through it (field, element, deref) mutates the argument.
		if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain && ai.paramIdx >= 0 && ai.paramIdx < 64 {
			n.mutLocal |= 1 << uint(ai.paramIdx)
		}
	}
}

func objName(o types.Object) string {
	if o == nil {
		return "state"
	}
	if o.Pkg() != nil {
		return o.Pkg().Name() + "." + o.Name()
	}
	return o.Name()
}

// rootOf resolves the base of an expression: what storage a write (or a
// mutating method call) through this expression would ultimately touch,
// from node n's point of view.
func (g *graph) rootOf(n *fnode, e ast.Expr) argInfo {
	pos := e.Pos()
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return argInfo{pos: pos, kind: rootLocal, paramIdx: -1}
			}
			e = x.X // &v: a write through the pointer lands on v
		case *ast.SelectorExpr:
			// pkg.Var: the selector resolves to a package-level object.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := n.pkg.Info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := n.pkg.Info.Uses[x.Sel].(*types.Var); ok {
						return argInfo{pos: pos, kind: rootGlobal, paramIdx: -1, obj: v}
					}
					return argInfo{pos: pos, kind: rootLocal, paramIdx: -1}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			// A subscript computed from this function's own variables marks
			// task-indexed state (out[i], sims[worker]): treated as private,
			// the central exception the par contract is built on.
			if g.usesOwnVar(n, x.Index) {
				return argInfo{pos: pos, kind: rootLocal, paramIdx: -1}
			}
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			obj := n.pkg.Info.ObjectOf(x)
			if _, ok := obj.(*types.Var); !ok {
				return argInfo{pos: pos, kind: rootLocal, paramIdx: -1}
			}
			return argInfo{pos: pos, kind: g.classifyRoot(n, obj), paramIdx: g.paramIndex(n, obj), obj: obj}
		default:
			// Call results, literals, conversions: fresh values.
			return argInfo{pos: pos, kind: rootLocal, paramIdx: -1}
		}
	}
}

// usesOwnVar reports whether the expression mentions a variable declared
// inside n (parameters included) — the task-indexed-subscript test.
func (g *graph) usesOwnVar(n *fnode, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(nd ast.Node) bool {
		if found {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := n.pkg.Info.ObjectOf(id).(*types.Var); ok {
			if g.paramIndex(n, v) >= 0 || (!v.IsField() && !isPkgLevel(v) && v.Pos() >= n.pos && v.Pos() <= n.end) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (g *graph) paramIndex(n *fnode, v types.Object) int {
	for i, p := range n.params {
		if p == v {
			return i
		}
	}
	return -1
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (g *graph) classifyRoot(n *fnode, obj types.Object) rootKind {
	v, ok := obj.(*types.Var)
	if !ok {
		return rootLocal
	}
	if g.paramIndex(n, v) >= 0 {
		return rootParam
	}
	if v.IsField() {
		return rootLocal // bare field ident: only reachable in method bodies via receiver
	}
	if isPkgLevel(v) {
		return rootGlobal
	}
	if v.Pos() >= n.pos && v.Pos() <= n.end {
		return rootLocal
	}
	if n.lit != nil {
		return rootCaptured
	}
	// Free variables of a declared function can only be package-level; a
	// position outside the declaration means another file's package var.
	return rootGlobal
}

// isClockSource reports whether fn is a wall-clock or global-RNG read — the
// wallclock rule's source set.
func isClockSource(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return wallclockTime[fn.Name()]
	case "math/rand", "math/rand/v2":
		return wallclockRand[fn.Name()]
	}
	return false
}

// classifyCallSites fills the sanitized/boundary bits once resolution is
// complete.
func (g *graph) classifyCallSites() {
	mod := g.l.ModPath
	parPath := mod + "/internal/par"
	for _, n := range g.nodes {
		for _, c := range n.calls {
			callee := c.ext
			if callee == nil && len(c.callees) == 1 && c.callees[0].obj != nil {
				callee = c.callees[0].obj
			}
			if callee == nil || callee.Pkg() == nil {
				continue
			}
			path := callee.Pkg().Path()
			if rel, ok := strings.CutPrefix(path, mod+"/"); ok && !strings.Contains(rel, "testdata/") {
				// Fixture packages live under internal/lint/testdata but model
				// pipeline code; only the real analyzer/observability packages
				// sanitize edges.
				for _, p := range nondeterministicPkgs {
					if rel == strings.TrimSuffix(p, "/") || strings.HasPrefix(rel, p) {
						c.sanitized = true
						break
					}
				}
			}
			// par fan-out and cache primitives: seam boundaries. Each
			// closure handed to them is independently verified as an entry
			// point, so reachability does not tunnel through the pool
			// machinery (whose own discipline the sharedmut rule and the
			// -race tests cover). Queue.Push is deliberately NOT a boundary:
			// calling it from a worker violates the coordinator-side
			// contract and must surface through the purity rule.
			if path == parPath {
				switch callee.Name() {
				case "Run", "Map", "MapErr", "Workers", "SeedFor", "SetClock",
					"Get", "Set", "Len", "GetOrCompute", "Drain", "NewCache", "NewQueue":
					c.boundary = true
				}
			}
		}
	}
}
