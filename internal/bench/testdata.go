package bench

// C17 is the classic ISCAS-85 c17 netlist (public domain), used throughout
// the test suites and examples as a tiny known-good circuit.
const C17 = `
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// Adder4 is a 4-bit ripple-carry adder (a3..a0 + b3..b0 = s4 s3..s0), a
// second known-good circuit with arithmetic (carry-chain) structure.
const Adder4 = `
# 4-bit ripple-carry adder
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
INPUT(b0)
INPUT(b1)
INPUT(b2)
INPUT(b3)
OUTPUT(s0)
OUTPUT(s1)
OUTPUT(s2)
OUTPUT(s3)
OUTPUT(s4)
s0 = XOR(a0, b0)
c0 = AND(a0, b0)
x1 = XOR(a1, b1)
s1 = XOR(x1, c0)
g1 = AND(a1, b1)
p1 = AND(x1, c0)
c1 = OR(g1, p1)
x2 = XOR(a2, b2)
s2 = XOR(x2, c1)
g2 = AND(a2, b2)
p2 = AND(x2, c1)
c2 = OR(g2, p2)
x3 = XOR(a3, b3)
s3 = XOR(x3, c2)
g3 = AND(a3, b3)
p3 = AND(x3, c2)
s4 = OR(g3, p3)
`
