package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// wallclock: no wall-clock or global-RNG reads in deterministic packages.

// wallclockTime are the package-level time functions that read the clock.
// Methods on time.Time/time.Duration are pure and stay allowed.
var wallclockTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// wallclockRand are the package-level math/rand and math/rand/v2 functions
// backed by the process-global source. Constructors (New, NewSource, NewPCG,
// NewChaCha8) and methods on an explicit *rand.Rand are allowed: those are
// exactly what par.SeedFor-derived generators use.
var wallclockRand = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"Perm": true, "Shuffle": true, "Seed": true,
	"NormFloat64": true, "ExpFloat64": true, "Read": true, "N": true,
}

func (r *runner) wallclock() {
	for id, obj := range r.p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods are fine; only package-level functions hit globals
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallclockTime[fn.Name()] {
				r.report(id.Pos(), "wallclock",
					"time.%s in deterministic package %s: results must be a pure function of (inputs, options, seed)",
					fn.Name(), r.p.Name)
			}
		case "math/rand", "math/rand/v2":
			if wallclockRand[fn.Name()] {
				r.report(id.Pos(), "wallclock",
					"%s.%s uses the process-global RNG: construct a local generator from a par.SeedFor-derived seed instead",
					fn.Pkg().Path(), fn.Name())
			}
		}
	}
}

// ---------------------------------------------------------------------------
// maporder: map iteration must not feed ordered output or order-dependent
// state. Go randomizes map iteration order per run, so any such site makes
// results differ between runs — the exact failure class the
// parallel-equals-serial guarantee forbids.

func (r *runner) maporder() {
	for _, f := range r.p.Files {
		suppress := orderedComments(f, r.p.Fset)
		next := nextStmtMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				r.checkRange(rs, next[rs], suppress)
			}
			return true
		})
	}
}

// orderedComments collects //lint:ordered suppressions, keyed by line.
func orderedComments(f *ast.File, fset *token.FileSet) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:ordered"); ok {
				m[fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return m
}

// nextStmtMap maps each statement to its successor in the enclosing list, so
// the sorted-immediately-after exception can look one statement ahead.
func nextStmtMap(f *ast.File) map[ast.Stmt]ast.Stmt {
	next := map[ast.Stmt]ast.Stmt{}
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		}
		for i := 0; i+1 < len(list); i++ {
			next[list[i]] = list[i+1]
		}
		return true
	})
	return next
}

func (r *runner) checkRange(rs *ast.RangeStmt, after ast.Stmt, suppress map[int]string) {
	tv, ok := r.p.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isBlankOrNil(rs.Key) && isBlankOrNil(rs.Value) {
		return // body cannot observe which element it is on
	}
	line := r.p.Fset.Position(rs.Pos()).Line
	if just, ok := suppress[line]; ok {
		r.requireJustification(rs.Pos(), just)
		return
	}
	if just, ok := suppress[line-1]; ok {
		r.requireJustification(rs.Pos(), just)
		return
	}

	mapObj := identObject(r.p.Info, rs.X)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return true // := defines locals; +=, |=, ... are commutative
			}
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				r.checkOrderedAssign(rs, lhs, rhs, after, mapObj)
			}
		case *ast.CallExpr:
			r.checkOrderedCall(rs, s)
		}
		return true
	})
}

func (r *runner) requireJustification(pos token.Pos, just string) {
	if just == "" {
		r.report(pos, "maporder",
			"//lint:ordered needs a justification explaining why iteration order cannot affect results")
	}
}

func isBlankOrNil(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// identObject resolves an expression to its object when it is a plain
// identifier; nil otherwise.
func identObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// outer reports whether obj is declared outside the given range statement —
// writes to such variables leak iteration order out of the loop.
func outer(obj types.Object, rs *ast.RangeStmt) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func (r *runner) checkOrderedAssign(rs *ast.RangeStmt, lhs, rhs ast.Expr, after ast.Stmt, mapObj types.Object) {
	// Writing into the ranged map itself: insertion during iteration is
	// unspecified (new entries may or may not be visited).
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if base := identObject(r.p.Info, idx.X); base != nil && mapObj != nil && base == mapObj {
			r.report(lhs.Pos(), "maporder",
				"writes into %s while ranging over it: whether new entries are visited is unspecified", base.Name())
		}
		return // index writes into other containers are keyed, hence order-free
	}

	// out = append(out, ...): accumulation in iteration order.
	if lhsObj := identObject(r.p.Info, lhs); lhsObj != nil && outer(lhsObj, rs) {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendTo(r.p.Info, call, lhsObj) {
			if !sortsIdent(r.p.Info, after, lhsObj) {
				r.report(lhs.Pos(), "maporder",
					"appends to %s in map-iteration order: sort keys first, sort %s immediately after the loop, or justify with //lint:ordered",
					lhsObj.Name(), lhsObj.Name())
			}
			return
		}
		if isConstExpr(r.p.Info, rhs) {
			return // setting a flag to a constant is idempotent across orders
		}
		r.report(lhs.Pos(), "maporder",
			"assigns %s inside map iteration: the surviving value depends on iteration order", lhsObj.Name())
		return
	}

	// field writes on an outer value: s.Best = cand and friends.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if base := identObject(r.p.Info, sel.X); base != nil && outer(base, rs) && !isConstExpr(r.p.Info, rhs) {
			r.report(lhs.Pos(), "maporder",
				"assigns %s.%s inside map iteration: the surviving value depends on iteration order",
				base.Name(), sel.Sel.Name)
		}
	}
}

// checkOrderedCall flags output written during map iteration: fmt printing
// and Write/Print-family methods on values that outlive the loop.
func (r *runner) checkOrderedCall(rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := r.p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		r.report(call.Pos(), "maporder",
			"fmt.%s inside map iteration emits output in unspecified order", fn.Name())
		return
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return
		}
		if base := identObject(r.p.Info, sel.X); base != nil && outer(base, rs) {
			r.report(call.Pos(), "maporder",
				"%s.%s inside map iteration emits output in unspecified order", base.Name(), fn.Name())
		}
	}
}

func isAppendTo(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	return len(call.Args) > 0 && identObject(info, call.Args[0]) == obj
}

// sortsIdent reports whether stmt is a sort.*/slices.Sort* call mentioning
// obj — the "collected then sorted immediately" idiom, which is order-free.
func sortsIdent(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices" {
		return false
	}
	mentioned := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				mentioned = true
			}
			return !mentioned
		})
	}
	return mentioned
}

// isConstExpr reports whether e is a compile-time constant (or nil), whose
// assignment is idempotent regardless of iteration order.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := info.Types[e]
	return ok && (tv.Value != nil || tv.IsNil())
}

// ---------------------------------------------------------------------------
// metricname: registry names must be literal package.snake_case, first
// segment equal to the registering package. Covers both registration paths
// into the shared registry: obs.C/G/H and the underlying metric.C/G/H
// (internal/metric exists so packages below obs, like circuit, can register
// without an import cycle). Replaces the regex walker that used to live in
// internal/obs/lint_test.go.

func (r *runner) metricname() {
	obsPath := r.l.ModPath + "/internal/obs"
	metricPath := r.l.ModPath + "/internal/metric"
	if r.p.Path == obsPath || r.p.Path == metricPath {
		// The registry implementation and obs's re-export shim forward the
		// name parameter; they register nothing themselves.
		return
	}
	for _, f := range r.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := r.callee(call)
			if fn == nil || fn.Pkg() == nil ||
				(fn.Pkg().Path() != obsPath && fn.Pkg().Path() != metricPath) {
				return true
			}
			switch fn.Name() {
			case "C", "G", "H":
			default:
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				r.report(call.Args[0].Pos(), "metricname",
					"obs.%s name must be a string literal so the registry is statically auditable", fn.Name())
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRe.MatchString(name) {
				r.report(call.Args[0].Pos(), "metricname",
					"metric name %q does not match %s", name, metricNameRe.String())
				return true
			}
			if seg := name[:strings.IndexByte(name, '.')]; seg != r.p.Name {
				r.report(call.Args[0].Pos(), "metricname",
					"metric name %q: first segment %q must be the registering package name %q", name, seg, r.p.Name)
			}
			return true
		})
	}
}

func (r *runner) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := r.p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := r.p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ---------------------------------------------------------------------------
// cachekey: par.Cache must not be instantiated with string keys. String keys
// allocate on insert and defeat the maphash.Comparable sharding the bench
// gate pins; build a comparable struct key instead (see subckt.Key).

func (r *runner) cachekey() {
	parPath := r.l.ModPath + "/internal/par"
	for id, inst := range r.p.Info.Instances {
		obj := r.p.Info.ObjectOf(id)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != parPath {
			continue
		}
		if obj.Name() != "Cache" && obj.Name() != "NewCache" {
			continue
		}
		if inst.TypeArgs == nil || inst.TypeArgs.Len() == 0 {
			continue
		}
		key := inst.TypeArgs.At(0)
		if b, ok := key.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			r.report(id.Pos(), "cachekey",
				"par.%s instantiated with string key type %s: string keys allocate per lookup; use a comparable struct key",
				obj.Name(), key.String())
		}
	}
}

// ---------------------------------------------------------------------------
// nodemut: circuit nodes are mutated only through the journal-touching
// methods inside internal/circuit. A direct field write from outside skips
// the edit journal, so incremental resynthesis would silently miss the node.
//
// The rule also guards the speculative-overlay seam of the sharded
// resynthesis sweep: a function annotated //lint:speculative (in its doc
// comment) runs concurrently against a shared circuit snapshot, so it must
// treat the circuit as read-only — calling any mutating Circuit method from
// its body (closures included) is a violation. Mutations belong to the
// serial commit phase, which validates speculations against the edit
// journal first.

// circuitMutators are the circuit.Circuit methods that mutate the circuit
// or its derived caches — everything a speculative evaluation must not call.
// Freeze and RebuildFanouts are logically read-only but (re)build lazy
// caches, which is a data race from concurrent workers, so they are listed:
// the coordinator warms them serially before fan-out.
var circuitMutators = map[string]bool{
	"AddFaninFront": true, "AddGate": true, "AddInput": true,
	"BeginEditScope": true, "BeginJournal": true,
	"EndEditScope": true, "EndJournal": true,
	"Freeze": true, "Kill": true, "MarkOutput": true,
	"PreservePONames": true, "RebuildFanouts": true, "Rename": true,
	"ReplaceUses": true, "SetConstant": true, "SetFanin": true,
	"Simplify": true, "Strash": true, "SweepDead": true,
	"TakeJournal": true, "Thaw": true,
}

func (r *runner) nodemut() {
	for _, f := range r.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range s.Lhs {
					r.checkNodeWrite(lhs)
				}
			case *ast.IncDecStmt:
				r.checkNodeWrite(s.X)
			case *ast.FuncDecl:
				if isSpeculative(s) && s.Body != nil {
					r.checkSpeculativeBody(s.Name.Name, s.Body)
				}
			}
			return true
		})
	}
}

// isSpeculative reports whether the function's doc comment carries the
// //lint:speculative annotation.
func isSpeculative(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "lint:speculative" {
			return true
		}
	}
	return false
}

// checkSpeculativeBody flags every mutating Circuit method call inside an
// annotated function, nested closures included.
func (r *runner) checkSpeculativeBody(name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := r.callee(call)
		if fn == nil || !circuitMutators[fn.Name()] {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		recv := namedOf(sig.Recv().Type())
		if recv == nil {
			return true
		}
		obj := recv.Obj()
		if obj.Name() != "Circuit" || obj.Pkg() == nil ||
			obj.Pkg().Path() != r.l.ModPath+"/internal/circuit" {
			return true
		}
		r.report(call.Pos(), "nodemut",
			"Circuit.%s called from speculative function %s: //lint:speculative code runs concurrently against a shared snapshot and must not mutate the circuit; mutate in the serial commit phase",
			fn.Name(), name)
		return true
	})
}

func (r *runner) checkNodeWrite(e ast.Expr) {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			goto unwrapped
		}
	}
unwrapped:
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := r.p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	named := namedOf(tv.Type)
	if named == nil {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != r.l.ModPath+"/internal/circuit" {
		return
	}
	switch obj.Name() {
	case "Node":
		r.report(sel.Pos(), "nodemut",
			"direct write to circuit.Node.%s outside internal/circuit skips the edit journal: use the Circuit mutators (SetFanin, ReplaceUses, Kill, ...)",
			sel.Sel.Name)
	case "Circuit":
		switch sel.Sel.Name {
		case "Nodes", "Inputs", "Outputs":
			r.report(sel.Pos(), "nodemut",
				"direct write to circuit.Circuit.%s outside internal/circuit skips the edit journal and cache invalidation: use the Circuit mutators",
				sel.Sel.Name)
		}
	}
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}
