// Package rambo is the stand-in for the RAMBO_C baseline of Table 3 (see
// DESIGN.md, substitution 2): an area optimizer that resubstitutes K-input
// cones by minimized, algebraically factored realizations. Like the original
// redundancy-addition-and-removal optimizer it reduces gate count more
// aggressively than Procedure 2 — it is not restricted to comparison
// functions — at the price of higher path counts.
package rambo

import (
	"math/bits"
	"sort"

	"compsynth/internal/logic"
)

// Cube is a product term over n variables: for variable i (0-based), Mask
// bit (n-1-i) set means the variable appears; Value's bit gives its phase.
type Cube struct {
	Mask, Value int
}

// Literals returns the number of literals in the cube.
func (c Cube) Literals() int { return bits.OnesCount(uint(c.Mask)) }

// Contains reports whether minterm m is covered by the cube.
func (c Cube) Contains(m int) bool { return m&c.Mask == c.Value }

// HasLiteral reports whether variable v (0-based) appears with phase pos.
func (c Cube) HasLiteral(n, v int, pos bool) bool {
	bit := 1 << (n - 1 - v)
	if c.Mask&bit == 0 {
		return false
	}
	return (c.Value&bit != 0) == pos
}

// DropVar removes variable v from the cube.
func (c Cube) DropVar(n, v int) Cube {
	bit := 1 << (n - 1 - v)
	return Cube{Mask: c.Mask &^ bit, Value: c.Value &^ bit}
}

// Minimize computes a near-minimal sum-of-products cover of tt via
// Quine-McCluskey prime implicant generation and an essential-first greedy
// cover. Exact for the sizes used here (n <= 7); returns nil for constant 0.
func Minimize(tt logic.TT) []Cube {
	onset := tt.Onset()
	if len(onset) == 0 {
		return nil
	}
	if len(onset) == tt.Size() {
		return []Cube{{Mask: 0, Value: 0}} // constant 1: the empty cube
	}
	primes := primeImplicants(tt)
	return coverGreedy(onset, primes)
}

// primeImplicants generates all prime implicants of tt by iterative cube
// merging.
func primeImplicants(tt logic.TT) []Cube {
	n := tt.Vars()
	fullMask := 1<<n - 1
	// Level k holds cubes with k don't-cares. Start with the onset
	// minterms.
	cur := map[Cube]bool{}
	for _, m := range tt.Onset() {
		cur[Cube{Mask: fullMask, Value: m}] = true
	}
	var primes []Cube
	for len(cur) > 0 {
		next := map[Cube]bool{}
		merged := map[Cube]bool{}
		cubes := make([]Cube, 0, len(cur))
		for c := range cur {
			cubes = append(cubes, c)
		}
		sort.Slice(cubes, func(i, j int) bool {
			if cubes[i].Mask != cubes[j].Mask {
				return cubes[i].Mask < cubes[j].Mask
			}
			return cubes[i].Value < cubes[j].Value
		})
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				a, b := cubes[i], cubes[j]
				if a.Mask != b.Mask {
					continue
				}
				diff := a.Value ^ b.Value
				if bits.OnesCount(uint(diff)) != 1 {
					continue
				}
				next[Cube{Mask: a.Mask &^ diff, Value: a.Value &^ diff}] = true
				merged[a] = true
				merged[b] = true
			}
		}
		for _, c := range cubes {
			if !merged[c] {
				primes = append(primes, c)
			}
		}
		cur = next
	}
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].Mask != primes[j].Mask {
			return primes[i].Mask < primes[j].Mask
		}
		return primes[i].Value < primes[j].Value
	})
	return primes
}

// coverGreedy picks essential primes first, then greedily covers the rest.
func coverGreedy(onset []int, primes []Cube) []Cube {
	uncovered := map[int]bool{}
	for _, m := range onset {
		uncovered[m] = true
	}
	coveredBy := map[int][]int{} // minterm -> prime indices
	for pi, p := range primes {
		for _, m := range onset {
			if p.Contains(m) {
				coveredBy[m] = append(coveredBy[m], pi)
			}
		}
	}
	chosen := map[int]bool{}
	// Essential primes.
	for _, m := range onset {
		if len(coveredBy[m]) == 1 {
			chosen[coveredBy[m][0]] = true
		}
	}
	for pi := range chosen {
		for m := range uncovered {
			if primes[pi].Contains(m) {
				delete(uncovered, m)
			}
		}
	}
	// Greedy: max new coverage, ties by fewer literals.
	for len(uncovered) > 0 {
		bestPi, bestCover, bestLits := -1, -1, 1<<30
		for pi, p := range primes {
			if chosen[pi] {
				continue
			}
			cov := 0
			for m := range uncovered {
				if p.Contains(m) {
					cov++
				}
			}
			if cov > bestCover || (cov == bestCover && p.Literals() < bestLits) {
				bestPi, bestCover, bestLits = pi, cov, p.Literals()
			}
		}
		if bestPi < 0 || bestCover == 0 {
			break // should not happen: primes cover the onset
		}
		chosen[bestPi] = true
		for m := range uncovered {
			if primes[bestPi].Contains(m) {
				delete(uncovered, m)
			}
		}
	}
	var out []Cube
	for pi := range chosen {
		out = append(out, primes[pi])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mask != out[j].Mask {
			return out[i].Mask < out[j].Mask
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// SOPTable rebuilds the truth table of a cover (test/verification helper).
func SOPTable(n int, cubes []Cube) logic.TT {
	tt := logic.New(n)
	for m := 0; m < tt.Size(); m++ {
		for _, c := range cubes {
			if c.Contains(m) {
				tt.Set(m, true)
				break
			}
		}
	}
	return tt
}
