// Package obsdiff compares two observability artifacts — JSON run reports
// written by -metrics-out, or BENCH_*.json baselines written by
// scripts/bench.sh — and classifies every numeric delta as within tolerance
// or a regression. It is the engine behind cmd/obsdiff, which CI runs
// against the committed baselines so a PR cannot silently regress coverage,
// circuit quality, determinism, or runtime.
//
// Regression direction is inferred from the delta name: quantities where
// more is worse (durations, gate/path counts, undetected faults) regress
// upward, quantities where less is worse (coverage, detections, speedups)
// regress downward, and everything else — the deterministic pipeline
// counters — regresses on any change beyond tolerance, which is what makes
// the diff a determinism gate.
package obsdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"compsynth/internal/obs"
)

// Options sets the relative tolerances (0.1 = 10%). PerMetric overrides the
// default for individual delta names (exact match).
type Options struct {
	Tol       float64 // deterministic quantities: counters, gauges, circuit stats (default 0)
	TolTime   float64 // wall-clock quantities: durations, span timings (default 0.5)
	TolBench  float64 // benchmark ns/op, B/op and speedups (default 0.25)
	TolAlloc  float64 // benchmark allocs/op (default 0: a deterministic workload may only allocate less)
	PerMetric map[string]float64
}

// DefaultOptions returns the tolerances described above.
func DefaultOptions() Options {
	return Options{Tol: 0, TolTime: 0.5, TolBench: 0.25, TolAlloc: 0}
}

func (o Options) tolFor(name string, def float64) float64 {
	if t, ok := o.PerMetric[name]; ok {
		return t
	}
	return def
}

// direction classifies how a delta can regress.
type direction int

const (
	symmetric   direction = iota // any change beyond tolerance regresses
	higherWorse                  // only an increase regresses
	lowerWorse                   // only a decrease regresses
)

// directionOf infers the regression direction from the delta name
// (case-insensitively: Results payloads carry Go field names like
// "Detected").
func directionOf(name string) direction {
	name = strings.ToLower(name)
	for _, s := range []string{"coverage", "detected", "speedup", "testable"} {
		if strings.Contains(name, s) {
			return lowerWorse
		}
	}
	for _, s := range []string{
		"duration", "ns_per_op", "allocs", "bytes_per_op", "_ms", "remaining",
		"undetected", "gates", "paths", "equiv2", "depth", "aborted", "aborts",
		"dropped",
	} {
		if strings.Contains(name, s) {
			return higherWorse
		}
	}
	return symmetric
}

// Delta is one compared quantity.
type Delta struct {
	Name       string  `json:"name"`
	Before     float64 `json:"before"`
	After      float64 `json:"after"`
	Rel        float64 `json:"rel"` // (after-before)/|before|; ±Inf when before == 0
	Tol        float64 `json:"tol"`
	Regression bool    `json:"regression"`
	Note       string  `json:"note,omitempty"` // "missing after" / "new"
}

// Result collects every delta of one comparison.
type Result struct {
	Kind   string  `json:"kind"` // "report" or "bench"
	Deltas []Delta `json:"deltas"`
}

// Regressions returns the deltas that exceeded tolerance in the bad
// direction.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// add computes the relative change of one quantity, classifies it, and
// appends it (identical values are recorded with Rel 0).
func (r *Result) add(opt Options, name string, before, after, tol float64) {
	d := Delta{Name: name, Before: before, After: after, Tol: opt.tolFor(name, tol)}
	switch {
	case before == after:
		// exact match, Rel 0
	case before == 0:
		d.Rel = math.Inf(1)
		if after < 0 {
			d.Rel = math.Inf(-1)
		}
	default:
		d.Rel = (after - before) / math.Abs(before)
	}
	if math.Abs(d.Rel) > d.Tol {
		switch directionOf(name) {
		case symmetric:
			d.Regression = true
		case higherWorse:
			d.Regression = d.Rel > 0
		case lowerWorse:
			d.Regression = d.Rel < 0
		}
	}
	r.Deltas = append(r.Deltas, d)
}

func (r *Result) sortDeltas() {
	sort.Slice(r.Deltas, func(i, j int) bool { return r.Deltas[i].Name < r.Deltas[j].Name })
}

// Format writes one line per delta ("REGRESSION" or "ok") plus a summary;
// with all=false only regressions and the summary are printed.
func (r *Result) Format(w io.Writer, all bool) {
	for _, d := range r.Deltas {
		if !all && !d.Regression {
			continue
		}
		status := "ok        "
		if d.Regression {
			status = "REGRESSION"
		}
		line := fmt.Sprintf("%s %-46s %14g -> %-14g", status, d.Name, d.Before, d.After)
		if math.IsInf(d.Rel, 0) {
			line += fmt.Sprintf(" (from zero, tol %.0f%%)", 100*d.Tol)
		} else {
			line += fmt.Sprintf(" (%+.1f%%, tol %.0f%%)", 100*d.Rel, 100*d.Tol)
		}
		if d.Note != "" {
			line += " [" + d.Note + "]"
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "%s diff: %d quantities compared, %d regressions\n",
		r.Kind, len(r.Deltas), len(r.Regressions()))
}

// --- run reports ----------------------------------------------------------

// DiffReports compares two -metrics-out run reports.
func DiffReports(before, after *obs.Report, opt Options) *Result {
	r := &Result{Kind: "report"}
	r.add(opt, "duration_ms", before.DurationMS, after.DurationMS, opt.TolTime)
	diffIntMap(r, opt, "counter.", before.Metrics.Counters, after.Metrics.Counters, opt.Tol)
	diffIntMap(r, opt, "gauge.", before.Metrics.Gauges, after.Metrics.Gauges, opt.Tol)
	diffHistograms(r, opt, before.Metrics.Histograms, after.Metrics.Histograms)
	diffSpans(r, opt, before.Spans, after.Spans)
	diffCircuit(r, opt, "circuit_before.", before.CircuitBefore, after.CircuitBefore)
	diffCircuit(r, opt, "circuit_after.", before.CircuitAfter, after.CircuitAfter)
	diffResults(r, opt, before.Results, after.Results)
	r.sortDeltas()
	return r
}

func diffIntMap(r *Result, opt Options, prefix string, before, after map[string]int64, tol float64) {
	for _, name := range unionKeys(before, after) {
		b, inB := before[name]
		a, inA := after[name]
		d := prefix + name
		r.add(opt, d, float64(b), float64(a), tol)
		markMissing(r, inB, inA)
	}
}

func diffHistograms(r *Result, opt Options, before, after map[string]obs.HistogramStats) {
	for _, name := range unionKeys(before, after) {
		b, inB := before[name]
		a, inA := after[name]
		r.add(opt, "hist."+name+".count", float64(b.Count), float64(a.Count), opt.Tol)
		markMissing(r, inB, inA)
		// Sample counts are deterministic, but a mean over wall-clock
		// samples (latency/duration histograms) is not — grant those
		// TolTime, matching how diffResults treats _ms leaves.
		tol := opt.Tol
		if strings.Contains(name, "_ms") || strings.Contains(name, "duration") {
			tol = opt.TolTime
		}
		r.add(opt, "hist."+name+".mean", b.Mean, a.Mean, tol)
	}
}

// diffSpans aggregates each span forest by name (total duration and
// occurrence count) and compares the aggregates: timings against TolTime,
// the deterministic occurrence counts against Tol.
func diffSpans(r *Result, opt Options, before, after []obs.SpanJSON) {
	bAgg, aAgg := map[string]spanAgg{}, map[string]spanAgg{}
	aggSpans(bAgg, before)
	aggSpans(aAgg, after)
	for _, name := range unionKeys(bAgg, aAgg) {
		b, inB := bAgg[name]
		a, inA := aAgg[name]
		r.add(opt, "span."+name+".count", float64(b.count), float64(a.count), opt.Tol)
		markMissing(r, inB, inA)
		r.add(opt, "span."+name+".total_ms", b.durMS, a.durMS, opt.TolTime)
	}
}

type spanAgg struct {
	count int64
	durMS float64
}

func aggSpans(into map[string]spanAgg, spans []obs.SpanJSON) {
	for _, s := range spans {
		agg := into[s.Name]
		agg.count++
		agg.durMS += s.DurMS
		into[s.Name] = agg
		aggSpans(into, s.Children)
	}
}

func diffCircuit(r *Result, opt Options, prefix string, before, after *obs.CircuitInfo) {
	if before == nil && after == nil {
		return
	}
	var b, a obs.CircuitInfo
	if before != nil {
		b = *before
	}
	if after != nil {
		a = *after
	}
	r.add(opt, prefix+"gates", float64(b.Gates), float64(a.Gates), opt.Tol)
	r.add(opt, prefix+"equiv2", float64(b.Equiv2), float64(a.Equiv2), opt.Tol)
	r.add(opt, prefix+"depth", float64(b.Depth), float64(a.Depth), opt.Tol)
	r.add(opt, prefix+"paths", float64(b.Paths), float64(a.Paths), opt.Tol)
}

// diffResults flattens the nested Results payloads to dotted numeric leaves
// and compares every quantity present on either side. Timings (keys ending
// in _ms or containing duration) use TolTime; everything else — coverage,
// gate counts, fault tallies — uses Tol.
func diffResults(r *Result, opt Options, before, after map[string]any) {
	bLeaves, aLeaves := map[string]float64{}, map[string]float64{}
	flattenResults(bLeaves, "results", before)
	flattenResults(aLeaves, "results", after)
	for _, name := range unionKeys(bLeaves, aLeaves) {
		b, inB := bLeaves[name]
		a, inA := aLeaves[name]
		tol := opt.Tol
		if strings.HasSuffix(name, "_ms") || strings.Contains(name, "duration") {
			tol = opt.TolTime
		}
		r.add(opt, name, b, a, tol)
		markMissing(r, inB, inA)
	}
}

func flattenResults(into map[string]float64, prefix string, v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			flattenResults(into, prefix+"."+k, sub)
		}
	case float64:
		into[prefix] = x
	case bool:
		if x {
			into[prefix] = 1
		} else {
			into[prefix] = 0
		}
	}
}

// markMissing annotates the delta just added when the quantity exists on
// only one side (a removed quantity is itself suspicious in a determinism
// gate, so the note makes the asymmetry visible).
func markMissing(r *Result, inBefore, inAfter bool) {
	d := &r.Deltas[len(r.Deltas)-1]
	switch {
	case inBefore && !inAfter:
		d.Note = "missing after"
	case !inBefore && inAfter:
		d.Note = "new"
	}
}

// --- bench baselines ------------------------------------------------------

// BenchFile mirrors the schema written by scripts/benchjson.
type BenchFile struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	Benchmarks []BenchEntry `json:"benchmarks"`
	Speedups   []SpeedEntry `json:"speedups,omitempty"`
}

// BenchEntry is one benchmark measurement. The allocation fields are
// pointers because older baselines predate -benchmem: absent must stay
// distinguishable from a measured zero.
type BenchEntry struct {
	Name        string   `json:"name"`
	CPU         int      `json:"cpu"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// SpeedEntry is one derived serial-over-parallel speedup.
type SpeedEntry struct {
	Name    string  `json:"name"`
	CPU     int     `json:"cpu"`
	Speedup float64 `json:"speedup"`
}

// benchQuantity is one measured value plus the default tolerance that
// applies to its kind.
type benchQuantity struct {
	val float64
	tol float64
}

func collectBench(into map[string]benchQuantity, f *BenchFile, opt Options) {
	for _, b := range f.Benchmarks {
		base := fmt.Sprintf("bench.%s/cpu=%d", b.Name, b.CPU)
		into[base+".ns_per_op"] = benchQuantity{b.NsPerOp, opt.TolBench}
		if b.AllocsPerOp != nil {
			into[base+".allocs_per_op"] = benchQuantity{*b.AllocsPerOp, opt.TolAlloc}
		}
		if b.BytesPerOp != nil {
			into[base+".bytes_per_op"] = benchQuantity{*b.BytesPerOp, opt.TolBench}
		}
	}
	for _, s := range f.Speedups {
		into[fmt.Sprintf("bench.%s/cpu=%d.speedup", s.Name, s.CPU)] = benchQuantity{s.Speedup, opt.TolBench}
	}
}

// DiffBench compares two benchmark baselines: ns/op and B/op per
// (name, cpu) against TolBench (slower/bigger regresses), allocs/op
// against TolAlloc (more regresses), derived speedups against TolBench
// (lower regresses). Quantities missing from the new baseline are
// regressions outright — the gate lost coverage — while quantities new in
// the after file (a benchmark just added, or allocation columns appearing
// because the baseline predates -benchmem) are recorded as informational
// "new" deltas, never regressions: there is nothing to compare against,
// and diffing against an implicit zero would flag every addition.
func DiffBench(before, after *BenchFile, opt Options) *Result {
	r := &Result{Kind: "bench"}
	bn, an := map[string]benchQuantity{}, map[string]benchQuantity{}
	collectBench(bn, before, opt)
	collectBench(an, after, opt)
	for _, name := range unionKeys(bn, an) {
		b, inB := bn[name]
		a, inA := an[name]
		switch {
		case inB && !inA:
			r.Deltas = append(r.Deltas, Delta{
				Name: name, Before: b.val, Rel: -1, Tol: opt.tolFor(name, b.tol),
				Regression: true, Note: "missing after",
			})
		case !inB && inA:
			r.Deltas = append(r.Deltas, Delta{
				Name: name, After: a.val, Tol: opt.tolFor(name, a.tol), Note: "new",
			})
		default:
			r.add(opt, name, b.val, a.val, b.tol)
		}
	}
	r.sortDeltas()
	return r
}

// --- file loading ---------------------------------------------------------

// DiffFiles loads two artifacts and dispatches on their detected kind. Both
// files must be the same kind: a run report (has "tool") or a bench
// baseline (has "benchmarks").
func DiffFiles(beforePath, afterPath string, opt Options) (*Result, error) {
	bKind, bRaw, err := loadArtifact(beforePath)
	if err != nil {
		return nil, err
	}
	aKind, aRaw, err := loadArtifact(afterPath)
	if err != nil {
		return nil, err
	}
	if bKind != aKind {
		return nil, fmt.Errorf("cannot diff a %s against a %s", bKind, aKind)
	}
	switch bKind {
	case "report":
		var b, a obs.Report
		if err := json.Unmarshal(bRaw, &b); err != nil {
			return nil, fmt.Errorf("%s: %v", beforePath, err)
		}
		if err := json.Unmarshal(aRaw, &a); err != nil {
			return nil, fmt.Errorf("%s: %v", afterPath, err)
		}
		return DiffReports(&b, &a, opt), nil
	default:
		var b, a BenchFile
		if err := json.Unmarshal(bRaw, &b); err != nil {
			return nil, fmt.Errorf("%s: %v", beforePath, err)
		}
		if err := json.Unmarshal(aRaw, &a); err != nil {
			return nil, fmt.Errorf("%s: %v", afterPath, err)
		}
		return DiffBench(&b, &a, opt), nil
	}
}

func loadArtifact(path string) (kind string, raw []byte, err error) {
	raw, err = os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var probe struct {
		Tool       string          `json:"tool"`
		Benchmarks json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", nil, fmt.Errorf("%s: %v", path, err)
	}
	switch {
	case probe.Benchmarks != nil:
		return "bench", raw, nil
	case probe.Tool != "":
		return "report", raw, nil
	default:
		return "", nil, fmt.Errorf("%s: neither a run report (no \"tool\") nor a bench baseline (no \"benchmarks\")", path)
	}
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for k := range a {
		seen[k] = true
		out = append(out, k)
	}
	for k := range b {
		if !seen[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
