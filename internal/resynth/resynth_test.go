package resynth

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/logic"
	"compsynth/internal/paths"
	"compsynth/internal/simulate"
)

// sopCircuit builds a two-level SOP implementation of a truth table:
// one AND per onset minterm, one OR at the output. Deliberately wasteful in
// gates and paths.
func sopCircuit(tt logic.TT, name string) *circuit.Circuit {
	c := circuit.New(name)
	n := tt.Vars()
	ins := make([]int, n)
	invs := make([]int, n)
	for i := 0; i < n; i++ {
		ins[i] = c.AddInput(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		invs[i] = c.AddGate(circuit.Not, "", ins[i])
	}
	var products []int
	for _, m := range tt.Onset() {
		fan := make([]int, n)
		for i := 0; i < n; i++ {
			if m&(1<<(n-1-i)) != 0 {
				fan[i] = ins[i]
			} else {
				fan[i] = invs[i]
			}
		}
		products = append(products, c.AddGate(circuit.And, "", fan...))
	}
	var out int
	switch len(products) {
	case 0:
		out = c.AddGate(circuit.Const0, "")
	case 1:
		out = products[0]
	default:
		out = c.AddGate(circuit.Or, "", products...)
	}
	c.MarkOutput(out)
	c.SweepDead()
	return c
}

func TestProcedure2OnPaperExample(t *testing.T) {
	// f2 = minterms {1,5,6,9,10,14} (Sec. 3.1) in SOP form: 6 AND4 + OR6 =
	// 6*3+5 = 23 equiv-2 gates, 24 paths. The comparison unit needs far
	// fewer of both.
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	c := sopCircuit(f, "f2sop")
	before := c.Equiv2Count()
	opt := DefaultOptions()
	opt.K = 4
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesAfter >= before {
		t.Fatalf("no gate reduction: %d -> %d", before, res.GatesAfter)
	}
	if res.PathsAfter >= res.PathsBefore {
		t.Fatalf("no path reduction: %d -> %d", res.PathsBefore, res.PathsAfter)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 8, 6, 1) {
		t.Fatal("function changed")
	}
	if res.Replacements == 0 {
		t.Fatal("no replacements recorded")
	}
}

func TestProcedure2NeverIncreasesGates(t *testing.T) {
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		opt := DefaultOptions()
		opt.K = 5
		res, err := Optimize(c, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.GatesAfter > res.GatesBefore {
			t.Fatalf("%s: gates increased %d -> %d", b.Name, res.GatesBefore, res.GatesAfter)
		}
		if !simulate.EquivalentRandom(c, res.Circuit, 32, 12, 7) {
			t.Fatalf("%s: function changed", b.Name)
		}
	}
}

func TestProcedure3ReducesPaths(t *testing.T) {
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		opt := DefaultOptions()
		opt.Objective = MinPaths
		res, err := Optimize(c, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.PathsAfter > res.PathsBefore {
			t.Fatalf("%s: paths increased %d -> %d", b.Name, res.PathsBefore, res.PathsAfter)
		}
		if !simulate.EquivalentRandom(c, res.Circuit, 32, 12, 7) {
			t.Fatalf("%s: function changed", b.Name)
		}
	}
}

func TestProcedure3AtLeastAsGoodOnPathsAsProcedure2(t *testing.T) {
	// Table 5 vs Table 2: Procedure 3 reduces paths at least as much.
	b := gen.SmallSuite()[0]
	c := b.Build()
	o2 := DefaultOptions()
	r2, err := Optimize(c, o2)
	if err != nil {
		t.Fatal(err)
	}
	o3 := DefaultOptions()
	o3.Objective = MinPaths
	r3, err := Optimize(c, o3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.PathsAfter > r2.PathsAfter {
		t.Fatalf("Procedure 3 paths %d worse than Procedure 2 paths %d",
			r3.PathsAfter, r2.PathsAfter)
	}
}

func TestCombinedObjectiveRuns(t *testing.T) {
	b := gen.SmallSuite()[1]
	c := b.Build()
	opt := DefaultOptions()
	opt.Objective = Combined
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 32, 12, 3) {
		t.Fatal("combined objective changed the function")
	}
	if res.GatesAfter > res.GatesBefore && res.PathsAfter > res.PathsBefore {
		t.Fatal("combined objective worsened both dimensions")
	}
}

func TestSamplingIdentificationMode(t *testing.T) {
	// The paper's 200-permutation sampling should behave like the exact
	// search on small circuits (possibly missing some replacements).
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	c := sopCircuit(f, "f2sop")
	opt := DefaultOptions()
	opt.K = 4
	opt.UseSampling = true
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 8, 6, 1) {
		t.Fatal("sampling mode changed the function")
	}
	if res.GatesAfter >= res.GatesBefore {
		t.Fatalf("sampling mode found no reduction: %d -> %d", res.GatesBefore, res.GatesAfter)
	}
}

func TestOptimizeC17(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	res, err := Optimize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 4, 6, 1) {
		t.Fatal("c17 function changed")
	}
	if res.GatesAfter > res.GatesBefore {
		t.Fatal("c17 gates increased")
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	beforeText := bench.String(c)
	if _, err := Optimize(c, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if bench.String(c) != beforeText {
		t.Fatal("Optimize mutated its input circuit")
	}
}

func TestOptimizeFixpoint(t *testing.T) {
	// Running the optimizer twice should find nothing new the second time.
	b := gen.SmallSuite()[2]
	c := b.Build()
	opt := DefaultOptions()
	r1, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(r1.Circuit, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r2.GatesAfter != r1.GatesAfter {
		t.Fatalf("not a fixpoint: %d then %d", r1.GatesAfter, r2.GatesAfter)
	}
}

func TestMultiUnitExtension(t *testing.T) {
	// 3-input majority is not a single comparison function, so plain
	// Procedure 2 cannot touch a majority SOP cone; with MaxUnits=2 the
	// Section 6 extension can rewrite it whenever that pays off. At
	// minimum the option must stay sound.
	maj := logic.FromMinterms(3, []int{3, 5, 6, 7})
	c := sopCircuit(maj, "majsop")
	opt := DefaultOptions()
	opt.K = 3
	opt.MaxUnits = 3
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 8, 6, 1) {
		t.Fatal("multi-unit rewrite changed the function")
	}
	if res.GatesAfter > res.GatesBefore {
		t.Fatalf("multi-unit increased gates %d -> %d", res.GatesBefore, res.GatesAfter)
	}

	for _, b := range gen.SmallSuite()[:2] {
		c := b.Build()
		opt := DefaultOptions()
		opt.MaxUnits = 3
		res, err := Optimize(c, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !simulate.EquivalentRandom(c, res.Circuit, 32, 12, 5) {
			t.Fatalf("%s: multi-unit changed function", b.Name)
		}
		if res.GatesAfter > res.GatesBefore {
			t.Fatalf("%s: gates increased", b.Name)
		}
	}
}

func TestMultiUnitAtLeastAsGoodOnGates(t *testing.T) {
	b := gen.SmallSuite()[3]
	c := b.Build()
	single, err := Optimize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.MaxUnits = 3
	multi, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if multi.GatesAfter > single.GatesAfter {
		t.Fatalf("multi-unit (%d gates) worse than single-unit (%d gates)",
			multi.GatesAfter, single.GatesAfter)
	}
}

func TestInvalidOptions(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	if _, err := Optimize(c, Options{K: 0, MaxPasses: 1}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestVacuousInputDropped(t *testing.T) {
	// g = AND(a, b) OR AND(a, NOT b) = a: the cone's function does not
	// depend on b; the optimizer should collapse it, removing paths from b.
	c := circuit.New("vac")
	a := c.AddInput("a")
	b := c.AddInput("b")
	nb := c.AddGate(circuit.Not, "", b)
	t1 := c.AddGate(circuit.And, "", a, b)
	t2 := c.AddGate(circuit.And, "", a, nb)
	o := c.AddGate(circuit.Or, "", t1, t2)
	c.MarkOutput(o)
	res, err := Optimize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesAfter != 0 {
		t.Fatalf("expected full collapse to a wire, gates=%d", res.GatesAfter)
	}
	if paths.MustCount(res.Circuit) != 1 {
		t.Fatalf("paths = %d, want 1", paths.MustCount(res.Circuit))
	}
}

func TestSDCModeSound(t *testing.T) {
	// Reachability don't-cares must never break equivalence or inflate the
	// objective — the completions differ only on input combinations that
	// can never occur.
	for _, b := range gen.SmallSuite()[:3] {
		c := b.Build()
		opt := DefaultOptions()
		opt.UseSDC = true
		res, err := Optimize(c, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !simulate.EquivalentRandom(c, res.Circuit, 64, 14, 9) {
			t.Fatalf("%s: SDC mode changed the function", b.Name)
		}
		if res.GatesAfter > res.GatesBefore {
			t.Fatalf("%s: SDC mode increased gates", b.Name)
		}
	}
}

func TestSDCModeFindsAtLeastAsMuch(t *testing.T) {
	// With don't-cares available, the optimizer can only have more
	// replacement options; final gate count must not be worse.
	b := gen.SmallSuite()[1]
	c := b.Build()
	plain, err := Optimize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.UseSDC = true
	sdc, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sdc.GatesAfter > plain.GatesAfter {
		t.Fatalf("SDC (%d gates) worse than plain (%d gates)", sdc.GatesAfter, plain.GatesAfter)
	}
}

func TestSDCSkipsLargeCircuits(t *testing.T) {
	// Circuits beyond SDCMaxInputs silently fall back to the plain mode.
	p := gen.Params{Name: "big", Inputs: 20, Outputs: 6, Gates: 60, Layers: 5,
		MaxFanin: 3, Locality: 0.7, Seed: 3}
	c := gen.Random(p)
	opt := DefaultOptions()
	opt.UseSDC = true
	opt.SDCMaxInputs = 10
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 32, 10, 4) {
		t.Fatal("fallback path broke equivalence")
	}
}
