package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrashMergesDuplicates(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "", a, b)
	g2 := c.AddGate(And, "", b, a) // commutative duplicate
	g3 := c.AddGate(Or, "", g1, g2)
	c.MarkOutput(g3)
	before := c.Eval([]bool{true, true})[0]
	if n := c.Strash(); n != 1 {
		t.Fatalf("merged %d, want 1", n)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Eval([]bool{true, true})[0] != before {
		t.Fatal("strash changed function")
	}
	// The OR's two pins now reference the same node; Simplify dedups.
	c.Simplify()
	if c.Equiv2Count() != 1 {
		t.Fatalf("equiv2 = %d, want 1 (single AND)", c.Equiv2Count())
	}
}

func TestStrashCascades(t *testing.T) {
	// Duplicate subtrees merge bottom-up in one pass.
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x1 := c.AddGate(Nand, "", a, b)
	x2 := c.AddGate(Nand, "", a, b)
	y1 := c.AddGate(Not, "", x1)
	y2 := c.AddGate(Not, "", x2)
	o := c.AddGate(Xor, "", y1, y2)
	c.MarkOutput(o)
	if n := c.Strash(); n != 2 {
		t.Fatalf("merged %d, want 2 (NAND pair, then NOT pair)", n)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrashRespectsPinOrderForNonCommutative(t *testing.T) {
	// NOT(a) and NOT(b) must not merge.
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	n1 := c.AddGate(Not, "", a)
	n2 := c.AddGate(Not, "", b)
	o := c.AddGate(And, "", n1, n2)
	c.MarkOutput(o)
	if n := c.Strash(); n != 0 {
		t.Fatalf("merged %d distinct inverters", n)
	}
}

func TestStrashPreservesPODriver(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "g1", a, b)
	g2 := c.AddGate(And, "po", a, b)
	c.MarkOutput(g2)
	n := c.AddGate(Not, "", g1)
	c.MarkOutput(n)
	c.Strash()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The PO driver keeps a live node; function intact.
	out := c.Eval([]bool{true, true})
	if out[0] != true || out[1] != false {
		t.Fatalf("function changed: %v", out)
	}
}

func TestStrashLeavesDistinctGateTypes(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "", a, b)
	g2 := c.AddGate(Nand, "", a, b)
	o := c.AddGate(Or, "", g1, g2)
	c.MarkOutput(o)
	if n := c.Strash(); n != 0 {
		t.Fatalf("merged %d across gate types", n)
	}
}

// Property: structural hashing never changes the circuit function.
func TestQuickStrashPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		c := randomDAG(seed)
		d := c.Clone()
		d.Strash()
		if d.Validate() != nil {
			return false
		}
		for m := 0; m < 1<<len(c.Inputs); m++ {
			in := make([]bool, len(c.Inputs))
			for j := range in {
				in[j] = m&(1<<j) != 0
			}
			a, b := c.Eval(in), d.Eval(in)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomDAG builds a small random circuit without importing gen (which
// would create an import cycle).
func randomDAG(seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New("q")
	pool := []int{c.AddInput("a"), c.AddInput("b"), c.AddInput("c"), c.AddInput("d")}
	types := []GateType{And, Or, Nand, Nor, Xor, Not}
	for i := 0; i < 20; i++ {
		t := types[rng.Intn(len(types))]
		if t == Not {
			pool = append(pool, c.AddGate(Not, "", pool[rng.Intn(len(pool))]))
			continue
		}
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if a == b {
			continue
		}
		pool = append(pool, c.AddGate(t, "", a, b))
	}
	c.MarkOutput(pool[len(pool)-1])
	c.MarkOutput(pool[len(pool)-2])
	return c
}
