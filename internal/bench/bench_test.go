package bench

import (
	"strings"
	"testing"

	"compsynth/internal/circuit"
)

func TestParseC17(t *testing.T) {
	c, err := ParseString(C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Inputs != 5 || st.Outputs != 2 || st.Gates != 6 {
		t.Fatalf("c17 stats = %v", st)
	}
	if st.Equiv2 != 6 {
		t.Fatalf("c17 equiv2 = %d, want 6", st.Equiv2)
	}
	// Spot-check: all-ones input. 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1,
	// 19=NAND(0,1)=1, 22=NAND(0,1)=1, 23=NAND(1,1)=0.
	out := c.Eval([]bool{true, true, true, true, true})
	if out[0] != true || out[1] != false {
		t.Fatalf("c17(11111) = %v", out)
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	text := String(c)
	c2, err := ParseString(text, "c17rt")
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	// Exhaustive equivalence over 5 inputs.
	for m := 0; m < 32; m++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = m&(1<<i) != 0
		}
		a, b := c.Eval(in), c2.Eval(in)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("round trip differs at input %v output %d", in, j)
			}
		}
	}
}

func TestParseOutOfOrderDecls(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(f)
f = NOT(g)
g = AND(a, b)
`
	c, err := ParseString(src, "ooo")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{true, true})[0]; got != false {
		t.Fatalf("NAND via out-of-order = %v", got)
	}
}

func TestParseAllGateTypes(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(o)
g1 = AND(a, b)
g2 = OR(a, b)
g3 = NAND(a, b)
g4 = NOR(a, b)
g5 = XOR(a, b)
g6 = XNOR(a, b)
g7 = NOT(a)
g8 = BUFF(b)
g9 = CONST1()
o = AND(g1, g2, g3, g4, g5, g6, g7, g8, g9)
`
	c, err := ParseString(src, "all")
	if err != nil {
		t.Fatal(err)
	}
	// NumGates excludes constants: 9 logic gates; CONST1 is a separate node.
	if c.NumGates() != 9 {
		t.Fatalf("gates = %d, want 9", c.NumGates())
	}
	if c.NodeByName("g9") < 0 {
		t.Fatal("constant node missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"dff", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"},
		{"unknown gate", "INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n"},
		{"undriven output", "INPUT(a)\nOUTPUT(zz)\n"},
		{"redriven", "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\nf = BUFF(a)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(f)\nf = AND(a, g)\ng = AND(a, f)\n"},
		{"garbage", "INPUT(a)\nwat\n"},
		{"dup input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, c.name); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nINPUT(a)  # trailing\n\nOUTPUT(f)\nf = BUFF(a)\n"
	c, err := ParseString(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 1 || len(c.Outputs) != 1 {
		t.Fatal("comment handling broken")
	}
}

func TestWriteUnnamedNodes(t *testing.T) {
	c := circuit.New("gen")
	a := c.AddInput("a")
	g := c.AddGate(circuit.Not, "", a)
	c.MarkOutput(g)
	text := String(c)
	if !strings.Contains(text, "NOT(a)") {
		t.Fatalf("missing NOT: %s", text)
	}
	if _, err := ParseString(text, "rt"); err != nil {
		t.Fatal(err)
	}
}

func TestOutputFanoutAllowed(t *testing.T) {
	// A PO line that also fans out internally (legal in ISCAS nets).
	src := `
INPUT(a)
OUTPUT(f)
OUTPUT(g)
f = NOT(a)
g = NOT(f)
`
	c, err := ParseString(src, "pofan")
	if err != nil {
		t.Fatal(err)
	}
	out := c.Eval([]bool{false})
	if out[0] != true || out[1] != false {
		t.Fatalf("pofan eval = %v", out)
	}
}

func TestAdder4Function(t *testing.T) {
	c, err := ParseString(Adder4, "adder4")
	if err != nil {
		t.Fatal(err)
	}
	// Inputs in declaration order: a0..a3, b0..b3. Outputs: s0..s4.
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a&(1<<i) != 0
				in[4+i] = b&(1<<i) != 0
			}
			out := c.Eval(in)
			sum := 0
			for i := 0; i < 5; i++ {
				if out[i] {
					sum |= 1 << i
				}
			}
			if sum != a+b {
				t.Fatalf("%d + %d = %d, adder says %d", a, b, a+b, sum)
			}
		}
	}
}
