package ledger

// Cryptographic digests for the tamper-evidence layer. The hot-loop
// fingerprint (internal/digest) is a keyless FNV-style mix — cheap,
// invertible, and perfectly fine for cache keys, but useless against an
// adversary who wants a collision. Everything that backs a verification
// claim here hashes with SHA-256 instead: chain links, Merkle nodes,
// circuit/options/body digests and witness responses. Ledger records are
// emitted at human rates (throttled progress, span boundaries), so the
// extra cost over the fingerprint is noise.
//
// The framing conventions mirror internal/digest: byte strings are
// length-prefixed and words are absorbed little-endian, so concatenations
// cannot collide trivially.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// H is a 256-bit SHA-256 digest. Its hex form (64 lowercase digits) is the
// stable textual representation used in ledger records and certificates.
type H [sha256.Size]byte

// Hex renders the digest as 64 lowercase hex digits.
func (h H) Hex() string {
	return hex.EncodeToString(h[:])
}

// parseHex inverts H.Hex.
func parseHex(s string) (H, error) {
	var h H
	raw, err := hex.DecodeString(s)
	if err != nil {
		return h, err
	}
	if len(raw) != len(h) {
		return h, errDigestLen
	}
	copy(h[:], raw)
	return h, nil
}

var errDigestLen = digestLenError{}

type digestLenError struct{}

func (digestLenError) Error() string { return "ledger: digest hex has wrong length" }

// hstate is a chainable SHA-256 builder. Copies share the underlying
// hash.Hash, so use it linearly (d = d.word(...)), never fork a state.
type hstate struct {
	h hash.Hash
}

func hnew() hstate {
	return hstate{h: sha256.New()}
}

// word absorbs one 64-bit word, little-endian.
func (s hstate) word(x uint64) hstate {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	s.h.Write(b[:])
	return s
}

// int absorbs one int as a word.
func (s hstate) int(x int) hstate {
	return s.word(uint64(x))
}

// bytes absorbs a length-prefixed byte string.
func (s hstate) bytes(p []byte) hstate {
	s = s.word(uint64(len(p)))
	s.h.Write(p)
	return s
}

func (s hstate) sum() H {
	var out H
	s.h.Sum(out[:0])
	return out
}
