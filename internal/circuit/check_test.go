package circuit_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
)

// base builds a small clean circuit:
//
//	g1 = AND(a, b), g2 = OR(a, b), out = AND(g1, g2)
func base() (*circuit.Circuit, map[string]int) {
	c := circuit.New("base")
	ids := map[string]int{}
	ids["a"] = c.AddInput("a")
	ids["b"] = c.AddInput("b")
	ids["g1"] = c.AddGate(circuit.And, "g1", ids["a"], ids["b"])
	ids["g2"] = c.AddGate(circuit.Or, "g2", ids["a"], ids["b"])
	ids["out"] = c.AddGate(circuit.And, "out", ids["g1"], ids["g2"])
	c.MarkOutput(ids["out"])
	return c, ids
}

// TestCheckNegative drives Check over deliberately broken circuits. The
// corruption writes exported fields directly — exactly the mutation pattern
// the nodemut lint rule forbids in non-test code, used here to simulate the
// bugs Check exists to catch.
func TestCheckNegative(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *circuit.Circuit
		want  string // substring of the expected error
	}{
		{
			name: "cycle",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				// g1 <- out closes a cycle g1 -> out -> g1.
				c.Nodes[ids["g1"]].Fanin[1] = ids["out"]
				return c
			},
			want: "cycle",
		},
		{
			name: "arity",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				c.Nodes[ids["g1"]].Type = circuit.Not // Not with 2 fanins
				return c
			},
			want: "must have exactly 1 fanin",
		},
		{
			name: "no-fanin-gate",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				c.Nodes[ids["g2"]].Fanin = nil
				return c
			},
			want: "must have fanin",
		},
		{
			name: "dangling-fanin",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				c.Nodes[ids["g1"]].Fanin[0] = 99 // no such node
				return c
			},
			want: "dangles",
		},
		{
			name: "dead-fanin",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				c.Kill(ids["g2"]) // out still reads g2
				return c
			},
			want: "dangles",
		},
		{
			name: "input-missing-from-list",
			build: func(t *testing.T) *circuit.Circuit {
				c, _ := base()
				c.Inputs = c.Inputs[:1]
				return c
			},
			want: "missing from the input list",
		},
		{
			name: "duplicate-input-entry",
			build: func(t *testing.T) *circuit.Circuit {
				c, _ := base()
				c.Inputs = append(c.Inputs, c.Inputs[0])
				return c
			},
			want: "listed twice",
		},
		{
			name: "fanout-fanin-mismatch",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				c.RebuildFanouts()
				// Rewire g1's first pin a -> b behind the cache's back.
				// Levels and arity stay valid; only the transpose breaks.
				c.Nodes[ids["g1"]].Fanin[0] = ids["b"]
				return c
			},
			want: "stale fanout cache",
		},
		{
			name: "unreachable-gate",
			build: func(t *testing.T) *circuit.Circuit {
				c, ids := base()
				c.AddGate(circuit.Nand, "orphan", ids["a"], ids["b"])
				return c
			},
			want: "unreachable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build(t)
			err := circuit.Check(c)
			if err == nil {
				t.Fatalf("Check accepted a circuit with a %s defect", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Check error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestCheckPositive re-audits the base circuit and each committed netlist.
func TestCheckPositive(t *testing.T) {
	c, _ := base()
	if err := circuit.Check(c); err != nil {
		t.Fatalf("Check rejected a clean circuit: %v", err)
	}
	// Warm every cache, then re-check: the caches must agree with fresh
	// recomputation.
	c.RebuildFanouts()
	c.Topo()
	c.Levels()
	if err := circuit.Check(c); err != nil {
		t.Fatalf("Check rejected a clean circuit with warm caches: %v", err)
	}
}

// TestCheckNetlists sweeps every committed .bench netlist through the strict
// check and the comparison-unit bound.
func TestCheckNetlists(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "circuits", "*.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed netlists found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			c, err := bench.ParseString(string(data), filepath.Base(f))
			if err != nil {
				t.Fatal(err)
			}
			if err := circuit.Check(c); err != nil {
				t.Errorf("Check(%s): %v", f, err)
			}
			if err := circuit.CheckComparisonUnits(c); err != nil {
				t.Errorf("CheckComparisonUnits(%s): %v", f, err)
			}
		})
	}
}

// TestCheckAllowUnreachable pins the option split: parsed netlists may carry
// unused gates, optimizer outputs may not.
func TestCheckAllowUnreachable(t *testing.T) {
	c, ids := base()
	c.AddGate(circuit.Nand, "orphan", ids["a"], ids["b"])
	if err := circuit.Check(c); err == nil {
		t.Error("strict Check accepted an unreachable gate")
	}
	if err := circuit.CheckWith(c, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
		t.Errorf("AllowUnreachable rejected the circuit: %v", err)
	}
}

func TestCheckNil(t *testing.T) {
	if err := circuit.Check(nil); err == nil {
		t.Error("Check accepted a nil circuit")
	}
}

// unitCircuit builds a fake resynthesized cone: nPaths parallel buffers from
// input x into an OR named with the optimizer's cu<id>_ prefix.
func unitCircuit(nPaths int) *circuit.Circuit {
	c := circuit.New("unit")
	x := c.AddInput("x")
	fan := make([]int, nPaths)
	for i := range fan {
		fan[i] = c.AddGate(circuit.Buf, "cu7_b"+string(rune('0'+i)), x)
	}
	out := c.AddGate(circuit.Or, "cu7_or", fan...)
	c.MarkOutput(out)
	return c
}

// TestComparisonUnitBound checks the paper's <=2-paths-per-input property:
// two parallel paths pass, three fail.
func TestComparisonUnitBound(t *testing.T) {
	if err := circuit.CheckComparisonUnits(unitCircuit(2)); err != nil {
		t.Errorf("2-path unit rejected: %v", err)
	}
	err := circuit.CheckComparisonUnits(unitCircuit(3))
	if err == nil {
		t.Fatal("3-path unit accepted; the bound is 2")
	}
	if !strings.Contains(err.Error(), "3 paths") || !strings.Contains(err.Error(), "bound is 2") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestComparisonUnitSubgroups checks multi-unit (Section 6) grouping: each
// cu<id>_u<i>_ sub-unit is audited on its own, so two sub-units that each
// hold the bound pass even though the whole realization has more paths.
func TestComparisonUnitSubgroups(t *testing.T) {
	c := circuit.New("multi")
	x := c.AddInput("x")
	u0a := c.AddGate(circuit.Buf, "cu9_u0_a", x)
	u0b := c.AddGate(circuit.Buf, "cu9_u0_b", x)
	u0 := c.AddGate(circuit.Or, "cu9_u0_out", u0a, u0b)
	u1a := c.AddGate(circuit.Buf, "cu9_u1_a", x)
	u1b := c.AddGate(circuit.Buf, "cu9_u1_b", x)
	u1 := c.AddGate(circuit.Or, "cu9_u1_out", u1a, u1b)
	or := c.AddGate(circuit.Or, "cu9_mor", u0, u1)
	c.MarkOutput(or)
	if err := circuit.Check(c); err != nil {
		t.Fatalf("multi-unit circuit invalid: %v", err)
	}
	if err := circuit.CheckComparisonUnits(c); err != nil {
		t.Errorf("per-sub-unit bound rejected a valid multi-unit realization: %v", err)
	}
}
