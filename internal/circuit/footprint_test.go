package circuit

import (
	"reflect"
	"sort"
	"testing"
)

// fpCircuit builds a small circuit with a reconvergent cone:
//
//	a, b inputs; g1 = AND(a, b); g2 = NOT(g1); g3 = OR(g1, a)
//	outputs g2, g3
func fpCircuit(t *testing.T) (c *Circuit, a, b, g1, g2, g3 int) {
	t.Helper()
	c = New("fp")
	a = c.AddInput("a")
	b = c.AddInput("b")
	g1 = c.AddGate(And, "g1", a, b)
	g2 = c.AddGate(Not, "g2", g1)
	g3 = c.AddGate(Or, "g3", g1, a)
	c.MarkOutput(g2)
	c.MarkOutput(g3)
	return c, a, b, g1, g2, g3
}

func sortedFootprint(fp *Footprinter) []int {
	out := make([]int, 0, len(fp.Footprint()))
	for _, id := range fp.Footprint() {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

// TestFootprintConeAndConsumers checks the footprint definition on a known
// topology: cut nodes, cone gates, and every consumer of a cone node.
func TestFootprintConeAndConsumers(t *testing.T) {
	c, a, b, g1, g2, g3 := fpCircuit(t)
	fp := NewFootprinter(c.Freeze())

	// Cone of g2 over cut {a, b}: gates g2, g1. Consumers of g2: none;
	// consumers of g1: g2 and g3 — so g3 is in the footprint even though it
	// is outside the cone (its fanout-list membership is read by the
	// removability analysis).
	fp.AddCone(g2, []int{a, b})
	want := []int{a, b, g1, g2, g3}
	sort.Ints(want)
	if got := sortedFootprint(fp); !reflect.DeepEqual(got, want) {
		t.Errorf("footprint(g2, {a,b}) = %v, want %v", got, want)
	}

	// A shallower cut bounds the cone earlier: cone of g2 over {g1} is just
	// g2 (plus the cut node g1). g3 consumes g1, but g1 is a cut node here,
	// and cut nodes contribute only their liveness — not their consumers.
	fp.Reset()
	fp.AddCone(g2, []int{g1})
	want = []int{g1, g2}
	if got := sortedFootprint(fp); !reflect.DeepEqual(got, want) {
		t.Errorf("footprint(g2, {g1}) = %v, want %v", got, want)
	}
}

// TestFootprintAccumulatesAcrossCuts checks that one gate's footprint is
// the union over its cuts, and in particular that a node inside a deeper
// cut's cone is re-expanded even when a shallower cut already visited it —
// the regression the per-cone expansion marks exist for.
func TestFootprintAccumulatesAcrossCuts(t *testing.T) {
	c := New("chain")
	a := c.AddInput("a")
	n1 := c.AddGate(Not, "n1", a)
	n2 := c.AddGate(Not, "n2", n1)
	n3 := c.AddGate(Not, "n3", n2)
	c.MarkOutput(n3)
	fp := NewFootprinter(c.Freeze())

	// Shallow cut first: cone of n3 over {n2} is just n3.
	fp.AddCone(n3, []int{n2})
	// Deep cut second: cone of n3 over {a} is n3, n2, n1. n3 was already
	// expanded for the first cut; the walk must still descend through it.
	fp.AddCone(n3, []int{a})
	want := []int{a, n1, n2, n3}
	if got := sortedFootprint(fp); !reflect.DeepEqual(got, want) {
		t.Errorf("accumulated footprint = %v, want %v", got, want)
	}
}

// TestFootprintEdgeCases covers the defensive paths: dead/out-of-range IDs
// are skipped, a cut containing the output contributes only the cut, and
// Reset/Rebind clear accumulated state.
func TestFootprintEdgeCases(t *testing.T) {
	c, a, b, g1, g2, _ := fpCircuit(t)
	fp := NewFootprinter(c.Freeze())

	fp.AddCone(g2, []int{g2}) // output in its own cut: no cone walk
	if got := sortedFootprint(fp); !reflect.DeepEqual(got, []int{g2}) {
		t.Errorf("footprint(g2, {g2}) = %v, want [%d]", got, g2)
	}

	fp.Reset()
	fp.AddCone(99, []int{a, -1, 99}) // out-of-range IDs skipped
	if got := sortedFootprint(fp); !reflect.DeepEqual(got, []int{a}) {
		t.Errorf("footprint(99, {a,-1,99}) = %v, want [%d]", got, a)
	}

	if len(fp.Footprint()) == 0 {
		t.Fatal("footprint empty before Reset")
	}
	fp.Reset()
	if len(fp.Footprint()) != 0 {
		t.Error("Reset did not clear the footprint")
	}

	// After an edit, Rebind to the fresh view: the dead node disappears
	// from footprints.
	c.ReplaceUses(g1, a)
	c.SweepDead() // g1 now unused -> dead
	if c.Alive(g1) {
		t.Fatal("g1 survived the sweep")
	}
	fp.Rebind(c.Freeze())
	fp.AddCone(g2, []int{a, b})
	if got := sortedFootprint(fp); !reflect.DeepEqual(got, []int{a, b, g2}) {
		t.Errorf("footprint after Kill = %v, want [%d %d %d]", got, a, b, g2)
	}
}

// TestEditScope checks the scoped overlay capture: touch order, duplicates
// kept, independence from the journal, restart-on-Begin, and the nil return
// without an open scope.
func TestEditScope(t *testing.T) {
	c, a, _, g1, g2, g3 := fpCircuit(t)

	if got := c.EndEditScope(); got != nil {
		t.Errorf("EndEditScope without Begin = %v, want nil", got)
	}

	c.BeginJournal() // scopes must not consume the journal
	c.BeginEditScope()
	c.SetFanin(g3, 0, a)
	c.SetFanin(g3, 1, a) // second touch of the same node is kept
	got := c.EndEditScope()
	// SetFanin touches the edited gate and the fanin endpoints whose fanout
	// sets moved; duplicates are kept, so g3 must appear once per edit.
	g3Touches := 0
	for _, id := range got {
		if id == g3 {
			g3Touches++
		}
	}
	if g3Touches < 2 {
		t.Fatalf("scope captured %v, want at least two touches of g3 (=%d)", got, g3)
	}
	j := c.TakeJournal()
	if !j[g3] {
		t.Error("journal missed the scoped edit: scopes must not consume journal entries")
	}

	// A second Begin restarts the capture; earlier touches are dropped.
	// (Rewire g1's consumers before the restart so the Kill is legal.)
	c.BeginEditScope()
	c.SetFanin(g2, 0, a)
	c.SetFanin(g3, 0, a)
	c.BeginEditScope()
	c.Kill(g1)
	got = c.EndEditScope()
	for _, id := range got {
		if id == g2 {
			t.Error("restarted scope still holds the pre-restart touch of g2")
		}
	}
	found := false
	for _, id := range got {
		if id == g1 {
			found = true
		}
	}
	if !found {
		t.Errorf("scope %v missed the Kill of g1", got)
	}

	// Scope closed: further edits are not captured.
	c.SetFanin(g2, 0, a)
	if c.scopeOn {
		t.Error("scope still recording after EndEditScope")
	}
}
