// Command pathcount labels a .bench netlist with Procedure 1 and prints the
// number of PI-to-PO paths, optionally per output.
//
// Usage:
//
//	pathcount [-per-output] [-through line]
//	          [-trace] [-metrics-out report.json] [-v] [-listen addr]
//	          [-events file] circuit.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"compsynth"
	_ "compsynth/internal/ledger" // wires the -events ledger and -cert certifier
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // wires the -listen telemetry server
	"compsynth/internal/paths"
)

func main() {
	perOutput := flag.Bool("per-output", false, "print one line per primary output")
	through := flag.String("through", "", "also print the number of paths through this line")
	oflags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pathcount [-per-output] [-through line] circuit.bench")
		os.Exit(2)
	}
	run := oflags.Start("pathcount")
	lg := run.Log
	c, err := compsynth.LoadBench(flag.Arg(0))
	if err != nil {
		os.Exit(run.Fail(err))
	}
	run.CircuitBefore(c)
	if err := run.CheckCircuit("input", c); err != nil {
		os.Exit(run.Fail(err))
	}
	run.SetCertOptions(struct {
		PerOutput bool   `json:"per_output"`
		Through   string `json:"through,omitempty"`
	}{*perOutput, *through})
	sp := run.Tracer.StartSpan("pathcount.label")
	total := compsynth.CountPathsBig(c)
	sp.End()
	lg.Printf("%s: %v paths (%v)", c.Name, total, c.Stats())
	run.Report.AddResult("paths", total.String())
	if *perOutput {
		np := paths.LabelsBig(c)
		for _, o := range c.Outputs {
			lg.Printf("  %-12s %v", c.Nodes[o].Name, np[o])
		}
	}
	if *through != "" {
		id := c.NodeByName(*through)
		if id < 0 {
			os.Exit(run.Fail(fmt.Errorf("no line named %q", *through)))
		}
		n := paths.Through(c, id)
		lg.Printf("  through %s: %d", *through, n)
		run.Report.AddResult("paths_through", map[string]any{"line": *through, "paths": n})
	}
	if err := run.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "pathcount: %v\n", err)
		os.Exit(1)
	}
}
