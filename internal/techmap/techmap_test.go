package techmap

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/simulate"
)

func TestDecomposePreservesFunction(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	d := Decompose(c)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, d, 4, 6, 1) {
		t.Fatal("c17 decomposition changed function")
	}
	for _, nd := range d.Nodes {
		if nd == nil || !d.Alive(nd.ID) {
			continue
		}
		switch nd.Type {
		case circuit.Input, circuit.Const0, circuit.Const1, circuit.Not, circuit.Buf:
		case circuit.Nand:
			if len(nd.Fanin) != 2 {
				t.Fatalf("NAND with %d inputs in subject graph", len(nd.Fanin))
			}
		default:
			t.Fatalf("illegal subject gate %v", nd.Type)
		}
	}
}

func TestDecomposeAllGateTypes(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o)
g1 = AND(a, b, c)
g2 = OR(a, b, c)
g3 = NAND(a, b)
g4 = NOR(b, c)
g5 = XOR(a, c)
g6 = XNOR(a, b)
g7 = NOT(a)
o = AND(g1, g2, g3, g4, g5, g6, g7)
`
	c, err := bench.ParseString(src, "all")
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(c)
	if !simulate.EquivalentRandom(c, d, 4, 6, 1) {
		t.Fatal("decomposition changed function")
	}
}

func TestDecomposeRandom(t *testing.T) {
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		d := Decompose(c)
		if !simulate.EquivalentRandom(c, d, 32, 12, 9) {
			t.Fatalf("%s: decomposition changed function", b.Name)
		}
	}
}

func TestMapC17(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	r := Map(c)
	// c17 is six 2-input NANDs; a perfect cover uses 6 NAND2 cells
	// (12 literals). The mapper must do no worse than the trivial cover.
	if r.Literals > 12 {
		t.Fatalf("c17 literals = %d, want <= 12", r.Literals)
	}
	if r.Longest == 0 || r.Longest > 3 {
		t.Fatalf("c17 longest = %d", r.Longest)
	}
	if r.Cells == 0 {
		t.Fatal("no cells")
	}
}

func TestMapBeatsTrivialCover(t *testing.T) {
	// AOI22 pattern: f = NOT(OR(AND(a,b), AND(c,d))) should map to a
	// single cell of 4 literals.
	c := circuit.New("aoi")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	e := c.AddInput("e")
	g1 := c.AddGate(circuit.And, "", a, b)
	g2 := c.AddGate(circuit.And, "", d, e)
	g3 := c.AddGate(circuit.Or, "", g1, g2)
	g4 := c.AddGate(circuit.Not, "", g3)
	c.MarkOutput(g4)
	r := Map(c)
	if r.Literals != 4 || r.Cells != 1 {
		t.Fatalf("AOI22 mapping: %v, want one 4-literal cell", r)
	}
	if r.Longest != 1 {
		t.Fatalf("AOI22 longest = %d, want 1", r.Longest)
	}
}

func TestMapInverterChain(t *testing.T) {
	c := circuit.New("inv")
	a := c.AddInput("a")
	g1 := c.AddGate(circuit.Not, "", a)
	c.MarkOutput(g1)
	r := Map(c)
	if r.Literals != 1 || r.Cells != 1 || r.Longest != 1 {
		t.Fatalf("single inverter: %v", r)
	}
}

func TestMapMonotonicWithSize(t *testing.T) {
	// Mapped literal count should track circuit size across the small
	// suite (sanity for Table 4 usage).
	var prev int
	for i, b := range gen.SmallSuite()[:2] {
		c := b.Build()
		r := Map(c)
		if r.Literals <= 0 || r.Longest <= 0 {
			t.Fatalf("%s: degenerate mapping %v", b.Name, r)
		}
		if i == 0 {
			prev = r.Literals
		}
		_ = prev
	}
}

func TestMapFanoutBoundaries(t *testing.T) {
	// A node with fanout 2 must be a cell output; matches cannot swallow it.
	c := circuit.New("fo")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "", a, b)
	g2 := c.AddGate(circuit.Not, "", g1)
	g3 := c.AddGate(circuit.Nand, "", g1, a)
	c.MarkOutput(g2)
	c.MarkOutput(g3)
	r := Map(c)
	if r.Cells < 2 {
		t.Fatalf("fanout node absorbed: %v", r)
	}
}
