package circuit

// Edit journal: optional recording of which nodes an editing operation
// touched, so callers maintaining derived per-node state (cuts, levels,
// path labels, simulation values) can recompute just the affected cone
// instead of rebuilding from scratch after every local rewiring.
//
// A node is "touched" when its own definition changes — type, fanin list,
// liveness — or when it is newly added. Consumers rewired by ReplaceUses are
// touched (their fanin changed); nodes whose fanout set changed implicitly
// (the old/new endpoints of ReplaceUses) are touched as well, so journal
// consumers may treat the set as covering every node whose local
// neighborhood moved. Values that depend on a wider cone (e.g. transitive
// fanin functions) must be invalidated by closure over the touched set;
// that closure is the caller's job.

// BeginJournal starts (or restarts) recording touched node IDs. Recording
// has no effect on semantics; it only populates the set returned by
// TakeJournal.
func (c *Circuit) BeginJournal() {
	c.journal = make(map[int]bool)
}

// TakeJournal returns the set of node IDs touched since the last
// BeginJournal/TakeJournal and resets the set, leaving recording active.
// Returns nil if recording was never started.
func (c *Circuit) TakeJournal() map[int]bool {
	j := c.journal
	if j != nil {
		c.journal = make(map[int]bool)
	}
	return j
}

// EndJournal stops recording and discards any unread entries.
func (c *Circuit) EndJournal() {
	c.journal = nil
}

func (c *Circuit) touch(id int) {
	if c.journal != nil {
		c.journal[id] = true
	}
	// Every touch also advances the frozen-view generation (csr.go), whether
	// or not journal recording is on.
	c.fz.gen++
	c.fz.note(id, len(c.Nodes))
}
