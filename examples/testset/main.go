// Test-set generation: identify a comparison function (the paper's f2
// example from Section 3.1), build its comparison unit, and generate the
// complete robust two-pattern test set, re-verifying each test with the
// 5-valued robust simulation.
package main

import (
	"fmt"
	"log"

	"compsynth"
	"compsynth/internal/compare"
	"compsynth/internal/delay"
	"compsynth/internal/logic"
)

func main() {
	// f2(y1..y4) = 1 on minterms {1, 5, 6, 9, 10, 14} (decimal, y1 = MSB).
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	fmt.Printf("f2 truth table: %s\n", f)

	spec, ok := compsynth.IdentifyComparison(f)
	if !ok {
		log.Fatal("f2 should be a comparison function")
	}
	fmt.Printf("identified: %v\n", spec)
	fmt.Printf("free variables: %d, unit cost: %d equiv-2-input gates\n\n",
		spec.FreeCount(), spec.GateCost())

	unit := spec.BuildStandalone("f2unit", compare.BuildOptions{Merge: true})
	fmt.Printf("unit: %v\n", unit.Stats())

	tests := spec.TestSet()
	fmt.Printf("robust test set: %d two-pattern tests for %d path delay faults\n\n",
		len(tests), spec.NumPathFaults())

	paths := delay.EnumeratePaths(unit, 0)
	fmt.Printf("%-22s %-20s %s\n", "fault", "patterns (V1->V2)", "verified")
	allRobust := true
	for _, ut := range tests {
		robust := false
		for _, p := range paths {
			if delay.PathRobust(unit, p.Nodes, p.Pins, ut.V1, ut.V2) {
				robust = true
				break
			}
		}
		if !robust {
			allRobust = false
		}
		fmt.Printf("%-22s %v -> %v   %v\n", ut.String(), bits(ut.V1), bits(ut.V2), robust)
	}
	if allRobust {
		fmt.Println("\nevery test is robust: the unit is fully robustly testable")
	}
}

func bits(v []bool) string {
	b := make([]byte, len(v))
	for i, x := range v {
		if x {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
