// Package atpg implements a PODEM test pattern generator for single
// stuck-at faults on the 5-valued algebra {0, 1, X, D, D'}. Its primary
// client is the redundancy-removal pass (the paper applies [15] after
// Procedure 2); it also powers the atpg command-line tool.
package atpg

import (
	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/obs"
)

// PODEM metrics: totals per process plus the per-call backtrack
// distribution (hard faults show up in the p99).
var (
	mCalls      = obs.C("atpg.calls")
	mBacktracks = obs.C("atpg.backtracks")
	mRedundant  = obs.C("atpg.redundant_proofs")
	mAborted    = obs.C("atpg.aborts")
	hBacktracks = obs.H("atpg.backtracks_per_call")
)

// Value is a 5-valued signal: a (good, faulty) pair.
type Value int8

// The 5 values of the PODEM algebra.
const (
	X    Value = iota // unknown
	Zero              // 0/0
	One               // 1/1
	D                 // 1/0: good 1, faulty 0
	Dbar              // 0/1
)

func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case D:
		return "D"
	case Dbar:
		return "D'"
	}
	return "X"
}

// good returns the fault-free component (0, 1, or -1 for unknown).
func (v Value) good() int {
	switch v {
	case Zero, Dbar:
		return 0
	case One, D:
		return 1
	}
	return -1
}

// bad returns the faulty component.
func (v Value) bad() int {
	switch v {
	case Zero, D:
		return 0
	case One, Dbar:
		return 1
	}
	return -1
}

func fromPair(g, b int) Value {
	switch {
	case g < 0 || b < 0:
		return X
	case g == 0 && b == 0:
		return Zero
	case g == 1 && b == 1:
		return One
	case g == 1 && b == 0:
		return D
	default:
		return Dbar
	}
}

// Status reports the outcome of test generation.
type Status int

// Outcomes of Generate.
const (
	Testable  Status = iota // a test was found
	Redundant               // proved untestable (search space exhausted)
	Aborted                 // backtrack limit hit
)

func (s Status) String() string {
	switch s {
	case Testable:
		return "testable"
	case Redundant:
		return "redundant"
	}
	return "aborted"
}

// Options bounds the search.
type Options struct {
	BacktrackLimit int // decisions undone before giving up (0 = default)

	// Tracer, when non-nil, records one span per Generate call (subject to
	// the tracer's span cap). Nil keeps the zero-overhead fast path.
	Tracer *obs.Tracer
}

// Result of a Generate call.
type Result struct {
	Status     Status
	Test       []bool // PI assignment when Status == Testable (X filled with 0)
	Backtracks int
}

type decision struct {
	pi        int // input position
	value     bool
	triedBoth bool
}

type engine struct {
	c      *circuit.Circuit
	f      faults.Fault
	topo   []int // topologically ordered relevant nodes only
	val    []Value
	inCone []bool // nodes that can influence detection of this fault
	limit  int
	backs  int
	site   int  // node whose output carries the fault effect
	driver int  // node whose good value activates the fault
	want   bool // activation value (opposite of the stuck value)

	// Per-implication analysis, recomputed once after every implyStack.
	frontier []int  // D-frontier gates
	xpathOK  bool   // some D/D' can still reach a PO through X lines
	poMask   []bool // primary output drivers
	seenBuf  []bool // scratch for the X-path walk
}

// relevantCone computes the nodes that matter for fault f: the transitive
// fanin of every node in the fanout cone of the site (including the POs the
// effect can reach). Simulating and deciding only inside this cone cuts the
// per-decision cost sharply on large circuits.
func relevantCone(c *circuit.Circuit, site int) []bool {
	c.RebuildFanouts()
	fwd := make([]bool, len(c.Nodes))
	var down func(int)
	down = func(id int) {
		if fwd[id] {
			return
		}
		fwd[id] = true
		for _, o := range c.Fanouts(id) {
			down(o)
		}
	}
	down(site)
	rel := make([]bool, len(c.Nodes))
	var up func(int)
	up = func(id int) {
		if rel[id] {
			return
		}
		rel[id] = true
		for _, f := range c.Nodes[id].Fanin {
			up(f)
		}
	}
	for id, in := range fwd {
		if in {
			up(id)
		}
	}
	return rel
}

// Generate runs PODEM for fault f on circuit c. When the search space is
// exhausted without finding a test, the fault is proved Redundant.
func Generate(c *circuit.Circuit, f faults.Fault, opt Options) Result {
	sp := opt.Tracer.StartSpan("atpg.generate")
	r := generate(c, f, opt)
	sp.SetStr("status", r.Status.String())
	sp.SetInt("backtracks", int64(r.Backtracks))
	sp.End()
	mCalls.Inc()
	mBacktracks.Add(int64(r.Backtracks))
	hBacktracks.Observe(float64(r.Backtracks))
	switch r.Status {
	case Redundant:
		mRedundant.Inc()
	case Aborted:
		mAborted.Inc()
	}
	return r
}

func generate(c *circuit.Circuit, f faults.Fault, opt Options) Result {
	limit := opt.BacktrackLimit
	if limit <= 0 {
		limit = 20000
	}
	e := &engine{
		c: c, f: f,
		val:   make([]Value, len(c.Nodes)),
		limit: limit,
		want:  !f.Stuck,
	}
	e.site = f.Node
	e.driver = f.Node
	if f.Pin >= 0 {
		e.driver = c.Nodes[f.Node].Fanin[f.Pin]
	}
	c.RebuildFanouts()
	e.inCone = relevantCone(c, e.site)
	for _, id := range c.Topo() {
		if e.inCone[id] {
			e.topo = append(e.topo, id)
		}
	}
	e.poMask = make([]bool, len(c.Nodes))
	for _, o := range c.Outputs {
		e.poMask[o] = true
	}
	e.seenBuf = make([]bool, len(c.Nodes))

	var stack []decision
	for {
		e.implyStack(stack)
		e.analyze()
		if e.testFound() {
			test := make([]bool, len(c.Inputs))
			for _, d := range stack {
				test[d.pi] = d.value
			}
			return Result{Status: Testable, Test: test, Backtracks: e.backs}
		}
		advanced := false
		if e.feasible() {
			if obj, objVal, ok := e.objective(); ok {
				if pi, piVal, ok2 := e.backtrace(obj, objVal); ok2 {
					stack = append(stack, decision{pi: pi, value: piVal})
					advanced = true
				}
			}
		}
		if advanced {
			continue
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return Result{Status: Redundant, Backtracks: e.backs}
			}
			top := &stack[len(stack)-1]
			if !top.triedBoth {
				top.triedBoth = true
				top.value = !top.value
				e.backs++
				if e.backs > e.limit {
					return Result{Status: Aborted, Backtracks: e.backs}
				}
				break
			}
			stack = stack[:len(stack)-1]
		}
	}
}

// analyze recomputes the D-frontier and the X-path flag for the current
// assignment. Both are consulted several times per decision; computing them
// once per implication dominates PODEM's constant factor.
func (e *engine) analyze() {
	e.frontier = e.frontier[:0]
	for _, id := range e.topo {
		nd := e.c.Nodes[id]
		if e.val[id] != X {
			continue
		}
		for _, f := range nd.Fanin {
			if e.val[f] == D || e.val[f] == Dbar {
				e.frontier = append(e.frontier, id)
				break
			}
		}
	}
	e.xpathOK = e.computeXPath()
}

// testFound reports whether a D/D' reached any primary output.
func (e *engine) testFound() bool {
	for _, o := range e.c.Outputs {
		if e.val[o] == D || e.val[o] == Dbar {
			return true
		}
	}
	return false
}

// feasible reports whether the current assignment can still be extended to
// a test: the fault must remain activatable and the effect propagatable.
func (e *engine) feasible() bool {
	g := e.val[e.driver].good()
	want := 0
	if e.want {
		want = 1
	}
	if g >= 0 && g != want {
		return false // activation impossible
	}
	if g < 0 {
		return true // activation still open
	}
	// Activated at the driver; for branch faults the effect must survive
	// (or still be undecided) at the consuming gate.
	if e.f.Pin >= 0 {
		switch e.val[e.site] {
		case X:
			return true
		case D, Dbar:
			// fall through to the propagation check
		default:
			return false // masked at the gate
		}
	}
	if e.testFound() {
		return true
	}
	return e.xpathOK
}

// computeXPath reports whether some fault effect (D/D') can still reach a
// primary output through X-valued lines — the classic X-path check, which
// prunes hopeless branches long before the D-frontier empties.
func (e *engine) computeXPath() bool {
	seen := e.seenBuf
	var touched []int
	defer func() {
		for _, id := range touched {
			seen[id] = false
		}
	}()
	var stack []int
	for _, id := range e.topo {
		if e.val[id] == D || e.val[id] == Dbar {
			stack = append(stack, id)
			if e.poMask[id] {
				return true
			}
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, consumer := range e.c.Fanouts(id) {
			if seen[consumer] || e.val[consumer] != X {
				continue
			}
			if e.poMask[consumer] {
				return true
			}
			seen[consumer] = true
			touched = append(touched, consumer)
			stack = append(stack, consumer)
		}
	}
	return false
}

// objective returns the next (node, value) goal: activate the fault first,
// then advance the D-frontier.
func (e *engine) objective() (int, bool, bool) {
	if e.val[e.driver].good() < 0 {
		return e.driver, e.want, true
	}
	// Activated. For a still-undecided branch fault, unblock the consuming
	// gate by setting an X side input to its non-controlling value.
	if e.f.Pin >= 0 && e.val[e.site] == X {
		nd := e.c.Nodes[e.site]
		ctl, has := nd.Type.ControllingValue()
		for pin, f := range nd.Fanin {
			if pin != e.f.Pin && e.val[f] == X {
				if has {
					return f, !ctl, true
				}
				return f, false, true // parity gate: either value decides
			}
		}
		return 0, false, false
	}
	if len(e.frontier) == 0 {
		return 0, false, false
	}
	nd := e.c.Nodes[e.frontier[0]]
	ctl, has := nd.Type.ControllingValue()
	for _, f := range nd.Fanin {
		if e.val[f] == X {
			if has {
				return f, !ctl, true
			}
			return f, false, true
		}
	}
	return 0, false, false
}

// backtrace maps an objective to an unassigned primary input and a value,
// walking backward through X-valued lines.
func (e *engine) backtrace(node int, want bool) (int, bool, bool) {
	for {
		nd := e.c.Nodes[node]
		switch nd.Type {
		case circuit.Input:
			if e.val[node] != X {
				return 0, false, false
			}
			for j, in := range e.c.Inputs {
				if in == node {
					return j, want, true
				}
			}
			return 0, false, false
		case circuit.Const0, circuit.Const1:
			return 0, false, false
		case circuit.Not:
			want = !want
			node = nd.Fanin[0]
		case circuit.Buf:
			node = nd.Fanin[0]
		default:
			if nd.Type.Inverting() {
				want = !want
			}
			picked := -1
			for _, f := range nd.Fanin {
				if e.val[f] == X {
					picked = f
					break
				}
			}
			if picked < 0 {
				return 0, false, false
			}
			// For AND (after deinversion) wanting 1, every input must be 1;
			// wanting 0, a single 0 suffices — in both cases the picked X
			// input is driven toward `want`. Same for OR; parity gates take
			// the value as-is.
			node = picked
		}
	}
}

// implyStack performs full 5-valued forward simulation for a decision set.
func (e *engine) implyStack(stack []decision) {
	for i := range e.val {
		e.val[i] = X
	}
	for _, d := range stack {
		in := e.c.Inputs[d.pi]
		if d.value {
			e.val[in] = One
		} else {
			e.val[in] = Zero
		}
	}
	for _, in := range e.c.Inputs {
		e.applyStemFault(in)
	}
	for _, id := range e.topo {
		nd := e.c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		e.val[id] = e.evalGate(nd)
		e.applyStemFault(id)
	}
}

// applyStemFault overlays the stem fault effect on node id.
func (e *engine) applyStemFault(id int) {
	if e.f.Pin >= 0 || id != e.f.Node {
		return
	}
	b := 0
	if e.f.Stuck {
		b = 1
	}
	e.val[id] = fromPair(e.val[id].good(), b)
}

// evalGate computes the 5-valued output of a gate, accounting for a branch
// fault on one of its pins.
func (e *engine) evalGate(nd *circuit.Node) Value {
	switch nd.Type {
	case circuit.Const0:
		return Zero
	case circuit.Const1:
		return One
	}
	goodAcc, badAcc := -2, -2 // -2 = identity/unset
	for pin, f := range nd.Fanin {
		gv, bv := e.val[f].good(), e.val[f].bad()
		if e.f.Pin == pin && nd.ID == e.f.Node {
			bv = 0
			if e.f.Stuck {
				bv = 1
			}
		}
		goodAcc = combine(nd.Type, goodAcc, gv)
		badAcc = combine(nd.Type, badAcc, bv)
	}
	if nd.Type.Inverting() {
		goodAcc, badAcc = invVal(goodAcc), invVal(badAcc)
	}
	return fromPair(goodAcc, badAcc)
}

// combine folds one ternary input (0, 1, -1=unknown) into an accumulator.
func combine(t circuit.GateType, acc, v int) int {
	if acc == -2 {
		return v
	}
	switch t {
	case circuit.And, circuit.Nand, circuit.Buf, circuit.Not:
		if acc == 0 || v == 0 {
			return 0
		}
		if acc == 1 && v == 1 {
			return 1
		}
		return -1
	case circuit.Or, circuit.Nor:
		if acc == 1 || v == 1 {
			return 1
		}
		if acc == 0 && v == 0 {
			return 0
		}
		return -1
	default: // Xor, Xnor
		if acc < 0 || v < 0 {
			return -1
		}
		return acc ^ v
	}
}

func invVal(v int) int {
	if v < 0 {
		return v
	}
	return 1 - v
}
