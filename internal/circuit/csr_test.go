package circuit

import (
	"fmt"
	"testing"
)

// refFreeze builds a from-scratch reference view, bypassing the incremental
// machinery entirely.
func refFreeze(c *Circuit) *CSR {
	ref := &CSR{}
	lv := make([]int32, len(c.Nodes))
	csrLevels(c, lv)
	repackCSR(ref, c, lv)
	return ref
}

// mustMatchRef freezes c and fails the test unless the (possibly patched)
// view is array-for-array identical to a from-scratch rebuild, and unless
// Check's csr_stale audit agrees.
func mustMatchRef(t *testing.T, c *Circuit, step string) *CSR {
	t.Helper()
	v := c.Freeze()
	if err := csrEqual(v, refFreeze(c)); err != nil {
		t.Fatalf("%s: patched CSR diverges from reference: %v", step, err)
	}
	if err := CheckWith(c, CheckOptions{AllowUnreachable: true}); err != nil {
		t.Fatalf("%s: Check after Freeze: %v", step, err)
	}
	return v
}

func buildCSRTestCircuit() *Circuit {
	c := New("csrtest")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ci := c.AddInput("cin")
	x1 := c.AddGate(Xor, "x1", a, b)
	s := c.AddGate(Xor, "sum", x1, ci)
	a1 := c.AddGate(And, "a1", a, b)
	a2 := c.AddGate(And, "a2", x1, ci)
	co := c.AddGate(Or, "cout", a1, a2)
	c.MarkOutput(s)
	c.MarkOutput(co)
	return c
}

func TestCSRBasicShape(t *testing.T) {
	c := buildCSRTestCircuit()
	v := c.Freeze()
	if v.N() != c.NumLive() {
		t.Fatalf("N() = %d, want %d", v.N(), c.NumLive())
	}
	if len(v.In) != len(c.Inputs) || len(v.Out) != len(c.Outputs) {
		t.Fatalf("In/Out sizes %d/%d, want %d/%d", len(v.In), len(v.Out), len(c.Inputs), len(c.Outputs))
	}
	// Dense order must be a valid topological order: every fanin dense id is
	// smaller than its consumer's.
	for d := int32(0); int(d) < v.N(); d++ {
		for _, f := range v.FaninOf(d) {
			if f >= d {
				t.Fatalf("dense order not topological: fanin %d of node %d", f, d)
			}
		}
	}
	// Level-major: levels are non-decreasing in dense order, ids ascend
	// within a level.
	for d := 1; d < v.N(); d++ {
		if v.Level[d] < v.Level[d-1] {
			t.Fatalf("levels not sorted at dense %d", d)
		}
		if v.Level[d] == v.Level[d-1] && v.NodeID[d] <= v.NodeID[d-1] {
			t.Fatalf("ids not ascending within level at dense %d", d)
		}
	}
	// Round trip dense <-> sparse.
	for d := 0; d < v.N(); d++ {
		if v.DenseOf[v.NodeID[d]] != int32(d) {
			t.Fatalf("DenseOf(NodeID[%d]) = %d", d, v.DenseOf[v.NodeID[d]])
		}
	}
	// Fanout is the transpose of fanin.
	for d := int32(0); int(d) < v.N(); d++ {
		for _, f := range v.FaninOf(d) {
			found := false
			for _, o := range v.FanoutOf(f) {
				if o == d {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fanout of %d missing consumer %d", f, d)
			}
		}
	}
	// Levels agree with the circuit's own levelization.
	lv := c.Levels()
	for d := 0; d < v.N(); d++ {
		if int(v.Level[d]) != lv[v.NodeID[d]] {
			t.Fatalf("level of node %d: %d vs %d", v.NodeID[d], v.Level[d], lv[v.NodeID[d]])
		}
	}
}

func TestFreezeCachesUntilMutation(t *testing.T) {
	c := buildCSRTestCircuit()
	v1 := c.Freeze()
	if v2 := c.Freeze(); v2 != v1 {
		t.Fatal("Freeze without mutation returned a new view")
	}
	// Read-only derived-state calls must not age the view.
	c.Topo()
	c.Levels()
	c.RebuildFanouts()
	if v2 := c.Freeze(); v2 != v1 {
		t.Fatal("cache queries aged the frozen view")
	}
	g := v1.Gen()
	c.Rename(c.NodeByName("x1"), "x1r")
	if v1.Gen() != g {
		t.Fatal("old view's generation changed")
	}
	v3 := c.Freeze()
	if v3.Gen() == g {
		t.Fatal("rename did not advance the generation")
	}
	if v3.Name[v3.DenseOf[c.NodeByName("x1r")]] != "x1r" {
		t.Fatal("rename not reflected in refrozen view")
	}
}

// TestCSRMutatorSequence drives every mutator through a freeze-after-each-
// edit sequence and requires the incrementally patched view to equal a
// from-scratch rebuild at every step.
func TestCSRMutatorSequence(t *testing.T) {
	c := buildCSRTestCircuit()
	mustMatchRef(t, c, "initial")

	d := c.AddInput("d")
	mustMatchRef(t, c, "AddInput")

	n1 := c.AddGate(Nand, "n1", d, c.NodeByName("x1"))
	mustMatchRef(t, c, "AddGate")

	c.MarkOutput(n1)
	mustMatchRef(t, c, "MarkOutput")

	c.SetFanin(n1, 0, c.NodeByName("a1"))
	mustMatchRef(t, c, "SetFanin")

	c.AddFaninFront(n1, d)
	mustMatchRef(t, c, "AddFaninFront")

	if !c.Rename(n1, "n1r") {
		t.Fatal("Rename failed")
	}
	mustMatchRef(t, c, "Rename")

	// Splice a gate between x1 and its consumers.
	buf := c.AddGate(Buf, "x1buf", c.NodeByName("x1"))
	mustMatchRef(t, c, "AddGate buf")
	for _, id := range append([]int(nil), c.Fanouts(c.NodeByName("x1"))...) {
		if id == buf {
			continue
		}
		nd := c.Nodes[id]
		for pin, f := range nd.Fanin {
			if f == c.NodeByName("x1") {
				c.SetFanin(id, pin, buf)
			}
		}
		mustMatchRef(t, c, fmt.Sprintf("rewire consumer %d", id))
	}

	k := c.AddGate(And, "island", d, d)
	mustMatchRef(t, c, "AddGate island")
	c.Kill(k)
	mustMatchRef(t, c, "Kill")

	c.SetConstant(c.NodeByName("a2"), false)
	mustMatchRef(t, c, "SetConstant")

	c.Simplify()
	mustMatchRef(t, c, "Simplify")

	c.Strash()
	mustMatchRef(t, c, "Strash")

	rep := c.NodeByName("a1")
	tgt := c.NodeByName("sum")
	if rep >= 0 && tgt >= 0 && rep != tgt {
		c.ReplaceUses(rep, tgt)
		mustMatchRef(t, c, "ReplaceUses")
		c.SweepDead()
		mustMatchRef(t, c, "SweepDead")
	}

	cc, _ := c.Compact()
	mustMatchRef(t, cc, "Compact")
}

// TestCSRJournalIndependence: the incremental freeze must work identically
// whether or not a resynthesis-style journal is recording.
func TestCSRMutationsUnderJournal(t *testing.T) {
	c := buildCSRTestCircuit()
	c.BeginJournal()
	defer c.EndJournal()
	mustMatchRef(t, c, "initial")
	c.SetFanin(c.NodeByName("a2"), 0, c.NodeByName("a"))
	j := c.TakeJournal()
	if len(j) == 0 {
		t.Fatal("journal lost its entries")
	}
	mustMatchRef(t, c, "SetFanin under journal")
}

func TestCSROverflowFallsBackToFullRebuild(t *testing.T) {
	c := buildCSRTestCircuit()
	c.Freeze()
	// Touch far more than 2*nodes times so tracking overflows.
	a2 := c.NodeByName("a2")
	x1 := c.NodeByName("x1")
	ci := c.NodeByName("cin")
	for i := 0; i < 10*len(c.Nodes); i++ {
		if i%2 == 0 {
			c.SetFanin(a2, 0, ci)
		} else {
			c.SetFanin(a2, 0, x1)
		}
	}
	if !c.fz.overflow {
		t.Fatal("dirty tracking did not overflow")
	}
	mustMatchRef(t, c, "post-overflow")
	if c.fz.overflow {
		t.Fatal("overflow flag not reset by Freeze")
	}
}

func TestThawDropsView(t *testing.T) {
	c := buildCSRTestCircuit()
	v := c.Freeze()
	c.Thaw()
	v2 := c.Freeze()
	if v2 == v {
		t.Fatal("Freeze after Thaw returned the dropped view")
	}
	if err := csrEqual(v, v2); err != nil {
		t.Fatalf("rebuilt view differs: %v", err)
	}
}

func TestCheckCatchesCorruptedCSR(t *testing.T) {
	c := buildCSRTestCircuit()
	v := c.Freeze()
	if err := Check(c); err != nil {
		t.Fatalf("clean circuit: %v", err)
	}
	v.Kind[v.DenseOf[c.NodeByName("a1")]] = Or // corrupt the frozen view
	err := Check(c)
	if err == nil {
		t.Fatal("Check accepted a corrupted current-generation view")
	}
	c.Thaw()
	if err := Check(c); err != nil {
		t.Fatalf("Thaw did not clear the corruption: %v", err)
	}
	// A view merely behind the circuit is not an error.
	c.Freeze()
	c.Rename(c.NodeByName("a1"), "a1r")
	if err := Check(c); err != nil {
		t.Fatalf("stale-but-honest view rejected: %v", err)
	}
	// A view claiming a future generation is always an error.
	c2 := buildCSRTestCircuit()
	c2.Freeze().gen = c2.fz.gen + 1
	if err := Check(c2); err == nil {
		t.Fatal("Check accepted a view from the future")
	}
}

func TestCloneDoesNotShareFrozenView(t *testing.T) {
	c := buildCSRTestCircuit()
	v := c.Freeze()
	cp := c.Clone()
	v2 := cp.Freeze()
	if v2 == v {
		t.Fatal("clone shares the original's frozen view")
	}
	if err := csrEqual(v, v2); err != nil {
		t.Fatalf("clone's view differs: %v", err)
	}
	cp.SetConstant(cp.NodeByName("a1"), true)
	if err := Check(c); err != nil {
		t.Fatalf("mutating the clone corrupted the original: %v", err)
	}
}

func BenchmarkCSRRebuild(b *testing.B) {
	// A wide layered circuit, mutated locally between freezes: the patch
	// path's intended shape.
	c := buildWideCircuit(64, 40)
	c.Freeze()
	// Swap one output gate's pin between two deep nodes: the dirty fanout
	// cone stays a handful of nodes, which is the patch path's sweet spot.
	// (Rewiring from a primary input would dirty nearly every level and
	// correctly fall back to full rebuilds.)
	tgt := c.Outputs[0]
	pin := c.Nodes[tgt].Fanin[0]
	alt := c.Nodes[c.Outputs[1]].Fanin[0]
	// Warm-up patch cycle: the first patch pays one-time costs (sparse
	// fanout cache, scratch growth) that would distort per-op numbers at
	// the low -benchtime the CI gate uses.
	c.SetFanin(tgt, 0, alt)
	c.Freeze()
	c.SetFanin(tgt, 0, pin)
	c.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			c.SetFanin(tgt, 0, pin)
		} else {
			c.SetFanin(tgt, 0, alt)
		}
		c.Freeze()
	}
}

func BenchmarkCSRFullRebuild(b *testing.B) {
	c := buildWideCircuit(64, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Thaw()
		c.Freeze()
	}
}

func buildWideCircuit(width, depth int) *Circuit {
	c := New("bench")
	prev := make([]int, 0, width)
	for i := 0; i < width; i++ {
		prev = append(prev, c.AddInput(fmt.Sprintf("i%d", i)))
	}
	for l := 0; l < depth; l++ {
		cur := make([]int, 0, width)
		for g := 0; g < width; g++ {
			t := And
			if g%3 == 1 {
				t = Or
			} else if g%3 == 2 {
				t = Xor
			}
			cur = append(cur, c.AddGate(t, "", prev[g], prev[(g+7)%width]))
		}
		prev = cur
	}
	for _, id := range prev {
		c.MarkOutput(id)
	}
	return c
}
