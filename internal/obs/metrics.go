package obs

import "compsynth/internal/metric"

// The instrument registry lives in internal/metric so that packages below
// obs in the import graph (notably internal/circuit, which obs itself
// imports for run reports) can register instruments too. obs re-exports the
// full API under the historical names; both registration paths share the one
// process-wide registry and both are audited by the sftlint metricname rule.

// Metrics is a registry of named counters, gauges and histograms.
type Metrics = metric.Metrics

// Counter is a monotonically increasing count (one atomic word).
type Counter = metric.Counter

// Gauge is a last-write-wins instantaneous value.
type Gauge = metric.Gauge

// Histogram accumulates a distribution of float64 observations.
type Histogram = metric.Histogram

// HistogramStats is the JSON-friendly summary of a histogram.
type HistogramStats = metric.HistogramStats

// Bucket is one cumulative histogram bucket: Count observations were <= LE.
type Bucket = metric.Bucket

// Snapshot is a point-in-time copy of every registered instrument.
type Snapshot = metric.Snapshot

// DefaultBucketBounds are the cumulative-bucket upper bounds attached to
// every histogram snapshot.
var DefaultBucketBounds = metric.DefaultBucketBounds

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return metric.NewMetrics() }

// Default returns the process-wide registry. Pipeline packages register
// their instruments here at init; commands snapshot it into the run report.
func Default() *Metrics { return metric.Default() }

// C returns (creating if needed) the counter with this name in the Default
// registry. Shorthand for package-level instrument declarations.
func C(name string) *Counter { return metric.C(name) }

// G returns the named gauge in the Default registry.
func G(name string) *Gauge { return metric.G(name) }

// H returns the named histogram in the Default registry.
func H(name string) *Histogram { return metric.H(name) }
