package metric

import "testing"

func TestHistogramPercentiles(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat")
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {90, 90}, {99, 99}, {100, 100},
	} {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	s := m.Snapshot().Histograms["lat"]
	if s.Count != 100 || s.Min != 1 || s.Max != 100 || s.Mean != 50.5 {
		t.Errorf("stats = %+v, want count=100 min=1 max=100 mean=50.5", s)
	}
}

func TestHistogramSampleCap(t *testing.T) {
	h := &Histogram{maxSamples: 4}
	for v := 1; v <= 10; v++ {
		h.Observe(float64(v))
	}
	// Summaries stay exact past the sample cap.
	if got := h.Count(); got != 10 {
		t.Errorf("Count() = %d, want 10", got)
	}
	if s := h.stats(); s.Max != 10 || s.Sum != 55 {
		t.Errorf("stats = %+v, want max=10 sum=55", s)
	}
}

func TestSnapshotDiff(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("hits")
	m.Counter("idle") // never incremented: must not appear in the diff
	m.Histogram("empty")
	c.Add(3)
	base := m.Snapshot()
	c.Add(4)
	m.Histogram("seen").Observe(1)
	d := m.Snapshot().Diff(base)
	if got := d.Counters["hits"]; got != 4 {
		t.Errorf("diff hits = %d, want 4", got)
	}
	if _, ok := d.Counters["idle"]; ok {
		t.Error("zero-delta counter survived Diff")
	}
	if _, ok := d.Histograms["empty"]; ok {
		t.Error("empty histogram survived Diff")
	}
	if _, ok := d.Histograms["seen"]; !ok {
		t.Error("observed histogram dropped by Diff")
	}
}

// TestLiveRegistrySeparate pins that the live-only registry is distinct from
// Default: instruments registered on one never leak into the other's
// snapshot (run reports snapshot Default; a live instrument appearing there
// would break the obsdiff determinism gates).
func TestLiveRegistrySeparate(t *testing.T) {
	if Live() == Default() {
		t.Fatal("Live() and Default() are the same registry")
	}
	if Live() != Live() {
		t.Fatal("Live() is not stable")
	}
	name := "metric.live_separation_probe"
	Live().Counter(name).Add(2)
	if _, ok := Default().Snapshot().Counters[name]; ok {
		t.Errorf("live counter %q leaked into the Default snapshot", name)
	}
	if got := Live().Snapshot().Counters[name]; got < 2 {
		t.Errorf("live counter %q = %d, want >= 2", name, got)
	}
}
