// Package circuit provides the gate-level combinational netlist that all
// other packages operate on: construction, structural queries, levelization,
// equivalent-2-input gate counting, editing and validation.
//
// A circuit is a DAG of nodes. Each node is a primary input, a constant, or a
// gate with one or more fanin edges. Primary outputs are designated nodes
// (their driving lines). Fanout branches are implicit: a node with k fanout
// consumers has k fanout branches, each carrying the stem's value, exactly as
// in the paper's line model.
package circuit

import (
	"fmt"
	"sort"
)

// GateType enumerates supported node kinds.
type GateType int

// Node kinds. Input and the constants have no fanin; Not and Buf have exactly
// one; the others accept arbitrary fanin >= 1 (Xor/Xnor are parity gates).
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	dead // tombstone for removed nodes; never visible after Compact
)

var typeNames = map[GateType]string{
	Input: "INPUT", Const0: "CONST0", Const1: "CONST1", Buf: "BUF",
	Not: "NOT", And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", dead: "DEAD",
}

func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// Inverting reports whether the gate complements the underlying monotone
// function (NAND/NOR/NOT/XNOR).
func (t GateType) Inverting() bool {
	return t == Nand || t == Nor || t == Not || t == Xnor
}

// ControllingValue returns the controlling input value of the gate and
// whether one exists. AND/NAND are controlled by 0, OR/NOR by 1.
func (t GateType) ControllingValue() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// Eval computes the gate function on concrete input values.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	}
	panic("circuit: Eval on " + t.String())
}

// EvalWords computes the gate function on 64-pattern-parallel words.
func (t GateType) EvalWords(in []uint64) uint64 {
	switch t {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, x := range in {
			v &= x
		}
		if t == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, x := range in {
			v |= x
		}
		if t == Nor {
			return ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, x := range in {
			v ^= x
		}
		if t == Xnor {
			return ^v
		}
		return v
	}
	panic("circuit: EvalWords on " + t.String())
}

// Node is a primary input, constant or gate.
type Node struct {
	ID    int
	Type  GateType
	Name  string
	Fanin []int // driving node IDs, in pin order

	fanout []int // consumer node IDs (with multiplicity), maintained by Circuit
}

// Circuit is a combinational netlist.
type Circuit struct {
	Name    string
	Nodes   []*Node // indexed by ID; tombstoned entries have Type == dead
	Inputs  []int   // primary input node IDs in declaration order
	Outputs []int   // primary output driver node IDs in declaration order

	byName     map[string]int
	fanoutsOK  bool
	topoCache  []int
	levelCache []int
	journal    map[int]bool // touched-node recording; nil = off (see journal.go)
	scopeOn    bool         // scoped overlay capture active (see journal.go)
	scopeIDs   []int        // overlay capture buffer, in touch order
	fz         frozenState  // frozen CSR view + its edit tracking (see csr.go)
}

// New returns an empty circuit.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: map[string]int{}}
}

func (c *Circuit) invalidate() {
	c.fanoutsOK = false
	c.topoCache = nil
	c.levelCache = nil
}

// AddInput adds a primary input with the given name.
func (c *Circuit) AddInput(name string) int {
	id := c.addNode(Input, name, nil)
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddGate adds a gate. Name may be empty; a unique one is generated.
func (c *Circuit) AddGate(t GateType, name string, fanin ...int) int {
	switch t {
	case Input:
		panic("circuit: use AddInput")
	case Const0, Const1:
		if len(fanin) != 0 {
			panic("circuit: constant with fanin")
		}
	case Buf, Not:
		if len(fanin) != 1 {
			panic(fmt.Sprintf("circuit: %v needs exactly 1 fanin, got %d", t, len(fanin)))
		}
	default:
		if len(fanin) < 1 {
			panic(fmt.Sprintf("circuit: %v needs fanin", t))
		}
	}
	for _, f := range fanin {
		if f < 0 || f >= len(c.Nodes) || c.Nodes[f] == nil || c.Nodes[f].Type == dead {
			panic(fmt.Sprintf("circuit: fanin %d does not exist", f))
		}
	}
	return c.addNode(t, name, append([]int(nil), fanin...))
}

func (c *Circuit) addNode(t GateType, name string, fanin []int) int {
	id := len(c.Nodes)
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	if _, dup := c.byName[name]; dup {
		name = fmt.Sprintf("%s_%d", name, id)
	}
	c.Nodes = append(c.Nodes, &Node{ID: id, Type: t, Name: name, Fanin: fanin})
	c.byName[name] = id
	c.touch(id)
	c.invalidate()
	return id
}

// MarkOutput designates node id as (driving) a primary output.
func (c *Circuit) MarkOutput(id int) {
	c.Outputs = append(c.Outputs, id)
	// Not a netlist edit (no journal/cache invalidation needed), but the
	// frozen view's Out array must track the designation.
	c.fz.gen++
	c.fz.note(id, len(c.Nodes))
}

// NodeByName returns the node ID for name, or -1.
func (c *Circuit) NodeByName(name string) int {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return -1
}

// Alive reports whether node id exists and is not a tombstone.
func (c *Circuit) Alive(id int) bool {
	return id >= 0 && id < len(c.Nodes) && c.Nodes[id] != nil && c.Nodes[id].Type != dead
}

// NumGates returns the number of live non-input, non-constant nodes.
func (c *Circuit) NumGates() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd != nil && nd.Type != dead && nd.Type != Input && nd.Type != Const0 && nd.Type != Const1 {
			n++
		}
	}
	return n
}

// NumLive returns the number of live nodes of any kind.
func (c *Circuit) NumLive() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd != nil && nd.Type != dead {
			n++
		}
	}
	return n
}

// Equiv2Weight returns the equivalent-2-input gate weight of a single node:
// a k-input AND/OR/NAND/NOR/XOR/XNOR counts k-1 (a 1-input one counts 0);
// NOT/BUF/constants/inputs count 0, matching the paper's metric.
func Equiv2Weight(t GateType, fanin int) int {
	switch t {
	case And, Or, Nand, Nor, Xor, Xnor:
		if fanin < 1 {
			return 0
		}
		return fanin - 1
	}
	return 0
}

// Equiv2Count returns the circuit's total equivalent-2-input gate count.
func (c *Circuit) Equiv2Count() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd != nil && nd.Type != dead {
			n += Equiv2Weight(nd.Type, len(nd.Fanin))
		}
	}
	return n
}

// RebuildFanouts recomputes fanout lists. Consumers appear once per pin, so a
// node feeding two pins of the same gate appears twice (two fanout branches).
func (c *Circuit) RebuildFanouts() {
	if c.fanoutsOK {
		return
	}
	for _, nd := range c.Nodes {
		if nd != nil {
			nd.fanout = nd.fanout[:0]
		}
	}
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		for _, f := range nd.Fanin {
			c.Nodes[f].fanout = append(c.Nodes[f].fanout, nd.ID)
		}
	}
	c.fanoutsOK = true
}

// Fanouts returns the consumer node IDs of id (one entry per consuming pin).
// Primary-output designations are not included.
func (c *Circuit) Fanouts(id int) []int {
	c.RebuildFanouts()
	return c.Nodes[id].fanout
}

// NumPOUses returns how many times node id is designated as a primary output.
func (c *Circuit) NumPOUses(id int) int {
	n := 0
	for _, o := range c.Outputs {
		if o == id {
			n++
		}
	}
	return n
}

// Topo returns live node IDs in topological order (fanins before consumers).
func (c *Circuit) Topo() []int {
	if c.topoCache != nil {
		return c.topoCache
	}
	indeg := make([]int, len(c.Nodes))
	var queue []int
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		indeg[nd.ID] = len(nd.Fanin)
		if len(nd.Fanin) == 0 {
			queue = append(queue, nd.ID)
		}
	}
	sort.Ints(queue)
	c.RebuildFanouts()
	order := make([]int, 0, c.NumLive())
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, f := range c.Nodes[id].fanout {
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if len(order) != c.NumLive() {
		panic("circuit: cycle detected in Topo")
	}
	c.topoCache = order
	return order
}

// Levels returns per-node levels: inputs/constants are level 0 and each gate
// is 1 + max(level of fanins). Dead nodes have level -1.
func (c *Circuit) Levels() []int {
	if c.levelCache != nil {
		return c.levelCache
	}
	lv := make([]int, len(c.Nodes))
	for i := range lv {
		lv[i] = -1
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if len(nd.Fanin) == 0 {
			lv[id] = 0
			continue
		}
		m := 0
		for _, f := range nd.Fanin {
			if lv[f] > m {
				m = lv[f]
			}
		}
		lv[id] = m + 1
	}
	c.levelCache = lv
	return lv
}

// Depth returns the number of gates on the longest PI-to-PO path
// (each gate, including inverters, counts 1).
func (c *Circuit) Depth() int {
	lv := c.Levels()
	d := 0
	for _, o := range c.Outputs {
		if lv[o] > d {
			d = lv[o]
		}
	}
	return d
}

// Validate checks structural invariants and returns the first violation.
func (c *Circuit) Validate() error {
	seen := map[string]bool{}
	for i, nd := range c.Nodes {
		if nd == nil {
			continue
		}
		if nd.ID != i {
			return fmt.Errorf("node %d has ID %d", i, nd.ID)
		}
		if nd.Type == dead {
			continue
		}
		if seen[nd.Name] {
			return fmt.Errorf("duplicate name %q", nd.Name)
		}
		seen[nd.Name] = true
		for _, f := range nd.Fanin {
			if !c.Alive(f) {
				return fmt.Errorf("node %s has dead fanin %d", nd.Name, f)
			}
		}
		switch nd.Type {
		case Input, Const0, Const1:
			if len(nd.Fanin) != 0 {
				return fmt.Errorf("node %s: %v with fanin", nd.Name, nd.Type)
			}
		case Buf, Not:
			if len(nd.Fanin) != 1 {
				return fmt.Errorf("node %s: %v with %d fanins", nd.Name, nd.Type, len(nd.Fanin))
			}
		default:
			if len(nd.Fanin) < 1 {
				return fmt.Errorf("node %s: %v without fanin", nd.Name, nd.Type)
			}
		}
	}
	for _, o := range c.Outputs {
		if !c.Alive(o) {
			return fmt.Errorf("dead output %d", o)
		}
	}
	for _, in := range c.Inputs {
		if !c.Alive(in) || c.Nodes[in].Type != Input {
			return fmt.Errorf("input list entry %d is not a live input", in)
		}
	}
	// Acyclicity is established by Topo; recover a panic into an error.
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		c.Topo()
		return nil
	}()
	return err
}

// Eval evaluates the circuit on a single assignment. pi[i] is the value of
// c.Inputs[i]. It returns the PO values in output order.
func (c *Circuit) Eval(pi []bool) []bool {
	if len(pi) != len(c.Inputs) {
		panic("circuit: assignment length mismatch")
	}
	val := make([]bool, len(c.Nodes))
	for i, id := range c.Inputs {
		val[id] = pi[i]
	}
	in := make([]bool, 0, 8)
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == Input {
			continue
		}
		in = in[:0]
		for _, f := range nd.Fanin {
			in = append(in, val[f])
		}
		val[id] = nd.Type.Eval(in)
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = val[o]
	}
	return out
}

// Clone returns a deep copy sharing no state with c.
func (c *Circuit) Clone() *Circuit {
	n := New(c.Name)
	n.Nodes = make([]*Node, len(c.Nodes))
	for i, nd := range c.Nodes {
		if nd == nil {
			continue
		}
		cp := &Node{ID: nd.ID, Type: nd.Type, Name: nd.Name, Fanin: append([]int(nil), nd.Fanin...)}
		n.Nodes[i] = cp
		if nd.Type != dead {
			n.byName[nd.Name] = i
		}
	}
	n.Inputs = append([]int(nil), c.Inputs...)
	n.Outputs = append([]int(nil), c.Outputs...)
	return n
}

// Stats is a compact summary of circuit size.
type Stats struct {
	Inputs, Outputs, Gates, Equiv2, Depth int
}

// Stats returns the circuit's summary statistics.
func (c *Circuit) Stats() Stats {
	return Stats{
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Gates:   c.NumGates(),
		Equiv2:  c.Equiv2Count(),
		Depth:   c.Depth(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("in=%d out=%d gates=%d equiv2=%d depth=%d",
		s.Inputs, s.Outputs, s.Gates, s.Equiv2, s.Depth)
}
