package circuit

// Edit journal: optional recording of which nodes an editing operation
// touched, so callers maintaining derived per-node state (cuts, levels,
// path labels, simulation values) can recompute just the affected cone
// instead of rebuilding from scratch after every local rewiring.
//
// A node is "touched" when its own definition changes — type, fanin list,
// liveness — or when it is newly added. Consumers rewired by ReplaceUses are
// touched (their fanin changed); nodes whose fanout set changed implicitly
// (the old/new endpoints of ReplaceUses) are touched as well, so journal
// consumers may treat the set as covering every node whose local
// neighborhood moved. Values that depend on a wider cone (e.g. transitive
// fanin functions) must be invalidated by closure over the touched set;
// that closure is the caller's job.

// BeginJournal starts (or restarts) recording touched node IDs. Recording
// has no effect on semantics; it only populates the set returned by
// TakeJournal.
func (c *Circuit) BeginJournal() {
	c.journal = make(map[int]bool)
}

// TakeJournal returns the set of node IDs touched since the last
// BeginJournal/TakeJournal and resets the set, leaving recording active.
// Returns nil if recording was never started.
func (c *Circuit) TakeJournal() map[int]bool {
	j := c.journal
	if j != nil {
		c.journal = make(map[int]bool)
	}
	return j
}

// EndJournal stops recording and discards any unread entries.
func (c *Circuit) EndJournal() {
	c.journal = nil
}

// BeginEditScope starts a scoped overlay capture: until EndEditScope, every
// touched node ID is also appended (in touch order, duplicates kept) to a
// buffer independent of the long-lived journal. The sharded resynthesis
// commit phase brackets each applied replacement with a scope to learn
// exactly which nodes that one edit moved — the write set it validates later
// speculations against — without consuming the pass-level journal that the
// incremental refresh depends on. Scopes do not nest; a second Begin simply
// restarts the capture.
func (c *Circuit) BeginEditScope() {
	c.scopeOn = true
	c.scopeIDs = c.scopeIDs[:0]
}

// EndEditScope stops the overlay capture and returns the touched IDs in
// touch order (duplicates kept; the slice is reused by the next
// BeginEditScope). Returns nil if no scope was open.
func (c *Circuit) EndEditScope() []int {
	if !c.scopeOn {
		return nil
	}
	c.scopeOn = false
	return c.scopeIDs
}

func (c *Circuit) touch(id int) {
	if c.journal != nil {
		c.journal[id] = true
	}
	if c.scopeOn {
		c.scopeIDs = append(c.scopeIDs, id)
	}
	// Every touch also advances the frozen-view generation (csr.go), whether
	// or not journal recording is on.
	c.fz.gen++
	c.fz.note(id, len(c.Nodes))
}
