package compare

import (
	"math/rand"
	"testing"

	"compsynth/internal/logic"
)

// The DC invariant: the realized function agrees with `on` wherever care=1.
func checkDCSpec(t *testing.T, on, care logic.TT, s Spec) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	got := s.Table()
	for m := 0; m < on.Size(); m++ {
		if care.Get(m) && got.Get(m) != on.Get(m) {
			t.Fatalf("spec %v disagrees with care minterm %d", s, m)
		}
	}
}

func TestIdentifyDCFullySpecifiedMatchesExact(t *testing.T) {
	// With care = const1, DC identification must accept exactly the
	// comparison functions (checked exhaustively at n=3).
	care := logic.Const(3, true)
	for bits := 1; bits < 255; bits++ {
		f := logic.New(3)
		for m := 0; m < 8; m++ {
			if bits&(1<<m) != 0 {
				f.Set(m, true)
			}
		}
		_, exact := IdentifyBest(f)
		s, dc := IdentifyDC(f, care)
		if exact != dc {
			t.Fatalf("f=%s: exact=%v dc=%v", f, exact, dc)
		}
		if dc {
			checkDCSpec(t, f, care, s)
		}
	}
}

func TestIdentifyDCEnablesMajority(t *testing.T) {
	// Majority of 3 is not a comparison function, but excluding minterm 4
	// from the care set makes the required onset {3,5,6,7} coverable by
	// the interval [3,7] under the identity order.
	maj := logic.FromMinterms(3, []int{3, 5, 6, 7})
	care := logic.Const(3, true)
	care.Set(4, false)
	s, ok := IdentifyDC(maj, care)
	if !ok {
		t.Fatal("DC identification failed on majority with minterm 4 as don't-care")
	}
	checkDCSpec(t, maj, care, s)
}

func TestIdentifyDCRandomInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	identified := 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(4)
		on := logic.New(n)
		care := logic.New(n)
		for m := 0; m < 1<<n; m++ {
			if rng.Intn(2) == 1 {
				on.Set(m, true)
			}
			if rng.Intn(4) != 0 { // 75% care density
				care.Set(m, true)
			}
		}
		if s, ok := IdentifyDC(on, care); ok {
			identified++
			checkDCSpec(t, on, care, s)
		}
	}
	if identified == 0 {
		t.Fatal("DC identification never succeeded on random inputs")
	}
}

func TestIdentifyDCSupersetOfExact(t *testing.T) {
	// Anything the exact search identifies, the DC search must too (with
	// full care) — sampled at n=4.
	rng := rand.New(rand.NewSource(66))
	care := logic.Const(4, true)
	for trial := 0; trial < 300; trial++ {
		l := rng.Intn(16)
		u := l + rng.Intn(16-l)
		f := logic.FromInterval(4, l, u).Permute(rng.Perm(4))
		if f.IsConst(false) || f.IsConst(true) {
			continue
		}
		if _, ok := IdentifyDC(f, care); !ok {
			t.Fatalf("DC search missed a plain interval function %s", f)
		}
	}
}

func TestIdentifyDCMoreDontCaresNeverHurt(t *testing.T) {
	// Growing the don't-care set can only help: sampled monotonicity.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 3
		on := logic.New(n)
		for m := 0; m < 8; m++ {
			if rng.Intn(2) == 1 {
				on.Set(m, true)
			}
		}
		if on.IsConst(false) || on.IsConst(true) {
			continue
		}
		careBig := logic.Const(n, true)
		careSmall := careBig.Clone()
		careSmall.Set(rng.Intn(8), false)
		// Skip relaxations that complete to a constant (rejected by design).
		if on.And(careSmall).IsConst(false) || on.Not().And(careSmall).IsConst(false) {
			continue
		}
		_, okFull := IdentifyDC(on, careBig)
		_, okRelaxed := IdentifyDC(on, careSmall)
		if okFull && !okRelaxed {
			// The relaxed problem is strictly easier; this must not happen.
			t.Fatalf("trial %d: shrinking the care set lost a solution (on=%s)", trial, on)
		}
	}
}

func TestIdentifyDCConstCompletable(t *testing.T) {
	// When the required or forbidden set is empty the function completes
	// to a constant and is rejected (constants are folded, not built).
	on := logic.FromMinterms(3, []int{1, 2})
	care := logic.FromMinterms(3, []int{1, 2}) // only onset minterms matter
	if _, ok := IdentifyDC(on, care); ok {
		t.Fatal("constant-completable function should be rejected")
	}
}
