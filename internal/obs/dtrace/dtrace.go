// Package dtrace is the decision-trace layer of the observability substrate:
// a typed record stream in which the resynthesis sweep explains every
// judgment it makes — one record per candidate subcircuit considered and one
// per gate visited, each carrying the node, the cut, the objective deltas
// and an enumerated outcome (accepted, or exactly why not).
//
// Records flow through the flight recorder: the tracer's sink is
// obs.(*Recorder).Decision, which frames each record as a Type "dtrace"
// event on the -events NDJSON stream, so the trace is hash-chained by the
// run ledger for free and cmd/sftexplain can query or diff it offline.
//
// Determinism contract: the resynthesis optimizer emits records only from
// its serial decision sweep, never from the parallel prefetch, and no field
// depends on scheduling (no timings, no cache-hit provenance — a cache hit
// returns the same pure value the miss would compute). The record stream is
// therefore byte-identical for every -workers count; CI compares two runs
// with cmp, the same mechanism that gates certificate determinism.
//
// The package sits under internal/obs but imports neither obs nor anything
// else in the module, so obs itself (Event, Flags) can embed Record without
// a cycle.
package dtrace

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Reason enumerates every outcome a decision record can carry. Candidate
// records (Kind "cand") resolve to Accepted or one of the rejection reasons;
// gate records (Kind "gate") summarize the visit with Replaced, Kept or one
// of the skip reasons. Every continue in the resynthesis candidate loop maps
// to exactly one of these — there are no anonymous rejections.
type Reason uint8

// Outcomes.
const (
	// Accepted: this candidate won and its comparison unit was built in.
	Accepted Reason = iota

	// ConstFunction: the extracted function collapsed to a constant after
	// support reduction; constants are left to Simplify, not resynthesized.
	ConstFunction

	// NoComparisonUnit: the identification cascade (exact/sampling, then
	// reachability don't-cares, then multi-unit) found no realization.
	NoComparisonUnit

	// Dominated: a realization exists, but another candidate at the same
	// gate scored better under the objective.
	Dominated

	// ObjectiveWorse: this was the gate's best candidate, but the objective
	// (gate count, path count, or the combined measure) would not strictly
	// improve, so the existing logic was kept.
	ObjectiveWorse

	// PathBound: the best candidate would have been accepted on its path
	// saving, but a path label saturated uint64 somewhere in the circuit, so
	// path-based acceptance is disabled (the count is a lower bound and the
	// comparison could be wrong).
	PathBound

	// Replaced: gate summary — a candidate was accepted at this gate.
	Replaced

	// Kept: gate summary — every candidate was rejected (or none existed)
	// and the gate's logic was kept.
	Kept

	// SkippedDead: the sweep reached a node an earlier replacement in the
	// same pass had already swept away.
	SkippedDead

	// SkippedUnmarked: the node is not on any path from the outputs the
	// sweep still cares about (it was cut off by an accepted replacement).
	SkippedUnmarked

	// SkippedNonGate: primary inputs and constants are never candidates.
	SkippedNonGate

	numReasons // count sentinel, keep last
)

var reasonNames = [numReasons]string{
	Accepted:         "accepted",
	ConstFunction:    "const_function",
	NoComparisonUnit: "no_comparison_unit",
	Dominated:        "dominated",
	ObjectiveWorse:   "objective_worse",
	PathBound:        "path_bound",
	Replaced:         "replaced",
	Kept:             "kept",
	SkippedDead:      "skipped_dead",
	SkippedUnmarked:  "skipped_unmarked",
	SkippedNonGate:   "skipped_non_gate",
}

func (r Reason) String() string {
	if r < numReasons {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Reasons returns every enumerated outcome name, in declaration order (for
// docs and the sftexplain funnel).
func Reasons() []string {
	return append([]string(nil), reasonNames[:]...)
}

// ParseReason maps an outcome name back to its Reason.
func ParseReason(s string) (Reason, error) {
	for i, name := range reasonNames {
		if name == s {
			return Reason(i), nil
		}
	}
	return 0, fmt.Errorf("dtrace: unknown reason %q", s)
}

// MarshalJSON renders the reason as its name, the stable on-disk form.
func (r Reason) MarshalJSON() ([]byte, error) {
	if r >= numReasons {
		return nil, fmt.Errorf("dtrace: cannot marshal %v", r)
	}
	return json.Marshal(r.String())
}

// UnmarshalJSON parses an outcome name.
func (r *Reason) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseReason(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// Rejection reports whether the outcome is a candidate-level rejection (as
// opposed to an acceptance or a gate-level summary). Sampling keeps every
// non-rejection record.
func (r Reason) Rejection() bool {
	switch r {
	case ConstFunction, NoComparisonUnit, Dominated, ObjectiveWorse, PathBound,
		Kept, SkippedDead, SkippedUnmarked, SkippedNonGate:
		return true
	}
	return false
}

// Record is one decision. Kind "cand" describes one candidate subcircuit at
// a gate; Kind "gate" summarizes the sweep's visit to the gate. Pass links
// records to the resynthesis pass (and its resynth.pass span) they were
// emitted under. Every field is a pure function of (input circuit, options),
// never of scheduling — see the package comment's determinism contract.
type Record struct {
	Seq  int64  `json:"seq"`            // dense per-run sequence, assigned at emit
	Pass int    `json:"pass"`           // 1-based resynthesis pass
	Kind string `json:"kind"`           // "cand" or "gate"
	Node int    `json:"node"`           // node id of the candidate's output gate
	Name string `json:"name,omitempty"` // that node's netlist name

	Outcome Reason `json:"outcome"`

	// Candidate shape: the cut's input node ids and its width (before
	// support reduction drops inputs the function does not depend on).
	Cut   []int `json:"cut,omitempty"`
	Width int   `json:"width,omitempty"`

	// Objective deltas, present once a realization exists: equivalent-gate
	// saving and the path count through the gate before/after.
	GateSave    int    `json:"gate_save,omitempty"`
	PathsBefore uint64 `json:"paths_before,omitempty"`
	PathsAfter  uint64 `json:"paths_after,omitempty"`

	// Realization provenance.
	UsedDC    bool   `json:"used_dc,omitempty"`    // identified under reachability don't-cares
	MultiUnit bool   `json:"multi_unit,omitempty"` // OR of several comparison units (Sec. 6 ext.)
	Spec      string `json:"spec,omitempty"`       // chosen realization, e.g. "cmp{n=3 perm=[2 0 1] L=1 U=2}"
}

// Mode is the parsed -dtrace sampling knob.
type Mode struct {
	// Level selects how much of the stream is kept.
	Level Level

	// N is the sampling stride for LevelSampled: acceptances and gate
	// replacements always pass; every Nth rejection record passes.
	N int
}

// Level is the -dtrace verbosity.
type Level int

// Levels.
const (
	LevelOff Level = iota
	LevelSampled
	LevelFull
)

func (m Mode) String() string {
	switch m.Level {
	case LevelOff:
		return "off"
	case LevelSampled:
		return "sampled:" + strconv.Itoa(m.N)
	default:
		return "full"
	}
}

// ParseMode parses the -dtrace flag value: "off", "full", or "sampled:N"
// with N >= 1 (keep every Nth rejection; acceptances always pass).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Mode{Level: LevelOff}, nil
	case "full":
		return Mode{Level: LevelFull}, nil
	}
	if rest, ok := strings.CutPrefix(s, "sampled:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return Mode{}, fmt.Errorf("dtrace: bad sampling stride %q (want sampled:N with N >= 1)", rest)
		}
		return Mode{Level: LevelSampled, N: n}, nil
	}
	return Mode{}, fmt.Errorf("dtrace: unknown mode %q (want off, full, or sampled:N)", s)
}

// Tracer filters, sequences and forwards decision records to a sink. A nil
// *Tracer is the disabled tracer: Emit no-ops without allocating, so the
// optimizer keeps its emission sites unconditional and -dtrace=off costs a
// nil check (the AllocsPerRun pins and the CI allocation gate hold it
// there).
//
// Sampling is deterministic: a counter, never a clock or an RNG, decides
// which rejection records pass, so a sampled trace is as reproducible as a
// full one.
type Tracer struct {
	mu   sync.Mutex
	mode Mode
	sink func(*Record)
	seq  int64 // next sequence number (dense over emitted records)
	nRej int64 // rejections seen, for the sampling stride
}

// New returns a tracer forwarding kept records to sink, or nil (the
// disabled tracer) when the mode is off or no sink is given.
func New(mode Mode, sink func(*Record)) *Tracer {
	if mode.Level == LevelOff || sink == nil {
		return nil
	}
	if mode.Level == LevelSampled && mode.N < 1 {
		mode.N = 1
	}
	return &Tracer{mode: mode, sink: sink}
}

// Mode returns the tracer's sampling mode (the zero Mode when nil).
func (t *Tracer) Mode() Mode {
	if t == nil {
		return Mode{}
	}
	return t.mode
}

// Emit filters rec through the sampling mode and, when kept, assigns the
// next sequence number and forwards it to the sink. Safe for concurrent use,
// though the optimizer only calls it from the serial sweep (see the
// determinism contract).
func (t *Tracer) Emit(rec Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.mode.Level == LevelSampled && rec.Outcome.Rejection() {
		keep := t.nRej%int64(t.mode.N) == 0
		t.nRej++
		if !keep {
			t.mu.Unlock()
			return
		}
	}
	// The copy (not rec itself) has its address taken, so the parameter does
	// not escape and the nil/filtered paths stay allocation-free.
	kept := rec
	kept.Seq = t.seq
	t.seq++
	sink := t.sink
	t.mu.Unlock()
	sink(&kept)
}

// Emitted returns how many records passed the filter so far.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
