// Command sftlint runs the repository's static analysis rules (package
// internal/lint): wall-clock/global-RNG bans in deterministic packages,
// map-iteration-order hazards, obs metric naming, par.Cache key types and
// out-of-package circuit-node mutation.
//
// Usage:
//
//	sftlint [flags] [packages]
//
// Packages are directories, optionally ending in /... for a recursive walk;
// the default is ./... . Exit status: 0 clean, 1 findings, 2 usage or load
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compsynth/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
		rules   = flag.String("rules", "", "comma-separated rule subset (default: all of "+strings.Join(lint.AllRules(), ",")+")")
		detAll  = flag.Bool("det-all", false, "treat every package as deterministic pipeline code (used on the injected-violation fixtures)")
		relTo   = flag.String("rel", "", "report file paths relative to this directory")
	)
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sftlint:", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "sftlint: no packages matched")
		os.Exit(2)
	}

	cfg := lint.Config{DeterministicAll: *detAll, RelativeTo: *relTo}
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
	}
	diags, err := lint.Analyze(dirs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sftlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		out, err := lint.FormatJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sftlint:", err)
			os.Exit(2)
		}
		fmt.Print(out)
	} else {
		fmt.Print(lint.FormatText(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
