package circuit

import (
	"strings"
	"testing"
)

// Internal corruption tests: Check must catch a mutator that forgot to
// maintain the unexported derived state (name index, topo order, levels).
// The corruption here pokes the caches directly, simulating such a bug.

func buildInternal() *Circuit {
	c := New("internal")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "g", a, b)
	o := c.AddGate(Or, "o", g, b)
	c.MarkOutput(o)
	return c
}

func TestCheckStaleNameIndex(t *testing.T) {
	c := buildInternal()
	c.byName["g"] = 0 // g is not node 0
	err := Check(c)
	if err == nil || !strings.Contains(err.Error(), "name index stale") {
		t.Fatalf("stale name index not caught: %v", err)
	}
}

func TestCheckStaleTopoCache(t *testing.T) {
	c := buildInternal()
	c.Topo() // warm the cache
	c.topoCache = c.topoCache[:len(c.topoCache)-1]
	err := Check(c)
	if err == nil || !strings.Contains(err.Error(), "stale topo cache") {
		t.Fatalf("truncated topo cache not caught: %v", err)
	}

	c = buildInternal()
	c.Topo()
	// Swap a producer after its consumer.
	last := len(c.topoCache) - 1
	c.topoCache[last], c.topoCache[last-1] = c.topoCache[last-1], c.topoCache[last]
	err = Check(c)
	if err == nil || !strings.Contains(err.Error(), "stale topo cache") {
		t.Fatalf("misordered topo cache not caught: %v", err)
	}
}

func TestCheckStaleLevelCache(t *testing.T) {
	c := buildInternal()
	c.Levels()
	c.levelCache[c.NodeByName("g")] += 3
	err := Check(c)
	if err == nil || !strings.Contains(err.Error(), "stale level cache") {
		t.Fatalf("stale level cache not caught: %v", err)
	}
}

// TestCheckAfterMutators runs the real mutator sequence resynthesis uses and
// verifies Check stays green at every step: the mutators themselves must
// maintain every invariant Check audits.
func TestCheckAfterMutators(t *testing.T) {
	c := buildInternal()
	step := func(label string) {
		t.Helper()
		if err := CheckWith(c, CheckOptions{AllowUnreachable: true}); err != nil {
			t.Fatalf("after %s: %v", label, err)
		}
	}
	step("build")
	n := c.AddGate(Nand, "n", c.NodeByName("a"), c.NodeByName("b"))
	step("AddGate")
	c.ReplaceUses(c.NodeByName("g"), n)
	step("ReplaceUses")
	c.SetFanin(c.NodeByName("o"), 1, c.NodeByName("a"))
	step("SetFanin")
	c.SweepDead()
	step("SweepDead")
	c.Simplify()
	step("Simplify")
	cc, _ := c.Compact()
	if err := Check(cc); err != nil {
		t.Fatalf("after Compact: %v", err)
	}
}
