// Package paths implements Procedure 1 of the paper: counting the paths of a
// combinational circuit by labeling every line g with N_p(g), the number of
// paths from the primary inputs to g.
//
// Primary inputs get N_p = 1, a gate output gets the sum of its fanin labels,
// and a fanout branch carries its stem's label (implicit in the node model:
// each gate-input edge reads the driving node's label directly). The total
// path count is the sum over primary outputs — counted once per OUTPUT
// designation, matching the paper's line-based accounting.
package paths

import (
	"errors"
	"math/big"
	"sync"

	"compsynth/internal/circuit"
)

// ErrOverflow is reported by Count when the path count exceeds uint64.
var ErrOverflow = errors.New("paths: count overflows uint64; use CountBig")

// Labels computes N_p for every live node, as uint64 with saturation: if any
// label overflows, ok is false (use LabelsBig then).
func Labels(c *circuit.Circuit) (np []uint64, ok bool) {
	np = make([]uint64, len(c.Nodes))
	ok = true
	for _, id := range c.Topo() {
		v, nodeOK := LabelNode(c, np, id)
		np[id] = v
		ok = ok && nodeOK
	}
	return np, ok
}

// LabelNode computes N_p for a single node from the labels of its fanins
// (which must be up to date in np) and reports whether the label stayed in
// range (false = saturated to MaxUint64). It is the per-node step of Labels,
// exposed so incremental recomputation after a local rewiring can relabel
// just the affected cone: a node's label is a pure function of its fanin
// cone, so relabeling any superset of the changed cone in topological order
// reproduces exactly what a full Labels pass would compute.
func LabelNode(c *circuit.Circuit, np []uint64, id int) (uint64, bool) {
	nd := c.Nodes[id]
	switch nd.Type {
	case circuit.Input:
		return 1, true
	case circuit.Const0, circuit.Const1:
		// A constant originates no paths.
		return 0, true
	default:
		var sum uint64
		ok := true
		for _, f := range nd.Fanin {
			s := sum + np[f]
			if s < sum {
				ok = false
				s = ^uint64(0)
			}
			sum = s
		}
		return sum, ok
	}
}

// countScratch is the pooled per-call state of the CSR-backed counting
// sweeps, so steady-state Count/Through calls allocate nothing.
type countScratch struct {
	np []uint64
	w  []uint64
}

var countPool = sync.Pool{New: func() any { return new(countScratch) }}

func (s *countScratch) grow(n int) {
	if cap(s.np) < n {
		s.np = make([]uint64, n)
		s.w = make([]uint64, n)
	}
	s.np = s.np[:n]
	s.w = s.w[:n]
}

// denseLabels fills np (dense-indexed) with N_p labels by one linear sweep
// of the frozen view; dense order is topological, so every fanin label is
// ready when read. Saturation matches LabelNode bit for bit.
func denseLabels(v *circuit.CSR, np []uint64) (ok bool) {
	ok = true
	for d := 0; d < v.N(); d++ {
		switch v.Kind[d] {
		case circuit.Input:
			np[d] = 1
		case circuit.Const0, circuit.Const1:
			np[d] = 0
		default:
			var sum uint64
			for _, f := range v.FaninOf(int32(d)) {
				s := sum + np[f]
				if s < sum {
					ok = false
					s = ^uint64(0)
				}
				sum = s
			}
			np[d] = sum
		}
	}
	return ok
}

// Count returns the total number of PI-to-PO paths. It runs on the frozen
// CSR view of the circuit (Freeze is a cache hit when nothing changed) and
// returns exactly what RefCount computes on the mutable representation.
func Count(c *circuit.Circuit) (uint64, error) {
	v := c.Freeze()
	s := countPool.Get().(*countScratch)
	defer countPool.Put(s)
	s.grow(v.N())
	ok := denseLabels(v, s.np)
	if !ok {
		return 0, ErrOverflow
	}
	var total uint64
	for _, o := range v.Out {
		t := total + s.np[o]
		if t < total {
			return 0, ErrOverflow
		}
		total = t
	}
	return total, nil
}

// MustCount is Count for circuits known to be within range (panics on
// overflow). Convenient in benchmarks and tables.
func MustCount(c *circuit.Circuit) uint64 {
	n, err := Count(c)
	if err != nil {
		panic(err)
	}
	return n
}

// LabelsBig computes exact N_p labels using arbitrary precision.
func LabelsBig(c *circuit.Circuit) []*big.Int {
	np := make([]*big.Int, len(c.Nodes))
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		switch nd.Type {
		case circuit.Input:
			np[id] = big.NewInt(1)
		case circuit.Const0, circuit.Const1:
			np[id] = big.NewInt(0)
		default:
			sum := new(big.Int)
			for _, f := range nd.Fanin {
				sum.Add(sum, np[f])
			}
			np[id] = sum
		}
	}
	return np
}

// CountBig returns the exact total path count.
func CountBig(c *circuit.Circuit) *big.Int {
	np := LabelsBig(c)
	total := new(big.Int)
	for _, o := range c.Outputs {
		total.Add(total, np[o])
	}
	return total
}

// denseWeights fills w (dense-indexed) with the PO-forward path weights by
// one reverse linear sweep of the frozen view.
func denseWeights(v *circuit.CSR, w []uint64) {
	for i := range w {
		w[i] = 0
	}
	for _, o := range v.Out {
		w[o]++
	}
	for d := v.N() - 1; d >= 0; d-- {
		for _, f := range v.FaninOf(int32(d)) {
			w[f] += w[d]
		}
	}
}

// FanoutWeights computes, for each node g, the number of paths from g to any
// primary output (the "K_p-forward" weight): POs seed 1 per designation, and
// a node's weight is the sum of its consumers' weights over each consuming
// pin. Together with Labels this gives the number of paths through any line:
// through(g) = Labels[g] * FanoutWeights[g]. The returned slice is indexed
// by sparse node ID (dead nodes weigh 0), as before the CSR port.
func FanoutWeights(c *circuit.Circuit) []uint64 {
	v := c.Freeze()
	s := countPool.Get().(*countScratch)
	defer countPool.Put(s)
	s.grow(v.N())
	denseWeights(v, s.w)
	w := make([]uint64, len(c.Nodes))
	for d, id := range v.NodeID {
		w[id] = s.w[d]
	}
	return w
}

// Through returns the number of PI-to-PO paths passing through node id.
func Through(c *circuit.Circuit, id int) uint64 {
	v := c.Freeze()
	d := v.DenseOf[id]
	if d < 0 {
		return 0
	}
	s := countPool.Get().(*countScratch)
	defer countPool.Put(s)
	s.grow(v.N())
	denseLabels(v, s.np)
	denseWeights(v, s.w)
	return s.np[d] * s.w[d]
}
