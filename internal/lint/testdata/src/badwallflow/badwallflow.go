// Package badwallflow injects interprocedural wallclock violations: the
// clock read is hidden behind helper calls or a stored function value, so
// the single-body syntactic rule sees nothing in the outer functions and
// only the call-graph taint propagation catches them. Lint fixture; the go
// tool never builds testdata, only sftlint's own loader does.
package badwallflow

import "time"

// Stamp looks pure — the wall-clock read is two calls down.
func Stamp() int64 {
	return ticks()
}

func ticks() int64 {
	return nowNanos()
}

// nowNanos carries the direct read (the syntactic rule's finding); Stamp
// and ticks are the transitive rule's.
func nowNanos() int64 {
	return time.Now().UnixNano()
}

// clock launders the source through a function-typed package variable.
var clock = time.Now

// Elapsed calls through the variable; the assignment index resolves it
// back to time.Now.
func Elapsed() time.Time {
	return clock()
}
