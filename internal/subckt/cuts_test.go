package subckt

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/logic"
)

func TestCutsOfC17(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	db := ComputeCuts(c, 4, 64)
	// Every gate has at least its trivial cut and its fanin cut.
	for _, nd := range c.Nodes {
		if nd.Type != circuit.Nand {
			continue
		}
		cuts := db.Cuts(nd.ID)
		if len(cuts) < 2 {
			t.Fatalf("gate %s has %d cuts", nd.Name, len(cuts))
		}
		foundTrivial := false
		for _, cut := range cuts {
			if len(cut) == 1 && cut[0] == nd.ID {
				foundTrivial = true
			}
			if len(cut) > 4 {
				t.Fatalf("gate %s: cut %v exceeds K", nd.Name, cut)
			}
		}
		if !foundTrivial {
			t.Fatalf("gate %s missing trivial cut", nd.Name)
		}
	}
	// Output 22's cone has 5 inputs total: with K=5 the full-input cut
	// must appear.
	db5 := ComputeCuts(c, 5, 64)
	g := c.NodeByName("22")
	full := false
	for _, cut := range db5.Cuts(g) {
		allPI := len(cut) > 0
		for _, id := range cut {
			if c.Nodes[id].Type != circuit.Input {
				allPI = false
			}
		}
		if allPI {
			full = true
		}
	}
	if !full {
		t.Fatal("PI-level cut of output 22 not enumerated")
	}
}

func TestCutsAreRealCuts(t *testing.T) {
	// Every enumerated cut must induce a valid subcircuit whose extracted
	// function matches direct cofactor evaluation.
	c, _ := bench.ParseString(bench.C17, "c17")
	db := ComputeCuts(c, 5, 64)
	for _, nd := range c.Nodes {
		if nd.Type != circuit.Nand {
			continue
		}
		for _, cut := range db.Cuts(nd.ID) {
			if len(cut) == 1 && cut[0] == nd.ID {
				continue
			}
			s := SubcircuitFor(c, nd.ID, cut)
			if s == nil {
				t.Fatalf("gate %s: cut %v does not induce a subcircuit", nd.Name, cut)
			}
			tt := s.Extract(c)
			if tt.Vars() != len(s.Inputs) {
				t.Fatal("arity mismatch")
			}
		}
	}
}

func TestCutsThroughWideGates(t *testing.T) {
	// The regression that motivated cut enumeration: a 6-input OR of
	// 6 AND4 products over only 4 distinct inputs. Incremental growth is
	// stuck (the trivial subcircuit has 6 inputs); cuts reach the 4 PIs.
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	c := circuit.New("sop")
	var ins []int
	for i := 0; i < 4; i++ {
		ins = append(ins, c.AddInput(string(rune('a'+i))))
	}
	var invs []int
	for _, in := range ins {
		invs = append(invs, c.AddGate(circuit.Not, "", in))
	}
	var prods []int
	for _, m := range f.Onset() {
		fan := make([]int, 4)
		for i := 0; i < 4; i++ {
			if m&(1<<(3-i)) != 0 {
				fan[i] = ins[i]
			} else {
				fan[i] = invs[i]
			}
		}
		prods = append(prods, c.AddGate(circuit.And, "", fan...))
	}
	out := c.AddGate(circuit.Or, "", prods...)
	c.MarkOutput(out)

	db := ComputeCuts(c, 4, 128)
	subs := db.EnumerateFromCuts(c, out)
	foundFull := false
	for _, s := range subs {
		if len(s.Inputs) == 4 {
			tt := s.Extract(c)
			if tt.Equal(f) {
				foundFull = true
			}
		}
	}
	if !foundFull {
		t.Fatal("cut enumeration did not reach the 4-PI cut of the SOP cone")
	}
}

func TestCutsOnRandomCircuits(t *testing.T) {
	for _, b := range gen.SmallSuite()[:2] {
		c := b.Build()
		db := ComputeCuts(c, 5, 32)
		for _, nd := range c.Nodes {
			if nd == nil || !c.Alive(nd.ID) || nd.Type == circuit.Input {
				continue
			}
			for _, cut := range db.Cuts(nd.ID) {
				if len(cut) > 5 {
					t.Fatalf("%s: oversized cut", b.Name)
				}
				if len(cut) == 1 && cut[0] == nd.ID {
					continue
				}
				if s := SubcircuitFor(c, nd.ID, cut); s == nil {
					t.Fatalf("%s: invalid cut %v for node %d", b.Name, cut, nd.ID)
				}
			}
		}
	}
}

func TestSubcircuitForRejectsBadCuts(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	g := c.NodeByName("22")
	// A cut that does not cover all paths (missing one branch) is invalid.
	if s := SubcircuitFor(c, g, []int{c.NodeByName("10")}); s != nil {
		t.Fatal("partial cut accepted")
	}
	// Trivial self-cut rejected.
	if s := SubcircuitFor(c, g, []int{g}); s != nil {
		t.Fatal("self cut accepted")
	}
}

func TestUnionSorted(t *testing.T) {
	u := unionSorted([]int{1, 3, 5}, []int{2, 3, 6}, 5)
	want := []int{1, 2, 3, 5, 6}
	if len(u) != len(want) {
		t.Fatalf("union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("union = %v", u)
		}
	}
	if unionSorted([]int{1, 2, 3}, []int{4, 5, 6}, 5) != nil {
		t.Fatal("oversize union not rejected")
	}
}
