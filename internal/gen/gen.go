// Package gen produces seeded synthetic benchmark circuits standing in for
// the ISCAS-89 combinational cores used by the paper (see DESIGN.md,
// substitution 1). The generator builds layered, reconvergent random DAGs of
// AND/OR/NAND/NOR/NOT gates with tunable size, depth, fanin and locality,
// which reproduces the properties the paper's procedures are sensitive to:
// multi-level structure, reconvergent fanout, and path counts spanning
// 1e4..1e7.
package gen

import (
	"fmt"
	"math/rand"

	"compsynth/internal/circuit"
)

// Params control the random circuit shape.
type Params struct {
	Name     string
	Inputs   int
	Outputs  int
	Gates    int     // number of gates to generate (before sweeping)
	Layers   int     // depth bound: gates are spread over this many layers
	MaxFanin int     // 2..n
	Locality float64 // probability a fanin comes from the previous layer
	InvProb  float64 // probability of a NOT gate
	// MacroProb mixes in decode/compare-style cones: two-level SOP
	// realizations of random interval detectors over 4-5 signals. Real
	// netlists (the ISCAS circuits are scanned versions of actual designs
	// with counters, decoders and comparators) are rich in exactly this
	// substructure, which is what makes them responsive to
	// comparison-unit replacement; pure random DAGs are not.
	MacroProb float64
	Seed      int64
}

// Random generates a circuit from p. The result is valid, acyclic, swept
// (every gate reaches an output) and has depth at most p.Layers.
func Random(p Params) *circuit.Circuit {
	if p.Inputs < 1 || p.Outputs < 1 || p.Gates < 1 {
		panic("gen: invalid parameters")
	}
	if p.MaxFanin < 2 {
		p.MaxFanin = 2
	}
	if p.Layers <= 0 {
		p.Layers = 12
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := circuit.New(p.Name)

	layers := make([][]int, p.Layers+1)
	for i := 0; i < p.Inputs; i++ {
		layers[0] = append(layers[0], c.AddInput(fmt.Sprintf("pi%d", i)))
	}
	perLayer := p.Gates / p.Layers
	if perLayer < 1 {
		perLayer = 1
	}
	types := []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor}
	built := 0
	for l := 1; l <= p.Layers && built < p.Gates; l++ {
		count := perLayer
		if l == p.Layers {
			count = p.Gates - built
		}
		for i := 0; i < count && built < p.Gates; i++ {
			pick := func() int {
				if rng.Float64() < p.Locality || l == 1 {
					prev := layers[l-1]
					if len(prev) > 0 {
						return prev[rng.Intn(len(prev))]
					}
				}
				// Any earlier layer, weighted toward recent ones.
				for {
					ll := rng.Intn(l)
					if len(layers[ll]) > 0 {
						return layers[ll][rng.Intn(len(layers[ll]))]
					}
				}
			}
			if rng.Float64() < p.MacroProb && built+12 < p.Gates {
				// Decode/compare macro: SOP of a random interval detector.
				n := 4 + rng.Intn(2)
				sigs := make([]int, n)
				for j := range sigs {
					sigs[j] = pick()
				}
				lo := rng.Intn(1 << n)
				hi := lo + rng.Intn(1<<n-lo)
				id, cost := sopInterval(c, sigs, lo, hi)
				if id >= 0 {
					layers[l] = append(layers[l], id)
					built += cost
				}
				continue
			}
			if rng.Float64() < p.InvProb {
				layers[l] = append(layers[l], c.AddGate(circuit.Not, "", pick()))
				built++
				continue
			}
			t := types[rng.Intn(len(types))]
			k := 2
			if p.MaxFanin > 2 && rng.Float64() < 0.4 {
				k += 1 + rng.Intn(p.MaxFanin-2)
			}
			fanin := make([]int, 0, k)
			seen := map[int]bool{}
			for len(fanin) < k {
				f := pick()
				if !seen[f] {
					seen[f] = true
					fanin = append(fanin, f)
				}
				if len(seen) >= p.Inputs+built {
					break
				}
			}
			layers[l] = append(layers[l], c.AddGate(t, "", fanin...))
			built++
		}
	}

	// Outputs: prefer sinks (gates with no fanout), then random gates from
	// the last layers.
	c.RebuildFanouts()
	var sinks, others []int
	for l := 1; l <= p.Layers; l++ {
		for _, id := range layers[l] {
			if len(c.Fanouts(id)) == 0 {
				sinks = append(sinks, id)
			} else {
				others = append(others, id)
			}
		}
	}
	rng.Shuffle(len(sinks), func(i, j int) { sinks[i], sinks[j] = sinks[j], sinks[i] })
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	seenPO := map[int]bool{}
	var chosen []int
	for _, s := range append(sinks, others...) {
		if len(chosen) >= p.Outputs {
			break
		}
		if !seenPO[s] {
			seenPO[s] = true
			chosen = append(chosen, s)
		}
	}
	for _, id := range chosen {
		c.MarkOutput(id)
	}
	c.SweepDead()
	out, _ := c.Compact()
	return out
}

// sopInterval emits a two-level sum-of-products realization of the interval
// detector [lo, hi] over the given signals (MSB first), returning the output
// node and the number of gates spent. Cubes come from the minimized cover so
// macros are plausible logic rather than one AND per minterm.
func sopInterval(c *circuit.Circuit, sigs []int, lo, hi int) (int, int) {
	n := len(sigs)
	// Collect the minterms and cover greedily with maximal aligned cubes
	// (binary carving of the interval), the classic decoder shape.
	type cube struct{ mask, val int }
	var cubes []cube
	var carve func(a, b int)
	carve = func(a, b int) {
		if a > b {
			return
		}
		// Largest aligned power-of-two block starting at a that fits in b.
		size := 1
		for a%(size*2) == 0 && a+size*2-1 <= b && size*2 <= 1<<n {
			size *= 2
		}
		cubes = append(cubes, cube{mask: (1<<n - 1) &^ (size - 1), val: a})
		carve(a+size, b)
	}
	carve(lo, hi)
	if len(cubes) == 0 || len(cubes) > 8 {
		return -1, 0
	}
	inv := map[int]int{}
	cost := 0
	notOf := func(s int) int {
		if g, ok := inv[s]; ok {
			return g
		}
		g := c.AddGate(circuit.Not, "", s)
		inv[s] = g
		cost++
		return g
	}
	var terms []int
	for _, cu := range cubes {
		var lits []int
		for j := 0; j < n; j++ {
			bit := 1 << (n - 1 - j)
			if cu.mask&bit == 0 {
				continue
			}
			if cu.val&bit != 0 {
				lits = append(lits, sigs[j])
			} else {
				lits = append(lits, notOf(sigs[j]))
			}
		}
		switch len(lits) {
		case 0:
			return -1, cost // whole space: degenerate
		case 1:
			terms = append(terms, lits[0])
		default:
			terms = append(terms, c.AddGate(circuit.And, "", lits...))
			cost++
		}
	}
	if len(terms) == 1 {
		return terms[0], cost
	}
	cost++
	return c.AddGate(circuit.Or, "", terms...), cost
}

// Bench describes one synthetic analog of a paper circuit.
type Bench struct {
	Name   string
	Params Params
}

// Suite returns the synthetic analogs of the paper's eight benchmark
// circuits (Table 2), with sizes scaled by scale (1.0 = calibrated
// defaults). Names follow the paper's with an "rs" prefix.
func Suite(scale float64) []Bench {
	if scale <= 0 {
		scale = 1
	}
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	mk := func(name string, in, out, gates, layers int, loc float64, seed int64) Bench {
		return Bench{Name: name, Params: Params{
			Name: name, Inputs: s(in), Outputs: s(out), Gates: s(gates),
			Layers: layers, MaxFanin: 3, Locality: loc, InvProb: 0.15,
			MacroProb: 0.06, Seed: seed,
		}}
	}
	// Layers and locality are tuned so path counts span roughly the
	// paper's orders of magnitude (1e4 .. 1e7) at scale 1.
	return []Bench{
		mk("rs1423", 91, 79, 560, 14, 0.75, 11423),
		mk("rs5378", 214, 224, 1500, 9, 0.55, 15378),
		mk("rs9234", 247, 248, 2100, 16, 0.70, 19234),
		mk("rs13207", 699, 788, 2900, 17, 0.70, 113207),
		mk("rs15850", 611, 680, 3600, 22, 0.75, 115850),
		mk("rs35932", 1763, 2048, 5200, 8, 0.50, 135932),
		mk("rs38417", 1664, 1742, 5600, 15, 0.65, 138417),
		mk("rs38584", 1455, 1700, 6400, 14, 0.60, 138584),
	}
}

// Build generates the circuit for a suite entry.
func (b Bench) Build() *circuit.Circuit {
	return Random(b.Params)
}

// SmallSuite returns fast, small circuits for tests and quick benches.
func SmallSuite() []Bench {
	var out []Bench
	for i, seed := range []int64{3, 17, 29, 71} {
		out = append(out, Bench{
			Name: fmt.Sprintf("small%d", i),
			Params: Params{
				Name: fmt.Sprintf("small%d", i), Inputs: 12, Outputs: 8,
				Gates: 90, Layers: 7, MaxFanin: 3, Locality: 0.7,
				InvProb: 0.2, Seed: seed,
			},
		})
	}
	return out
}
