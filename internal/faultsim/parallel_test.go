package faultsim

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/gen"
)

func campaignWith(t *testing.T, c *circuit.Circuit, fl []faults.Fault, workers int) CampaignResult {
	t.Helper()
	return Campaign(c, fl, CampaignOptions{Patterns: 512, Seed: 42, Workers: workers})
}

// TestParallelCampaignMatchesSerial is the determinism contract: the
// campaign with 8 workers reports the same detections, the same surviving
// faults in the same order, and the same last-effective pattern as the
// serial campaign.
func TestParallelCampaignMatchesSerial(t *testing.T) {
	c17, err := bench.ParseString(bench.C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*circuit.Circuit{c17}
	for _, b := range gen.SmallSuite() {
		circuits = append(circuits, b.Build())
	}
	for _, c := range circuits {
		fl := faults.Collapse(c)
		serial := campaignWith(t, c, fl, 1)
		parallel := campaignWith(t, c, fl, 8)
		if serial.Detected != parallel.Detected ||
			serial.LastEffective != parallel.LastEffective ||
			serial.Patterns != parallel.Patterns {
			t.Errorf("%s: stats diverge: serial %+v parallel %+v", c.Name, serial, parallel)
		}
		if len(serial.Remaining) != len(parallel.Remaining) {
			t.Fatalf("%s: %d vs %d remaining", c.Name, len(serial.Remaining), len(parallel.Remaining))
		}
		for i := range serial.Remaining {
			if serial.Remaining[i] != parallel.Remaining[i] {
				t.Fatalf("%s: remaining[%d] differs: %v vs %v",
					c.Name, i, serial.Remaining[i], parallel.Remaining[i])
			}
		}
	}
}

// TestForkSharesGoodValues checks a fork sees the parent's loaded block and
// detects exactly what the parent does.
func TestForkSharesGoodValues(t *testing.T) {
	c, err := bench.ParseString(bench.C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	words := make([]uint64, len(c.Inputs))
	for j := range words {
		words[j] = 0xdeadbeefcafe0000 + uint64(j)
	}
	s.SetInputs(words)
	s.RunGood()
	fork := s.Fork()
	for _, f := range faults.Collapse(c) {
		if got, want := fork.DetectWord(f), s.DetectWord(f); got != want {
			t.Fatalf("fault %v: fork %x, parent %x", f, got, want)
		}
	}
}
