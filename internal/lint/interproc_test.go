package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/lint"
)

// analyzeFixture runs the interprocedural rules over the named fixture
// packages and returns the diagnostics.
func analyzeFixture(t *testing.T, rules []string, pkgs ...string) []lint.Diagnostic {
	t.Helper()
	root := repoRoot(t)
	var dirs []string
	for _, p := range pkgs {
		dirs = append(dirs, filepath.Join(root, "internal/lint/testdata/src", p))
	}
	diags, err := lint.Analyze(dirs, lint.Config{
		DeterministicAll: true,
		RelativeTo:       root,
		Rules:            rules,
	})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func findRule(ds []lint.Diagnostic, rule, msgFragment string) *lint.Diagnostic {
	for i := range ds {
		if ds[i].Rule == rule && strings.Contains(ds[i].Msg, msgFragment) {
			return &ds[i]
		}
	}
	return nil
}

// TestPurityRunTask: a par.Run task writing captured state is flagged with a
// seam-anchored witness, while the task-indexed twin stays clean.
func TestPurityRunTask(t *testing.T) {
	diags := analyzeFixture(t, []string{"purity"}, "badpurity")
	d := findRule(diags, "purity", "write to captured badpurity.total")
	if d == nil {
		t.Fatalf("par.Run captured write not flagged; got:\n%s", lint.FormatText(diags))
	}
	if len(d.Witness) < 2 {
		t.Errorf("finding has no call-path witness: %v", d.Witness)
	}
	if !strings.HasPrefix(d.Witness[0], "seam ") {
		t.Errorf("witness does not start at the seam: %q", d.Witness[0])
	}
	if f := findRule(diags, "purity", "SumIndexed"); f != nil {
		t.Errorf("task-indexed writes must be clean, got: %s", f.Msg)
	}
}

// TestPurityCacheCompute: a GetOrCompute compute closure writing a global.
func TestPurityCacheCompute(t *testing.T) {
	diags := analyzeFixture(t, []string{"purity"}, "badpurity")
	d := findRule(diags, "purity", "write to global badpurity.hits")
	if d == nil {
		t.Fatalf("impure cache compute not flagged; got:\n%s", lint.FormatText(diags))
	}
	if !strings.Contains(d.Msg, "GetOrCompute") {
		t.Errorf("seam label missing from message: %s", d.Msg)
	}
}

// TestPuritySpeculativeTransitive: a //lint:speculative function whose
// circuit mutation hides one call down — invisible to the syntactic nodemut
// check — is flagged with the full call chain.
func TestPuritySpeculativeTransitive(t *testing.T) {
	diags := analyzeFixture(t, []string{"purity", "nodemut"}, "badpurity")
	d := findRule(diags, "purity", "Circuit.SetFanin")
	if d == nil {
		t.Fatalf("speculative transitive mutation not flagged; got:\n%s", lint.FormatText(diags))
	}
	joined := strings.Join(d.Witness, "\n")
	if !strings.Contains(joined, "badpurity.commit") {
		t.Errorf("witness does not name the intermediate call:\n%s", joined)
	}
	// The syntactic rule must NOT have caught it (that is the point).
	if f := findRule(diags, "nodemut", "Evaluate"); f != nil {
		t.Errorf("expected the mutation to be invisible syntactically, got: %s", f.Msg)
	}
}

// TestWallclockTransitive: clock taint propagates through helper chains and
// function-typed variables; direct reads stay with the syntactic rule.
func TestWallclockTransitive(t *testing.T) {
	diags := analyzeFixture(t, []string{"wallclock"}, "badwallflow")
	stamp := findRule(diags, "wallclock", "badwallflow.Stamp")
	if stamp == nil {
		t.Fatalf("two-deep transitive clock leak not flagged; got:\n%s", lint.FormatText(diags))
	}
	joined := strings.Join(stamp.Witness, "\n")
	for _, hop := range []string{"badwallflow.ticks", "badwallflow.nowNanos", "time.Now"} {
		if !strings.Contains(joined, hop) {
			t.Errorf("witness chain missing %q:\n%s", hop, joined)
		}
	}
	if d := findRule(diags, "wallclock", "resolves to time.Now"); d == nil {
		t.Errorf("call through a clock-holding function variable not flagged; got:\n%s", lint.FormatText(diags))
	}
	// nowNanos carries the direct read: syntactic finding only, never doubled
	// by a transitive one.
	n := 0
	for _, d := range diags {
		if strings.Contains(d.Msg, "nowNanos") && strings.Contains(d.Msg, "through the call graph") {
			n++
		}
	}
	if n != 0 {
		t.Error("direct clock read was double-reported by the transitive rule")
	}
}

// TestSharedmut: unsynchronized captured/global writes from spawned
// goroutines are flagged; the mutex- and channel-disciplined twins pass.
func TestSharedmut(t *testing.T) {
	diags := analyzeFixture(t, []string{"sharedmut"}, "badsharedmut")
	if d := findRule(diags, "sharedmut", "write to captured badsharedmut.n"); d == nil {
		t.Fatalf("unsynchronized captured write not flagged; got:\n%s", lint.FormatText(diags))
	}
	if d := findRule(diags, "sharedmut", "badsharedmut.total"); d == nil {
		t.Errorf("spawned call mutating a global not flagged; got:\n%s", lint.FormatText(diags))
	}
	for _, clean := range []string{"Guarded", "Channeled"} {
		if d := findRule(diags, "sharedmut", clean); d != nil {
			t.Errorf("%s is synchronized and must not be flagged: %s", clean, d.Msg)
		}
	}
}

// TestInterprocIDsStable: interprocedural IDs hash the sink description,
// not positions, so the same finding keeps its ID across unrelated edits —
// the property the baseline depends on.
func TestInterprocIDsStable(t *testing.T) {
	a := analyzeFixture(t, []string{"purity"}, "badpurity")
	b := analyzeFixture(t, []string{"purity"}, "badpurity")
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d findings", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("ID not stable across runs: %s vs %s", a[i].ID, b[i].ID)
		}
		if a[i].ID == "" {
			t.Errorf("finding without ID: %s", a[i].Msg)
		}
	}
}

// TestSARIFShape: the SARIF log has the 2.1.0 skeleton annotation services
// need — schema/version, per-rule metadata, physical locations, stable
// fingerprints, and code flows for witness-bearing findings.
func TestSARIFShape(t *testing.T) {
	diags := analyzeFixture(t, nil, "badpurity", "badsharedmut")
	out, err := lint.FormatSARIF(diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`"version": "2.1.0"`,
		`"$schema": "https://json.schemastore.org/sarif-2.1.0.json"`,
		`"name": "sftlint"`,
		`"ruleId": "purity"`,
		`"partialFingerprints"`,
		`"codeFlows"`,
		`"uri": "internal/lint/testdata/src/badpurity/badpurity.go"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("SARIF output missing %s", frag)
		}
	}
	// Stable across runs, byte for byte.
	again, err := lint.FormatSARIF(diags)
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Error("SARIF output is not byte-stable")
	}
}
