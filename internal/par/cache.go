package par

import (
	"hash/maphash"
	"sync"
)

const cacheShards = 32

// Cache is a sharded, concurrency-safe string-keyed memoization map. It is
// intended for caching pure functions: concurrent writers racing on the
// same key must be storing equal values, and whichever lands is kept. That
// keeps lookups deterministic without cross-shard coordination.
type Cache[V any] struct {
	shards [cacheShards]struct {
		mu sync.RWMutex
		m  map[string]V
	}
}

var cacheHashSeed = maphash.MakeSeed()

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]V)
	}
	return c
}

func (c *Cache[V]) shard(key string) *struct {
	mu sync.RWMutex
	m  map[string]V
} {
	return &c.shards[maphash.String(cacheHashSeed, key)%cacheShards]
}

// Get returns the cached value for key.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Set stores v under key.
func (c *Cache[V]) Set(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
