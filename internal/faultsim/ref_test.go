package faultsim

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/gen"
)

func campaignsEqual(a, b CampaignResult) bool {
	if a.TotalFaults != b.TotalFaults || a.Detected != b.Detected ||
		a.LastEffective != b.LastEffective || a.Patterns != b.Patterns ||
		len(a.Remaining) != len(b.Remaining) {
		return false
	}
	for i := range a.Remaining {
		if a.Remaining[i] != b.Remaining[i] {
			return false
		}
	}
	return true
}

// TestCampaignMatchesRef pins the CSR-backed, pooled, parallel Campaign to
// the pre-CSR serial reference: identical results field for field including
// the order of the surviving fault list, across worker counts and repeated
// (pool-recycling) invocations.
func TestCampaignMatchesRef(t *testing.T) {
	c17, err := bench.ParseString(bench.C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*circuit.Circuit{c17}
	for seed := int64(3); seed <= 5; seed++ {
		circuits = append(circuits, gen.Random(gen.Params{
			Name: "r", Inputs: 14, Outputs: 6, Gates: 150, Layers: 8,
			MaxFanin: 4, Locality: 0.6, Seed: seed,
		}))
	}
	for i, c := range circuits {
		fl := faults.Collapse(c)
		want := RefCampaign(c, fl, 256, 7)
		for _, workers := range []int{1, 4} {
			// Twice per worker count: the second run reuses pooled state.
			for round := 0; round < 2; round++ {
				got := Campaign(c, fl, CampaignOptions{Patterns: 256, Seed: 7, Workers: workers})
				if !campaignsEqual(got, want) {
					t.Fatalf("circuit %d workers %d round %d:\ngot  %+v\nwant %+v",
						i, workers, round, got, want)
				}
			}
		}
	}
}

// TestCampaignAfterEditMatchesRef ages the frozen view between campaigns so
// the incremental rebuild feeds the simulator, then re-pins against the
// reference built from the same mutated circuit.
func TestCampaignAfterEditMatchesRef(t *testing.T) {
	c, err := bench.ParseString(bench.Adder4, "adder4")
	if err != nil {
		t.Fatal(err)
	}
	fl := faults.Collapse(c)
	if r := Campaign(c, fl, CampaignOptions{Patterns: 128, Seed: 3}); r.TotalFaults == 0 {
		t.Fatal("empty fault list")
	}
	g := c.AddGate(circuit.Nor, "", c.Outputs[0], c.Outputs[1])
	c.MarkOutput(g)
	fl = faults.Collapse(c)
	got := Campaign(c, fl, CampaignOptions{Patterns: 128, Seed: 3})
	want := RefCampaign(c, fl, 128, 3)
	if !campaignsEqual(got, want) {
		t.Fatalf("post-edit campaign:\ngot  %+v\nwant %+v", got, want)
	}
}
