package compare

import (
	"math/rand"
	"testing"

	"compsynth/internal/circuit"
	"compsynth/internal/logic"
)

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			p := make([]int, 0, n)
			p = append(p, sub[:pos]...)
			p = append(p, n-1)
			p = append(p, sub[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

// bruteIsComparison checks Definition 1 directly over all permutations.
func bruteIsComparison(f logic.TT, allowComplement bool) bool {
	if f.IsConst(false) {
		return false
	}
	for _, p := range permutations(f.Vars()) {
		g := f.Permute(p)
		if _, _, ok := g.IsInterval(); ok {
			return true
		}
		if allowComplement {
			if _, _, ok := g.Not().IsInterval(); ok {
				return true
			}
		}
	}
	return false
}

func TestIdentifyPaperExample(t *testing.T) {
	// Section 3.1: f2 with onset {1,5,6,9,10,14} is a comparison function
	// with x1=y4, x2=y3, x3=y2, x4=y1, L=5, U=10.
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	s, ok := Identify(f)
	if !ok {
		t.Fatal("paper example not identified")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Table().Equal(f) {
		t.Fatalf("spec %v does not reconstruct f", s)
	}
	if s.U-s.L != 5 {
		// Any valid realization covers 6 minterms; interval width is fixed.
		t.Fatalf("interval [%d,%d] should span 6 minterms", s.L, s.U)
	}
}

func TestIdentifyXorIsComparison(t *testing.T) {
	// XOR of 2 vars has onset {1,2}: the interval [1,2].
	f := logic.Var(2, 1).Xor(logic.Var(2, 2))
	s, ok := Identify(f)
	if !ok {
		t.Fatal("2-input XOR should be a comparison function")
	}
	if s.L != 1 || s.U != 2 {
		t.Fatalf("XOR bounds = [%d,%d], want [1,2]", s.L, s.U)
	}
}

func TestIdentifyComplementCases(t *testing.T) {
	// XNOR onset {0,3} is not an interval under any permutation, but its
	// complement is.
	f := logic.Var(2, 1).Xor(logic.Var(2, 2)).Not()
	if _, ok := Identify(f); ok {
		t.Fatal("XNOR onset should not be an interval")
	}
	s, ok := IdentifyBest(f)
	if !ok || !s.Complement {
		t.Fatalf("XNOR should identify via complement, got %v ok=%v", s, ok)
	}
	if !s.Table().Equal(f) {
		t.Fatal("complemented spec does not reconstruct XNOR")
	}
}

func TestIdentifyConstants(t *testing.T) {
	if _, ok := Identify(logic.Const(3, false)); ok {
		t.Fatal("const0 identified as comparison function")
	}
	s, ok := Identify(logic.Const(3, true))
	if !ok || s.L != 0 || s.U != 7 {
		t.Fatalf("const1: %v ok=%v", s, ok)
	}
}

func TestIdentifySingleCube(t *testing.T) {
	// Section 3.2.2 example: f(y1,y2,y3) = y1 y3 has a single prime
	// implicant; all variables in its support become free.
	f := logic.Var(3, 1).And(logic.Var(3, 3))
	s, ok := Identify(f)
	if !ok {
		t.Fatal("cube not identified")
	}
	if !s.Table().Equal(f) {
		t.Fatal("cube spec wrong")
	}
	if s.FreeCount() < 2 {
		t.Fatalf("cube should have >= 2 free vars, got %d (spec %v)", s.FreeCount(), s)
	}
	if s.GeqPresent() || s.LeqPresent() {
		t.Fatalf("cube should need no blocks: %v", s)
	}
}

func TestIdentifyMatchesBruteForceN3(t *testing.T) {
	for bitsv := 0; bitsv < 256; bitsv++ {
		f := logic.New(3)
		for m := 0; m < 8; m++ {
			if bitsv&(1<<m) != 0 {
				f.Set(m, true)
			}
		}
		want := bruteIsComparison(f, false)
		s, got := Identify(f)
		if got != want {
			t.Fatalf("f=%s: Identify=%v brute=%v", f, got, want)
		}
		if got {
			if err := s.Validate(); err != nil {
				t.Fatalf("f=%s: %v", f, err)
			}
			if !s.Table().Equal(f) {
				t.Fatalf("f=%s: table mismatch for %v", f, s)
			}
		}
		wantC := bruteIsComparison(f, true)
		sc, gotC := IdentifyBest(f)
		if gotC != wantC {
			t.Fatalf("f=%s: IdentifyBest=%v brute=%v", f, gotC, wantC)
		}
		if gotC && !sc.Table().Equal(f) {
			t.Fatalf("f=%s: best table mismatch", f)
		}
	}
}

func TestIdentifyMatchesBruteForceN4Sampled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 1500; trial++ {
		f := logic.New(4)
		// Bias toward small onsets, where comparison functions live.
		k := 1 + rng.Intn(8)
		for j := 0; j < k; j++ {
			f.Set(rng.Intn(16), true)
		}
		want := bruteIsComparison(f, false)
		s, got := Identify(f)
		if got != want {
			t.Fatalf("f=%s: Identify=%v brute=%v", f, got, want)
		}
		if got && !s.Table().Equal(f) {
			t.Fatalf("f=%s: table mismatch", f)
		}
	}
}

func TestIdentifyAllSpecsValid(t *testing.T) {
	f := logic.FromInterval(4, 5, 10)
	specs := IdentifyAll(f, 32)
	if len(specs) == 0 {
		t.Fatal("no specs for a direct interval")
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if !s.Table().Equal(f) {
			t.Fatalf("spec %v does not realize f", s)
		}
	}
}

func TestIdentifySamplingFindsPaperExample(t *testing.T) {
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	s, ok := IdentifySampling(f, 200, nil)
	if !ok {
		t.Fatal("sampling failed on the paper's example within 200 perms")
	}
	if !s.Table().Equal(f) {
		t.Fatal("sampled spec wrong")
	}
}

func TestIdentifySamplingRejectsNonComparison(t *testing.T) {
	// 3-input majority has onset {3,5,6,7}: {3,5,6,7} misses 4 under the
	// identity; by symmetry no permutation helps; complement {0,1,2,4} is
	// not an interval either.
	f := logic.FromMinterms(3, []int{3, 5, 6, 7})
	if _, ok := IdentifySampling(f, 200, nil); ok {
		t.Fatal("majority sampled as comparison function")
	}
	if _, ok := IdentifyBest(f); ok {
		t.Fatal("majority identified as comparison function")
	}
}

// Property: any interval under any permutation is identified and
// reconstructed exactly.
func TestQuickIntervalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		size := 1 << n
		l := rng.Intn(size)
		u := l + rng.Intn(size-l)
		base := logic.FromInterval(n, l, u)
		f := base.Permute(rng.Perm(n))
		s, ok := Identify(f)
		if !ok {
			t.Fatalf("n=%d [%d,%d]: interval not identified", n, l, u)
		}
		if !s.Table().Equal(f) {
			t.Fatalf("n=%d [%d,%d]: reconstruction failed", n, l, u)
		}
		if s.U-s.L != u-l {
			t.Fatalf("interval width changed: [%d,%d] -> [%d,%d]", l, u, s.L, s.U)
		}
	}
}

func identitySpec(n, l, u int) Spec {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return Spec{N: n, Perm: p, L: l, U: u}
}

// TestBuildMatchesTable verifies, exhaustively over all bounds for n<=5, that
// the built unit implements exactly the interval function — with and without
// gate merging, and in complemented form.
func TestBuildMatchesTable(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				for _, merge := range []bool{false, true} {
					s := identitySpec(n, l, u)
					c := s.BuildStandalone("u", BuildOptions{Merge: merge})
					if err := c.Validate(); err != nil {
						t.Fatalf("n=%d [%d,%d] merge=%v: %v", n, l, u, merge, err)
					}
					want := s.Table()
					for m := 0; m < 1<<n; m++ {
						in := make([]bool, n)
						for j := 0; j < n; j++ {
							in[j] = m&(1<<(n-1-j)) != 0
						}
						if got := c.Eval(in)[0]; got != want.Get(m) {
							t.Fatalf("n=%d [%d,%d] merge=%v m=%d: got %v", n, l, u, merge, m, got)
						}
					}
				}
			}
		}
	}
}

func TestBuildComplemented(t *testing.T) {
	s := identitySpec(3, 2, 5)
	s.Complement = true
	c := s.BuildStandalone("c", BuildOptions{Merge: true})
	want := s.Table()
	for m := 0; m < 8; m++ {
		in := []bool{m&4 != 0, m&2 != 0, m&1 != 0}
		if c.Eval(in)[0] != want.Get(m) {
			t.Fatalf("complemented unit wrong at %d", m)
		}
	}
}

func TestBuildPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		l := rng.Intn(1 << n)
		u := l + rng.Intn(1<<n-l)
		s := Spec{N: n, Perm: rng.Perm(n), L: l, U: u, Complement: rng.Intn(2) == 1}
		c := s.BuildStandalone("p", BuildOptions{Merge: rng.Intn(2) == 1})
		want := s.Table()
		for m := 0; m < 1<<n; m++ {
			in := make([]bool, n)
			for j := 0; j < n; j++ {
				in[j] = m&(1<<(n-1-j)) != 0
			}
			if c.Eval(in)[0] != want.Get(m) {
				t.Fatalf("trial %d: %v wrong at minterm %d", trial, s, m)
			}
		}
	}
}

// TestGateCostMatchesBuild cross-checks the analytic cost model against the
// built unit, exhaustively for n<=5.
func TestGateCostMatchesBuild(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				s := identitySpec(n, l, u)
				c := s.BuildStandalone("g", BuildOptions{Merge: true})
				if got, want := c.Equiv2Count(), s.GateCost(); got != want {
					t.Fatalf("n=%d [%d,%d]: built equiv2=%d analytic=%d", n, l, u, got, want)
				}
				// Merging must not change the equivalent-2-input count.
				c2 := s.BuildStandalone("g2", BuildOptions{Merge: false})
				if c2.Equiv2Count() != s.GateCost() {
					t.Fatalf("n=%d [%d,%d]: unmerged equiv2 differs", n, l, u)
				}
			}
		}
	}
}

func TestFreeVariablesAndSpecialCases(t *testing.T) {
	// Paper example: L=5=(0101), U=7=(0111): free = {x1, x2}.
	s := identitySpec(4, 5, 7)
	if s.FreeCount() != 2 {
		t.Fatalf("FreeCount = %d, want 2", s.FreeCount())
	}
	if !s.GeqPresent() {
		t.Fatal("L_F=01 nonzero: >= block expected")
	}
	if s.LeqPresent() {
		t.Fatal("U_F=11 all ones: <= block must be omitted (Sec. 3.2.2)")
	}
	// Kp: free vars 1 path; x3: in geq iff suffix(L,3)=01 != 0 -> yes; x4
	// likewise; no leq paths.
	for i, want := range map[int]int{1: 1, 2: 1, 3: 1, 4: 1} {
		if got := s.Kp(i); got != want {
			t.Fatalf("Kp(%d) = %d, want %d", i, got, want)
		}
	}
	// L=12=(1100), U=15: geq only, x3 and x4 omitted entirely.
	s2 := identitySpec(4, 12, 15)
	if s2.FreeCount() != 2 {
		// bits of L and U agree on x1,x2 (11); differ after.
		t.Fatalf("FreeCount(12,15) = %d, want 2", s2.FreeCount())
	}
	if s2.GeqPresent() || s2.LeqPresent() {
		t.Fatal("[12,15] is a single cube: no blocks")
	}
	if s2.Kp(3) != 0 || s2.Kp(4) != 0 {
		t.Fatal("x3,x4 should have no paths in [12,15]")
	}
}

func TestKpMatchesBuiltPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		l := rng.Intn(1 << n)
		u := l + rng.Intn(1<<n-l)
		s := identitySpec(n, l, u)
		for _, merge := range []bool{false, true} {
			c := s.BuildStandalone("k", BuildOptions{Merge: merge})
			counts := countPathsPerInput(c)
			for j := 0; j < n; j++ {
				if counts[j] != s.Kp(j+1) {
					t.Fatalf("[%d,%d] n=%d merge=%v: paths from y%d = %d, Kp = %d\n%v",
						l, u, n, merge, j+1, counts[j], s.Kp(j+1), s)
				}
			}
		}
	}
}

// countPathsPerInput counts PI->PO paths from input j (0-based input order)
// by memoized traversal toward the outputs.
func countPathsPerInput(c *circuit.Circuit) []int {
	poUses := map[int]int{}
	for _, o := range c.Outputs {
		poUses[o]++
	}
	memo := map[int]int{}
	var count func(id int) int
	count = func(id int) int {
		if v, ok := memo[id]; ok {
			return v
		}
		n := poUses[id]
		for _, f := range c.Fanouts(id) {
			n += count(f)
		}
		memo[id] = n
		return n
	}
	out := make([]int, len(c.Inputs))
	for j, in := range c.Inputs {
		out[j] = count(in)
	}
	return out
}

// The exact search must stay fast and correct at the largest K used (6-7).
func TestIdentifyLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{6, 7} {
		for trial := 0; trial < 25; trial++ {
			l := rng.Intn(1 << n)
			u := l + rng.Intn(1<<n-l)
			f := logic.FromInterval(n, l, u).Permute(rng.Perm(n))
			s, ok := Identify(f)
			if !ok {
				t.Fatalf("n=%d [%d,%d]: not identified", n, l, u)
			}
			if !s.Table().Equal(f) {
				t.Fatalf("n=%d: reconstruction failed", n)
			}
		}
		// Non-comparison functions at large n must be rejected quickly:
		// parity is never an interval under any permutation.
		parity := logic.New(n)
		for m := 0; m < 1<<n; m++ {
			if popcountInt(m)%2 == 1 {
				parity.Set(m, true)
			}
		}
		if _, ok := IdentifyBest(parity); ok {
			t.Fatalf("n=%d parity identified as comparison function", n)
		}
	}
}

func popcountInt(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
