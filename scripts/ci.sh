#!/usr/bin/env bash
# Tier-1 gate for the repository (see ROADMAP.md): formatting, vet, build and
# the full test suite under the race detector. Run from anywhere; exits
# non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One iteration of every benchmark, no measurement: catches benches that no
# longer compile or fail at runtime without paying for a real sweep (full
# sweeps are scripts/bench.sh).
go test -bench . -benchtime 1x -run '^$' ./...

echo "ci: all checks passed"
