package ledger_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/compare"
	"compsynth/internal/ledger"
	"compsynth/internal/logic"
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry"
)

// buildStream produces a sealed ledger of n generic events with the given
// batch size.
func buildStream(t *testing.T, n, batchSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ledger.NewWriterSize(&buf, batchSize)
	for i := 0; i < n; i++ {
		if err := w.Append(obs.Event{Type: "progress", Stage: "s", Done: int64(i + 1), Total: int64(n)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func TestChainRoundTrip(t *testing.T) {
	data := buildStream(t, 10, 4)
	res, err := ledger.VerifyChain(data)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !res.Final || res.Truncated {
		t.Fatalf("want final, non-truncated; got %+v", res)
	}
	// 10 events + 3 batch seals (4+4+2) + 1 final record.
	if res.Events != 10 || res.Batches != 3 || res.Records != 14 {
		t.Fatalf("got %d events, %d batches, %d records", res.Events, res.Batches, res.Records)
	}
	if res.FinalRoot == "" || res.Head == "" {
		t.Fatalf("missing final root or head: %+v", res)
	}
}

func TestChainDeterministic(t *testing.T) {
	a := buildStream(t, 20, 8)
	b := buildStream(t, 20, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("identical event sequences produced different ledgers")
	}
}

// TestTamperTable mutates a sealed stream in each of the classic ways and
// requires a distinct diagnosis naming the first bad sequence number.
func TestTamperTable(t *testing.T) {
	lines := func(data []byte) [][]byte {
		ls := bytes.Split(data, []byte("\n"))
		return ls[:len(ls)-1] // drop the empty tail after the final newline
	}
	join := func(ls [][]byte) []byte {
		return append(bytes.Join(ls, []byte("\n")), '\n')
	}
	cases := []struct {
		name    string
		mutate  func(ls [][]byte) [][]byte
		wantErr string
	}{
		{
			name: "flip-byte",
			mutate: func(ls [][]byte) [][]byte {
				// Flip a digit inside event 3's payload (Done: 4 -> 5).
				ls[3] = bytes.Replace(ls[3], []byte(`"done":4`), []byte(`"done":5`), 1)
				return ls
			},
			wantErr: "record 3: chain mismatch",
		},
		{
			name: "drop-record",
			mutate: func(ls [][]byte) [][]byte {
				return append(ls[:5:5], ls[6:]...)
			},
			wantErr: "record 5 missing",
		},
		{
			name: "reorder-records",
			mutate: func(ls [][]byte) [][]byte {
				ls[2], ls[3] = ls[3], ls[2]
				return ls
			},
			wantErr: "record 3 out of order",
		},
		{
			name: "splice-streams",
			mutate: func(ls [][]byte) [][]byte {
				// Graft the tail of a different (also internally valid)
				// stream onto our prefix.
				other := lines(func() []byte {
					var buf bytes.Buffer
					w := ledger.NewWriterSize(&buf, 4)
					for i := 0; i < 10; i++ {
						w.Append(obs.Event{Type: "progress", Stage: "other", Done: int64(i + 1), Total: 10})
					}
					w.Close()
					return buf.Bytes()
				}())
				return append(ls[:6:6], other[6:]...)
			},
			wantErr: "record 6: chain mismatch",
		},
		{
			name: "forged-batch-root",
			mutate: func(ls [][]byte) [][]byte {
				// Record 4 is the first batch seal (events 0-3). Flip one
				// hex digit of its root: the chain covers the seal payload,
				// so the forgery breaks the link.
				i := bytes.Index(ls[4], []byte(`"root":"`)) + len(`"root":"`)
				forged := append([]byte(nil), ls[4]...)
				if forged[i] == '0' {
					forged[i] = '1'
				} else {
					forged[i] = '0'
				}
				ls[4] = forged
				return ls
			},
			wantErr: "record 4: chain mismatch",
		},
		{
			name: "data-after-final",
			mutate: func(ls [][]byte) [][]byte {
				return append(ls, ls[0])
			},
			wantErr: "data after final root record",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := buildStream(t, 10, 4)
			mutated := join(tc.mutate(lines(data)))
			_, err := ledger.VerifyChain(mutated)
			if err == nil {
				t.Fatalf("tampered stream verified clean")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestTruncationTolerance cuts a sealed stream at every byte position: every
// prefix must verify as a valid (truncated) prefix, never as tampering.
func TestTruncationTolerance(t *testing.T) {
	data := buildStream(t, 10, 4)
	for cut := 0; cut < len(data); cut++ {
		res, err := ledger.VerifyChain(data[:cut])
		if err != nil {
			t.Fatalf("cut at byte %d: %v", cut, err)
		}
		if res.Final {
			// Only the cut that removes nothing but the trailing newline
			// leaves a complete, sealed stream.
			if cut != len(data)-1 {
				t.Fatalf("cut at byte %d: final root on a truncated stream", cut)
			}
			continue
		}
		if !res.Truncated {
			t.Fatalf("cut at byte %d: not reported truncated (%d records)", cut, res.Records)
		}
	}
	// Cutting whole records off the tail must keep the verified prefix
	// counting exactly the surviving records.
	ls := bytes.Split(data, []byte("\n"))
	ls = ls[:len(ls)-1]
	for keep := 0; keep < len(ls); keep++ {
		prefix := append(bytes.Join(ls[:keep], []byte("\n")), '\n')
		if keep == 0 {
			prefix = nil
		}
		res, err := ledger.VerifyChain(prefix)
		if err != nil {
			t.Fatalf("keep %d records: %v", keep, err)
		}
		if res.Records != int64(keep) {
			t.Fatalf("keep %d records: verified %d", keep, res.Records)
		}
	}
}

func TestEvidenceVerify(t *testing.T) {
	spec := compare.Spec{N: 3, Perm: []int{2, 0, 1}, L: 2, U: 5}
	tt := spec.Table()
	ev := ledger.Evidence{
		Pass: 1, Gate: "g7", Vars: 3,
		TT:   tt.Hex(),
		Spec: ledger.SpecInfoOf(spec),
	}
	if err := ledger.VerifyEvidence(ev); err != nil {
		t.Fatalf("valid evidence rejected: %v", err)
	}

	// A flipped minterm must be caught...
	bad := ev
	flipped := tt.Clone()
	flipped.Set(0, !tt.Get(0))
	bad.TT = flipped.Hex()
	if err := ledger.VerifyEvidence(bad); err == nil {
		t.Fatal("corrupt truth table accepted")
	}
	// ...unless the care set marks that minterm as a don't-care.
	care := logic.New(3).Not()
	care.Set(0, false)
	bad.Care = care.Hex()
	if err := ledger.VerifyEvidence(bad); err != nil {
		t.Fatalf("don't-care disagreement rejected: %v", err)
	}

	multi := compare.MultiSpec{N: 3, Perm: []int{0, 1, 2}, Intervals: [][2]int{{1, 2}, {5, 6}}}
	mev := ledger.Evidence{
		Pass: 2, Gate: "g9", Vars: 3,
		TT:   multi.Table().Hex(),
		Spec: ledger.SpecInfoOf(multi),
	}
	if err := ledger.VerifyEvidence(mev); err != nil {
		t.Fatalf("valid multi evidence rejected: %v", err)
	}

	mangled := ev
	mangled.Spec.Kind = "nonsense"
	if err := ledger.VerifyEvidence(mangled); err == nil {
		t.Fatal("unknown spec kind accepted")
	}
}

// TestCircuitDigestRoundTrip pins the canonical digest's invariance under a
// .bench write/parse round trip, and its sensitivity to actual edits.
func TestCircuitDigestRoundTrip(t *testing.T) {
	for _, path := range []string{"../../circuits/c17.bench", "../../circuits/adder4.bench"} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c, err := bench.ParseString(string(raw), "x")
		if err != nil {
			t.Fatal(err)
		}
		d1 := ledger.CircuitDigest(c).Hex()
		c2, err := bench.ParseString(bench.String(c), "x")
		if err != nil {
			t.Fatal(err)
		}
		if d2 := ledger.CircuitDigest(c2).Hex(); d2 != d1 {
			t.Fatalf("%s: digest not stable under round trip: %s vs %s", path, d1, d2)
		}
	}
	a := circuit.New("t")
	x, y := a.AddInput("x"), a.AddInput("y")
	a.MarkOutput(a.AddGate(circuit.And, "g", x, y))
	da := ledger.CircuitDigest(a).Hex()
	b := circuit.New("t")
	x, y = b.AddInput("x"), b.AddInput("y")
	b.MarkOutput(b.AddGate(circuit.Or, "g", x, y))
	if db := ledger.CircuitDigest(b).Hex(); db == da {
		t.Fatal("AND and OR circuits digest identically")
	}
}

// twoGateCircuit builds a tiny netlist for the lifecycle tests.
func twoGateCircuit() *circuit.Circuit {
	c := circuit.New("tiny")
	x, y, z := c.AddInput("x"), c.AddInput("y"), c.AddInput("z")
	g1 := c.AddGate(circuit.And, "g1", x, y)
	c.MarkOutput(c.AddGate(circuit.Or, "g2", g1, z))
	return c
}

// TestRunLifecycle drives the full obs wiring: -events framed by the ledger,
// -cert built and cross-bound, everything verifiable afterwards.
func TestRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.ndjson")
	cert := filepath.Join(dir, "cert.json")
	f := &obs.Flags{Events: events, Cert: cert}
	run := f.Start("ledgertest")
	c := twoGateCircuit()
	run.CircuitBefore(c)
	run.CircuitAfter(c)
	run.SetCertOptions(struct {
		K int `json:"k"`
	}{5})
	spec := compare.Spec{N: 2, Perm: []int{0, 1}, L: 3, U: 3}
	run.AddEvidence(ledger.Evidence{
		Pass: 1, Gate: "g1", Vars: 2, TT: spec.Table().Hex(), Spec: ledger.SpecInfoOf(spec),
	})
	if err := run.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ledger.VerifyChain(data)
	if err != nil {
		t.Fatalf("ledger verify: %v", err)
	}
	if !chain.Final {
		t.Fatal("run ledger not sealed")
	}

	cc, err := ledger.ReadCertificate(cert)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := ledger.BodyDigest(cc)
	if err != nil {
		t.Fatal(err)
	}
	if dg != cc.BodyDigest {
		t.Fatalf("certificate body digest mismatch: %s vs %s", dg, cc.BodyDigest)
	}
	if cc.Ledger == nil {
		t.Fatal("certificate carries no ledger binding")
	}
	if cc.Ledger.Head != chain.Head || cc.Ledger.FinalRoot != chain.FinalRoot {
		t.Fatalf("binding mismatch: cert %+v, chain head %s root %s", cc.Ledger, chain.Head, chain.FinalRoot)
	}
	found := false
	for _, d := range chain.CertDigests {
		if d == cc.BodyDigest {
			found = true
		}
	}
	if !found {
		t.Fatal("certificate digest not recorded in the ledger")
	}
	if cc.Input == nil || cc.Output == nil || cc.Input.Digest != cc.Output.Digest {
		t.Fatalf("unexpected circuit certs: %+v %+v", cc.Input, cc.Output)
	}
	if cc.Equivalence == nil || cc.Equivalence.Mode != "exhaustive" {
		t.Fatalf("unexpected witness: %+v", cc.Equivalence)
	}
	w, err := ledger.WitnessResponse(c, cc.Equivalence.Mode, cc.Equivalence.Seed, cc.Equivalence.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if w != cc.Equivalence.Response {
		t.Fatalf("witness replay mismatch: %s vs %s", w, cc.Equivalence.Response)
	}
	if len(cc.Evidence) != 1 {
		t.Fatalf("want 1 evidence entry, got %d", len(cc.Evidence))
	}
	if err := ledger.VerifyEvidence(cc.Evidence[0]); err != nil {
		t.Fatalf("evidence verify: %v", err)
	}
}

// TestCertDeterministic pins the byte-reproducibility contract: two -cert
// runs (no -events, so no wall-clock-bearing ledger) on identical inputs
// must produce byte-identical certificate files.
func TestCertDeterministic(t *testing.T) {
	dir := t.TempDir()
	write := func(path string) {
		f := &obs.Flags{Cert: path}
		run := f.Start("ledgertest")
		c := twoGateCircuit()
		run.CircuitBefore(c)
		run.CircuitAfter(c)
		run.SetCertOptions(struct {
			K int `json:"k"`
		}{5})
		if err := run.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
	}
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	write(p1)
	write(p2)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("certificates differ between identical runs")
	}
	var cc ledger.Certificate
	if err := json.Unmarshal(b1, &cc); err != nil {
		t.Fatal(err)
	}
	if cc.Ledger != nil {
		t.Fatal("certificate without -events carries a ledger binding")
	}
}

// TestRunFailSealsLedger pins the crash-path contract: a run that ends in
// Fail still seals its event ledger (final root present) and writes its
// certificate, carrying the error.
func TestRunFailSealsLedger(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.ndjson")
	cert := filepath.Join(dir, "cert.json")
	f := &obs.Flags{Events: events, Cert: cert}
	run := f.Start("ledgertest")
	run.CircuitBefore(twoGateCircuit())
	if code := run.Fail(errors.New("synthetic failure")); code == 0 {
		t.Fatal("Fail returned zero status")
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ledger.VerifyChain(data)
	if err != nil {
		t.Fatalf("failed run left an unverifiable ledger: %v", err)
	}
	if !chain.Final {
		t.Fatal("failed run left an unsealed ledger")
	}
	cc, err := ledger.ReadCertificate(cert)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Error != "synthetic failure" {
		t.Fatalf("certificate error = %q", cc.Error)
	}
	if cc.Ledger == nil || cc.Ledger.FinalRoot != chain.FinalRoot {
		t.Fatalf("failed run's certificate not bound to its ledger: %+v", cc.Ledger)
	}
}

// TestTelemetryLedgerState checks the live surfaces: the chain-head info
// metric on /metrics and the ledger block in /progress.
func TestTelemetryLedgerState(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.ndjson")
	f := &obs.Flags{Events: events, Listen: "127.0.0.1:0"}
	run := f.Start("ledgertest")
	addr := run.Server().Addr()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "ledger_chain_head_info{head=\"") {
		t.Fatalf("/metrics missing chain head info metric:\n%s", metrics)
	}
	var prog struct {
		Ledger *obs.LedgerState `json:"ledger"`
	}
	if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Ledger == nil || prog.Ledger.Head == "" {
		t.Fatalf("/progress missing ledger state: %+v", prog.Ledger)
	}
	if prog.Ledger.FinalRoot != "" {
		t.Fatal("/progress shows a final root on a live run")
	}
	if err := run.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if ls, ok := run.LedgerState(); !ok || ls.FinalRoot == "" {
		t.Fatalf("post-run ledger state not retained: %+v ok=%v", ls, ok)
	}
}

// TestWitnessModes pins the mode split and the sampled witness's sensitivity
// to functional change.
func TestWitnessModes(t *testing.T) {
	mode, _, _ := ledger.WitnessParams("a", "b", 14)
	if mode != "exhaustive" {
		t.Fatalf("14 inputs: mode %s", mode)
	}
	mode, seed, rounds := ledger.WitnessParams("a", "b", 15)
	if mode != "sampled" || rounds <= 0 {
		t.Fatalf("15 inputs: mode %s rounds %d", mode, rounds)
	}
	mode2, seed2, _ := ledger.WitnessParams("a", "c", 15)
	if mode2 != "sampled" || seed == seed2 {
		t.Fatal("witness seed does not depend on the circuit digests")
	}

	and := func(name string, typ circuit.GateType) *circuit.Circuit {
		c := circuit.New(name)
		x, y := c.AddInput("x"), c.AddInput("y")
		c.MarkOutput(c.AddGate(typ, "g", x, y))
		return c
	}
	ra, err := ledger.WitnessResponse(and("a", circuit.And), "sampled", 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ledger.WitnessResponse(and("b", circuit.Nand), "sampled", 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Fatal("AND and NAND share a sampled response digest")
	}
	if _, err := ledger.WitnessResponse(and("c", circuit.And), "martian", 0, 0); err == nil {
		t.Fatal("unknown witness mode accepted")
	}
}

// TestVerifyEquivalenceForgery pins the witness-parameter enforcement: the
// verifier re-derives mode/seed/rounds from the circuit digests, so a
// forged certificate cannot pick its own pattern set.
func TestVerifyEquivalenceForgery(t *testing.T) {
	build := func(typ circuit.GateType) *circuit.Circuit {
		c := circuit.New("tiny")
		x, y, z := c.AddInput("x"), c.AddInput("y"), c.AddInput("z")
		g1 := c.AddGate(typ, "g1", x, y)
		c.MarkOutput(c.AddGate(circuit.Or, "g2", g1, z))
		return c
	}
	certFor := func(a, b *circuit.Circuit, w *ledger.EquivWitness) *ledger.Certificate {
		cc := func(c *circuit.Circuit) *ledger.CircuitCert {
			return &ledger.CircuitCert{
				Inputs: len(c.Inputs), Outputs: len(c.Outputs),
				Digest: ledger.CircuitDigest(c).Hex(),
			}
		}
		return &ledger.Certificate{Input: cc(a), Output: cc(b), Equivalence: w}
	}
	in, out := build(circuit.And), build(circuit.Or) // NOT equivalent

	// The forgery from the attack: mode "sampled" with zero rounds — the
	// response digest of zero patterns is identical for any two circuits,
	// so without parameter re-derivation this cert would verify.
	empty, err := ledger.WitnessResponse(in, "sampled", 12345, 0)
	if err != nil {
		t.Fatal(err)
	}
	forged := &ledger.EquivWitness{Mode: "sampled", Seed: 12345, Rounds: 0, Inputs: 3, Outputs: 1, Response: empty}
	if _, err := ledger.VerifyEquivalence(certFor(in, out, forged), in, out); err == nil {
		t.Fatal("zero-round sampled forgery accepted")
	} else if !strings.Contains(err.Error(), "forced derivation") {
		t.Fatalf("forgery rejected for the wrong reason: %v", err)
	}

	// Omitting the witness entirely must fail, not silently skip.
	if _, err := ledger.VerifyEquivalence(certFor(in, out, nil), in, out); err == nil {
		t.Fatal("certificate without a witness accepted")
	}

	// Honest parameters on non-equivalent circuits: the exhaustive replay
	// itself must catch the disagreement.
	mode, seed, rounds := ledger.WitnessParams(
		ledger.CircuitDigest(in).Hex(), ledger.CircuitDigest(out).Hex(), len(in.Inputs))
	respIn, err := ledger.WitnessResponse(in, mode, seed, rounds)
	if err != nil {
		t.Fatal(err)
	}
	honest := &ledger.EquivWitness{Mode: mode, Seed: seed, Rounds: rounds, Inputs: 3, Outputs: 1, Response: respIn}
	if _, err := ledger.VerifyEquivalence(certFor(in, out, honest), in, out); err == nil {
		t.Fatal("non-equivalent circuits verified under honest parameters")
	}

	// An equivalent pair under the honest derivation passes.
	in2 := build(circuit.And)
	mode, seed, rounds = ledger.WitnessParams(
		ledger.CircuitDigest(in).Hex(), ledger.CircuitDigest(in2).Hex(), len(in.Inputs))
	resp, err := ledger.WitnessResponse(in, mode, seed, rounds)
	if err != nil {
		t.Fatal(err)
	}
	ok := &ledger.EquivWitness{Mode: mode, Seed: seed, Rounds: rounds, Inputs: 3, Outputs: 1, Response: resp}
	if gotMode, err := ledger.VerifyEquivalence(certFor(in, in2, ok), in, in2); err != nil {
		t.Fatalf("honest witness rejected: %v", err)
	} else if gotMode != "exhaustive" {
		t.Fatalf("3-input witness mode %s", gotMode)
	}

	// Sampled regime (>14 inputs): a forged seed or round count is caught
	// by the same derivation check.
	wide := func(typ circuit.GateType) *circuit.Circuit {
		c := circuit.New("wide")
		acc := c.AddInput("x0")
		for i := 1; i < 15; i++ {
			acc = c.AddGate(typ, fmt.Sprintf("g%d", i), acc, c.AddInput(fmt.Sprintf("x%d", i)))
		}
		c.MarkOutput(acc)
		return c
	}
	wa, wb := wide(circuit.And), wide(circuit.And)
	mode, seed, rounds = ledger.WitnessParams(
		ledger.CircuitDigest(wa).Hex(), ledger.CircuitDigest(wb).Hex(), len(wa.Inputs))
	if mode != "sampled" {
		t.Fatalf("15-input witness mode %s", mode)
	}
	resp, err = ledger.WitnessResponse(wa, mode, seed+1, rounds)
	if err != nil {
		t.Fatal(err)
	}
	badSeed := &ledger.EquivWitness{Mode: mode, Seed: seed + 1, Rounds: rounds, Inputs: 15, Outputs: 1, Response: resp}
	if _, err := ledger.VerifyEquivalence(certFor(wa, wb, badSeed), wa, wb); err == nil {
		t.Fatal("attacker-chosen seed accepted")
	} else if !strings.Contains(err.Error(), "forced derivation") {
		t.Fatalf("seed forgery rejected for the wrong reason: %v", err)
	}
}

// TestTamperFixture keeps the committed tampered stream failing: ci.sh feeds
// it to sftverify and requires exit 1, so it must never start verifying.
func TestTamperFixture(t *testing.T) {
	data, err := os.ReadFile("testdata/tampered_c17.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.VerifyChain(data); err == nil {
		t.Fatal("committed tampered fixture verifies clean")
	} else if !strings.Contains(err.Error(), "chain mismatch") {
		t.Fatalf("fixture fails for an unexpected reason: %v", err)
	}
}

func TestMerkleBatchBounds(t *testing.T) {
	// One event, huge batch: Close must seal the partial batch.
	var buf bytes.Buffer
	w := ledger.NewWriterSize(&buf, 1000)
	if err := w.Append(obs.Event{Type: "run_start"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ledger.VerifyChain(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 1 || res.Batches != 1 || !res.Final {
		t.Fatalf("got %+v", res)
	}
	// Zero events: still a sealed, verifiable (empty) ledger.
	var empty bytes.Buffer
	w = ledger.NewWriterSize(&empty, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = ledger.VerifyChain(empty.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 0 || res.Batches != 0 || !res.Final {
		t.Fatalf("empty ledger: %+v", res)
	}
	if err := w.Append(obs.Event{Type: "late"}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func ExampleVerifyChain() {
	var buf bytes.Buffer
	w := ledger.NewWriter(&buf)
	w.Append(obs.Event{Type: "run_start", Tool: "sft"})
	w.Append(obs.Event{Type: "run_end"})
	w.Close()
	res, err := ledger.VerifyChain(buf.Bytes())
	fmt.Println(err, res.Events, res.Final)
	// Output: <nil> 2 true
}
