//go:build go1.1

package loadedge

// taggedConst proves always-true build constraints keep their file in the
// package: loadedge.go references it.
const taggedConst = 1
