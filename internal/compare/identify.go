package compare

import (
	"math/rand"
	"sync"

	"compsynth/internal/logic"
)

// Identification of comparison functions.
//
// The naive method of Section 3.4 tries all n! permutations at O(2^n) each.
// The exact search below removes the n! factor the way the paper's
// Hamiltonian-path remark suggests: it picks the most significant variable
// first and recurses on the cofactors, using the fact that an interval onset
// decomposes as
//
//	f1 = 0            and f0 an interval, or
//	f0 = 0            and f1 an interval, or
//	f0 a suffix (>=L) and f1 a prefix (<=U) over a COMMON remaining order.
//
// Suffix and prefix sets decompose similarly, so inconsistent orders are
// pruned immediately instead of being enumerated.
//
// The recursion runs entirely on pooled scratch: cofactors keep the full
// table width (the chosen half is duplicated, so each level's tables fit
// fixed per-depth slots — see logic.CofactorKeepInto), the permutation is
// assembled top-down in one buffer, and L/U accumulate on the way down.
// Identification is the innermost hot loop of resynthesis; a warm search
// that finds nothing allocates nothing.

// Identify returns a Spec for f if f is a comparison function with its
// onset forming the interval (Complement = false). The constant-0 function
// is not a comparison function; constant-1 is (the full interval).
func Identify(f logic.TT) (Spec, bool) {
	var found Spec
	ok := false
	enumerate(f, false, func(s Spec) bool {
		found, ok = s, true
		return false // stop at the first spec
	})
	return found, ok
}

// IdentifyBest tries the onset first and, failing that, the offset: if the
// complement of f is a comparison function, f is implemented as a comparison
// unit followed by an inverter (Complement = true), as done in the paper's
// experiments.
func IdentifyBest(f logic.TT) (Spec, bool) {
	s, ok := identifyBest(f)
	return s, countIdentify(ok)
}

func identifyBest(f logic.TT) (Spec, bool) {
	if f.IsConst(false) || f.IsConst(true) {
		// Constants are not implemented as units; resynthesis folds them.
		if f.IsConst(true) {
			return Identify(f)
		}
		return Spec{}, false
	}
	if s, ok := Identify(f); ok {
		return s, true
	}
	var found Spec
	ok := false
	enumerateNot(f, func(s Spec) bool {
		found, ok = s, true
		return false
	})
	return found, ok
}

// IdentifyAll enumerates up to limit distinct Specs realizing f (onset
// forms, then complemented forms). Useful for picking the cheapest unit.
func IdentifyAll(f logic.TT, limit int) []Spec {
	var specs []Spec
	seen := map[string]bool{}
	add := func(s Spec) bool {
		k := s.String()
		if !seen[k] {
			seen[k] = true
			specs = append(specs, s)
		}
		return len(specs) < limit
	}
	enumerate(f, false, add)
	if len(specs) < limit && !f.IsConst(false) && !f.IsConst(true) {
		enumerateNot(f, add)
	}
	return specs
}

// searchCtx is the pooled working set of one exact search over n variables:
// per-depth cofactor slots (full-width tables), per-depth remaining-variable
// slices, and the output permutation buffer filled top-down. Contexts are
// pooled per variable count so concurrent identifications do not contend.
type searchCtx struct {
	n    int
	perm []int // perm[:depth] holds the chosen variables so far
	rem0 []int // initial remaining set {0..n-1}
	neg  logic.TT
	fr   []searchFrame // frame d serves recursion depth d
	emit func(perm []int, l, u int) bool
}

// searchFrame holds one depth's scratch: up to four cofactors (the split
// search needs fs0, fs1, fp0, fp1) and the remaining-variable slice passed
// to the next depth.
type searchFrame struct {
	t    [4]logic.TT
	rest []int
}

var ctxPools [logic.MaxVars + 1]sync.Pool

func getCtx(n int) *searchCtx {
	if c, ok := ctxPools[n].Get().(*searchCtx); ok {
		return c
	}
	c := &searchCtx{
		n:    n,
		perm: make([]int, n),
		rem0: make([]int, n),
		neg:  logic.New(n),
		fr:   make([]searchFrame, n),
	}
	for i := range c.rem0 {
		c.rem0[i] = i
	}
	for d := range c.fr {
		for s := range c.fr[d].t {
			c.fr[d].t[s] = logic.New(n)
		}
		c.fr[d].rest = make([]int, 0, n)
	}
	return c
}

func putCtx(c *searchCtx) {
	c.emit = nil
	ctxPools[c.n].Put(c)
}

// enumerate calls emit for every (perm, L, U) realization of f's onset as an
// interval. emit returns false to stop. complement is recorded in the Spec.
func enumerate(f logic.TT, complement bool, emit func(Spec) bool) {
	n := f.Vars()
	cx := getCtx(n)
	cx.emit = func(perm []int, l, u int) bool {
		s := Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u, Complement: complement}
		return emit(s)
	}
	cx.interval(f, cx.rem0, 0, 0, 0)
	putCtx(cx)
}

// enumerateNot enumerates complemented realizations without allocating the
// negated table separately: the context's spare full-width slot holds it.
func enumerateNot(f logic.TT, emit func(Spec) bool) {
	n := f.Vars()
	cx := getCtx(n)
	f.NotInto(cx.neg)
	cx.emit = func(perm []int, l, u int) bool {
		s := Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u, Complement: true}
		return emit(s)
	}
	cx.interval(cx.neg, cx.rem0, 0, 0, 0)
	putCtx(cx)
}

// emitLeaf completes the permutation with the remaining variables in their
// current order and reports (L, U).
func (cx *searchCtx) emitLeaf(rem []int, depth, l, u int) bool {
	copy(cx.perm[depth:], rem)
	return cx.emit(cx.perm[:depth+len(rem)], l, u)
}

// interval enumerates orders making f's onset the interval [L,U]. rem maps
// current slots to original variable positions (0-based); depth is the
// number of variables already fixed; lAcc/uAcc carry the high bits of L and
// U chosen so far. Returns false when an emit aborted the whole search.
//
// f is a full-width table that depends only on variables in rem.
func (cx *searchCtx) interval(f logic.TT, rem []int, depth, lAcc, uAcc int) bool {
	k := len(rem)
	if f.IsConst(false) {
		return true // empty onset: not an interval
	}
	if f.IsConst(true) {
		return cx.emitLeaf(rem, depth, lAcc, uAcc+1<<k-1)
	}
	// k >= 1 here since non-constant.
	fr := &cx.fr[depth]
	f0, f1 := fr.t[0], fr.t[1]
	for p := 0; p < k; p++ {
		f.CofactorKeepInto(f0, rem[p]+1, false)
		f.CofactorKeepInto(f1, rem[p]+1, true)
		rest := restInto(fr.rest[:0], rem, p)
		half := 1 << (k - 1)
		cx.perm[depth] = rem[p]
		switch {
		case f1.IsConst(false):
			if !cx.interval(f0, rest, depth+1, lAcc, uAcc) {
				return false
			}
		case f0.IsConst(false):
			if !cx.interval(f1, rest, depth+1, lAcc+half, uAcc+half) {
				return false
			}
		default:
			if !cx.split(f0, f1, rest, depth+1, lAcc, uAcc+half) {
				return false
			}
		}
	}
	return true
}

// split enumerates common orders under which fs is a suffix set
// ({m : m >= L}) and fp a prefix set ({m : m <= U}) simultaneously.
// Preconditions: fs and fp are non-constant-0 functions over rem.
func (cx *searchCtx) split(fs, fp logic.TT, rem []int, depth, lAcc, uAcc int) bool {
	k := len(rem)
	if k == 0 {
		// Single minterm each; both non-0 means both are {0}: L=0, U=0.
		return cx.emitLeaf(nil, depth, lAcc, uAcc)
	}
	sConst1 := fs.IsConst(true)
	pConst1 := fp.IsConst(true)
	if sConst1 && pConst1 {
		return cx.emitLeaf(rem, depth, lAcc, uAcc+1<<k-1)
	}
	if sConst1 {
		// Only the prefix constraint remains; L's low bits are 0.
		return cx.prefix(fp, rem, depth, lAcc, uAcc)
	}
	if pConst1 {
		// Only the suffix constraint remains; U's low bits are all 1.
		return cx.suffix(fs, rem, depth, lAcc, uAcc+1<<k-1)
	}
	fr := &cx.fr[depth]
	fs0, fs1, fp0, fp1 := fr.t[0], fr.t[1], fr.t[2], fr.t[3]
	for p := 0; p < k; p++ {
		fs.CofactorKeepInto(fs0, rem[p]+1, false)
		fs.CofactorKeepInto(fs1, rem[p]+1, true)
		fp.CofactorKeepInto(fp0, rem[p]+1, false)
		fp.CofactorKeepInto(fp1, rem[p]+1, true)
		rest := restInto(fr.rest[:0], rem, p)
		half := 1 << (k - 1)
		cx.perm[depth] = rem[p]

		// Suffix side: either l-bit = 0 (fs1 = 1, fs0 suffix) or
		// l-bit = 1 (fs0 = 0, fs1 suffix).
		// Prefix side: either u-bit = 1 (fp0 = 1, fp1 prefix) or
		// u-bit = 0 (fp1 = 0, fp0 prefix).
		type branch struct {
			fsRest, fpRest logic.TT
			lAdd, uAdd     int
			okS, okP       bool
		}
		branches := [4]branch{
			{fs0, fp1, 0, half, fs1.IsConst(true), fp0.IsConst(true)},
			{fs0, fp0, 0, 0, fs1.IsConst(true), fp1.IsConst(false)},
			{fs1, fp1, half, half, fs0.IsConst(false), fp0.IsConst(true)},
			{fs1, fp0, half, 0, fs0.IsConst(false), fp1.IsConst(false)},
		}
		for _, b := range branches {
			if !b.okS || !b.okP {
				continue
			}
			if b.fsRest.IsConst(false) || b.fpRest.IsConst(false) {
				continue // suffix/prefix sets must stay non-empty
			}
			if !cx.split(b.fsRest, b.fpRest, rest, depth+1, lAcc+b.lAdd, uAcc+b.uAdd) {
				return false
			}
		}
	}
	return true
}

// suffix enumerates orders making f = {m : m >= L}, f not constant-0. The
// final U is already fixed by the caller.
func (cx *searchCtx) suffix(f logic.TT, rem []int, depth, lAcc, uFinal int) bool {
	k := len(rem)
	if f.IsConst(true) {
		return cx.emitLeaf(rem, depth, lAcc, uFinal)
	}
	if k == 0 || f.IsConst(false) {
		return true
	}
	fr := &cx.fr[depth]
	f0, f1 := fr.t[0], fr.t[1]
	for p := 0; p < k; p++ {
		f.CofactorKeepInto(f0, rem[p]+1, false)
		f.CofactorKeepInto(f1, rem[p]+1, true)
		rest := restInto(fr.rest[:0], rem, p)
		half := 1 << (k - 1)
		cx.perm[depth] = rem[p]
		if f1.IsConst(true) && !f0.IsConst(false) {
			if !cx.suffix(f0, rest, depth+1, lAcc, uFinal) {
				return false
			}
		}
		if f0.IsConst(false) && !f1.IsConst(false) {
			if !cx.suffix(f1, rest, depth+1, lAcc+half, uFinal) {
				return false
			}
		}
	}
	return true
}

// prefix enumerates orders making f = {m : m <= U}, f not constant-0. The
// final L is already fixed by the caller.
func (cx *searchCtx) prefix(f logic.TT, rem []int, depth, lFinal, uAcc int) bool {
	k := len(rem)
	if f.IsConst(true) {
		return cx.emitLeaf(rem, depth, lFinal, uAcc+1<<k-1)
	}
	if k == 0 || f.IsConst(false) {
		return true
	}
	fr := &cx.fr[depth]
	f0, f1 := fr.t[0], fr.t[1]
	for p := 0; p < k; p++ {
		f.CofactorKeepInto(f0, rem[p]+1, false)
		f.CofactorKeepInto(f1, rem[p]+1, true)
		rest := restInto(fr.rest[:0], rem, p)
		half := 1 << (k - 1)
		cx.perm[depth] = rem[p]
		if f0.IsConst(true) && !f1.IsConst(false) {
			if !cx.prefix(f1, rest, depth+1, lFinal, uAcc+half) {
				return false
			}
		}
		if f1.IsConst(false) && !f0.IsConst(false) {
			if !cx.prefix(f0, rest, depth+1, lFinal, uAcc) {
				return false
			}
		}
	}
	return true
}

// restInto writes rem minus slot p into dst (len 0, adequate capacity).
func restInto(dst, rem []int, p int) []int {
	dst = append(dst, rem[:p]...)
	return append(dst, rem[p+1:]...)
}

func restVars(vars []int, p int) []int {
	rest := make([]int, 0, len(vars)-1)
	rest = append(rest, vars[:p]...)
	return append(rest, vars[p+1:]...)
}

func prepend(v int, perm []int) []int {
	return append([]int{v}, perm...)
}

// IdentifySampling is the paper's experimental identification method: it
// tries up to maxPerms permutations of the inputs (the identity first, then
// random shuffles) and checks whether the onset or the offset minterms are
// consecutive under each. rng may be nil for a fixed default seed.
func IdentifySampling(f logic.TT, maxPerms int, rng *rand.Rand) (Spec, bool) {
	s, ok := identifySampling(f, maxPerms, rng)
	return s, countIdentify(ok)
}

func identifySampling(f logic.TT, maxPerms int, rng *rand.Rand) (Spec, bool) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1995))
	}
	n := f.Vars()
	if f.IsConst(false) {
		return Spec{}, false
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Permuted and negated tables reuse two scratch slots across all trials.
	g, ng := logic.New(n), logic.New(n)
	for t := 0; t < maxPerms; t++ {
		if t > 0 {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		f.PermuteInto(g, perm)
		if l, u, ok := g.IsInterval(); ok {
			return Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u}, true
		}
		g.NotInto(ng)
		if l, u, ok := ng.IsInterval(); ok {
			return Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u, Complement: true}, true
		}
	}
	return Spec{}, false
}

// IsComparison reports whether f is a comparison function (onset form).
func IsComparison(f logic.TT) bool {
	_, ok := Identify(f)
	return ok
}
