package simulate

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/gen"
)

// TestEquivalentRandomMatchesRef pins the CSR-backed equivalence checker to
// the pre-CSR reference: same circuits, same seeds, same verdicts, through
// both the exhaustive and the random-rounds path.
func TestEquivalentRandomMatchesRef(t *testing.T) {
	c17a, _ := bench.ParseString(bench.C17, "a")
	c17b, _ := bench.ParseString(bench.C17, "b")
	// Exhaustive path (5 inputs <= maxExhaustive).
	if got, want := EquivalentRandom(c17a, c17b, 8, 10, 1), RefEquivalentRandom(c17a, c17b, 8, 10, 1); got != want {
		t.Fatalf("exhaustive equal pair: %v vs ref %v", got, want)
	}
	swapFirstNandForNor(c17b)
	if got, want := EquivalentRandom(c17a, c17b, 8, 10, 1), RefEquivalentRandom(c17a, c17b, 8, 10, 1); got != want {
		t.Fatalf("exhaustive mutated pair: %v vs ref %v", got, want)
	}

	// Random-rounds path (18 inputs > maxExhaustive) over several seeds.
	p := gen.Params{Name: "r", Inputs: 18, Outputs: 6, Gates: 90, Layers: 6,
		MaxFanin: 3, Locality: 0.7, Seed: 21}
	a := gen.Random(p)
	b := gen.Random(p)
	for seed := int64(1); seed <= 5; seed++ {
		if got, want := EquivalentRandom(a, b, 4, 8, seed), RefEquivalentRandom(a, b, 4, 8, seed); got != want {
			t.Fatalf("random equal pair seed %d: %v vs ref %v", seed, got, want)
		}
	}
	swapFirstNandForNor(b)
	for seed := int64(1); seed <= 5; seed++ {
		if got, want := EquivalentRandom(a, b, 4, 8, seed), RefEquivalentRandom(a, b, 4, 8, seed); got != want {
			t.Fatalf("random mutated pair seed %d: %v vs ref %v", seed, got, want)
		}
	}
}
