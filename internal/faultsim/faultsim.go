// Package faultsim is a parallel-pattern single-fault-propagation stuck-at
// fault simulator in the style of FSIM [17]: 64 patterns are simulated per
// word; each undetected fault is injected and propagated event-driven
// through its fanout cone only, with early exit when the effect dies out.
//
// Simulation runs on the circuit's frozen CSR view (circuit.Freeze): dense
// int32 ids, flat adjacency, level-ordered nodes. Dense id order is itself
// a topological order, so the event queue pops the smallest dense id where
// it used to pop the smallest cached-topo position. The detection words are
// identical either way: with pop-smallest under any valid topological
// order, a node is evaluated at most once per fault and only after every
// faulty fanin has settled (a fanin can never be queued after its consumer
// popped in an acyclic circuit), so each PO accumulates exactly the final
// good-xor-faulty difference.
package faultsim

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/obs"
	"compsynth/internal/par"
)

// blockGrain is the minimum number of undetected faults in a block worth
// fanning out over workers; smaller blocks run inline on the calling
// goroutine.
const blockGrain = 128

// Simulation metrics (batched adds: one per 64-pattern block).
var (
	mPatterns  = obs.C("faultsim.patterns_simulated")
	mFaultEval = obs.C("faultsim.fault_evals")
	mDetected  = obs.C("faultsim.faults_detected")
	gBlocks    = obs.G("faultsim.blocks_done")
)

// Simulator simulates one circuit snapshot. All per-node state is indexed
// by dense CSR id.
type Simulator struct {
	c       *circuit.Circuit
	v       *circuit.CSR
	good    []uint64
	cur     []uint64
	dirty   []bool
	touched []int32
	inQueue []bool
	queue   []int32
	buf     []uint64
	po      []bool // dense PO-driver mask
}

// New builds a simulator for c's current state.
func New(c *circuit.Circuit) *Simulator {
	s := &Simulator{}
	s.Reset(c)
	return s
}

// Reset rebinds the simulator to c's current state, reusing all buffers.
// This is the pooling seam: Campaign recycles simulators across calls
// instead of allocating five node-sized arrays each time.
func (s *Simulator) Reset(c *circuit.Circuit) {
	s.c = c
	s.v = c.Freeze()
	n := s.v.N()
	s.good = growU64(s.good, n)
	s.sizeScratch(n)
	s.po = growBool(s.po, n)
	for i := range s.po {
		s.po[i] = false
	}
	for _, o := range s.v.Out {
		s.po[o] = true
	}
}

// sizeScratch (re)sizes and clears the private fault-propagation state.
func (s *Simulator) sizeScratch(n int) {
	s.cur = growU64(s.cur, n)
	s.dirty = growBool(s.dirty, n)
	s.inQueue = growBool(s.inQueue, n)
	for i := 0; i < n; i++ {
		s.dirty[i] = false
		s.inQueue[i] = false
	}
	s.touched = s.touched[:0]
	s.queue = s.queue[:0]
}

// attach turns s into a fork of parent: circuit view, good values and PO
// mask shared read-only, propagation scratch private.
func (s *Simulator) attach(parent *Simulator) {
	s.c, s.v = parent.c, parent.v
	s.good, s.po = parent.good, parent.po
	s.sizeScratch(parent.v.N())
}

// SetInputs loads one 64-pattern block: words[j] drives primary input j.
func (s *Simulator) SetInputs(words []uint64) {
	for j, in := range s.v.In {
		s.good[in] = words[j]
	}
}

// RunGood computes the fault-free values for the current block.
func (s *Simulator) RunGood() {
	v := s.v
	for d := 0; d < v.N(); d++ {
		k := v.Kind[d]
		if k == circuit.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range v.FaninOf(int32(d)) {
			s.buf = append(s.buf, s.good[f])
		}
		s.good[d] = k.EvalWords(s.buf)
	}
}

// GoodWord returns the fault-free word of sparse node id.
func (s *Simulator) GoodWord(id int) uint64 { return s.good[s.v.DenseOf[id]] }

// Fork returns a simulator for concurrent DetectWord calls on the same
// block: circuit structure and the good-value words are shared read-only
// with s, while the fault-propagation scratch state (cur, dirty, queue) is
// private. Forks must not call SetInputs or RunGood — load each block
// through the parent, then detect through the forks.
func (s *Simulator) Fork() *Simulator {
	f := &Simulator{}
	f.attach(s)
	return f
}

// DetectWord simulates fault f against the current block and returns the
// 64-bit word of patterns that detect it (difference observed at any PO).
func (s *Simulator) DetectWord(f faults.Fault) uint64 {
	// Faulty values start equal to good values; cur is restored lazily via
	// the touched list.
	var detected uint64
	v := s.v
	s.queue = s.queue[:0]

	inject := func(d int32, w uint64) {
		if w == s.good[d] && !s.dirty[d] {
			return
		}
		s.cur[d] = w
		if !s.dirty[d] {
			s.dirty[d] = true
			s.touched = append(s.touched, d)
		}
		if s.po[d] {
			detected |= w ^ s.good[d]
		}
		for _, consumer := range v.FanoutOf(d) {
			s.push(consumer)
		}
	}

	faultyWord := uint64(0)
	if f.Stuck {
		faultyWord = ^uint64(0)
	}

	site := v.DenseOf[f.Node]
	if f.Pin < 0 {
		inject(site, faultyWord)
	} else {
		// Branch fault: re-evaluate the consuming gate with the pin forced.
		s.buf = s.buf[:0]
		for pin, fn := range v.FaninOf(site) {
			w := s.good[fn]
			if pin == f.Pin {
				w = faultyWord
			}
			s.buf = append(s.buf, w)
		}
		inject(site, v.Kind[site].EvalWords(s.buf))
	}

	for len(s.queue) > 0 {
		// Pop the topologically smallest queued node.
		d := s.pop()
		s.buf = s.buf[:0]
		for _, fn := range v.FaninOf(d) {
			s.buf = append(s.buf, s.val(fn))
		}
		w := v.Kind[d].EvalWords(s.buf)
		if w != s.val(d) {
			inject(d, w)
		}
	}

	// Restore.
	for _, d := range s.touched {
		s.dirty[d] = false
	}
	s.touched = s.touched[:0]
	return detected
}

// val returns the current (possibly faulty) word of a dense node.
func (s *Simulator) val(d int32) uint64 {
	if s.dirty[d] {
		return s.cur[d]
	}
	return s.good[d]
}

func (s *Simulator) push(d int32) {
	if s.inQueue[d] {
		return
	}
	s.inQueue[d] = true
	s.queue = append(s.queue, d)
}

func (s *Simulator) pop() int32 {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		if s.queue[i] < s.queue[best] {
			best = i
		}
	}
	d := s.queue[best]
	s.queue[best] = s.queue[len(s.queue)-1]
	s.queue = s.queue[:len(s.queue)-1]
	s.inQueue[d] = false
	return d
}

// CampaignResult summarizes a random-pattern campaign (Table 6 columns).
type CampaignResult struct {
	TotalFaults   int
	Detected      int
	Remaining     []faults.Fault
	LastEffective int // 1-based index of the last pattern that detected a new fault
	Patterns      int // patterns applied
}

// Coverage returns detected / total.
func (r CampaignResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// CampaignOptions configures a random-pattern campaign.
type CampaignOptions struct {
	Patterns int   // random patterns to apply (rounded up to blocks of 64)
	Seed     int64 // pattern generator seed

	// Workers bounds the goroutines detecting faults within each pattern
	// block (0 = runtime.GOMAXPROCS(0), 1 = serial). The undetected-fault
	// list is partitioned across workers, each propagating through its own
	// forked simulator over the shared good values; detection words land in
	// a fault-indexed slice and are merged serially, so the result is
	// bit-identical for every worker count.
	Workers int

	// Tracer, when non-nil, wraps the campaign in a span.
	Tracer *obs.Tracer
}

// campaignState is the pooled per-campaign allocation bundle: simulators,
// the RNG (a math/rand source is a ~5KB allocation), the working fault list
// and the per-block scratch. Reseeding and Reset/attach on every acquisition
// keep campaigns pure functions of (circuit, faults, options).
type campaignState struct {
	sims   []*Simulator
	words  []uint64
	detect []uint64
	rem    []faults.Fault
	rng    *rand.Rand
}

var campPool = sync.Pool{
	New: func() any { return &campaignState{rng: rand.New(rand.NewSource(0))} },
}

// RunRandom applies maxPatterns random patterns (rounded up to blocks of 64)
// to the collapsed fault list and reports detection statistics. The same
// seed yields the same pattern sequence for circuits with equal input
// counts, mirroring the paper's before/after comparison methodology.
func RunRandom(c *circuit.Circuit, fl []faults.Fault, maxPatterns int, seed int64) CampaignResult {
	return Campaign(c, fl, CampaignOptions{Patterns: maxPatterns, Seed: seed})
}

// Campaign is RunRandom with explicit options (tracing in particular).
func Campaign(c *circuit.Circuit, fl []faults.Fault, opt CampaignOptions) CampaignResult {
	sp := opt.Tracer.StartSpan("faultsim.campaign")
	defer sp.End()
	sp.SetInt("faults", int64(len(fl)))
	cs := campPool.Get().(*campaignState)
	defer campPool.Put(cs)
	w := par.Workers(opt.Workers)
	sp.SetInt("workers", int64(w))
	for len(cs.sims) < w {
		cs.sims = append(cs.sims, &Simulator{})
	}
	sims := cs.sims
	s := sims[0]
	s.Reset(c)
	for i := 1; i < w; i++ {
		sims[i].attach(s)
	}
	cs.rng.Seed(opt.Seed)
	remaining := append(cs.rem[:0], fl...)
	cs.rem = remaining[:0]
	res := CampaignResult{TotalFaults: len(fl)}
	words := growU64(cs.words, len(c.Inputs))
	cs.words = words
	detect := growU64(cs.detect, len(remaining))
	cs.detect = detect
	blocks := (opt.Patterns + 63) / 64
	// One closure for every block's par.Run: it reads the current partition
	// through rem, so reusing it costs nothing and saves an allocation per
	// block.
	var rem []faults.Fault
	detectOne := func(worker, i int) {
		detect[i] = sims[worker].DetectWord(rem[i])
	}
	for b := 0; b < blocks && len(remaining) > 0; b++ {
		for j := range words {
			words[j] = cs.rng.Uint64()
		}
		s.SetInputs(words)
		s.RunGood()
		mPatterns.Add(64)
		mFaultEval.Add(int64(len(remaining)))
		// Detect in parallel into the fault-indexed slice (DetectWord is a
		// pure function of the fault and the shared good block), then merge
		// serially in fault order: Detected, Remaining and LastEffective
		// come out exactly as in the serial loop. Campaign tails with few
		// undetected faults run inline — the goroutine spawn would cost
		// more than the block; the threshold only reschedules work, it
		// cannot change results. The nil tracer keeps the per-block
		// fan-out from flooding the span buffer.
		rem = remaining
		bw := w
		if len(rem) < blockGrain {
			bw = 1
		}
		par.Run(nil, "faultsim.block", bw, len(rem), detectOne)
		kept := remaining[:0]
		for i, f := range remaining {
			d := detect[i]
			if d == 0 {
				kept = append(kept, f)
				continue
			}
			res.Detected++
			first := b*64 + lowestBit(d) + 1
			if first > res.LastEffective {
				res.LastEffective = first
			}
		}
		remaining = kept
		// Per-block completion for the live gauge and the flight recorder
		// (the recorder throttles; off path is one atomic store + load).
		gBlocks.Set(int64(b + 1))
		obs.EmitProgress("faultsim.blocks", int64(b+1), int64(blocks))
	}
	res.Remaining = append([]faults.Fault(nil), remaining...)
	res.Patterns = blocks * 64
	mDetected.Add(int64(res.Detected))
	sp.SetInt("patterns", int64(res.Patterns))
	sp.SetInt("detected", int64(res.Detected))
	return res
}

func lowestBit(w uint64) int {
	return bits.TrailingZeros64(w)
}

// DetectedBy reports whether pattern pi (one bool per input) detects fault f.
func DetectedBy(c *circuit.Circuit, f faults.Fault, pi []bool) bool {
	s := New(c)
	words := make([]uint64, len(pi))
	for j, v := range pi {
		if v {
			words[j] = 1
		}
	}
	s.SetInputs(words)
	s.RunGood()
	return s.DetectWord(f)&1 != 0
}

// SortFaults orders a fault list deterministically (test helper).
func SortFaults(fl []faults.Fault) {
	sort.Slice(fl, func(i, j int) bool {
		a, b := fl[i], fl[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.Stuck && b.Stuck
	})
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n, n+n/2+8)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n, n+n/2+8)
	}
	return s[:n]
}
