package atpg

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	"compsynth/internal/gen"
)

func TestGenerateOnC17AllTestable(t *testing.T) {
	// c17 is irredundant: every collapsed fault has a test, and each
	// generated test must actually detect its fault.
	c, _ := bench.ParseString(bench.C17, "c17")
	for _, f := range faults.Collapse(c) {
		res := Generate(c, f, Options{})
		if res.Status != Testable {
			t.Fatalf("fault %v: %v", f, res.Status)
		}
		if !faultsim.DetectedBy(c, f, res.Test) {
			t.Fatalf("fault %v: generated test %v does not detect it", f, res.Test)
		}
	}
}

func TestGenerateProvesRedundancy(t *testing.T) {
	// f = a OR (a AND b): AND-output sa0 is undetectable.
	c := circuit.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, g1)
	c.MarkOutput(g2)
	res := Generate(c, faults.Fault{Node: g1, Pin: -1, Stuck: false}, Options{})
	if res.Status != Redundant {
		t.Fatalf("expected redundant, got %v (test %v)", res.Status, res.Test)
	}
	// The same line sa1 is testable (a=0, b=0 gives out 0 vs 1 faulty...
	// check: good g1=0, out=a=0; faulty g1=1, out=1).
	res = Generate(c, faults.Fault{Node: g1, Pin: -1, Stuck: true}, Options{})
	if res.Status != Testable {
		t.Fatalf("sa1 should be testable, got %v", res.Status)
	}
	if !faultsim.DetectedBy(c, faults.Fault{Node: g1, Pin: -1, Stuck: true}, res.Test) {
		t.Fatal("test does not detect g1 sa1")
	}
}

func TestGenerateBranchFault(t *testing.T) {
	// a fans out to AND(a,b) and OR(a,b): branch faults are distinct.
	c := circuit.New("br")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, b)
	c.MarkOutput(g1)
	c.MarkOutput(g2)
	for _, f := range []faults.Fault{
		{Node: g1, Pin: 0, Stuck: false},
		{Node: g1, Pin: 0, Stuck: true},
		{Node: g2, Pin: 0, Stuck: false},
		{Node: g2, Pin: 0, Stuck: true},
	} {
		res := Generate(c, f, Options{})
		if res.Status != Testable {
			t.Fatalf("branch fault %v: %v", f, res.Status)
		}
		if !faultsim.DetectedBy(c, f, res.Test) {
			t.Fatalf("branch fault %v: test %v misses", f, res.Test)
		}
	}
}

func TestGenerateAgreesWithFaultSim(t *testing.T) {
	// Cross-validation on random circuits: any fault PODEM calls testable
	// must be detected by its own test; any fault random simulation detects
	// must not be called redundant.
	for _, bn := range gen.SmallSuite()[:2] {
		c := bn.Build()
		fl := faults.Collapse(c)
		sim := faultsim.RunRandom(c, fl, 2048, 5)
		detected := map[faults.Fault]bool{}
		remaining := map[faults.Fault]bool{}
		for _, f := range sim.Remaining {
			remaining[f] = true
		}
		for _, f := range fl {
			if !remaining[f] {
				detected[f] = true
			}
		}
		for _, f := range fl {
			res := Generate(c, f, Options{BacktrackLimit: 3000})
			switch res.Status {
			case Testable:
				if !faultsim.DetectedBy(c, f, res.Test) {
					t.Fatalf("%s: fault %v test %v does not detect", bn.Name, f, res.Test)
				}
			case Redundant:
				if detected[f] {
					t.Fatalf("%s: fault %v proved redundant but random-sim detected it", bn.Name, f)
				}
			}
		}
	}
}

func TestGenerateXorChain(t *testing.T) {
	// Parity trees exercise the no-controlling-value paths.
	c := circuit.New("x")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.Xor, "", a, b)
	g2 := c.AddGate(circuit.Xnor, "", g1, d)
	c.MarkOutput(g2)
	for _, f := range faults.Collapse(c) {
		res := Generate(c, f, Options{})
		if res.Status != Testable {
			t.Fatalf("xor fault %v: %v", f, res.Status)
		}
		if !faultsim.DetectedBy(c, f, res.Test) {
			t.Fatalf("xor fault %v: bad test", f)
		}
	}
}

func TestValueAlgebra(t *testing.T) {
	if D.good() != 1 || D.bad() != 0 || Dbar.good() != 0 || Dbar.bad() != 1 {
		t.Fatal("D semantics wrong")
	}
	if fromPair(1, 0) != D || fromPair(0, 1) != Dbar || fromPair(1, 1) != One ||
		fromPair(0, 0) != Zero || fromPair(-1, 0) != X {
		t.Fatal("fromPair wrong")
	}
	if X.String() != "X" || D.String() != "D" || Dbar.String() != "D'" {
		t.Fatal("String wrong")
	}
}

func TestConstantFaultInfeasible(t *testing.T) {
	// A fault requiring a constant to take its opposite value is redundant.
	c := circuit.New("k")
	a := c.AddInput("a")
	one := c.AddGate(circuit.Const1, "")
	g := c.AddGate(circuit.And, "g", a, one)
	c.MarkOutput(g)
	// Branch fault: pin 1 (the constant) stuck at 1 is unexcitable.
	res := Generate(c, faults.Fault{Node: g, Pin: 1, Stuck: true}, Options{})
	if res.Status != Redundant {
		t.Fatalf("const-equal stuck fault: %v", res.Status)
	}
}

func TestGenerateAbortsOnTinyLimit(t *testing.T) {
	// A hard redundant fault with backtrack limit 1 must abort (or prove
	// redundancy if the space is that small), never loop.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, g1)
	g3 := c.AddGate(circuit.And, "g3", g2, d)
	c.MarkOutput(g3)
	res := Generate(c, faults.Fault{Node: g1, Pin: -1, Stuck: false}, Options{BacktrackLimit: 1})
	if res.Status == Testable {
		t.Fatalf("redundant fault reported testable")
	}
}

func TestStatusStrings(t *testing.T) {
	if Testable.String() != "testable" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Fatal("status strings wrong")
	}
}
