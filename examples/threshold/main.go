// Threshold-function view (Section 3.1): a >=L comparison block is the
// threshold gate with binary weights and T = L; a <=U block is the
// complemented gate with T = U+1; their AND is the comparison function.
package main

import (
	"fmt"

	"compsynth/internal/compare"
	"compsynth/internal/logic"
	"compsynth/internal/threshold"
)

func main() {
	const n, l, u = 4, 5, 10

	geq := threshold.GeqGate(n, l)
	leqC := threshold.LeqGateComplement(n, u)
	fmt.Printf(">=L block as threshold gate:  %v\n", geq)
	fmt.Printf("<=U block as complemented:    %v\n", leqC)

	composed := threshold.UnitTable(n, l, u)
	direct := logic.FromInterval(n, l, u)
	fmt.Printf("\ncomposed table: %s\n", composed)
	fmt.Printf("interval table: %s\n", direct)
	fmt.Printf("equal: %v\n", composed.Equal(direct))

	// The gate-level comparison unit realizes the same function.
	spec := compare.Spec{N: n, Perm: []int{0, 1, 2, 3}, L: l, U: u}
	unit := spec.BuildStandalone("unit", compare.BuildOptions{Merge: true})
	match := true
	for m := 0; m < 1<<n; m++ {
		in := make([]bool, n)
		for j := 0; j < n; j++ {
			in[j] = m&(1<<(n-1-j)) != 0
		}
		if unit.Eval(in)[0] != composed.Get(m) {
			match = false
		}
	}
	fmt.Printf("gate-level unit matches threshold composition: %v\n", match)

	// Threshold gates with positive weights are unate in every input.
	fmt.Printf("\n>=%d gate unate: %v\n", l, threshold.IsUnate(geq))
}
