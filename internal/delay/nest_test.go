package delay

import (
	"math/rand"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/gen"
)

func TestCountRobustPairMatchesEnumeration(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	ps := EnumeratePaths(c, 0)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		v1 := make([]bool, 5)
		v2 := make([]bool, 5)
		for j := range v1 {
			v1[j] = rng.Intn(2) == 1
			v2[j] = rng.Intn(2) == 1
		}
		want := uint64(0)
		for _, p := range ps {
			if PathRobust(c, p.Nodes, p.Pins, v1, v2) {
				want++
			}
		}
		if got := CountRobustPair(c, v1, v2); got != want {
			t.Fatalf("trial %d: DP count %d, enumeration %d", trial, got, want)
		}
	}
}

func TestCountRobustPairRandomCircuits(t *testing.T) {
	for _, b := range gen.SmallSuite()[:2] {
		c := b.Build()
		ps := EnumeratePaths(c, 0)
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 25; trial++ {
			v1 := make([]bool, len(c.Inputs))
			v2 := make([]bool, len(c.Inputs))
			for j := range v1 {
				v1[j] = rng.Intn(2) == 1
				v2[j] = rng.Intn(2) == 1
			}
			want := uint64(0)
			for _, p := range ps {
				if PathRobust(c, p.Nodes, p.Pins, v1, v2) {
					want++
				}
			}
			if got := CountRobustPair(c, v1, v2); got != want {
				t.Fatalf("%s trial %d: DP %d, enum %d", b.Name, trial, got, want)
			}
		}
	}
}

func TestEstimateBracketsExact(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	const pairs, seed = 2000, 11
	est := EstimateRandom(c, pairs, seed)
	exact := RunRandom(c, CampaignOptions{MaxPairs: pairs, Seed: seed})
	if est.TotalFaults != exact.TotalFaults {
		t.Fatalf("denominators differ: %d vs %d", est.TotalFaults, exact.TotalFaults)
	}
	if est.LowerBound > uint64(exact.Detected) {
		t.Fatalf("lower bound %d above exact %d", est.LowerBound, exact.Detected)
	}
	if est.UpperBound < uint64(exact.Detected) {
		t.Fatalf("upper bound %d below exact %d", est.UpperBound, exact.Detected)
	}
	if est.LowerCoverage() > est.UpperCoverage() {
		t.Fatal("bounds inverted")
	}
}

func TestEstimateScalesWithoutEnumeration(t *testing.T) {
	// A circuit whose path count would make hashing heavy still estimates
	// cheaply (no per-path state at all).
	c := gen.Suite(0.3)[4].Build() // rs15850 analog: path-rich
	est := EstimateRandom(c, 200, 3)
	if est.TotalFaults == 0 {
		t.Fatal("no faults")
	}
	if est.UpperBound > est.TotalFaults {
		t.Fatal("upper bound exceeds universe")
	}
}
