// Command tables regenerates the paper's experimental tables (Tables 2-7)
// on the synthetic benchmark suite.
//
// Usage:
//
//	tables [-table all|2|3|4|5|6|7] [-scale f] [-quick] [-seed n]
//	       [-patterns n] [-pairs n] [-circuits a,b,c] [-noverify]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"compsynth/internal/exper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		table    = flag.String("table", "all", "which table to regenerate (2..7 or all)")
		scale    = flag.Float64("scale", 1.0, "suite size multiplier")
		quick    = flag.Bool("quick", false, "fast smoke-test configuration")
		seed     = flag.Int64("seed", 1995, "campaign seed")
		patterns = flag.Int("patterns", 1<<20, "random patterns for Table 6")
		pairs    = flag.Int("pairs", 20000, "two-pattern budget for Table 7")
		circuits = flag.String("circuits", "", "comma-separated circuit filter")
		noverify = flag.Bool("noverify", false, "skip per-pass equivalence checks (faster)")
	)
	flag.Parse()

	cfg := exper.DefaultConfig()
	if *quick {
		cfg = exper.QuickConfig()
	}
	if *scale != 1.0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	if *patterns != 1<<20 {
		cfg.StuckPatterns = *patterns
	}
	if *pairs != 20000 {
		cfg.PDFPairs = *pairs
	}
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}
	cfg.Verify = !*noverify

	start := time.Now()
	fmt.Printf("# preparing suite (scale=%.2f, irredundant=%v)\n", cfg.Scale, cfg.MakeIrredundant)
	items, err := exper.PrepareSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	suite := exper.NewSuite(cfg, items)
	for _, nc := range items {
		fmt.Printf("#   %-10s %v\n", nc.Name, nc.Circuit.Stats())
	}
	fmt.Printf("# suite ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	want := func(t string) bool { return *table == "all" || *table == t }
	run := func(name string, f func() (string, error)) {
		if !want(name) {
			return
		}
		t0 := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("table %s: %v", name, err)
		}
		fmt.Print(out)
		fmt.Printf("# table %s in %v\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("2", func() (string, error) {
		rows, err := exper.Table2(suite)
		return exper.FormatTable2(rows), err
	})
	run("3", func() (string, error) {
		rows, err := exper.Table3(suite)
		return exper.FormatTable3(rows), err
	})
	run("4", func() (string, error) {
		a, b, err := exper.Table4(suite)
		return exper.FormatTable4(a, b), err
	})
	run("5", func() (string, error) {
		rows, err := exper.Table5(suite)
		return exper.FormatTable5(rows), err
	})
	run("6", func() (string, error) {
		rows, err := exper.Table6(suite)
		return exper.FormatTable6(rows), err
	})
	run("7", func() (string, error) {
		rows, err := exper.Table7(suite)
		return exper.FormatTable7(rows), err
	})
	if *table != "all" && !strings.ContainsAny(*table, "234567") {
		fmt.Fprintln(os.Stderr, "unknown table:", *table)
		os.Exit(2)
	}
	fmt.Printf("# total %v\n", time.Since(start).Round(time.Millisecond))
}
