// Package loadedge exercises the loader's and call-graph builder's edge
// cases: generic functions and their instantiations (explicit and
// inferred), method values, embedded interfaces, and per-file build
// constraints (tagged.go is included, ignored.go is excluded). It carries
// no violations — its job is to load cleanly; load_test.go asserts the
// details.
package loadedge

// Inner and Outer exercise embedded-interface method sets.
type Inner interface{ Name() string }

type Outer interface {
	Inner
	Extra() int
}

type impl struct{ n string }

func (i impl) Name() string { return i.n }
func (impl) Extra() int     { return 1 }

// Transform is generic: Use instantiates it by inference and explicitly.
func Transform[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// nameOf is a method value bound to a composite-literal receiver.
var nameOf = impl{n: "edge"}.Name

// Use touches every edge at once; taggedConst comes from tagged.go, so the
// package only type-checks if the build-tag evaluation included that file.
func Use(o Outer) []string {
	labels := Transform([]int{1, 2}, func(int) string { return nameOf() + o.Name() })
	widths := Transform[string, int](labels, func(s string) int { return len(s) + taggedConst })
	if len(widths) != len(labels) {
		return nil
	}
	return labels
}
