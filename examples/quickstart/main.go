// Quickstart: load a netlist, reduce its gate and path counts with
// Procedure 2, and verify the rewrite.
package main

import (
	"fmt"
	"log"
	"strings"

	"compsynth"
)

// A small multi-level circuit with an embedded comparison-function cone.
const netlist = `
# demo circuit
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(f)
OUTPUT(g)
na = NOT(a)
nb = NOT(b)
t1 = AND(na, b, d)
t2 = AND(a, nb)
t3 = AND(b, d)
s  = OR(t1, t2)
f  = OR(s, t3)
g  = NAND(s, c)
`

func main() {
	c, err := compsynth.ParseBench(strings.NewReader(netlist), "demo")
	if err != nil {
		log.Fatal(err)
	}
	p0, _ := compsynth.CountPaths(c)
	fmt.Printf("before: %v, %d paths\n", c.Stats(), p0)

	res, err := compsynth.OptimizeGates(c, 5) // Procedure 2, K=5
	if err != nil {
		log.Fatal(err)
	}
	p1, _ := compsynth.CountPaths(res.Circuit)
	fmt.Printf("after:  %v, %d paths\n", res.Circuit.Stats(), p1)
	fmt.Printf("run:    %v\n", res)

	if !compsynth.Equivalent(c, res.Circuit) {
		log.Fatal("rewrite changed the function!")
	}
	fmt.Println("equivalence verified")

	var sb strings.Builder
	if err := compsynth.WriteBench(&sb, res.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresynthesized netlist:")
	fmt.Print(sb.String())
}
