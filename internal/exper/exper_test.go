package exper

import (
	"strings"
	"testing"
)

// tinyConfig keeps the full pipeline affordable inside `go test`.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Scale = 0.08
	cfg.StuckPatterns = 1 << 12
	cfg.PDFPairs = 800
	cfg.PDFQuiet = 200
	cfg.Circuits = []string{"rs1423", "rs13207"}
	cfg.Ks = []int{5}
	return cfg
}

func TestPipelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test in -short mode")
	}
	cfg := tinyConfig()
	items, err := PrepareSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("filter broken: %d circuits", len(items))
	}
	suite := NewSuite(cfg, items)

	rows2, err := Table2(suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows2 {
		if r.GatesMod > r.GatesOrig {
			t.Fatalf("%s: Procedure 2 increased gates", r.Name)
		}
		if r.PathsMod > r.PathsOrig {
			t.Fatalf("%s: Procedure 2 increased paths", r.Name)
		}
	}
	out := FormatTable2(rows2)
	if !strings.Contains(out, "rs1423") {
		t.Fatal("format missing circuit name")
	}

	rows5, err := Table5(suite)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows5 {
		if r.PathsMod > r.PathsOrig {
			t.Fatalf("%s: Procedure 3 increased paths", r.Name)
		}
		// Table 5 vs Table 2: Procedure 3 is at least as good on paths.
		if r.PathsMod > rows2[i].PathsMod {
			t.Fatalf("%s: Procedure 3 (%d) worse on paths than Procedure 2 (%d)",
				r.Name, r.PathsMod, rows2[i].PathsMod)
		}
	}

	rows6, err := Table6(suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows6 {
		if r.FaultsMod > r.FaultsOrig {
			t.Fatalf("%s: fault universe grew", r.Name)
		}
	}

	rows3, err := Table3(suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows3 {
		if r.GatesRambo > r.GatesOrig {
			t.Fatalf("%s: baseline increased gates", r.Name)
		}
		if r.GatesCombo > uint64(r.GatesRambo) {
			t.Fatalf("%s: Proc.2 after baseline increased gates", r.Name)
		}
	}
	if out := FormatTable3(rows3); !strings.Contains(out, "rs13207") {
		t.Fatal("table 3 format missing circuit")
	}

	pa, pb, err := Table4(suite)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i].LitsA <= 0 || pa[i].LitsB <= 0 || pb[i].LitsA <= 0 {
			t.Fatal("degenerate mapping in table 4")
		}
	}
	if out := FormatTable4(pa, pb); !strings.Contains(out, "Technology mapping") {
		t.Fatal("table 4 format broken")
	}

	rows7, err := Table7(suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows7) != 2 {
		t.Fatalf("table 7 rows = %d, want 2 versions", len(rows7))
	}
	for _, r := range rows7 {
		if r.FaultsMod > r.FaultsOrig {
			t.Fatalf("%s: path delay faults increased", r.Version)
		}
		if uint64(r.DetOrig) > r.FaultsOrig || uint64(r.DetMod) > r.FaultsMod {
			t.Fatalf("%s: detected exceeds total", r.Version)
		}
	}
}

func TestComma(t *testing.T) {
	cases := map[uint64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		23003369: "23,003,369",
	}
	for n, want := range cases {
		if got := Comma(n); got != want {
			t.Errorf("Comma(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	d := DefaultConfig()
	if d.Scale != 1.0 || len(d.Ks) != 2 || !d.MakeIrredundant {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	q := QuickConfig()
	if q.Scale >= d.Scale || q.StuckPatterns >= d.StuckPatterns {
		t.Fatal("quick config not smaller")
	}
}
