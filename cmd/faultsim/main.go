// Command faultsim runs a random-pattern stuck-at fault simulation campaign
// on a .bench netlist (the Table 6 measurement for a single circuit).
//
// Usage:
//
//	faultsim [-patterns n] [-seed n] [-list-remaining] [-workers n]
//	         [-trace] [-metrics-out report.json] [-v] [-listen addr]
//	         [-events file] circuit.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"compsynth"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	_ "compsynth/internal/ledger" // wires the -events ledger and -cert certifier
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // wires the -listen telemetry server
)

func main() {
	patterns := flag.Int("patterns", 1<<20, "random patterns to apply")
	seed := flag.Int64("seed", 1, "pattern generator seed")
	list := flag.Bool("list-remaining", false, "list undetected faults")
	oflags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: faultsim [-patterns n] [-seed n] circuit.bench")
		os.Exit(2)
	}
	run := oflags.Start("faultsim")
	lg := run.Log
	c, err := compsynth.LoadBench(flag.Arg(0))
	if err != nil {
		os.Exit(run.Fail(err))
	}
	run.CircuitBefore(c)
	if err := run.CheckCircuit("input", c); err != nil {
		os.Exit(run.Fail(err))
	}
	run.SetCertOptions(struct {
		Patterns int   `json:"patterns"`
		Seed     int64 `json:"seed"`
	}{*patterns, *seed})
	fl := faults.Collapse(c)
	res := faultsim.Campaign(c, fl, faultsim.CampaignOptions{
		Patterns: *patterns, Seed: *seed, Workers: oflags.Workers, Tracer: run.Tracer,
	})
	lg.Printf("%s: %v", c.Name, c.Stats())
	lg.Printf("collapsed faults: %d", len(fl))
	lg.Printf("detected: %d (%.3f%%), remaining: %d",
		res.Detected, 100*res.Coverage(), len(res.Remaining))
	lg.Printf("last effective pattern: %d of %d applied", res.LastEffective, res.Patterns)
	if *list {
		for _, f := range res.Remaining {
			lg.Printf("  undetected: %v", f)
		}
	}
	run.Report.AddResult("stuck_at", map[string]any{
		"total_faults":   res.TotalFaults,
		"detected":       res.Detected,
		"remaining":      len(res.Remaining),
		"coverage":       res.Coverage(),
		"last_effective": res.LastEffective,
		"patterns":       res.Patterns,
	})
	if err := run.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
}
