package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"

	"compsynth/internal/circuit"
	"compsynth/internal/paths"
)

// EnvInfo records where a run happened (for report provenance).
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
}

// Environment captures the current process environment.
func Environment() EnvInfo {
	host, _ := os.Hostname()
	return EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Hostname:   host,
	}
}

// CircuitInfo is the report-side summary of a netlist. Paths is 0 when the
// count overflows uint64 (PathsOverflow is then true).
type CircuitInfo struct {
	Name          string `json:"name,omitempty"`
	Inputs        int    `json:"inputs"`
	Outputs       int    `json:"outputs"`
	Gates         int    `json:"gates"`
	Equiv2        int    `json:"equiv2"`
	Depth         int    `json:"depth"`
	Paths         uint64 `json:"paths,omitempty"`
	PathsOverflow bool   `json:"paths_overflow,omitempty"`
}

// InfoOf summarizes a circuit, including its Procedure 1 path count.
func InfoOf(c *circuit.Circuit) CircuitInfo {
	st := c.Stats()
	info := CircuitInfo{
		Name:    c.Name,
		Inputs:  st.Inputs,
		Outputs: st.Outputs,
		Gates:   st.Gates,
		Equiv2:  st.Equiv2,
		Depth:   st.Depth,
	}
	if n, err := paths.Count(c); err == nil {
		info.Paths = n
	} else {
		info.PathsOverflow = true
	}
	return info
}

// Report is the JSON artifact of one tool run.
type Report struct {
	Tool          string         `json:"tool"`
	Args          []string       `json:"args,omitempty"`
	Start         time.Time      `json:"start"`
	DurationMS    float64        `json:"duration_ms"`
	Env           EnvInfo        `json:"env"`
	CircuitBefore *CircuitInfo   `json:"circuit_before,omitempty"`
	CircuitAfter  *CircuitInfo   `json:"circuit_after,omitempty"`
	Results       map[string]any `json:"results,omitempty"`
	Spans         []SpanJSON     `json:"spans,omitempty"`
	Metrics       Snapshot       `json:"metrics"`
	Error         string         `json:"error,omitempty"`
}

// AddResult attaches a named result payload (anything JSON-marshalable,
// e.g. a resynth.Result) to the report.
func (r *Report) AddResult(name string, v any) {
	if r.Results == nil {
		r.Results = map[string]any{}
	}
	r.Results[name] = v
}

// WriteJSON writes the indented JSON encoding of the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (0644).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
