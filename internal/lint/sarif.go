package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// SARIF 2.1.0 output, the minimal profile code-annotation services consume:
// one run, one tool, per-rule metadata, and one result per diagnostic with a
// physical location, a stable partial fingerprint (the diagnostic ID), and —
// for interprocedural findings — the call-path witness as a code flow.
// Hand-rolled structs rather than a schema dependency, per the module's
// zero-deps rule; the subset below validates against the 2.1.0 schema.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []sarifRuleMeta `json:"rules"`
}

type sarifRuleMeta struct {
	ID               string        `json:"id"`
	ShortDescription sarifMultifmt `json:"shortDescription"`
}

type sarifMultifmt struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMultifmtMsg  `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
	CodeFlows           []sarifCodeFlow   `json:"codeFlows,omitempty"`
}

type sarifMultifmtMsg struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLoc `json:"locations"`
}

type sarifThreadFlowLoc struct {
	Location sarifFlowLocation `json:"location"`
}

type sarifFlowLocation struct {
	Message sarifMultifmtMsg `json:"message"`
}

// ruleDescriptions is the per-rule metadata embedded in the SARIF driver.
var ruleDescriptions = map[string]string{
	"wallclock":  "no wall-clock or global-RNG reads in deterministic pipeline packages, directly or through the call graph",
	"maporder":   "no order-dependent accumulation over map iteration without sorting or a //lint:ordered justification",
	"metricname": "metric registrations use literal package.snake_case names",
	"cachekey":   "no string-typed par.Cache keys (protects zero-alloc sharding)",
	"nodemut":    "circuit nodes are mutated only via journal-touching Circuit methods; //lint:speculative bodies never mutate",
	"purity":     "functions handed to par fan-out/cache seams or marked //lint:speculative are transitively free of shared-state writes",
	"sharedmut":  "goroutine-captured variables are not written without a sync/channel/atomic barrier",
}

// FormatSARIF renders diagnostics as a SARIF 2.1.0 log. Rule metadata is
// emitted for every known rule (sorted), so ruleIndex is stable whether or
// not a run has findings for a rule.
func FormatSARIF(ds []Diagnostic) (string, error) {
	rules := AllRules()
	sort.Strings(rules)
	ruleIdx := map[string]int{}
	var metas []sarifRuleMeta
	for i, r := range rules {
		ruleIdx[r] = i
		metas = append(metas, sarifRuleMeta{
			ID:               r,
			ShortDescription: sarifMultifmt{Text: ruleDescriptions[r]},
		})
	}
	results := []sarifResult{}
	for _, d := range ds {
		idx, ok := ruleIdx[d.Rule]
		if !ok {
			return "", fmt.Errorf("lint: diagnostic with unknown rule %q", d.Rule)
		}
		res := sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMultifmtMsg{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
			PartialFingerprints: map[string]string{"sftlintId/v1": d.ID},
		}
		if len(d.Witness) > 0 {
			var locs []sarifThreadFlowLoc
			for _, w := range d.Witness {
				locs = append(locs, sarifThreadFlowLoc{
					Location: sarifFlowLocation{Message: sarifMultifmtMsg{Text: w}},
				})
			}
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{{Locations: locs}}}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sftlint", Rules: metas}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
