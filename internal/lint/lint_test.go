package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"compsynth/internal/lint"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

func fixtureDirs(t *testing.T, root string) []string {
	t.Helper()
	dirs, err := lint.ExpandPatterns([]string{filepath.Join(root, "internal/lint/testdata/src") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 5 {
		t.Fatalf("expected at least 5 fixture packages, got %v", dirs)
	}
	return dirs
}

// TestFixturesGolden pins every injected-violation diagnostic byte for byte.
func TestFixturesGolden(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{
		DeterministicAll: true,
		RelativeTo:       root,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := lint.FormatText(diags)
	want, err := os.ReadFile(filepath.Join(root, "internal/lint/testdata/golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics drifted from golden.txt\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	gotJSON, err := lint.FormatJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := os.ReadFile(filepath.Join(root, "internal/lint/testdata/golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON != string(wantJSON) {
		t.Errorf("JSON diagnostics drifted from golden.json\n--- got ---\n%s--- want ---\n%s", gotJSON, wantJSON)
	}
}

// TestFixturesCoverEveryRule guards the fixtures themselves: each rule must
// fire at least once, or a refactor could silently hollow out the gate.
func TestFixturesCoverEveryRule(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{DeterministicAll: true})
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]int{}
	for _, d := range diags {
		fired[d.Rule]++
	}
	for _, rule := range lint.AllRules() {
		if fired[rule] == 0 {
			t.Errorf("rule %s never fires on the fixtures", rule)
		}
	}
}

// TestRuleFilter checks Config.Rules restricts the run.
func TestRuleFilter(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{
		DeterministicAll: true,
		Rules:            []string{"cachekey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("cachekey-only run found nothing")
	}
	for _, d := range diags {
		if d.Rule != "cachekey" {
			t.Errorf("rule filter leaked %s diagnostic: %s", d.Rule, d)
		}
	}
}

// TestTreeClean is the in-process version of the CI gate: the repository's
// own packages must produce zero diagnostics.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := repoRoot(t)
	dirs, err := lint.ExpandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Analyze(dirs, lint.Config{RelativeTo: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		t.Errorf("tree is not lint-clean:\n%s", lint.FormatText(diags))
	}
}

// TestJSONShape checks the JSON encoding round-trips and stays sorted.
func TestJSONShape(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{DeterministicAll: true, RelativeTo: root})
	if err != nil {
		t.Fatal(err)
	}
	out, err := lint.FormatJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(back) != len(diags) {
		t.Fatalf("round-trip lost diagnostics: %d != %d", len(back), len(diags))
	}
	sorted := sort.SliceIsSorted(back, func(i, j int) bool {
		if back[i].File != back[j].File {
			return back[i].File < back[j].File
		}
		return back[i].Line < back[j].Line
	})
	if !sorted {
		t.Error("JSON diagnostics are not sorted by file/line")
	}
	empty, err := lint.FormatJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty) != "[]" {
		t.Errorf("empty diagnostics should encode as [], got %q", empty)
	}
}
