// Command sft runs the synthesis-for-testability flow on a .bench netlist:
// optional redundancy removal, Procedure 2 or 3 resynthesis, optional
// post-pass redundancy removal, and a testability report.
//
// Usage:
//
//	sft -in circuit.bench [-out out.bench] [-objective gates|paths|combined]
//	    [-k 5] [-sampling] [-redundancy] [-report] [-workers n] [-shard]
//	    [-trace] [-metrics-out report.json] [-v] [-listen addr] [-events file]
package main

import (
	"flag"
	"fmt"
	"os"

	"compsynth"
	"compsynth/internal/delay"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	_ "compsynth/internal/ledger" // wires the -events ledger and -cert certifier
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // wires the -listen telemetry server
	"compsynth/internal/redundancy"
	"compsynth/internal/resynth"
)

func main() {
	var (
		in        = flag.String("in", "", "input .bench netlist (required)")
		out       = flag.String("out", "", "output .bench netlist (optional)")
		objective = flag.String("objective", "gates", "gates (Procedure 2), paths (Procedure 3) or combined")
		k         = flag.Int("k", 5, "subcircuit input limit K")
		sampling  = flag.Bool("sampling", false, "use the paper's 200-permutation identification")
		redund    = flag.Bool("redundancy", true, "apply redundancy removal after resynthesis")
		maxUnits  = flag.Int("max-units", 1, "allow ORs of up to this many comparison units (Sec. 6 ext.)")
		useSDC    = flag.Bool("sdc", false, "use reachability don't-cares during identification (Sec. 6 ext.)")
		report    = flag.Bool("report", false, "print a testability report (stuck-at + path delay)")
		seed      = flag.Int64("seed", 1995, "seed for campaigns")
		shard     = flag.Bool("shard", false, "region-sharded parallel resynthesis (bit-identical to serial)")
	)
	oflags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Validate the objective before any work happens, so a typo cannot
	// waste a long resynthesis run (and so every parse failure exits
	// non-zero with a clear message, never mid-flow).
	var obj resynth.Objective
	switch *objective {
	case "gates":
		obj = resynth.MinGates
	case "paths":
		obj = resynth.MinPaths
	case "combined":
		obj = resynth.Combined
	default:
		fmt.Fprintf(os.Stderr, "sft: unknown -objective %q (want gates, paths or combined)\n", *objective)
		os.Exit(2)
	}

	run := oflags.Start("sft")
	if err := sft(run, *in, *out, obj, *k, *sampling, *redund, *maxUnits, *useSDC, *report, *seed, oflags.Workers, *shard); err != nil {
		os.Exit(run.Fail(err))
	}
	if err := run.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "sft: %v\n", err)
		os.Exit(1)
	}
}

func sft(run *obs.Run, in, out string, obj resynth.Objective, k int,
	sampling, redund bool, maxUnits int, useSDC, report bool, seed int64, workers int, shard bool) error {
	lg := run.Log

	sp := run.Tracer.StartSpan("load")
	c, err := compsynth.LoadBench(in)
	sp.End()
	if err != nil {
		return err
	}
	run.CircuitBefore(c)
	if err := run.CheckCircuit("input", c); err != nil {
		return err
	}
	// The semantic options that determine the output, for the certificate
	// (machine knobs like -workers and -shard are deliberately excluded:
	// they do not change the result, and certificates must not depend on
	// the host).
	run.SetCertOptions(struct {
		Objective  string `json:"objective"`
		K          int    `json:"k"`
		Sampling   bool   `json:"sampling"`
		Redundancy bool   `json:"redundancy"`
		MaxUnits   int    `json:"max_units"`
		SDC        bool   `json:"sdc"`
		Seed       int64  `json:"seed"`
	}{obj.String(), k, sampling, redund, maxUnits, useSDC, seed})
	lg.Printf("loaded %s: %v", in, c.Stats())
	p0, err := compsynth.CountPaths(c)
	if err != nil {
		return fmt.Errorf("path count: %v (use smaller circuits; count exceeds uint64)", err)
	}
	lg.Printf("paths: %d", p0)

	opt := resynth.DefaultOptions()
	opt.K = k
	opt.Objective = obj
	opt.UseSampling = sampling
	opt.MaxUnits = maxUnits
	opt.UseSDC = useSDC
	opt.Seed = seed
	opt.Workers = workers
	opt.Shard = shard
	opt.Tracer = run.Tracer
	opt.Dtrace = run.Dtrace()
	opt.Check = run.CheckEnabled()
	opt.Certify = run.CertEnabled()
	lg.Verbosef("resynthesis starting (objective=%v K=%d sampling=%v)", obj, k, sampling)
	res, err := compsynth.Optimize(c, opt)
	if err != nil {
		return err
	}
	run.Report.AddResult("resynth", res)
	for _, ev := range res.Evidence {
		run.AddEvidence(ev)
	}
	lg.Printf("resynthesis (%v, K=%d): %v", obj, k, res)

	final := res.Circuit
	if redund {
		ropt := redundancy.DefaultOptions()
		ropt.Tracer = run.Tracer
		lg.Verbosef("redundancy removal starting")
		rr, err := redundancy.Remove(final, ropt)
		if err != nil {
			return err
		}
		run.Report.AddResult("redundancy", rr)
		lg.Printf("redundancy removal: %v", rr)
		final = rr.Circuit
	}
	vsp := run.Tracer.StartSpan("verify")
	equiv := compsynth.Equivalent(c, final)
	vsp.End()
	if !equiv {
		return fmt.Errorf("internal error: result not equivalent to input")
	}
	run.CircuitAfter(final)
	if err := run.CheckCircuit("final", final); err != nil {
		return err
	}
	lg.Printf("final: %v, paths %d", final.Stats(), mustPaths(final))

	if report {
		ssp := run.Tracer.StartSpan("stuckat.campaign")
		sa := faultsim.Campaign(final, faults.Collapse(final), faultsim.CampaignOptions{
			Patterns: 1 << 16, Seed: seed, Workers: workers,
		})
		ssp.End()
		run.Report.AddResult("stuck_at", sa)
		lg.Printf("stuck-at: %d faults, %d undetected after %d random patterns (eff. %d)",
			sa.TotalFaults, len(sa.Remaining), sa.Patterns, sa.LastEffective)
		psp := run.Tracer.StartSpan("pathdelay.campaign")
		pd := delay.RunRandom(final, delay.CampaignOptions{
			MaxPairs: 10000, QuietPairs: 1000, Seed: seed,
		})
		psp.End()
		run.Report.AddResult("path_delay", pd)
		lg.Printf("robust PDF: %d/%d detected (%.2f%%), eff. pair %d",
			pd.Detected, pd.TotalFaults, 100*pd.Coverage(), pd.LastEffective)
	}
	if out != "" {
		if err := compsynth.SaveBench(final, out); err != nil {
			return err
		}
		lg.Printf("wrote %s", out)
	}
	return nil
}

func mustPaths(c *compsynth.Circuit) uint64 {
	n, err := compsynth.CountPaths(c)
	if err != nil {
		return 0
	}
	return n
}
