package subckt

import (
	"math/rand"
	"testing"
)

func subWithGates(out int, ids ...int) *Subcircuit {
	g := map[int]bool{}
	for _, id := range ids {
		g[id] = true
	}
	return &Subcircuit{Out: out, Gates: g}
}

// TestKeyOrderIndependent: the key is a set identity — insertion order of
// the gate map must not matter.
func TestKeyOrderIndependent(t *testing.T) {
	a := subWithGates(5, 1, 2, 3, 4, 5)
	b := subWithGates(5, 5, 4, 3, 2, 1)
	if a.Key() != b.Key() {
		t.Fatal("key depends on construction order")
	}
	if a.Key() != a.Key() {
		t.Fatal("key not stable across calls")
	}
}

// TestKeyBeatsNaivePacking feeds gate sets whose OLD encodings (3 bytes per
// ID) were equal and asserts the digest keys are distinct. id and id+2^24
// packed to the same bytes under the old scheme.
func TestKeyBeatsNaivePacking(t *testing.T) {
	cases := [][2]*Subcircuit{
		{subWithGates(7, 0), subWithGates(7, 1<<24)},
		{subWithGates(7, 42), subWithGates(7, 42+1<<24)},
		{subWithGates(7, 1, 1<<24), subWithGates(7, 1, 0)},
	}
	for i, pair := range cases {
		if pair[0].Key() == pair[1].Key() {
			t.Fatalf("case %d: distinct gate sets share a key", i)
		}
	}
	// Out participates too: same gates, different designated output.
	a := subWithGates(1, 1, 2)
	b := subWithGates(2, 1, 2)
	if a.Key() == b.Key() {
		t.Fatal("keys ignore Out")
	}
}

// TestKeyNoRandomCollisions hammers random small gate sets — the regime the
// optimizer actually operates in — and requires all distinct sets to get
// distinct keys.
func TestKeyNoRandomCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seen := map[Key]string{}
	canon := func(g map[int]bool) string {
		b := make([]byte, 4096)
		for id := range g {
			b[id] = 1
		}
		return string(b)
	}
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(8)
		s := &Subcircuit{Out: 0, Gates: map[int]bool{}}
		for j := 0; j < n; j++ {
			s.Gates[rng.Intn(4096)] = true
		}
		c := canon(s.Gates)
		if prev, ok := seen[s.Key()]; ok && prev != c {
			t.Fatalf("trial %d: two distinct gate sets share key %+v", trial, s.Key())
		}
		seen[s.Key()] = c
	}
}

func TestKeyZeroAlloc(t *testing.T) {
	s := subWithGates(9, 1, 2, 3, 9)
	s.Key() // warm the lazy field
	if n := testing.AllocsPerRun(100, func() { _ = s.Key() }); n != 0 {
		t.Fatalf("warm Key() allocates: %v allocs/run", n)
	}
	cold := subWithGates(9, 1, 2, 3, 9)
	if n := testing.AllocsPerRun(1, func() { _ = cold.Key() }); n != 0 {
		t.Fatalf("cold Key() allocates: %v allocs/run", n)
	}
}
