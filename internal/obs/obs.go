// Package obs is the observability substrate for the synthesis-for-
// testability pipeline: hierarchical tracing spans, a process-wide metrics
// registry, a verbose run logger, a JSON run report that ties them all
// together, and the live half — an NDJSON flight recorder (-events) and the
// hooks for the -listen telemetry server implemented in the obs/telemetry
// subpackage (/metrics in Prometheus exposition format, /progress, /healthz,
// /debug/pprof; commands blank-import that package to link it in).
//
// Design constraints, in order:
//
//  1. Zero cost when off. Every entry point is nil-safe — a nil *Tracer,
//     *Span, *Logger or *Recorder no-ops without allocating — so the
//     pipeline packages instrument their hot loops unconditionally and pay
//     nothing unless a command enables tracing. Counters are single atomic
//     adds and stay on permanently; EmitProgress is a single atomic load
//     until a flight recorder is installed.
//  2. No dependencies beyond the standard library, matching the rest of the
//     module.
//  3. One JSON artifact per run. A Report serializes the tool name and
//     arguments, environment, circuit statistics before and after, the span
//     tree, and a snapshot of every registered metric, so experiments can be
//     diffed and archived mechanically (cmd/obsdiff gates CI on exactly
//     that diff). The -events stream is the same idea for runs that die
//     mid-flight: one flushed JSON event per line, tail -f-able.
//
// The conventional wiring for a command is:
//
//	flags := obs.AddFlags(flag.CommandLine)
//	flag.Parse()
//	run := flags.Start("sft")
//	defer run.Finish()
//	sp := run.Tracer.StartSpan("load")
//	...
//	sp.End()
//
// Pipeline packages receive the tracer through their Options structs and
// declare their counters at package init against the Default registry, e.g.
//
//	var mCandidates = obs.C("resynth.candidates_examined")
package obs
