// Package par provides the deterministic worker-pool primitives shared by
// the pipeline's hot paths: candidate evaluation in resynthesis, fault
// partitioning in fault simulation, and independent circuits/rows in the
// experiment driver.
//
// The contract throughout is that parallelism never changes results: tasks
// write only task-indexed state (or insert into pure-function caches), so
// the output of every fan-out is bit-identical for any worker count,
// including 1. Which worker runs which task IS nondeterministic (tasks are
// claimed from an atomic counter), so anything order- or worker-dependent
// must be derived per task — see SeedFor for deterministic per-key RNG
// seeding.
package par

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"compsynth/internal/metric"
	"compsynth/internal/obs"
)

// Pool metrics (process-wide; atomic adds only). The queue-depth gauge lives
// in the Default registry — it is deterministic at every snapshot point the
// reports see (always back to 0 when Run returns) — while everything
// scheduling-dependent goes to the Live registry below.
var (
	mRuns  = obs.C("par.parallel_runs")
	mTasks = obs.C("par.tasks")
	gDepth = obs.G("par.queue_depth")
)

// Live pool telemetry: values here depend on scheduling and wall-clock, so
// they are surfaced on /metrics and /progress but never snapshot into run
// reports (see metric.Live). Per-worker tasks-claimed counters are
// registered lazily per worker id in workerCounter.
var (
	lWaitMS  = metric.Live().Histogram("par.task_wait_ms")
	lRunMS   = metric.Live().Histogram("par.task_run_ms")
	lHits    = metric.Live().Counter("par.cache_hits")
	lMisses  = metric.Live().Counter("par.cache_misses")
	workerMu sync.Mutex
	workerCs []*metric.Counter
)

// workerCounter returns the live tasks-claimed counter for one dense worker
// id ("par.worker_tasks.wN"), memoized so the per-Run accounting loop does
// not rebuild names.
func workerCounter(wk int) *metric.Counter {
	workerMu.Lock()
	defer workerMu.Unlock()
	for len(workerCs) <= wk {
		workerCs = append(workerCs,
			metric.Live().Counter("par.worker_tasks.w"+strconv.Itoa(len(workerCs))))
	}
	return workerCs[wk]
}

// clock, when installed, timestamps task claim/completion for the live
// wait/run histograms. It is nil by default: par is a deterministic pipeline
// package (sftlint's wallclock rule bans time.Now here), so the wall-clock
// read is injected by the observability layer — internal/obs/telemetry
// installs time.Now from its init, which every command links in. With no
// clock the histograms simply stay empty; results never depend on it.
var clock atomic.Pointer[func() time.Time]

// SetClock installs the wall-clock source for the live task-timing
// histograms (nil uninstalls). Called from non-deterministic packages only.
func SetClock(fn func() time.Time) {
	if fn == nil {
		clock.Store(nil)
		return
	}
	clock.Store(&fn)
}

// Workers resolves a worker-count option: n <= 0 selects
// runtime.GOMAXPROCS(0) (all available CPUs), anything else is returned
// as-is. This is the shared meaning of Options.Workers / -workers across
// the pipeline.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn(worker, task) for every task in [0, n), distributing the
// tasks over min(Workers(workers), n) goroutines via an atomic claim
// counter. Each task runs exactly once; worker IDs are dense in [0, w), so
// fn may index per-worker scratch state (e.g. a private simulator) with its
// worker argument. Run returns after every task has completed.
//
// With one worker (or one task) fn runs inline on the calling goroutine and
// no span is recorded, keeping the serial path identical to a plain loop.
//
// tr may be nil. When tracing is on and the fan-out is real, one span named
// name is recorded with the worker count, the task count, and per-worker
// task tallies as attributes.
func Run(tr *obs.Tracer, name string, workers, n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		mTasks.Add(int64(n))
		return
	}
	sp := tr.StartSpan(name)
	sp.SetInt("workers", int64(w))
	sp.SetInt("tasks", int64(n))
	ck := clock.Load()
	var fanout time.Time
	if ck != nil {
		fanout = (*ck)()
	}
	gDepth.Set(int64(n))
	counts := make([]int64, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Depth is the tasks still unclaimed; last-write-wins races
				// between workers only ever disagree by a few claims, which
				// is fine for a live gauge (it is exact again — zero — by
				// the time Run returns and anything deterministic looks).
				gDepth.Set(int64(n - i - 1))
				var t0 time.Time
				if ck != nil {
					t0 = (*ck)()
					lWaitMS.Observe(float64(t0.Sub(fanout)) / float64(time.Millisecond))
				}
				fn(wk, i)
				if ck != nil {
					lRunMS.Observe(float64((*ck)().Sub(t0)) / float64(time.Millisecond))
				}
				counts[wk]++
			}
		}(wk)
	}
	wg.Wait()
	gDepth.Set(0)
	for wk, c := range counts {
		sp.SetInt(fmt.Sprintf("worker%d_tasks", wk), c)
		workerCounter(wk).Add(c)
	}
	sp.End()
	mRuns.Inc()
	mTasks.Add(int64(n))
}

// Map runs fn for every index in [0, n) with the given parallelism and
// returns the results in index order.
func Map[T any](workers, n int, fn func(task int) T) []T {
	out := make([]T, n)
	Run(nil, "par.map", workers, n, func(_, i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible tasks. All tasks run to completion; if any
// failed, the error of the lowest-indexed failing task is returned (so the
// reported error does not depend on scheduling).
func MapErr[T any](workers, n int, fn func(task int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Run(nil, "par.map", workers, n, func(_, i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SeedFor derives a deterministic RNG seed from a base seed and a string
// key (FNV-1a). Sampling-style algorithms inside parallel regions must not
// share one rand.Rand — the interleaving would leak into results — nor use
// per-worker streams with dynamically claimed tasks. Deriving the seed from
// the task's own key makes the draw a pure function of (base, key),
// independent of worker count and visit order.
func SeedFor(base int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(base) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}
