package ledger

import (
	"fmt"

	"compsynth/internal/compare"
	"compsynth/internal/logic"
)

// SpecInfo is the JSON form of a comparison-function realization
// (compare.Spec or compare.MultiSpec), complete enough to reconstruct the
// realization and recompute its truth table during verification.
type SpecInfo struct {
	Kind       string   `json:"kind"` // "cmp" or "multi"
	N          int      `json:"n"`
	Perm       []int    `json:"perm"`
	L          int      `json:"l,omitempty"`         // cmp only
	U          int      `json:"u,omitempty"`         // cmp only
	Intervals  [][2]int `json:"intervals,omitempty"` // multi only
	Complement bool     `json:"complement,omitempty"`
}

// SpecInfoOf captures a realization for the certificate.
func SpecInfoOf(r compare.Realization) SpecInfo {
	switch s := r.(type) {
	case compare.Spec:
		return SpecInfo{Kind: "cmp", N: s.N, Perm: s.Perm, L: s.L, U: s.U, Complement: s.Complement}
	case compare.MultiSpec:
		return SpecInfo{Kind: "multi", N: s.N, Perm: s.Perm, Intervals: s.Intervals, Complement: s.Complement}
	default:
		panic(fmt.Sprintf("ledger: unknown realization type %T", r))
	}
}

// Realization reconstructs the compare realization the info describes.
func (si SpecInfo) Realization() (compare.Realization, error) {
	switch si.Kind {
	case "cmp":
		s := compare.Spec{N: si.N, Perm: si.Perm, L: si.L, U: si.U, Complement: si.Complement}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	case "multi":
		m := compare.MultiSpec{N: si.N, Perm: si.Perm, Intervals: si.Intervals, Complement: si.Complement}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if len(m.Intervals) == 0 {
			return nil, fmt.Errorf("ledger: multi spec with no intervals")
		}
		return m, nil
	default:
		return nil, fmt.Errorf("ledger: unknown spec kind %q", si.Kind)
	}
}

// Evidence is one replacement's equivalence evidence, recorded by the
// resynthesis engine at the moment it rewires a cone onto a comparison
// unit: the extracted function (support-reduced truth table over Vars
// inputs), the optional satisfiability-don't-care set it was matched
// under, and the realization that replaced it. Verification reconstructs
// the realization's table and checks it agrees with TT on every care
// minterm — exhaustive over the cone's support, independent of the run.
type Evidence struct {
	Pass int      `json:"pass"`           // 1-based optimization pass
	Gate string   `json:"gate"`           // name of the replaced node
	Vars int      `json:"vars"`           // support size of the extracted cone
	TT   string   `json:"tt"`             // hex truth table (logic.TT.Hex)
	Care string   `json:"care,omitempty"` // hex care set; empty = fully specified
	Spec SpecInfo `json:"spec"`
}

// VerifyEvidence re-derives the realization's truth table and checks the
// claimed equivalence: spec table == TT on the care set (all minterms when
// Care is empty).
func VerifyEvidence(e Evidence) error {
	tt, err := logic.FromHex(e.Vars, e.TT)
	if err != nil {
		return fmt.Errorf("gate %s: bad tt: %v", e.Gate, err)
	}
	r, err := e.Spec.Realization()
	if err != nil {
		return fmt.Errorf("gate %s: bad spec: %v", e.Gate, err)
	}
	got := r.Table()
	if got.Vars() != e.Vars {
		return fmt.Errorf("gate %s: spec over %d vars, cone over %d", e.Gate, got.Vars(), e.Vars)
	}
	diff := got.Xor(tt)
	if e.Care != "" {
		care, err := logic.FromHex(e.Vars, e.Care)
		if err != nil {
			return fmt.Errorf("gate %s: bad care set: %v", e.Gate, err)
		}
		diff = diff.And(care)
	}
	if !diff.IsConst(false) {
		return fmt.Errorf("gate %s: realization disagrees with extracted function on %d care minterms",
			e.Gate, diff.CountOnes())
	}
	return nil
}
