package obs_test

import (
	"regexp"
	"testing"

	"compsynth/internal/obs"

	// Every instrumented pipeline package, linked in so its package-level
	// obs.C/G/H registrations land in the default registry before the lint
	// walks it.
	_ "compsynth/internal/atpg"
	_ "compsynth/internal/compare"
	_ "compsynth/internal/delay"
	_ "compsynth/internal/exper"
	_ "compsynth/internal/faultsim"
	_ "compsynth/internal/par"
	_ "compsynth/internal/redundancy"
	_ "compsynth/internal/resynth"
)

// metricNameRe is the registry naming convention: "package.snake_case". It
// also guarantees a clean Prometheus rendering (PromName only has to turn
// the dot into an underscore, never mangle).
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// TestMetricNameLint walks every instrument registered in the default
// registry and rejects names that break the package.snake_case convention.
func TestMetricNameLint(t *testing.T) {
	s := obs.Default().Snapshot()
	check := func(kind, name string) {
		if !metricNameRe.MatchString(name) {
			t.Errorf("%s %q violates the package.snake_case naming convention", kind, name)
		}
	}
	n := 0
	for name := range s.Counters {
		check("counter", name)
		n++
	}
	for name := range s.Gauges {
		check("gauge", name)
		n++
	}
	for name := range s.Histograms {
		check("histogram", name)
		n++
	}
	// The blank imports above must actually have registered the pipeline
	// instruments, or the lint is vacuous.
	if n < 20 {
		t.Fatalf("only %d instruments registered; lint did not see the pipeline packages", n)
	}
	for _, want := range []string{
		"resynth.candidates_examined", "faultsim.patterns_simulated",
		"atpg.backtracks", "exper.rows_completed", "par.tasks",
	} {
		if _, ok := s.Counters[want]; !ok {
			t.Errorf("expected pipeline counter %q not registered", want)
		}
	}
}
