package subckt

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/logic"
)

func TestEnumerateSingleGateFirst(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	g := c.NodeByName("22")
	subs := Enumerate(c, g, Options{MaxInputs: 5, MaxCandidates: 100})
	if len(subs) == 0 {
		t.Fatal("no candidates")
	}
	if len(subs[0].Gates) != 1 || !subs[0].Gates[g] {
		t.Fatalf("first candidate not the single gate: %v", subs[0].Gates)
	}
	// Growing candidates exist: 22 = NAND(10,16), absorbing 10 or 16.
	if len(subs) < 3 {
		t.Fatalf("expected more candidates, got %d", len(subs))
	}
}

func TestEnumerateRespectsInputLimit(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	for _, g := range []string{"22", "23", "16"} {
		for k := 2; k <= 6; k++ {
			subs := Enumerate(c, c.NodeByName(g), Options{MaxInputs: k})
			for _, s := range subs {
				if len(s.Inputs) > k {
					t.Fatalf("g=%s k=%d: candidate with %d inputs", g, k, len(s.Inputs))
				}
			}
		}
	}
}

func TestExtractSingleGate(t *testing.T) {
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.Nand, "g", a, b)
	c.MarkOutput(g)
	subs := Enumerate(c, g, DefaultOptions())
	tt := subs[0].Extract(c)
	want := logic.Var(2, 1).And(logic.Var(2, 2)).Not()
	// Inputs sorted ascending: a (id 0) is y1, b (id 1) is y2.
	if !tt.Equal(want) {
		t.Fatalf("NAND extract = %s, want %s", tt, want)
	}
}

func TestExtractDeepSubcircuit(t *testing.T) {
	// f = (a AND b) OR (NOT c): enumerate from the OR; the full 3-gate
	// candidate must extract the right 3-input function.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cc := c.AddInput("c")
	g1 := c.AddGate(circuit.And, "", a, b)
	g2 := c.AddGate(circuit.Not, "", cc)
	g3 := c.AddGate(circuit.Or, "", g1, g2)
	c.MarkOutput(g3)
	subs := Enumerate(c, g3, DefaultOptions())
	var full *Subcircuit
	for _, s := range subs {
		if len(s.Gates) == 3 {
			full = s
		}
	}
	if full == nil {
		t.Fatal("full candidate not enumerated")
	}
	tt := full.Extract(c)
	want := logic.Var(3, 1).And(logic.Var(3, 2)).Or(logic.Var(3, 3).Not())
	if !tt.Equal(want) {
		t.Fatalf("extract = %s, want %s", tt, want)
	}
}

func TestExtractMatchesHostSimulation(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	for _, gname := range []string{"22", "23", "16", "19"} {
		g := c.NodeByName(gname)
		for _, s := range Enumerate(c, g, Options{MaxInputs: 5, MaxCandidates: 50}) {
			tt := s.Extract(c)
			// Check on concrete patterns: drive the host circuit's PIs with
			// every combination and compare the node value against the TT of
			// the subcircuit inputs.
			for m := 0; m < 32; m++ {
				in := make([]bool, 5)
				for i := range in {
					in[i] = m&(1<<i) != 0
				}
				vals := evalAll(c, in)
				idx := 0
				for j, sin := range s.Inputs {
					if vals[sin] {
						idx |= 1 << (len(s.Inputs) - 1 - j)
					}
				}
				if tt.Get(idx) != vals[g] {
					t.Fatalf("g=%s gates=%v: mismatch at PI %v", gname, s.Gates, in)
				}
			}
		}
	}
}

// evalAll returns the value of every node for one input assignment.
func evalAll(c *circuit.Circuit, pi []bool) []bool {
	val := make([]bool, len(c.Nodes))
	for i, id := range c.Inputs {
		val[id] = pi[i]
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		in := make([]bool, len(nd.Fanin))
		for i, f := range nd.Fanin {
			in[i] = val[f]
		}
		val[id] = nd.Type.Eval(in)
	}
	return val
}

func TestRemovableRespectsFanout(t *testing.T) {
	// g1 fans out to g2 (inside) and g3 (outside): not removable.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Not, "g2", g1)
	g3 := c.AddGate(circuit.Or, "g3", g1, a)
	c.MarkOutput(g2)
	c.MarkOutput(g3)
	s := &Subcircuit{Out: g2, Gates: map[int]bool{g1: true, g2: true}, Inputs: []int{a, b}}
	rm := s.Removable(c)
	if !rm[g2] {
		t.Fatal("output gate must be removable")
	}
	if rm[g1] {
		t.Fatal("shared gate g1 must not be removable")
	}
	if s.GateSavings(c) != 0 {
		// g2 is a NOT: weight 0; g1 shared.
		t.Fatalf("savings = %d, want 0", s.GateSavings(c))
	}
}

func TestRemovableChain(t *testing.T) {
	// Chain entirely inside the candidate: everything removable.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", g1, d)
	c.MarkOutput(g2)
	s := &Subcircuit{Out: g2, Gates: map[int]bool{g1: true, g2: true}, Inputs: []int{a, b, d}}
	rm := s.Removable(c)
	if !rm[g1] || !rm[g2] {
		t.Fatalf("removable = %v", rm)
	}
	if s.GateSavings(c) != 2 {
		t.Fatalf("savings = %d, want 2", s.GateSavings(c))
	}
}

func TestRemovablePODriverInside(t *testing.T) {
	// An internal gate that drives a PO must not be removable.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Not, "g2", g1)
	c.MarkOutput(g1)
	c.MarkOutput(g2)
	s := &Subcircuit{Out: g2, Gates: map[int]bool{g1: true, g2: true}, Inputs: []int{a, b}}
	if s.Removable(c)[g1] {
		t.Fatal("PO driver marked removable")
	}
}

func TestConstantAbsorption(t *testing.T) {
	c := circuit.New("t")
	a := c.AddInput("a")
	k := c.AddGate(circuit.Const1, "")
	g := c.AddGate(circuit.Xor, "g", a, k)
	c.MarkOutput(g)
	subs := Enumerate(c, g, DefaultOptions())
	s := subs[0]
	if len(s.Inputs) != 1 || s.Inputs[0] != a {
		t.Fatalf("constant not absorbed: inputs %v", s.Inputs)
	}
	tt := s.Extract(c)
	if !tt.Equal(logic.Var(1, 1).Not()) {
		t.Fatalf("extract with absorbed const = %s", tt)
	}
}

func TestEnumerateCapsCandidates(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	subs := Enumerate(c, c.NodeByName("22"), Options{MaxInputs: 5, MaxCandidates: 2})
	if len(subs) > 2 {
		t.Fatalf("cap ignored: %d candidates", len(subs))
	}
}
