package delay

import (
	"testing"

	"compsynth/internal/compare"
)

// The paper's Section 3.3 claim: comparison units are fully robustly
// testable for path delay faults, and the generated test set (Table 1
// construction) achieves that. We verify exhaustively for all bounds at
// n <= 4 and on a sweep at n = 5, for merged and unmerged units:
// every structural path of the built unit is robustly tested in both
// directions by some test of compare.TestSet.
func TestUnitsFullyRobustlyTestable(t *testing.T) {
	check := func(t *testing.T, n, l, u int, merge bool) {
		t.Helper()
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		s := compare.Spec{N: n, Perm: perm, L: l, U: u}
		c := s.BuildStandalone("u", compare.BuildOptions{Merge: merge})
		tests := s.TestSet()
		paths := EnumeratePaths(c, 0)
		if len(paths) == 0 {
			// Constant units (full interval) have no paths and no faults.
			if s.NumPathFaults() != 0 {
				t.Fatalf("n=%d [%d,%d]: no paths but %d declared faults", n, l, u, s.NumPathFaults())
			}
			return
		}
		for _, p := range paths {
			for _, wantFall := range []bool{false, true} {
				covered := false
				for _, ut := range tests {
					val := Sim5(c, ut.V1, ut.V2)
					launch := val[p.Nodes[0]]
					if wantFall && launch != F {
						continue
					}
					if !wantFall && launch != R {
						continue
					}
					if PathRobust(c, p.Nodes, p.Pins, ut.V1, ut.V2) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("n=%d [%d,%d] merge=%v: path %v (fall=%v) not robustly covered",
						n, l, u, merge, p.Nodes, wantFall)
				}
			}
		}
		// And the count matches the analytic fault count.
		if 2*len(paths) != s.NumPathFaults() {
			t.Fatalf("n=%d [%d,%d]: %d structural paths but %d declared faults",
				n, l, u, 2*len(paths), s.NumPathFaults())
		}
	}
	for n := 1; n <= 4; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				for _, merge := range []bool{false, true} {
					check(t, n, l, u, merge)
				}
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		l := (trial * 5) % 32
		u := l + (trial*3)%(32-l)
		check(t, 5, l, u, trial%2 == 0)
	}
}

// Complemented units stay fully robustly testable: the output inverter only
// flips the observed transition.
func TestComplementedUnitsRobustlyTestable(t *testing.T) {
	s := compare.Spec{N: 4, Perm: []int{0, 1, 2, 3}, L: 11, U: 12, Complement: true}
	c := s.BuildStandalone("cu", compare.BuildOptions{Merge: true})
	tests := s.TestSet()
	for _, p := range EnumeratePaths(c, 0) {
		covered := 0
		for _, ut := range tests {
			if PathRobust(c, p.Nodes, p.Pins, ut.V1, ut.V2) {
				covered++
			}
		}
		if covered == 0 {
			t.Fatalf("path %v uncovered in complemented unit", p.Nodes)
		}
	}
}

// Figure 6 / Table 1: the generated tests for the L=11, U=12 unit are all
// robust on the built structure.
func TestTable1TestsAreRobust(t *testing.T) {
	s := compare.Spec{N: 4, Perm: []int{0, 1, 2, 3}, L: 11, U: 12}
	c := s.BuildStandalone("f6", compare.BuildOptions{Merge: true})
	paths := EnumeratePaths(c, 0)
	for _, ut := range s.TestSet() {
		robustSomewhere := false
		for _, p := range paths {
			if PathRobust(c, p.Nodes, p.Pins, ut.V1, ut.V2) {
				robustSomewhere = true
				break
			}
		}
		if !robustSomewhere {
			t.Fatalf("test %v robustly tests no path", ut)
		}
	}
}
