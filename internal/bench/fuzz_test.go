package bench_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
)

// TestParseRejectsBadArity pins a FuzzParseBench find: a gate line with the
// wrong operand count ("g = AND()") used to reach circuit.AddGate and panic.
// Operand-count problems must surface as parse errors.
func TestParseRejectsBadArity(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"OUTPUT(g)\ng = AND()\n", "at least 1 operand"},
		{"INPUT(a)\nOUTPUT(g)\ng = NOT(a, a)\n", "exactly 1 operand"},
		{"INPUT(a)\nOUTPUT(g)\ng = CONST0(a)\n", "no operands"},
	} {
		_, err := bench.ParseString(tc.src, "arity")
		if err == nil {
			t.Errorf("parser accepted %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseString(%q) error = %q, want substring %q", tc.src, err, tc.want)
		}
	}
}

// FuzzParseBench feeds arbitrary netlist text to the parser. Accepted inputs
// must produce a structurally valid circuit (circuit.Check; unused gates are
// legal in hand-written netlists) and must survive a write -> parse -> write
// round-trip byte-identically — the writer is the parser's inverse on the
// parser's image. Rejected inputs just need to not crash.
func FuzzParseBench(f *testing.F) {
	f.Add(bench.C17)
	f.Add(bench.Adder4)
	files, err := filepath.Glob(filepath.Join("..", "..", "circuits", "*.bench"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	// Hand-picked corners: empty, comment-only, dangling reference, dup name.
	f.Add("")
	f.Add("# comment only\n")
	f.Add("INPUT(a)\nOUTPUT(g)\ng = AND(a, missing)\n")
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(a)\nINPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")

	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ParseString(src, "fuzz")
		if err != nil {
			return // rejected input; only panics are failures here
		}
		if err := circuit.CheckWith(c, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
			t.Fatalf("parser accepted a structurally invalid circuit: %v\ninput:\n%s", err, src)
		}
		out1 := bench.String(c)
		c2, err := bench.ParseString(out1, "fuzz")
		if err != nil {
			t.Fatalf("writer output does not re-parse: %v\nwritten:\n%s", err, out1)
		}
		if err := circuit.CheckWith(c2, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
			t.Fatalf("re-parsed circuit invalid: %v", err)
		}
		out2 := bench.String(c2)
		if out1 != out2 {
			t.Fatalf("write/parse/write not a fixpoint:\n--- first ---\n%s--- second ---\n%s", out1, out2)
		}
	})
}
