// Package logic provides bit-parallel truth-table representations of Boolean
// functions over a small number of variables (up to MaxVars).
//
// Variable ordering convention: a function f(x1, x2, ..., xn) follows the
// paper's convention that x1 is the most significant bit of a minterm and xn
// the least significant. Minterm m (0 <= m < 2^n) therefore assigns
//
//	x_i = bit (n-i) of m
//
// and bit m of the table holds f(m). Tables are stored LSB-first in 64-bit
// words: word w, bit b encodes minterm 64*w + b.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest supported number of variables for a TruthTable.
// 16 variables = 65536 minterms = 1024 words, far beyond the subcircuit
// input limits (K = 5..7) used by the synthesis procedures.
const MaxVars = 16

// TT is a truth table over a fixed number of variables.
type TT struct {
	n     int
	words []uint64
}

// New returns the constant-0 truth table over n variables.
func New(n int) TT {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("logic: invalid variable count %d", n))
	}
	return TT{n: n, words: make([]uint64, wordsFor(n))}
}

func wordsFor(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// Size returns the number of minterms (2^n).
func (t TT) Size() int { return 1 << t.n }

// Vars returns the number of variables n.
func (t TT) Vars() int { return t.n }

// mask returns the valid-bit mask for the last word of an n<=6 table.
func (t TT) mask() uint64 {
	if t.n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << t.n)) - 1
}

// Const returns the constant-v truth table over n variables.
func Const(n int, v bool) TT {
	t := New(n)
	if v {
		for i := range t.words {
			t.words[i] = ^uint64(0)
		}
		t.words[len(t.words)-1] &= t.mask()
		if t.n >= 6 {
			// mask() already all ones; nothing to trim.
			t.words[len(t.words)-1] = ^uint64(0)
		}
	}
	return t
}

// Var returns the truth table of variable x_i (1-based, x1 = MSB) over n
// variables: bit m is set iff bit (n-i) of m is 1.
func Var(n, i int) TT {
	if i < 1 || i > n {
		panic(fmt.Sprintf("logic: variable index %d out of range 1..%d", i, n))
	}
	t := New(n)
	pos := n - i // bit position of x_i within a minterm
	if pos < 6 {
		// Pattern repeats within each word.
		var w uint64
		period := 1 << (pos + 1)
		half := 1 << pos
		for b := 0; b < 64; b++ {
			if b%period >= half {
				w |= uint64(1) << b
			}
		}
		for j := range t.words {
			t.words[j] = w
		}
		t.words[len(t.words)-1] &= t.mask()
	} else {
		// Whole words alternate in blocks of 2^(pos-6).
		block := 1 << (pos - 6)
		for j := range t.words {
			if (j/block)%2 == 1 {
				t.words[j] = ^uint64(0)
			}
		}
	}
	return t
}

// FromMinterms returns the table over n variables whose onset is exactly ms.
func FromMinterms(n int, ms []int) TT {
	t := New(n)
	for _, m := range ms {
		t.Set(m, true)
	}
	return t
}

// FromInterval returns the comparison function [L,U] over n variables:
// f(m) = 1 iff L <= m <= U. If L > U the result is constant 0.
func FromInterval(n, l, u int) TT {
	t := New(n)
	if l < 0 {
		l = 0
	}
	if u >= t.Size() {
		u = t.Size() - 1
	}
	for m := l; m <= u; m++ {
		t.Set(m, true)
	}
	return t
}

// Get reports the value of minterm m.
func (t TT) Get(m int) bool {
	return t.words[m>>6]&(uint64(1)<<(m&63)) != 0
}

// Set assigns the value of minterm m.
func (t *TT) Set(m int, v bool) {
	if m < 0 || m >= t.Size() {
		panic(fmt.Sprintf("logic: minterm %d out of range for %d vars", m, t.n))
	}
	if v {
		t.words[m>>6] |= uint64(1) << (m & 63)
	} else {
		t.words[m>>6] &^= uint64(1) << (m & 63)
	}
}

func (t TT) checkSame(o TT) {
	if t.n != o.n {
		panic(fmt.Sprintf("logic: mismatched variable counts %d vs %d", t.n, o.n))
	}
}

// And returns t AND o.
func (t TT) And(o TT) TT {
	t.checkSame(o)
	r := New(t.n)
	for i := range r.words {
		r.words[i] = t.words[i] & o.words[i]
	}
	return r
}

// Or returns t OR o.
func (t TT) Or(o TT) TT {
	t.checkSame(o)
	r := New(t.n)
	for i := range r.words {
		r.words[i] = t.words[i] | o.words[i]
	}
	return r
}

// Xor returns t XOR o.
func (t TT) Xor(o TT) TT {
	t.checkSame(o)
	r := New(t.n)
	for i := range r.words {
		r.words[i] = t.words[i] ^ o.words[i]
	}
	return r
}

// Not returns the complement of t.
func (t TT) Not() TT {
	r := New(t.n)
	for i := range r.words {
		r.words[i] = ^t.words[i]
	}
	r.words[len(r.words)-1] &= t.mask()
	return r
}

// Equal reports whether t and o are the same function over the same variables.
func (t TT) Equal(o TT) bool {
	if t.n != o.n {
		return false
	}
	for i := range t.words {
		if t.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IsConst reports whether t is the constant function v. It allocates
// nothing: the check runs directly over the words (the search kernels call
// it at every recursion step).
func (t TT) IsConst(v bool) bool {
	if !v {
		for _, w := range t.words {
			if w != 0 {
				return false
			}
		}
		return true
	}
	last := len(t.words) - 1
	for _, w := range t.words[:last] {
		if w != ^uint64(0) {
			return false
		}
	}
	return t.words[last] == t.mask()
}

// CountOnes returns the onset size |{m : f(m)=1}|.
func (t TT) CountOnes() int {
	c := 0
	for _, w := range t.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Onset returns the onset minterms in increasing order.
func (t TT) Onset() []int {
	ms := make([]int, 0, t.CountOnes())
	for wi, w := range t.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			ms = append(ms, wi*64+b)
			w &= w - 1
		}
	}
	return ms
}

// OnsetBounds returns the smallest and largest onset minterms. ok is false
// for the constant-0 function.
func (t TT) OnsetBounds() (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for wi, w := range t.words {
		if w == 0 {
			continue
		}
		if lo < 0 {
			lo = wi*64 + bits.TrailingZeros64(w)
		}
		hi = wi*64 + 63 - bits.LeadingZeros64(w)
	}
	return lo, hi, lo >= 0
}

// IsInterval reports whether the onset of t is a non-empty consecutive
// interval [lo, hi] of minterm values under the current variable order.
func (t TT) IsInterval() (lo, hi int, ok bool) {
	lo, hi, ok = t.OnsetBounds()
	if !ok {
		return 0, 0, false
	}
	if hi-lo+1 != t.CountOnes() {
		return 0, 0, false
	}
	return lo, hi, true
}

// Cofactor returns the (n-1)-variable cofactor of t with x_i (1-based) fixed
// to value v. The remaining variables keep their relative order.
func (t TT) Cofactor(i int, v bool) TT {
	if i < 1 || i > t.n {
		panic(fmt.Sprintf("logic: cofactor variable %d out of range", i))
	}
	r := New(t.n - 1)
	pos := t.n - i // bit position of x_i inside a minterm
	want := 0
	if v {
		want = 1
	}
	lowMask := (1 << pos) - 1
	for m := 0; m < r.Size(); m++ {
		// Insert bit `want` at position pos of m to index into t.
		full := (m&^lowMask)<<1 | want<<pos | m&lowMask
		if t.Get(full) {
			r.Set(m, true)
		}
	}
	return r
}

// Permute returns the table of f under the variable permutation perm, where
// perm[i] = j means new variable x_{i+1} (0-based slot i) is old variable
// y_{j+1}. Equivalently, the returned table g satisfies
//
//	g(x_1..x_n) = f(y_1..y_n) with x_{i+1} = y_{perm[i]+1}.
func (t TT) Permute(perm []int) TT {
	if len(perm) != t.n {
		panic("logic: permutation length mismatch")
	}
	r := New(t.n)
	n := t.n
	for m := 0; m < t.Size(); m++ {
		// m indexes the new variable order; build the old-order minterm.
		var old int
		for i := 0; i < n; i++ {
			bit := (m >> (n - 1 - i)) & 1 // value of new x_{i+1}
			old |= bit << (n - 1 - perm[i])
		}
		if t.Get(old) {
			r.Set(m, true)
		}
	}
	return r
}

// DependsOn reports whether f depends on variable x_i (1-based). The check
// is word-parallel and allocation-free: the two cofactors differ iff some
// minterm pair (x_i=0, x_i=1) disagrees.
func (t TT) DependsOn(i int) bool {
	if i < 1 || i > t.n {
		panic(fmt.Sprintf("logic: DependsOn variable %d out of range", i))
	}
	pos := t.n - i
	if pos < 6 {
		mask := varMask6[pos]
		shift := uint(1) << uint(pos)
		for _, w := range t.words {
			if (w^(w>>shift))&^mask&t.mask() != 0 {
				return true
			}
		}
		return false
	}
	block := 1 << (pos - 6)
	for j := range t.words {
		if j&block != 0 {
			continue
		}
		if t.words[j] != t.words[j|block] {
			return true
		}
	}
	return false
}

// Support returns the 1-based indices of variables f depends on.
func (t TT) Support() []int {
	var s []int
	for i := 1; i <= t.n; i++ {
		if t.DependsOn(i) {
			s = append(s, i)
		}
	}
	return s
}

// Shrink removes non-support variables, returning the reduced table and the
// 1-based original indices of the retained variables (in order).
func (t TT) Shrink() (TT, []int) {
	sup := t.Support()
	if len(sup) == t.n {
		return t, sup
	}
	r := New(len(sup))
	for m := 0; m < r.Size(); m++ {
		var full int
		for i, v := range sup {
			bit := (m >> (len(sup) - 1 - i)) & 1
			full |= bit << (t.n - v)
		}
		// Non-support variables may take any value; use 0.
		if t.Get(full) {
			r.Set(m, true)
		}
	}
	return r, sup
}

// Eval evaluates the function on an assignment: vals[i] is the value of
// x_{i+1}.
func (t TT) Eval(vals []bool) bool {
	if len(vals) != t.n {
		panic("logic: assignment length mismatch")
	}
	m := 0
	for i, v := range vals {
		if v {
			m |= 1 << (t.n - 1 - i)
		}
	}
	return t.Get(m)
}

// String renders the table as a binary string, minterm 0 first.
func (t TT) String() string {
	var b strings.Builder
	for m := 0; m < t.Size(); m++ {
		if t.Get(m) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Hex renders the table's words as lowercase hex, word 0 (minterms 0..63)
// first, 16 digits per word. Together with the variable count (carried
// separately, e.g. in a certificate's evidence record) the rendering is a
// lossless, canonical serialization: FromHex inverts it exactly.
func (t TT) Hex() string {
	var b strings.Builder
	b.Grow(16 * len(t.words))
	for _, w := range t.words {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// FromHex parses the Hex rendering of a table over n variables. The string
// must supply exactly the right number of digits and the unused high bits of
// an n<6 table must be zero, so corrupted evidence is rejected rather than
// silently masked.
func FromHex(n int, s string) (TT, error) {
	if n < 0 || n > MaxVars {
		return TT{}, fmt.Errorf("logic: invalid variable count %d", n)
	}
	t := New(n)
	if len(s) != 16*len(t.words) {
		return TT{}, fmt.Errorf("logic: hex table for %d vars needs %d digits, got %d", n, 16*len(t.words), len(s))
	}
	for i := range t.words {
		var w uint64
		for _, c := range []byte(s[16*i : 16*i+16]) {
			var v uint64
			switch {
			case c >= '0' && c <= '9':
				v = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				v = uint64(c-'a') + 10
			default:
				return TT{}, fmt.Errorf("logic: invalid hex digit %q in table", c)
			}
			w = w<<4 | v
		}
		t.words[i] = w
	}
	if last := t.words[len(t.words)-1]; last&^t.mask() != 0 {
		return TT{}, fmt.Errorf("logic: hex table has bits beyond 2^%d minterms", n)
	}
	return t, nil
}

// Clone returns an independent copy of t.
func (t TT) Clone() TT {
	r := New(t.n)
	copy(r.words, t.words)
	return r
}

// Words exposes the raw words (read-only use).
func (t TT) Words() []uint64 { return t.words }
