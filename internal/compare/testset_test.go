package compare

import (
	"testing"
)

// Table 1 of the paper: the robust test set for the unit of Figure 6
// (L=11, U=12, identity permutation; x1 free, L_F=3, U_F=4).
func TestTable1TestSet(t *testing.T) {
	s := identitySpec(4, 11, 12)
	if s.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d, want 1", s.FreeCount())
	}
	tests := s.TestSet()
	// Paper rows: x1 free; x2,x3,x4 through >=L_F; x2,x3,x4 through <=U_F.
	// Two directions each: 14 tests.
	if len(tests) != 14 {
		t.Fatalf("test set size = %d, want 14", len(tests))
	}
	if s.NumPathFaults() != 14 {
		t.Fatalf("NumPathFaults = %d, want 14", s.NumPathFaults())
	}

	// Expected steady values per fault row (positions x1..x4; -1 marks the
	// transitioning input), transcribed from Table 1.
	rows := []struct {
		pos   int
		block BlockKind
		want  [4]int
	}{
		{1, FreePath, [4]int{-1, 0, 1, 1}},
		{2, GeqPath, [4]int{1, -1, 0, 0}},
		{3, GeqPath, [4]int{1, 0, -1, 1}},
		{4, GeqPath, [4]int{1, 0, 1, -1}},
		{2, LeqPath, [4]int{1, -1, 1, 1}},
		{3, LeqPath, [4]int{1, 1, -1, 0}},
		{4, LeqPath, [4]int{1, 1, 0, -1}},
	}
	for _, row := range rows {
		found := 0
		for _, ut := range tests {
			if ut.Pos != row.pos || ut.Block != row.block {
				continue
			}
			found++
			for j := 0; j < 4; j++ {
				if j == row.pos-1 {
					// The transitioning input: V1 != V2.
					if ut.V1[j] == ut.V2[j] {
						t.Fatalf("row %v: input %d does not transition", row, j)
					}
					continue
				}
				want := row.want[j] == 1
				if ut.V1[j] != want || ut.V2[j] != want {
					t.Fatalf("row x%d %s: input x%d = %v/%v, want steady %v",
						row.pos, row.block, j+1, ut.V1[j], ut.V2[j], want)
				}
			}
		}
		if found != 2 {
			t.Fatalf("row x%d %s: found %d tests, want 2 (rising+falling)", row.pos, row.block, found)
		}
	}
}

// Every generated test must launch a transition at the unit output.
func TestTestSetOutputTransitions(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				s := identitySpec(n, l, u)
				c := s.BuildStandalone("t", BuildOptions{Merge: true})
				for _, ut := range s.TestSet() {
					o1 := c.Eval(ut.V1)[0]
					o2 := c.Eval(ut.V2)[0]
					if o1 == o2 {
						t.Fatalf("n=%d [%d,%d] %v: output steady (%v)", n, l, u, ut, o1)
					}
				}
			}
		}
	}
}

// The test set covers every structural path: the number of tests equals
// 2 * total unit paths, and every (input, block) with a path appears.
func TestTestSetCoversAllPaths(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				s := identitySpec(n, l, u)
				tests := s.TestSet()
				if len(tests) != s.NumPathFaults() {
					t.Fatalf("n=%d [%d,%d]: %d tests vs %d faults",
						n, l, u, len(tests), s.NumPathFaults())
				}
				// Each structural path appears in both directions.
				type key struct {
					pos  int
					b    BlockKind
					rise bool
				}
				seen := map[key]int{}
				for _, ut := range tests {
					seen[key{ut.Pos, ut.Block, ut.Rising}]++
				}
				for i := 1; i <= n; i++ {
					var blocks []BlockKind
					if i <= s.FreeCount() {
						blocks = []BlockKind{FreePath}
					} else {
						if s.InGeq(i) {
							blocks = append(blocks, GeqPath)
						}
						if s.InLeq(i) {
							blocks = append(blocks, LeqPath)
						}
					}
					for _, b := range blocks {
						for _, r := range []bool{true, false} {
							if seen[key{i, b, r}] != 1 {
								t.Fatalf("n=%d [%d,%d]: path x%d %v rise=%v covered %d times",
									n, l, u, i, b, r, seen[key{i, b, r}])
							}
						}
					}
				}
			}
		}
	}
}

// Side inputs must be steady: V1 and V2 differ in exactly one position.
func TestTestSetSingleInputTransition(t *testing.T) {
	s := identitySpec(5, 6, 21)
	for _, ut := range s.TestSet() {
		diff := 0
		for j := range ut.V1 {
			if ut.V1[j] != ut.V2[j] {
				diff++
				if j != s.Perm[ut.Pos-1] {
					t.Fatalf("%v: transition on wrong input %d", ut, j)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("%v: %d transitioning inputs", ut, diff)
		}
	}
}

// Tests for permuted specs place the transition on the right original input.
func TestTestSetRespectsPermutation(t *testing.T) {
	s := Spec{N: 4, Perm: []int{2, 0, 3, 1}, L: 5, U: 10}
	for _, ut := range s.TestSet() {
		if ut.Input != s.Perm[ut.Pos-1] {
			t.Fatalf("%v: Input=%d, Perm[Pos-1]=%d", ut, ut.Input, s.Perm[ut.Pos-1])
		}
		if ut.V1[ut.Input] == ut.V2[ut.Input] {
			t.Fatalf("%v: designated input does not transition", ut)
		}
	}
}
