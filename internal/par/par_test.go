package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"compsynth/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8, 100} {
		const n = 537
		var hits [n]atomic.Int32
		Run(nil, "test", w, n, func(worker, task int) {
			if worker < 0 || worker >= w {
				t.Errorf("worker %d out of range [0,%d)", worker, w)
			}
			hits[task].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("w=%d: task %d ran %d times", w, i, got)
			}
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	Run(nil, "test", 4, 0, func(worker, task int) {
		t.Fatal("task ran")
	})
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(5, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Both tasks 10 and 90 fail; the reported error must always be task
	// 10's regardless of scheduling.
	for trial := 0; trial < 20; trial++ {
		_, err := MapErr(8, 100, func(i int) (int, error) {
			switch i {
			case 10:
				return 0, errA
			case 90:
				return 0, errB
			}
			return i, nil
		})
		if err != errA {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errA)
		}
	}
}

func TestRunRecordsSpan(t *testing.T) {
	tr := obs.NewTracer()
	tr.TrackAllocs = false
	Run(tr, "par.test", 4, 16, func(worker, task int) {})
	spans := tr.Export()
	if runtime.GOMAXPROCS(0) == 1 && len(spans) == 0 {
		// Single-proc environments may still fan out: Workers(4) = 4.
		t.Fatal("no span recorded")
	}
	if len(spans) != 1 || spans[0].Name != "par.test" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Attrs["workers"] != int64(4) || spans[0].Attrs["tasks"] != int64(16) {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}
}

func TestRunSerialRecordsNoSpan(t *testing.T) {
	tr := obs.NewTracer()
	Run(tr, "par.test", 1, 4, func(worker, task int) {})
	if got := len(tr.Export()); got != 0 {
		t.Fatalf("serial Run recorded %d spans", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[string, int]()
	Run(nil, "test", 8, 4096, func(_, i int) {
		key := fmt.Sprintf("k%d", i%97)
		c.Set(key, i%97)
		if v, ok := c.Get(key); ok && v != i%97 {
			t.Errorf("key %s: got %d", key, v)
		}
	})
	if got := c.Len(); got != 97 {
		t.Fatalf("Len = %d, want 97", got)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("phantom key")
	}
}

func TestCacheGetOrCompute(t *testing.T) {
	c := NewCache[int, int]()
	computes := 0
	for i := 0; i < 3; i++ {
		if v := c.GetOrCompute(7, func() int { computes++; return 49 }); v != 49 {
			t.Fatalf("GetOrCompute = %d, want 49", v)
		}
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	// Concurrent misses on distinct keys: every key lands its own value.
	c2 := NewCache[int, int]()
	Run(nil, "test", 8, 512, func(_, i int) {
		k := i % 31
		if v := c2.GetOrCompute(k, func() int { return k * k }); v != k*k {
			t.Errorf("key %d: got %d", k, v)
		}
	})
	if got := c2.Len(); got != 31 {
		t.Fatalf("Len = %d, want 31", got)
	}
}

// TestCacheStructKeys exercises the comparable-key form the resynthesis
// caches use: fixed-size struct keys, no per-lookup string.
func TestCacheStructKeys(t *testing.T) {
	type key struct {
		N      int32
		Lo, Hi uint64
	}
	c := NewCache[key, string]()
	Run(nil, "test", 8, 1024, func(_, i int) {
		k := key{N: int32(i % 13), Lo: uint64(i % 7), Hi: uint64(i % 3)}
		want := fmt.Sprintf("%d:%d:%d", k.N, k.Lo, k.Hi)
		c.Set(k, want)
		if v, ok := c.Get(k); ok && v != want {
			t.Errorf("key %+v: got %q", k, v)
		}
	})
	if got, want := c.Len(), 13*7*3; got > want {
		t.Fatalf("Len = %d, want <= %d", got, want)
	}
	k := key{N: 1, Lo: 2, Hi: 0}
	if v, ok := c.Get(k); !ok || v != "1:2:0" {
		t.Fatalf("Get(%+v) = %q, %v", k, v, ok)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get(k); !ok {
			t.Error("lost key")
		}
	}); n != 0 {
		t.Fatalf("warm struct-key Get allocates: %v allocs/run", n)
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	a1 := SeedFor(1995, "4:beef")
	a2 := SeedFor(1995, "4:beef")
	b := SeedFor(1995, "4:dead")
	c := SeedFor(1996, "4:beef")
	if a1 != a2 {
		t.Fatal("SeedFor not deterministic")
	}
	if a1 == b || a1 == c {
		t.Fatalf("SeedFor collisions: %d %d %d", a1, b, c)
	}
}
