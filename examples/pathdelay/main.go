// Path delay fault testability: the paper's headline result. Procedure 2
// removes mostly untestable paths, so the robust path-delay-fault coverage
// of random two-pattern tests rises sharply while stuck-at testability is
// unchanged.
package main

import (
	"fmt"
	"log"

	"compsynth"
	"compsynth/internal/gen"
)

func main() {
	bench := gen.Bench{Name: "pdfdemo", Params: gen.Params{
		Name: "pdfdemo", Inputs: 20, Outputs: 12, Gates: 180, Layers: 8,
		MaxFanin: 3, Locality: 0.75, InvProb: 0.15, Seed: 777,
	}}
	c := bench.Build()
	rr, err := compsynth.RemoveRedundancy(c)
	if err != nil {
		log.Fatal(err)
	}
	c = rr.Circuit

	res, err := compsynth.OptimizeGates(c, 5)
	if err != nil {
		log.Fatal(err)
	}
	mod := res.Circuit
	if rr2, err := compsynth.RemoveRedundancy(mod); err == nil {
		mod = rr2.Circuit
	}

	const pairs, quiet, seed = 20000, 2000, 7
	before := compsynth.PathDelayCampaign(c, pairs, quiet, seed)
	after := compsynth.PathDelayCampaign(mod, pairs, quiet, seed)

	fmt.Printf("%-10s %12s %12s %10s\n", "", "detected", "faults", "coverage")
	fmt.Printf("%-10s %12d %12d %9.2f%%\n", "original",
		before.Detected, before.TotalFaults, 100*before.Coverage())
	fmt.Printf("%-10s %12d %12d %9.2f%%\n", "modified",
		after.Detected, after.TotalFaults, 100*after.Coverage())

	removedFaults := int64(before.TotalFaults) - int64(after.TotalFaults)
	removedUndet := (int64(before.TotalFaults) - int64(before.Detected)) -
		(int64(after.TotalFaults) - int64(after.Detected))
	fmt.Printf("\npath delay faults removed:        %d\n", removedFaults)
	fmt.Printf("UNDETECTED faults removed:        %d\n", removedUndet)
	if removedFaults > 0 {
		fmt.Printf("share of removals that were dead: %.1f%%\n",
			100*float64(removedUndet)/float64(removedFaults))
	}

	// Stuck-at testability is unchanged (Table 6's claim).
	saB := compsynth.StuckAtCampaign(c, 1<<16, seed)
	saA := compsynth.StuckAtCampaign(mod, 1<<16, seed)
	fmt.Printf("\nstuck-at: original %d/%d detected; modified %d/%d detected\n",
		saB.Detected, saB.TotalFaults, saA.Detected, saA.TotalFaults)
}
