// Package techmap is a SIS-style technology mapper used to reproduce
// Table 4: circuits are decomposed into a NAND2/INV subject graph, split
// into trees at fanout points, and covered by dynamic programming over a
// small static cell library with literal-count cost. It reports the mapped
// literal count and the number of cells on the longest path.
package techmap

import (
	"fmt"

	"compsynth/internal/circuit"
)

// Decompose rewrites c into an equivalent subject graph that uses only
// NAND2 and NOT gates (plus inputs and constants).
func Decompose(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.Name + "_subject")
	remap := make([]int, len(c.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	for _, id := range c.Inputs {
		remap[id] = out.AddInput(c.Nodes[id].Name)
	}
	inv := func(x int) int { return out.AddGate(circuit.Not, "", x) }
	nand := func(a, b int) int { return out.AddGate(circuit.Nand, "", a, b) }
	// andTree produces AND of xs as INV(NAND tree), returning the NAND-form
	// complement to let callers drop double inversions.
	var andN func(xs []int) int   // returns node computing AND(xs)
	nandN := func(xs []int) int { // returns node computing NAND(xs)
		if len(xs) == 1 {
			return inv(xs[0])
		}
		acc := xs[0]
		for i := 1; i < len(xs); i++ {
			if i == len(xs)-1 {
				return nand(acc, xs[i])
			}
			acc = inv(nand(acc, xs[i]))
		}
		return acc
	}
	andN = func(xs []int) int {
		if len(xs) == 1 {
			return xs[0]
		}
		return inv(nandN(xs))
	}
	orN := func(xs []int) int { // OR(xs) = NAND(INV xs...)
		if len(xs) == 1 {
			return xs[0]
		}
		n := make([]int, len(xs))
		for i, x := range xs {
			n[i] = inv(x)
		}
		return nandN(n)
	}
	xor2 := func(a, b int) int {
		m := nand(a, b)
		return nand(nand(a, m), nand(b, m))
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		in := make([]int, len(nd.Fanin))
		for i, f := range nd.Fanin {
			in[i] = remap[f]
		}
		var r int
		switch nd.Type {
		case circuit.Const0:
			r = out.AddGate(circuit.Const0, "")
		case circuit.Const1:
			r = out.AddGate(circuit.Const1, "")
		case circuit.Buf:
			r = in[0]
		case circuit.Not:
			r = inv(in[0])
		case circuit.And:
			r = andN(in)
		case circuit.Nand:
			r = nandN(in)
		case circuit.Or:
			r = orN(in)
		case circuit.Nor:
			r = inv(orN(in))
		case circuit.Xor, circuit.Xnor:
			acc := in[0]
			for i := 1; i < len(in); i++ {
				acc = xor2(acc, in[i])
			}
			if nd.Type == circuit.Xnor {
				acc = inv(acc)
			}
			r = acc
		default:
			panic("techmap: unexpected type " + nd.Type.String())
		}
		remap[id] = r
	}
	for _, o := range c.Outputs {
		out.MarkOutput(remap[o])
	}
	out.Simplify() // cancels INV(INV(x)) introduced by the NOR/XNOR cases
	// Simplify keeps buffers that drive primary outputs (possibly with
	// additional fanout); the cell library has no BUF, so eliminate every
	// remaining buffer by rewiring all of its uses — including the PO
	// designations — to its source.
	for _, nd := range out.Nodes {
		if nd == nil || !out.Alive(nd.ID) || nd.Type != circuit.Buf {
			continue
		}
		src := nd.Fanin[0]
		for out.Nodes[src].Type == circuit.Buf {
			src = out.Nodes[src].Fanin[0]
		}
		out.ReplaceUses(nd.ID, src)
	}
	out.SweepDead()
	res, _ := out.Compact()
	return res
}

// pattern is a cell's subject-graph shape.
type pattern struct {
	op   circuit.GateType // Nand or Not; leaf when op == Input
	kids []*pattern
}

func leaf() *pattern               { return &pattern{op: circuit.Input} }
func pInv(k *pattern) *pattern     { return &pattern{op: circuit.Not, kids: []*pattern{k}} }
func pNand(a, b *pattern) *pattern { return &pattern{op: circuit.Nand, kids: []*pattern{a, b}} }

// Cell is a library element.
type Cell struct {
	Name     string
	Literals int
	shapes   []*pattern
}

// Library returns the static cell library (a small mcnc-flavoured set).
func Library() []Cell {
	l := leaf
	return []Cell{
		{"INV", 1, []*pattern{pInv(l())}},
		{"NAND2", 2, []*pattern{pNand(l(), l())}},
		{"NAND3", 3, []*pattern{
			pNand(l(), pInv(pNand(l(), l()))),
			pNand(pInv(pNand(l(), l())), l()),
		}},
		{"NAND4", 4, []*pattern{
			pNand(pInv(pNand(l(), l())), pInv(pNand(l(), l()))),
			pNand(l(), pInv(pNand(l(), pInv(pNand(l(), l()))))),
		}},
		{"NOR2", 2, []*pattern{pInv(pNand(pInv(l()), pInv(l())))}},
		{"AOI21", 3, []*pattern{
			pInv(pNand(pNand(l(), l()), pInv(l()))),
			pInv(pNand(pInv(l()), pNand(l(), l()))),
		}},
		{"AOI22", 4, []*pattern{pInv(pNand(pNand(l(), l()), pNand(l(), l())))}},
		{"OAI21", 3, []*pattern{
			pNand(pNand(pInv(l()), pInv(l())), l()),
			pNand(l(), pNand(pInv(l()), pInv(l()))),
		}},
	}
}

// Result reports a mapping (the Table 4 columns).
type Result struct {
	Literals int
	Longest  int // cells on the longest PI-to-PO path
	Cells    int
}

func (r Result) String() string {
	return fmt.Sprintf("literals=%d longest=%d cells=%d", r.Literals, r.Longest, r.Cells)
}

// Map decomposes and covers c, returning the mapped cost.
func Map(c *circuit.Circuit) Result {
	subject := Decompose(c)
	return cover(subject, Library())
}

// matchState is the DP record for one subject node.
type matchState struct {
	cost   int   // best literal cost of the tree rooted here
	cell   int   // chosen library cell
	leaves []int // subject nodes that are the chosen match's inputs
}

// cover runs tree covering on the subject graph.
func cover(c *circuit.Circuit, lib []Cell) Result {
	c.RebuildFanouts()
	// A node is a tree boundary (must be implemented as a cell output) if
	// it is a PO driver or fans out to more than one consumer pin.
	boundary := make([]bool, len(c.Nodes))
	for _, o := range c.Outputs {
		boundary[o] = true
	}
	for _, nd := range c.Nodes {
		if nd == nil || !c.Alive(nd.ID) {
			continue
		}
		if len(c.Fanouts(nd.ID)) > 1 {
			boundary[nd.ID] = true
		}
	}
	const inf = 1 << 30
	best := make([]matchState, len(c.Nodes))
	for i := range best {
		best[i].cost = inf
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		switch nd.Type {
		case circuit.Input, circuit.Const0, circuit.Const1:
			best[id] = matchState{cost: 0, cell: -1}
			continue
		}
		for ci, cell := range lib {
			for _, shape := range cell.shapes {
				leaves, ok := matchPattern(c, id, shape, boundary, true)
				if !ok {
					continue
				}
				cost := cell.Literals
				for _, lf := range leaves {
					cost += best[lf].cost
				}
				if cost < best[id].cost {
					best[id] = matchState{cost: cost, cell: ci, leaves: leaves}
				}
			}
		}
		if best[id].cost >= inf {
			panic(fmt.Sprintf("techmap: node %s unmatchable", nd.Name))
		}
	}
	// Total literals: sum of root costs over tree boundaries... each
	// boundary's cost already includes its tree; summing boundaries'
	// OWN cell costs plus recursion would double count, so instead walk
	// the chosen matches from each boundary down to its leaves.
	lits, cells := 0, 0
	depth := make([]int, len(c.Nodes))
	counted := make([]bool, len(c.Nodes))
	var emit func(root int)
	emit = func(root int) {
		if counted[root] {
			return
		}
		counted[root] = true
		ms := best[root]
		if ms.cell < 0 {
			depth[root] = 0
			return
		}
		d := 0
		for _, lf := range ms.leaves {
			emit(lf)
			if depth[lf] > d {
				d = depth[lf]
			}
		}
		depth[root] = d + 1
		lits += lib[ms.cell].Literals
		cells++
	}
	for _, nd := range c.Nodes {
		if nd != nil && c.Alive(nd.ID) && boundary[nd.ID] {
			emit(nd.ID)
		}
	}
	longest := 0
	for _, o := range c.Outputs {
		if depth[o] > longest {
			longest = depth[o]
		}
	}
	return Result{Literals: lits, Longest: longest, Cells: cells}
}

// matchPattern tries to overlay a pattern rooted at subject node id,
// returning the subject nodes at the pattern leaves. Internal pattern nodes
// may not cross tree boundaries (root excepted).
func matchPattern(c *circuit.Circuit, id int, p *pattern, boundary []bool, isRoot bool) ([]int, bool) {
	if p.op == circuit.Input {
		return []int{id}, true
	}
	nd := c.Nodes[id]
	if nd.Type != p.op {
		return nil, false
	}
	if !isRoot && boundary[id] {
		return nil, false
	}
	switch p.op {
	case circuit.Not:
		return matchPattern(c, nd.Fanin[0], p.kids[0], boundary, false)
	case circuit.Nand:
		if len(nd.Fanin) != 2 {
			return nil, false
		}
		// Try both orientations (commutativity).
		for _, ord := range [][2]int{{0, 1}, {1, 0}} {
			l0, ok0 := matchPattern(c, nd.Fanin[ord[0]], p.kids[0], boundary, false)
			if !ok0 {
				continue
			}
			l1, ok1 := matchPattern(c, nd.Fanin[ord[1]], p.kids[1], boundary, false)
			if !ok1 {
				continue
			}
			return append(l0, l1...), true
		}
		return nil, false
	}
	return nil, false
}
