// Package obs is the observability substrate for the synthesis-for-
// testability pipeline: hierarchical tracing spans, a process-wide metrics
// registry, a verbose run logger, and a JSON run report that ties them all
// together.
//
// Design constraints, in order:
//
//  1. Zero cost when off. Every entry point is nil-safe — a nil *Tracer,
//     *Span or *Logger no-ops without allocating — so the pipeline packages
//     instrument their hot loops unconditionally and pay nothing unless a
//     command enables tracing. Counters are single atomic adds and stay on
//     permanently.
//  2. No dependencies beyond the standard library, matching the rest of the
//     module.
//  3. One JSON artifact per run. A Report serializes the tool name and
//     arguments, environment, circuit statistics before and after, the span
//     tree, and a snapshot of every registered metric, so experiments can be
//     diffed and archived mechanically.
//
// The conventional wiring for a command is:
//
//	flags := obs.AddFlags(flag.CommandLine)
//	flag.Parse()
//	run := flags.Start("sft")
//	defer run.Finish()
//	sp := run.Tracer.StartSpan("load")
//	...
//	sp.End()
//
// Pipeline packages receive the tracer through their Options structs and
// declare their counters at package init against the Default registry, e.g.
//
//	var mCandidates = obs.C("resynth.candidates_examined")
package obs
