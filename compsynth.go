// Package compsynth is a synthesis-for-testability toolkit for
// combinational logic circuits, reproducing Pomeranz & Reddy,
// "On Synthesis-for-Testability of Combinational Logic Circuits"
// (32nd DAC, 1995).
//
// The toolkit rewrites gate-level circuits by replacing subcircuits that
// implement comparison functions — functions whose onset is a consecutive
// interval [L, U] of minterm values under some input permutation — with
// comparison units: compact structures with at most two paths per input
// that are fully robustly testable for path delay faults. Two optimization
// objectives are provided: minimize equivalent-2-input gate count
// (Procedure 2) and minimize path count (Procedure 3).
//
// Around the core transformation the module provides the full experimental
// substrate of the paper: .bench netlist I/O, path counting, stuck-at fault
// simulation and PODEM ATPG, redundancy removal, robust path-delay-fault
// analysis, a RAMBO_C-style baseline optimizer, and SIS-style technology
// mapping.
//
// Quick start:
//
//	c, err := compsynth.LoadBench("circuit.bench")
//	res, err := compsynth.OptimizeGates(c, 6)   // Procedure 2, K=6
//	fmt.Println(res)                            // gates/paths before & after
//	compsynth.SaveBench(res.Circuit, "out.bench")
package compsynth

import (
	"io"
	"math/big"
	"os"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/compare"
	"compsynth/internal/delay"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	"compsynth/internal/logic"
	"compsynth/internal/paths"
	"compsynth/internal/rambo"
	"compsynth/internal/redundancy"
	"compsynth/internal/resynth"
	"compsynth/internal/simulate"
	"compsynth/internal/techmap"
)

// Circuit is a combinational gate-level netlist.
type Circuit = circuit.Circuit

// GateType enumerates the supported gate kinds.
type GateType = circuit.GateType

// Re-exported gate kinds.
const (
	Input  = circuit.Input
	Const0 = circuit.Const0
	Const1 = circuit.Const1
	Buf    = circuit.Buf
	Not    = circuit.Not
	And    = circuit.And
	Or     = circuit.Or
	Nand   = circuit.Nand
	Nor    = circuit.Nor
	Xor    = circuit.Xor
	Xnor   = circuit.Xnor
)

// NewCircuit returns an empty circuit.
func NewCircuit(name string) *Circuit { return circuit.New(name) }

// ParseBench reads an ISCAS-89 .bench netlist.
func ParseBench(r io.Reader, name string) (*Circuit, error) { return bench.Parse(r, name) }

// LoadBench reads a .bench file.
func LoadBench(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.Parse(f, path)
}

// WriteBench emits a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// SaveBench writes a .bench file.
func SaveBench(c *Circuit, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.Write(f, c)
}

// CountPaths runs the paper's Procedure 1: the number of PI-to-PO paths.
func CountPaths(c *Circuit) (uint64, error) { return paths.Count(c) }

// CountPathsBig is CountPaths with arbitrary precision.
func CountPathsBig(c *Circuit) *big.Int { return paths.CountBig(c) }

// OptimizeResult reports an optimization run.
type OptimizeResult = resynth.Result

// OptimizeOptions configures the resynthesis procedures.
type OptimizeOptions = resynth.Options

// DefaultOptimizeOptions returns the paper's configuration (K = 5,
// Procedure 2).
func DefaultOptimizeOptions() OptimizeOptions { return resynth.DefaultOptions() }

// Optimize runs a resynthesis procedure with explicit options.
func Optimize(c *Circuit, opt OptimizeOptions) (*OptimizeResult, error) {
	return resynth.Optimize(c, opt)
}

// OptimizeGates runs Procedure 2 (gate-count reduction) with input limit K.
func OptimizeGates(c *Circuit, k int) (*OptimizeResult, error) {
	opt := resynth.DefaultOptions()
	opt.K = k
	opt.Objective = resynth.MinGates
	return resynth.Optimize(c, opt)
}

// OptimizePaths runs Procedure 3 (path-count reduction) with input limit K.
func OptimizePaths(c *Circuit, k int) (*OptimizeResult, error) {
	opt := resynth.DefaultOptions()
	opt.K = k
	opt.Objective = resynth.MinPaths
	return resynth.Optimize(c, opt)
}

// RedundancyResult reports a redundancy-removal run.
type RedundancyResult = redundancy.Result

// RemoveRedundancy returns an irredundant equivalent of c (the paper's
// post-pass, after [15]).
func RemoveRedundancy(c *Circuit) (*RedundancyResult, error) {
	return redundancy.Remove(c, redundancy.DefaultOptions())
}

// StuckAtResult reports a random-pattern stuck-at campaign.
type StuckAtResult = faultsim.CampaignResult

// StuckAtCampaign applies maxPatterns random patterns to the collapsed
// stuck-at fault list (Table 6 methodology).
func StuckAtCampaign(c *Circuit, maxPatterns int, seed int64) StuckAtResult {
	return faultsim.RunRandom(c, faults.Collapse(c), maxPatterns, seed)
}

// PathDelayResult reports a robust path-delay-fault campaign.
type PathDelayResult = delay.CampaignResult

// PathDelayCampaign applies random two-pattern tests and counts robustly
// detected path delay faults (Table 7 methodology).
func PathDelayCampaign(c *Circuit, maxPairs, quietPairs int, seed int64) PathDelayResult {
	return delay.RunRandom(c, delay.CampaignOptions{
		MaxPairs: maxPairs, QuietPairs: quietPairs, Seed: seed,
	})
}

// TechMapResult reports a technology mapping (Table 4 columns).
type TechMapResult = techmap.Result

// TechMap maps c onto the built-in cell library and reports literal count
// and mapped depth.
func TechMap(c *Circuit) TechMapResult { return techmap.Map(c) }

// BaselineResult reports a run of the RAMBO_C-style baseline optimizer.
type BaselineResult = rambo.Result

// OptimizeBaseline runs the redundancy-addition-and-removal-style baseline
// of Table 3 (cut resubstitution with two-level minimization and factoring).
func OptimizeBaseline(c *Circuit, k int) (*BaselineResult, error) {
	opt := rambo.DefaultOptions()
	opt.K = k
	return rambo.Optimize(c, opt)
}

// Equivalent checks functional equivalence by exhaustive simulation for
// small input counts and 64-bit random simulation otherwise.
func Equivalent(a, b *Circuit) bool {
	return simulate.EquivalentRandom(a, b, 64, 16, 12345)
}

// ComparisonSpec describes a comparison-function realization.
type ComparisonSpec = compare.Spec

// TruthTable is a bit-parallel truth table over up to 16 variables.
type TruthTable = logic.TT

// IdentifyComparison reports whether f is realizable as a single comparison
// unit (possibly with a complemented output) and returns the realization.
func IdentifyComparison(f TruthTable) (ComparisonSpec, bool) {
	return compare.IdentifyBest(f)
}
