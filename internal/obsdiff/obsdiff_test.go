package obsdiff

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/obs"
)

func report(dur float64, counters map[string]int64) *obs.Report {
	return &obs.Report{Tool: "t", DurationMS: dur, Metrics: obs.Snapshot{Counters: counters}}
}

func names(ds []Delta) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Name)
	}
	return out
}

func TestDiffReportsIdentical(t *testing.T) {
	r := report(100, map[string]int64{"resynth.passes": 3, "faultsim.fault_evals": 500})
	res := DiffReports(r, r, DefaultOptions())
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("self-diff regressed: %v", names(regs))
	}
	if len(res.Deltas) == 0 {
		t.Fatal("self-diff compared nothing")
	}
}

// TestDiffReportsCounterRegression pins the determinism gate: the default
// tolerance for counters is zero, so any drift regresses.
func TestDiffReportsCounterRegression(t *testing.T) {
	before := report(100, map[string]int64{"resynth.candidates_examined": 1000})
	after := report(100, map[string]int64{"resynth.candidates_examined": 1001})
	regs := DiffReports(before, after, DefaultOptions()).Regressions()
	if len(regs) != 1 || regs[0].Name != "counter.resynth.candidates_examined" {
		t.Fatalf("regressions = %v, want the drifted counter", names(regs))
	}
}

// TestHistogramTimingTolerance pins the histogram hygiene rule: sample
// counts are deterministic and diff at Tol (zero), but the mean of a
// wall-clock histogram (_ms / duration names, e.g. the par.task_wait_ms
// queue telemetry) varies run to run and diffs at TolTime instead.
func TestHistogramTimingTolerance(t *testing.T) {
	hist := func(name string, count int64, mean float64) *obs.Report {
		return &obs.Report{Tool: "t", Metrics: obs.Snapshot{
			Histograms: map[string]obs.HistogramStats{name: {Count: count, Mean: mean}},
		}}
	}
	opt := DefaultOptions()
	// A 30% slower mean on a timing histogram is within TolTime (50%).
	regs := DiffReports(hist("par.task_wait_ms", 64, 1.0), hist("par.task_wait_ms", 64, 1.3), opt).Regressions()
	if len(regs) != 0 {
		t.Errorf("timing-histogram mean jitter regressed: %v", names(regs))
	}
	// The same drift on a non-timing histogram stays a zero-tol regression.
	regs = DiffReports(hist("resynth.candidate_inputs", 64, 1.0), hist("resynth.candidate_inputs", 64, 1.3), opt).Regressions()
	if len(regs) != 1 || regs[0].Name != "hist.resynth.candidate_inputs.mean" {
		t.Errorf("deterministic histogram mean drift did not regress: %v", names(regs))
	}
	// Sample-count drift regresses even on timing histograms.
	regs = DiffReports(hist("par.task_wait_ms", 64, 1.0), hist("par.task_wait_ms", 65, 1.0), opt).Regressions()
	if len(regs) != 1 || regs[0].Name != "hist.par.task_wait_ms.count" {
		t.Errorf("timing-histogram count drift did not regress: %v", names(regs))
	}
}

// TestResultJSONShape pins the machine-readable schema behind obsdiff -json:
// consumers rely on the kind/deltas envelope and the per-delta field names.
func TestResultJSONShape(t *testing.T) {
	before := report(100, map[string]int64{"resynth.passes": 3})
	after := report(100, map[string]int64{"resynth.passes": 4})
	raw, err := json.Marshal(DiffReports(before, after, DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Kind   string `json:"kind"`
		Deltas []struct {
			Name       string  `json:"name"`
			Before     float64 `json:"before"`
			After      float64 `json:"after"`
			Rel        float64 `json:"rel"`
			Tol        float64 `json:"tol"`
			Regression bool    `json:"regression"`
		} `json:"deltas"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Kind != "report" || len(decoded.Deltas) == 0 {
		t.Fatalf("JSON envelope = kind %q with %d deltas", decoded.Kind, len(decoded.Deltas))
	}
	found := false
	for _, d := range decoded.Deltas {
		if d.Name == "counter.resynth.passes" {
			found = true
			if d.Before != 3 || d.After != 4 || !d.Regression {
				t.Errorf("delta fields did not survive the JSON round trip: %+v", d)
			}
		}
	}
	if !found {
		t.Error("counter delta missing from JSON output")
	}
}

// TestDirection pins that regression direction follows the quantity name:
// wall-clock may improve freely, coverage may only fall, detections may
// only fall, and "more is worse" quantities may only rise.
func TestDirection(t *testing.T) {
	opt := DefaultOptions()

	// duration_ms: faster is fine even at -70%, slower beyond TolTime regresses.
	if regs := DiffReports(report(100, nil), report(30, nil), opt).Regressions(); len(regs) != 0 {
		t.Errorf("a faster run regressed: %v", names(regs))
	}
	if regs := DiffReports(report(100, nil), report(200, nil), opt).Regressions(); len(regs) != 1 {
		t.Errorf("a 2x slower run did not regress: %v", names(regs))
	}

	// detected: lower is worse, higher is an improvement.
	down := DiffReports(report(0, map[string]int64{"faultsim.faults_detected": 100}),
		report(0, map[string]int64{"faultsim.faults_detected": 90}), opt)
	if len(down.Regressions()) != 1 {
		t.Errorf("lost detections did not regress: %v", names(down.Deltas))
	}
	up := DiffReports(report(0, map[string]int64{"faultsim.faults_detected": 90}),
		report(0, map[string]int64{"faultsim.faults_detected": 100}), opt)
	if len(up.Regressions()) != 0 {
		t.Errorf("gained detections regressed: %v", names(up.Regressions()))
	}

	// circuit_after.gates: higher is worse.
	bigger := DiffReports(
		&obs.Report{Tool: "t", CircuitAfter: &obs.CircuitInfo{Gates: 10}},
		&obs.Report{Tool: "t", CircuitAfter: &obs.CircuitInfo{Gates: 12}}, opt)
	found := false
	for _, d := range bigger.Regressions() {
		if d.Name == "circuit_after.gates" {
			found = true
		}
	}
	if !found {
		t.Errorf("grown circuit did not regress: %v", names(bigger.Deltas))
	}
	smaller := DiffReports(
		&obs.Report{Tool: "t", CircuitAfter: &obs.CircuitInfo{Gates: 12}},
		&obs.Report{Tool: "t", CircuitAfter: &obs.CircuitInfo{Gates: 10}}, opt)
	for _, d := range smaller.Regressions() {
		if d.Name == "circuit_after.gates" {
			t.Errorf("shrunk circuit regressed")
		}
	}
}

func TestPerMetricOverride(t *testing.T) {
	opt := DefaultOptions()
	opt.PerMetric = map[string]float64{"counter.x": 1.0}
	before := report(0, map[string]int64{"x": 100})
	after := report(0, map[string]int64{"x": 150})
	if regs := DiffReports(before, after, opt).Regressions(); len(regs) != 0 {
		t.Fatalf("override did not widen tolerance: %v", names(regs))
	}
	opt.PerMetric["counter.x"] = 0.1
	if regs := DiffReports(before, after, opt).Regressions(); len(regs) != 1 {
		t.Fatalf("tightened override did not catch drift")
	}
}

// TestDiffResultsLeaves pins the flattening of nested Results payloads and
// the missing/new annotations.
func TestDiffResultsLeaves(t *testing.T) {
	before := &obs.Report{Tool: "t", Results: map[string]any{
		"stuck_at": map[string]any{"Coverage": 0.95, "Detected": 40.0},
	}}
	after := &obs.Report{Tool: "t", Results: map[string]any{
		"stuck_at": map[string]any{"Coverage": 0.90},
	}}
	res := DiffReports(before, after, DefaultOptions())
	byName := map[string]Delta{}
	for _, d := range res.Deltas {
		byName[d.Name] = d
	}
	cov := byName["results.stuck_at.Coverage"]
	if !cov.Regression {
		t.Errorf("coverage drop did not regress: %+v", cov)
	}
	det := byName["results.stuck_at.Detected"]
	if det.Note != "missing after" || !det.Regression {
		t.Errorf("vanished Detected = %+v, want regression noted 'missing after'", det)
	}
}

func TestDiffBench(t *testing.T) {
	before := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkSim", CPU: 1, NsPerOp: 100},
		{Name: "BenchmarkGone", CPU: 1, NsPerOp: 50},
	}, Speedups: []SpeedEntry{{Name: "BenchmarkSim", CPU: 2, Speedup: 1.8}}}
	after := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkSim", CPU: 1, NsPerOp: 200},
	}, Speedups: []SpeedEntry{{Name: "BenchmarkSim", CPU: 2, Speedup: 1.0}}}
	res := DiffBench(before, after, DefaultOptions())
	regs := map[string]Delta{}
	for _, d := range res.Regressions() {
		regs[d.Name] = d
	}
	if d, ok := regs["bench.BenchmarkSim/cpu=1.ns_per_op"]; !ok || d.Rel <= 0 {
		t.Errorf("2x slower benchmark missing from regressions: %v", regs)
	}
	if d, ok := regs["bench.BenchmarkGone/cpu=1.ns_per_op"]; !ok || d.Note != "missing after" {
		t.Errorf("vanished benchmark not flagged: %v", regs)
	}
	if _, ok := regs["bench.BenchmarkSim/cpu=2.speedup"]; !ok {
		t.Errorf("lost speedup not flagged: %v", regs)
	}

	// Within tolerance: 10% slower passes at the default 25%.
	ok := DiffBench(before, &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkSim", CPU: 1, NsPerOp: 110},
		{Name: "BenchmarkGone", CPU: 1, NsPerOp: 50},
	}, Speedups: []SpeedEntry{{Name: "BenchmarkSim", CPU: 2, Speedup: 1.8}}}, DefaultOptions())
	if regs := ok.Regressions(); len(regs) != 0 {
		t.Errorf("within-tolerance bench regressed: %v", names(regs))
	}
}

func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "bench.json")
	writeFile(t, reportPath, `{"tool":"sft","duration_ms":10,"metrics":{"counters":{"a.b":1}}}`)
	writeFile(t, benchPath, `{"date":"2026-08-06","benchmarks":[{"name":"B","cpu":1,"ns_per_op":5}]}`)

	res, err := DiffFiles(reportPath, reportPath, DefaultOptions())
	if err != nil || res.Kind != "report" {
		t.Fatalf("report/report diff: %v kind=%v", err, res)
	}
	res, err = DiffFiles(benchPath, benchPath, DefaultOptions())
	if err != nil || res.Kind != "bench" {
		t.Fatalf("bench/bench diff: %v kind=%v", err, res)
	}
	if _, err := DiffFiles(reportPath, benchPath, DefaultOptions()); err == nil ||
		!strings.Contains(err.Error(), "cannot diff") {
		t.Fatalf("mixed-kind diff: err = %v, want kind mismatch", err)
	}
	junk := filepath.Join(dir, "junk.json")
	writeFile(t, junk, `{"neither":true}`)
	if _, err := DiffFiles(junk, junk, DefaultOptions()); err == nil {
		t.Fatal("undetectable artifact accepted")
	}
}

// TestGoldenSelfDiff runs the committed CI golden against itself (must be
// clean) and against a mutated copy with one counter bumped (must regress)
// — the same check scripts/ci.sh performs against a fresh run.
func TestGoldenSelfDiff(t *testing.T) {
	golden := filepath.Join("testdata", "golden_report.json")
	res, err := DiffFiles(golden, golden, DefaultOptions())
	if err != nil {
		t.Fatalf("golden does not load: %v", err)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("golden self-diff regressed: %v", names(regs))
	}

	var rep obs.Report
	if err := json.Unmarshal([]byte(readFile(t, golden)), &rep); err != nil {
		t.Fatal(err)
	}
	const key = "faultsim.patterns_simulated"
	if rep.Metrics.Counters[key] == 0 {
		t.Fatalf("golden lacks counter %s; regenerate it (see scripts/ci.sh)", key)
	}
	rep.Metrics.Counters[key] *= 2 // well out of the zero counter tolerance
	mutated, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	mutPath := filepath.Join(t.TempDir(), "mutated.json")
	writeFile(t, mutPath, string(mutated))
	res, err = DiffFiles(golden, mutPath, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Regressions() {
		if d.Name == "counter.faultsim.patterns_simulated" {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected counter drift not caught: %v", names(res.Regressions()))
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func fp(v float64) *float64 { return &v }

// TestDiffBenchAllocs pins the allocation gate: allocs/op may only fall
// (TolAlloc defaults to 0), B/op rides the bench tolerance, and allocation
// columns appearing in the after file only (the baseline predates
// -benchmem) are informational, not regressions.
func TestDiffBenchAllocs(t *testing.T) {
	before := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkResynth", CPU: 1, NsPerOp: 100, BytesPerOp: fp(4096), AllocsPerOp: fp(50)},
	}}

	// One extra alloc/op regresses even though it is <25%.
	worse := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkResynth", CPU: 1, NsPerOp: 100, BytesPerOp: fp(4096), AllocsPerOp: fp(51)},
	}}
	regs := DiffBench(before, worse, DefaultOptions()).Regressions()
	if len(regs) != 1 || regs[0].Name != "bench.BenchmarkResynth/cpu=1.allocs_per_op" {
		t.Fatalf("alloc growth not caught: %v", names(regs))
	}

	// Fewer allocations and bytes are an improvement, never a regression.
	betterFile := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkResynth", CPU: 1, NsPerOp: 100, BytesPerOp: fp(1024), AllocsPerOp: fp(10)},
	}}
	if regs := DiffBench(before, betterFile, DefaultOptions()).Regressions(); len(regs) != 0 {
		t.Fatalf("reduced allocations regressed: %v", names(regs))
	}

	// Allocation columns vanishing from the new baseline lose gate coverage.
	stripped := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkResynth", CPU: 1, NsPerOp: 100},
	}}
	regs = DiffBench(before, stripped, DefaultOptions()).Regressions()
	if len(regs) != 2 {
		t.Fatalf("vanished alloc columns not flagged: %v", names(regs))
	}
}

// TestDiffBenchNewEntries pins that quantities present only in the after
// file — a newly added benchmark, or allocation columns measured for the
// first time — are recorded as "new" without tripping the gate (the old
// behavior diffed them against an implicit zero, making every addition an
// infinite regression).
func TestDiffBenchNewEntries(t *testing.T) {
	before := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkSim", CPU: 1, NsPerOp: 100},
	}}
	after := &BenchFile{Benchmarks: []BenchEntry{
		{Name: "BenchmarkSim", CPU: 1, NsPerOp: 100, BytesPerOp: fp(2048), AllocsPerOp: fp(7)},
		{Name: "BenchmarkFresh", CPU: 1, NsPerOp: 999, BytesPerOp: fp(10), AllocsPerOp: fp(1)},
	}}
	res := DiffBench(before, after, DefaultOptions())
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("new benchmark/measurements regressed: %v", names(regs))
	}
	newNotes := 0
	for _, d := range res.Deltas {
		if d.Note == "new" {
			newNotes++
		}
	}
	if newNotes != 5 {
		t.Fatalf("want 5 deltas noted 'new', got %d: %+v", newNotes, res.Deltas)
	}
}
