package compare

import (
	"math/rand"

	"compsynth/internal/logic"
)

// Identification of comparison functions.
//
// The naive method of Section 3.4 tries all n! permutations at O(2^n) each.
// The exact search below removes the n! factor the way the paper's
// Hamiltonian-path remark suggests: it picks the most significant variable
// first and recurses on the cofactors, using the fact that an interval onset
// decomposes as
//
//	f1 = 0            and f0 an interval, or
//	f0 = 0            and f1 an interval, or
//	f0 a suffix (>=L) and f1 a prefix (<=U) over a COMMON remaining order.
//
// Suffix and prefix sets decompose similarly, so inconsistent orders are
// pruned immediately instead of being enumerated.

// Identify returns a Spec for f if f is a comparison function with its
// onset forming the interval (Complement = false). The constant-0 function
// is not a comparison function; constant-1 is (the full interval).
func Identify(f logic.TT) (Spec, bool) {
	var found Spec
	ok := false
	enumerate(f, false, func(s Spec) bool {
		found, ok = s, true
		return false // stop at the first spec
	})
	return found, ok
}

// IdentifyBest tries the onset first and, failing that, the offset: if the
// complement of f is a comparison function, f is implemented as a comparison
// unit followed by an inverter (Complement = true), as done in the paper's
// experiments.
func IdentifyBest(f logic.TT) (Spec, bool) {
	s, ok := identifyBest(f)
	return s, countIdentify(ok)
}

func identifyBest(f logic.TT) (Spec, bool) {
	if f.IsConst(false) || f.IsConst(true) {
		// Constants are not implemented as units; resynthesis folds them.
		if f.IsConst(true) {
			return Identify(f)
		}
		return Spec{}, false
	}
	if s, ok := Identify(f); ok {
		return s, true
	}
	var found Spec
	ok := false
	enumerate(f.Not(), true, func(s Spec) bool {
		found, ok = s, true
		return false
	})
	return found, ok
}

// IdentifyAll enumerates up to limit distinct Specs realizing f (onset
// forms, then complemented forms). Useful for picking the cheapest unit.
func IdentifyAll(f logic.TT, limit int) []Spec {
	var specs []Spec
	seen := map[string]bool{}
	add := func(s Spec) bool {
		k := s.String()
		if !seen[k] {
			seen[k] = true
			specs = append(specs, s)
		}
		return len(specs) < limit
	}
	enumerate(f, false, add)
	if len(specs) < limit && !f.IsConst(false) && !f.IsConst(true) {
		enumerate(f.Not(), true, add)
	}
	return specs
}

// enumerate calls emit for every (perm, L, U) realization of f's onset as an
// interval. emit returns false to stop. complement is recorded in the Spec.
func enumerate(f logic.TT, complement bool, emit func(Spec) bool) {
	n := f.Vars()
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	searchInterval(f, vars, func(perm []int, l, u int) bool {
		s := Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u, Complement: complement}
		return emit(s)
	})
}

// searchInterval enumerates orders making f's onset the interval [L,U].
// vars maps current positions (0-based) to original indices. emit returns
// false to abort the whole search; searchInterval returns false when aborted.
func searchInterval(f logic.TT, vars []int, emit func(perm []int, l, u int) bool) bool {
	k := f.Vars()
	if f.IsConst(false) {
		return true // empty onset: not an interval
	}
	if f.IsConst(true) {
		return emit(append([]int(nil), vars...), 0, 1<<k-1)
	}
	// k >= 1 here since non-constant.
	for p := 0; p < k; p++ {
		f0 := f.Cofactor(p+1, false)
		f1 := f.Cofactor(p+1, true)
		rest := restVars(vars, p)
		half := 1 << (k - 1)
		switch {
		case f1.IsConst(false):
			if !searchInterval(f0, rest, func(perm []int, l, u int) bool {
				return emit(prepend(vars[p], perm), l, u)
			}) {
				return false
			}
		case f0.IsConst(false):
			if !searchInterval(f1, rest, func(perm []int, l, u int) bool {
				return emit(prepend(vars[p], perm), l+half, u+half)
			}) {
				return false
			}
		default:
			if !searchSplit(f0, f1, rest, func(perm []int, l, u int) bool {
				return emit(prepend(vars[p], perm), l, u+half)
			}) {
				return false
			}
		}
	}
	return true
}

// searchSplit enumerates common orders under which fs is a suffix set
// ({m : m >= L}) and fp a prefix set ({m : m <= U}) simultaneously.
// Preconditions: fs and fp are non-constant-0 functions over the same vars.
func searchSplit(fs, fp logic.TT, vars []int, emit func(perm []int, l, u int) bool) bool {
	k := fs.Vars()
	if k == 0 {
		// Single minterm each; both non-0 means both are {0}: L=0, U=0.
		return emit(nil, 0, 0)
	}
	sConst1 := fs.IsConst(true)
	pConst1 := fp.IsConst(true)
	if sConst1 && pConst1 {
		return emit(append([]int(nil), vars...), 0, 1<<k-1)
	}
	if sConst1 {
		// Only the prefix constraint remains; L = 0.
		return searchPrefix(fp, vars, func(perm []int, u int) bool {
			return emit(perm, 0, u)
		})
	}
	if pConst1 {
		return searchSuffix(fs, vars, func(perm []int, l int) bool {
			return emit(perm, l, 1<<k-1)
		})
	}
	for p := 0; p < k; p++ {
		fs0, fs1 := fs.Cofactor(p+1, false), fs.Cofactor(p+1, true)
		fp0, fp1 := fp.Cofactor(p+1, false), fp.Cofactor(p+1, true)
		rest := restVars(vars, p)
		half := 1 << (k - 1)

		// Suffix side: either l-bit = 0 (fs1 = 1, fs0 suffix) or
		// l-bit = 1 (fs0 = 0, fs1 suffix).
		// Prefix side: either u-bit = 1 (fp0 = 1, fp1 prefix) or
		// u-bit = 0 (fp1 = 0, fp0 prefix).
		type branch struct {
			fsRest, fpRest logic.TT
			lAdd, uAdd     int
			okS, okP       bool
		}
		branches := []branch{
			{fs0, fp1, 0, half, fs1.IsConst(true), fp0.IsConst(true)},
			{fs0, fp0, 0, 0, fs1.IsConst(true), fp1.IsConst(false)},
			{fs1, fp1, half, half, fs0.IsConst(false), fp0.IsConst(true)},
			{fs1, fp0, half, 0, fs0.IsConst(false), fp1.IsConst(false)},
		}
		for _, b := range branches {
			if !b.okS || !b.okP {
				continue
			}
			if b.fsRest.IsConst(false) || b.fpRest.IsConst(false) {
				continue // suffix/prefix sets must stay non-empty
			}
			if !searchSplit(b.fsRest, b.fpRest, rest, func(perm []int, l, u int) bool {
				return emit(prepend(vars[p], perm), l+b.lAdd, u+b.uAdd)
			}) {
				return false
			}
		}
	}
	return true
}

// searchSuffix enumerates orders making f = {m : m >= L}, f not constant-0.
func searchSuffix(f logic.TT, vars []int, emit func(perm []int, l int) bool) bool {
	k := f.Vars()
	if f.IsConst(true) {
		return emit(append([]int(nil), vars...), 0)
	}
	if k == 0 || f.IsConst(false) {
		return true
	}
	for p := 0; p < k; p++ {
		f0, f1 := f.Cofactor(p+1, false), f.Cofactor(p+1, true)
		rest := restVars(vars, p)
		half := 1 << (k - 1)
		if f1.IsConst(true) && !f0.IsConst(false) {
			if !searchSuffix(f0, rest, func(perm []int, l int) bool {
				return emit(prepend(vars[p], perm), l)
			}) {
				return false
			}
		}
		if f0.IsConst(false) && !f1.IsConst(false) {
			if !searchSuffix(f1, rest, func(perm []int, l int) bool {
				return emit(prepend(vars[p], perm), l+half)
			}) {
				return false
			}
		}
	}
	return true
}

// searchPrefix enumerates orders making f = {m : m <= U}, f not constant-0.
func searchPrefix(f logic.TT, vars []int, emit func(perm []int, u int) bool) bool {
	k := f.Vars()
	if f.IsConst(true) {
		return emit(append([]int(nil), vars...), 1<<k-1)
	}
	if k == 0 || f.IsConst(false) {
		return true
	}
	for p := 0; p < k; p++ {
		f0, f1 := f.Cofactor(p+1, false), f.Cofactor(p+1, true)
		rest := restVars(vars, p)
		half := 1 << (k - 1)
		if f0.IsConst(true) && !f1.IsConst(false) {
			if !searchPrefix(f1, rest, func(perm []int, u int) bool {
				return emit(prepend(vars[p], perm), u+half)
			}) {
				return false
			}
		}
		if f1.IsConst(false) && !f0.IsConst(false) {
			if !searchPrefix(f0, rest, func(perm []int, u int) bool {
				return emit(prepend(vars[p], perm), u)
			}) {
				return false
			}
		}
	}
	return true
}

func restVars(vars []int, p int) []int {
	rest := make([]int, 0, len(vars)-1)
	rest = append(rest, vars[:p]...)
	return append(rest, vars[p+1:]...)
}

func prepend(v int, perm []int) []int {
	return append([]int{v}, perm...)
}

// IdentifySampling is the paper's experimental identification method: it
// tries up to maxPerms permutations of the inputs (the identity first, then
// random shuffles) and checks whether the onset or the offset minterms are
// consecutive under each. rng may be nil for a fixed default seed.
func IdentifySampling(f logic.TT, maxPerms int, rng *rand.Rand) (Spec, bool) {
	s, ok := identifySampling(f, maxPerms, rng)
	return s, countIdentify(ok)
}

func identifySampling(f logic.TT, maxPerms int, rng *rand.Rand) (Spec, bool) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1995))
	}
	n := f.Vars()
	if f.IsConst(false) {
		return Spec{}, false
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for t := 0; t < maxPerms; t++ {
		if t > 0 {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		g := f.Permute(perm)
		if l, u, ok := g.IsInterval(); ok {
			return Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u}, true
		}
		if l, u, ok := g.Not().IsInterval(); ok {
			return Spec{N: n, Perm: append([]int(nil), perm...), L: l, U: u, Complement: true}, true
		}
	}
	return Spec{}, false
}

// IsComparison reports whether f is a comparison function (onset form).
func IsComparison(f logic.TT) bool {
	_, ok := Identify(f)
	return ok
}
