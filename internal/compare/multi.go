package compare

import (
	"fmt"
	"math/rand"

	"compsynth/internal/circuit"
	"compsynth/internal/logic"
)

// Multi-unit synthesis — the paper's Section 6 extension (2): any function
// can be written as f = f1 + f2 + ... + fk with each fi a comparison
// function, by partitioning the onset into intervals under a common input
// permutation and ORing the resulting comparison units.

// Realization is the common interface of single- and multi-unit
// implementations, as consumed by the resynthesis procedures.
type Realization interface {
	// GateCost is the equivalent-2-input gate count of the realization.
	GateCost() int
	// PathCost is the number of paths arriving at the output when input j
	// carries np[j] paths.
	PathCost(np []uint64) uint64
	// Build appends the realization to c and returns the output node.
	Build(c *circuit.Circuit, inputs []int, opt BuildOptions) int
	// Table reconstructs the realized function.
	Table() logic.TT
}

var (
	_ Realization = Spec{}
	_ Realization = MultiSpec{}
)

// MultiSpec realizes a function as the OR of comparison units sharing one
// input permutation. When Complement is set the OR is inverted (the offset
// was partitioned instead).
type MultiSpec struct {
	N          int
	Perm       []int
	Intervals  [][2]int // disjoint, ascending [L,U] pairs under Perm
	Complement bool
}

func (m MultiSpec) String() string {
	c := ""
	if m.Complement {
		c = " (complemented)"
	}
	return fmt.Sprintf("multi{n=%d perm=%v iv=%v%s}", m.N, m.Perm, m.Intervals, c)
}

// specs expands the intervals into single-unit Specs sharing Perm.
func (m MultiSpec) specs() []Spec {
	out := make([]Spec, len(m.Intervals))
	for i, iv := range m.Intervals {
		out[i] = Spec{N: m.N, Perm: m.Perm, L: iv[0], U: iv[1]}
	}
	return out
}

// Table reconstructs the function over the original variable order.
func (m MultiSpec) Table() logic.TT {
	g := logic.New(m.N)
	for _, iv := range m.Intervals {
		g = g.Or(logic.FromInterval(m.N, iv[0], iv[1]))
	}
	if m.Complement {
		g = g.Not()
	}
	inv := make([]int, m.N)
	for i, p := range m.Perm {
		inv[p] = i
	}
	return g.Permute(inv)
}

// GateCost sums the unit costs plus the output OR (and nothing for the
// optional inverter).
func (m MultiSpec) GateCost() int {
	cost := 0
	for _, s := range m.specs() {
		cost += s.GateCost()
	}
	if len(m.Intervals) > 1 {
		cost += len(m.Intervals) - 1
	}
	return cost
}

// PathCost sums the per-unit path contributions.
func (m MultiSpec) PathCost(np []uint64) uint64 {
	var total uint64
	for _, s := range m.specs() {
		total += s.PathCost(np)
	}
	return total
}

// Build appends the units and the output OR.
func (m MultiSpec) Build(c *circuit.Circuit, inputs []int, opt BuildOptions) int {
	if len(m.Intervals) == 0 {
		panic("compare: empty MultiSpec")
	}
	outs := make([]int, 0, len(m.Intervals))
	base := opt.NamePrefix
	for i, s := range m.specs() {
		o := opt
		o.NamePrefix = fmt.Sprintf("%su%d_", base, i)
		outs = append(outs, s.Build(c, inputs, o))
	}
	var out int
	if len(outs) == 1 {
		out = outs[0]
	} else {
		out = c.AddGate(circuit.Or, base+"mor", outs...)
	}
	if m.Complement {
		out = c.AddGate(circuit.Not, base+"mcmpl", out)
	}
	return out
}

// Validate checks internal consistency.
func (m MultiSpec) Validate() error {
	probe := Spec{N: m.N, Perm: m.Perm, L: 0, U: 0}
	if err := probe.Validate(); err != nil {
		return err
	}
	prev := -2
	for _, iv := range m.Intervals {
		if iv[0] > iv[1] || iv[0] < 0 || iv[1] >= 1<<m.N {
			return fmt.Errorf("compare: bad interval %v", iv)
		}
		if iv[0] <= prev+1 {
			return fmt.Errorf("compare: intervals not disjoint/sorted: %v", m.Intervals)
		}
		prev = iv[1]
	}
	return nil
}

// BuildStandaloneMulti constructs the multi-unit realization as its own
// circuit with inputs y1..yN and a single output.
func (m MultiSpec) BuildStandaloneMulti(name string, opt BuildOptions) *circuit.Circuit {
	c := circuit.New(name)
	inputs := make([]int, m.N)
	for j := range inputs {
		inputs[j] = c.AddInput(fmt.Sprintf("y%d", j+1))
	}
	out := m.Build(c, inputs, opt)
	if c.Nodes[out].Type == circuit.Input {
		out = c.AddGate(circuit.Buf, "multi_buf", out)
	}
	c.MarkOutput(out)
	return c
}

// onsetRuns returns the maximal consecutive runs of the onset.
func onsetRuns(f logic.TT) [][2]int {
	var runs [][2]int
	start, prev := -1, -2
	for _, mt := range f.Onset() {
		if mt != prev+1 {
			if start >= 0 {
				runs = append(runs, [2]int{start, prev})
			}
			start = mt
		}
		prev = mt
	}
	if start >= 0 {
		runs = append(runs, [2]int{start, prev})
	}
	return runs
}

// IdentifyMulti finds a multi-unit realization of f with at most maxUnits
// units, trying the identity permutation plus up to maxPerms random ones
// and keeping the realization with the fewest units (ties by gate cost).
// Both the onset and the offset (complemented output) are considered.
// rng may be nil for a fixed default seed.
func IdentifyMulti(f logic.TT, maxUnits, maxPerms int, rng *rand.Rand) (MultiSpec, bool) {
	s, ok := identifyMulti(f, maxUnits, maxPerms, rng)
	return s, countIdentify(ok)
}

func identifyMulti(f logic.TT, maxUnits, maxPerms int, rng *rand.Rand) (MultiSpec, bool) {
	if f.IsConst(false) || f.IsConst(true) {
		return MultiSpec{}, false // constants are folded, not synthesized
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(2026))
	}
	n := f.Vars()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best MultiSpec
	found := false
	consider := func(p []int) {
		g := f.Permute(p)
		for _, compl := range []bool{false, true} {
			h := g
			if compl {
				h = g.Not()
			}
			runs := onsetRuns(h)
			if len(runs) == 0 || len(runs) > maxUnits {
				continue
			}
			cand := MultiSpec{
				N: n, Perm: append([]int(nil), p...),
				Intervals: runs, Complement: compl,
			}
			if !found ||
				len(cand.Intervals) < len(best.Intervals) ||
				(len(cand.Intervals) == len(best.Intervals) && cand.GateCost() < best.GateCost()) {
				best = cand
				found = true
			}
		}
	}
	consider(perm)
	for t := 0; t < maxPerms; t++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		consider(perm)
		if found && len(best.Intervals) == 1 {
			break // cannot do better
		}
	}
	return best, found
}
