package explain_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"compsynth/internal/explain"
	"compsynth/internal/obs"
	"compsynth/internal/obs/dtrace"

	// Link the ledger so recorder-written fixtures use the framed encoding —
	// the loader must accept it as well as plain NDJSON.
	_ "compsynth/internal/ledger"
)

// writeFramed records a run_start plus the given decision records through a
// real flight recorder (ledger-framed, since the ledger is linked into this
// test binary) and returns the file path.
func writeFramed(t *testing.T, recs []dtrace.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ev.ndjson")
	r, err := obs.NewRecorder(path, 0, obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	r.RunStart("sft", []string{"-k", "5"})
	for i := range recs {
		r.Decision(&recs[i])
	}
	r.RunEnd(1, "")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleRecords() []dtrace.Record {
	return []dtrace.Record{
		{Seq: 0, Pass: 1, Kind: "cand", Node: 9, Name: "g9", Outcome: dtrace.NoComparisonUnit, Cut: []int{1, 2, 3}, Width: 3},
		{Seq: 1, Pass: 1, Kind: "cand", Node: 9, Name: "g9", Outcome: dtrace.Accepted, Cut: []int{1, 2}, Width: 2, GateSave: 2},
		{Seq: 2, Pass: 1, Kind: "gate", Node: 9, Name: "g9", Outcome: dtrace.Replaced, GateSave: 2},
		{Seq: 3, Pass: 1, Kind: "gate", Node: 7, Name: "g7", Outcome: dtrace.Kept},
		{Seq: 4, Pass: 2, Kind: "gate", Node: 9, Name: "g9", Outcome: dtrace.SkippedDead},
		{Seq: 5, Pass: 2, Kind: "cand", Node: 7, Name: "g7", Outcome: dtrace.Dominated, GateSave: 1},
		{Seq: 6, Pass: 2, Kind: "cand", Node: 7, Name: "g7", Outcome: dtrace.ObjectiveWorse},
		{Seq: 7, Pass: 2, Kind: "gate", Node: 7, Name: "g7", Outcome: dtrace.Kept},
	}
}

func TestLoadFramedStream(t *testing.T) {
	recs := sampleRecords()
	tr, err := explain.Load(writeFramed(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tool != "sft" {
		t.Errorf("tool = %q, want sft", tr.Tool)
	}
	if len(tr.Records) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(tr.Records), len(recs))
	}
	if tr.Records[1].Outcome != dtrace.Accepted || tr.Records[1].GateSave != 2 {
		t.Errorf("record 1 round-trip: %+v", tr.Records[1])
	}
}

func TestLoadPlainStream(t *testing.T) {
	// Plain NDJSON, as the recorder writes without the ledger linked.
	plain := `{"t":"run_start","ms":0,"tool":"sft","args":["-k","5"]}
{"t":"dtrace","ms":1,"d":{"seq":0,"pass":1,"kind":"gate","node":3,"name":"g3","outcome":"kept"}}
{"t":"run_end","ms":2,"dur_ms":2}
`
	path := filepath.Join(t.TempDir(), "plain.ndjson")
	if err := os.WriteFile(path, []byte(plain), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := explain.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || tr.Records[0].Outcome != dtrace.Kept {
		t.Fatalf("plain stream loaded %+v", tr.Records)
	}
}

func TestLoadRejectsNonRecording(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("{}\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := explain.Load(path); err == nil {
		t.Error("loading an event-free file succeeded, want error")
	}
}

func TestWhyByNameAndID(t *testing.T) {
	tr, err := explain.Load(writeFramed(t, sampleRecords()))
	if err != nil {
		t.Fatal(err)
	}
	byName := tr.Why("g9")
	if len(byName) != 4 {
		t.Fatalf("Why(g9) returned %d records, want 4", len(byName))
	}
	byID := tr.Why("9")
	if len(byID) != len(byName) {
		t.Errorf("Why(9) returned %d records, Why(g9) %d — id lookup diverges", len(byID), len(byName))
	}
	if tr.Why("nosuch") != nil {
		t.Error("Why(nosuch) returned records")
	}
}

func TestReasonCounts(t *testing.T) {
	tr, err := explain.Load(writeFramed(t, sampleRecords()))
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.ReasonCounts()
	want := map[[2]int]int{} // (pass, outcome) -> count
	for _, r := range sampleRecords() {
		want[[2]int{r.Pass, int(r.Outcome)}]++
	}
	if len(counts) != len(want) {
		t.Fatalf("ReasonCounts has %d rows, want %d", len(counts), len(want))
	}
	lastPass := 0
	for _, rc := range counts {
		if rc.Pass < lastPass {
			t.Error("ReasonCounts not ordered by pass")
		}
		lastPass = rc.Pass
		if got := want[[2]int{rc.Pass, int(rc.Outcome)}]; got != rc.Count {
			t.Errorf("pass %d %v: count %d, want %d", rc.Pass, rc.Outcome, rc.Count, got)
		}
	}
}

func TestFunnel(t *testing.T) {
	tr, err := explain.Load(writeFramed(t, sampleRecords()))
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Funnel()
	want := explain.Funnel{
		GatesVisited:  3, // replaced g9, kept g7 twice
		GatesSkipped:  1, // dead g9 in pass 2
		Candidates:    4,
		Realized:      3, // accepted + dominated + objective_worse
		Accepted:      1,
		GatesReplaced: 1,
	}
	if f != want {
		t.Errorf("Funnel = %+v, want %+v", f, want)
	}
}

// TestFilterPass pins the -pass CLI filter's semantics: pass <= 0 is the
// identity (same trace), a positive pass keeps exactly that pass's records
// (so ReasonCounts and Funnel tally one pass), and an absent pass yields an
// empty view.
func TestFilterPass(t *testing.T) {
	tr, err := explain.Load(writeFramed(t, sampleRecords()))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.FilterPass(0); got != tr {
		t.Error("FilterPass(0) should return the trace unchanged")
	}
	if got := tr.FilterPass(-1); got != tr {
		t.Error("FilterPass(-1) should return the trace unchanged")
	}
	p2 := tr.FilterPass(2)
	var want int
	for _, r := range sampleRecords() {
		if r.Pass == 2 {
			want++
		}
	}
	if len(p2.Records) != want {
		t.Fatalf("FilterPass(2) kept %d records, want %d", len(p2.Records), want)
	}
	for i := range p2.Records {
		if p2.Records[i].Pass != 2 {
			t.Errorf("FilterPass(2) kept a pass-%d record", p2.Records[i].Pass)
		}
	}
	for _, rc := range p2.ReasonCounts() {
		if rc.Pass != 2 {
			t.Errorf("ReasonCounts after FilterPass(2) has pass-%d row", rc.Pass)
		}
	}
	f := p2.Funnel()
	if f.GatesVisited != 1 || f.GatesSkipped != 1 || f.Candidates != 2 {
		t.Errorf("Funnel after FilterPass(2) = %+v", f)
	}
	if got := tr.FilterPass(99); len(got.Records) != 0 {
		t.Errorf("FilterPass(99) kept %d records, want 0", len(got.Records))
	}
	if got, wantTool := tr.FilterPass(2).Tool, tr.Tool; got != wantTool {
		t.Errorf("FilterPass dropped Tool: %q != %q", got, wantTool)
	}
}

func TestDiff(t *testing.T) {
	recsA := sampleRecords()
	a, err := explain.Load(writeFramed(t, recsA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := explain.Load(writeFramed(t, recsA))
	if err != nil {
		t.Fatal(err)
	}
	if d := explain.Diff(a, b); len(d) != 0 {
		t.Fatalf("identical traces diff: %+v", d)
	}

	// Flip g7's final outcome and add a node only b has.
	recsB := append(sampleRecords(),
		dtrace.Record{Seq: 8, Pass: 2, Kind: "gate", Node: 7, Name: "g7", Outcome: dtrace.Replaced},
		dtrace.Record{Seq: 9, Pass: 2, Kind: "gate", Node: 11, Name: "g11", Outcome: dtrace.Kept},
	)
	b2, err := explain.Load(writeFramed(t, recsB))
	if err != nil {
		t.Fatal(err)
	}
	d := explain.Diff(a, b2)
	if len(d) != 2 {
		t.Fatalf("diff has %d entries, want 2: %+v", len(d), d)
	}
	if d[0].Node != "g11" || d[0].AOk || !d[0].BOk {
		t.Errorf("diff[0] = %+v, want g11 present only in b", d[0])
	}
	if d[1].Node != "g7" || d[1].A != dtrace.Kept || d[1].B != dtrace.Replaced {
		t.Errorf("diff[1] = %+v, want g7 kept->replaced", d[1])
	}
}

func TestExportCanonical(t *testing.T) {
	recs := sampleRecords()
	tr, err := explain.Load(writeFramed(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != len(recs) {
		t.Fatalf("export has %d lines, want %d", len(lines), len(recs))
	}
	// Export strips the event envelope: the same records loaded from a
	// differently-framed stream export byte-identically.
	tr2, err := explain.Load(writeFramed(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := tr2.Export(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exports of identical record sets differ")
	}
}
