// Command figures regenerates the structures of the paper's Figures 1-6 and
// the robust test set of Table 1, printing each as a .bench netlist plus
// commentary.
//
// Usage:
//
//	figures [-trace] [-metrics-out report.json] [-v] [-listen addr] [-events file]
package main

import (
	"flag"
	"fmt"
	"os"

	"compsynth/internal/bench"
	"compsynth/internal/compare"
	"compsynth/internal/delay"
	_ "compsynth/internal/ledger" // wires the -events ledger and -cert certifier
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // wires the -listen telemetry server
	"compsynth/internal/paths"
)

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func show(run *obs.Run, title string, s compare.Spec, merge bool) {
	sp := run.Tracer.StartSpan("figures.build")
	sp.SetStr("title", title)
	defer sp.End()
	lg := run.Log
	lg.Printf("== %s ==", title)
	lg.Printf("spec: %v, free=%d, geq=%v, leq=%v, gate cost=%d equiv-2-input",
		s, s.FreeCount(), s.GeqPresent(), s.LeqPresent(), s.GateCost())
	c := s.BuildStandalone("fig", compare.BuildOptions{Merge: merge})
	if err := run.CheckCircuit(title, c); err != nil {
		os.Exit(run.Fail(err))
	}
	fmt.Print(bench.String(c))
	total := paths.MustCount(c)
	lg.Printf("paths through unit: %d (bound: 2 per input)\n", total)
}

func main() {
	oflags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	run := oflags.Start("figures")
	lg := run.Log
	run.SetCertOptions(struct {
		Figures string `json:"figures"`
	}{"1-6"})

	// Figure 1: the comparison unit for the Section 3.1 example
	// (L=5, U=10 after permuting f2's inputs).
	show(run, "Figure 1: comparison unit, L=5, U=10",
		compare.Spec{N: 4, Perm: identity(4), L: 5, U: 10}, false)

	// Figure 3: the four example blocks. A block alone corresponds to a
	// one-sided interval.
	show(run, "Figure 3(a): >=3 block", compare.Spec{N: 4, Perm: identity(4), L: 3, U: 15}, false)
	show(run, "Figure 3(b): >=12 block (trailing-zero gates omitted)",
		compare.Spec{N: 4, Perm: identity(4), L: 12, U: 15}, false)
	show(run, "Figure 3(c): <=12 block", compare.Spec{N: 4, Perm: identity(4), L: 0, U: 12}, false)
	show(run, "Figure 3(d): <=3 block (trailing-one gates omitted)",
		compare.Spec{N: 4, Perm: identity(4), L: 0, U: 3}, false)

	// Figure 4: >=7 with same-type gate merging.
	show(run, "Figure 4: >=7 unit with merged AND gates",
		compare.Spec{N: 4, Perm: identity(4), L: 7, U: 15}, true)

	// Figure 5: free variables (L=5, U=7: x1, x2 free).
	show(run, "Figure 5: free-variable unit, L=5, U=7",
		compare.Spec{N: 4, Perm: identity(4), L: 5, U: 7}, false)

	// Figure 6 + Table 1: the L=11, U=12 unit and its robust test set.
	s := compare.Spec{N: 4, Perm: identity(4), L: 11, U: 12}
	show(run, "Figure 6: unit with L=11, U=12 (x1 free, L_F=3, U_F=4)", s, true)

	tsp := run.Tracer.StartSpan("figures.table1")
	lg.Printf("== Table 1: robust test set for the Figure 6 unit ==")
	lg.Printf("%-14s %-10s %-10s %-10s %-10s", "fault", "x1", "x2", "x3", "x4")
	c := s.BuildStandalone("f6", compare.BuildOptions{Merge: true})
	for _, ut := range s.TestSet() {
		cols := make([]string, 4)
		for j := 0; j < 4; j++ {
			v1, v2 := ut.V1[j], ut.V2[j]
			switch {
			case v1 == v2 && v1:
				cols[j] = "111"
			case v1 == v2:
				cols[j] = "000"
			case !v1:
				cols[j] = "0x1"
			default:
				cols[j] = "1x0"
			}
		}
		// Re-verify robustness through the 5-valued simulation.
		robust := false
		for _, p := range delay.EnumeratePaths(c, 0) {
			if delay.PathRobust(c, p.Nodes, p.Pins, ut.V1, ut.V2) {
				robust = true
				break
			}
		}
		mark := "robust"
		if !robust {
			mark = "NOT ROBUST?!"
		}
		lg.Printf("x%d %-10s %-10s %-10s %-10s %-10s %s",
			ut.Pos, ut.Block, cols[0], cols[1], cols[2], cols[3], mark)
	}
	tsp.End()
	if err := run.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}
