package simulate

import (
	"math/rand"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
)

func TestSimMatchesEval(t *testing.T) {
	c, err := bench.ParseString(bench.C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 10; round++ {
		words := make([]uint64, 5)
		for j := range words {
			words[j] = rng.Uint64()
			s.SetInput(j, words[j])
		}
		s.Run()
		for b := 0; b < 64; b++ {
			in := make([]bool, 5)
			for j := range in {
				in[j] = words[j]&(1<<b) != 0
			}
			want := c.Eval(in)
			for o := range c.Outputs {
				if (s.Output(o)&(1<<b) != 0) != want[o] {
					t.Fatalf("round %d bit %d output %d mismatch", round, b, o)
				}
			}
		}
	}
}

// swapFirstNandForNor replaces the first NAND with a NOR over the same
// fanins, going through the journal-touching mutators (a direct Node.Type
// write would bypass edit tracking and leave any frozen view stale).
func swapFirstNandForNor(c *circuit.Circuit) {
	for _, nd := range c.Nodes {
		if nd.Type == circuit.Nand {
			g := c.AddGate(circuit.Nor, "", nd.Fanin...)
			c.ReplaceUses(nd.ID, g)
			return
		}
	}
}

func TestEquivalentRandomDetectsDifference(t *testing.T) {
	a, _ := bench.ParseString(bench.C17, "a")
	b, _ := bench.ParseString(bench.C17, "b")
	if !EquivalentRandom(a, b, 8, 10, 1) {
		t.Fatal("identical circuits reported different")
	}
	swapFirstNandForNor(b)
	if EquivalentRandom(a, b, 8, 10, 1) {
		t.Fatal("mutated circuit reported equivalent")
	}
}

func TestEquivalentExhaustiveSmall(t *testing.T) {
	// Two equivalent implementations of XOR.
	a := circuit.New("a")
	x := a.AddInput("x")
	y := a.AddInput("y")
	a.MarkOutput(a.AddGate(circuit.Xor, "", x, y))

	b := circuit.New("b")
	x2 := b.AddInput("x")
	y2 := b.AddInput("y")
	nx := b.AddGate(circuit.Not, "", x2)
	ny := b.AddGate(circuit.Not, "", y2)
	t1 := b.AddGate(circuit.And, "", x2, ny)
	t2 := b.AddGate(circuit.And, "", nx, y2)
	b.MarkOutput(b.AddGate(circuit.Or, "", t1, t2))

	if !EquivalentRandom(a, b, 1, 10, 1) {
		t.Fatal("XOR implementations reported different")
	}
}

func TestEquivalentMismatchedInterfaces(t *testing.T) {
	a := circuit.New("a")
	a.MarkOutput(a.AddGate(circuit.Const1, ""))
	b := circuit.New("b")
	b.AddInput("x")
	b.MarkOutput(b.AddGate(circuit.Const1, ""))
	if EquivalentRandom(a, b, 1, 10, 1) {
		t.Fatal("different interfaces reported equivalent")
	}
}

// Exhaustive check exercises the tail-mask path (n=7 gives 128 patterns = 2
// words exactly; n=3 gives a partial word).
func TestEquivalentExhaustiveTailMask(t *testing.T) {
	mk := func() *circuit.Circuit {
		c := circuit.New("m")
		var ins []int
		for i := 0; i < 3; i++ {
			ins = append(ins, c.AddInput(string(rune('a'+i))))
		}
		g := c.AddGate(circuit.And, "", ins...)
		c.MarkOutput(g)
		return c
	}
	if !EquivalentRandom(mk(), mk(), 1, 10, 1) {
		t.Fatal("3-input AND pair reported different")
	}
}

func TestRandomPatternsAndOutputs(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	s := New(c)
	rng := rand.New(rand.NewSource(3))
	s.RandomPatterns(rng)
	s.Run()
	out := s.Outputs(nil)
	if len(out) != 2 {
		t.Fatalf("outputs = %d", len(out))
	}
	// Reusing a destination slice works too.
	dst := make([]uint64, 2)
	got := s.Outputs(dst)
	if &got[0] != &dst[0] {
		t.Fatal("destination not reused")
	}
	if got[0] != out[0] || got[1] != out[1] {
		t.Fatal("outputs differ between calls")
	}
}

func TestEquivalentRandomLargeInputPath(t *testing.T) {
	// Above maxExhaustive the random path runs; equal circuits stay equal
	// and a mutation is still caught with high probability.
	p := gen.Params{Name: "r", Inputs: 18, Outputs: 6, Gates: 80, Layers: 6,
		MaxFanin: 3, Locality: 0.7, Seed: 12}
	a := gen.Random(p)
	b := gen.Random(p)
	if !EquivalentRandom(a, b, 16, 8, 5) {
		t.Fatal("identical large circuits reported different")
	}
	swapFirstNandForNor(b)
	if EquivalentRandom(a, b, 16, 8, 5) {
		t.Fatal("mutated large circuit reported equivalent")
	}
}

func TestEquivalentExhaustiveSevenInputs(t *testing.T) {
	// n=7 crosses the 64-pattern word boundary (exactly 2 words).
	mk := func(mut bool) *circuit.Circuit {
		c := circuit.New("seven")
		var ins []int
		for i := 0; i < 7; i++ {
			ins = append(ins, c.AddInput(string(rune('a'+i))))
		}
		g1 := c.AddGate(circuit.And, "", ins[0], ins[1], ins[2])
		g2 := c.AddGate(circuit.Or, "", ins[3], ins[4])
		g3 := c.AddGate(circuit.Xor, "", g1, g2, ins[5])
		t := circuit.Nand
		if mut {
			t = circuit.Nor
		}
		g4 := c.AddGate(t, "", g3, ins[6])
		c.MarkOutput(g4)
		return c
	}
	if !EquivalentRandom(mk(false), mk(false), 1, 10, 1) {
		t.Fatal("equal 7-input circuits reported different")
	}
	if EquivalentRandom(mk(false), mk(true), 1, 10, 1) {
		t.Fatal("different 7-input circuits reported equivalent")
	}
}
