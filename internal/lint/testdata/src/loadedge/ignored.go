//go:build ignore

// This file carries a deliberate type error: if the loader's build-tag
// evaluation ever stops excluding it, loadedge fails to type-check and
// every lint test goes red.
package loadedge

var brokenOnPurpose int = "not an int"
