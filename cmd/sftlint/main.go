// Command sftlint runs the repository's static analysis rules (package
// internal/lint): the syntactic rules (wall-clock/global-RNG bans,
// map-iteration-order hazards, obs metric naming, par.Cache key types,
// out-of-package circuit-node mutation) and the interprocedural rules on
// the whole-module call graph (purity of par task/cache/speculative seams,
// transitive wall-clock taint, unsynchronized goroutine-captured writes).
//
// Usage:
//
//	sftlint [flags] [packages]
//
// Packages are directories, optionally ending in /... for a recursive walk;
// the default is ./... . Exit status: 0 clean, 1 findings (or baseline /
// debt drift), 2 usage or load failure.
//
// CI runs `sftlint -baseline lint_baseline.json -sarif out/sftlint.sarif`:
// baselined findings are suppression debt, any new finding fails, and the
// SARIF artifact lands next to the run reports. `-explain ID` prints the
// call-path witness for one finding; `-debt` tallies suppression comments
// and fails on drift against the baseline's pinned counts; `-update-golden`
// regenerates the fixture goldens in place.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"compsynth/internal/lint"
)

func main() {
	var (
		jsonOut      = flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
		rules        = flag.String("rules", "", "comma-separated rule subset (default: all of "+strings.Join(lint.AllRules(), ",")+")")
		detAll       = flag.Bool("det-all", false, "treat every package as deterministic pipeline code (used on the injected-violation fixtures)")
		relTo        = flag.String("rel", "", "report file paths relative to this directory")
		sarifOut     = flag.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file")
		baselineFile = flag.String("baseline", "", "suppress findings recorded in this baseline file; new findings and stale entries fail")
		explainID    = flag.String("explain", "", "print the call-path witness for the finding with this ID (prefix match)")
		updateGolden = flag.Bool("update-golden", false, "regenerate internal/lint/testdata goldens in place and exit")
		debt         = flag.Bool("debt", false, "report suppression debt per package; with -baseline, fail on drift from the pinned counts")
	)
	flag.Parse()

	if *updateGolden {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		root, err := lint.ModuleRoot(cwd)
		if err != nil {
			fatal(err)
		}
		files, err := lint.UpdateGoldens(root)
		if err != nil {
			fatal(err)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("no packages matched"))
	}

	var baseline *lint.Baseline
	if *baselineFile != "" {
		baseline, err = lint.LoadBaseline(*baselineFile)
		if err != nil {
			fatal(err)
		}
	}

	if *debt {
		os.Exit(runDebt(dirs, baseline))
	}

	cfg := lint.Config{DeterministicAll: *detAll, RelativeTo: *relTo}
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
	}
	diags, err := lint.Analyze(dirs, cfg)
	if err != nil {
		fatal(err)
	}

	if *explainID != "" {
		os.Exit(explain(diags, *explainID))
	}

	if *sarifOut != "" {
		// The artifact records every finding, baselined or not: the debt
		// stays visible to annotation tooling even when the gate passes.
		sarif, err := lint.FormatSARIF(diags)
		if err != nil {
			fatal(err)
		}
		if dir := filepath.Dir(*sarifOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(*sarifOut, []byte(sarif), 0o644); err != nil {
			fatal(err)
		}
	}

	report := diags
	var stale []string
	if baseline != nil {
		report, stale = baseline.Apply(diags)
	}

	if *jsonOut {
		out, err := lint.FormatJSON(report)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	} else {
		fmt.Print(lint.FormatText(report))
	}
	for _, id := range stale {
		fmt.Fprintf(os.Stderr, "sftlint: baseline entry %s no longer matches any finding — delete it from the baseline\n", id)
	}
	if len(report) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

// explain prints the finding(s) whose ID starts with the given prefix,
// including the call-path witness. Exit 0 when found, 2 when not.
func explain(diags []lint.Diagnostic, prefix string) int {
	found := false
	for _, d := range diags {
		if !strings.HasPrefix(d.ID, prefix) {
			continue
		}
		found = true
		fmt.Printf("%s\n  id: %s\n", d.String(), d.ID)
		if len(d.Witness) == 0 {
			fmt.Println("  (syntactic finding: the flagged line is the whole story)")
			continue
		}
		for _, w := range d.Witness {
			fmt.Println("  " + w)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "sftlint: no finding with id prefix %q\n", prefix)
		return 2
	}
	return 0
}

// runDebt prints the suppression-debt tally and, when a baseline is given,
// fails on drift from its pinned counts.
func runDebt(dirs []string, baseline *lint.Baseline) int {
	counts, err := lint.Debt(dirs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(lint.DebtReport(counts, baseline))
	if baseline == nil {
		return 0
	}
	errs := lint.CompareDebt(counts, baseline)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "sftlint:", e)
	}
	if len(errs) > 0 {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sftlint:", err)
	os.Exit(2)
}
