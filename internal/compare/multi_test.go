package compare

import (
	"math/rand"
	"testing"

	"compsynth/internal/logic"
)

func TestIdentifyMultiMajority(t *testing.T) {
	// 3-input majority is not a single comparison function (verified in
	// compare_test.go) but splits into two intervals: {3} and {5,6,7}.
	f := logic.FromMinterms(3, []int{3, 5, 6, 7})
	m, ok := IdentifyMulti(f, 2, 50, nil)
	if !ok {
		t.Fatal("majority not realizable with 2 units")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.Table().Equal(f) {
		t.Fatalf("multi spec %v does not realize majority", m)
	}
	if len(m.Intervals) > 2 {
		t.Fatalf("%d units used", len(m.Intervals))
	}
}

func TestIdentifyMultiPrefersSingleUnit(t *testing.T) {
	f := logic.FromInterval(4, 5, 10)
	m, ok := IdentifyMulti(f, 4, 100, nil)
	if !ok || len(m.Intervals) != 1 {
		t.Fatalf("interval function should use one unit: %v ok=%v", m, ok)
	}
}

func TestIdentifyMultiBuildMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		f := logic.New(n)
		k := 1 + rng.Intn(1<<n-1)
		for j := 0; j < k; j++ {
			f.Set(rng.Intn(1<<n), true)
		}
		if f.IsConst(false) || f.IsConst(true) {
			continue
		}
		m, ok := IdentifyMulti(f, 1<<n, 30, rng)
		if !ok {
			t.Fatalf("trial %d: no realization with unbounded units for %s", trial, f)
		}
		if !m.Table().Equal(f) {
			t.Fatalf("trial %d: table mismatch for %v", trial, m)
		}
		c := m.BuildStandaloneMulti("m", BuildOptions{Merge: trial%2 == 0})
		for mt := 0; mt < 1<<n; mt++ {
			in := make([]bool, n)
			for j := 0; j < n; j++ {
				in[j] = mt&(1<<(n-1-j)) != 0
			}
			if c.Eval(in)[0] != f.Get(mt) {
				t.Fatalf("trial %d: built multi-unit wrong at %d", trial, mt)
			}
		}
	}
}

func TestMultiGateCostMatchesBuild(t *testing.T) {
	f := logic.FromMinterms(4, []int{1, 2, 9, 10})
	m, ok := IdentifyMulti(f, 2, 100, nil)
	if !ok {
		t.Fatal("two-interval function not identified")
	}
	c := m.BuildStandaloneMulti("g", BuildOptions{Merge: true})
	if c.Equiv2Count() != m.GateCost() {
		t.Fatalf("built equiv2=%d, analytic=%d (%v)", c.Equiv2Count(), m.GateCost(), m)
	}
}

func TestIdentifyMultiRespectsUnitBudget(t *testing.T) {
	// A scattered onset needing 4 intervals under every permutation
	// cannot fit in 2 units. Checkerboard parity of 4 vars: onset =
	// odd-weight minterms; any permutation keeps 8 runs of length 1.
	f := logic.New(4)
	for mt := 0; mt < 16; mt++ {
		if popcount(mt)%2 == 1 {
			f.Set(mt, true)
		}
	}
	if _, ok := IdentifyMulti(f, 2, 60, nil); ok {
		t.Fatal("4-input parity claimed realizable with 2 units")
	}
	m, ok := IdentifyMulti(f, 8, 60, nil)
	if !ok || !m.Table().Equal(f) {
		t.Fatal("parity should be realizable with 8 units")
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestIdentifyMultiConstants(t *testing.T) {
	if _, ok := IdentifyMulti(logic.Const(3, true), 8, 10, nil); ok {
		t.Fatal("const1 should be rejected (folded elsewhere)")
	}
	if _, ok := IdentifyMulti(logic.Const(3, false), 8, 10, nil); ok {
		t.Fatal("const0 should be rejected")
	}
}
