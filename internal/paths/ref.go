package paths

import "compsynth/internal/circuit"

// RefCount is the pre-CSR Count implementation, kept as the executable
// reference: it labels through the mutable pointer-based representation via
// Labels/LabelNode. The determinism tests pin Count == RefCount on every
// circuit, and the benchmark suite reports both so the CSR win stays
// measured rather than assumed.
func RefCount(c *circuit.Circuit) (uint64, error) {
	np, ok := Labels(c)
	if !ok {
		return 0, ErrOverflow
	}
	var total uint64
	for _, o := range c.Outputs {
		s := total + np[o]
		if s < total {
			return 0, ErrOverflow
		}
		total = s
	}
	return total, nil
}

// RefThrough is the pre-CSR Through implementation.
func RefThrough(c *circuit.Circuit, id int) uint64 {
	np, _ := Labels(c)
	w := make([]uint64, len(c.Nodes))
	for _, o := range c.Outputs {
		w[o]++
	}
	topo := c.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		for _, f := range c.Nodes[topo[i]].Fanin {
			w[f] += w[topo[i]]
		}
	}
	return np[id] * w[id]
}
