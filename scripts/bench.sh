#!/usr/bin/env bash
# Benchmark sweep: runs the selected benchmarks (default: the
# parallel-scaling set) with allocation accounting and records the results
# as BENCH_<date>.json in the repository root.
#
# Usage: scripts/bench.sh [bench-regex] [cpus] [out] [benchtime] [pkgs...]
#   bench-regex  benchmarks to run (default: the parallel-scaling set;
#                pass '' to keep the default while setting later args)
#   cpus         -cpu list (default: 1,4)
#   out          output file (default: BENCH_<date>.json)
#   benchtime    -benchtime (default 2x: the scaling set contains runs of
#                minutes per op; use e.g. 20x for the fast gate set)
#   pkgs         packages to bench (default: the root package '.'; pass
#                extra packages to pick up e.g. internal/circuit benches)
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-}"
[ -n "$pattern" ] || pattern='Table2Parallel|FaultSimParallel|ResynthParallel|Table2Procedure2|FaultSimulation'
cpus="${2:-}"
[ -n "$cpus" ] || cpus='1,4'
out="${3:-}"
[ -n "$out" ] || out="BENCH_$(date +%F).json"
benchtime="${4:-2x}"
shift $(( $# > 4 ? 4 : $# ))
pkgs=("$@")
[ ${#pkgs[@]} -gt 0 ] || pkgs=(.)

echo "== go test -bench ($pattern) -cpu $cpus -benchtime $benchtime -benchmem ${pkgs[*]} =="
raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -cpu "$cpus" -timeout 30m "${pkgs[@]}")
echo "$raw"

echo "$raw" | go run ./scripts/benchjson > "$out"
echo "wrote $out"
