package bench_test

import (
	"os"
	"path/filepath"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/resynth"
)

// FuzzRegionPartition drives the sharded-resynthesis planning layer over
// every circuit the parser accepts, reusing FuzzParseBench's seed corpus.
// Two properties are checked on each accepted netlist:
//
//  1. The region partition is a cover of the candidate set: regions are
//     disjoint, every candidate gate is assigned exactly once, and each
//     gate's footprint is contained in its region's node set
//     (resynth.CheckPartition — the independence argument of the sweep).
//  2. A sharded pass over the fuzz-discovered netlist leaves a structurally
//     valid circuit (circuit.Check) that is byte-identical to the serial
//     sweep's output, so the OCC validate/re-queue machinery cannot be
//     wedged into divergence by adversarial topologies.
//
// Caps are kept small (MaxPasses etc.) so the fuzzer spends its budget on
// topology diversity rather than fixpoint iteration depth.
func FuzzRegionPartition(f *testing.F) {
	f.Add(bench.C17)
	f.Add(bench.Adder4)
	files, err := filepath.Glob(filepath.Join("..", "..", "circuits", "*.bench"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}

	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ParseString(src, "fuzz")
		if err != nil {
			return // not a circuit; FuzzParseBench owns parser robustness
		}
		opt := resynth.DefaultOptions()
		opt.Verify = false
		opt.MaxPasses = 2
		opt.MaxCandidates = 8
		opt.MaxSpecs = 2

		p, err := resynth.ComputePartition(c, opt)
		if err != nil {
			t.Fatalf("ComputePartition: %v\ninput:\n%s", err, src)
		}
		if err := p.Check(); err != nil {
			t.Fatalf("partition invariant violated: %v\ninput:\n%s", err, src)
		}

		serial := opt
		serial.Workers = 1
		rSerial, err := resynth.Optimize(c, serial)
		if err != nil {
			t.Fatalf("serial Optimize: %v\ninput:\n%s", err, src)
		}
		sharded := opt
		sharded.Shard = true
		sharded.Workers = 2
		rShard, err := resynth.Optimize(c, sharded)
		if err != nil {
			t.Fatalf("sharded Optimize: %v\ninput:\n%s", err, src)
		}
		if err := circuit.CheckWith(rShard.Circuit, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
			t.Fatalf("sharded pass left an invalid circuit: %v\ninput:\n%s", err, src)
		}
		if got, want := bench.String(rShard.Circuit), bench.String(rSerial.Circuit); got != want {
			t.Fatalf("sharded output diverges from serial:\n--- sharded ---\n%s--- serial ---\n%s input:\n%s",
				got, want, src)
		}
	})
}
