package circuit

import (
	"fmt"
	"sort"
)

// Strash performs structural hashing: gates of the same type with the same
// fanin multiset (fanin list for the non-commutative NOT/BUF) are merged
// into one. Consumers are rewired on the fly, so one topological pass
// reaches the fixpoint. Returns the number of gates merged away.
func (c *Circuit) Strash() int {
	seen := map[string]int{}
	merged := 0
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if !c.Alive(id) {
			continue
		}
		switch nd.Type {
		case Input:
			continue
		}
		key := strashKey(nd)
		if rep, ok := seen[key]; ok && c.Alive(rep) {
			if c.NumPOUses(id) > 0 && c.NumPOUses(rep) == 0 {
				// Prefer keeping the PO-named node.
				seen[key] = id
				c.ReplaceUses(rep, id)
				merged++
				continue
			}
			c.ReplaceUses(id, rep)
			merged++
			continue
		}
		seen[key] = id
	}
	if merged > 0 {
		c.SweepDead()
	}
	return merged
}

func strashKey(nd *Node) string {
	fan := append([]int(nil), nd.Fanin...)
	switch nd.Type {
	case And, Or, Nand, Nor, Xor, Xnor:
		sort.Ints(fan)
	}
	b := make([]byte, 0, 4+len(fan)*4)
	b = append(b, byte(nd.Type))
	for _, f := range fan {
		b = append(b, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	}
	return string(b)
}

// Rename changes the name of node id. It fails silently (returns false)
// when the name is already taken by another live node.
func (c *Circuit) Rename(id int, name string) bool {
	if !c.Alive(id) || name == "" {
		return false
	}
	if other, ok := c.byName[name]; ok {
		return other == id
	}
	nd := c.Nodes[id]
	delete(c.byName, nd.Name)
	nd.Name = name
	c.byName[name] = id
	// Names ride along in the frozen view; a rename must age it out.
	c.fz.gen++
	c.fz.note(id, len(c.Nodes))
	return true
}

// PreservePONames renames each primary-output driver to the given name when
// possible (used by the optimizers so rewritten netlists keep their
// interface names). names[i] corresponds to Outputs[i].
func (c *Circuit) PreservePONames(names []string) {
	for i, o := range c.Outputs {
		if i < len(names) {
			c.Rename(o, names[i])
		}
	}
}

// PONames returns the current primary-output driver names in output order.
func (c *Circuit) PONames() []string {
	names := make([]string, len(c.Outputs))
	for i, o := range c.Outputs {
		names[i] = c.Nodes[o].Name
	}
	return names
}

// SetFanin redirects fanin pin `pin` of gate id to drive from src.
func (c *Circuit) SetFanin(id, pin, src int) {
	if !c.Alive(id) || !c.Alive(src) {
		panic("circuit: SetFanin on dead node")
	}
	nd := c.Nodes[id]
	if pin < 0 || pin >= len(nd.Fanin) {
		panic("circuit: SetFanin pin out of range")
	}
	nd.Fanin[pin] = src
	c.touch(id)
	c.touch(src)
	c.invalidate()
}

// AddFaninFront prepends node f to the fanin list of gate id.
func (c *Circuit) AddFaninFront(id, f int) {
	if !c.Alive(id) || !c.Alive(f) {
		panic("circuit: AddFaninFront on dead node")
	}
	nd := c.Nodes[id]
	switch nd.Type {
	case Input, Const0, Const1, Buf, Not:
		panic("circuit: AddFaninFront on fixed-arity node")
	}
	nd.Fanin = append([]int{f}, nd.Fanin...)
	c.touch(id)
	c.touch(f)
	c.invalidate()
}

// ReplaceUses rewires every consumer pin of old (and every PO designation of
// old) to drive from new instead, returning the number of uses rewired. old
// itself is left in place; callers typically follow with SweepDead.
func (c *Circuit) ReplaceUses(old, new int) int {
	if old == new {
		return 0
	}
	if !c.Alive(old) || !c.Alive(new) {
		panic("circuit: ReplaceUses on dead node")
	}
	n := 0
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		for i, f := range nd.Fanin {
			if f == old {
				nd.Fanin[i] = new
				c.touch(nd.ID)
				n++
			}
		}
	}
	for i, o := range c.Outputs {
		if o == old {
			c.Outputs[i] = new
			n++
		}
	}
	if n > 0 {
		c.touch(old)
		c.touch(new)
		c.invalidate()
	}
	return n
}

// Kill tombstones a node. The node must have no live consumers and must not
// be a primary output or a primary input.
func (c *Circuit) Kill(id int) {
	nd := c.Nodes[id]
	if nd == nil || nd.Type == dead {
		return
	}
	if nd.Type == Input {
		panic("circuit: cannot kill a primary input")
	}
	if c.NumPOUses(id) > 0 {
		panic("circuit: cannot kill a primary output driver")
	}
	delete(c.byName, nd.Name)
	nd.Type = dead
	nd.Fanin = nil
	c.touch(id)
	c.invalidate()
}

// SweepDead removes every non-input node from which no primary output is
// reachable. It returns the number of nodes removed.
func (c *Circuit) SweepDead() int {
	needed := make([]bool, len(c.Nodes))
	var mark func(int)
	mark = func(id int) {
		if needed[id] {
			return
		}
		needed[id] = true
		for _, f := range c.Nodes[id].Fanin {
			mark(f)
		}
	}
	for _, o := range c.Outputs {
		mark(o)
	}
	removed := 0
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead || nd.Type == Input {
			continue
		}
		if !needed[nd.ID] {
			delete(c.byName, nd.Name)
			nd.Type = dead
			nd.Fanin = nil
			c.touch(nd.ID)
			removed++
		}
	}
	if removed > 0 {
		c.invalidate()
	}
	return removed
}

// Simplify performs local Boolean cleanups until a fixpoint:
//
//   - gates with constant inputs are folded (AND with 0 -> 0, etc.),
//   - 1-input AND/OR become buffers, 1-input NAND/NOR become inverters,
//   - buffers are bypassed, double inverters are cancelled,
//   - duplicate fanins of AND/OR/NAND/NOR are deduplicated.
//
// Dead logic is swept afterwards. Returns the number of rewrites applied.
func (c *Circuit) Simplify() int {
	total := 0
	for {
		n := c.simplifyPass()
		total += n
		if n == 0 {
			break
		}
	}
	c.SweepDead()
	return total
}

func (c *Circuit) simplifyPass() int {
	changes := 0
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd == nil || nd.Type == dead {
			continue
		}
		preChanges := changes
		switch nd.Type {
		case And, Or, Nand, Nor:
			ctl, _ := nd.Type.ControllingValue()
			ctlType, idType := Const0, Const1
			if ctl {
				ctlType, idType = Const1, Const0
			}
			// Fold constant fanins.
			kept := nd.Fanin[:0]
			folded := false
			seen := map[int]bool{}
			for _, f := range nd.Fanin {
				ft := c.Nodes[f].Type
				if ft == ctlType {
					folded = true
					break
				}
				if ft == idType {
					changes++
					continue // identity element: drop the pin
				}
				if seen[f] {
					changes++
					continue // duplicate fanin of an idempotent gate
				}
				seen[f] = true
				kept = append(kept, f)
			}
			if folded {
				out := ctl != nd.Type.Inverting() // value when controlled
				c.replaceWithConst(id, out)
				changes++
				continue
			}
			nd.Fanin = kept
			if len(nd.Fanin) == 0 {
				// All pins were identity constants: AND() == 1, OR() == 0,
				// then apply the gate's inversion.
				v := !ctl
				if nd.Type.Inverting() {
					v = !v
				}
				c.replaceWithConst(id, v)
				changes++
				continue
			}
			if len(nd.Fanin) == 1 {
				if nd.Type == And || nd.Type == Or {
					nd.Type = Buf
				} else {
					nd.Type = Not
				}
				changes++
			}
		case Xor, Xnor:
			kept := nd.Fanin[:0]
			invert := nd.Type == Xnor
			for _, f := range nd.Fanin {
				switch c.Nodes[f].Type {
				case Const0:
					changes++
				case Const1:
					invert = !invert
					changes++
				default:
					kept = append(kept, f)
				}
			}
			nd.Fanin = kept
			if invert {
				nd.Type = Xnor
			} else {
				nd.Type = Xor
			}
			if len(nd.Fanin) == 0 {
				c.replaceWithConst(id, nd.Type == Xnor)
				changes++
			} else if len(nd.Fanin) == 1 {
				if nd.Type == Xor {
					nd.Type = Buf
				} else {
					nd.Type = Not
				}
				changes++
			}
		case Not:
			switch c.Nodes[nd.Fanin[0]].Type {
			case Const0:
				c.replaceWithConst(id, true)
				changes++
			case Const1:
				c.replaceWithConst(id, false)
				changes++
			case Not:
				// Double inversion: forward the grandparent.
				g := c.Nodes[nd.Fanin[0]].Fanin[0]
				nd.Type = Buf
				nd.Fanin[0] = g
				changes++
			}
		case Buf:
			// Bypass: all consumers of the buffer use its source directly.
			src := nd.Fanin[0]
			if c.NumPOUses(id) == 0 {
				changes += c.ReplaceUses(id, src)
			} else if c.Nodes[src].Type == Buf {
				nd.Fanin[0] = c.Nodes[src].Fanin[0]
				changes++
			}
		}
		if changes > preChanges {
			// In-place rewrites above (dropped pins, type demotions, buffer
			// bypasses) change this node's definition: record it.
			c.touch(id)
		}
	}
	if changes > 0 {
		c.invalidate()
	}
	return changes
}

// replaceWithConst rewires node id to be the constant v.
func (c *Circuit) replaceWithConst(id int, v bool) {
	nd := c.Nodes[id]
	if v {
		nd.Type = Const1
	} else {
		nd.Type = Const0
	}
	nd.Fanin = nil
	c.touch(id)
	c.invalidate()
}

// SetConstant forces node id to the constant v (used by redundancy removal
// when a stuck-at fault on the node's output is undetectable) and simplifies.
func (c *Circuit) SetConstant(id int, v bool) {
	if !c.Alive(id) {
		panic("circuit: SetConstant on dead node")
	}
	if c.Nodes[id].Type == Input {
		// Inputs cannot be rewritten in place; splice a constant after them.
		k := c.AddGate(constType(v), "")
		c.ReplaceUses(id, k)
		return
	}
	c.replaceWithConst(id, v)
}

func constType(v bool) GateType {
	if v {
		return Const1
	}
	return Const0
}

// Compact returns a fresh circuit with tombstones removed and nodes
// renumbered in topological order, along with old->new ID mapping (-1 for
// removed nodes).
func (c *Circuit) Compact() (*Circuit, []int) {
	n := New(c.Name)
	remap := make([]int, len(c.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	// Preserve declared input order first.
	for _, id := range c.Inputs {
		remap[id] = n.AddInput(c.Nodes[id].Name)
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == Input {
			continue
		}
		fanin := make([]int, len(nd.Fanin))
		for i, f := range nd.Fanin {
			if remap[f] < 0 {
				panic(fmt.Sprintf("circuit: Compact fanin %d not yet mapped", f))
			}
			fanin[i] = remap[f]
		}
		remap[id] = n.AddGate(nd.Type, nd.Name, fanin...)
	}
	for _, o := range c.Outputs {
		n.MarkOutput(remap[o])
	}
	return n, remap
}
