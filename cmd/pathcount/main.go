// Command pathcount labels a .bench netlist with Procedure 1 and prints the
// number of PI-to-PO paths, optionally per output.
//
// Usage:
//
//	pathcount [-per-output] [-through line] circuit.bench
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"compsynth"
	"compsynth/internal/paths"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathcount: ")
	perOutput := flag.Bool("per-output", false, "print one line per primary output")
	through := flag.String("through", "", "also print the number of paths through this line")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pathcount [-per-output] [-through line] circuit.bench")
		os.Exit(2)
	}
	c, err := compsynth.LoadBench(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	total := compsynth.CountPathsBig(c)
	fmt.Printf("%s: %v paths (%v)\n", c.Name, total, c.Stats())
	if *perOutput {
		np := paths.LabelsBig(c)
		for _, o := range c.Outputs {
			fmt.Printf("  %-12s %v\n", c.Nodes[o].Name, np[o])
		}
	}
	if *through != "" {
		id := c.NodeByName(*through)
		if id < 0 {
			log.Fatalf("no line named %q", *through)
		}
		fmt.Printf("  through %s: %d\n", *through, paths.Through(c, id))
	}
}
