package resynth

import (
	"fmt"
	"reflect"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/gen"
	"compsynth/internal/obs/dtrace"
)

// TestShardedMatchesSerial is the determinism contract of the region-sharded
// sweep (modeled on TestIncrementalMatchesFull): for every objective,
// identification mode and worker count, optimizing with Shard on must
// produce results bit-identical to the plain serial sweep — same statistics,
// same netlist text, and same certificate evidence.
func TestShardedMatchesSerial(t *testing.T) {
	suite := gen.SmallSuite()
	if testing.Short() {
		suite = suite[:1]
	}
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for _, b := range suite {
		c := b.Build()
		for _, obj := range []Objective{MinGates, MinPaths, Combined} {
			for _, sampling := range []bool{false, true} {
				opt := DefaultOptions()
				opt.Objective = obj
				opt.UseSampling = sampling
				opt.Verify = false // covered by other tests; keep the matrix fast
				opt.Certify = true // evidence must replay identically too

				serial := opt
				serial.Workers = 1
				rSerial, err := Optimize(c, serial)
				if err != nil {
					t.Fatalf("%s/%v/sampling=%v: serial: %v", b.Name, obj, sampling, err)
				}
				for _, w := range workerCounts {
					name := fmt.Sprintf("%s/%v/sampling=%v/workers=%d", b.Name, obj, sampling, w)
					sharded := opt
					sharded.Shard = true
					sharded.Workers = w
					rShard, err := Optimize(c, sharded)
					if err != nil {
						t.Fatalf("%s: sharded: %v", name, err)
					}
					if got, want := rShard.String(), rSerial.String(); got != want {
						t.Errorf("%s: stats diverge:\nsharded %s\nserial  %s", name, got, want)
					}
					if got, want := bench.String(rShard.Circuit), bench.String(rSerial.Circuit); got != want {
						t.Errorf("%s: netlists diverge:\nsharded:\n%s\nserial:\n%s", name, got, want)
					}
					if !reflect.DeepEqual(rShard.Evidence, rSerial.Evidence) {
						t.Errorf("%s: certificate evidence diverges:\nsharded %+v\nserial  %+v",
							name, rShard.Evidence, rSerial.Evidence)
					}
				}
			}
		}
	}
}

// TestShardedMatchesSerialModes covers the SDC and multi-unit extension
// modes at a couple of worker counts (the full matrix above keeps to the
// base modes to stay fast).
func TestShardedMatchesSerialModes(t *testing.T) {
	if testing.Short() {
		t.Skip("extension-mode matrix")
	}
	suite := gen.SmallSuite()
	c := suite[0].Build()
	for _, sdc := range []bool{false, true} {
		for _, units := range []int{1, 2} {
			opt := DefaultOptions()
			opt.UseSDC = sdc
			opt.MaxUnits = units
			opt.Verify = false

			serial := opt
			serial.Workers = 1
			rSerial, err := Optimize(c, serial)
			if err != nil {
				t.Fatalf("sdc=%v/units=%d: serial: %v", sdc, units, err)
			}
			for _, w := range []int{2, 4} {
				name := fmt.Sprintf("sdc=%v/units=%d/workers=%d", sdc, units, w)
				sharded := opt
				sharded.Shard = true
				sharded.Workers = w
				rShard, err := Optimize(c, sharded)
				if err != nil {
					t.Fatalf("%s: sharded: %v", name, err)
				}
				if got, want := rShard.String(), rSerial.String(); got != want {
					t.Errorf("%s: stats diverge: sharded %s serial %s", name, got, want)
				}
				if got, want := bench.String(rShard.Circuit), bench.String(rSerial.Circuit); got != want {
					t.Errorf("%s: netlists diverge:\nsharded:\n%s\nserial:\n%s", name, got, want)
				}
			}
		}
	}
}

// TestShardedDtraceMatchesSerial pins the decision-trace half of the
// contract: the sharded sweep must emit exactly the serial record stream —
// same records, same order — at any worker count, because candidate records
// are buffered at speculation time and replayed in commit order.
func TestShardedDtraceMatchesSerial(t *testing.T) {
	c := gen.SmallSuite()[0].Build()
	capture := func(shard bool, workers int) []dtrace.Record {
		var recs []dtrace.Record
		opt := DefaultOptions()
		opt.Verify = false
		opt.Shard = shard
		opt.Workers = workers
		opt.Dtrace = dtrace.New(dtrace.Mode{Level: dtrace.LevelFull}, func(r *dtrace.Record) {
			recs = append(recs, *r)
		})
		if _, err := Optimize(c, opt); err != nil {
			t.Fatalf("shard=%v workers=%d: %v", shard, workers, err)
		}
		return recs
	}
	want := capture(false, 1)
	if len(want) == 0 {
		t.Fatal("serial run emitted no decision records")
	}
	for _, w := range []int{1, 2, 4} {
		got := capture(true, w)
		if !reflect.DeepEqual(got, want) {
			n := len(got)
			if len(want) < n {
				n = len(want)
			}
			for i := 0; i < n; i++ {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("workers=%d: record %d diverges:\nsharded %+v\nserial  %+v",
						w, i, got[i], want[i])
				}
			}
			t.Fatalf("workers=%d: record count diverges: sharded %d serial %d", w, len(got), len(want))
		}
	}
}

// TestComputePartitionInvariants checks the exported partition audit
// surface on the generator suite: the regions cover every candidate gate
// exactly once, region node sets are disjoint, and every gate's footprint
// is contained in its region (the independence argument of the sharded
// sweep, Partition.Check). The fuzz harness
// (internal/bench.FuzzRegionPartition) runs the same invariants over
// arbitrary parsed netlists.
func TestComputePartitionInvariants(t *testing.T) {
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		opt := DefaultOptions()
		p, err := ComputePartition(c, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if len(p.Candidates) == 0 {
			t.Errorf("%s: no candidate gates", b.Name)
		}
	}
}
