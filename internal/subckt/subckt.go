// Package subckt enumerates candidate subcircuits for replacement and
// extracts the functions they implement (Section 4.1 of the paper).
//
// A candidate C' is a set of gates with a designated output g. Its inputs I'
// are the lines that feed gates of C' from outside. Starting from the single
// gate driving g, candidates grow by absorbing a gate that drives one of the
// current inputs, as long as the input count stays within the limit K.
package subckt

import (
	"sort"

	"compsynth/internal/circuit"
	"compsynth/internal/logic"
)

// Subcircuit is one candidate C' with output Out.
type Subcircuit struct {
	Out    int          // output node ID (a gate of the host circuit)
	Gates  map[int]bool // node IDs inside C' (includes absorbed constants)
	Inputs []int        // external driving node IDs, sorted ascending
}

// Options bounds the enumeration.
type Options struct {
	// MaxInputs is K, the input limit for candidate subcircuits.
	MaxInputs int
	// MaxCandidates caps the number of candidates generated per output
	// (0 = unlimited). The paper's enumeration is exhaustive; the cap keeps
	// worst-case gates from dominating runtime.
	MaxCandidates int
}

// DefaultOptions matches the paper's experiments (K = 5).
func DefaultOptions() Options {
	return Options{MaxInputs: 5, MaxCandidates: 300}
}

// Enumerate generates the candidate subcircuits with output g, in expansion
// order, starting with the single-gate subcircuit. g must be a gate output.
func Enumerate(c *circuit.Circuit, g int, opt Options) []*Subcircuit {
	nd := c.Nodes[g]
	if nd.Type == circuit.Input {
		panic("subckt: enumeration from a primary input")
	}
	first := newSub(c, g, map[int]bool{g: true})
	if len(first.Inputs) > opt.MaxInputs {
		return nil
	}
	out := []*Subcircuit{first}
	seen := map[string]bool{first.Key(): true}
	for i := 0; i < len(out); i++ {
		if opt.MaxCandidates > 0 && len(out) >= opt.MaxCandidates {
			break
		}
		cur := out[i]
		for _, in := range cur.Inputs {
			h := c.Nodes[in]
			if h.Type == circuit.Input {
				continue
			}
			gates := make(map[int]bool, len(cur.Gates)+1)
			for id := range cur.Gates {
				gates[id] = true
			}
			gates[in] = true
			cand := newSub(c, g, gates)
			if len(cand.Inputs) > opt.MaxInputs || len(cand.Inputs) == 0 {
				continue
			}
			k := cand.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, cand)
			if opt.MaxCandidates > 0 && len(out) >= opt.MaxCandidates {
				break
			}
		}
	}
	return out
}

// newSub computes the input set and absorbs constant drivers.
func newSub(c *circuit.Circuit, g int, gates map[int]bool) *Subcircuit {
	// Constants inside cost nothing and have fixed values; absorb them so
	// they never occupy input slots.
	inSet := map[int]bool{}
	for id := range gates {
		for _, f := range c.Nodes[id].Fanin {
			if gates[f] {
				continue
			}
			t := c.Nodes[f].Type
			if t == circuit.Const0 || t == circuit.Const1 {
				gates[f] = true
				continue
			}
			inSet[f] = true
		}
	}
	inputs := make([]int, 0, len(inSet))
	for id := range inSet {
		inputs = append(inputs, id)
	}
	sort.Ints(inputs)
	return &Subcircuit{Out: g, Gates: gates, Inputs: inputs}
}

// Key returns a canonical identity for the subcircuit within one circuit
// snapshot: the sorted gate IDs, packed. Two candidates with equal keys
// implement the same function as long as no gate in the set changed type or
// fanin, which holds for the duration of one optimizer pass (replacements
// only add nodes and rewire consumers of already-visited outputs), so Key
// doubles as the truth-table memoization key for Extract.
func (s *Subcircuit) Key() string {
	ids := make([]int, 0, len(s.Gates))
	for id := range s.Gates {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(b)
}

// Extract computes the truth table of the function C' implements on Out,
// over the inputs in Subcircuit.Inputs order (input j = variable y_{j+1},
// most significant first, per the logic package convention).
func (s *Subcircuit) Extract(c *circuit.Circuit) logic.TT {
	n := len(s.Inputs)
	tt := logic.New(n)
	// Evaluate internal gates in host topological order, 64 minterms at a
	// time, driving each input with its variable pattern.
	varTT := make([]logic.TT, n)
	for j := 0; j < n; j++ {
		varTT[j] = logic.Var(n, j+1)
	}
	words := map[int]uint64{}
	order := s.topoInside(c)
	nWords := (tt.Size() + 63) / 64
	for w := 0; w < nWords; w++ {
		for j, in := range s.Inputs {
			words[in] = varTT[j].Words()[w]
		}
		var buf []uint64
		for _, id := range order {
			nd := c.Nodes[id]
			buf = buf[:0]
			for _, f := range nd.Fanin {
				buf = append(buf, words[f])
			}
			words[id] = nd.Type.EvalWords(buf)
		}
		out := words[s.Out]
		copy(tt.Words()[w:w+1], []uint64{out})
	}
	// Trim invalid high bits for n < 6.
	if n < 6 {
		mask := (uint64(1) << (1 << n)) - 1
		tt.Words()[0] &= mask
	}
	return tt
}

// topoInside returns the subcircuit's gates in topological order.
func (s *Subcircuit) topoInside(c *circuit.Circuit) []int {
	order := make([]int, 0, len(s.Gates))
	state := map[int]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(id int)
	visit = func(id int) {
		if !s.Gates[id] || state[id] == 2 {
			return
		}
		if state[id] == 1 {
			panic("subckt: cycle inside subcircuit")
		}
		state[id] = 1
		for _, f := range c.Nodes[id].Fanin {
			visit(f)
		}
		state[id] = 2
		order = append(order, id)
	}
	visit(s.Out)
	// Gates unreachable from Out (can happen when an absorbed gate only
	// feeds outside) are appended; they do not affect the function.
	for id := range s.Gates {
		visit(id)
	}
	return order
}

// Removable returns the set of gates that disappear if C' is replaced by a
// new realization driving Out: a gate is removable iff it is not a PO driver
// (Out excepted: its consumers are rewired to the replacement) and every
// fanout pin goes to a removable gate of C'. This implements the paper's
// "common gates are not included in the count N".
func (s *Subcircuit) Removable(c *circuit.Circuit) map[int]bool {
	rm := map[int]bool{s.Out: true}
	for {
		changed := false
		for id := range s.Gates {
			if rm[id] || id == s.Out {
				continue
			}
			if c.NumPOUses(id) > 0 {
				continue
			}
			ok := true
			for _, consumer := range c.Fanouts(id) {
				if !rm[consumer] {
					ok = false
					break
				}
			}
			if ok {
				rm[id] = true
				changed = true
			}
		}
		if !changed {
			return rm
		}
	}
}

// GateSavings returns the equivalent-2-input weight of the removable gates:
// the paper's N for this candidate.
func (s *Subcircuit) GateSavings(c *circuit.Circuit) int {
	n := 0
	for id := range s.Removable(c) {
		nd := c.Nodes[id]
		n += circuit.Equiv2Weight(nd.Type, len(nd.Fanin))
	}
	return n
}
