package resynth

import (
	"encoding/json"
	"testing"

	"compsynth/internal/gen"
	"compsynth/internal/obs/dtrace"
)

// traceRun optimizes c with a capturing decision-trace sink and returns the
// records plus the result.
func traceRun(t *testing.T, opt Options, workers int) ([]dtrace.Record, *Result) {
	t.Helper()
	var recs []dtrace.Record
	opt.Workers = workers
	opt.Dtrace = dtrace.New(dtrace.Mode{Level: dtrace.LevelFull}, func(r *dtrace.Record) {
		recs = append(recs, *r)
	})
	c := gen.SmallSuite()[0].Build()
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return recs, res
}

// TestDtraceDeterministicAcrossWorkers is the decision-trace half of the
// determinism contract: the full trace — every record, in order, marshaled —
// is byte-identical for serial and parallel runs. Records are emitted only
// from the serial sweep and carry no scheduling-dependent fields, so any
// divergence here means a worker leaked into the decision path.
func TestDtraceDeterministicAcrossWorkers(t *testing.T) {
	for _, objective := range []Objective{MinGates, MinPaths, Combined} {
		opt := DefaultOptions()
		opt.Objective = objective
		opt.MaxPasses = 4
		opt.Verify = false
		serial, _ := traceRun(t, opt, 1)
		parallel, _ := traceRun(t, opt, 8)
		sj, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if string(sj) != string(pj) {
			t.Errorf("%v: decision traces diverge across workers (%d vs %d records)",
				objective, len(serial), len(parallel))
		}
		if len(serial) == 0 {
			t.Errorf("%v: empty decision trace", objective)
		}
	}
}

// TestDtraceAccountsForEveryDecision pins the trace's completeness
// invariants: every outcome is an enumerated reason used on the right record
// kind, accepted candidate records match gate-level replacements one-to-one,
// and the replacement count in the result equals both.
func TestDtraceAccountsForEveryDecision(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxPasses = 4
	opt.Verify = false
	recs, res := traceRun(t, opt, 4)

	candOutcomes := map[dtrace.Reason]bool{
		dtrace.Accepted:         true,
		dtrace.ConstFunction:    true,
		dtrace.NoComparisonUnit: true,
		dtrace.Dominated:        true,
		dtrace.ObjectiveWorse:   true,
		dtrace.PathBound:        true,
	}
	gateOutcomes := map[dtrace.Reason]bool{
		dtrace.Replaced:        true,
		dtrace.Kept:            true,
		dtrace.SkippedDead:     true,
		dtrace.SkippedUnmarked: true,
		dtrace.SkippedNonGate:  true,
	}
	accepted, replaced := 0, 0
	for i, r := range recs {
		switch r.Kind {
		case "cand":
			if !candOutcomes[r.Outcome] {
				t.Fatalf("record %d: candidate outcome %v not in the candidate enum", i, r.Outcome)
			}
			if r.Outcome == dtrace.Accepted {
				accepted++
			}
		case "gate":
			if !gateOutcomes[r.Outcome] {
				t.Fatalf("record %d: gate outcome %v not in the gate enum", i, r.Outcome)
			}
			if r.Outcome == dtrace.Replaced {
				replaced++
			}
		default:
			t.Fatalf("record %d: unknown kind %q", i, r.Kind)
		}
	}
	if accepted != res.Replacements || replaced != res.Replacements {
		t.Errorf("trace accounts %d accepted / %d replaced records, result reports %d replacements",
			accepted, replaced, res.Replacements)
	}
	if res.Replacements == 0 {
		t.Error("suite circuit produced no replacements; trace invariants untested")
	}
}

// TestDtraceSeqDense pins the tracer-assigned sequence numbers: full mode
// numbers every record densely from 0, giving consumers a gap-free cursor.
func TestDtraceSeqDense(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxPasses = 2
	opt.Verify = false
	recs, _ := traceRun(t, opt, 1)
	for i, r := range recs {
		if r.Seq != int64(i) {
			t.Fatalf("record %d carries seq %d, want dense numbering", i, r.Seq)
		}
	}
}
