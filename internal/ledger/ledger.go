// Package ledger makes the observability artifacts of a run tamper-evident
// and verifiable after the fact, turning the paper's transient testability
// proofs into durable evidence:
//
//   - The flight-recorder NDJSON stream (-events) is framed into an
//     append-only hash chain: every record carries a sequence number and a
//     SHA-256 chain digest over (previous chain, seq, canonical record
//     bytes), with a Merkle root sealed every DefaultBatchSize event
//     records and a final root over all batch roots written at close.
//     Truncation, in-place edits, dropped or reordered records and spliced
//     streams are all detectable offline (VerifyChain).
//
//   - A per-run certificate (-cert) captures what the run claims: canonical
//     digests of the input and output netlists, a digest of the semantic
//     options, an equivalence witness between the two circuits,
//     per-replacement evidence recorded by the resynthesis engine at
//     replacement time, and the comparison-unit path-bound proof summary
//     (Section 2 of Pomeranz & Reddy, DAC 1995). The certificate body
//     contains no wall-clock or host-dependent content, so two runs on
//     identical inputs produce byte-identical bodies.
//
// The two artifacts name each other: the certificate's body digest is
// appended to the ledger as a "cert" record before sealing, and the sealed
// ledger's chain head and final root are stamped into the certificate.
// cmd/sftverify replays all of it offline.
//
// Trust model: all digests are SHA-256, but the chain is unkeyed.
// Collision resistance makes it infeasible to alter any record while
// keeping the existing digests valid; nothing stops an adversary with
// write access to the whole file set from regenerating a fully consistent
// chain, roots and matching certificate from scratch. Detecting that
// wholesale substitution requires anchoring the final root or the
// certificate body digest out-of-band at production time — a CI log line,
// a ticket comment, a signed tag — and comparing against the anchor when
// verifying.
//
// Importing the package installs the ledger sink and the certificate
// builder into internal/obs (side-effect registration, mirroring
// obs/telemetry):
//
//	import _ "compsynth/internal/ledger"
package ledger

import (
	"encoding/json"
	"fmt"
	"io"

	"compsynth/internal/obs"
)

// Ledger metrics (process-wide): records and batches sealed, and the current
// sequence number, mirrored onto the live telemetry endpoints.
var (
	mRecords = obs.C("ledger.records")
	mBatches = obs.C("ledger.batches")
	gSeq     = obs.G("ledger.seq")
)

func init() {
	obs.RegisterLedger(func(w io.Writer) obs.LedgerSink { return NewWriter(w) })
	obs.RegisterCertifier(buildCertBody, writeCert)
}

// DefaultBatchSize is the number of event records per Merkle batch. Small
// enough that a consumer tailing a live run sees a sealed root within a few
// heartbeats, large enough that batch records stay a negligible fraction of
// the stream.
const DefaultBatchSize = 64

// ledgerMagic seeds the hash chain (and is the Merkle root of an empty
// record set), versioning the framing format. v2: SHA-256 digests.
const ledgerMagic = "sft-ledger/v2"

func genesis() H {
	return hnew().bytes([]byte(ledgerMagic)).sum()
}

// chainDigest extends the hash chain by one record: the previous head, the
// record's sequence number and its canonical payload bytes are absorbed in
// order.
func chainDigest(prev H, seq int64, payload []byte) H {
	return hnew().bytes(prev[:]).word(uint64(seq)).bytes(payload).sum()
}

// merkleRoot folds a level of digests pairwise (odd leaf promoted) down to
// one root without touching the input slice. The root of no leaves is the
// genesis digest.
func merkleRoot(leaves []H) H {
	nodes := leaves
	for len(nodes) > 1 {
		next := make([]H, 0, (len(nodes)+1)/2)
		for i := 0; i < len(nodes); i += 2 {
			if i+1 == len(nodes) {
				next = append(next, nodes[i])
				break
			}
			next = append(next, hnew().bytes(nodes[i][:]).bytes(nodes[i+1][:]).sum())
		}
		nodes = next
	}
	if len(nodes) == 0 {
		return genesis()
	}
	return nodes[0]
}

// Ledger record line shapes. Three kinds share the seq/chain framing:
//
//	{"seq":N,"chain":H,"ev":{...}}                                 event
//	{"seq":N,"chain":H,"root":R,"batch":B,"first":F,"last":L}      batch seal
//	{"seq":N,"chain":H,"final_root":R,"batches":B,"records":E}     final seal
//
// The chain payload is the exact "ev" bytes for an event record and a
// canonical text rendering of the seal fields otherwise (batchPayload,
// finalPayload), so a verifier can recompute every chain link from the line
// alone.
type eventRecord struct {
	Seq   int64           `json:"seq"`
	Chain string          `json:"chain"`
	Ev    json.RawMessage `json:"ev"`
}

type batchRecord struct {
	Seq   int64  `json:"seq"`
	Chain string `json:"chain"`
	Root  string `json:"root"`
	Batch int64  `json:"batch"`
	First int64  `json:"first"`
	Last  int64  `json:"last"`
}

type finalRecord struct {
	Seq       int64  `json:"seq"`
	Chain     string `json:"chain"`
	FinalRoot string `json:"final_root"`
	Batches   int64  `json:"batches"`
	Records   int64  `json:"records"`
}

func batchPayload(root string, batch, first, last int64) []byte {
	return []byte(fmt.Sprintf("root %s batch %d first %d last %d", root, batch, first, last))
}

func finalPayload(root string, batches, records int64) []byte {
	return []byte(fmt.Sprintf("final %s batches %d records %d", root, batches, records))
}

// Writer frames flight-recorder events into the hash-chained, Merkle-batched
// ledger. It implements obs.LedgerSink. Not safe for concurrent use: the
// recorder serializes all calls under its own mutex.
type Writer struct {
	w         io.Writer
	batchSize int

	seq        int64
	head       H
	leaves     []H   // chain digests of the current batch's events
	roots      []H   // sealed batch roots
	batchFirst int64 // seq of the current batch's first event
	lastEvent  int64 // seq of the most recent event
	events     int64
	batches    int64
	finalRoot  string // set by Close
	closed     bool
	err        error // first write error, reported by Close
	buf        []byte
}

// NewWriter starts a ledger on w with the default batch size.
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, DefaultBatchSize)
}

// NewWriterSize starts a ledger with an explicit batch size (tests use small
// batches to exercise multi-batch streams cheaply).
func NewWriterSize(w io.Writer, batchSize int) *Writer {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Writer{w: w, batchSize: batchSize, head: genesis()}
}

// writeLine marshals rec and writes it as one NDJSON line in a single Write
// call, keeping the stream tail-able mid-run.
func (l *Writer) writeLine(rec any) {
	line, err := json.Marshal(rec)
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	l.buf = append(append(l.buf[:0], line...), '\n')
	if _, err := l.w.Write(l.buf); err != nil && l.err == nil {
		l.err = err
	}
}

// Append frames one event record, extending the chain and the current
// Merkle batch. It implements obs.LedgerSink.
func (l *Writer) Append(ev obs.Event) error {
	if l.closed {
		return fmt.Errorf("ledger: append after close")
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return l.err
	}
	chain := chainDigest(l.head, l.seq, payload)
	l.writeLine(eventRecord{Seq: l.seq, Chain: chain.Hex(), Ev: payload})
	if len(l.leaves) == 0 {
		l.batchFirst = l.seq
	}
	l.leaves = append(l.leaves, chain)
	l.lastEvent = l.seq
	l.head = chain
	l.seq++
	l.events++
	mRecords.Inc()
	gSeq.Set(l.seq)
	if len(l.leaves) >= l.batchSize {
		l.sealBatch()
	}
	return l.err
}

// sealBatch writes the Merkle root record for the pending event batch.
func (l *Writer) sealBatch() {
	root := merkleRoot(l.leaves)
	payload := batchPayload(root.Hex(), l.batches, l.batchFirst, l.lastEvent)
	chain := chainDigest(l.head, l.seq, payload)
	l.writeLine(batchRecord{
		Seq: l.seq, Chain: chain.Hex(), Root: root.Hex(),
		Batch: l.batches, First: l.batchFirst, Last: l.lastEvent,
	})
	l.head = chain
	l.seq++
	l.roots = append(l.roots, root)
	l.leaves = l.leaves[:0]
	l.batches++
	mBatches.Inc()
	gSeq.Set(l.seq)
}

// Close seals any partial batch and writes the final root record. It
// implements obs.LedgerSink; safe to call once.
func (l *Writer) Close() error {
	if l.closed {
		return l.err
	}
	l.closed = true
	if len(l.leaves) > 0 {
		l.sealBatch()
	}
	final := merkleRoot(l.roots)
	payload := finalPayload(final.Hex(), l.batches, l.events)
	chain := chainDigest(l.head, l.seq, payload)
	l.writeLine(finalRecord{
		Seq: l.seq, Chain: chain.Hex(), FinalRoot: final.Hex(),
		Batches: l.batches, Records: l.events,
	})
	l.head = chain
	l.seq++
	l.finalRoot = final.Hex()
	gSeq.Set(l.seq)
	return l.err
}

// State reports the ledger's progress. It implements obs.LedgerSink.
func (l *Writer) State() obs.LedgerState {
	return obs.LedgerState{
		Records:   l.events,
		Batches:   l.batches,
		Head:      l.head.Hex(),
		FinalRoot: l.finalRoot,
	}
}
