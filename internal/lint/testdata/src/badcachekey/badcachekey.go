// Package badcachekey injects cachekey-rule violations. It is a lint
// fixture: the go tool never builds testdata, only sftlint's own loader does.
package badcachekey

import "compsynth/internal/par"

// name has string underlying type, so it still allocates as a map key.
type name string

var (
	byString = par.NewCache[string, int]()
	byNamed  = par.NewCache[name, int]()

	// byStruct is clean: a fixed-size comparable key.
	byStruct = par.NewCache[struct{ A, B int }, int]()
)

// Lookup instantiates the type (not the constructor) with a string key.
func Lookup(c *par.Cache[string, float64]) (float64, bool) {
	return c.Get("x")
}

// Use keeps the caches referenced.
func Use() {
	byString.Set("a", 1)
	byNamed.Set("b", 2)
	byStruct.Set(struct{ A, B int }{1, 2}, 3)
}
