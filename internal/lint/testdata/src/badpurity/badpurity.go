// Package badpurity injects purity violations at the three seam kinds: a
// par.Run task writing captured state, a par.Cache.GetOrCompute compute
// closure writing a global, and a //lint:speculative function whose circuit
// mutation hides one call down (where the syntactic nodemut check cannot
// see it). Lint fixture; the go tool never builds testdata, only sftlint's
// own loader does.
package badpurity

import (
	"compsynth/internal/circuit"
	"compsynth/internal/par"
)

// Sum fans out but accumulates into a captured variable with no barrier —
// the canonical impure task.
func Sum(items []int) int {
	total := 0
	par.Run(nil, "badpurity.sum", 4, len(items), func(_, i int) {
		total += items[i]
	})
	return total
}

// SumIndexed is the clean twin: task-indexed writes are private by
// contract, then reduced serially.
func SumIndexed(items []int) int {
	out := make([]int, len(items))
	par.Run(nil, "badpurity.sum_indexed", 4, len(items), func(_, i int) {
		out[i] = items[i]
	})
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}

var hits int

// Memo's compute closure bumps a package-level counter: computes race, so
// the cached value would depend on scheduling.
func Memo(c *par.Cache[int, int], k int) int {
	return c.GetOrCompute(k, func() int {
		hits++
		return k * 2
	})
}

// Evaluate is a speculative seam whose mutation is behind a call — clean to
// the syntactic nodemut rule, impure to the whole-program one.
//
//lint:speculative
func Evaluate(c *circuit.Circuit, id, src int) int {
	commit(c, id, src)
	return id
}

// commit is unannotated, so calling SetFanin here is legitimate — from the
// serial phase. Reaching it from Evaluate is not.
func commit(c *circuit.Circuit, id, src int) {
	c.SetFanin(id, 0, src)
}
