package obs_test

import (
	"os"
	"path/filepath"
	"testing"

	"compsynth/internal/lint"
)

// TestMetricNameLint runs sftlint's metricname rule over the whole module:
// every obs.C/G/H registration must be a string literal of the form
// package.snake_case with the first segment naming the registering package.
// The convention itself lives in exactly one place, internal/lint; this test
// only keeps the gate wired from the obs side. The old version of this test
// walked a runtime registry snapshot, which could only see packages that were
// blank-imported here — the static rule sees every package, dynamic names
// included.
func TestMetricNameLint(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // internal/obs -> module root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	dirs, err := lint.ExpandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Analyze(dirs, lint.Config{
		Rules:      []string{"metricname"},
		RelativeTo: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
