// Package explain loads a flight-recorder event stream (-events) and answers
// questions about the decision-trace records (-dtrace) it carries: why a
// node was or was not replaced, which rejection reasons dominated each pass,
// how the candidate funnel narrowed, and how two runs' decisions differ.
// cmd/sftexplain is the CLI over this package.
//
// The loader accepts both framings the recorder produces: plain NDJSON
// (one obs.Event per line) and the tamper-evident ledger framing
// ({"seq":N,"chain":H,"ev":{...}} event lines interleaved with Merkle seal
// lines, which carry no event and are skipped). Verification of the ledger
// is cmd/sftverify's job; explain only reads the payloads.
package explain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"compsynth/internal/obs"
	"compsynth/internal/obs/dtrace"
)

// Trace is one run's decision trace plus the run identity it was loaded
// from.
type Trace struct {
	Tool    string   // from the run_start event
	Args    []string // from the run_start event
	Records []dtrace.Record
}

// frame is the ledger envelope; Ev is nil on plain-NDJSON lines and on the
// ledger's seal lines.
type frame struct {
	Ev json.RawMessage `json:"ev"`
}

// Load reads an event stream written with -events and collects its decision
// records. Files with no dtrace events load successfully as an empty trace
// (the queries then report nothing), but a file with no parseable events at
// all is an error — it is not a flight recording.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// Read is Load over an open stream.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24) // dtrace lines are small; heartbeats can be wide
	tr := &Trace{}
	events, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var fr frame
		if err := json.Unmarshal(line, &fr); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		payload := []byte(line)
		if fr.Ev != nil {
			payload = fr.Ev
		}
		var ev obs.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if ev.Type == "" {
			continue // ledger seal line (batch root or final root)
		}
		events++
		switch ev.Type {
		case "run_start":
			tr.Tool, tr.Args = ev.Tool, ev.Args
		case "dtrace":
			if ev.Decision != nil {
				tr.Records = append(tr.Records, *ev.Decision)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if events == 0 {
		return nil, fmt.Errorf("no events (not a flight recording?)")
	}
	return tr, nil
}

// matches reports whether rec concerns the node named by q: the node's name,
// or its numeric id when q parses as an integer.
func matches(rec *dtrace.Record, q string) bool {
	if rec.Name == q {
		return true
	}
	if id, err := strconv.Atoi(q); err == nil && rec.Node == id {
		return true
	}
	return false
}

// Why returns every decision record concerning the named node (name or
// numeric id), in emission order — the node's full decision chain across
// candidates and passes.
func (t *Trace) Why(node string) []dtrace.Record {
	var out []dtrace.Record
	for i := range t.Records {
		if matches(&t.Records[i], node) {
			out = append(out, t.Records[i])
		}
	}
	return out
}

// FilterPass returns a view of the trace restricted to records of one
// resynthesis pass (1-based). pass <= 0 returns the trace unchanged — the
// "all passes" default of the CLI's -pass flag. The returned Trace shares
// the record storage when nothing is filtered out.
func (t *Trace) FilterPass(pass int) *Trace {
	if pass <= 0 {
		return t
	}
	out := &Trace{Tool: t.Tool, Args: t.Args}
	for i := range t.Records {
		if t.Records[i].Pass == pass {
			out.Records = append(out.Records, t.Records[i])
		}
	}
	return out
}

// ReasonCount is one (pass, outcome) tally.
type ReasonCount struct {
	Pass    int           `json:"pass"`
	Outcome dtrace.Reason `json:"outcome"`
	Count   int           `json:"count"`
}

// ReasonCounts tallies record outcomes per pass, ordered by (pass, outcome).
// Candidate- and gate-level outcomes share the enum so one table covers
// both; kinds never overlap in outcome values' usage.
func (t *Trace) ReasonCounts() []ReasonCount {
	type key struct {
		pass    int
		outcome dtrace.Reason
	}
	m := map[key]int{}
	for i := range t.Records {
		m[key{t.Records[i].Pass, t.Records[i].Outcome}]++
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pass != keys[j].pass {
			return keys[i].pass < keys[j].pass
		}
		return keys[i].outcome < keys[j].outcome
	})
	out := make([]ReasonCount, len(keys))
	for i, k := range keys {
		out[i] = ReasonCount{Pass: k.pass, Outcome: k.outcome, Count: m[k]}
	}
	return out
}

// Funnel summarizes how the sweep narrowed: every gate visited, the subset
// that enumerated candidates, how many candidates were realized by a
// comparison unit, and how many replacements were finally accepted.
type Funnel struct {
	GatesVisited  int `json:"gates_visited"`  // gate records: replaced + kept
	GatesSkipped  int `json:"gates_skipped"`  // gate records: skipped_*
	Candidates    int `json:"candidates"`     // all candidate records
	Realized      int `json:"realized"`       // candidates a unit realizes
	Accepted      int `json:"accepted"`       // candidates accepted
	GatesReplaced int `json:"gates_replaced"` // gate records: replaced
}

// Funnel computes the candidate funnel over the whole trace.
func (t *Trace) Funnel() Funnel {
	var f Funnel
	for i := range t.Records {
		r := &t.Records[i]
		switch r.Kind {
		case "gate":
			switch r.Outcome {
			case dtrace.Replaced:
				f.GatesReplaced++
				f.GatesVisited++
			case dtrace.Kept:
				f.GatesVisited++
			default:
				f.GatesSkipped++
			}
		case "cand":
			f.Candidates++
			switch r.Outcome {
			case dtrace.Accepted:
				f.Accepted++
				f.Realized++
			case dtrace.Dominated, dtrace.ObjectiveWorse, dtrace.PathBound:
				f.Realized++
			}
		}
	}
	return f
}

// DiffEntry reports one node whose final gate-level disposition differs
// between two runs.
type DiffEntry struct {
	Node string        `json:"node"`
	A    dtrace.Reason `json:"a"`
	B    dtrace.Reason `json:"b"`
	AOk  bool          `json:"a_present"`
	BOk  bool          `json:"b_present"`
}

// finalGate maps node name to the last gate-level outcome recorded for it.
func (t *Trace) finalGate() map[string]dtrace.Reason {
	m := map[string]dtrace.Reason{}
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind == "gate" {
			m[r.Name] = r.Outcome
		}
	}
	return m
}

// Diff compares two traces by each node's final gate-level outcome and
// returns the nodes that differ (or appear in only one run), sorted by node
// name. Two runs of the same tool on the same input produce an empty diff
// for any -workers values — that invariance is CI-gated.
func Diff(a, b *Trace) []DiffEntry {
	fa, fb := a.finalGate(), b.finalGate()
	names := map[string]bool{}
	for n := range fa {
		names[n] = true
	}
	for n := range fb {
		names[n] = true
	}
	var out []DiffEntry
	for n := range names {
		ra, aok := fa[n]
		rb, bok := fb[n]
		if aok && bok && ra == rb {
			continue
		}
		out = append(out, DiffEntry{Node: n, A: ra, B: rb, AOk: aok, BOk: bok})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Export writes the decision records as canonical NDJSON (one marshaled
// dtrace.Record per line), stripped of the surrounding event stream. Two
// runs differing only in -workers export byte-identical files — the
// determinism artifact the CI gate compares.
func (t *Trace) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return err
		}
	}
	return nil
}
