package exper

import (
	"reflect"
	"testing"
)

// smallConfig is an even smaller configuration than tinyConfig, sized so
// the serial-vs-parallel comparison runs twice inside -short budgets.
func smallConfig(workers int) Config {
	cfg := tinyConfig()
	cfg.Scale = 0.05
	cfg.StuckPatterns = 1 << 10
	cfg.Workers = workers
	return cfg
}

// TestTablesParallelMatchSerial is the driver-level determinism contract:
// suite preparation and the row-parallel tables produce identical rows in
// identical order for any worker count.
func TestTablesParallelMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("table determinism test in -short mode")
	}
	type outcome struct {
		rows2 []Table2Row
		rows5 []Table5Row
		rows6 []Table6Row
	}
	run := func(workers int) outcome {
		cfg := smallConfig(workers)
		items, err := PrepareSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSuite(cfg, items)
		rows2, err := Table2(s)
		if err != nil {
			t.Fatal(err)
		}
		rows5, err := Table5(s)
		if err != nil {
			t.Fatal(err)
		}
		rows6, err := Table6(s)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{rows2, rows5, rows6}
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial.rows2, parallel.rows2) {
		t.Errorf("Table 2 diverges:\nserial   %+v\nparallel %+v", serial.rows2, parallel.rows2)
	}
	if !reflect.DeepEqual(serial.rows5, parallel.rows5) {
		t.Errorf("Table 5 diverges:\nserial   %+v\nparallel %+v", serial.rows5, parallel.rows5)
	}
	if !reflect.DeepEqual(serial.rows6, parallel.rows6) {
		t.Errorf("Table 6 diverges:\nserial   %+v\nparallel %+v", serial.rows6, parallel.rows6)
	}
}

// TestSuiteWorkerSplit pins the pool/inner split policy.
func TestSuiteWorkerSplit(t *testing.T) {
	cfg := Config{Workers: 4}
	multi := NewSuite(cfg, []Named{{Name: "a"}, {Name: "b"}})
	if multi.pool != 4 || multi.inner != 1 {
		t.Fatalf("multi-item split = pool %d inner %d, want 4/1", multi.pool, multi.inner)
	}
	single := NewSuite(cfg, []Named{{Name: "a"}})
	if single.pool != 4 || single.inner != 4 {
		t.Fatalf("single-item split = pool %d inner %d, want 4/4", single.pool, single.inner)
	}
	serial := NewSuite(Config{Workers: 1}, []Named{{Name: "a"}, {Name: "b"}})
	if serial.pool != 1 || serial.inner != 1 {
		t.Fatalf("serial split = pool %d inner %d, want 1/1", serial.pool, serial.inner)
	}
}
