package resynth

import (
	"fmt"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/logic"
	"compsynth/internal/obs"
)

// runWorkers optimizes c with the given worker count and returns the result
// plus the netlist in canonical bench text (structural identity check).
func runWorkers(t *testing.T, c *circuit.Circuit, opt Options, workers int) (*Result, string) {
	t.Helper()
	opt.Workers = workers
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, bench.String(res.Circuit)
}

// TestParallelMatchesSerial is the determinism contract: for every
// objective, Optimize with 8 workers produces a circuit structurally
// identical to the serial run, with identical statistics.
func TestParallelMatchesSerial(t *testing.T) {
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		for _, objective := range []Objective{MinGates, MinPaths, Combined} {
			opt := DefaultOptions()
			opt.Objective = objective
			opt.MaxPasses = 4
			opt.Verify = false
			serial, serialNet := runWorkers(t, c, opt, 1)
			parallel, parallelNet := runWorkers(t, c, opt, 8)
			if serial.String() != parallel.String() {
				t.Errorf("%s/%v: stats diverge: serial %s, parallel %s",
					b.Name, objective, serial, parallel)
			}
			if serialNet != parallelNet {
				t.Errorf("%s/%v: netlists diverge under parallelism", b.Name, objective)
			}
		}
	}
}

// TestParallelMatchesSerialSampling covers the sampling identification
// mode, where determinism additionally depends on the per-truth-table RNG
// derivation (a shared RNG stream would make results depend on visit
// interleaving).
func TestParallelMatchesSerialSampling(t *testing.T) {
	f := logic.FromMinterms(4, []int{1, 2, 4, 7, 8, 11, 13, 14})
	for _, seed := range []int64{1, 2, 1995} {
		c := sopCircuit(f, fmt.Sprintf("samp%d", seed))
		opt := DefaultOptions()
		opt.UseSampling = true
		opt.SamplingPerms = 40
		opt.Seed = seed
		opt.Verify = false
		serial, serialNet := runWorkers(t, c, opt, 1)
		parallel, parallelNet := runWorkers(t, c, opt, 8)
		if serialNet != parallelNet {
			t.Errorf("seed %d: sampling netlists diverge (serial %s, parallel %s)",
				seed, serial, parallel)
		}
	}
}

// TestParallelMatchesSerialExtensions covers the Section 6 extensions:
// multi-unit realizations and satisfiability don't-cares.
func TestParallelMatchesSerialExtensions(t *testing.T) {
	f := logic.FromMinterms(4, []int{0, 3, 5, 6, 9, 10, 12, 15})
	c := sopCircuit(f, "ext")
	opt := DefaultOptions()
	opt.MaxUnits = 3
	opt.UseSDC = true
	opt.Verify = false
	_, serialNet := runWorkers(t, c, opt, 1)
	_, parallelNet := runWorkers(t, c, opt, 8)
	if serialNet != parallelNet {
		t.Error("extension netlists diverge under parallelism")
	}
}

// TestExtractCacheHits checks the per-pass extraction memo engages: the
// prefetch phase computes every candidate's truth table, so the serial
// sweep's extractions should all be cache hits.
func TestExtractCacheHits(t *testing.T) {
	c := gen.SmallSuite()[0].Build()
	opt := DefaultOptions()
	opt.Verify = false
	opt.MaxPasses = 2
	ctr := obs.C("resynth.extract_cache_hits")
	before := ctr.Value()
	opt.Workers = 2
	if _, err := Optimize(c, opt); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Value() - before; got == 0 {
		t.Error("no extract cache hits with workers=2")
	}
}
