package resynth_test

import (
	"strings"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/resynth"
)

// TestOptimizeWithCheck runs every objective with Options.Check on: the IR
// invariant audit (and the paper's <=2-paths-per-input bound on replaced
// comparison units) must hold after every pass and on the final circuit.
func TestOptimizeWithCheck(t *testing.T) {
	circuits := map[string]string{
		"c17":    bench.C17,
		"adder4": bench.Adder4,
	}
	replaced := 0
	for name, src := range circuits {
		c, err := bench.ParseString(src, name)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range []resynth.Objective{resynth.MinGates, resynth.MinPaths, resynth.Combined} {
			t.Run(name+"/"+obj.String(), func(t *testing.T) {
				opt := resynth.DefaultOptions()
				opt.Objective = obj
				opt.Check = true
				res, err := resynth.Optimize(c, opt)
				if err != nil {
					t.Fatalf("Optimize with Check: %v", err)
				}
				replaced += res.Replacements
				// The per-pass audit already ran inside Optimize; re-audit
				// the published result from the outside too.
				if err := circuit.Check(res.Circuit); err != nil {
					t.Errorf("final circuit: %v", err)
				}
				if err := circuit.CheckComparisonUnits(res.Circuit); err != nil {
					t.Errorf("final circuit units: %v", err)
				}
				if res.Replacements > 0 && !hasUnitGates(res.Circuit) {
					// Replaced cones are stamped cu<id>_; Simplify may absorb
					// single-gate units, so only log, don't fail per-case.
					t.Logf("%s/%v: %d replacements but no cu-prefixed gates survived",
						name, obj, res.Replacements)
				}
			})
		}
	}
	if replaced == 0 {
		t.Fatal("no objective produced a replacement; the per-pass unit audit was never exercised on a replaced cone")
	}
}

// TestCheckExercisedOnReplacedUnit pins that at least one optimization run
// leaves a recognizable comparison-unit cone in the output, so the
// <=2-paths-per-input audit ran on a real replaced unit (not just vacuously).
func TestCheckExercisedOnReplacedUnit(t *testing.T) {
	for name, src := range map[string]string{"c17": bench.C17, "adder4": bench.Adder4} {
		c, err := bench.ParseString(src, name)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range []resynth.Objective{resynth.MinGates, resynth.MinPaths, resynth.Combined} {
			opt := resynth.DefaultOptions()
			opt.Objective = obj
			opt.Check = true
			res, err := resynth.Optimize(c, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Replacements > 0 && hasUnitGates(res.Circuit) {
				if err := circuit.CheckComparisonUnits(res.Circuit); err != nil {
					t.Fatalf("surviving unit violates the path bound: %v", err)
				}
				return
			}
		}
	}
	t.Fatal("no run left a cu-prefixed comparison unit in its output")
}

func hasUnitGates(c *circuit.Circuit) bool {
	for _, nd := range c.Nodes {
		if nd != nil && strings.HasPrefix(nd.Name, "cu") && strings.Contains(nd.Name, "_") {
			return true
		}
	}
	return false
}
