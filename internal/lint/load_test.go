package lint_test

import (
	"go/ast"
	"path/filepath"
	"testing"

	"compsynth/internal/lint"
)

// TestLoaderEdgeCases is the table test for the loader's corner cases on
// the loadedge fixture: generic functions and their instantiations, method
// values, embedded interfaces, and per-file build constraints inside a
// testdata package.
func TestLoaderEdgeCases(t *testing.T) {
	root := repoRoot(t)
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load(filepath.Join(root, "internal/lint/testdata/src/loadedge"))
	if err != nil {
		t.Fatalf("loadedge must type-check: %v", err)
	}

	fileNames := map[string]bool{}
	for _, f := range p.Files {
		fileNames[filepath.Base(p.Fset.Position(f.Pos()).Filename)] = true
	}

	cases := []struct {
		name  string
		check func(t *testing.T)
	}{
		{"build-tag ignore excludes the file", func(t *testing.T) {
			if fileNames["ignored.go"] {
				t.Error("ignored.go (//go:build ignore) was loaded; its deliberate type error should have failed the load")
			}
		}},
		{"always-true build tag keeps the file", func(t *testing.T) {
			if !fileNames["tagged.go"] {
				t.Error("tagged.go (//go:build go1.1) was excluded")
			}
		}},
		{"generic function declares and instantiates", func(t *testing.T) {
			obj := p.Pkg.Scope().Lookup("Transform")
			if obj == nil {
				t.Fatal("Transform not in package scope")
			}
			instances := 0
			for id, inst := range p.Info.Instances {
				if id.Name == "Transform" && inst.Type != nil {
					instances++
				}
			}
			if instances < 2 {
				t.Errorf("expected both Transform instantiations recorded, got %d", instances)
			}
		}},
		{"method value resolves", func(t *testing.T) {
			obj := p.Pkg.Scope().Lookup("nameOf")
			if obj == nil {
				t.Fatal("nameOf not in package scope")
			}
			if obj.Type().String() != "func() string" {
				t.Errorf("nameOf type = %s, want func() string", obj.Type())
			}
		}},
		{"embedded interface method set", func(t *testing.T) {
			obj := p.Pkg.Scope().Lookup("Outer")
			if obj == nil {
				t.Fatal("Outer not in package scope")
			}
			// Outer embeds Inner: Name must be promoted into its method set.
			iface, ok := obj.Type().Underlying().(interface{ NumMethods() int })
			if !ok {
				t.Fatalf("Outer is not an interface: %T", obj.Type().Underlying())
			}
			if iface.NumMethods() != 2 {
				t.Errorf("Outer has %d methods, want 2 (Name promoted from Inner)", iface.NumMethods())
			}
		}},
		{"comments survive for annotation scanning", func(t *testing.T) {
			for _, f := range p.Files {
				if f.Comments == nil && f.Doc == nil {
					continue
				}
				return
			}
			t.Error("no comments attached to any loadedge file")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.check)
	}

	// The fixture must stay violation-free: its job is loading, not linting.
	diags, err := lint.Analyze(
		[]string{filepath.Join(root, "internal/lint/testdata/src/loadedge")},
		lint.Config{DeterministicAll: true, RelativeTo: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		t.Errorf("loadedge should be clean:\n%s", lint.FormatText(diags))
	}
}

// TestLoadedDeterministic: Loaded() returns packages sorted by import path;
// node ids and therefore diagnostic order downstream depend on it.
func TestLoadedDeterministic(t *testing.T) {
	root := repoRoot(t)
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"internal/lint/testdata/src/badpurity", "internal/lint/testdata/src/loadedge"} {
		if _, err := l.Load(filepath.Join(root, d)); err != nil {
			t.Fatal(err)
		}
	}
	pkgs := l.Loaded()
	if len(pkgs) < 4 { // the two fixtures + at least par and circuit
		t.Fatalf("Loaded returned %d packages, want the transitive module closure", len(pkgs))
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Errorf("Loaded not sorted: %s before %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
	for _, p := range pkgs {
		if len(p.Files) == 0 {
			t.Errorf("package %s has no files", p.Path)
		}
		ast.Inspect(p.Files[0], func(ast.Node) bool { return false }) // parsed ASTs, not shells
	}
}
