package logic

import (
	"math/rand"
	"testing"
)

// TestKeyExactSmall: for n <= 6 the key embeds the table verbatim, so it is
// collision-free by construction — verify on every 4-variable function.
func TestKeyExactSmall(t *testing.T) {
	seen := map[Key]uint64{}
	for w := uint64(0); w < 1<<16; w++ {
		f := New(4)
		f.words[0] = w
		k := f.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("distinct 4-var tables %x and %x share key %v", prev, w, k)
		}
		seen[k] = w
	}
}

// TestKeyWidthDisambiguation: equal bit patterns over different variable
// counts must not collide. The old "%d:%x" string keys got this from the
// width prefix; the struct key gets it from the N field.
func TestKeyWidthDisambiguation(t *testing.T) {
	for n := 1; n <= 6; n++ {
		a := Const(n, true)
		b := Const(n+1, true)
		if n < 6 && a.words[0] == b.words[0] {
			// Only n>=6 share raw words; smaller widths differ via mask.
			continue
		}
		if a.Key() == b.Key() {
			t.Fatalf("const-1 over %d and %d vars share a key", n, n+1)
		}
	}
	// Explicit case: a 6-var all-ones word equals the first word of a 7-var
	// table whose upper word is zero.
	a := Const(6, true)
	b := New(7)
	b.words[0] = ^uint64(0)
	if a.Key() == b.Key() {
		t.Fatal("6-var and 7-var tables with equal leading words collide")
	}
}

// TestKeyNoStructuredCollisions feeds families of structurally distinct
// tables whose naive encodings are easy to confuse (permuted variables,
// complemented halves, single-bit flips) and asserts all keys are distinct.
func TestKeyNoStructuredCollisions(t *testing.T) {
	seen := map[Key]string{}
	add := func(f TT, label string) {
		t.Helper()
		k := f.Key()
		if prev, ok := seen[k]; ok && prev != f.String() {
			t.Fatalf("collision: %s (%s) vs stored %s", label, f.String(), prev)
		}
		seen[k] = f.String()
	}
	rng := rand.New(rand.NewSource(21))
	for n := 7; n <= 9; n++ {
		base := randTT(rng, n)
		add(base, "base")
		add(base.Not(), "not")
		for i := 1; i <= n; i++ {
			add(base.Xor(Var(n, i)), "xor-var")
			perm := make([]int, n)
			for j := range perm {
				perm[j] = j
			}
			perm[0], perm[i-1] = perm[i-1], perm[0]
			add(base.Permute(perm), "swap-perm")
		}
		for b := 0; b < 64; b++ {
			g := base.Clone()
			g.Set(b, !g.Get(b))
			add(g, "bitflip")
		}
	}
	if len(seen) < 200 {
		t.Fatalf("expected a few hundred distinct keys, got %d", len(seen))
	}
}

func TestKeySeedDeterministicAndSensitive(t *testing.T) {
	f := randTT(rand.New(rand.NewSource(22)), 7)
	k := f.Key()
	if k.Seed(42) != k.Seed(42) {
		t.Fatal("Seed not deterministic")
	}
	if k.Seed(42) == k.Seed(43) {
		t.Fatal("Seed ignores base")
	}
	g := f.Not()
	if g.Key().Seed(42) == k.Seed(42) {
		t.Fatal("Seed ignores function")
	}
}

// FuzzTTKey checks that the digest-backed keys of two differing wide tables
// never collide on fuzz-discovered inputs, and that the key is a pure
// function of the table contents.
func FuzzTTKey(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(0))
	f.Add(^uint64(0), uint64(0), uint64(0), ^uint64(0))
	f.Add(uint64(0xAAAAAAAAAAAAAAAA), uint64(0x5555555555555555),
		uint64(0x5555555555555555), uint64(0xAAAAAAAAAAAAAAAA))
	f.Add(uint64(1)<<63, uint64(0), uint64(0), uint64(1))
	f.Add(uint64(0x13B), uint64(0x13B), uint64(0x13B), uint64(0))
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1 uint64) {
		a := New(7)
		a.words[0], a.words[1] = a0, a1
		b := New(7)
		b.words[0], b.words[1] = b0, b1
		if a.Equal(b) {
			if a.Key() != b.Key() {
				t.Fatal("equal tables, distinct keys")
			}
			return
		}
		if a.Key() == b.Key() {
			t.Fatalf("distinct tables collide: %x,%x vs %x,%x", a0, a1, b0, b1)
		}
	})
}
