// Command sftverify replays a run's tamper-evident artifacts offline and
// reports whether they hold up: the hash-chained event ledger (-events
// output), the run certificate (-cert output), and — when the netlists are
// provided — the circuit digests, the equivalence witness, every
// per-replacement evidence entry, and the comparison-unit path bound.
//
// Usage:
//
//	sftverify [-ledger events.ndjson] [-cert cert.json]
//	          [-in input.bench] [-out output.bench] [-report report.json]
//
// At least one of -ledger and -cert is required. When both are given the
// cross-binding is checked in both directions: the certificate's body digest
// must appear as a "cert" record in the sealed ledger, and the ledger's
// chain head and final root must match the certificate's binding.
//
// Exit status: 0 — everything verified; 1 — verification failed (tampering,
// forgery or corruption detected); 2 — usage or I/O error (nothing could be
// verified either way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compsynth"
	"compsynth/internal/circuit"
	"compsynth/internal/ledger"
)

// reportOut is the JSON verification report (-report, and always printed to
// stdout).
type reportOut struct {
	OK     bool                `json:"ok"`
	Checks []checkOut          `json:"checks"`
	Ledger *ledger.ChainResult `json:"ledger,omitempty"`
}

type checkOut struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Note  string `json:"note,omitempty"`
}

type verifier struct {
	rep reportOut
}

func (v *verifier) check(name string, note string, err error) {
	c := checkOut{Name: name, OK: err == nil, Note: note}
	if err != nil {
		c.Error = err.Error()
	}
	v.rep.Checks = append(v.rep.Checks, c)
}

func main() {
	ledgerPath := flag.String("ledger", "", "verify this ledger stream (an -events NDJSON file)")
	certPath := flag.String("cert", "", "verify this run certificate (a -cert JSON file)")
	inPath := flag.String("in", "", "the run's input .bench netlist (checked against the certificate)")
	outPath := flag.String("out", "", "the run's output .bench netlist (checked against the certificate)")
	reportPath := flag.String("report", "", "also write the JSON verification report to this file")
	flag.Parse()
	if *ledgerPath == "" && *certPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: sftverify [-ledger events.ndjson] [-cert cert.json] [-in input.bench] [-out output.bench] [-report report.json]")
		os.Exit(2)
	}

	v := &verifier{}
	var chain *ledger.ChainResult
	var cert *ledger.Certificate

	if *ledgerPath != "" {
		data, err := os.ReadFile(*ledgerPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sftverify: %v\n", err)
			os.Exit(2)
		}
		res, err := ledger.VerifyChain(data)
		note := ""
		if err == nil {
			note = fmt.Sprintf("%d records, %d events, %d batches", res.Records, res.Events, res.Batches)
			if res.Truncated {
				note += fmt.Sprintf("; TRUNCATED: valid prefix up to seq %d, no final root", res.Records-1)
			}
		}
		v.check("ledger.chain", note, err)
		chain = res
		v.rep.Ledger = res
	}

	if *certPath != "" {
		c, err := ledger.ReadCertificate(*certPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sftverify: %v\n", err)
			os.Exit(2)
		}
		cert = c
		verifyCert(v, cert, chain, *inPath, *outPath)
	}

	v.rep.OK = true
	for _, c := range v.rep.Checks {
		if !c.OK {
			v.rep.OK = false
		}
	}
	raw, _ := json.MarshalIndent(&v.rep, "", "  ")
	raw = append(raw, '\n')
	os.Stdout.Write(raw)
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sftverify: %v\n", err)
			os.Exit(2)
		}
	}
	if !v.rep.OK {
		os.Exit(1)
	}
}

// verifyCert runs every certificate-side check that the provided inputs
// allow.
func verifyCert(v *verifier, cert *ledger.Certificate, chain *ledger.ChainResult, inPath, outPath string) {
	// Body digest: the certificate must hash to what it claims.
	dg, err := ledger.BodyDigest(cert)
	if err == nil && dg != cert.BodyDigest {
		err = fmt.Errorf("body digest mismatch: file says %s, content hashes to %s", cert.BodyDigest, dg)
	}
	v.check("cert.body_digest", "", err)

	// Ledger binding, both directions.
	if chain != nil {
		if cert.Ledger == nil {
			v.check("cert.ledger_binding", "", fmt.Errorf("certificate carries no ledger binding"))
		} else {
			var err error
			switch {
			case cert.Ledger.Head != chain.Head:
				err = fmt.Errorf("chain head mismatch: certificate %s, ledger %s", cert.Ledger.Head, chain.Head)
			case cert.Ledger.FinalRoot != chain.FinalRoot:
				err = fmt.Errorf("final root mismatch: certificate %s, ledger %s", cert.Ledger.FinalRoot, chain.FinalRoot)
			case cert.Ledger.Records != chain.Events || cert.Ledger.Batches != chain.Batches:
				err = fmt.Errorf("count mismatch: certificate %d records/%d batches, ledger %d/%d",
					cert.Ledger.Records, cert.Ledger.Batches, chain.Events, chain.Batches)
			}
			v.check("cert.ledger_binding", "", err)
			found := false
			for _, d := range chain.CertDigests {
				if d == cert.BodyDigest {
					found = true
				}
			}
			err = nil
			if !found {
				err = fmt.Errorf("certificate body digest not recorded in the ledger stream")
			}
			v.check("ledger.cert_record", "", err)
		}
	}

	in := loadAndCheckCircuit(v, "input", inPath, cert.Input)
	out := loadAndCheckCircuit(v, "output", outPath, cert.Output)

	// Equivalence witness: replay the witness patterns on both netlists.
	// ledger.VerifyEquivalence re-derives the witness parameters from the
	// circuit digests, so a forged certificate cannot pick its own patterns
	// — and a certificate that silently omits the witness fails too.
	if in != nil && out != nil {
		mode, err := ledger.VerifyEquivalence(cert, in, out)
		v.check("cert.equivalence", mode, err)
	}

	// Per-replacement evidence: self-contained, needs no netlist.
	evErr := error(nil)
	for _, ev := range cert.Evidence {
		if err := ledger.VerifyEvidence(ev); err != nil && evErr == nil {
			evErr = err
		}
	}
	v.check("cert.evidence", fmt.Sprintf("%d replacements", len(cert.Evidence)), evErr)

	// Path proof: recompute the comparison-unit bound on the output netlist.
	if cert.PathProof != nil && out != nil {
		err := func() error {
			if err := circuit.CheckWith(out, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
				return err
			}
			if err := circuit.CheckComparisonUnits(out); err != nil {
				return err
			}
			units, maxPaths := circuit.ComparisonUnitStats(out)
			if units != cert.PathProof.Units || maxPaths != cert.PathProof.MaxPathsPerInput {
				return fmt.Errorf("recomputed %d units / max %d paths, certificate says %d / %d",
					units, maxPaths, cert.PathProof.Units, cert.PathProof.MaxPathsPerInput)
			}
			if maxPaths > cert.PathProof.Bound {
				return fmt.Errorf("path bound violated: %d > %d", maxPaths, cert.PathProof.Bound)
			}
			return nil
		}()
		v.check("cert.path_proof", "", err)
	}
}

// loadAndCheckCircuit loads a netlist and checks it against the
// certificate's identity for that side. Returns nil when no path was given.
func loadAndCheckCircuit(v *verifier, side, path string, cc *ledger.CircuitCert) *circuit.Circuit {
	if path == "" {
		return nil
	}
	c, err := compsynth.LoadBench(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sftverify: %v\n", err)
		os.Exit(2)
	}
	err = nil
	if cc == nil {
		err = fmt.Errorf("certificate records no %s circuit", side)
	} else if got := ledger.CircuitDigest(c).Hex(); got != cc.Digest {
		err = fmt.Errorf("%s netlist digest %s != certificate %s", side, got, cc.Digest)
	}
	v.check("cert."+side+"_digest", "", err)
	if err != nil {
		return nil
	}
	return c
}
