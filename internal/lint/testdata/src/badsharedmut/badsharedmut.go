// Package badsharedmut injects sharedmut violations: goroutine-spawning
// closures that write state shared with the spawner without a
// sync/channel/atomic barrier. Lint fixture; the go tool never builds
// testdata, only sftlint's own loader does.
package badsharedmut

import "sync"

// Tally spawns a goroutine that writes a captured counter the spawner
// reads — the textbook data race the -race tests only catch on exercised
// schedules.
func Tally(items []int) int {
	n := 0
	go func() {
		for range items {
			n++
		}
	}()
	return n
}

var total int

func bump(p *int) {
	*p++
}

// Spawn hands the address of a global to a mutating function.
func Spawn() {
	go bump(&total)
}

// Guarded is the synchronized twin of Tally: same shape, mutex barrier on
// both sides — no finding.
func Guarded(items []int) int {
	var mu sync.Mutex
	n := 0
	go func() {
		mu.Lock()
		for range items {
			n++
		}
		mu.Unlock()
	}()
	mu.Lock()
	defer mu.Unlock()
	return n
}

// Channeled is the message-passing twin: the result crosses on a channel,
// nothing is shared — no finding.
func Channeled(items []int) int {
	ch := make(chan int, 1)
	go func() {
		n := 0
		for range items {
			n++
		}
		ch <- n
	}()
	return <-ch
}
