package circuit

import (
	"math/rand"
	"testing"
)

// buildMux builds a 2:1 mux: out = (a AND !s) OR (b AND s).
func buildMux() (*Circuit, int, int, int) {
	c := New("mux")
	a := c.AddInput("a")
	b := c.AddInput("b")
	s := c.AddInput("s")
	ns := c.AddGate(Not, "ns", s)
	t0 := c.AddGate(And, "t0", a, ns)
	t1 := c.AddGate(And, "t1", b, s)
	o := c.AddGate(Or, "o", t0, t1)
	c.MarkOutput(o)
	return c, a, b, s
}

func TestEvalMux(t *testing.T) {
	c, _, _, _ := buildMux()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, s bool
		want    bool
	}{
		{false, true, false, false},
		{true, false, false, true},
		{false, true, true, true},
		{true, false, true, false},
	}
	for _, cse := range cases {
		got := c.Eval([]bool{cse.a, cse.b, cse.s})[0]
		if got != cse.want {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", cse.a, cse.b, cse.s, got, cse.want)
		}
	}
}

func TestGateTypeEval(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false, true}, false},
		{Nand, []bool{true, true}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
		{Const0, nil, false},
		{Const1, nil, true},
	}
	for _, c := range cases {
		if got := c.t.Eval(c.in); got != c.want {
			t.Errorf("%v%v = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestEvalWordsMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	for _, gt := range types {
		n := 1
		if gt != Not && gt != Buf {
			n = 1 + rng.Intn(4)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		out := gt.EvalWords(words)
		for b := 0; b < 64; b++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = words[i]&(1<<b) != 0
			}
			want := gt.Eval(in)
			if (out&(1<<b) != 0) != want {
				t.Fatalf("%v: bit %d mismatch", gt, b)
			}
		}
	}
}

func TestEquiv2Count(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(And, "", a, b, d) // 3-input: weight 2
	g2 := c.AddGate(Not, "", g1)      // weight 0
	g3 := c.AddGate(Or, "", g2, a)    // weight 1
	c.MarkOutput(g3)
	if got := c.Equiv2Count(); got != 3 {
		t.Fatalf("Equiv2Count = %d, want 3", got)
	}
	if Equiv2Weight(Nand, 4) != 3 || Equiv2Weight(Buf, 1) != 0 || Equiv2Weight(Xor, 2) != 1 {
		t.Fatal("Equiv2Weight wrong")
	}
}

func TestTopoAndLevels(t *testing.T) {
	c, _, _, _ := buildMux()
	order := c.Topo()
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, nd := range c.Nodes {
		for _, f := range nd.Fanin {
			if pos[f] >= pos[nd.ID] {
				t.Fatalf("topo violation: %d before %d", nd.ID, f)
			}
		}
	}
	if c.Depth() != 3 {
		t.Fatalf("mux depth = %d, want 3", c.Depth())
	}
}

func TestFanoutBranches(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "", a, b)
	h := c.AddGate(Or, "", a, g)
	// a feeds both g and h: two fanout branches.
	c.MarkOutput(h)
	fo := c.Fanouts(a)
	if len(fo) != 2 {
		t.Fatalf("fanouts of a = %v, want 2 branches", fo)
	}
	// A node feeding two pins of one gate has two branches.
	c2 := New("t2")
	x := c2.AddInput("x")
	g2 := c2.AddGate(Xor, "", x, x)
	c2.MarkOutput(g2)
	if len(c2.Fanouts(x)) != 2 {
		t.Fatalf("double-pin fanout = %v", c2.Fanouts(x))
	}
}

func TestReplaceUsesAndSweep(t *testing.T) {
	c, a, b, _ := buildMux()
	// Replace output driver cone with a fresh AND(a,b).
	g := c.AddGate(And, "newg", a, b)
	o := c.Outputs[0]
	c.ReplaceUses(o, g)
	removed := c.SweepDead()
	if removed == 0 {
		t.Fatal("expected dead gates removed")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]bool{{true, true, false}, {true, false, true}, {false, true, true}} {
		want := in[0] && in[1]
		if got := c.Eval(in)[0]; got != want {
			t.Fatalf("after rewire Eval(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestSimplifyConstants(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	one := c.AddGate(Const1, "")
	zero := c.AddGate(Const0, "")
	g1 := c.AddGate(And, "", a, one)  // = a
	g2 := c.AddGate(Or, "", g1, zero) // = a
	g3 := c.AddGate(Not, "", g2)      // = !a
	g4 := c.AddGate(Not, "", g3)      // = a
	c.MarkOutput(g4)
	c.Simplify()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []bool{false, true} {
		if got := c.Eval([]bool{v})[0]; got != v {
			t.Fatalf("simplified identity Eval(%v) = %v", v, got)
		}
	}
	if c.Equiv2Count() != 0 {
		t.Fatalf("equiv2 after simplify = %d, want 0", c.Equiv2Count())
	}
}

func TestSimplifyControllingConstant(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	zero := c.AddGate(Const0, "")
	g := c.AddGate(And, "", a, zero) // = 0
	h := c.AddGate(Nor, "", g, a)    // = !a
	c.MarkOutput(h)
	c.Simplify()
	for _, v := range []bool{false, true} {
		if got := c.Eval([]bool{v})[0]; got != !v {
			t.Fatalf("Eval(%v) = %v, want %v", v, got, !v)
		}
	}
}

func TestSimplifyDuplicateFanin(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "", a, a, b)
	c.MarkOutput(g)
	c.Simplify()
	nd := c.Nodes[g]
	if len(nd.Fanin) != 2 {
		t.Fatalf("duplicate fanin not removed: %v", nd.Fanin)
	}
}

func TestSimplifyXorConstants(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	one := c.AddGate(Const1, "")
	g := c.AddGate(Xor, "", a, one) // = !a
	c.MarkOutput(g)
	c.Simplify()
	for _, v := range []bool{false, true} {
		if got := c.Eval([]bool{v})[0]; got != !v {
			t.Fatalf("xor-const Eval(%v) = %v", v, got)
		}
	}
}

func TestSetConstantOnInput(t *testing.T) {
	c, _, _, _ := buildMux()
	// Force s = 0: mux becomes a.
	s := c.NodeByName("s")
	c.SetConstant(s, false)
	c.Simplify()
	for _, in := range [][]bool{{true, false, true}, {false, true, false}} {
		if got := c.Eval(in)[0]; got != in[0] {
			t.Fatalf("Eval(%v) = %v, want %v", in, got, in[0])
		}
	}
}

func TestCompact(t *testing.T) {
	c, a, b, _ := buildMux()
	g := c.AddGate(And, "", a, b)
	c.ReplaceUses(c.Outputs[0], g)
	c.SweepDead()
	n, remap := c.Compact()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumLive() != len(n.Nodes) {
		t.Fatal("compact left holes")
	}
	if len(n.Inputs) != 3 {
		t.Fatalf("inputs lost: %d", len(n.Inputs))
	}
	if remap[g] < 0 {
		t.Fatal("live node unmapped")
	}
	for _, in := range [][]bool{{true, true, true}, {true, false, false}} {
		if n.Eval(in)[0] != c.Eval(in)[0] {
			t.Fatal("compact changed function")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c, _, _, _ := buildMux()
	d := c.Clone()
	d.Nodes[d.NodeByName("o")].Type = And
	if c.Nodes[c.NodeByName("o")].Type != Or {
		t.Fatal("clone shares nodes")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	g1 := c.AddGate(And, "", a, a)
	g2 := c.AddGate(Or, "", g1, a)
	c.MarkOutput(g2)
	// Manually create a cycle.
	c.Nodes[g1].Fanin[1] = g2
	c.invalidate()
	if err := c.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestControllingValue(t *testing.T) {
	if v, ok := And.ControllingValue(); !ok || v {
		t.Fatal("AND controlling value should be 0")
	}
	if v, ok := Nor.ControllingValue(); !ok || !v {
		t.Fatal("NOR controlling value should be 1")
	}
	if _, ok := Xor.ControllingValue(); ok {
		t.Fatal("XOR has no controlling value")
	}
}

func TestDuplicateNameGetsUniqued(t *testing.T) {
	c := New("t")
	c.AddInput("a")
	id := c.AddGate(Const1, "a")
	if c.Nodes[id].Name == "a" {
		t.Fatal("duplicate name not uniqued")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
