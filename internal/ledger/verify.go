package ledger

import (
	"bytes"
	"encoding/json"
	"fmt"

	"compsynth/internal/obs"
)

// ChainResult summarizes a verified ledger stream.
type ChainResult struct {
	Records int64  `json:"records"` // total framed records (events + seals)
	Events  int64  `json:"events"`  // event records
	Batches int64  `json:"batches"` // sealed Merkle batches
	Head    string `json:"head"`    // chain head after the last verified record
	Final   bool   `json:"final"`   // final root record present and verified
	// FinalRoot is the verified final Merkle root (empty unless Final).
	FinalRoot string `json:"final_root,omitempty"`
	// Truncated reports that the stream ends mid-record or before the final
	// seal: everything up to Records is a verified prefix, but the run did
	// not close cleanly (crash tolerance, not tampering).
	Truncated bool `json:"truncated,omitempty"`
	// CertDigests lists the certificate body digests recorded in the stream
	// ("cert" events), in order.
	CertDigests []string `json:"cert_digests,omitempty"`
}

// ledgerLine is the union of the three record shapes; pointer fields
// discriminate which seal kind (if any) a line carries.
type ledgerLine struct {
	Seq       int64           `json:"seq"`
	Chain     string          `json:"chain"`
	Ev        json.RawMessage `json:"ev"`
	Root      *string         `json:"root"`
	Batch     *int64          `json:"batch"`
	First     *int64          `json:"first"`
	Last      *int64          `json:"last"`
	FinalRoot *string         `json:"final_root"`
	Batches   *int64          `json:"batches"`
	Records   *int64          `json:"records"`
}

// VerifyChain replays a ledger stream and recomputes every chain link,
// batch Merkle root and the final root. A stream whose last line is cut
// mid-record or that stops before the final seal verifies as a valid prefix
// with Truncated set (a crashed run is not a tampered one). Any divergence
// inside the prefix — flipped bytes, a dropped, reordered or spliced
// record, a forged root — returns an error naming the first bad sequence
// number.
func VerifyChain(data []byte) (*ChainResult, error) {
	res := &ChainResult{Head: genesis().Hex()}
	head := genesis()
	var nextSeq int64
	var leaves []H // chain digests of events since the last batch seal
	var roots []H
	var batchFirst, lastEvent int64
	haveLeaves := false

	lines := bytes.Split(data, []byte("\n"))
	// A final newline (the normal case) leaves one empty trailing element;
	// drop it so only genuinely cut lines count as truncation.
	if n := len(lines); n > 0 && len(bytes.TrimSpace(lines[n-1])) == 0 {
		lines = lines[:n-1]
	}

	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			return res, fmt.Errorf("ledger: record %d (line %d): empty line inside stream", nextSeq, i+1)
		}
		var rec ledgerLine
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				// Cut mid-write: the verified prefix stands.
				res.Truncated = true
				return res, nil
			}
			return res, fmt.Errorf("ledger: record %d (line %d): unparseable: %v", nextSeq, i+1, err)
		}
		if res.Final {
			return res, fmt.Errorf("ledger: record %d: data after final root record", rec.Seq)
		}
		if rec.Seq != nextSeq {
			// Distinguish the two seq-gap tampers: if the expected record
			// appears later the stream was reordered; if it appears nowhere
			// it was dropped.
			if seqAppearsLater(lines[i:], nextSeq) {
				return res, fmt.Errorf("ledger: record %d out of order (expected seq %d)", rec.Seq, nextSeq)
			}
			return res, fmt.Errorf("ledger: record %d missing (stream jumps to seq %d)", nextSeq, rec.Seq)
		}

		var payload []byte
		switch {
		case rec.FinalRoot != nil:
			if rec.Batches == nil || rec.Records == nil {
				return res, fmt.Errorf("ledger: record %d: malformed final record", rec.Seq)
			}
			payload = finalPayload(*rec.FinalRoot, *rec.Batches, *rec.Records)
		case rec.Root != nil:
			if rec.Batch == nil || rec.First == nil || rec.Last == nil {
				return res, fmt.Errorf("ledger: record %d: malformed batch record", rec.Seq)
			}
			payload = batchPayload(*rec.Root, *rec.Batch, *rec.First, *rec.Last)
		case rec.Ev != nil:
			payload = rec.Ev
		default:
			return res, fmt.Errorf("ledger: record %d: unknown record kind", rec.Seq)
		}

		want := chainDigest(head, rec.Seq, payload)
		if rec.Chain != want.Hex() {
			return res, fmt.Errorf("ledger: record %d: chain mismatch (record tampered or stream spliced)", rec.Seq)
		}

		switch {
		case rec.FinalRoot != nil:
			final := merkleRoot(roots)
			if *rec.FinalRoot != final.Hex() {
				return res, fmt.Errorf("ledger: record %d: final root mismatch", rec.Seq)
			}
			if *rec.Batches != int64(len(roots)) || *rec.Records != res.Events {
				return res, fmt.Errorf("ledger: record %d: final record counts disagree with stream (%d batches, %d events seen)",
					rec.Seq, len(roots), res.Events)
			}
			if haveLeaves {
				return res, fmt.Errorf("ledger: record %d: final root with %d unsealed events", rec.Seq, len(leaves))
			}
			res.Final = true
			res.FinalRoot = *rec.FinalRoot
		case rec.Root != nil:
			if !haveLeaves {
				return res, fmt.Errorf("ledger: record %d: batch root with no preceding events", rec.Seq)
			}
			root := merkleRoot(leaves)
			if *rec.Root != root.Hex() {
				return res, fmt.Errorf("ledger: record %d: batch root mismatch", rec.Seq)
			}
			if *rec.Batch != int64(len(roots)) || *rec.First != batchFirst || *rec.Last != lastEvent {
				return res, fmt.Errorf("ledger: record %d: batch bounds disagree with stream", rec.Seq)
			}
			roots = append(roots, root)
			res.Batches++
			leaves = leaves[:0]
			haveLeaves = false
		default:
			if !haveLeaves {
				batchFirst = rec.Seq
				haveLeaves = true
			}
			leaves = append(leaves, want)
			lastEvent = rec.Seq
			res.Events++
			var ev obs.Event
			if err := json.Unmarshal(rec.Ev, &ev); err == nil && ev.Type == "cert" && ev.Digest != "" {
				res.CertDigests = append(res.CertDigests, ev.Digest)
			}
		}

		head = want
		res.Head = want.Hex()
		res.Records++
		nextSeq++
	}

	if !res.Final {
		// No final seal: the producer crashed or the tail was cut at a line
		// boundary. The chain still vouches for everything present.
		res.Truncated = true
	}
	return res, nil
}

// seqAppearsLater reports whether any of the remaining lines parses as a
// record with the given sequence number (used to tell reordering from
// dropping).
func seqAppearsLater(lines [][]byte, seq int64) bool {
	for _, line := range lines {
		var rec struct {
			Seq *int64 `json:"seq"`
		}
		if err := json.Unmarshal(line, &rec); err == nil && rec.Seq != nil && *rec.Seq == seq {
			return true
		}
	}
	return false
}
