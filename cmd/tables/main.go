// Command tables regenerates the paper's experimental tables (Tables 2-7)
// on the synthetic benchmark suite.
//
// Usage:
//
//	tables [-table all|2|3|4|5|6|7] [-scale f] [-quick] [-seed n]
//	       [-patterns n] [-pairs n] [-circuits a,b,c] [-noverify] [-workers n]
//	       [-trace] [-metrics-out report.json] [-v] [-listen addr] [-events file]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"compsynth/internal/exper"
	_ "compsynth/internal/ledger" // wires the -events ledger and -cert certifier
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // wires the -listen telemetry server
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to regenerate (2..7 or all)")
		scale    = flag.Float64("scale", 1.0, "suite size multiplier")
		quick    = flag.Bool("quick", false, "fast smoke-test configuration")
		seed     = flag.Int64("seed", 1995, "campaign seed")
		patterns = flag.Int("patterns", 1<<20, "random patterns for Table 6")
		pairs    = flag.Int("pairs", 20000, "two-pattern budget for Table 7")
		circuits = flag.String("circuits", "", "comma-separated circuit filter")
		noverify = flag.Bool("noverify", false, "skip per-pass equivalence checks (faster)")
	)
	oflags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if *table != "all" && !strings.ContainsAny(*table, "234567") {
		fmt.Fprintln(os.Stderr, "tables: unknown table:", *table)
		os.Exit(2)
	}

	cfg := exper.DefaultConfig()
	if *quick {
		cfg = exper.QuickConfig()
	}
	if *scale != 1.0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	if *patterns != 1<<20 {
		cfg.StuckPatterns = *patterns
	}
	if *pairs != 20000 {
		cfg.PDFPairs = *pairs
	}
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}
	cfg.Verify = !*noverify
	cfg.Workers = oflags.Workers
	cfg.Check = oflags.Check

	orun := oflags.Start("tables")
	lg := orun.Log
	cfg.Tracer = orun.Tracer
	orun.SetCertOptions(struct {
		Table    string   `json:"table"`
		Scale    float64  `json:"scale"`
		Quick    bool     `json:"quick"`
		Seed     int64    `json:"seed"`
		Patterns int      `json:"patterns"`
		Pairs    int      `json:"pairs"`
		Circuits []string `json:"circuits,omitempty"`
		Verify   bool     `json:"verify"`
	}{*table, cfg.Scale, *quick, cfg.Seed, cfg.StuckPatterns, cfg.PDFPairs, cfg.Circuits, cfg.Verify})

	start := time.Now()
	lg.Printf("# preparing suite (scale=%.2f, irredundant=%v)", cfg.Scale, cfg.MakeIrredundant)
	psp := orun.Tracer.StartSpan("tables.prepare")
	items, err := exper.PrepareSuite(cfg)
	psp.End()
	if err != nil {
		os.Exit(orun.Fail(err))
	}
	suite := exper.NewSuite(cfg, items)
	for _, nc := range items {
		lg.Printf("#   %-10s %v", nc.Name, nc.Circuit.Stats())
	}
	lg.Printf("# suite ready in %v\n", time.Since(start).Round(time.Millisecond))

	want := func(t string) bool { return *table == "all" || *table == t }
	run := func(name string, f func() (string, error)) {
		if !want(name) {
			return
		}
		lg.Verbosef("table %s starting", name)
		t0 := time.Now()
		sp := orun.Tracer.StartSpan("tables.table" + name)
		out, err := f()
		sp.End()
		if err != nil {
			os.Exit(orun.Fail(fmt.Errorf("table %s: %v", name, err)))
		}
		fmt.Print(out)
		orun.Report.AddResult("table"+name, out)
		lg.Printf("# table %s in %v\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("2", func() (string, error) {
		rows, err := exper.Table2(suite)
		return exper.FormatTable2(rows), err
	})
	run("3", func() (string, error) {
		rows, err := exper.Table3(suite)
		return exper.FormatTable3(rows), err
	})
	run("4", func() (string, error) {
		a, b, err := exper.Table4(suite)
		return exper.FormatTable4(a, b), err
	})
	run("5", func() (string, error) {
		rows, err := exper.Table5(suite)
		return exper.FormatTable5(rows), err
	})
	run("6", func() (string, error) {
		rows, err := exper.Table6(suite)
		return exper.FormatTable6(rows), err
	})
	run("7", func() (string, error) {
		rows, err := exper.Table7(suite)
		return exper.FormatTable7(rows), err
	})
	lg.Printf("# total %v", time.Since(start).Round(time.Millisecond))
	if err := orun.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
}
