#!/usr/bin/env bash
# Parallel-scaling benchmark sweep: runs the table, fault-simulation and
# resynthesis benchmarks at -cpu 1 and 4 (serial vs 4-worker fan-out of the
# bit-identical workload) and records the results as BENCH_<date>.json in
# the repository root.
#
# Usage: scripts/bench.sh [bench-regex] [cpus]
#   bench-regex  benchmarks to run (default: the parallel-scaling set)
#   cpus         -cpu list (default: 1,4)
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-Table2Parallel|FaultSimParallel|ResynthParallel|Table2Procedure2|FaultSimulation}"
cpus="${2:-1,4}"
out="BENCH_$(date +%F).json"

echo "== go test -bench ($pattern) -cpu $cpus =="
raw=$(go test -run '^$' -bench "$pattern" -benchtime 2x -cpu "$cpus" -timeout 30m .)
echo "$raw"

echo "$raw" | go run ./scripts/benchjson > "$out"
echo "wrote $out"
