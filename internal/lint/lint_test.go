package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"compsynth/internal/lint"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

func fixtureDirs(t *testing.T, root string) []string {
	t.Helper()
	dirs, err := lint.ExpandPatterns([]string{filepath.Join(root, "internal/lint/testdata/src") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 9 {
		t.Fatalf("expected at least 9 fixture packages, got %v", dirs)
	}
	return dirs
}

// TestFixturesGolden asserts the committed goldens are regenerated-clean:
// byte-for-byte what `sftlint -update-golden` would write right now.
func TestFixturesGolden(t *testing.T) {
	root := repoRoot(t)
	gotText, gotJSON, err := lint.GoldenContents(root)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(root, "internal/lint/testdata/golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if gotText != string(want) {
		t.Errorf("golden.txt is stale — run `sftlint -update-golden`\n--- got ---\n%s--- want ---\n%s", gotText, want)
	}
	wantJSON, err := os.ReadFile(filepath.Join(root, "internal/lint/testdata/golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON != string(wantJSON) {
		t.Errorf("golden.json is stale — run `sftlint -update-golden`\n--- got ---\n%s--- want ---\n%s", gotJSON, wantJSON)
	}
}

// TestFixturesCoverEveryRule guards the fixtures themselves: each rule must
// fire at least once, or a refactor could silently hollow out the gate.
func TestFixturesCoverEveryRule(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{DeterministicAll: true})
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]int{}
	for _, d := range diags {
		fired[d.Rule]++
	}
	for _, rule := range lint.AllRules() {
		if fired[rule] == 0 {
			t.Errorf("rule %s never fires on the fixtures", rule)
		}
	}
}

// TestRuleFilter checks Config.Rules restricts the run.
func TestRuleFilter(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{
		DeterministicAll: true,
		Rules:            []string{"cachekey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("cachekey-only run found nothing")
	}
	for _, d := range diags {
		if d.Rule != "cachekey" {
			t.Errorf("rule filter leaked %s diagnostic: %s", d.Rule, d)
		}
	}
}

// TestTreeClean is the in-process version of the CI gate: the repository's
// own packages must produce zero diagnostics beyond the committed baseline,
// and no baseline entry may be stale.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := repoRoot(t)
	dirs, err := lint.ExpandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Analyze(dirs, lint.Config{RelativeTo: root})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := lint.LoadBaseline(filepath.Join(root, "lint_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := baseline.Apply(diags)
	if len(fresh) > 0 {
		t.Errorf("tree has findings not covered by lint_baseline.json:\n%s", lint.FormatText(fresh))
	}
	for _, id := range stale {
		t.Errorf("baseline entry %s no longer matches any finding — delete it", id)
	}
	// The debt ledger must match the in-source suppression comments.
	counts, err := lint.Debt(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range lint.CompareDebt(counts, baseline) {
		t.Errorf("suppression-debt drift: %s", msg)
	}
}

// TestNormalizePin pins the output contract all three formats rely on:
// diagnostics sorted by (file, line, col, rule, message), exact duplicates
// dropped, distinct findings at the same position kept. Byte-stability of
// -json/text/SARIF across runs reduces to exactly this plus deterministic
// analysis order.
func TestNormalizePin(t *testing.T) {
	in := []lint.Diagnostic{
		{File: "b.go", Line: 2, Col: 1, Rule: "wallclock", Msg: "m1", ID: "x1"},
		{File: "a.go", Line: 9, Col: 4, Rule: "purity", Msg: "m2", ID: "x2"},
		{File: "a.go", Line: 9, Col: 4, Rule: "purity", Msg: "m2", ID: "x2"}, // exact dup
		{File: "a.go", Line: 9, Col: 4, Rule: "purity", Msg: "different sink", ID: "x3"},
		{File: "a.go", Line: 1, Col: 7, Rule: "sharedmut", Msg: "m3", ID: "x4"},
	}
	got := lint.Normalize(in)
	want := []string{"x4", "x3", "x2", "x1"}
	if len(got) != len(want) {
		t.Fatalf("Normalize kept %d diagnostics, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("position %d: got %s, want %s", i, got[i].ID, id)
		}
	}
	// Idempotent and byte-stable: a second pass changes nothing.
	again := lint.Normalize(append([]lint.Diagnostic(nil), got...))
	if lint.FormatText(again) != lint.FormatText(got) {
		t.Error("Normalize is not idempotent")
	}
}

// TestJSONShape checks the JSON encoding round-trips and stays sorted.
func TestJSONShape(t *testing.T) {
	root := repoRoot(t)
	diags, err := lint.Analyze(fixtureDirs(t, root), lint.Config{DeterministicAll: true, RelativeTo: root})
	if err != nil {
		t.Fatal(err)
	}
	out, err := lint.FormatJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(back) != len(diags) {
		t.Fatalf("round-trip lost diagnostics: %d != %d", len(back), len(diags))
	}
	sorted := sort.SliceIsSorted(back, func(i, j int) bool {
		if back[i].File != back[j].File {
			return back[i].File < back[j].File
		}
		return back[i].Line < back[j].Line
	})
	if !sorted {
		t.Error("JSON diagnostics are not sorted by file/line")
	}
	empty, err := lint.FormatJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty) != "[]" {
		t.Errorf("empty diagnostics should encode as [], got %q", empty)
	}
}
