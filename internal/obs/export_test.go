package obs

// StartForTest exposes the fallible half of Flags.Start to external tests
// (Start itself exits the process on error).
func StartForTest(f *Flags, tool string) (*Run, error) {
	return f.start(tool)
}
