// Package badshardmut injects violations of nodemut's speculative seam: a
// //lint:speculative function runs concurrently against a shared circuit
// snapshot and must never call a mutating Circuit method. Lint fixture; the
// go tool never builds testdata, only sftlint's own loader does.
package badshardmut

import "compsynth/internal/circuit"

// Evaluate mutates the shared snapshot from a speculative worker.
//
//lint:speculative
func Evaluate(c *circuit.Circuit, id, src int) int {
	c.SetFanin(id, 0, src)
	return c.NumPOUses(id)
}

// EvaluateClosure hides the mutation inside a nested closure.
//
//lint:speculative
func EvaluateClosure(c *circuit.Circuit, old, new int) func() {
	return func() {
		c.ReplaceUses(old, new)
		c.SweepDead()
	}
}

// Warm rebuilds lazy caches from a worker — a data race even though the
// derived view is logically read-only.
//
//lint:speculative
func Warm(c *circuit.Circuit) {
	c.RebuildFanouts()
	c.Freeze()
}

// Inspect is clean to the syntactic check — reads and queries only — but
// Fanouts lazily calls RebuildFanouts, so the interprocedural purity rule
// flags the hidden mutation one call down.
//
//lint:speculative
func Inspect(c *circuit.Circuit, id int) (bool, int) {
	return c.Alive(id), len(c.Fanouts(id))
}

// Commit is clean: not annotated, so the serial commit phase may mutate.
func Commit(c *circuit.Circuit, old, new int) {
	c.ReplaceUses(old, new)
	c.SweepDead()
}
