package delay

import (
	"compsynth/internal/circuit"
)

// ExactStats classifies every path delay fault of a small circuit by
// exhaustive two-pattern search.
type ExactStats struct {
	Total      int // 2 * number of structural paths
	Testable   int // faults with at least one robust two-pattern test
	Untestable int
}

// Coverage is the robustly-testable fraction.
func (s ExactStats) Coverage() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Testable) / float64(s.Total)
}

// ClassifyExact enumerates all paths and all 4^n two-pattern combinations
// and determines exactly which path delay faults are robustly testable.
// Intended for circuits with at most ~10 inputs and modest path counts;
// returns ok=false when the circuit exceeds maxInputs or maxPaths.
func ClassifyExact(c *circuit.Circuit, maxInputs, maxPaths int) (ExactStats, bool) {
	n := len(c.Inputs)
	if n > maxInputs {
		return ExactStats{}, false
	}
	paths := EnumeratePaths(c, maxPaths+1)
	if len(paths) > maxPaths {
		return ExactStats{}, false
	}
	stats := ExactStats{Total: 2 * len(paths)}
	// For each pattern pair, compute values once and mark the (path,
	// direction) faults it robustly tests.
	type key struct {
		path int
		fall bool
	}
	tested := map[key]bool{}
	v1 := make([]bool, n)
	v2 := make([]bool, n)
	for m1 := 0; m1 < 1<<n; m1++ {
		for m2 := 0; m2 < 1<<n; m2++ {
			if m1 == m2 {
				continue
			}
			for j := 0; j < n; j++ {
				v1[j] = m1&(1<<j) != 0
				v2[j] = m2&(1<<j) != 0
			}
			val := Sim5(c, v1, v2)
			for pi, p := range paths {
				launch := val[p.Nodes[0]]
				if launch != R && launch != F {
					continue
				}
				k := key{pi, launch == F}
				if tested[k] {
					continue
				}
				ok := true
				for i := 1; i < len(p.Nodes); i++ {
					if !EdgeRobust(c, val, p.Nodes[i], p.Pins[i-1]) {
						ok = false
						break
					}
				}
				if ok {
					tested[k] = true
				}
			}
		}
	}
	stats.Testable = len(tested)
	stats.Untestable = stats.Total - stats.Testable
	return stats, true
}
