package paths

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
)

func refCircuits(t *testing.T) []*circuit.Circuit {
	t.Helper()
	c17, err := bench.ParseString(bench.C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	add4, err := bench.ParseString(bench.Adder4, "adder4")
	if err != nil {
		t.Fatal(err)
	}
	cs := []*circuit.Circuit{c17, add4}
	for seed := int64(1); seed <= 4; seed++ {
		cs = append(cs, gen.Random(gen.Params{
			Name: "r", Inputs: 12, Outputs: 5, Gates: 120, Layers: 7,
			MaxFanin: 4, Locality: 0.6, Seed: seed,
		}))
	}
	return cs
}

// TestCountMatchesRef pins the CSR-backed Count to the pre-CSR reference on
// pristine, mutated and re-frozen circuits: the port must be invisible in
// results, not just close.
func TestCountMatchesRef(t *testing.T) {
	for i, c := range refCircuits(t) {
		got, gerr := Count(c)
		want, werr := RefCount(c)
		if got != want || (gerr == nil) != (werr == nil) {
			t.Fatalf("circuit %d: Count = %d (%v), RefCount = %d (%v)", i, got, gerr, want, werr)
		}
		// Mutate (aging the frozen view) and re-compare on the patched view.
		g := c.AddGate(circuit.Not, "", c.Outputs[0])
		c.MarkOutput(g)
		got, gerr = Count(c)
		want, werr = RefCount(c)
		if got != want || (gerr == nil) != (werr == nil) {
			t.Fatalf("circuit %d after edit: Count = %d (%v), RefCount = %d (%v)", i, got, gerr, want, werr)
		}
	}
}

func TestThroughMatchesRef(t *testing.T) {
	for i, c := range refCircuits(t) {
		for _, nd := range c.Nodes {
			if nd == nil {
				continue
			}
			if got, want := Through(c, nd.ID), RefThrough(c, nd.ID); got != want {
				t.Fatalf("circuit %d node %d: Through = %d, ref = %d", i, nd.ID, got, want)
			}
		}
	}
}

func TestFanoutWeightsMatchSparseSweep(t *testing.T) {
	for i, c := range refCircuits(t) {
		got := FanoutWeights(c)
		want := make([]uint64, len(c.Nodes))
		for _, o := range c.Outputs {
			want[o]++
		}
		topo := c.Topo()
		for j := len(topo) - 1; j >= 0; j-- {
			for _, f := range c.Nodes[topo[j]].Fanin {
				want[f] += want[topo[j]]
			}
		}
		for id := range want {
			if got[id] != want[id] {
				t.Fatalf("circuit %d node %d: weight %d, ref %d", i, id, got[id], want[id])
			}
		}
	}
}
