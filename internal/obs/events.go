package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compsynth/internal/obs/dtrace"
)

// Event is one NDJSON line of the flight recorder. Every event carries its
// type and the elapsed milliseconds since the recorder opened; the other
// fields depend on the type:
//
//	run_start   tool, args
//	span_begin  name, depth
//	span_end    name, depth, dur_ms, alloc_bytes
//	progress    stage, done, total (total 0 = unbounded)
//	heartbeat   counters, gauges, goroutines, heap_bytes
//	dtrace      d (one decision-trace record; see internal/obs/dtrace)
//	cert        digest (body digest of the certificate emitted by this run)
//	run_end     dur_ms, error
type Event struct {
	Type       string           `json:"t"`
	ElapsedMS  float64          `json:"ms"`
	Tool       string           `json:"tool,omitempty"`
	Args       []string         `json:"args,omitempty"`
	Name       string           `json:"name,omitempty"`
	Depth      int              `json:"depth,omitempty"`
	DurMS      float64          `json:"dur_ms,omitempty"`
	AllocBytes int64            `json:"alloc_bytes,omitempty"`
	Stage      string           `json:"stage,omitempty"`
	Done       int64            `json:"done,omitempty"`
	Total      int64            `json:"total,omitempty"`
	Goroutines int              `json:"goroutines,omitempty"`
	HeapBytes  uint64           `json:"heap_bytes,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Gauges     map[string]int64 `json:"gauges,omitempty"`
	Digest     string           `json:"digest,omitempty"`
	Error      string           `json:"error,omitempty"`
	Decision   *dtrace.Record   `json:"d,omitempty"`
}

// LedgerState is a snapshot of the tamper-evident ledger wrapped around the
// event stream: how many event records and Merkle batches have been sealed,
// the current hash-chain head, and (after Close) the final Merkle root.
type LedgerState struct {
	Records   int64  `json:"records"`
	Batches   int64  `json:"batches"`
	Head      string `json:"head"`
	FinalRoot string `json:"final_root,omitempty"`
}

// LedgerSink is the framing seam between the flight recorder and the
// tamper-evident ledger (internal/ledger). When a sink is registered, every
// event the recorder writes flows through Append, which frames it with a
// sequence number and hash chain; Close seals the stream with a final Merkle
// root. Implementations need not be safe for concurrent use — the recorder
// serializes all calls under its own mutex.
type LedgerSink interface {
	Append(ev Event) error
	Close() error
	State() LedgerState
}

// newLedgerSink is installed by the internal/ledger package's init. The
// indirection keeps the ledger (which imports obs for the Event type and its
// own metrics) out of obs's import graph; commands blank-import
// compsynth/internal/ledger to link it in, mirroring obs/telemetry.
var newLedgerSink func(w io.Writer) LedgerSink

// RegisterLedger installs the ledger sink constructor the recorder wraps
// -events files with.
func RegisterLedger(fn func(w io.Writer) LedgerSink) {
	newLedgerSink = fn
}

// progressMinInterval throttles per-stage progress events: hot loops may
// emit thousands per second (one per fault-simulation block), and the
// recorder keeps only the freshest per stage at this cadence. Final events
// (done == total) always pass so a consumer sees every completion.
const progressMinInterval = 100 * time.Millisecond

// Recorder streams run events to an NDJSON file — a flight recorder for
// in-flight runs. All methods are safe for concurrent use; a nil *Recorder
// no-ops. Events are written (and flushed) one JSON object per line as they
// happen, so `tail -f` on the file follows a live run.
type Recorder struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder // plain NDJSON path, used when no ledger is linked
	sink     LedgerSink    // framing ledger, when internal/ledger is linked in
	start    time.Time
	err      error // first write error; reported by Close
	lastProg map[string]time.Time

	metrics *Metrics
	stop    chan struct{}
	done    chan struct{}
}

// NewRecorder opens path for writing and, when interval > 0, starts a
// heartbeat goroutine that records a counters/gauges snapshot every
// interval until Close.
func NewRecorder(path string, interval time.Duration, m *Metrics) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		f:        f,
		start:    time.Now(),
		lastProg: map[string]time.Time{},
		metrics:  m,
	}
	if newLedgerSink != nil {
		r.sink = newLedgerSink(f)
	} else {
		r.enc = json.NewEncoder(f)
	}
	if interval > 0 {
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		go r.heartbeatLoop(interval)
	}
	return r, nil
}

func (r *Recorder) write(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.ElapsedMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	var err error
	if r.sink != nil {
		err = r.sink.Append(ev)
	} else {
		err = r.enc.Encode(ev)
	}
	if err != nil && r.err == nil {
		r.err = err
	}
}

// RecordCert records the certificate body digest as a ledger event, binding
// the certificate to the event stream it describes (call before RunEnd).
func (r *Recorder) RecordCert(digest string) {
	if r == nil {
		return
	}
	r.write(Event{Type: "cert", Digest: digest})
}

// Decision streams one decision-trace record as a Type "dtrace" event. The
// dtrace tracer built by Flags.Start uses this method as its sink, so every
// decision the resynthesis sweep explains rides the same NDJSON stream —
// and the same hash chain — as the rest of the flight recording.
func (r *Recorder) Decision(rec *dtrace.Record) {
	if r == nil {
		return
	}
	r.write(Event{Type: "dtrace", Decision: rec})
}

// LedgerState reports the framing ledger's state. ok is false when no ledger
// is linked in (the recorder then writes plain NDJSON).
func (r *Recorder) LedgerState() (LedgerState, bool) {
	if r == nil {
		return LedgerState{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return LedgerState{}, false
	}
	return r.sink.State(), true
}

// RunStart records the opening event.
func (r *Recorder) RunStart(tool string, args []string) {
	r.write(Event{Type: "run_start", Tool: tool, Args: args})
}

// RunEnd records the closing event (call before Close).
func (r *Recorder) RunEnd(durMS float64, errStr string) {
	r.write(Event{Type: "run_end", DurMS: durMS, Error: errStr})
}

// SpanBegin implements SpanObserver.
func (r *Recorder) SpanBegin(name string, depth int) {
	r.write(Event{Type: "span_begin", Name: name, Depth: depth})
}

// SpanEnd implements SpanObserver.
func (r *Recorder) SpanEnd(name string, depth int, dur time.Duration, allocBytes int64) {
	r.write(Event{
		Type: "span_end", Name: name, Depth: depth,
		DurMS:      float64(dur) / float64(time.Millisecond),
		AllocBytes: allocBytes,
	})
}

// Progress records one hot-loop progress event, throttled per stage to
// progressMinInterval (completion events always pass).
func (r *Recorder) Progress(stage string, done, total int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	now := time.Now()
	final := total > 0 && done >= total
	if !final && now.Sub(r.lastProg[stage]) < progressMinInterval {
		r.mu.Unlock()
		return
	}
	r.lastProg[stage] = now
	r.mu.Unlock()
	r.write(Event{Type: "progress", Stage: stage, Done: done, Total: total})
}

// heartbeat records one periodic snapshot event.
func (r *Recorder) heartbeat() {
	snap := r.metrics.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.write(Event{
		Type:       "heartbeat",
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
	})
}

func (r *Recorder) heartbeatLoop(interval time.Duration) {
	defer close(r.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.heartbeat()
		case <-r.stop:
			return
		}
	}
}

// Close stops the heartbeat, flushes and closes the file, and returns the
// first error encountered while recording (so a broken event stream fails
// the run rather than passing silently).
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if r.stop != nil {
		close(r.stop)
		<-r.done
		r.stop = nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.err
	if r.sink != nil {
		// Seal the ledger (final Merkle root) before the file closes, so
		// even failed runs leave a verifiable stream.
		if serr := r.sink.Close(); err == nil {
			err = serr
		}
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// progressSink is the process-wide flight recorder, installed by Flags.Start
// when -events is given. The hot loops reach it through EmitProgress; an
// atomic pointer keeps the disabled path to a single load.
var progressSink atomic.Pointer[Recorder]

// SetProgressSink installs (or, with nil, removes) the process-wide
// progress event sink.
func SetProgressSink(r *Recorder) {
	progressSink.Store(r)
}

// EmitProgress records a progress event on the installed flight recorder.
// The call is nil-safe and allocation-free when no recorder is installed,
// so hot loops (resynthesis passes, fault-simulation blocks, experiment
// rows) call it unconditionally.
func EmitProgress(stage string, done, total int64) {
	if r := progressSink.Load(); r != nil {
		r.Progress(stage, done, total)
	}
}
