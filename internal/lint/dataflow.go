package lint

import (
	"go/token"
	"go/types"
)

// Dataflow over the call graph: a fixpoint closing parameter-mutation facts
// over calls, forward reachability with parent links (for per-entry purity
// checks and their call-path witnesses), and reverse reachability from
// wall-clock facts (for the transitive wallclock rule, which must classify
// every declared function, not just seam entries).

// closeParamMut computes, for every node, the set of parameters (receiver
// first) the function writes through — directly or by passing the parameter
// into a mutated position of a callee. Monotone, so a simple worklist
// converges; boundary and sanitized sites do not propagate (the pool
// machinery and the observability layer own their internal discipline).
func closeParamMut(g *graph) {
	for _, n := range g.nodes {
		n.mutAll = n.mutLocal
	}
	changed := true
	for changed {
		changed = false
		for _, n := range g.nodes {
			for _, site := range n.calls {
				if site.boundary || site.sanitized {
					continue
				}
				for ai, arg := range site.args {
					if arg.kind != rootParam || arg.paramIdx < 0 || arg.paramIdx >= 64 {
						continue
					}
					i := ai
					if site.calleeRooted {
						if i == 0 {
							continue // the called value itself
						}
						i--
					}
					if !calleeMutatesArg(site, i) {
						continue
					}
					bit := uint64(1) << uint(arg.paramIdx)
					if n.mutAll&bit == 0 {
						n.mutAll |= bit
						changed = true
					}
				}
			}
		}
	}
}

// calleeMutatesArg reports whether operand index i (receiver first when the
// site has one) is written through by any resolved callee, or by the
// external-function deny list.
func calleeMutatesArg(site *callSite, i int) bool {
	if i < 0 || i >= 64 {
		return false
	}
	for _, c := range site.callees {
		idx := i
		if idx >= len(c.params) && len(c.params) > 0 {
			idx = len(c.params) - 1 // variadic tail
		}
		if idx < len(c.params) && c.mutAll&(1<<uint(idx)) != 0 {
			return true
		}
	}
	if site.ext != nil {
		for _, idx := range extMutatedArgs(site.ext) {
			if idx == i {
				return true
			}
		}
	}
	return false
}

// extMutatedArgs is the curated deny list of external (standard library)
// functions that mutate one of their operands (receiver = 0). Everything
// not listed is treated as benign: the standard library's value-typed and
// synchronized APIs dominate, and sync/atomic receivers are barriers by
// construction. The list covers the stateful APIs pipeline code plausibly
// reaches for.
func extMutatedArgs(fn *types.Func) []int {
	if fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if isMethod {
		switch path {
		case "math/rand", "math/rand/v2":
			return []int{0} // every draw advances the generator
		case "bytes", "strings":
			switch name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Reset",
				"Grow", "Truncate", "ReadFrom", "Next", "Read":
				return []int{0} // Buffer / Builder / Reader state
			}
		case "bufio":
			return []int{0}
		case "encoding/json", "encoding/gob":
			return []int{0} // Encoder/Decoder stream state
		case "container/heap", "container/list":
			return []int{0}
		case "hash/maphash":
			switch name {
			case "Write", "WriteString", "WriteByte", "Reset", "SetSeed":
				return []int{0}
			}
		}
		return nil
	}
	switch path {
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			return []int{0}
		case "Sscan", "Sscanf", "Sscanln":
			return nil // writes through pointer args we cannot index reliably
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer":
			return []int{0}
		case "ReadFull", "ReadAtLeast":
			return []int{1}
		}
	case "encoding/json":
		if name == "Unmarshal" {
			return []int{1}
		}
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return []int{0}
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc", "Reverse":
			return []int{0}
		}
	case "container/heap":
		return []int{0}
	}
	return nil
}

// parentEdge records how a node was first reached in a forward traversal.
type parentEdge struct {
	from *fnode
	site *callSite
}

// reachOpts selects which edges a traversal follows.
type reachOpts struct {
	intoSpeculative bool // follow edges into //lint:speculative callees
}

// reachFrom runs a breadth-first traversal from entry over call edges,
// skipping boundary and sanitized sites, returning the visit order and the
// first-discovery parent links (for witness reconstruction). Deterministic:
// nodes are discovered in call-site order, which is source order.
func reachFrom(entry *fnode, opts reachOpts) (order []*fnode, parents map[*fnode]parentEdge) {
	parents = map[*fnode]parentEdge{entry: {}}
	order = []*fnode{entry}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for _, site := range u.calls {
			if site.boundary || site.sanitized {
				continue
			}
			for _, v := range site.callees {
				if v.speculative && !opts.intoSpeculative {
					continue
				}
				if _, seen := parents[v]; seen {
					continue
				}
				parents[v] = parentEdge{from: u, site: site}
				order = append(order, v)
			}
		}
	}
	return order, parents
}

// witnessPath reconstructs the call chain entry -> ... -> sink from parent
// links, as (callSitePos, calleeName) steps.
type witnessStep struct {
	pos  token.Pos
	name string
}

func witnessTo(sink *fnode, parents map[*fnode]parentEdge) []witnessStep {
	var rev []witnessStep
	for n := sink; ; {
		pe, ok := parents[n]
		if !ok || pe.from == nil {
			break
		}
		rev = append(rev, witnessStep{pos: pe.site.pos, name: n.name})
		n = pe.from
	}
	steps := make([]witnessStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	return steps
}

// clockHop is the next step toward a wall-clock fact: the call site to take
// and the callee it leads to (nil site for a node with its own local fact).
type clockHop struct {
	site *callSite
	next *fnode
}

// clockReachability computes, for every node, whether a wall-clock fact is
// reachable along non-boundary, non-sanitized edges that do not enter
// //lint:speculative functions (the purity rule owns those seams), plus the
// first hop of a shortest witness path. Reverse BFS from fact nodes; level
// order makes the recorded hop a shortest path, and iterating nodes in id
// order keeps it deterministic.
func clockReachability(g *graph) (reach []bool, hops []clockHop) {
	reach = make([]bool, len(g.nodes))
	hops = make([]clockHop, len(g.nodes))

	// callers[v] lists (u, site) pairs with an edge u -> v.
	type inEdge struct {
		from *fnode
		site *callSite
	}
	callers := make([][]inEdge, len(g.nodes))
	for _, u := range g.nodes {
		for _, site := range u.calls {
			if site.boundary || site.sanitized {
				continue
			}
			for _, v := range site.callees {
				if v.speculative {
					continue
				}
				callers[v.id] = append(callers[v.id], inEdge{from: u, site: site})
			}
		}
	}

	var frontier []*fnode
	for _, n := range g.nodes {
		if len(n.clockReads) > 0 {
			reach[n.id] = true
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		var next []*fnode
		for _, v := range frontier {
			for _, e := range callers[v.id] {
				if reach[e.from.id] {
					continue
				}
				if e.from.speculative {
					continue // speculative entries are the purity rule's to report
				}
				reach[e.from.id] = true
				hops[e.from.id] = clockHop{site: e.site, next: v}
				next = append(next, e.from)
			}
		}
		frontier = next
	}
	return reach, hops
}
