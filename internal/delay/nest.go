package delay

import (
	"math/rand"

	"compsynth/internal/circuit"
	"compsynth/internal/paths"
)

// Non-enumerative coverage estimation in the spirit of the authors' own
// NEST line of work ([8], [10] in the paper): the number of path delay
// faults robustly tested by one two-pattern pair is counted exactly by
// dynamic programming over the robustly sensitized subgraph — no path is
// ever enumerated — and the cumulative coverage of a pattern set is
// bracketed between the best single pair (every pair's set could coincide)
// and the sum over pairs (every set could be disjoint), both capped by the
// fault universe.

// CountRobustPair returns the exact number of path delay faults robustly
// tested by the pair (v1, v2), via Procedure-1-style labels restricted to
// the robustly sensitized subgraph.
func CountRobustPair(c *circuit.Circuit, v1, v2 []bool) uint64 {
	val := Sim5(c, v1, v2)
	np := make([]uint64, len(c.Nodes))
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			if val[id] == R || val[id] == F {
				np[id] = 1
			}
			continue
		}
		if val[id] != R && val[id] != F {
			continue
		}
		var sum uint64
		for pin, f := range nd.Fanin {
			if np[f] == 0 {
				continue
			}
			if EdgeRobust(c, val, id, pin) {
				sum += np[f]
			}
		}
		np[id] = sum
	}
	var total uint64
	for _, o := range c.Outputs {
		total += np[o]
	}
	return total
}

// EstimateResult brackets the cumulative robust PDF coverage of a random
// two-pattern campaign without enumerating or storing paths.
type EstimateResult struct {
	TotalFaults uint64 // 2 * path count (Procedure 1)
	LowerBound  uint64 // best single pair observed
	UpperBound  uint64 // sum over pairs, capped at TotalFaults
	Pairs       int
}

// LowerCoverage returns LowerBound / TotalFaults.
func (r EstimateResult) LowerCoverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.LowerBound) / float64(r.TotalFaults)
}

// UpperCoverage returns UpperBound / TotalFaults.
func (r EstimateResult) UpperCoverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.UpperBound) / float64(r.TotalFaults)
}

// EstimateRandom runs a random campaign with the non-enumerative per-pair
// counter. Unlike RunRandom it uses no memory proportional to the detected
// set, so it scales to circuits whose path counts make hashing infeasible.
func EstimateRandom(c *circuit.Circuit, pairs int, seed int64) EstimateResult {
	rng := rand.New(rand.NewSource(seed))
	res := EstimateResult{TotalFaults: 2 * paths.MustCount(c), Pairs: pairs}
	v1 := make([]bool, len(c.Inputs))
	v2 := make([]bool, len(c.Inputs))
	for p := 0; p < pairs; p++ {
		for j := range v1 {
			v1[j] = rng.Intn(2) == 1
			v2[j] = rng.Intn(2) == 1
		}
		n := CountRobustPair(c, v1, v2)
		if n > res.LowerBound {
			res.LowerBound = n
		}
		res.UpperBound += n
	}
	if res.UpperBound > res.TotalFaults {
		res.UpperBound = res.TotalFaults
	}
	return res
}
