package ledger

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"compsynth/internal/circuit"
	"compsynth/internal/obs"
	"compsynth/internal/simulate"
)

// CertVersion is the certificate format version. v2: SHA-256 digests.
const CertVersion = 2

// circuitMagic versions the canonical netlist serialization CircuitDigest
// hashes.
const circuitMagic = "sft-circuit/v2"

// Witness parameters: cones up to maxExhaustiveInputs primary inputs get an
// exhaustive response digest; larger circuits get sampledRounds*64 seeded
// random patterns (matching the pipeline's own equivalence-check defaults).
const (
	maxExhaustiveInputs = 14
	sampledRounds       = 32
)

// Certificate is the verifiable record of one run: what went in, what came
// out, and the evidence that the two agree. Every field except Ledger and
// BodyDigest is deterministic — no wall clock, no host state — so two runs
// on identical inputs and options produce byte-identical bodies.
type Certificate struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Error   string `json:"error,omitempty"`

	Options *OptionsInfo `json:"options,omitempty"`
	Input   *CircuitCert `json:"input,omitempty"`
	Output  *CircuitCert `json:"output,omitempty"`

	// Equivalence is the input/output functional-agreement witness (present
	// when the run observed both circuits).
	Equivalence *EquivWitness `json:"equivalence,omitempty"`

	// Evidence holds one entry per resynthesis replacement, recorded at
	// replacement time (resynth.Options.Certify).
	Evidence []Evidence `json:"evidence,omitempty"`

	// PathProof summarizes the paper's testability guarantee on the output
	// circuit: every comparison unit keeps at most Bound paths from any
	// input to any output (Lemma 1 / CheckComparisonUnits).
	PathProof *PathProof `json:"path_proof,omitempty"`

	// BodyDigest is the digest of this certificate marshaled with BodyDigest
	// and Ledger cleared. The same value is appended to the event ledger as
	// a "cert" record before sealing.
	BodyDigest string `json:"body_digest"`

	// Ledger binds the certificate to the -events stream that produced it
	// (absent when the run had no -events).
	Ledger *Binding `json:"ledger,omitempty"`
}

// OptionsInfo echoes the command's semantic options and their digest.
type OptionsInfo struct {
	Echo   json.RawMessage `json:"echo"`
	Digest string          `json:"digest"`
}

// CircuitCert identifies one netlist by shape and canonical digest.
type CircuitCert struct {
	Name    string `json:"name"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	Gates   int    `json:"gates"`
	Equiv2  int    `json:"equiv2"`
	Digest  string `json:"digest"`
}

// EquivWitness records how input/output agreement was established: an
// exhaustive sweep for small input counts, otherwise Rounds*64 random
// patterns from Seed. Response is the shared output-response digest; a
// verifier with the two netlists replays the same patterns and must land on
// the same value for both.
type EquivWitness struct {
	Mode     string `json:"mode"` // "exhaustive" or "sampled"
	Seed     int64  `json:"seed,omitempty"`
	Rounds   int    `json:"rounds,omitempty"`
	Inputs   int    `json:"inputs"`
	Outputs  int    `json:"outputs"`
	Response string `json:"response"`
}

// PathProof summarizes the comparison-unit path bound on the output circuit.
type PathProof struct {
	Units            int    `json:"units"`
	MaxPathsPerInput uint64 `json:"max_paths_per_input"`
	Bound            uint64 `json:"bound"`
}

// Binding ties the certificate to its sealed event ledger.
type Binding struct {
	Records   int64  `json:"records"`
	Batches   int64  `json:"batches"`
	Head      string `json:"head"`
	FinalRoot string `json:"final_root,omitempty"`
}

// CircuitDigest hashes a canonical serialization of the netlist: primary
// input names in declaration order, primary output names in declaration
// order, then one "name = TYPE(fanin,...)" line per gate sorted by gate
// name. The form depends only on names, gate types and pin order — never on
// node IDs or construction order — so it is invariant under .bench
// write/parse round trips.
func CircuitDigest(c *circuit.Circuit) H {
	d := hnew().bytes([]byte(circuitMagic))
	d = d.int(len(c.Inputs))
	for _, id := range c.Inputs {
		d = d.bytes([]byte(c.Nodes[id].Name))
	}
	d = d.int(len(c.Outputs))
	for _, id := range c.Outputs {
		d = d.bytes([]byte(c.Nodes[id].Name))
	}
	var lines []string
	var sb strings.Builder
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		sb.Reset()
		sb.WriteString(nd.Name)
		sb.WriteString(" = ")
		sb.WriteString(nd.Type.String())
		sb.WriteByte('(')
		for i, f := range nd.Fanin {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(c.Nodes[f].Name)
		}
		sb.WriteByte(')')
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	d = d.int(len(lines))
	for _, ln := range lines {
		d = d.bytes([]byte(ln))
	}
	return d.sum()
}

func circuitCert(c *circuit.Circuit) *CircuitCert {
	return &CircuitCert{
		Name:    c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Gates:   c.NumGates(),
		Equiv2:  c.Equiv2Count(),
		Digest:  CircuitDigest(c).Hex(),
	}
}

// WitnessParams derives the witness mode, seed and round count from the two
// circuit digests and the input count. The seed is a function of the
// netlists themselves, so neither the producer nor a forger gets to pick
// favorable patterns.
func WitnessParams(inputDigest, outputDigest string, inputs int) (mode string, seed int64, rounds int) {
	if inputs <= maxExhaustiveInputs {
		return "exhaustive", 0, 0
	}
	d := hnew().bytes([]byte(inputDigest)).bytes([]byte(outputDigest)).sum()
	return "sampled", int64(binary.LittleEndian.Uint64(d[:8])), sampledRounds
}

// WitnessResponse simulates c under the witness patterns and digests the
// primary-output responses. Two circuits are pattern-equivalent under the
// witness iff their responses match.
func WitnessResponse(c *circuit.Circuit, mode string, seed int64, rounds int) (string, error) {
	s := simulate.New(c)
	n := len(c.Inputs)
	d := hnew()
	switch mode {
	case "exhaustive":
		if n > maxExhaustiveInputs {
			return "", fmt.Errorf("exhaustive witness over %d inputs (max %d)", n, maxExhaustiveInputs)
		}
		total := uint64(1) << n
		for base := uint64(0); base < total; base += 64 {
			for j := 0; j < n; j++ {
				var w uint64
				for b := uint64(0); b < 64 && base+b < total; b++ {
					if (base+b)>>uint(j)&1 == 1 {
						w |= 1 << b
					}
				}
				s.SetInput(j, w)
			}
			s.Run()
			m := maskRemaining(total - base)
			for j := range c.Outputs {
				d = d.word(s.Output(j) & m)
			}
		}
	case "sampled":
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < rounds; r++ {
			for j := 0; j < n; j++ {
				s.SetInput(j, rng.Uint64())
			}
			s.Run()
			for j := range c.Outputs {
				d = d.word(s.Output(j))
			}
		}
	default:
		return "", fmt.Errorf("unknown witness mode %q", mode)
	}
	return d.sum().Hex(), nil
}

// VerifyEquivalence replays a certificate's equivalence witness against the
// two netlists. The witness mode, seed and round count are NOT taken from
// the certificate — they are re-derived from the circuit digests
// (WitnessParams), so a forged certificate cannot claim a favorable or
// empty pattern set (e.g. "sampled" with zero rounds): its recorded
// parameters must match the forced derivation exactly, and both circuits
// must reproduce the recorded response under it. Returns the derived mode
// alongside any verification error. cert.Input and cert.Output must be
// present and already checked against in and out (CircuitDigest).
func VerifyEquivalence(cert *Certificate, in, out *circuit.Circuit) (string, error) {
	w := cert.Equivalence
	mode, seed, rounds := WitnessParams(cert.Input.Digest, cert.Output.Digest, len(in.Inputs))
	if len(out.Inputs) != len(in.Inputs) || len(out.Outputs) != len(in.Outputs) {
		return mode, fmt.Errorf("netlist shapes differ: input %d in/%d out, output %d in/%d out",
			len(in.Inputs), len(in.Outputs), len(out.Inputs), len(out.Outputs))
	}
	if w == nil {
		return mode, fmt.Errorf("certificate records both circuits but no equivalence witness")
	}
	if w.Mode != mode || w.Seed != seed || w.Rounds != rounds {
		return mode, fmt.Errorf("witness parameters not the forced derivation: certificate says %s/seed %d/%d rounds, circuit digests require %s/seed %d/%d rounds",
			w.Mode, w.Seed, w.Rounds, mode, seed, rounds)
	}
	if w.Inputs != len(in.Inputs) || w.Outputs != len(in.Outputs) {
		return mode, fmt.Errorf("witness shape %d in/%d out != netlists %d/%d",
			w.Inputs, w.Outputs, len(in.Inputs), len(in.Outputs))
	}
	ri, err := WitnessResponse(in, mode, seed, rounds)
	if err != nil {
		return mode, err
	}
	ro, err := WitnessResponse(out, mode, seed, rounds)
	if err != nil {
		return mode, err
	}
	if ri != w.Response {
		return mode, fmt.Errorf("input circuit response %s != recorded %s", ri, w.Response)
	}
	if ro != w.Response {
		return mode, fmt.Errorf("output circuit response %s != recorded %s", ro, w.Response)
	}
	return mode, nil
}

func maskRemaining(remaining uint64) uint64 {
	if remaining >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << remaining) - 1
}

// buildCertBody assembles the deterministic certificate body from the run
// state and returns it with its body digest. Registered as the obs -cert
// seam.
func buildCertBody(r *obs.Run) (any, string, error) {
	cert := &Certificate{
		Version: CertVersion,
		Tool:    r.Report.Tool,
		Error:   r.Report.Error,
	}
	if raw := r.CertOptions(); raw != nil {
		cert.Options = &OptionsInfo{
			Echo:   raw,
			Digest: hnew().bytes(raw).sum().Hex(),
		}
	}
	before, after := r.CertCircuits()
	if before != nil {
		cert.Input = circuitCert(before)
	}
	if after != nil {
		cert.Output = circuitCert(after)
	}
	if before != nil && after != nil &&
		len(before.Inputs) == len(after.Inputs) && len(before.Outputs) == len(after.Outputs) {
		mode, seed, rounds := WitnessParams(cert.Input.Digest, cert.Output.Digest, len(before.Inputs))
		respIn, err := WitnessResponse(before, mode, seed, rounds)
		if err != nil {
			return nil, "", fmt.Errorf("witness on input circuit: %v", err)
		}
		respOut, err := WitnessResponse(after, mode, seed, rounds)
		if err != nil {
			return nil, "", fmt.Errorf("witness on output circuit: %v", err)
		}
		if respIn != respOut {
			return nil, "", fmt.Errorf("witness: input and output circuits disagree (%s mode)", mode)
		}
		cert.Equivalence = &EquivWitness{
			Mode: mode, Seed: seed, Rounds: rounds,
			Inputs: len(before.Inputs), Outputs: len(before.Outputs),
			Response: respIn,
		}
	}
	for _, item := range r.CertEvidence() {
		ev, ok := item.(Evidence)
		if !ok {
			return nil, "", fmt.Errorf("evidence item of unexpected type %T", item)
		}
		cert.Evidence = append(cert.Evidence, ev)
	}
	proofOn := after
	if proofOn == nil {
		proofOn = before
	}
	if proofOn != nil {
		units, maxPaths := circuit.ComparisonUnitStats(proofOn)
		cert.PathProof = &PathProof{Units: units, MaxPathsPerInput: maxPaths, Bound: 2}
	}
	dg, err := BodyDigest(cert)
	if err != nil {
		return nil, "", err
	}
	cert.BodyDigest = dg
	return cert, dg, nil
}

// BodyDigest computes the digest of the certificate body: the certificate
// marshaled with BodyDigest and Ledger cleared.
func BodyDigest(cert *Certificate) (string, error) {
	body := *cert
	body.BodyDigest = ""
	body.Ledger = nil
	raw, err := json.Marshal(&body)
	if err != nil {
		return "", err
	}
	return hnew().bytes(raw).sum().Hex(), nil
}

// writeCert attaches the sealed ledger binding and writes the certificate
// file. Registered as the obs -cert seam.
func writeCert(body any, ls *obs.LedgerState, path string) error {
	cert, ok := body.(*Certificate)
	if !ok {
		return fmt.Errorf("certificate body of unexpected type %T", body)
	}
	if ls != nil {
		cert.Ledger = &Binding{
			Records:   ls.Records,
			Batches:   ls.Batches,
			Head:      ls.Head,
			FinalRoot: ls.FinalRoot,
		}
	}
	raw, err := json.MarshalIndent(cert, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadCertificate loads and parses a certificate file.
func ReadCertificate(path string) (*Certificate, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cert Certificate
	if err := json.Unmarshal(raw, &cert); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if cert.Version != CertVersion {
		return nil, fmt.Errorf("%s: unsupported certificate version %d", path, cert.Version)
	}
	return &cert, nil
}
