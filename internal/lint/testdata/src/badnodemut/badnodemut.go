// Package badnodemut injects nodemut-rule violations. It is a lint fixture:
// the go tool never builds testdata, only sftlint's own loader does.
package badnodemut

import "compsynth/internal/circuit"

// Retype flips a gate type behind the edit journal's back.
func Retype(c *circuit.Circuit, id int) {
	c.Nodes[id].Type = circuit.And
}

// Rewire writes a fanin slot directly.
func Rewire(nd *circuit.Node, src int) {
	nd.Fanin[0] = src
}

// Extend grows a fanin list directly.
func Extend(c *circuit.Circuit, id, src int) {
	c.Nodes[id].Fanin = append(c.Nodes[id].Fanin, src)
}

// Truncate replaces the node slice wholesale.
func Truncate(c *circuit.Circuit) {
	c.Nodes = nil
}

// Retarget is clean: reads plus the journal-touching mutator.
func Retarget(c *circuit.Circuit, id, pin, src int) {
	if c.Nodes[id].Fanin[pin] != src {
		c.SetFanin(id, pin, src)
	}
}
