package ledger

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"compsynth/internal/obs"
)

// TestForgedRootWithValidChain covers the verifier branches behind the chain
// check: an attacker who re-chains the stream after forging a seal is caught
// by the Merkle recomputation itself.
func TestForgedRootWithValidChain(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterSize(&buf, 2)
	for i := 0; i < 4; i++ {
		w.Append(obs.Event{Type: "progress", Done: int64(i)})
	}
	w.Close()
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	lines = lines[:len(lines)-1]

	// Record layout: 0,1 events; 2 batch; 3,4 events; 5 batch; 6 final.
	var rec batchRecord
	if err := json.Unmarshal(lines[2], &rec); err != nil {
		t.Fatal(err)
	}
	forged := strings.Repeat("0", len(rec.Root))
	// Recompute a consistent chain for the forged seal: the prefix up to
	// record 1 is untouched, so its chain head is record 1's chain value.
	var prev eventRecord
	if err := json.Unmarshal(lines[1], &prev); err != nil {
		t.Fatal(err)
	}
	prevD, err := parseHex(prev.Chain)
	if err != nil {
		t.Fatal(err)
	}
	rec.Root = forged
	rec.Chain = chainDigest(prevD, rec.Seq, batchPayload(forged, rec.Batch, rec.First, rec.Last)).Hex()
	reline, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[2] = reline
	// Truncate after the forged seal so later chain links (now stale) don't
	// fire first; the root check must catch it on its own.
	mutated := append(bytes.Join(lines[:3], []byte("\n")), '\n')
	_, err = VerifyChain(mutated)
	if err == nil || !strings.Contains(err.Error(), "batch root mismatch") {
		t.Fatalf("got %v, want batch root mismatch", err)
	}
}

// TestMerkleRootProperties pins the fold: empty set, singleton, odd
// promotion, and sensitivity to leaf order.
func TestMerkleRootProperties(t *testing.T) {
	if merkleRoot(nil) != genesis() {
		t.Fatal("empty Merkle root is not the genesis digest")
	}
	l1 := hnew().word(1).sum()
	if merkleRoot([]H{l1}) != l1 {
		t.Fatal("singleton root is not the leaf")
	}
	l2, l3 := hnew().word(2).sum(), hnew().word(3).sum()
	abc := merkleRoot([]H{l1, l2, l3})
	acb := merkleRoot([]H{l1, l3, l2})
	if abc == acb {
		t.Fatal("Merkle root insensitive to leaf order")
	}
	// The fold must not corrupt the caller's slice.
	leaves := []H{l1, l2, l3}
	merkleRoot(leaves)
	if leaves[0] != l1 || leaves[1] != l2 || leaves[2] != l3 {
		t.Fatal("merkleRoot mutated its input")
	}
}

// TestParseHexRoundTrip pins the textual digest form.
func TestParseHexRoundTrip(t *testing.T) {
	d := hnew().word(42).sum()
	got, err := parseHex(d.Hex())
	if err != nil || got != d {
		t.Fatalf("round trip failed: %v %v", got, err)
	}
	if _, err := parseHex("abc"); err == nil {
		t.Fatal("short hex accepted")
	}
	if _, err := parseHex(strings.Repeat("zz", 32)); err == nil {
		t.Fatal("non-hex accepted")
	}
}
