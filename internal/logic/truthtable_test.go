package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConst(t *testing.T) {
	for n := 0; n <= 9; n++ {
		c0 := Const(n, false)
		c1 := Const(n, true)
		if c0.CountOnes() != 0 {
			t.Errorf("n=%d: const0 has %d ones", n, c0.CountOnes())
		}
		if c1.CountOnes() != c1.Size() {
			t.Errorf("n=%d: const1 has %d ones, want %d", n, c1.CountOnes(), c1.Size())
		}
		if !c0.Not().Equal(c1) {
			t.Errorf("n=%d: NOT const0 != const1", n)
		}
	}
}

func TestVarConvention(t *testing.T) {
	// Paper convention: x1 is the MSB. For n=3, x1 is 1 on minterms 4..7.
	v1 := Var(3, 1)
	want := []int{4, 5, 6, 7}
	got := v1.Onset()
	if len(got) != len(want) {
		t.Fatalf("x1 onset = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("x1 onset = %v, want %v", got, want)
		}
	}
	// x3 (LSB) is 1 on odd minterms.
	v3 := Var(3, 3)
	for m := 0; m < 8; m++ {
		if v3.Get(m) != (m%2 == 1) {
			t.Errorf("x3(%d) = %v", m, v3.Get(m))
		}
	}
}

func TestVarLargeN(t *testing.T) {
	// Exercise the multi-word path (n > 6).
	for n := 7; n <= 9; n++ {
		for i := 1; i <= n; i++ {
			v := Var(n, i)
			for m := 0; m < v.Size(); m++ {
				want := (m>>(n-i))&1 == 1
				if v.Get(m) != want {
					t.Fatalf("n=%d Var(%d).Get(%d) = %v, want %v", n, i, m, v.Get(m), want)
				}
			}
		}
	}
}

func TestOpsAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n++ {
		a, b := randomTT(rng, n), randomTT(rng, n)
		and, or, xor, not := a.And(b), a.Or(b), a.Xor(b), a.Not()
		for m := 0; m < a.Size(); m++ {
			av, bv := a.Get(m), b.Get(m)
			if and.Get(m) != (av && bv) {
				t.Fatalf("n=%d AND wrong at %d", n, m)
			}
			if or.Get(m) != (av || bv) {
				t.Fatalf("n=%d OR wrong at %d", n, m)
			}
			if xor.Get(m) != (av != bv) {
				t.Fatalf("n=%d XOR wrong at %d", n, m)
			}
			if not.Get(m) != !av {
				t.Fatalf("n=%d NOT wrong at %d", n, m)
			}
		}
	}
}

func randomTT(rng *rand.Rand, n int) TT {
	t := New(n)
	for m := 0; m < t.Size(); m++ {
		if rng.Intn(2) == 1 {
			t.Set(m, true)
		}
	}
	return t
}

func TestIntervalDetection(t *testing.T) {
	f := FromInterval(4, 5, 10)
	lo, hi, ok := f.IsInterval()
	if !ok || lo != 5 || hi != 10 {
		t.Fatalf("IsInterval = %d %d %v, want 5 10 true", lo, hi, ok)
	}
	g := FromMinterms(4, []int{1, 2, 4})
	if _, _, ok := g.IsInterval(); ok {
		t.Fatal("non-consecutive onset reported as interval")
	}
	if _, _, ok := Const(4, false).IsInterval(); ok {
		t.Fatal("constant 0 reported as interval")
	}
	lo, hi, ok = Const(4, true).IsInterval()
	if !ok || lo != 0 || hi != 15 {
		t.Fatalf("const1 interval = %d %d %v", lo, hi, ok)
	}
}

func TestCofactor(t *testing.T) {
	// f = x1 AND x3 over 3 vars.
	f := Var(3, 1).And(Var(3, 3))
	f1 := f.Cofactor(1, true) // should be x2' independent... = x3 restricted: vars (x2,x3) -> new x2 is old x3
	// After removing x1, remaining vars are old (x2,x3) renumbered (x1,x2).
	want := Var(2, 2)
	if !f1.Equal(want) {
		t.Fatalf("cofactor x1=1: got %s want %s", f1, want)
	}
	f0 := f.Cofactor(1, false)
	if !f0.IsConst(false) {
		t.Fatalf("cofactor x1=0 not const0: %s", f0)
	}
}

func TestCofactorShannon(t *testing.T) {
	// Shannon expansion sanity on random functions:
	// f = x_i f|x_i=1 + x_i' f|x_i=0 for all i.
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 7; n++ {
		f := randomTT(rng, n)
		for i := 1; i <= n; i++ {
			c1, c0 := f.Cofactor(i, true), f.Cofactor(i, false)
			for m := 0; m < f.Size(); m++ {
				bit := (m >> (n - i)) & 1
				pos := n - i
				lowMask := (1 << pos) - 1
				reduced := (m>>(pos+1))<<pos | m&lowMask
				var want bool
				if bit == 1 {
					want = c1.Get(reduced)
				} else {
					want = c0.Get(reduced)
				}
				if f.Get(m) != want {
					t.Fatalf("n=%d i=%d m=%d shannon mismatch", n, i, m)
				}
			}
		}
	}
}

func TestPermuteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 6; n++ {
		f := randomTT(rng, n)
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		if !f.Permute(id).Equal(f) {
			t.Fatalf("n=%d identity permutation changed function", n)
		}
	}
}

func TestPermuteSemantics(t *testing.T) {
	// f = x1 over 2 vars; swap -> should become x2.
	f := Var(2, 1)
	g := f.Permute([]int{1, 0})
	if !g.Equal(Var(2, 2)) {
		t.Fatalf("swap of x1 gave %s", g)
	}
	// Worked example from the paper (Sec. 3.1): f2 has onset
	// {1,5,6,9,10,14} over (y1..y4); permutation x1=y4, x2=y3, x3=y2, x4=y1
	// yields onset {5,...,10}.
	f2 := FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	perm := []int{3, 2, 1, 0} // new x_i is old y_{perm[i]+1}
	p := f2.Permute(perm)
	lo, hi, ok := p.IsInterval()
	if !ok || lo != 5 || hi != 10 {
		t.Fatalf("paper example: got interval %d..%d ok=%v, want 5..10", lo, hi, ok)
	}
}

func TestPermuteComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		f := randomTT(rng, n)
		p := rng.Perm(n)
		q := rng.Perm(n)
		// Applying p then q equals applying the composed permutation r,
		// where r[i] = p[q[i]].
		r := make([]int, n)
		for i := range r {
			r[i] = p[q[i]]
		}
		lhs := f.Permute(p).Permute(q)
		rhs := f.Permute(r)
		if !lhs.Equal(rhs) {
			t.Fatalf("n=%d composition mismatch", n)
		}
	}
}

func TestSupportAndShrink(t *testing.T) {
	// f = x2 XOR x4 over 5 vars: support {2,4}.
	f := Var(5, 2).Xor(Var(5, 4))
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 2 || sup[1] != 4 {
		t.Fatalf("support = %v", sup)
	}
	s, kept := f.Shrink()
	if s.Vars() != 2 || len(kept) != 2 {
		t.Fatalf("shrink -> %d vars kept %v", s.Vars(), kept)
	}
	if !s.Equal(Var(2, 1).Xor(Var(2, 2))) {
		t.Fatalf("shrunk function wrong: %s", s)
	}
}

func TestEval(t *testing.T) {
	f := Var(3, 1).And(Var(3, 3)) // x1 AND x3
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, false, true}, true},
		{[]bool{true, true, false}, false},
		{[]bool{false, true, true}, false},
	}
	for _, c := range cases {
		if f.Eval(c.in) != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.in, f.Eval(c.in), c.want)
		}
	}
}

// Property: De Morgan's law holds for random tables.
func TestQuickDeMorgan(t *testing.T) {
	f := func(aw, bw uint64) bool {
		a, b := New(6), New(6)
		a.words[0] = aw
		b.words[0] = bw
		return a.And(b).Not().Equal(a.Not().Or(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double complement is identity; XOR with self is 0.
func TestQuickInvolution(t *testing.T) {
	f := func(aw uint64) bool {
		a := New(6)
		a.words[0] = aw
		return a.Not().Not().Equal(a) && a.Xor(a).IsConst(false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: permutation preserves onset size.
func TestQuickPermutePreservesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(aw uint64) bool {
		a := New(6)
		a.words[0] = aw
		p := rng.Perm(6)
		return a.Permute(p).CountOnes() == a.CountOnes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOnsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= 8; n++ {
		f := randomTT(rng, n)
		g := FromMinterms(n, f.Onset())
		if !g.Equal(f) {
			t.Fatalf("n=%d onset round trip failed", n)
		}
	}
}

func TestFromIntervalClamps(t *testing.T) {
	f := FromInterval(3, -5, 100)
	if !f.IsConst(true) {
		t.Fatal("clamped full interval should be const1")
	}
	g := FromInterval(3, 5, 2)
	if !g.IsConst(false) {
		t.Fatal("empty interval should be const0")
	}
}

func TestShrinkNoSupport(t *testing.T) {
	// A constant function has empty support and shrinks to zero variables.
	s, kept := Const(4, true).Shrink()
	if s.Vars() != 0 || len(kept) != 0 {
		t.Fatalf("const shrink: vars=%d kept=%v", s.Vars(), kept)
	}
	if !s.Get(0) {
		t.Fatal("shrunk constant lost its value")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromInterval(4, 3, 9)
	b := a.Clone()
	b.Set(0, true)
	if a.Get(0) {
		t.Fatal("clone shares storage")
	}
}

func TestStringRendering(t *testing.T) {
	f := FromMinterms(2, []int{1, 3})
	if f.String() != "0101" {
		t.Fatalf("String = %q", f.String())
	}
}
