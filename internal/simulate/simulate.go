// Package simulate provides 64-way pattern-parallel logic simulation of
// combinational circuits, the workhorse behind function extraction, fault
// simulation and equivalence checking.
//
// Simulation runs on the circuit's frozen CSR view (circuit.Freeze): one
// linear sweep over level-ordered dense ids with flat adjacency, instead of
// a pointer chase over per-node heap objects. Results are identical to
// evaluating the mutable representation in topological order — dense order
// is itself a topological order — and the mutable circuit stays the source
// of truth: a Sim is bound to the circuit state at New/Reset time.
package simulate

import (
	"math/rand"
	"sync"

	"compsynth/internal/circuit"
)

// Sim holds per-node 64-pattern words for one circuit snapshot.
type Sim struct {
	C     *circuit.Circuit
	v     *circuit.CSR
	words []uint64 // indexed by dense id
	buf   []uint64
}

// New prepares a simulator for c (freezing c's current state).
func New(c *circuit.Circuit) *Sim {
	s := &Sim{}
	s.Reset(c)
	return s
}

// Reset rebinds the simulator to c's current state, reusing its buffers.
// All pattern words are cleared. This is what makes Sim poolable: the
// equivalence checker recycles simulators through a sync.Pool instead of
// allocating word arrays per call.
func (s *Sim) Reset(c *circuit.Circuit) {
	s.C = c
	s.v = c.Freeze()
	n := s.v.N()
	if cap(s.words) < n {
		s.words = make([]uint64, n)
	}
	s.words = s.words[:n]
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetInput assigns the 64-pattern word of primary input index j (input
// order, not node ID).
func (s *Sim) SetInput(j int, w uint64) {
	s.words[s.v.In[j]] = w
}

// Run evaluates all gates for the current input words.
func (s *Sim) Run() {
	v := s.v
	for d := 0; d < v.N(); d++ {
		k := v.Kind[d]
		if k == circuit.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range v.FaninOf(int32(d)) {
			s.buf = append(s.buf, s.words[f])
		}
		s.words[d] = k.EvalWords(s.buf)
	}
}

// Word returns the current 64-pattern word of sparse node id.
func (s *Sim) Word(id int) uint64 {
	return s.words[s.v.DenseOf[id]]
}

// Output returns the word of primary output index j.
func (s *Sim) Output(j int) uint64 {
	return s.words[s.v.Out[j]]
}

// Outputs copies all PO words into dst (allocating if nil).
func (s *Sim) Outputs(dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, len(s.v.Out))
	}
	for j, o := range s.v.Out {
		dst[j] = s.words[o]
	}
	return dst
}

// RandomPatterns fills the inputs with rng-driven words.
func (s *Sim) RandomPatterns(rng *rand.Rand) {
	for _, in := range s.v.In {
		s.words[in] = rng.Uint64()
	}
}

var simPool = sync.Pool{New: func() any { return new(Sim) }}

func acquire(c *circuit.Circuit) *Sim {
	s := simPool.Get().(*Sim)
	s.Reset(c)
	return s
}

func release(s *Sim) {
	s.C, s.v = nil, nil
	simPool.Put(s)
}

// rngPool recycles generators: a math/rand source is a ~5KB allocation,
// by far the largest per-call cost of the old equivalence checker. Every
// acquisition reseeds, so pooling cannot leak state between checks.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// EquivalentRandom checks functional equivalence of a and b (same PI and PO
// counts, positional correspondence) with rounds*64 random patterns followed
// by an exhaustive check when the input count is at most maxExhaustive.
// It returns false as soon as a differing pattern is found. The verdict is a
// pure function of (a, b, rounds, maxExhaustive, seed).
func EquivalentRandom(a, b *circuit.Circuit, rounds int, maxExhaustive int, seed int64) bool {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	n := len(a.Inputs)
	sa, sb := acquire(a), acquire(b)
	defer release(sa)
	defer release(sb)
	if n <= maxExhaustive && n < 30 {
		return equivalentExhaustive(sa, sb, n)
	}
	rng := rngPool.Get().(*rand.Rand)
	defer rngPool.Put(rng)
	rng.Seed(seed)
	for r := 0; r < rounds; r++ {
		for j := 0; j < n; j++ {
			w := rng.Uint64()
			sa.SetInput(j, w)
			sb.SetInput(j, w)
		}
		sa.Run()
		sb.Run()
		for j := range a.Outputs {
			if sa.Output(j) != sb.Output(j) {
				return false
			}
		}
	}
	return true
}

func equivalentExhaustive(sa, sb *Sim, n int) bool {
	total := uint64(1) << n
	for base := uint64(0); base < total; base += 64 {
		for j := 0; j < n; j++ {
			var w uint64
			for b := uint64(0); b < 64 && base+b < total; b++ {
				if (base+b)>>(uint(j))&1 == 1 {
					w |= 1 << b
				}
			}
			sa.SetInput(j, w)
			sb.SetInput(j, w)
		}
		sa.Run()
		sb.Run()
		for j := range sa.v.Out {
			m := mask64(total - base)
			if (sa.Output(j)^sb.Output(j))&m != 0 {
				return false
			}
		}
	}
	return true
}

func mask64(remaining uint64) uint64 {
	if remaining >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << remaining) - 1
}
