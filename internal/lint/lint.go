// Package lint is sftlint's engine: repo-specific static analysis rules
// that turn this repository's determinism and correctness conventions into
// machine-checked gates. It is built entirely on the standard library
// (go/parser, go/types, go/importer) per the no-external-deps design rule.
//
// Rules:
//
//	wallclock  - no time.Now/Since/Until and no global math/rand functions in
//	             deterministic pipeline packages; RNGs must be seeded
//	             explicitly (derive per-task seeds via par.SeedFor).
//	maporder   - no iteration over a map that accumulates ordered output or
//	             assigns order-dependent state, unless the keys are sorted
//	             immediately afterwards or the site carries a justified
//	             //lint:ordered comment.
//	metricname - obs.C/G/H registrations must use literal names of the form
//	             package.snake_case, with the first segment equal to the
//	             registering package's name.
//	cachekey   - no string-typed key instantiation of par.Cache/par.NewCache
//	             (protects the zero-alloc maphash.Comparable sharding).
//	nodemut    - outside internal/circuit, circuit nodes must be mutated via
//	             the journal-touching Circuit methods, never by direct field
//	             writes (protects the incremental-resynthesis contract); and
//	             functions annotated //lint:speculative (concurrent workers
//	             of the sharded resynthesis sweep) must not call mutating
//	             Circuit methods at all — mutation belongs to the serial
//	             commit phase.
//
// Sites that are deliberately order-independent are suppressed with a
// justification comment on the for statement (or the line above):
//
//	//lint:ordered <why iteration order cannot affect results>
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one rule violation. ID is stable across unrelated edits
// (rule + file + message hash for syntactic rules, rule + entry + sink hash
// for interprocedural ones) so the baseline survives line-number churn.
// Witness, present on interprocedural findings, is the call path from the
// seam to the violating statement.
type Diagnostic struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Rule    string   `json:"rule"`
	Msg     string   `json:"message"`
	ID      string   `json:"id"`
	Witness []string `json:"witness,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// Config selects rules and scopes.
type Config struct {
	// Rules restricts the run to the named rules; empty means all.
	Rules []string

	// DeterministicAll treats every analyzed package as a deterministic
	// pipeline package, regardless of import path. Used on the injected-
	// violation fixtures, whose paths live under testdata/.
	DeterministicAll bool

	// RelativeTo, when set, rewrites diagnostic file paths relative to this
	// directory (stable golden files and CI output).
	RelativeTo string
}

// AllRules lists every rule name, in reporting order. purity and sharedmut
// (and the transitive half of wallclock) are interprocedural: they run on a
// whole-module call graph rather than per file.
func AllRules() []string {
	return []string{"wallclock", "maporder", "metricname", "cachekey", "nodemut", "purity", "sharedmut"}
}

func (cfg Config) ruleEnabled(name string) bool {
	if len(cfg.Rules) == 0 {
		return true
	}
	for _, r := range cfg.Rules {
		if r == name {
			return true
		}
	}
	return false
}

// nondeterministicPkgs are module packages exempt from the wallclock rule:
// observability and offline tooling legitimately read the wall clock.
// Everything else in the module is pipeline code whose results must be a
// pure function of (inputs, options, seed).
var nondeterministicPkgs = []string{
	"internal/obs",     // wall-clock telemetry is its whole job
	"internal/metric",  // registry substrate under obs (snapshot formatting sorts its output)
	"internal/obsdiff", // offline report diffing
	"internal/lint",    // this analyzer
	"cmd/",             // command mains time and report their own runs
	"scripts/",
}

func (cfg Config) deterministic(pkgPath, modPath string) bool {
	if cfg.DeterministicAll {
		return true
	}
	rel, ok := strings.CutPrefix(pkgPath, modPath+"/")
	if !ok {
		return pkgPath == modPath // the root package is pipeline code
	}
	for _, p := range nondeterministicPkgs {
		if rel == strings.TrimSuffix(p, "/") || strings.HasPrefix(rel, p) {
			return false
		}
	}
	return true
}

// Analyze loads every directory and runs the configured rules, returning
// normalized (deduplicated, position-sorted) diagnostics. The syntactic
// rules run per package; the interprocedural rules (purity, sharedmut, the
// transitive half of wallclock) run once on a call graph spanning every
// loaded package, reporting only on the requested ones. The returned error
// reports load or type-check failures, which are distinct from findings: a
// package that does not compile cannot be certified.
func Analyze(dirs []string, cfg Config) ([]Diagnostic, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no packages to analyze")
	}
	l, err := NewLoader(dirs[0])
	if err != nil {
		return nil, err
	}
	var requested []*Package
	for _, dir := range dirs {
		p, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		requested = append(requested, p)
	}
	var diags []Diagnostic
	for _, p := range requested {
		diags = append(diags, analyzePackage(l, p, cfg)...)
	}
	diags = append(diags, analyzeInterproc(l, requested, cfg)...)
	for i := range diags {
		if cfg.RelativeTo != "" {
			if rel, ok := strings.CutPrefix(diags[i].File, cfg.RelativeTo+"/"); ok {
				diags[i].File = rel
			}
			diags[i].Witness = relativizeWitness(diags[i].Witness, cfg.RelativeTo)
		}
		if diags[i].ID == "" {
			// Syntactic rules: rule + file + message hash. Line-independent,
			// so reformatting does not invalidate the baseline.
			diags[i].ID = fmt.Sprintf("%s/%s/%08x", diags[i].Rule, diags[i].File, fnv32a(diags[i].Msg))
		}
	}
	return Normalize(diags), nil
}

func analyzePackage(l *Loader, p *Package, cfg Config) []Diagnostic {
	r := &runner{l: l, p: p, cfg: cfg}
	if cfg.ruleEnabled("wallclock") && cfg.deterministic(p.Path, l.ModPath) {
		r.wallclock()
	}
	if cfg.ruleEnabled("maporder") && cfg.deterministic(p.Path, l.ModPath) {
		r.maporder()
	}
	if cfg.ruleEnabled("metricname") {
		r.metricname()
	}
	if cfg.ruleEnabled("cachekey") {
		r.cachekey()
	}
	if cfg.ruleEnabled("nodemut") && p.Path != l.ModPath+"/internal/circuit" {
		r.nodemut()
	}
	return r.diags
}

// runner accumulates one package's diagnostics.
type runner struct {
	l     *Loader
	p     *Package
	cfg   Config
	diags []Diagnostic
}

func (r *runner) report(pos token.Pos, rule, format string, args ...any) {
	position := r.p.Fset.Position(pos)
	r.diags = append(r.diags, Diagnostic{
		File: position.Filename,
		Line: position.Line,
		Col:  position.Column,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Normalize sorts diagnostics by (file, line, col, rule, message) and drops
// exact duplicates, making every output format byte-stable across runs. Two
// call paths reaching the same sink through different seams are distinct
// findings (different IDs and witnesses) and both survive.
func Normalize(ds []Diagnostic) []Diagnostic {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		if ds[i].Rule != ds[j].Rule {
			return ds[i].Rule < ds[j].Rule
		}
		if ds[i].Msg != ds[j].Msg {
			return ds[i].Msg < ds[j].Msg
		}
		return ds[i].ID < ds[j].ID
	})
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d.File == out[len(out)-1].File && d.Line == out[len(out)-1].Line &&
			d.Col == out[len(out)-1].Col && d.Rule == out[len(out)-1].Rule &&
			d.Msg == out[len(out)-1].Msg && d.ID == out[len(out)-1].ID {
			continue
		}
		out = append(out, d)
	}
	return out
}

// FormatText renders diagnostics one per line, witnesses indented below.
func FormatText(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
		for _, w := range d.Witness {
			b.WriteString("    ")
			b.WriteString(w)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatJSON renders diagnostics as a JSON array (obsdiff-style tooling
// input). The output is deterministic: diagnostics arrive sorted.
func FormatJSON(ds []Diagnostic) (string, error) {
	if ds == nil {
		ds = []Diagnostic{}
	}
	out, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// metricNameRe is the registry naming convention, package.snake_case. It
// also guarantees a clean Prometheus rendering (PromName only has to turn
// dots into underscores, never mangle). This is the single home of the
// convention; internal/obs's lint test invokes this rule.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// MetricNamePattern exposes the naming convention for tests and docs.
func MetricNamePattern() string { return metricNameRe.String() }
