// Command atpg runs PODEM on every collapsed stuck-at fault of a .bench
// netlist and classifies the circuit's faults as testable, redundant or
// aborted.
//
// Usage:
//
//	atpg [-backtracks n] [-filter n] [-tests]
//	     [-trace] [-metrics-out report.json] [-v] [-listen addr]
//	     [-events file] circuit.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"compsynth"
	"compsynth/internal/atpg"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	_ "compsynth/internal/ledger" // wires the -events ledger and -cert certifier
	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // wires the -listen telemetry server
)

func main() {
	backtracks := flag.Int("backtracks", 20000, "PODEM backtrack limit")
	filter := flag.Int("filter", 2048, "random patterns to drop easy faults first (0 = none)")
	showTests := flag.Bool("tests", false, "print a test per hard testable fault")
	oflags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: atpg [-backtracks n] circuit.bench")
		os.Exit(2)
	}
	run := oflags.Start("atpg")
	lg := run.Log
	c, err := compsynth.LoadBench(flag.Arg(0))
	if err != nil {
		os.Exit(run.Fail(err))
	}
	run.CircuitBefore(c)
	if err := run.CheckCircuit("input", c); err != nil {
		os.Exit(run.Fail(err))
	}
	run.SetCertOptions(struct {
		Backtracks int `json:"backtracks"`
		Filter     int `json:"filter"`
	}{*backtracks, *filter})
	fl := faults.Collapse(c)
	lg.Printf("%s: %v, %d collapsed faults", c.Name, c.Stats(), len(fl))

	hard := fl
	easy := 0
	if *filter > 0 {
		res := faultsim.Campaign(c, fl, faultsim.CampaignOptions{
			Patterns: *filter, Seed: 7, Workers: oflags.Workers, Tracer: run.Tracer,
		})
		hard = res.Remaining
		easy = res.Detected
		lg.Verbosef("random filter: %d of %d faults detected, %d left for PODEM",
			easy, len(fl), len(hard))
	}
	psp := run.Tracer.StartSpan("atpg.podem")
	testable, redundant, aborted := easy, 0, 0
	for _, f := range hard {
		r := atpg.Generate(c, f, atpg.Options{BacktrackLimit: *backtracks, Tracer: run.Tracer})
		switch r.Status {
		case atpg.Testable:
			testable++
			if *showTests {
				lg.Printf("  %v: test %v (%d backtracks)", f, asBits(r.Test), r.Backtracks)
			}
		case atpg.Redundant:
			redundant++
			lg.Printf("  %v: redundant", f)
		case atpg.Aborted:
			aborted++
			lg.Printf("  %v: aborted after %d backtracks", f, r.Backtracks)
		}
	}
	psp.End()
	lg.Printf("testable: %d (random: %d, podem: %d), redundant: %d, aborted: %d",
		testable, easy, testable-easy, redundant, aborted)
	if redundant == 0 && aborted == 0 {
		lg.Printf("circuit is fully testable for single stuck-at faults")
	}
	run.Report.AddResult("classification", map[string]int{
		"testable": testable, "random": easy, "podem": testable - easy,
		"redundant": redundant, "aborted": aborted,
	})
	if err := run.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "atpg: %v\n", err)
		os.Exit(1)
	}
}

func asBits(t []bool) string {
	b := make([]byte, len(t))
	for i, v := range t {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
