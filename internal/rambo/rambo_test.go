package rambo

import (
	"fmt"
	"math/rand"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/logic"
	"compsynth/internal/simulate"
)

func randomTT(rng *rand.Rand, n int) logic.TT {
	t := logic.New(n)
	for m := 0; m < t.Size(); m++ {
		if rng.Intn(2) == 1 {
			t.Set(m, true)
		}
	}
	return t
}

func TestMinimizeCoversExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 60; trial++ {
			tt := randomTT(rng, n)
			cubes := Minimize(tt)
			if !SOPTable(n, cubes).Equal(tt) {
				t.Fatalf("n=%d: cover wrong for %s", n, tt)
			}
		}
	}
}

func TestMinimizeKnownFunctions(t *testing.T) {
	// Majority of 3: x1x2 + x1x3 + x2x3 (3 primes, all essential).
	maj := logic.FromMinterms(3, []int{3, 5, 6, 7})
	cubes := Minimize(maj)
	if len(cubes) != 3 {
		t.Fatalf("majority cover has %d cubes, want 3", len(cubes))
	}
	for _, c := range cubes {
		if c.Literals() != 2 {
			t.Fatalf("majority cube with %d literals", c.Literals())
		}
	}
	// Constant 1: single empty cube.
	one := Minimize(logic.Const(3, true))
	if len(one) != 1 || one[0].Mask != 0 {
		t.Fatalf("const1 cover: %v", one)
	}
	// Constant 0: empty cover.
	if c := Minimize(logic.Const(3, false)); c != nil {
		t.Fatalf("const0 cover: %v", c)
	}
	// Single minterm: one full cube.
	m5 := Minimize(logic.FromMinterms(3, []int{5}))
	if len(m5) != 1 || m5[0].Mask != 7 || m5[0].Value != 5 {
		t.Fatalf("minterm cover: %v", m5)
	}
}

func TestBuildFactoredCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 40; trial++ {
			tt := randomTT(rng, n)
			cubes := Minimize(tt)
			equiv2, kp := FactoredCost(n, cubes)
			if equiv2 < 0 {
				t.Fatal("negative cost")
			}
			for v, k := range kp {
				if k < 0 {
					t.Fatalf("negative path count for var %d", v)
				}
			}
			// Functional check via a scratch build.
			c := circuit.New("scratch")
			inputs := make([]int, n)
			for v := range inputs {
				inputs[v] = c.AddInput(fmt.Sprintf("y%d", v))
			}
			out := BuildFactored(c, n, cubes, inputs, "t_")
			c.MarkOutput(out)
			for m := 0; m < 1<<n; m++ {
				in := make([]bool, n)
				for v := 0; v < n; v++ {
					in[v] = m&(1<<(n-1-v)) != 0
				}
				if c.Eval(in)[0] != tt.Get(m) {
					t.Fatalf("n=%d factored form wrong at %d (tt %s)", n, m, tt)
				}
			}
		}
	}
}

func TestOptimizeReducesGatesOnSOP(t *testing.T) {
	// A redundant SOP (non-minimal) collapses under minimization.
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
na = NOT(a)
t1 = AND(a, b)
t2 = AND(na, b)
t3 = AND(b, c)
f = OR(t1, t2, t3)
`
	c, err := bench.ParseString(src, "sop")
	if err != nil {
		t.Fatal(err)
	}
	// f = b (t1+t2 = b, absorbing t3).
	res, err := Optimize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesAfter != 0 {
		t.Fatalf("expected collapse to wire, gates=%d", res.GatesAfter)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 4, 6, 1) {
		t.Fatal("function changed")
	}
}

func TestOptimizePreservesFunction(t *testing.T) {
	for _, b := range gen.SmallSuite() {
		c := b.Build()
		res, err := Optimize(c, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.GatesAfter > res.GatesBefore {
			t.Fatalf("%s: gates increased %d -> %d", b.Name, res.GatesBefore, res.GatesAfter)
		}
		if !simulate.EquivalentRandom(c, res.Circuit, 32, 12, 2) {
			t.Fatalf("%s: function changed", b.Name)
		}
	}
}

func TestOptimizeC17(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	res, err := Optimize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 4, 6, 1) {
		t.Fatal("c17 function changed")
	}
}
