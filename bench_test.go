// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// BenchmarkTableN runs the same code path as `cmd/tables -table N`, at a
// reduced scale so `go test -bench .` completes on a laptop; run cmd/tables
// for full-scale numbers (recorded in EXPERIMENTS.md).
package compsynth

import (
	"fmt"
	"testing"

	"compsynth/internal/circuit"
	"compsynth/internal/compare"
	"compsynth/internal/delay"
	"compsynth/internal/exper"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	"compsynth/internal/gen"
	"compsynth/internal/logic"
	"compsynth/internal/obs"
	"compsynth/internal/paths"
	"compsynth/internal/rambo"
	"compsynth/internal/resynth"
	"compsynth/internal/techmap"
)

func benchConfig() exper.Config {
	cfg := exper.QuickConfig()
	cfg.Verify = false // benchmarked separately
	return cfg
}

var suiteCache *exper.Suite

func benchSuite(b *testing.B) *exper.Suite {
	b.Helper()
	if suiteCache == nil {
		items, err := exper.PrepareSuite(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		suiteCache = exper.NewSuite(benchConfig(), items)
	}
	return suiteCache
}

func BenchmarkTable2Procedure2(b *testing.B) {
	suite := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table2(suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable2(rows))
		}
	}
}

func BenchmarkTable3Rambo(b *testing.B) {
	suite := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table3(suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable3(rows))
		}
	}
}

func BenchmarkTable4Techmap(b *testing.B) {
	suite := benchSuite(b)
	for i := 0; i < b.N; i++ {
		pa, pb, err := exper.Table4(suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable4(pa, pb))
		}
	}
}

func BenchmarkTable5Procedure3(b *testing.B) {
	suite := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table5(suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable5(rows))
		}
	}
}

func BenchmarkTable6StuckAt(b *testing.B) {
	suite := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table6(suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable6(rows))
		}
	}
}

func BenchmarkTable7PathDelay(b *testing.B) {
	suite := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table7(suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable7(rows))
		}
	}
}

// Figure benches: construction and verification of the paper's figures.

func BenchmarkFigure1Unit(b *testing.B) {
	s := compare.Spec{N: 4, Perm: []int{0, 1, 2, 3}, L: 5, U: 10}
	for i := 0; i < b.N; i++ {
		c := s.BuildStandalone("f1", compare.BuildOptions{Merge: false})
		if c.Equiv2Count() != s.GateCost() {
			b.Fatal("cost model mismatch")
		}
	}
}

func BenchmarkFigure2BlockConstruction(b *testing.B) {
	// All >=L / <=U blocks for n=6.
	for i := 0; i < b.N; i++ {
		for l := 0; l < 64; l += 7 {
			s := compare.Spec{N: 6, Perm: []int{0, 1, 2, 3, 4, 5}, L: l, U: 63}
			s.BuildStandalone("g", compare.BuildOptions{Merge: false})
		}
	}
}

func BenchmarkFigure6TestSet(b *testing.B) {
	s := compare.Spec{N: 4, Perm: []int{0, 1, 2, 3}, L: 11, U: 12}
	c := s.BuildStandalone("f6", compare.BuildOptions{Merge: true})
	ps := delay.EnumeratePaths(c, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ut := range s.TestSet() {
			ok := false
			for _, p := range ps {
				if delay.PathRobust(c, p.Nodes, p.Pins, ut.V1, ut.V2) {
					ok = true
					break
				}
			}
			if !ok {
				b.Fatal("non-robust test")
			}
		}
	}
}

// Ablation benches (DESIGN.md section 5).

func BenchmarkAblationKSweep(b *testing.B) {
	c := gen.SmallSuite()[0].Build()
	for _, k := range []int{4, 5, 6, 7} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := resynth.DefaultOptions()
				opt.K = k
				opt.Verify = false
				res, err := resynth.Optimize(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("K=%d: %v", k, res)
				}
			}
		})
	}
}

func BenchmarkAblationIdentify(b *testing.B) {
	// Exact recursive identification vs the paper's 200-permutation
	// sampling, on the set of all 4-variable interval functions.
	var fns []logic.TT
	for l := 0; l < 16; l++ {
		for u := l; u < 16; u++ {
			fns = append(fns, logic.FromInterval(4, l, u).Permute([]int{2, 0, 3, 1}))
		}
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range fns {
				if _, ok := compare.IdentifyBest(f); !ok {
					b.Fatal("missed interval")
				}
			}
		}
	})
	b.Run("sampling200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range fns {
				compare.IdentifySampling(f, 200, nil)
			}
		}
	})
}

func BenchmarkAblationCombined(b *testing.B) {
	c := gen.SmallSuite()[1].Build()
	for _, obj := range []resynth.Objective{resynth.MinGates, resynth.MinPaths, resynth.Combined} {
		b.Run(obj.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := resynth.DefaultOptions()
				opt.Objective = obj
				opt.Verify = false
				res, err := resynth.Optimize(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%v: %v", obj, res)
				}
			}
		})
	}
}

func BenchmarkAblationComplement(b *testing.B) {
	// Offset (complemented-output) units on vs off: MaxSpecs=1 with
	// sampling disabled still uses IdentifyBest; emulate "off" by counting
	// how many identifications require the complement.
	c := gen.SmallSuite()[2].Build()
	for i := 0; i < b.N; i++ {
		opt := resynth.DefaultOptions()
		opt.Verify = false
		res, err := resynth.Optimize(c, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("with complements: %v", res)
		}
	}
}

// BenchmarkObservabilityOverhead measures what the internal/obs
// instrumentation costs resynthesis: "off" is the production default (nil
// tracer, counters still ticking), "on" records the full span tree with
// allocation tracking. The "off" case must stay within noise of the
// pre-instrumentation baseline.
func BenchmarkObservabilityOverhead(b *testing.B) {
	c := gen.SmallSuite()[0].Build()
	run := func(b *testing.B, tracer func() *obs.Tracer) {
		for i := 0; i < b.N; i++ {
			opt := resynth.DefaultOptions()
			opt.Verify = false
			opt.Tracer = tracer() // fresh per run, as in the tools
			if _, err := resynth.Optimize(c, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, func() *obs.Tracer { return nil }) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewTracer) })
}

// Micro-benchmarks of the substrates.

func BenchmarkPathCountProcedure1(b *testing.B) {
	c := gen.Suite(0.3)[3].Build() // rs13207 analog
	for _, v := range []struct {
		name  string
		count func(*circuit.Circuit) (uint64, error)
	}{{"csr", paths.Count}, {"map", paths.RefCount}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			c.Freeze()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.count(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFaultSimulation(b *testing.B) {
	c := gen.Suite(0.2)[0].Build()
	fl := faults.Collapse(c)
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		c.Freeze()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			faultsim.RunRandom(c, fl, 4096, int64(i))
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			faultsim.RefCampaign(c, fl, 4096, int64(i))
		}
	})
}

func BenchmarkRobustPDFCampaign(b *testing.B) {
	c := gen.Suite(0.2)[0].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delay.RunRandom(c, delay.CampaignOptions{MaxPairs: 1000, Seed: int64(i)})
	}
}

func BenchmarkTechnologyMapping(b *testing.B) {
	c := gen.Suite(0.3)[0].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		techmap.Map(c)
	}
}

func BenchmarkQuineMcCluskey(b *testing.B) {
	var fns []logic.TT
	for seedOffset := 0; seedOffset < 16; seedOffset++ {
		f := logic.New(6)
		for m := 0; m < 64; m += seedOffset + 2 {
			f.Set(m, true)
		}
		fns = append(fns, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fns {
			rambo.Minimize(f)
		}
	}
}

func BenchmarkAblationExtensions(b *testing.B) {
	// Section 6 extensions: plain Procedure 2 vs +multi-unit vs +SDC.
	c := gen.SmallSuite()[0].Build()
	variants := []struct {
		name string
		mod  func(*resynth.Options)
	}{
		{"plain", func(*resynth.Options) {}},
		{"multi3", func(o *resynth.Options) { o.MaxUnits = 3 }},
		{"sdc", func(o *resynth.Options) { o.UseSDC = true }},
		{"multi3+sdc", func(o *resynth.Options) { o.MaxUnits = 3; o.UseSDC = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := resynth.DefaultOptions()
				opt.Verify = false
				v.mod(&opt)
				res, err := resynth.Optimize(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: %v", v.name, res)
				}
			}
		})
	}
}
