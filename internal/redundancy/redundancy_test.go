package redundancy

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/gen"
	"compsynth/internal/simulate"
)

func TestRemoveKnownRedundancy(t *testing.T) {
	// f = a OR (a AND b): collapses to f = a after redundancy removal.
	c := circuit.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, g1)
	c.MarkOutput(g2)
	res, err := Remove(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed == 0 {
		t.Fatal("no redundancy removed")
	}
	if res.GatesAfter != 0 {
		t.Fatalf("gates after = %d, want 0 (f = a)", res.GatesAfter)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 4, 6, 1) {
		t.Fatal("function changed")
	}
}

func TestRemoveOnIrredundantCircuit(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	res, err := Remove(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 {
		t.Fatalf("c17 is irredundant; removed %d", res.Removed)
	}
	if res.GatesAfter != res.GatesBefore {
		t.Fatalf("c17 size changed %d -> %d", res.GatesBefore, res.GatesAfter)
	}
}

func TestRemoveProducesIrredundant(t *testing.T) {
	for _, bn := range gen.SmallSuite()[:2] {
		c := bn.Build()
		res, err := Remove(c, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", bn.Name, err)
		}
		if !simulate.EquivalentRandom(c, res.Circuit, 32, 12, 3) {
			t.Fatalf("%s: function changed", bn.Name)
		}
		red, aborted := CheckIrredundant(res.Circuit, 20000)
		if len(red) != 0 {
			t.Fatalf("%s: still redundant: %v", bn.Name, red)
		}
		if len(aborted) != 0 {
			t.Logf("%s: %d aborted faults (acceptable)", bn.Name, len(aborted))
		}
	}
}

func TestRemoveChainedRedundancies(t *testing.T) {
	// Stack two interacting redundancies: f = a OR (a AND b) OR (a AND b).
	c := circuit.New("red2")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.And, "g2", a, b)
	g3 := c.AddGate(circuit.Or, "g3", a, g1, g2)
	c.MarkOutput(g3)
	res, err := Remove(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesAfter != 0 {
		t.Fatalf("gates after = %d, want 0", res.GatesAfter)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 4, 6, 1) {
		t.Fatal("function changed")
	}
}

func TestRemoveDoesNotMutateInput(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	before := bench.String(c)
	if _, err := Remove(c, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if bench.String(c) != before {
		t.Fatal("input circuit mutated")
	}
}

func TestRemoveRedundantInverterPin(t *testing.T) {
	// f = AND(a, NOT(AND(a, b)), b) is constant 0 (a & !(ab) & b = 0);
	// redundancy removal must collapse the cone to a constant.
	c := circuit.New("inv")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	n1 := c.AddGate(circuit.Not, "n1", g1)
	g2 := c.AddGate(circuit.And, "g2", a, n1, b)
	o := c.AddGate(circuit.Or, "o", g2, a)
	c.MarkOutput(o)
	res, err := Remove(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.EquivalentRandom(c, res.Circuit, 4, 6, 1) {
		t.Fatal("function changed")
	}
	if res.GatesAfter != 0 {
		t.Fatalf("expected collapse to f=a, gates=%d", res.GatesAfter)
	}
}

func TestCheckIrredundantReportsRedundancy(t *testing.T) {
	c := circuit.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, g1)
	c.MarkOutput(g2)
	red, _ := CheckIrredundant(c, 20000)
	if len(red) == 0 {
		t.Fatal("known redundancy not reported")
	}
}
