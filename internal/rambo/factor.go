package rambo

import (
	"fmt"

	"compsynth/internal/circuit"
)

// Algebraic factoring: a minimized cover F is realized as
// F = l * (F/l) + R, recursing on the quotient and remainder, dividing by
// the most frequent literal. Single cubes become (multi-input) AND gates.

// builder constructs a factored form into a host circuit.
type builder struct {
	c      *circuit.Circuit
	n      int
	inputs []int
	inv    map[int]int
	prefix string
	serial int
}

// BuildFactored appends the factored realization of the cover to c, using
// inputs[v] as variable v (0-based), and returns the output node ID.
func BuildFactored(c *circuit.Circuit, n int, cubes []Cube, inputs []int, prefix string) int {
	if len(inputs) != n {
		panic("rambo: input count mismatch")
	}
	b := &builder{c: c, n: n, inputs: inputs, inv: map[int]int{}, prefix: prefix}
	return b.rec(cubes)
}

func (b *builder) name(tag string) string {
	b.serial++
	return fmt.Sprintf("%s%s%d", b.prefix, tag, b.serial)
}

func (b *builder) literal(v int, pos bool) int {
	in := b.inputs[v]
	if pos {
		return in
	}
	if g, ok := b.inv[in]; ok {
		return g
	}
	g := b.c.AddGate(circuit.Not, b.name("n"), in)
	b.inv[in] = g
	return g
}

func (b *builder) cube(cu Cube) int {
	var lits []int
	for v := 0; v < b.n; v++ {
		bit := 1 << (b.n - 1 - v)
		if cu.Mask&bit != 0 {
			lits = append(lits, b.literal(v, cu.Value&bit != 0))
		}
	}
	switch len(lits) {
	case 0:
		return b.c.AddGate(circuit.Const1, b.name("k"))
	case 1:
		return lits[0]
	default:
		return b.c.AddGate(circuit.And, b.name("a"), lits...)
	}
}

func (b *builder) rec(cubes []Cube) int {
	switch len(cubes) {
	case 0:
		return b.c.AddGate(circuit.Const0, b.name("k"))
	case 1:
		return b.cube(cubes[0])
	}
	// Most frequent literal.
	bestV, bestPos, bestCount := -1, false, 1
	for v := 0; v < b.n; v++ {
		for _, pos := range []bool{true, false} {
			count := 0
			for _, cu := range cubes {
				if cu.HasLiteral(b.n, v, pos) {
					count++
				}
			}
			if count > bestCount {
				bestV, bestPos, bestCount = v, pos, count
			}
		}
	}
	if bestV < 0 {
		// No shared literal: plain SOP.
		terms := make([]int, len(cubes))
		for i, cu := range cubes {
			terms[i] = b.cube(cu)
		}
		return b.c.AddGate(circuit.Or, b.name("o"), terms...)
	}
	var quotient, rest []Cube
	for _, cu := range cubes {
		if cu.HasLiteral(b.n, bestV, bestPos) {
			quotient = append(quotient, cu.DropVar(b.n, bestV))
		} else {
			rest = append(rest, cu)
		}
	}
	lit := b.literal(bestV, bestPos)
	q := b.rec(quotient)
	var t int
	if b.c.Nodes[q].Type == circuit.Const1 {
		t = lit
	} else {
		t = b.c.AddGate(circuit.And, b.name("a"), lit, q)
	}
	if len(rest) == 0 {
		return t
	}
	r := b.rec(rest)
	return b.c.AddGate(circuit.Or, b.name("o"), t, r)
}

// FactoredCost measures the equivalent-2-input gate count and per-variable
// path counts of the factored realization by building it into a scratch
// circuit.
func FactoredCost(n int, cubes []Cube) (equiv2 int, kp []int) {
	c := circuit.New("scratch")
	inputs := make([]int, n)
	for v := range inputs {
		inputs[v] = c.AddInput(fmt.Sprintf("y%d", v))
	}
	out := BuildFactored(c, n, cubes, inputs, "f_")
	c.MarkOutput(out)
	c.SweepDead()
	kp = make([]int, n)
	poUses := map[int]int{}
	for _, o := range c.Outputs {
		poUses[o]++
	}
	memo := map[int]int{}
	var count func(id int) int
	count = func(id int) int {
		if v, ok := memo[id]; ok {
			return v
		}
		total := poUses[id]
		for _, f := range c.Fanouts(id) {
			total += count(f)
		}
		memo[id] = total
		return total
	}
	for v, in := range inputs {
		kp[v] = count(in)
	}
	return c.Equiv2Count(), kp
}
