// Package bench reads and writes combinational netlists in the ISCAS-89
// ".bench" format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	u = NAND(a, b)
//	f = NOT(u)
//
// Supported gate keywords: AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR, XNOR,
// CONST0/GND, CONST1/VDD. DFFs are rejected: the paper operates on
// fully-scanned (combinational) circuits, so sequential elements must have
// been cut into PI/PO pairs before this parser sees the netlist.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"compsynth/internal/circuit"
)

var gateFromKeyword = map[string]circuit.GateType{
	"AND": circuit.And, "OR": circuit.Or, "NAND": circuit.Nand,
	"NOR": circuit.Nor, "NOT": circuit.Not, "INV": circuit.Not,
	"BUF": circuit.Buf, "BUFF": circuit.Buf,
	"XOR": circuit.Xor, "XNOR": circuit.Xnor,
	"CONST0": circuit.Const0, "GND": circuit.Const0,
	"CONST1": circuit.Const1, "VDD": circuit.Const1,
}

var keywordFromGate = map[circuit.GateType]string{
	circuit.And: "AND", circuit.Or: "OR", circuit.Nand: "NAND",
	circuit.Nor: "NOR", circuit.Not: "NOT", circuit.Buf: "BUFF",
	circuit.Xor: "XOR", circuit.Xnor: "XNOR",
	circuit.Const0: "CONST0", circuit.Const1: "CONST1",
}

// Parse reads a .bench netlist.
func Parse(r io.Reader, name string) (*circuit.Circuit, error) {
	type protoGate struct {
		out, kw string
		ins     []string
		line    int
	}
	var (
		inputs, outputs []string
		gates           []protoGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench:%d: %v", lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(up, "OUTPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench:%d: %v", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench:%d: expected assignment: %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.IndexByte(rhs, '(')
			cp := strings.LastIndexByte(rhs, ')')
			if op < 0 || cp < op {
				return nil, fmt.Errorf("bench:%d: malformed gate: %q", lineNo, line)
			}
			kw := strings.ToUpper(strings.TrimSpace(rhs[:op]))
			if kw == "DFF" {
				return nil, fmt.Errorf("bench:%d: sequential element DFF; scan the circuit first", lineNo)
			}
			var ins []string
			for _, f := range strings.Split(rhs[op+1:cp], ",") {
				f = strings.TrimSpace(f)
				if f != "" {
					ins = append(ins, f)
				}
			}
			gates = append(gates, protoGate{out: out, kw: kw, ins: ins, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	c := circuit.New(name)
	for _, in := range inputs {
		if c.NodeByName(in) >= 0 {
			return nil, fmt.Errorf("bench: duplicate input %q", in)
		}
		c.AddInput(in)
	}
	// Gates may be declared in any order; resolve iteratively.
	pending := gates
	for len(pending) > 0 {
		progress := false
		var next []protoGate
		for _, g := range pending {
			ready := true
			ids := make([]int, len(g.ins))
			for i, in := range g.ins {
				id := c.NodeByName(in)
				if id < 0 {
					ready = false
					break
				}
				ids[i] = id
			}
			if !ready {
				next = append(next, g)
				continue
			}
			gt, ok := gateFromKeyword[g.kw]
			if !ok {
				return nil, fmt.Errorf("bench:%d: unknown gate type %q", g.line, g.kw)
			}
			// Arity errors must surface as parse errors, not as panics out
			// of AddGate (found by FuzzParseBench: "g = AND()" crashed).
			switch gt {
			case circuit.Const0, circuit.Const1:
				if len(ids) != 0 {
					return nil, fmt.Errorf("bench:%d: %s takes no operands, got %d", g.line, g.kw, len(ids))
				}
			case circuit.Buf, circuit.Not:
				if len(ids) != 1 {
					return nil, fmt.Errorf("bench:%d: %s takes exactly 1 operand, got %d", g.line, g.kw, len(ids))
				}
			default:
				if len(ids) < 1 {
					return nil, fmt.Errorf("bench:%d: %s needs at least 1 operand", g.line, g.kw)
				}
			}
			if c.NodeByName(g.out) >= 0 {
				return nil, fmt.Errorf("bench:%d: signal %q driven twice", g.line, g.out)
			}
			c.AddGate(gt, g.out, ids...)
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("bench: unresolved signals (cycle or undeclared): %q", next[0].out)
		}
		pending = next
	}
	for _, out := range outputs {
		id := c.NodeByName(out)
		if id < 0 {
			return nil, fmt.Errorf("bench: output %q is undriven", out)
		}
		c.MarkOutput(id)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bench: invalid circuit: %v", err)
	}
	return c, nil
}

func parenArg(line string) (string, error) {
	op := strings.IndexByte(line, '(')
	cp := strings.LastIndexByte(line, ')')
	if op < 0 || cp < op {
		return "", fmt.Errorf("malformed declaration: %q", line)
	}
	arg := strings.TrimSpace(line[op+1 : cp])
	if arg == "" {
		return "", fmt.Errorf("empty name: %q", line)
	}
	return arg, nil
}

// ParseString is Parse on a string.
func ParseString(s, name string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

// Write emits c in .bench format. Node declaration order follows topological
// order, so the output always parses in one pass.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates (%d equiv-2-input)\n",
		st.Inputs, st.Outputs, st.Gates, st.Equiv2)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nodes[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[id].Name)
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		kw, ok := keywordFromGate[nd.Type]
		if !ok {
			return fmt.Errorf("bench: cannot serialize node type %v", nd.Type)
		}
		names := make([]string, len(nd.Fanin))
		for i, f := range nd.Fanin {
			names[i] = c.Nodes[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nd.Name, kw, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// String renders c in .bench format.
func String(c *circuit.Circuit) string {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return "# error: " + err.Error()
	}
	return b.String()
}

// SortedOutputNames is a test helper returning PO names in sorted order.
func SortedOutputNames(c *circuit.Circuit) []string {
	names := make([]string, len(c.Outputs))
	for i, o := range c.Outputs {
		names[i] = c.Nodes[o].Name
	}
	sort.Strings(names)
	return names
}
