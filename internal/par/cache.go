package par

import (
	"hash/maphash"
	"sync"
)

const cacheShards = 32

// Cache is a sharded, concurrency-safe memoization map over any comparable
// key type. It is intended for caching pure functions: concurrent writers
// racing on the same key must be storing equal values, and whichever lands
// is kept. That keeps lookups deterministic without cross-shard
// coordination.
//
// Keys are hashed with maphash.Comparable, so fixed-size struct keys (e.g.
// logic.Key, digest.D) shard without allocating — the reason the hot
// identification caches stopped keying on strings.
type Cache[K comparable, V any] struct {
	shards [cacheShards]struct {
		mu sync.RWMutex
		m  map[K]V
	}
}

var cacheHashSeed = maphash.MakeSeed()

// NewCache returns an empty cache.
func NewCache[K comparable, V any]() *Cache[K, V] {
	c := &Cache[K, V]{}
	for i := range c.shards {
		c.shards[i].m = make(map[K]V)
	}
	return c
}

func (c *Cache[K, V]) shard(key K) *struct {
	mu sync.RWMutex
	m  map[K]V
} {
	return &c.shards[maphash.Comparable(cacheHashSeed, key)%cacheShards]
}

// Get returns the cached value for key. Hits and misses feed the aggregate
// live counters par.cache_hits / par.cache_misses (one atomic add — the
// warm-hit path stays allocation-free, pinned by the resynth AllocsPerRun
// tests). The split is scheduling-dependent — two workers racing on a cold
// key both miss where a serial run hits once — which is why the counters
// live in the Live registry, not in run reports.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		lHits.Inc()
	} else {
		lMisses.Inc()
	}
	return v, ok
}

// Set stores v under key.
func (c *Cache[K, V]) Set(key K, v V) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// GetOrCompute returns the cached value for key, computing and storing it
// on a miss. compute runs outside the shard lock, so concurrent misses on
// the same key may compute more than once and race on Set; like raw
// Get/Set, that is only correct when compute is pure — sftlint's purity
// rule checks the whole call tree of every compute argument for exactly
// that reason.
func (c *Cache[K, V]) GetOrCompute(key K, compute func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := compute()
	c.Set(key, v)
	return v
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
