// Package telemetry is the live half of the observability substrate: an
// embeddable HTTP server exposing the process-wide metrics registry in
// Prometheus text exposition format (/metrics), a JSON snapshot of the
// in-flight span tree and progress gauges (/progress), a liveness probe
// (/healthz), and the net/http/pprof handlers, all on one private mux (no
// default-mux registration).
//
// Importing the package installs the server constructor into internal/obs,
// which wires it to the shared -listen flag; commands therefore only need a
// blank import:
//
//	import _ "compsynth/internal/obs/telemetry"
//
// The indirection mirrors net/http/pprof's side-effect registration and
// keeps obs itself free of an import cycle.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"time"

	"compsynth/internal/metric"
	"compsynth/internal/obs"
	"compsynth/internal/par"
)

func init() {
	obs.RegisterTelemetry(func(r *obs.Run, addr string) (obs.TelemetryServer, error) {
		return New(r, addr)
	})
	// The worker pool reads wall-clock time only through this seam: linking
	// the telemetry package is what turns on its task wait/run histograms
	// (Live registry), keeping internal/par itself free of time.Now and the
	// deterministic pipeline free of timing reads.
	par.SetClock(time.Now)
}

// Server serves the telemetry endpoints for one run.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// New binds addr and starts serving; a bind failure is returned
// synchronously so callers can report it before any work starts.
func New(run *obs.Run, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(run)}}
	go s.srv.Serve(ln) // returns ErrServerClosed after Shutdown
	return s, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully, waiting for in-flight requests.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Handler builds the telemetry mux for a run: /metrics, /progress,
// /healthz and the pprof family under /debug/pprof/.
func Handler(run *obs.Run) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, run.Metrics.Snapshot())
		// The Live registry (scheduling- and timing-dependent instruments:
		// queue timings, cache hit/miss, per-worker claims) is exposed here
		// but never snapshotted into run reports — its families are disjoint
		// from the Default registry's, so the streams concatenate cleanly.
		WriteProm(w, metric.Live().Snapshot())
		// The ledger's chain head is a string, so it rides on an info-style
		// gauge (value 1, head as a label) next to the ledger.* counters.
		if ls, ok := run.LedgerState(); ok {
			fmt.Fprintf(w, "# TYPE ledger_chain_head_info gauge\nledger_chain_head_info{head=%q} 1\n", ls.Head)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snapshotProgress(run))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Progress is the /progress response: a live view of the run, with open
// spans exported at their duration so far.
type Progress struct {
	Tool       string           `json:"tool"`
	Start      time.Time        `json:"start"`
	ElapsedMS  float64          `json:"elapsed_ms"`
	Goroutines int              `json:"goroutines"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Gauges     map[string]int64 `json:"gauges,omitempty"`
	Ledger     *obs.LedgerState `json:"ledger,omitempty"`
	Spans      []obs.SpanJSON   `json:"spans,omitempty"`

	// Live is the Live-registry snapshot (worker-pool queue telemetry:
	// task wait/run histograms, cache hit/miss, per-worker claims). Omitted
	// while empty; never part of run reports.
	Live *obs.Snapshot `json:"live,omitempty"`
}

func snapshotProgress(run *obs.Run) Progress {
	snap := run.Metrics.Snapshot()
	p := Progress{
		Tool:       run.Report.Tool,
		Start:      run.Report.Start,
		ElapsedMS:  float64(time.Since(run.Report.Start)) / float64(time.Millisecond),
		Goroutines: runtime.NumGoroutine(),
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Spans:      run.Tracer.Export(),
	}
	if ls, ok := run.LedgerState(); ok {
		p.Ledger = &ls
	}
	if live := metric.Live().Snapshot(); len(live.Counters) > 0 || len(live.Gauges) > 0 || len(live.Histograms) > 0 {
		p.Live = &live
	}
	return p
}

// WriteProm renders a metrics snapshot in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms with cumulative le-labeled buckets plus _sum and _count.
// Metric names are sanitized (every character outside [a-zA-Z0-9_:]
// becomes '_') and families are emitted in sorted order.
func WriteProm(w io.Writer, s obs.Snapshot) {
	writeFamily(w, s.Counters, "counter")
	writeFamily(w, s.Gauges, "gauge")
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := PromName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatLE(b.LE), b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %v\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

func writeFamily(w io.Writer, vals map[string]int64, typ string) {
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ)
		fmt.Fprintf(w, "%s %d\n", pn, vals[name])
	}
}

// formatLE renders a bucket bound the way Prometheus does (shortest
// decimal, e.g. "2.5", "100").
func formatLE(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// PromName sanitizes a registry name ("resynth.candidates_examined") into a
// valid Prometheus metric name ("resynth_candidates_examined").
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
