package telemetry

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"compsynth/internal/gen"
	"compsynth/internal/metric"
	"compsynth/internal/obs"
	"compsynth/internal/par"
	"compsynth/internal/resynth"
)

// TestNewBindFailure pins that a -listen address that cannot be bound is a
// synchronous error, not a background goroutine crash.
func TestNewBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := New(nil, ln.Addr().String()); err == nil {
		t.Fatal("New on an occupied port succeeded, want bind error")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	// A flagless Start: no server, no recorder, nil tracer — the handler
	// must cope with all of that.
	run := (&obs.Flags{}).Start("telemetrytest")
	defer run.Finish()
	srv := httptest.NewServer(Handler(run))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}

	resp, err = http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	err = json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/progress does not decode: %v", err)
	}
	if prog.Tool != "telemetrytest" || prog.Goroutines <= 0 {
		t.Errorf("progress = %+v, want tool=telemetrytest and goroutines > 0", prog)
	}
}

// TestParTelemetryConformance pins the worker-pool telemetry contract: after
// a parallel fan-out (with the clock this package's init installed), the
// queue-depth gauge, task wait/run histograms, per-worker claim counters and
// cache hit/miss counters all surface on /metrics, and /progress carries the
// Live-registry section.
func TestParTelemetryConformance(t *testing.T) {
	run := (&obs.Flags{}).Start("telemetrytest")
	defer run.Finish()
	srv := httptest.NewServer(Handler(run))
	defer srv.Close()

	// One parallel fan-out plus one cache hit and miss to populate the
	// instruments this test asserts on.
	par.Run(nil, "conformance", 4, 64, func(_, _ int) {})
	cache := par.NewCache[int, int]()
	cache.Get(1)
	cache.Set(1, 1)
	cache.Get(1)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE par_queue_depth gauge",
		"par_task_wait_ms_bucket{le=",
		"par_task_run_ms_count",
		"# TYPE par_cache_hits counter",
		"# TYPE par_cache_misses counter",
		"# TYPE par_worker_tasks_w0 counter",
		"# TYPE par_tasks counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	err = json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Live == nil {
		t.Fatal("/progress has no live section after a parallel fan-out")
	}
	if _, ok := prog.Live.Histograms["par.task_wait_ms"]; !ok {
		t.Error("/progress live section missing par.task_wait_ms histogram")
	}
	if _, ok := prog.Live.Counters["par.cache_hits"]; !ok {
		t.Error("/progress live section missing par.cache_hits counter")
	}
	if _, ok := prog.Gauges["par.queue_depth"]; !ok {
		t.Error("/progress default gauges missing par.queue_depth")
	}
}

// TestShardTelemetryConformance pins the sharded-resynthesis telemetry
// contract: after one sharded Optimize, the region/conflict/requeue/commit
// counters and the par work-queue instruments surface on /metrics (with
// dots rendered as underscores) and in the /progress Live section — and
// stay out of the default registry, so run reports (and their obsdiff
// zero-tolerance gate) never see these scheduling-adjacent counts.
func TestShardTelemetryConformance(t *testing.T) {
	run := (&obs.Flags{}).Start("telemetrytest")
	defer run.Finish()
	srv := httptest.NewServer(Handler(run))
	defer srv.Close()

	// One sharded pass over a generator circuit dense enough to produce
	// multiple regions, real conflicts and re-queues (workers > 1 does not
	// change the counts: the partition and the commit order are
	// deterministic, so the instruments move identically at any count).
	opt := resynth.DefaultOptions()
	opt.Shard = true
	opt.Workers = 4
	opt.Verify = false
	if _, err := resynth.Optimize(gen.SmallSuite()[0].Build(), opt); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE resynth_shard_regions counter",
		"# TYPE resynth_shard_conflicts counter",
		"# TYPE resynth_shard_requeues counter",
		"# TYPE resynth_shard_commits counter",
		"# TYPE par_queue_pending gauge",
		"# TYPE par_queue_drains counter",
		"# TYPE par_queue_requeued counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	err = json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Live == nil {
		t.Fatal("/progress has no live section after a sharded pass")
	}
	for _, name := range []string{
		"resynth.shard_regions", "resynth.shard_conflicts",
		"resynth.shard_requeues", "resynth.shard_commits",
		"par.queue_drains", "par.queue_requeued",
	} {
		if _, ok := prog.Live.Counters[name]; !ok {
			t.Errorf("/progress live section missing %s counter", name)
		}
	}
	if got := prog.Live.Counters["resynth.shard_commits"]; got <= 0 {
		t.Errorf("resynth.shard_commits = %d after a sharded pass, want > 0", got)
	}
	if got := prog.Live.Counters["resynth.shard_regions"]; got <= 0 {
		t.Errorf("resynth.shard_regions = %d after a sharded pass, want > 0", got)
	}

	// The families must not leak into the default registry: run reports
	// diff clean across worker counts only because these live elsewhere.
	def := metric.Default().Snapshot()
	for name := range def.Counters {
		if strings.HasPrefix(name, "resynth.shard_") || strings.HasPrefix(name, "par.queue_") {
			t.Errorf("default registry contains Live-only counter %s", name)
		}
	}
}

func TestWriteProm(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("a.count").Add(3)
	m.Gauge("g.val").Set(-2)
	h := m.Histogram("lat.ms")
	for _, v := range []float64{1, 2, 3000} {
		h.Observe(v)
	}
	var b strings.Builder
	WriteProm(&b, m.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# TYPE a_count counter\na_count 3\n",
		"# TYPE g_val gauge\ng_val -2\n",
		"# TYPE lat_ms histogram\n",
		"lat_ms_bucket{le=\"1\"} 1\n",
		"lat_ms_bucket{le=\"2.5\"} 2\n",
		"lat_ms_bucket{le=\"2500\"} 2\n",
		"lat_ms_bucket{le=\"5000\"} 3\n",
		"lat_ms_bucket{le=\"+Inf\"} 3\n",
		"lat_ms_sum 3003\n",
		"lat_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"resynth.candidates_examined", "resynth_candidates_examined"},
		{"a-b.c d", "a_b_c_d"},
		{"9lives", "_lives"},
		{"ok_name:sub", "ok_name:sub"},
		{"x9.y", "x9_y"},
	} {
		if got := PromName(tc.in); got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFormatLE(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"}, {2.5, "2.5"}, {100, "100"}, {1e6, "1000000"},
	} {
		if got := formatLE(tc.in); got != tc.want {
			t.Errorf("formatLE(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
