package par

import (
	"testing"
	"time"

	"compsynth/internal/metric"
	"compsynth/internal/obs"
)

// TestQueueDepthGaugeDrains pins the queue-depth gauge contract: it may take
// any transient value while a fan-out is live, but it is exactly zero by the
// time Run returns — which is what lets it live in the Default registry
// without tripping the obsdiff determinism gates.
func TestQueueDepthGaugeDrains(t *testing.T) {
	g := obs.G("par.queue_depth")
	Run(nil, "t", 4, 64, func(_, _ int) {})
	if v := g.Value(); v != 0 {
		t.Fatalf("par.queue_depth = %d after Run returned, want 0", v)
	}
	// Serial path must not touch the gauge at all (it is a plain loop).
	g.Set(7)
	Run(nil, "t", 1, 8, func(_, _ int) {})
	if v := g.Value(); v != 7 {
		t.Fatalf("serial Run wrote the queue gauge: %d, want untouched 7", v)
	}
	g.Set(0)
}

// TestWorkerCountersSumToTasks pins the per-worker tasks-claimed accounting:
// the live par.worker_tasks.wN counters grow by exactly the task count of a
// parallel fan-out, however the claims were distributed.
func TestWorkerCountersSumToTasks(t *testing.T) {
	const workers, tasks = 4, 100
	sum := func() int64 {
		var s int64
		for wk := 0; wk < workers; wk++ {
			s += workerCounter(wk).Value()
		}
		return s
	}
	before := sum()
	Run(nil, "t", workers, tasks, func(_, _ int) {})
	if got := sum() - before; got != tasks {
		t.Fatalf("worker counters grew by %d, want %d", got, tasks)
	}
}

// TestClockFeedsTimingHistograms pins the clock seam: with a clock installed
// (as internal/obs/telemetry does at init) a parallel fan-out observes one
// wait and one run sample per task; with the clock removed the histograms
// stay silent and Run stays free of wall-clock reads.
func TestClockFeedsTimingHistograms(t *testing.T) {
	wait := metric.Live().Histogram("par.task_wait_ms")
	run := metric.Live().Histogram("par.task_run_ms")
	defer SetClock(nil)

	SetClock(nil)
	w0, r0 := wait.Count(), run.Count()
	Run(nil, "t", 4, 32, func(_, _ int) {})
	if wait.Count() != w0 || run.Count() != r0 {
		t.Fatal("timing histograms observed samples with no clock installed")
	}

	SetClock(time.Now)
	Run(nil, "t", 4, 32, func(_, _ int) {})
	if got := wait.Count() - w0; got != 32 {
		t.Errorf("task_wait_ms grew by %d samples, want 32", got)
	}
	if got := run.Count() - r0; got != 32 {
		t.Errorf("task_run_ms grew by %d samples, want 32", got)
	}
}

// TestCacheHitMissCounters pins the aggregate live cache accounting.
func TestCacheHitMissCounters(t *testing.T) {
	hits := metric.Live().Counter("par.cache_hits")
	misses := metric.Live().Counter("par.cache_misses")
	c := NewCache[int, int]()
	h0, m0 := hits.Value(), misses.Value()
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Set(1, 10)
	if _, ok := c.Get(1); !ok {
		t.Fatal("cache miss after Set")
	}
	if got := hits.Value() - h0; got != 1 {
		t.Errorf("par.cache_hits grew by %d, want 1", got)
	}
	if got := misses.Value() - m0; got != 1 {
		t.Errorf("par.cache_misses grew by %d, want 1", got)
	}
}
