// Package exper regenerates the paper's experimental tables (Tables 2-7) on
// the synthetic benchmark suite. It is shared by cmd/tables and the
// top-level benchmarks.
package exper

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"compsynth/internal/circuit"
	"compsynth/internal/delay"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	"compsynth/internal/gen"
	"compsynth/internal/obs"
	"compsynth/internal/par"
	"compsynth/internal/paths"
	"compsynth/internal/rambo"
	"compsynth/internal/redundancy"
	"compsynth/internal/resynth"
	"compsynth/internal/techmap"
)

// Experiment-driver metrics (process-wide; atomic adds in the row loops).
var (
	mRows     = obs.C("exper.rows_completed")
	mPrepared = obs.C("exper.circuits_prepared")
)

// rowDone records one finished table row: the cumulative counter feeds the
// run report, the progress event feeds the flight recorder (nil-safe and
// allocation-free when no recorder is installed).
func rowDone() {
	mRows.Inc()
	obs.EmitProgress("exper.rows", mRows.Value(), 0)
}

// Config scales the experiments.
type Config struct {
	Scale           float64  // suite size multiplier (1.0 = calibrated)
	Ks              []int    // K values tried per circuit (best kept)
	StuckPatterns   int      // random patterns for Table 6
	PDFPairs        int      // two-pattern budget for Table 7
	PDFQuiet        int      // quiet-pair stopping for Table 7
	Seed            int64    // campaign seed
	Circuits        []string // filter by name; empty = whole suite
	MakeIrredundant bool     // apply redundancy removal to the raw circuits
	Verify          bool     // per-pass equivalence checking
	Check           bool     // per-pass circuit IR invariant validation

	// Workers bounds the concurrency of suite preparation and table
	// regeneration (0 = runtime.GOMAXPROCS(0), 1 = serial). Benchmark
	// circuits and table rows are independent, so they run through one
	// bounded pool; the engines inside each row (resynthesis candidate
	// prefetch, fault-simulation blocks) then run serial so the machine is
	// not oversubscribed, and inherit the full worker budget only when the
	// row fan-out cannot use it (a single-circuit suite). Every level is
	// bit-identical for every worker count, so the split is purely a
	// scheduling choice.
	Workers int

	// Tracer, when non-nil, is threaded into every optimizer and removal
	// run so table regeneration produces a per-circuit span tree. With
	// Workers > 1 spans from concurrent rows interleave: timings stay
	// valid, but parent/child nesting across rows is not meaningful.
	Tracer *obs.Tracer
}

// DefaultConfig mirrors the paper's setup at laptop scale.
func DefaultConfig() Config {
	return Config{
		Scale:           1.0,
		Ks:              []int{5, 6},
		StuckPatterns:   1 << 20,
		PDFPairs:        20000,
		PDFQuiet:        2000,
		Seed:            1995,
		MakeIrredundant: true,
		Verify:          true,
	}
}

// QuickConfig is a fast smoke-test configuration.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.15
	c.StuckPatterns = 1 << 14
	c.PDFPairs = 3000
	c.PDFQuiet = 500
	return c
}

// Named pairs a benchmark name with its prepared circuit.
type Named struct {
	Name    string
	Circuit *circuit.Circuit
}

// Suite holds prepared circuits plus memoized optimizer results so the
// tables can share the expensive runs (Procedure 2 appears in Tables 2, 4,
// 6 and 7). The memos are mutex-guarded so table rows may run concurrently;
// every memoized computation is deterministic, so a racing double-compute
// of the same circuit (which the per-row fan-out never produces anyway)
// would store equal values.
type Suite struct {
	cfg   Config
	items []Named
	pool  int // suite-level fan-out width
	inner int // worker budget for engines inside one row

	mu     sync.Mutex
	proc2  map[string]*procResult
	proc3  map[string]*procResult
	ramboR map[string]*rambo.Result
	rrMod  map[string]*redundancy.Result
}

type procResult struct {
	res *resynth.Result
	k   int
}

// Items returns the prepared circuits.
func (s *Suite) Items() []Named { return s.items }

// NewSuite wraps prepared circuits for the table functions.
func NewSuite(cfg Config, items []Named) *Suite {
	pool := par.Workers(cfg.Workers)
	inner := 1
	if pool > 1 && len(items) <= 1 {
		inner = pool // the row fan-out cannot use the budget; the engines can
	}
	return &Suite{
		cfg: cfg, items: items, pool: pool, inner: inner,
		proc2:  map[string]*procResult{},
		proc3:  map[string]*procResult{},
		ramboR: map[string]*rambo.Result{},
		rrMod:  map[string]*redundancy.Result{},
	}
}

// Proc2 returns the (memoized) best Procedure 2 result for a circuit.
func (s *Suite) Proc2(nc Named) (*resynth.Result, int, error) {
	s.mu.Lock()
	r, ok := s.proc2[nc.Name]
	s.mu.Unlock()
	if ok {
		return r.res, r.k, nil
	}
	res, k, err := runProc(nc.Circuit, resynth.MinGates, s.cfg, s.inner)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	s.proc2[nc.Name] = &procResult{res, k}
	s.mu.Unlock()
	return res, k, nil
}

// Proc3 returns the (memoized) best Procedure 3 result.
func (s *Suite) Proc3(nc Named) (*resynth.Result, int, error) {
	s.mu.Lock()
	r, ok := s.proc3[nc.Name]
	s.mu.Unlock()
	if ok {
		return r.res, r.k, nil
	}
	res, k, err := runProc(nc.Circuit, resynth.MinPaths, s.cfg, s.inner)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	s.proc3[nc.Name] = &procResult{res, k}
	s.mu.Unlock()
	return res, k, nil
}

// Rambo returns the (memoized) baseline result.
func (s *Suite) Rambo(nc Named) (*rambo.Result, error) {
	s.mu.Lock()
	r, ok := s.ramboR[nc.Name]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	opt := rambo.DefaultOptions()
	opt.Verify = s.cfg.Verify
	res, err := rambo.Optimize(nc.Circuit, opt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ramboR[nc.Name] = res
	s.mu.Unlock()
	return res, nil
}

// ModifiedRR returns the (memoized) Procedure 2 + redundancy-removal
// circuit, the paper's "modified" version.
func (s *Suite) ModifiedRR(nc Named) (*redundancy.Result, error) {
	s.mu.Lock()
	r, ok := s.rrMod[nc.Name]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	res, _, err := s.Proc2(nc)
	if err != nil {
		return nil, err
	}
	ropt := redundancy.DefaultOptions()
	ropt.Verify = s.cfg.Verify
	ropt.Tracer = s.cfg.Tracer
	rr, err := redundancy.Remove(res.Circuit, ropt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.rrMod[nc.Name] = rr
	s.mu.Unlock()
	return rr, nil
}

// PrepareSuite generates the benchmark circuits (optionally made
// irredundant, as the paper requires). Circuits are independent — each is
// generated from its own seed — so preparation fans out over cfg.Workers.
func PrepareSuite(cfg Config) ([]Named, error) {
	var benches []gen.Bench
	for _, b := range gen.Suite(cfg.Scale) {
		if len(cfg.Circuits) > 0 && !contains(cfg.Circuits, b.Name) {
			continue
		}
		benches = append(benches, b)
	}
	var done atomic.Int64
	total := int64(len(benches))
	return par.MapErr(par.Workers(cfg.Workers), len(benches), func(i int) (Named, error) {
		defer func() {
			mPrepared.Inc()
			obs.EmitProgress("exper.prepare", done.Add(1), total)
		}()
		b := benches[i]
		c := b.Build()
		if cfg.MakeIrredundant {
			opt := redundancy.DefaultOptions()
			opt.Verify = cfg.Verify
			opt.Tracer = cfg.Tracer
			// Suite preparation favours speed: deep random circuits have
			// pathological redundancy proofs; aborted faults simply stay,
			// and a generous random filter keeps PODEM off easy faults.
			opt.BacktrackLimit = 1000
			opt.FilterPatterns = 8192
			res, err := redundancy.Remove(c, opt)
			if err != nil {
				return Named{}, fmt.Errorf("%s: %v", b.Name, err)
			}
			c = res.Circuit
			c.Name = b.Name
		}
		return Named{Name: b.Name, Circuit: c}, nil
	})
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// runProc runs a resynthesis procedure for each K and returns the best
// result under the objective. workers is the budget for the optimizer's
// candidate prefetch (it does not change results).
func runProc(c *circuit.Circuit, obj resynth.Objective, cfg Config, workers int) (*resynth.Result, int, error) {
	var best *resynth.Result
	bestK := 0
	for _, k := range cfg.Ks {
		opt := resynth.DefaultOptions()
		opt.K = k
		opt.Objective = obj
		opt.Verify = cfg.Verify
		opt.Check = cfg.Check
		opt.Workers = workers
		opt.Tracer = cfg.Tracer
		res, err := resynth.Optimize(c, opt)
		if err != nil {
			return nil, 0, err
		}
		if best == nil || betterResult(obj, res, best) {
			best, bestK = res, k
		}
	}
	return best, bestK, nil
}

func betterResult(obj resynth.Objective, a, b *resynth.Result) bool {
	if obj == resynth.MinPaths {
		if a.PathsAfter != b.PathsAfter {
			return a.PathsAfter < b.PathsAfter
		}
		return a.GatesAfter < b.GatesAfter
	}
	if a.GatesAfter != b.GatesAfter {
		return a.GatesAfter < b.GatesAfter
	}
	return a.PathsAfter < b.PathsAfter
}

// Table2Row is one line of Table 2 (Procedure 2 + redundancy removal).
type Table2Row struct {
	Name                string
	K                   int
	GatesOrig           int
	GatesMod            int
	GatesRR             int // -1 when no redundant faults were found
	PathsOrig, PathsMod uint64
	PathsRR             uint64
	Removed             int
}

// Table2 runs Procedure 2 (best of cfg.Ks) followed by redundancy removal.
// Rows are independent and run through the suite pool; the returned slice
// is in suite order regardless of worker count.
func Table2(s *Suite) ([]Table2Row, error) {
	items := s.Items()
	return par.MapErr(s.pool, len(items), func(i int) (Table2Row, error) {
		defer rowDone()
		nc := items[i]
		res, k, err := s.Proc2(nc)
		if err != nil {
			return Table2Row{}, fmt.Errorf("%s: %v", nc.Name, err)
		}
		row := Table2Row{
			Name: nc.Name, K: k,
			GatesOrig: res.GatesBefore, GatesMod: res.GatesAfter,
			PathsOrig: res.PathsBefore, PathsMod: res.PathsAfter,
			GatesRR: -1,
		}
		rr, err := s.ModifiedRR(nc)
		if err != nil {
			return Table2Row{}, fmt.Errorf("%s: redundancy: %v", nc.Name, err)
		}
		if rr.Removed > 0 {
			row.GatesRR = rr.GatesAfter
			row.PathsRR = paths.MustCount(rr.Circuit)
			row.Removed = rr.Removed
		}
		return row, nil
	})
}

// Table3Row is one line of Table 3 (baseline comparison).
type Table3Row struct {
	Name                   string
	GatesOrig              int
	PathsOrig              uint64
	GatesRambo             int
	PathsRambo             uint64
	K                      int
	GatesCombo, PathsCombo uint64
}

// Table3Circuits lists the paper's Table 3 subset.
var Table3Circuits = []string{"rs1423", "rs5378", "rs9234", "rs13207"}

// Table3 compares the RAMBO_C-style baseline with baseline+Procedure 2.
func Table3(s *Suite) ([]Table3Row, error) {
	var subset []Named
	for _, nc := range s.Items() {
		if contains(Table3Circuits, nc.Name) {
			subset = append(subset, nc)
		}
	}
	return par.MapErr(s.pool, len(subset), func(i int) (Table3Row, error) {
		defer rowDone()
		nc := subset[i]
		rres, err := s.Rambo(nc)
		if err != nil {
			return Table3Row{}, fmt.Errorf("%s: rambo: %v", nc.Name, err)
		}
		ccfg := s.cfg
		ccfg.Ks = []int{6}
		combo, k, err := runProc(rres.Circuit, resynth.MinGates, ccfg, s.inner)
		if err != nil {
			return Table3Row{}, fmt.Errorf("%s: combo: %v", nc.Name, err)
		}
		return Table3Row{
			Name:       nc.Name,
			GatesOrig:  nc.Circuit.Equiv2Count(),
			PathsOrig:  paths.MustCount(nc.Circuit),
			GatesRambo: rres.GatesAfter,
			PathsRambo: rres.PathsAfter,
			K:          k,
			GatesCombo: uint64(combo.GatesAfter),
			PathsCombo: combo.PathsAfter,
		}, nil
	})
}

// Table4Row is one line of Table 4 (technology mapping).
type Table4Row struct {
	Name         string
	LitsA, LongA int // first column pair (orig / RAMBO_C)
	LitsB, LongB int // second pair (Proc.2 / RAMBO_C+Proc.2)
}

// Table4 maps original vs Procedure 2 circuits (part a) and baseline vs
// baseline+Procedure 2 (part b).
func Table4(s *Suite) (partA, partB []Table4Row, err error) {
	var subset []Named
	for _, nc := range s.Items() {
		if contains(Table3Circuits, nc.Name) {
			subset = append(subset, nc)
		}
	}
	type pair struct{ a, b Table4Row }
	rows, err := par.MapErr(s.pool, len(subset), func(i int) (pair, error) {
		defer rowDone()
		nc := subset[i]
		p2, _, err := s.Proc2(nc)
		if err != nil {
			return pair{}, err
		}
		ra := techmap.Map(nc.Circuit)
		rb := techmap.Map(p2.Circuit)
		a := Table4Row{Name: nc.Name,
			LitsA: ra.Literals, LongA: ra.Longest, LitsB: rb.Literals, LongB: rb.Longest}

		rres, err := s.Rambo(nc)
		if err != nil {
			return pair{}, err
		}
		ccfg := s.cfg
		ccfg.Ks = []int{6}
		combo, _, err := runProc(rres.Circuit, resynth.MinGates, ccfg, s.inner)
		if err != nil {
			return pair{}, err
		}
		rc := techmap.Map(rres.Circuit)
		rd := techmap.Map(combo.Circuit)
		b := Table4Row{Name: nc.Name,
			LitsA: rc.Literals, LongA: rc.Longest, LitsB: rd.Literals, LongB: rd.Longest}
		return pair{a, b}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range rows {
		partA = append(partA, p.a)
		partB = append(partB, p.b)
	}
	return partA, partB, nil
}

// Table5Row is one line of Table 5 (Procedure 3).
type Table5Row struct {
	Name                string
	K                   int
	In, Out             int
	GatesOrig, GatesMod int
	PathsOrig, PathsMod uint64
}

// Table5 runs Procedure 3 (best of cfg.Ks by path count).
func Table5(s *Suite) ([]Table5Row, error) {
	items := s.Items()
	return par.MapErr(s.pool, len(items), func(i int) (Table5Row, error) {
		defer rowDone()
		nc := items[i]
		res, k, err := s.Proc3(nc)
		if err != nil {
			return Table5Row{}, fmt.Errorf("%s: %v", nc.Name, err)
		}
		return Table5Row{
			Name: nc.Name, K: k,
			In: len(nc.Circuit.Inputs), Out: len(nc.Circuit.Outputs),
			GatesOrig: res.GatesBefore, GatesMod: res.GatesAfter,
			PathsOrig: res.PathsBefore, PathsMod: res.PathsAfter,
		}, nil
	})
}

// Table6Row is one line of Table 6 (random-pattern stuck-at testability).
type Table6Row struct {
	Name                            string
	FaultsOrig, RemainOrig, EffOrig int
	FaultsMod, RemainMod, EffMod    int
}

// Table6 compares random-pattern stuck-at testability of the original
// circuits and the Procedure 2 + redundancy-removal circuits, using the
// same pattern sequence (same seed).
func Table6(s *Suite) ([]Table6Row, error) {
	cfg := s.cfg
	items := s.Items()
	return par.MapErr(s.pool, len(items), func(i int) (Table6Row, error) {
		defer rowDone()
		nc := items[i]
		rr, err := s.ModifiedRR(nc)
		if err != nil {
			return Table6Row{}, err
		}
		copt := faultsim.CampaignOptions{
			Patterns: cfg.StuckPatterns, Seed: cfg.Seed,
			Workers: s.inner, Tracer: cfg.Tracer,
		}
		orig := faultsim.Campaign(nc.Circuit, faults.Collapse(nc.Circuit), copt)
		mod := faultsim.Campaign(rr.Circuit, faults.Collapse(rr.Circuit), copt)
		return Table6Row{
			Name:       nc.Name,
			FaultsOrig: orig.TotalFaults, RemainOrig: len(orig.Remaining), EffOrig: orig.LastEffective,
			FaultsMod: mod.TotalFaults, RemainMod: len(mod.Remaining), EffMod: mod.LastEffective,
		}, nil
	})
}

// Table7Row is one line of Table 7 (robust PDF detection).
type Table7Row struct {
	Version    string
	EffOrig    int
	DetOrig    int
	FaultsOrig uint64
	EffMod     int
	DetMod     int
	FaultsMod  uint64
}

// Table7Circuit is the paper's Table 7 subject.
const Table7Circuit = "rs13207"

// Table7 runs robust PDF campaigns on four versions of one circuit:
// {original, RAMBO_C} x {before, after Procedure 2 + redundancy removal}.
func Table7(s *Suite) ([]Table7Row, error) {
	cfg := s.cfg
	var base *Named
	for i := range s.Items() {
		if s.Items()[i].Name == Table7Circuit {
			base = &s.Items()[i]
		}
	}
	if base == nil {
		return nil, fmt.Errorf("table7: circuit %s not in suite", Table7Circuit)
	}
	versions := []struct {
		name string
		c    *circuit.Circuit
	}{{"original", base.Circuit}}
	rres, err := s.Rambo(*base)
	if err != nil {
		return nil, err
	}
	versions = append(versions, struct {
		name string
		c    *circuit.Circuit
	}{"RAMBO_C", rres.Circuit})

	// The two versions derive from distinct circuit objects (the original
	// and the RAMBO result), so they run through the pool like table rows.
	return par.MapErr(s.pool, len(versions), func(i int) (Table7Row, error) {
		defer rowDone()
		v := versions[i]
		mod, _, err := runProc(v.c, resynth.MinGates, cfg, s.inner)
		if err != nil {
			return Table7Row{}, err
		}
		rd := redundancy.DefaultOptions()
		rd.Verify = cfg.Verify
		rd.Tracer = cfg.Tracer
		rr, err := redundancy.Remove(mod.Circuit, rd)
		if err != nil {
			return Table7Row{}, err
		}
		copt := delay.CampaignOptions{MaxPairs: cfg.PDFPairs, QuietPairs: cfg.PDFQuiet, Seed: cfg.Seed}
		before := delay.RunRandom(v.c, copt)
		after := delay.RunRandom(rr.Circuit, copt)
		return Table7Row{
			Version: v.name,
			EffOrig: before.LastEffective, DetOrig: before.Detected, FaultsOrig: before.TotalFaults,
			EffMod: after.LastEffective, DetMod: after.Detected, FaultsMod: after.TotalFaults,
		}, nil
	})
}

// --- formatting -----------------------------------------------------------

// Comma renders n with thousands separators, as the paper prints counts.
func Comma(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Results of Procedure 2\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %7s   %12s %12s %12s\n",
		"circuit(K)", "orig", "modif", "red.rem", "paths-orig", "paths-modif", "paths-rr")
	for _, r := range rows {
		rr, prr := "-", "-"
		if r.GatesRR >= 0 {
			rr = fmt.Sprintf("%d", r.GatesRR)
			prr = Comma(r.PathsRR)
		}
		fmt.Fprintf(&b, "%-9s(%d) %6d %6d %7s   %12s %12s %12s\n",
			r.Name, r.K, r.GatesOrig, r.GatesMod, rr,
			Comma(r.PathsOrig), Comma(r.PathsMod), prr)
	}
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Comparison with RAMBO_C-style baseline\n")
	fmt.Fprintf(&b, "%-10s %6s %12s   %6s %12s   %2s %6s %12s\n",
		"circuit", "2-inp", "paths", "2-inp", "paths", "K", "2-inp", "paths")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %12s   %6d %12s   %2d %6d %12s\n",
			r.Name, r.GatesOrig, Comma(r.PathsOrig),
			r.GatesRambo, Comma(r.PathsRambo),
			r.K, r.GatesCombo, Comma(r.PathsCombo))
	}
	return b.String()
}

// FormatTable4 renders both halves of Table 4.
func FormatTable4(partA, partB []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4(a): Technology mapping, original circuits\n")
	fmt.Fprintf(&b, "%-10s %9s %8s   %9s %8s\n", "circuit", "literals", "longest", "literals", "longest")
	fmt.Fprintf(&b, "%-10s %9s %8s   %9s %8s\n", "", "(orig)", "", "(Proc.2)", "")
	for _, r := range partA {
		fmt.Fprintf(&b, "%-10s %9d %8d   %9d %8d\n", r.Name, r.LitsA, r.LongA, r.LitsB, r.LongB)
	}
	fmt.Fprintf(&b, "Table 4(b): Technology mapping, after the baseline\n")
	fmt.Fprintf(&b, "%-10s %9s %8s   %9s %8s\n", "", "(RAMBO)", "", "(+Proc.2)", "")
	for _, r := range partB {
		fmt.Fprintf(&b, "%-10s %9d %8d   %9d %8d\n", r.Name, r.LitsA, r.LongA, r.LitsB, r.LongB)
	}
	return b.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Results of Procedure 3\n")
	fmt.Fprintf(&b, "%-12s %5s %5s %6s %6s %14s %14s\n",
		"circuit(K)", "inp", "out", "orig", "modif", "paths-orig", "paths-modif")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s(%d) %5d %5d %6d %6d %14s %14s\n",
			r.Name, r.K, r.In, r.Out, r.GatesOrig, r.GatesMod,
			Comma(r.PathsOrig), Comma(r.PathsMod))
	}
	return b.String()
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Results for stuck-at faults\n")
	fmt.Fprintf(&b, "%-10s %8s %7s %10s   %8s %7s %10s\n",
		"circuit", "faults", "remain", "eff.patt", "faults", "remain", "eff.patt")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %7d %10d   %8d %7d %10d\n",
			r.Name, r.FaultsOrig, r.RemainOrig, r.EffOrig,
			r.FaultsMod, r.RemainMod, r.EffMod)
	}
	return b.String()
}

// FormatTable7 renders Table 7.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: Robust detection by random patterns in %s\n", Table7Circuit)
	fmt.Fprintf(&b, "%-10s %8s %22s %22s\n", "circuit", "eff", "det/faults (before)", "det/faults (modified)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10s/%-11s %10s/%-11s\n",
			r.Version, r.EffOrig,
			Comma(uint64(r.DetOrig)), Comma(r.FaultsOrig),
			Comma(uint64(r.DetMod)), Comma(r.FaultsMod))
	}
	return b.String()
}
