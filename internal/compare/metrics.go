package compare

import "compsynth/internal/obs"

// Identification metrics: one counter bump per public identification call
// (Identify* cover the exact search, the paper's sampling method, the
// don't-care variant and the multi-unit extension), plus a hit counter so
// reports show the comparison-function yield.
var (
	mIdentifyCalls = obs.C("compare.identify_calls")
	mIdentifyHits  = obs.C("compare.identify_hits")
)

func countIdentify(ok bool) bool {
	mIdentifyCalls.Inc()
	if ok {
		mIdentifyHits.Inc()
	}
	return ok
}
