package par

import (
	"sort"
	"sync"
	"testing"
)

// TestQueueDrainProcessesAll checks one drain round: every pushed item is
// processed exactly once, at any worker count, and the queue is empty after.
func TestQueueDrainProcessesAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		q := NewQueue[int]()
		for i := 0; i < 100; i++ {
			q.Push(i)
		}
		if q.Len() != 100 {
			t.Fatalf("workers=%d: Len = %d before drain, want 100", workers, q.Len())
		}
		var mu sync.Mutex
		var got []int
		n := q.Drain(nil, "queue_test", workers, func(_, item int) {
			mu.Lock()
			got = append(got, item)
			mu.Unlock()
		})
		if n != 100 {
			t.Errorf("workers=%d: Drain processed %d items, want 100", workers, n)
		}
		if q.Len() != 0 {
			t.Errorf("workers=%d: Len = %d after drain, want 0", workers, q.Len())
		}
		sort.Ints(got)
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: processed items %v, want 0..99 each exactly once", workers, got)
			}
		}
	}
}

// TestQueueRequeueRounds checks the speculate/validate/re-queue shape: items
// pushed between drains form the next round's snapshot in push order, and an
// empty queue drains as a no-op.
func TestQueueRequeueRounds(t *testing.T) {
	q := NewQueue[string]()
	if n := q.Drain(nil, "queue_test", 4, func(_ int, _ string) {
		t.Error("fn called on an empty drain")
	}); n != 0 {
		t.Fatalf("empty Drain returned %d", n)
	}

	q.Push("a")
	q.Push("b")
	var round1 []string
	q.Drain(nil, "queue_test", 1, func(_ int, s string) { round1 = append(round1, s) })

	// Conflict losers re-queue for the next round.
	q.Push("b")
	q.Push("c")
	var round2 []string
	q.Drain(nil, "queue_test", 1, func(_ int, s string) { round2 = append(round2, s) })

	if want := []string{"a", "b"}; !equalStrings(round1, want) {
		t.Errorf("round 1 = %v, want %v", round1, want)
	}
	if want := []string{"b", "c"}; !equalStrings(round2, want) {
		t.Errorf("round 2 = %v, want %v", round2, want)
	}
}

// TestQueueTelemetry checks the Live instruments: re-queues count only after
// the first drain, and the pending gauge tracks Push/Drain.
func TestQueueTelemetry(t *testing.T) {
	requeued0 := lQueueRequeued.Value()
	drains0 := lQueueDrains.Value()

	q := NewQueue[int]()
	q.Push(1)
	q.Push(2)
	if got := lQueueRequeued.Value() - requeued0; got != 0 {
		t.Errorf("pushes before the first drain counted as re-queues: %d", got)
	}
	if got := lQueuePending.Value(); got != 2 {
		t.Errorf("pending gauge = %d after two pushes, want 2", got)
	}
	q.Drain(nil, "queue_test", 2, func(_, _ int) {})
	if got := lQueuePending.Value(); got != 0 {
		t.Errorf("pending gauge = %d after drain, want 0", got)
	}
	q.Push(3)
	if got := lQueueRequeued.Value() - requeued0; got != 1 {
		t.Errorf("re-queued counter = %d after one post-drain push, want 1", got)
	}
	q.Drain(nil, "queue_test", 2, func(_, _ int) {})
	if got := lQueueDrains.Value() - drains0; got != 2 {
		t.Errorf("drains counter advanced by %d, want 2", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
