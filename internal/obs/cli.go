package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"compsynth/internal/circuit"
	"compsynth/internal/obs/dtrace"
)

// Flags holds the runtime flags shared by every command:
//
//	-trace              record and print a span tree for the run
//	-metrics-out FILE   write the JSON run report to FILE
//	-v                  verbose progress on stderr
//	-listen ADDR        serve live telemetry (/metrics, /progress, /healthz,
//	                    /debug/pprof) on ADDR
//	-pprof ADDR         deprecated alias for -listen
//	-events FILE        stream NDJSON run events (flight recorder) to FILE
//	-heartbeat D        heartbeat snapshot interval for -events (0 disables)
//	-dtrace MODE        decision-trace recording (off, full, sampled:N)
//	-workers N          worker goroutines for the parallel phases
type Flags struct {
	Trace      bool
	Verbose    bool
	MetricsOut string
	PprofAddr  string

	// Listen serves the live telemetry endpoints on this address. The
	// server itself lives in the obs/telemetry subpackage (commands import
	// it for side effects); -pprof is kept as a deprecated alias and serves
	// the same mux.
	Listen string

	// Events streams NDJSON run events — span begin/end, throttled hot-loop
	// progress, periodic heartbeats — to this file while the run is live.
	Events string

	// Heartbeat is the -events snapshot interval (0 disables heartbeats).
	Heartbeat time.Duration

	// Dtrace selects decision-trace recording for the resynthesis sweep:
	// "off" (default), "full", or "sampled:N" (acceptances always recorded,
	// every Nth rejection). Anything but off requires -events — the trace
	// rides the flight-recorder stream. See internal/obs/dtrace.
	Dtrace string

	// Cert writes a verifiable run certificate (JSON) to this file at
	// Finish: input/output circuit digests, an options digest, equivalence
	// evidence, the comparison-unit path-proof summary, and — when -events
	// is also given — the ledger binding (chain head and final Merkle root).
	// The certificate logic lives in internal/ledger (commands import it for
	// side effects); cmd/sftverify re-verifies the artifact offline.
	Cert string

	// Workers is the shared worker-count option threaded into every
	// parallel engine (resynthesis, fault simulation, the experiment
	// driver). Results are bit-identical for every value; 1 disables all
	// fan-out. The default, GOMAXPROCS, uses all available CPUs.
	Workers int

	// Check enables circuit IR invariant validation (circuit.Check and the
	// paper's comparison-unit path bound) on the circuits a command reads
	// and produces, and after every resynthesis pass. Off by default: the
	// pipeline's outputs are byte-identical either way, -check only adds
	// failure detection.
	Check bool
}

// AddFlags registers the shared flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Trace, "trace", false, "record per-phase spans and print the span tree on exit")
	fs.BoolVar(&f.Verbose, "v", false, "verbose progress output on stderr")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON run report to this file")
	fs.StringVar(&f.Listen, "listen", "", "serve live telemetry (/metrics, /progress, /healthz, /debug/pprof) on this address (e.g. localhost:6060)")
	fs.StringVar(&f.PprofAddr, "pprof", "", "deprecated alias for -listen")
	fs.StringVar(&f.Events, "events", "", "stream NDJSON run events (flight recorder) to this file")
	fs.DurationVar(&f.Heartbeat, "heartbeat", time.Second, "heartbeat snapshot interval for -events (0 disables)")
	fs.StringVar(&f.Dtrace, "dtrace", "off",
		"decision-trace recording for the resynthesis sweep: off, full, or sampled:N (requires -events; queried with sftexplain)")
	fs.StringVar(&f.Cert, "cert", "", "write a verifiable run certificate (circuit digests, equivalence evidence, ledger binding) to this file")
	fs.IntVar(&f.Workers, "workers", runtime.GOMAXPROCS(0),
		"worker goroutines for parallel phases (results are identical for any value; 1 = serial)")
	fs.BoolVar(&f.Check, "check", false,
		"validate circuit IR invariants (acyclicity, arity, fanout consistency, comparison-unit path bound) on inputs, outputs and after every resynthesis pass")
	return f
}

// TelemetryServer is the handle Run.Finish uses to stop the -listen HTTP
// server gracefully. The obs/telemetry subpackage implements it.
type TelemetryServer interface {
	Addr() string
	Shutdown(ctx context.Context) error
}

// telemetryStart is installed by the obs/telemetry package's init. The
// indirection keeps the server (which imports obs for the registry and the
// span tree) out of obs's own import graph; commands blank-import
// compsynth/internal/obs/telemetry to link it in, mirroring how
// net/http/pprof registers itself.
var telemetryStart func(r *Run, addr string) (TelemetryServer, error)

// RegisterTelemetry installs the -listen server constructor.
func RegisterTelemetry(start func(r *Run, addr string) (TelemetryServer, error)) {
	telemetryStart = start
}

// certBody and certWrite are installed by the internal/ledger package's
// init, mirroring the telemetry seam: obs never imports the ledger. certBody
// assembles the deterministic certificate body from the run state and
// returns it with its digest; certWrite attaches the (nondeterministic)
// ledger binding and writes the file. The split lets Finish append the body
// digest to the event ledger BEFORE sealing it, then stamp the sealed
// ledger's final root into the certificate — each artifact ends up naming
// the other.
var (
	certBody  func(r *Run) (body any, digest string, err error)
	certWrite func(body any, ledger *LedgerState, path string) error
)

// RegisterCertifier installs the -cert certificate builder and writer.
func RegisterCertifier(
	body func(r *Run) (any, string, error),
	write func(body any, ledger *LedgerState, path string) error,
) {
	certBody, certWrite = body, write
}

// Run bundles the live observability state of one tool invocation.
type Run struct {
	Tracer  *Tracer // nil unless -trace, -metrics-out, -events or -listen was given
	Log     *Logger
	Metrics *Metrics
	Report  *Report

	flags    Flags
	root     *Span
	base     Snapshot
	start    time.Time
	server   TelemetryServer
	recorder *Recorder
	dtrace   *dtrace.Tracer
	sigCh    chan os.Signal

	// Certificate state, populated only when -cert is given: the circuits
	// CircuitBefore/After observed, the command's semantic options (set via
	// SetCertOptions), per-replacement equivalence evidence (AddEvidence),
	// and — after the recorder closes — the sealed ledger's final state.
	certBefore   *circuit.Circuit
	certAfter    *circuit.Circuit
	certOptions  json.RawMessage
	certEvidence []any
	ledgerFinal  *LedgerState
}

// Start builds the run state from the parsed flags. Failures to honor an
// explicitly requested facility — an -events file that cannot be created, a
// -listen address that cannot be bound — are reported unconditionally on
// stderr and exit the process with status 2: an artifact or endpoint the
// user asked for must never go missing silently.
func (f *Flags) Start(tool string) *Run {
	r, err := f.start(tool)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	r.watchSignals()
	return r
}

// start is Start with the error path exposed (for tests).
func (f *Flags) start(tool string) (*Run, error) {
	r := &Run{
		Log:     NewLogger(os.Stdout, os.Stderr, f.Verbose),
		Metrics: Default(),
		flags:   *f,
		start:   time.Now(),
	}
	listen := f.Listen
	if listen == "" {
		listen = f.PprofAddr
	}
	// The tracer doubles as the live span tree for /progress and the span
	// event source for -events, so any of those facilities enables it.
	if f.Trace || f.MetricsOut != "" || f.Events != "" || listen != "" {
		r.Tracer = NewTracer()
	}
	r.base = r.Metrics.Snapshot()
	r.Report = &Report{
		Tool:  tool,
		Args:  os.Args[1:],
		Start: r.start,
		Env:   Environment(),
	}
	if f.Cert != "" && certBody == nil {
		return nil, fmt.Errorf("-cert %s: certifier not linked in (import compsynth/internal/ledger)", f.Cert)
	}
	dmode, err := dtrace.ParseMode(f.Dtrace)
	if err != nil {
		return nil, fmt.Errorf("-dtrace: %v", err)
	}
	if dmode.Level != dtrace.LevelOff && f.Events == "" {
		return nil, fmt.Errorf("-dtrace %s: requires -events (the decision trace streams through the flight recorder)", f.Dtrace)
	}
	if f.Events != "" {
		rec, err := NewRecorder(f.Events, f.Heartbeat, r.Metrics)
		if err != nil {
			return nil, fmt.Errorf("-events: %v", err)
		}
		r.recorder = rec
		rec.RunStart(tool, os.Args[1:])
		r.Tracer.SetObserver(rec)
		SetProgressSink(rec)
		r.dtrace = dtrace.New(dmode, rec.Decision)
		r.Log.Verbosef("recording events to %s", f.Events)
	}
	if listen != "" {
		if telemetryStart == nil {
			r.closeRecorder()
			return nil, fmt.Errorf("-listen %s: telemetry server not linked in (import compsynth/internal/obs/telemetry)", listen)
		}
		srv, err := telemetryStart(r, listen)
		if err != nil {
			r.closeRecorder()
			return nil, fmt.Errorf("-listen %s: %v", listen, err)
		}
		r.server = srv
		r.Log.Verbosef("telemetry on http://%s/metrics (progress at /progress, pprof at /debug/pprof)", srv.Addr())
	}
	r.root = r.Tracer.StartSpan(tool)
	return r, nil
}

// Server returns the live telemetry server, or nil when -listen is off
// (tests use it to reach the bound address).
func (r *Run) Server() TelemetryServer { return r.server }

// CheckEnabled reports whether the run was started with -check; commands use
// it to thread per-pass validation into resynth.Options.Check and
// exper.Config.Check.
func (r *Run) CheckEnabled() bool { return r.flags.Check }

// Dtrace returns the decision-trace tracer built from -dtrace, or nil when
// tracing is off. Commands thread it into resynth.Options.Dtrace; the nil
// tracer no-ops, so unconditional threading is fine.
func (r *Run) Dtrace() *dtrace.Tracer { return r.dtrace }

// watchSignals installs the SIGINT/SIGTERM handler: an interrupted run still
// flushes the -events stream, seals the ledger, and writes a partial run
// report (with the interrupt recorded as the run error) before exiting
// non-zero — without it an interrupt silently drops the flight recorder
// tail, which is exactly the part of the stream a post-mortem needs.
// Finish uninstalls the handler, restoring default signal behavior after a
// normal completion.
func (r *Run) watchSignals() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	r.sigCh = ch
	go func() {
		sig, ok := <-ch
		if !ok {
			return // Finish closed the channel: normal completion
		}
		os.Exit(r.Interrupt(sig))
	}()
}

// Interrupt finishes the run as killed by sig — the artifacts (report,
// event stream, sealed ledger) are still written, carrying the interrupt as
// the run error — and returns the non-zero status for os.Exit. Split from
// the signal goroutine so tests can drive the interrupt path in-process.
func (r *Run) Interrupt(sig os.Signal) int {
	return r.Fail(fmt.Errorf("interrupted by %v", sig))
}

// stopSignals uninstalls the signal handler and releases its goroutine.
func (r *Run) stopSignals() {
	if r.sigCh == nil {
		return
	}
	signal.Stop(r.sigCh)
	close(r.sigCh)
	r.sigCh = nil
}

// CircuitBefore records (and verbosely logs) the input circuit. Under -cert
// the circuit is retained for the certificate, so callers must not mutate it
// afterwards (the pipeline already honors this: optimizers clone).
func (r *Run) CircuitBefore(c *circuit.Circuit) {
	info := InfoOf(c)
	r.Report.CircuitBefore = &info
	if r.flags.Cert != "" {
		r.certBefore = c
	}
	r.Log.Verbosef("input %s: %v, paths %d", c.Name, c.Stats(), info.Paths)
}

// CircuitAfter records (and verbosely logs) the output circuit, retaining it
// for the certificate under -cert.
func (r *Run) CircuitAfter(c *circuit.Circuit) {
	info := InfoOf(c)
	r.Report.CircuitAfter = &info
	if r.flags.Cert != "" {
		r.certAfter = c
	}
	r.Log.Verbosef("output %s: %v, paths %d", c.Name, c.Stats(), info.Paths)
}

// CertEnabled reports whether the run was started with -cert; commands use
// it to switch on evidence capture (resynth.Options.Certify).
func (r *Run) CertEnabled() bool { return r.flags.Cert != "" }

// SetCertOptions records the command's semantic options for the
// certificate: v is marshaled once and echoed (plus digested) into the cert
// body. Pass a fixed-shape struct of the flags that determine the output —
// and nothing machine-dependent — so certificates for identical inputs stay
// byte-identical. A marshal failure is reported at Finish, not here.
func (r *Run) SetCertOptions(v any) {
	if r.flags.Cert == "" {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(map[string]string{"marshal_error": err.Error()})
	}
	r.certOptions = raw
}

// AddEvidence appends per-replacement equivalence evidence (values of type
// ledger.Evidence; typed any to keep the ledger out of obs's import graph)
// to the certificate.
func (r *Run) AddEvidence(items ...any) {
	if r.flags.Cert == "" {
		return
	}
	r.certEvidence = append(r.certEvidence, items...)
}

// CertCircuits returns the circuits retained for the certificate (either may
// be nil). For the certificate builder seam.
func (r *Run) CertCircuits() (before, after *circuit.Circuit) {
	return r.certBefore, r.certAfter
}

// CertOptions returns the marshaled options recorded by SetCertOptions.
func (r *Run) CertOptions() json.RawMessage { return r.certOptions }

// CertEvidence returns the evidence recorded by AddEvidence.
func (r *Run) CertEvidence() []any { return r.certEvidence }

// LedgerState reports the event ledger's current (or, after the recorder
// closed, final) state. ok is false when -events is off or no ledger is
// linked in.
func (r *Run) LedgerState() (LedgerState, bool) {
	if r.recorder != nil {
		return r.recorder.LedgerState()
	}
	if r.ledgerFinal != nil {
		return *r.ledgerFinal, true
	}
	return LedgerState{}, false
}

// CheckCircuit validates c's IR invariants — circuit.Check plus the paper's
// comparison-unit path bound — when the run was started with -check; without
// the flag it is a no-op. label names the circuit in the error ("input",
// "after resynthesis", ...). Parsed netlists may legitimately carry gates no
// output reads, so unreachable nodes are tolerated; the stricter post-
// optimizer sweep lives in resynth.Options.Check.
func (r *Run) CheckCircuit(label string, c *circuit.Circuit) error {
	if !r.flags.Check {
		return nil
	}
	sp := r.Tracer.StartSpan("check")
	defer sp.End()
	if err := circuit.CheckWith(c, circuit.CheckOptions{AllowUnreachable: true}); err != nil {
		return fmt.Errorf("check %s circuit: %w", label, err)
	}
	if err := circuit.CheckComparisonUnits(c); err != nil {
		return fmt.Errorf("check %s circuit: %w", label, err)
	}
	r.Log.Verbosef("check %s circuit: ok", label)
	return nil
}

// closeRecorder detaches and closes the flight recorder (sealing the event
// ledger when one is linked), returning the first recording error. The
// sealed ledger's final state is retained for the certificate binding and
// for post-run LedgerState queries.
func (r *Run) closeRecorder() error {
	if r.recorder == nil {
		return nil
	}
	SetProgressSink(nil)
	r.Tracer.SetObserver(nil)
	err := r.recorder.Close()
	if ls, ok := r.recorder.LedgerState(); ok {
		r.ledgerFinal = &ls
	}
	r.recorder = nil
	return err
}

// Finish closes the root span, snapshots metrics into the report, prints
// the span tree under -trace, shuts the telemetry server down gracefully,
// closes the flight recorder, and writes the JSON report when requested.
// It returns the first artifact error (report or event stream); callers
// treat it as fatal so a missing artifact never passes silently.
func (r *Run) Finish() error {
	r.stopSignals()
	r.root.End()
	r.Report.DurationMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.Report.Spans = r.Tracer.Export()
	r.Report.Metrics = r.Metrics.Snapshot().Diff(r.base)
	if r.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := r.server.Shutdown(ctx); err != nil {
			r.Log.Verbosef("telemetry shutdown: %v", err)
		}
		cancel()
		r.server = nil
	}
	var firstErr error
	// Certificate body first: its digest is appended to the event ledger as
	// a "cert" record, so the sealed stream names the certificate it
	// produced; the certificate file is written after the recorder closes,
	// when the ledger's final root is known, so it names the stream back.
	var certPayload any
	if r.flags.Cert != "" {
		if certBody == nil {
			firstErr = fmt.Errorf("-cert %s: certifier not linked in (import compsynth/internal/ledger)", r.flags.Cert)
		} else if body, dg, err := certBody(r); err != nil {
			firstErr = fmt.Errorf("-cert: %v", err)
		} else {
			certPayload = body
			r.recorder.RecordCert(dg)
		}
	}
	if r.recorder != nil {
		r.recorder.RunEnd(r.Report.DurationMS, r.Report.Error)
		if err := r.closeRecorder(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-events: %v", err)
		}
	}
	if certPayload != nil {
		if err := certWrite(certPayload, r.ledgerFinal, r.flags.Cert); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("-cert: %v", err)
			}
		} else {
			r.Log.Verbosef("wrote certificate %s", r.flags.Cert)
		}
	}
	if r.flags.Trace {
		r.Tracer.Dump(os.Stderr)
	}
	if r.Log.Verbose() {
		os.Stderr.WriteString(r.Report.Metrics.Format())
	}
	if r.flags.MetricsOut != "" {
		if err := r.Report.WriteFile(r.flags.MetricsOut); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			r.Log.Verbosef("wrote report %s", r.flags.MetricsOut)
		}
	}
	return firstErr
}

// Fail reports err, records it on the run report, and finishes the run —
// the -metrics-out report and the event stream are still written, carrying
// the error — then returns a non-zero status for os.Exit. Every command
// routes its post-Start failures through Fail so error runs leave the same
// artifacts as successful ones.
func (r *Run) Fail(err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", r.Report.Tool, err)
	r.Report.Error = err.Error()
	if ferr := r.Finish(); ferr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", r.Report.Tool, ferr)
	}
	return 1
}
