package compare

import (
	"testing"

	"compsynth/internal/circuit"
)

// These tests pin the structures of the paper's Figures 1-6.

// gateCounts tallies live gates by type.
func gateCounts(c *circuit.Circuit) map[circuit.GateType]int {
	m := map[circuit.GateType]int{}
	for _, nd := range c.Nodes {
		if nd != nil && c.Alive(nd.ID) && nd.Type != circuit.Input {
			m[nd.Type]++
		}
	}
	return m
}

// faninTypes returns the gate types feeding node id.
func faninTypes(c *circuit.Circuit, id int) []circuit.GateType {
	var ts []circuit.GateType
	for _, f := range c.Nodes[id].Fanin {
		ts = append(ts, c.Nodes[f].Type)
	}
	return ts
}

func TestFigure3aGeq3Block(t *testing.T) {
	// >=3 over [3,15]: OR(x1, OR(x2, AND(x3,x4))) as a 2-input chain.
	s := identitySpec(4, 3, 15)
	c := s.BuildStandalone("f3a", BuildOptions{Merge: false})
	got := gateCounts(c)
	if got[circuit.Or] != 2 || got[circuit.And] != 1 || got[circuit.Not] != 0 {
		t.Fatalf("Figure 3(a) structure: %v", got)
	}
	if c.Depth() != 3 {
		t.Fatalf("Figure 3(a) depth = %d, want 3", c.Depth())
	}
}

func TestFigure3bGeq12Block(t *testing.T) {
	// >=12 over [12,15]: the trailing-zero gates are omitted; the block is
	// the single gate AND(x1,x2).
	s := identitySpec(4, 12, 15)
	c := s.BuildStandalone("f3b", BuildOptions{Merge: false})
	got := gateCounts(c)
	if got[circuit.And] != 1 || got[circuit.Or] != 0 || got[circuit.Not] != 0 {
		t.Fatalf("Figure 3(b) structure: %v", got)
	}
	out := c.Outputs[0]
	if len(c.Nodes[out].Fanin) != 2 {
		t.Fatalf("Figure 3(b): output gate fanin %v", c.Nodes[out].Fanin)
	}
}

func TestFigure3cLeq12Block(t *testing.T) {
	// <=12 over [0,12]: OR(!x1, OR(!x2, AND(!x3,!x4))).
	s := identitySpec(4, 0, 12)
	c := s.BuildStandalone("f3c", BuildOptions{Merge: false})
	got := gateCounts(c)
	if got[circuit.Or] != 2 || got[circuit.And] != 1 || got[circuit.Not] != 4 {
		t.Fatalf("Figure 3(c) structure: %v", got)
	}
}

func TestFigure3dLeq3Block(t *testing.T) {
	// <=3 over [0,3]: trailing-one gates omitted; AND(!x1,!x2).
	s := identitySpec(4, 0, 3)
	c := s.BuildStandalone("f3d", BuildOptions{Merge: false})
	got := gateCounts(c)
	if got[circuit.And] != 1 || got[circuit.Or] != 0 || got[circuit.Not] != 2 {
		t.Fatalf("Figure 3(d) structure: %v", got)
	}
}

func TestFigure4Geq7Merged(t *testing.T) {
	// >=7 with merging: OR(x1, AND(x2,x3,x4)) — the three consecutive AND
	// gates merge into one 3-input AND.
	s := identitySpec(4, 7, 15)
	c := s.BuildStandalone("f4", BuildOptions{Merge: true})
	got := gateCounts(c)
	if got[circuit.Or] != 1 || got[circuit.And] != 1 {
		t.Fatalf("Figure 4 structure: %v", got)
	}
	out := c.Outputs[0]
	if c.Nodes[out].Type != circuit.Or {
		t.Fatalf("Figure 4 output should be OR, got %v", c.Nodes[out].Type)
	}
	for _, f := range c.Nodes[out].Fanin {
		if c.Nodes[f].Type == circuit.And && len(c.Nodes[f].Fanin) != 3 {
			t.Fatalf("Figure 4 AND should be 3-input, got %d", len(c.Nodes[f].Fanin))
		}
	}
	if c.Depth() != 2 {
		t.Fatalf("Figure 4 depth = %d, want 2", c.Depth())
	}
}

func TestFigure1Unit(t *testing.T) {
	// The comparison unit for L=5, U=10 over 4 inputs: both blocks feed the
	// output AND; every input has at most two paths to the output.
	s := identitySpec(4, 5, 10)
	c := s.BuildStandalone("f1", BuildOptions{Merge: false})
	out := c.Outputs[0]
	if c.Nodes[out].Type != circuit.And || len(c.Nodes[out].Fanin) != 2 {
		t.Fatalf("Figure 1 output gate: %v(%d fanins)",
			c.Nodes[out].Type, len(c.Nodes[out].Fanin))
	}
	if !s.GeqPresent() || !s.LeqPresent() {
		t.Fatal("Figure 1 should have both blocks")
	}
	counts := countPathsPerInput(c)
	for j, n := range counts {
		if n > 2 {
			t.Fatalf("input y%d has %d paths, unit bound is 2", j+1, n)
		}
	}
}

func TestFigure5FreeVariableUnit(t *testing.T) {
	// L=5=(0101), U=7=(0111): x1,x2 free. Output AND is driven by !x1, x2
	// and the >=L_F block; the <=U_F block is omitted.
	s := identitySpec(4, 5, 7)
	c := s.BuildStandalone("f5", BuildOptions{Merge: false})
	out := c.Outputs[0]
	if c.Nodes[out].Type != circuit.And || len(c.Nodes[out].Fanin) != 3 {
		t.Fatalf("Figure 5 output gate: %v(%d)", c.Nodes[out].Type, len(c.Nodes[out].Fanin))
	}
	types := faninTypes(c, out)
	hasNot, hasInput, hasOr := false, false, false
	for _, ty := range types {
		switch ty {
		case circuit.Not:
			hasNot = true
		case circuit.Input:
			hasInput = true
		case circuit.Or:
			hasOr = true
		}
	}
	if !hasNot || !hasInput || !hasOr {
		t.Fatalf("Figure 5 output fanin types: %v", types)
	}
	// Free variables have exactly one path to the output.
	counts := countPathsPerInput(c)
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("free variable path counts: %v", counts)
	}
}

func TestUnitPathBoundHolds(t *testing.T) {
	// "In a comparison unit there are at most two paths from any input to
	// the output" — exhaustively for all bounds, n<=5, merge on and off.
	for n := 1; n <= 5; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				s := identitySpec(n, l, u)
				for _, merge := range []bool{false, true} {
					c := s.BuildStandalone("b", BuildOptions{Merge: merge})
					for j, cnt := range countPathsPerInput(c) {
						if cnt > 2 {
							t.Fatalf("n=%d [%d,%d] merge=%v: input %d has %d paths",
								n, l, u, merge, j, cnt)
						}
					}
				}
			}
		}
	}
}

func TestLongestPathBound(t *testing.T) {
	// "The longest path through a comparison block has at most n two-input
	// gates." With the output AND and an optional output inverter the unit
	// depth (unmerged) is bounded by n+2.
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 50; trial++ {
			l := trial % (1 << n)
			u := l + (trial*7)%(1<<n-l)
			s := identitySpec(n, l, u)
			c := s.BuildStandalone("d", BuildOptions{Merge: false})
			if c.Depth() > n+2 {
				t.Fatalf("n=%d [%d,%d]: depth %d exceeds n+2", n, l, u, c.Depth())
			}
		}
	}
}
