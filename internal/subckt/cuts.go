package subckt

import (
	"sort"

	"compsynth/internal/circuit"
)

// K-feasible cut enumeration (the standard technology-mapping algorithm).
//
// A cut of gate g is a set of lines such that every path from the primary
// inputs to g passes through a line of the set; the gates strictly between
// the cut and g form a single-output subcircuit with the cut as its inputs.
// Cuts reach through arbitrarily wide gates, which the incremental growth of
// Enumerate cannot (a 6-input gate's trivial subcircuit already has 6
// inputs), so the optimizer enumerates candidates from cuts.
//
// cuts(PI)       = { {PI} }
// cuts(constant) = { {} }
// cuts(gate g)   = { {g} } ∪ { c1 ∪ ... ∪ ck : ci ∈ cuts(fanin_i) },
// keeping only sets of at most K lines, capped per node by cut count.

// CutDB holds the K-feasible cuts of every node of one circuit snapshot.
type CutDB struct {
	K    int
	cuts [][][]int // per node: list of cuts; each cut is sorted node IDs
}

// ComputeCuts enumerates up to maxCuts K-feasible cuts per node, smallest
// first. maxCuts <= 0 selects a default of 64.
func ComputeCuts(c *circuit.Circuit, k, maxCuts int) *CutDB {
	if maxCuts <= 0 {
		maxCuts = 64
	}
	db := &CutDB{K: k, cuts: make([][][]int, len(c.Nodes))}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		switch nd.Type {
		case circuit.Input:
			db.cuts[id] = [][]int{{id}}
		case circuit.Const0, circuit.Const1:
			db.cuts[id] = [][]int{{}}
		default:
			merged := [][]int{{id}} // the trivial cut
			// Cartesian merge across fanins, width-capped.
			acc := [][]int{{}}
			for _, f := range nd.Fanin {
				var next [][]int
				for _, a := range acc {
					for _, cf := range db.cuts[f] {
						u := unionSorted(a, cf, k)
						if u != nil {
							next = append(next, u)
						}
						if len(next) > 4*maxCuts {
							break
						}
					}
					if len(next) > 4*maxCuts {
						break
					}
				}
				acc = dedupeCuts(next)
				if len(acc) > 2*maxCuts {
					sortCuts(acc)
					acc = acc[:2*maxCuts]
				}
				if len(acc) == 0 {
					break
				}
			}
			merged = append(merged, acc...)
			merged = dedupeCuts(merged)
			sortCuts(merged)
			if len(merged) > maxCuts {
				merged = merged[:maxCuts]
			}
			db.cuts[id] = merged
		}
	}
	return db
}

// Cuts returns the cuts of node id (shared storage; do not mutate).
func (db *CutDB) Cuts(id int) [][]int { return db.cuts[id] }

// unionSorted merges two sorted sets, returning nil if the union exceeds k.
func unionSorted(a, b []int, k int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > k {
			return nil
		}
	}
	return out
}

func dedupeCuts(cs [][]int) [][]int {
	seen := map[string]bool{}
	out := cs[:0]
	for _, c := range cs {
		k := cutKey(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

func cutKey(c []int) string {
	b := make([]byte, 0, len(c)*3)
	for _, id := range c {
		b = append(b, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(b)
}

func sortCuts(cs [][]int) {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) < len(cs[j])
		}
		for x := range cs[i] {
			if cs[i][x] != cs[j][x] {
				return cs[i][x] < cs[j][x]
			}
		}
		return false
	})
}

// SubcircuitFor materializes the subcircuit induced by a cut of g: all gates
// on paths between the cut lines and g. Returns nil for the trivial cut {g}
// or when the cut yields no gates.
func SubcircuitFor(c *circuit.Circuit, g int, cut []int) *Subcircuit {
	if !c.Alive(g) {
		return nil
	}
	inCut := map[int]bool{}
	for _, id := range cut {
		if !c.Alive(id) {
			return nil
		}
		inCut[id] = true
	}
	if inCut[g] {
		return nil
	}
	gates := map[int]bool{}
	var walk func(id int) bool
	walk = func(id int) bool {
		if inCut[id] {
			return true
		}
		if gates[id] {
			return true
		}
		nd := c.Nodes[id]
		if nd.Type == circuit.Input {
			return false // a path escapes the cut: not a valid cover
		}
		gates[id] = true
		for _, f := range nd.Fanin {
			if !walk(f) {
				return false
			}
		}
		return true
	}
	if !walk(g) {
		return nil
	}
	return newSub(c, g, gates)
}

// EnumerateFromCuts generates the candidate subcircuits of g from its cut
// set. The single-gate candidate (cut = fanins of g) comes first when it is
// K-feasible.
func (db *CutDB) EnumerateFromCuts(c *circuit.Circuit, g int) []*Subcircuit {
	var out []*Subcircuit
	for _, cut := range db.cuts[g] {
		s := SubcircuitFor(c, g, cut)
		if s != nil && len(s.Inputs) > 0 {
			out = append(out, s)
		}
	}
	return out
}
