package circuit

// Frozen CSR (compressed sparse row) view of a circuit.
//
// The mutable Circuit is pointer- and map-heavy: every node is a separate
// allocation, fanin lists are per-node slices, and the read-heavy phases
// (path counting, pattern simulation, fault campaigns, cut enumeration)
// chase pointers across the whole heap. Freeze flattens one snapshot of the
// netlist into a handful of dense arrays — int32 node ids, flat adjacency,
// level-ordered — that those phases sweep with sequential loads and zero
// allocation. Mutation stays on the Circuit + edit journal; the frozen view
// is the read seam.
//
// Incrementality mirrors the journal-driven dirty-cone refresh in
// internal/resynth: every mutator records the touched node, and the next
// Freeze recomputes levels for just the touched nodes plus their transitive
// fanout (every level outside that cone is a pure function of an unchanged
// fanin cone). Past a churn threshold — or when the tracking overflowed —
// Freeze falls back to a full rebuild. Either way the arrays are repacked
// from scratch into retained storage (offsets shift whenever any fanin
// count changes, so the repack is O(nodes+edges) regardless), which is what
// makes the two paths produce bit-identical views.

import (
	"fmt"

	"compsynth/internal/metric"
)

// CSR build metrics. Registered through internal/metric (not internal/obs,
// which imports this package) so they land in the same process-wide registry
// every other pipeline counter uses.
var (
	mCSRRebuilds = metric.C("circuit.csr_rebuilds")
	mCSRPatched  = metric.C("circuit.csr_patched_nodes")
	mCSRFull     = metric.C("circuit.csr_full_rebuilds")
)

// CSR is a frozen, immutable view of one circuit snapshot in compressed
// sparse row form. Nodes carry dense ids 0..N()-1 assigned in level-major
// order — sorted by (level, sparse id) — so ascending dense id is a valid
// topological order and a level sweep is one linear scan. The exported
// slices are read-only: they are rebuilt (and their storage recycled) by the
// next Freeze after any mutation, so callers must not retain a view across
// edits of the underlying circuit. Holders of a stale view can detect it via
// Check's csr_stale audit; correctness-critical readers simply re-Freeze,
// which is two loads when nothing changed.
type CSR struct {
	gen uint64 // Circuit generation this view was built at

	// Parallel arrays indexed by dense id.
	Kind   []GateType
	Level  []int32
	NodeID []int32  // dense -> sparse node ID
	Name   []string // node names (shared string headers, not copies)

	// DenseOf maps sparse node ID -> dense id, -1 for dead or absent nodes.
	DenseOf []int32

	// Flat fanin adjacency: FaninOf(d) = FaninEdge[FaninStart[d]:FaninStart[d+1]],
	// dense ids in pin order. FaninStart has N()+1 entries.
	FaninStart []int32
	FaninEdge  []int32

	// Flat fanout adjacency, the multiset transpose of the fanin lists: one
	// entry per consuming pin, consumers in ascending dense order (so the
	// lists are deterministic). FanoutStart has N()+1 entries.
	FanoutStart []int32
	FanoutEdge  []int32

	In  []int32 // dense ids of primary inputs, declaration order
	Out []int32 // dense ids of primary output drivers, designation order

	cursor []int32 // repack scratch (fanout fill positions / level offsets)
}

// N returns the number of live nodes in the view.
func (v *CSR) N() int { return len(v.Kind) }

// Gen returns the circuit generation the view was frozen at; a view is
// current while Gen equals the circuit's current generation.
func (v *CSR) Gen() uint64 { return v.gen }

// FaninOf returns the dense fanin ids of dense node d, in pin order.
func (v *CSR) FaninOf(d int32) []int32 {
	return v.FaninEdge[v.FaninStart[d]:v.FaninStart[d+1]]
}

// FanoutOf returns the dense consumer ids of dense node d (one entry per
// consuming pin, ascending).
func (v *CSR) FanoutOf(d int32) []int32 {
	return v.FanoutEdge[v.FanoutStart[d]:v.FanoutStart[d+1]]
}

// frozenState is the Circuit-side bookkeeping behind Freeze: the current
// edit generation, the last view, and the touched-node set that lets the
// next Freeze patch levels instead of recomputing them all.
type frozenState struct {
	gen      uint64 // bumped by every mutation (touch, MarkOutput, Rename)
	view     *CSR
	dirty    []int // sparse ids touched since view was built (may repeat)
	overflow bool  // tracking gave up; next Freeze rebuilds in full

	// Reused scratch for the patch path.
	lv      []int32  // per-sparse-id levels handed to the repack
	seen    []uint32 // epoch-stamped dirty-closure membership
	done    []uint32 // epoch-stamped "level recomputed" marks
	closure []int32  // dirty-cone worklist
	epoch   uint32
}

// note records one touched sparse id for the next incremental Freeze.
// Recording is bounded: past ~2 entries per node the set can no longer beat
// a full rebuild, so tracking flips to overflow and stops.
func (fz *frozenState) note(id, nodes int) {
	if fz.view == nil || fz.overflow {
		return
	}
	if len(fz.dirty) >= 2*nodes+16 {
		fz.overflow = true
		fz.dirty = fz.dirty[:0]
		return
	}
	fz.dirty = append(fz.dirty, id)
}

// Freeze returns the CSR view of the current circuit state, building it on
// first use, returning it unchanged while no mutation has happened, and
// otherwise rebuilding it — incrementally from the touched set when the
// dirty cone is small, from scratch past the churn threshold. The returned
// view aliases storage that the next post-mutation Freeze recycles, so it
// is valid until the circuit is next mutated. Freeze itself mutates only
// derived caches (like Topo and RebuildFanouts do) and must not be called
// concurrently with other Circuit methods; the returned view is safe for
// concurrent readers.
func (c *Circuit) Freeze() *CSR {
	fz := &c.fz
	if v := fz.view; v != nil && v.gen == fz.gen {
		return v
	}
	v := fz.view
	fresh := v == nil
	if fresh {
		v = &CSR{}
	}
	lv := growSlice(fz.lv, len(c.Nodes))
	fz.lv = lv
	if fresh || fz.overflow || !c.patchLevels(v, lv) {
		csrLevels(c, lv)
		mCSRFull.Inc()
	}
	repackCSR(v, c, lv)
	v.gen = fz.gen
	fz.view = v
	fz.dirty = fz.dirty[:0]
	fz.overflow = false
	mCSRRebuilds.Inc()
	return v
}

// Thaw drops the frozen view and its edit tracking, releasing the arrays
// and forcing the next Freeze onto the full-rebuild path.
func (c *Circuit) Thaw() {
	c.fz.view = nil
	c.fz.dirty = nil
	c.fz.overflow = false
}

// patchLevels refreshes lv for the dirty cone only, seeding every clean node
// with its frozen level. It reports false when the cone is too large to be
// worth patching (the caller then recomputes all levels); on true, lv holds
// exactly what csrLevels would compute.
func (c *Circuit) patchLevels(v *CSR, lv []int32) bool {
	fz := &c.fz
	n := len(c.Nodes)

	// Seed: frozen levels for surviving nodes, -1 for everything the old
	// view did not know (nodes added since are always in the dirty set).
	for i := range lv {
		lv[i] = -1
	}
	for d, s := range v.NodeID {
		lv[s] = v.Level[d]
	}

	// Close the touched set over fanouts: those are the only nodes whose
	// level can have changed.
	fz.seen = growSlice(fz.seen, n)
	fz.done = growSlice(fz.done, n)
	fz.epoch++
	ep := fz.epoch
	seen := fz.seen
	closure := fz.closure[:0]
	for _, s := range fz.dirty {
		if s < n && seen[s] != ep {
			seen[s] = ep
			closure = append(closure, int32(s))
		}
	}
	c.RebuildFanouts()
	for i := 0; i < len(closure); i++ {
		s := int(closure[i])
		if !c.Alive(s) {
			continue
		}
		for _, f := range c.Nodes[s].fanout {
			if seen[f] != ep {
				seen[f] = ep
				closure = append(closure, int32(f))
			}
		}
	}
	fz.closure = closure[:0]
	if 2*len(closure) > c.NumLive() {
		return false
	}
	mCSRPatched.Add(int64(len(closure)))

	// Recompute dirty levels in dependency order: a dirty fanin is resolved
	// first, a clean fanin already holds its (unchanged) frozen level.
	done := fz.done
	var visit func(s int) int32
	visit = func(s int) int32 {
		if seen[s] != ep || done[s] == ep {
			return lv[s]
		}
		done[s] = ep
		nd := c.Nodes[s]
		if nd == nil || nd.Type == dead {
			lv[s] = -1
			return -1
		}
		m := int32(-1)
		for _, f := range nd.Fanin {
			if l := visit(f); l > m {
				m = l
			}
		}
		lv[s] = m + 1
		return lv[s]
	}
	for _, s := range closure {
		visit(int(s))
	}
	return true
}

// csrLevels computes levels for every node into lv (-1 for dead or nil
// entries) without reading or writing any Circuit cache, so it is safe both
// under Freeze and inside Check. Panics on a cycle, like Topo.
func csrLevels(c *Circuit, lv []int32) {
	const gray = int32(-2)
	for i := range lv {
		lv[i] = -1
	}
	var visit func(id int) int32
	visit = func(id int) int32 {
		switch lv[id] {
		case -1:
		case gray:
			panic("circuit: cycle detected in Freeze")
		default:
			return lv[id]
		}
		lv[id] = gray
		m := int32(-1)
		for _, f := range c.Nodes[id].Fanin {
			if l := visit(f); l > m {
				m = l
			}
		}
		lv[id] = m + 1
		return lv[id]
	}
	for _, nd := range c.Nodes {
		if nd != nil && nd.Type != dead {
			visit(nd.ID)
		}
	}
}

// repackCSR rebuilds every array of v from (c.Nodes, c.Inputs, c.Outputs)
// and the per-sparse-id levels in lv, reusing v's storage. It reads nothing
// else — in particular no Circuit cache — so Check can build a reference
// view without perturbing the circuit under audit. The dense order is the
// canonical (level, sparse id) sort, computed by a counting sort over
// levels, which is identical however lv was produced.
func repackCSR(v *CSR, c *Circuit, lv []int32) {
	n, edges := 0, 0
	maxLv := int32(-1)
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		n++
		edges += len(nd.Fanin)
		if l := lv[nd.ID]; l > maxLv {
			maxLv = l
		}
	}

	v.Kind = growSlice(v.Kind, n)
	v.Level = growSlice(v.Level, n)
	v.NodeID = growSlice(v.NodeID, n)
	v.Name = growSlice(v.Name, n)
	v.DenseOf = growSlice(v.DenseOf, len(c.Nodes))
	v.FaninStart = growSlice(v.FaninStart, n+1)
	v.FaninEdge = growSlice(v.FaninEdge, edges)
	v.FanoutStart = growSlice(v.FanoutStart, n+1)
	v.FanoutEdge = growSlice(v.FanoutEdge, edges)
	v.In = growSlice(v.In, len(c.Inputs))
	v.Out = growSlice(v.Out, len(c.Outputs))
	v.cursor = growSlice(v.cursor, int(maxLv)+2)
	if n > int(maxLv)+2 {
		v.cursor = growSlice(v.cursor, n)
	}

	// Counting sort by level; scanning sparse ids in ascending order within
	// each level bucket yields the canonical (level, id) permutation.
	off := v.cursor[:int(maxLv)+2]
	for i := range off {
		off[i] = 0
	}
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		off[lv[nd.ID]+1]++
	}
	for l := 1; l < len(off); l++ {
		off[l] += off[l-1]
	}
	for i := range v.DenseOf {
		v.DenseOf[i] = -1
	}
	for id, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		d := off[lv[id]]
		off[lv[id]]++
		v.DenseOf[id] = d
		v.NodeID[d] = int32(id)
		v.Kind[d] = nd.Type
		v.Level[d] = lv[id]
		v.Name[d] = nd.Name
	}

	// Fanin adjacency, pin order preserved.
	e := int32(0)
	for d := 0; d < n; d++ {
		v.FaninStart[d] = e
		for _, f := range c.Nodes[v.NodeID[d]].Fanin {
			v.FaninEdge[e] = v.DenseOf[f]
			e++
		}
	}
	v.FaninStart[n] = e

	// Fanout adjacency: transpose of the fanin lists. Filling in ascending
	// consumer order keeps every fanout list deterministic.
	cur := v.cursor[:n]
	for i := range cur {
		cur[i] = 0
	}
	for _, src := range v.FaninEdge {
		cur[src]++
	}
	e = 0
	for d := 0; d < n; d++ {
		v.FanoutStart[d] = e
		e += cur[d]
		cur[d] = v.FanoutStart[d]
	}
	v.FanoutStart[n] = e
	for d := int32(0); int(d) < n; d++ {
		for _, src := range v.FaninOf(d) {
			v.FanoutEdge[cur[src]] = d
			cur[src]++
		}
	}

	for i, id := range c.Inputs {
		v.In[i] = v.DenseOf[id]
	}
	for i, id := range c.Outputs {
		v.Out[i] = v.DenseOf[id]
	}
}

// csrEqual reports the first divergence between two views' netlist content
// (everything except the generation stamp), for Check's csr_stale audit and
// the incremental-vs-full tests.
func csrEqual(a, b *CSR) error {
	if a.N() != b.N() {
		return fmt.Errorf("%d nodes vs %d", a.N(), b.N())
	}
	if err := eqI32("DenseOf", a.DenseOf, b.DenseOf); err != nil {
		return err
	}
	if err := eqI32("NodeID", a.NodeID, b.NodeID); err != nil {
		return err
	}
	if err := eqI32("Level", a.Level, b.Level); err != nil {
		return err
	}
	for i := range a.Kind {
		if a.Kind[i] != b.Kind[i] {
			return fmt.Errorf("Kind[%d]: %v vs %v", i, a.Kind[i], b.Kind[i])
		}
	}
	for i := range a.Name {
		if a.Name[i] != b.Name[i] {
			return fmt.Errorf("Name[%d]: %q vs %q", i, a.Name[i], b.Name[i])
		}
	}
	if err := eqI32("FaninStart", a.FaninStart, b.FaninStart); err != nil {
		return err
	}
	if err := eqI32("FaninEdge", a.FaninEdge, b.FaninEdge); err != nil {
		return err
	}
	if err := eqI32("FanoutStart", a.FanoutStart, b.FanoutStart); err != nil {
		return err
	}
	if err := eqI32("FanoutEdge", a.FanoutEdge, b.FanoutEdge); err != nil {
		return err
	}
	if err := eqI32("In", a.In, b.In); err != nil {
		return err
	}
	return eqI32("Out", a.Out, b.Out)
}

func eqI32(what string, a, b []int32) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: %d entries vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%s[%d]: %d vs %d", what, i, a[i], b[i])
		}
	}
	return nil
}

// growSlice returns s resized to n entries, reallocating (with headroom)
// only when capacity is short. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, n+n/2+8)
	}
	return s[:n]
}
