// External tests for the live half of the observability substrate: the
// Flags.Start/Finish lifecycle with -listen, -events and -metrics-out all
// enabled, Prometheus exposition conformance of /metrics, the /progress
// snapshot under a live span, and NDJSON well-formedness of the event
// stream. The package is obs_test so it can import obs/telemetry (obs
// itself cannot — that would be an import cycle).
package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"compsynth/internal/obs"
	_ "compsynth/internal/obs/telemetry" // installs the -listen server
)

func get(t *testing.T, url string) (string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), resp.Header
}

// TestLiveTelemetryRoundTrip drives the full Start/Finish lifecycle with
// every live facility on: a telemetry server on an ephemeral port, a flight
// recorder with a fast heartbeat, and a JSON report, then checks each
// artifact.
func TestLiveTelemetryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.ndjson")
	reportPath := filepath.Join(dir, "report.json")
	f := &obs.Flags{
		MetricsOut: reportPath,
		Listen:     "127.0.0.1:0",
		Events:     eventsPath,
		Heartbeat:  5 * time.Millisecond,
	}
	run := f.Start("clitest")
	if run.Server() == nil {
		t.Fatal("run.Server() = nil with -listen set")
	}
	base := "http://" + run.Server().Addr()

	// Feed the registry so /metrics has something from every family.
	obs.C("clitest.hits").Add(3)
	obs.G("clitest.pass").Set(2)
	lat := obs.H("clitest.latency_ms")
	for _, v := range []float64{0.5, 2, 30, 2e6} {
		lat.Observe(v)
	}

	if body, _ := get(t, base+"/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q, want ok", body)
	}

	// /progress while a span is open must show it with a live duration.
	sp := run.Tracer.StartSpan("clitest.phase")
	obs.EmitProgress("clitest.stage", 1, 2)
	body, hdr := get(t, base+"/progress")
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/progress Content-Type = %q", ct)
	}
	var prog struct {
		Tool     string           `json:"tool"`
		Counters map[string]int64 `json:"counters"`
		Spans    []obs.SpanJSON   `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if prog.Tool != "clitest" {
		t.Errorf("/progress tool = %q, want clitest", prog.Tool)
	}
	if prog.Counters["clitest.hits"] != 3 {
		t.Errorf("/progress counters[clitest.hits] = %d, want 3", prog.Counters["clitest.hits"])
	}
	root := findSpan(prog.Spans, "clitest")
	if root == nil {
		t.Fatalf("/progress has no root span clitest: %+v", prog.Spans)
	}
	open := findSpan(root.Children, "clitest.phase")
	if open == nil {
		t.Fatalf("open span clitest.phase missing from /progress: %+v", root.Children)
	}

	promBody, promHdr := get(t, base+"/metrics")
	if ct := promHdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want exposition format 0.0.4", ct)
	}
	checkExposition(t, promBody)

	if body, _ := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	// Let a few heartbeats land, then finish the run.
	time.Sleep(30 * time.Millisecond)
	obs.EmitProgress("clitest.stage", 2, 2)
	sp.End()
	if err := run.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("telemetry server still serving after Finish")
	}

	// The report artifact.
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Tool != "clitest" || rep.Error != "" {
		t.Errorf("report tool=%q error=%q, want clitest/empty", rep.Tool, rep.Error)
	}

	// The event stream: every line one JSON object, all lifecycle event
	// types present, progress carrying the stage we emitted.
	types := map[string]int{}
	var progEv []obs.Event
	for i, line := range strings.Split(strings.TrimRight(readFile(t, eventsPath), "\n"), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("events line %d is not JSON: %v\n%s", i+1, err, line)
		}
		types[ev.Type]++
		if ev.Type == "progress" {
			progEv = append(progEv, ev)
		}
	}
	for _, want := range []string{"run_start", "span_begin", "span_end", "progress", "heartbeat", "run_end"} {
		if types[want] == 0 {
			t.Errorf("event stream has no %s events (got %v)", want, types)
		}
	}
	found := false
	for _, ev := range progEv {
		if ev.Stage == "clitest.stage" && ev.Done == 2 && ev.Total == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("completion progress event missing: %+v", progEv)
	}
}

func findSpan(spans []obs.SpanJSON, name string) *obs.SpanJSON {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// checkExposition asserts body is valid Prometheus text exposition format
// 0.0.4: TYPE comments with known types, sample lines whose names are valid
// and whose values parse, histogram buckets cumulative with the +Inf bucket
// equal to _count.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	buckets := map[string][]float64{} // histogram name -> bucket counts in order
	counts := map[string]float64{}    // histogram name -> _count value
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fld := strings.Fields(line)
			if len(fld) != 4 || !promNameRe.MatchString(fld[2]) ||
				(fld[3] != "counter" && fld[3] != "gauge" && fld[3] != "histogram") {
				t.Fatalf("bad TYPE line %d: %q", i+1, line)
			}
			typed[fld[2]] = fld[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line %d: %q", i+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: value %q does not parse: %v", i+1, val, err)
		}
		var le string
		if br := strings.IndexByte(name, '{'); br >= 0 {
			labels := name[br:]
			name = name[:br]
			m := regexp.MustCompile(`^\{le="([^"]+)"\}$`).FindStringSubmatch(labels)
			if m == nil {
				t.Fatalf("line %d: unexpected labels %q", i+1, labels)
			}
			le = m[1]
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("line %d: invalid metric name %q", i+1, name)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && le != "":
			h := strings.TrimSuffix(name, "_bucket")
			buckets[h] = append(buckets[h], v)
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")] = v
		}
	}
	if len(typed) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
	if typed["clitest_hits"] != "counter" || typed["clitest_pass"] != "gauge" ||
		typed["clitest_latency_ms"] != "histogram" {
		t.Errorf("family types = %v, want clitest_hits/pass/latency_ms typed", typed)
	}
	for h, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Errorf("%s buckets not cumulative: %v", h, bs)
				break
			}
		}
		// The last bucket WriteProm emits is +Inf, which must equal _count.
		if c, ok := counts[h]; !ok || bs[len(bs)-1] != c {
			t.Errorf("%s +Inf bucket = %v, want _count %v", h, bs[len(bs)-1], c)
		}
	}
	if len(buckets["clitest_latency_ms"]) == 0 {
		t.Error("clitest_latency_ms has no buckets")
	}
}

// TestMetricsEndpointMatchesSnapshot pins that /metrics is rendered from the
// same registry the run report snapshots.
func TestMetricsEndpointMatchesSnapshot(t *testing.T) {
	f := &obs.Flags{Listen: "127.0.0.1:0"}
	run := f.Start("clitest2")
	defer run.Finish()
	c := obs.C("clitest2.events")
	c.Add(41)
	body, _ := get(t, "http://"+run.Server().Addr()+"/metrics")
	want := fmt.Sprintf("clitest2_events %d\n", c.Value())
	if !strings.Contains(body, want) {
		t.Errorf("/metrics missing %q", want)
	}
}
