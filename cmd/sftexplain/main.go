// Command sftexplain queries the decision trace a run recorded with
// -events FILE -dtrace=full (or sampled:N): why the resynthesis sweep
// replaced, kept, or skipped a node, which rejection reasons dominated each
// pass, how the candidate funnel narrowed, and how two runs' decisions
// differ. It reads both plain-NDJSON and ledger-framed event streams.
//
// Usage:
//
//	sftexplain why NODE EVENTS       decision chain for NODE (name or id)
//	sftexplain reasons EVENTS        outcome tally per pass
//	sftexplain funnel EVENTS         candidate funnel counts
//	sftexplain diff EVENTS EVENTS    final per-node outcomes that differ
//	sftexplain export EVENTS         canonical decision records as NDJSON
//
// Every subcommand takes -json for machine-readable output (export is
// always NDJSON). reasons and funnel take -pass N to restrict the tally to
// one resynthesis pass (0, the default, covers all passes). Flags go before
// positional arguments. Exit status: 0 on success (including an empty
// diff — diff is informational), 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compsynth/internal/explain"
	"compsynth/internal/obs/dtrace"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sftexplain COMMAND [-json] ARGS
  why NODE EVENTS     decision chain for NODE (name or numeric id)
  reasons EVENTS      outcome tally per pass (-pass N for one pass)
  funnel EVENTS       candidate funnel counts (-pass N for one pass)
  diff EVENTS EVENTS  final per-node outcomes that differ between two runs
  export EVENTS       canonical decision records as NDJSON

Flags go before positional arguments: sftexplain reasons -pass 2 EVENTS.`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sftexplain: %v\n", err)
	os.Exit(2)
}

func load(path string) *explain.Trace {
	tr, err := explain.Load(path)
	if err != nil {
		fatal(err)
	}
	return tr
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("sftexplain "+cmd, flag.ExitOnError)
	asJSON := fs.Bool("json", false, "machine-readable JSON output")
	pass := fs.Int("pass", 0, "restrict reasons/funnel to one resynthesis pass (0 = all passes)")
	fs.Parse(os.Args[2:])
	args := fs.Args()

	switch cmd {
	case "why":
		if len(args) != 2 {
			usage()
		}
		tr := load(args[1])
		chain := tr.Why(args[0])
		if *asJSON {
			emitJSON(chain)
			return
		}
		if len(chain) == 0 {
			fmt.Printf("no decisions recorded for node %q (traced with -dtrace? sampled mode drops rejections)\n", args[0])
			return
		}
		for i := range chain {
			printRecord(&chain[i])
		}
	case "reasons":
		if len(args) != 1 {
			usage()
		}
		tr := load(args[0]).FilterPass(*pass)
		counts := tr.ReasonCounts()
		if *asJSON {
			emitJSON(counts)
			return
		}
		pass := -1
		for _, rc := range counts {
			if rc.Pass != pass {
				pass = rc.Pass
				fmt.Printf("pass %d:\n", pass)
			}
			fmt.Printf("  %-20v %d\n", rc.Outcome, rc.Count)
		}
	case "funnel":
		if len(args) != 1 {
			usage()
		}
		f := load(args[0]).FilterPass(*pass).Funnel()
		if *asJSON {
			emitJSON(f)
			return
		}
		fmt.Printf("gates visited     %d (replaced %d, skipped %d more)\n",
			f.GatesVisited, f.GatesReplaced, f.GatesSkipped)
		fmt.Printf("candidates        %d\n", f.Candidates)
		fmt.Printf("  realized        %d\n", f.Realized)
		fmt.Printf("  accepted        %d\n", f.Accepted)
	case "diff":
		if len(args) != 2 {
			usage()
		}
		d := explain.Diff(load(args[0]), load(args[1]))
		if *asJSON {
			if d == nil {
				d = []explain.DiffEntry{}
			}
			emitJSON(d)
			return
		}
		if len(d) == 0 {
			fmt.Println("decision traces agree on every node")
			return
		}
		for _, e := range d {
			a, b := "absent", "absent"
			if e.AOk {
				a = e.A.String()
			}
			if e.BOk {
				b = e.B.String()
			}
			fmt.Printf("%s: %s -> %s\n", e.Node, a, b)
		}
	case "export":
		if len(args) != 1 {
			usage()
		}
		if err := load(args[0]).Export(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

// printRecord renders one decision record as a human-readable line.
func printRecord(r *dtrace.Record) {
	fmt.Printf("pass %d %-4s node %d", r.Pass, r.Kind, r.Node)
	if r.Name != "" {
		fmt.Printf(" (%s)", r.Name)
	}
	fmt.Printf(": %v", r.Outcome)
	if r.Width > 0 {
		fmt.Printf("  cut=%v", r.Cut)
	}
	if r.Outcome == dtrace.Accepted || r.Outcome == dtrace.Replaced ||
		r.Outcome == dtrace.Dominated || r.Outcome == dtrace.ObjectiveWorse ||
		r.Outcome == dtrace.PathBound {
		fmt.Printf("  gate_save=%d paths %d->%d", r.GateSave, r.PathsBefore, r.PathsAfter)
	}
	if r.Spec != "" {
		fmt.Printf("  spec=%s", r.Spec)
	}
	if r.UsedDC {
		fmt.Printf("  dc")
	}
	if r.MultiUnit {
		fmt.Printf("  multi")
	}
	fmt.Println()
}
