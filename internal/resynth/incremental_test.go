package resynth

import (
	"fmt"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/gen"
)

// TestIncrementalMatchesFull is the determinism contract of the incremental
// per-pass refresh: for every objective, identification mode, SDC setting
// and unit count, optimizing with the incremental dirty-cone refresh must
// produce a circuit bit-identical (same netlist text, same statistics) to
// optimizing with a full per-pass rebuild.
func TestIncrementalMatchesFull(t *testing.T) {
	suite := gen.SmallSuite()
	if testing.Short() {
		suite = suite[:1]
	}
	for _, b := range suite {
		c := b.Build()
		for _, obj := range []Objective{MinGates, MinPaths, Combined} {
			for _, sampling := range []bool{false, true} {
				for _, sdc := range []bool{false, true} {
					for _, units := range []int{1, 2} {
						name := fmt.Sprintf("%s/%v/sampling=%v/sdc=%v/units=%d",
							b.Name, obj, sampling, sdc, units)
						opt := DefaultOptions()
						opt.Objective = obj
						opt.UseSampling = sampling
						opt.UseSDC = sdc
						opt.MaxUnits = units
						opt.Verify = false // covered by other tests; keep the matrix fast

						full := opt
						full.forceFull = true
						rFull, err := Optimize(c, full)
						if err != nil {
							t.Fatalf("%s: full: %v", name, err)
						}
						dirtyBefore := mDirty.Value()
						rInc, err := Optimize(c, opt)
						if err != nil {
							t.Fatalf("%s: incremental: %v", name, err)
						}
						if rInc.Passes > 1 && mDirty.Value() == dirtyBefore {
							t.Errorf("%s: multi-pass run never took the incremental refresh path", name)
						}
						if got, want := rInc.String(), rFull.String(); got != want {
							t.Errorf("%s: stats diverge:\nincremental %s\nfull        %s", name, got, want)
						}
						if got, want := bench.String(rInc.Circuit), bench.String(rFull.Circuit); got != want {
							t.Errorf("%s: netlists diverge:\nincremental:\n%s\nfull:\n%s", name, got, want)
						}
					}
				}
			}
		}
	}
}
