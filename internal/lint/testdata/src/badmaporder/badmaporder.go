// Package badmaporder injects maporder-rule violations. It is a lint
// fixture: the go tool never builds testdata, only sftlint's own loader does.
package badmaporder

import (
	"fmt"
	"sort"
)

// Collect accumulates keys in iteration order without sorting.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// CollectSorted is clean: collected, then sorted immediately after the loop.
func CollectSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Last keeps whichever value the iterator happened to visit last.
func Last(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}

// Sum is clean: compound assignment commutes across orders.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Grow inserts into the map while ranging over it.
func Grow(m map[int]int) {
	for k := range m {
		m[k+1] = k
	}
}

// Dump emits output in iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Max is clean: the suppression carries a justification.
func Max(m map[string]int) int {
	best := 0
	//lint:ordered max over all values is the same for any visit order
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Bare carries a suppression with no justification, itself a finding.
func Bare(m map[string]int) int {
	n := 0
	//lint:ordered
	for _, v := range m {
		n = v
	}
	return n
}
