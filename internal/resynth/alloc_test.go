package resynth

import (
	"testing"

	"compsynth/internal/gen"
	"compsynth/internal/logic"
	"compsynth/internal/par"
	"compsynth/internal/subckt"
)

// Warm-path allocation pins: a repeated candidate must cost nothing beyond
// the cache lookup. Both the extraction cache (subckt.Key) and the
// identification caches (logic.Key) use fixed-size comparable keys, so a
// hit allocates nothing — these tests keep it that way.

func warmOptimizer(t *testing.T) (*optimizer, *subckt.Subcircuit, logic.TT) {
	t.Helper()
	c := gen.SmallSuite()[0].Build()
	c.Simplify()
	o := &optimizer{
		opt:      DefaultOptions(),
		cache:    par.NewCache[logic.Key, cachedSpec](),
		extracts: par.NewCache[subckt.Key, extracted](),
	}
	o.rebuildFull(c)
	var sub *subckt.Subcircuit
	for i := len(o.topo) - 1; i >= 0 && sub == nil; i-- {
		for _, s := range o.db.EnumerateFromCuts(c, o.topo[i]) {
			if len(s.Gates) > 1 {
				sub = s
				break
			}
		}
	}
	if sub == nil {
		t.Fatal("no multi-gate candidate in the warm-up circuit")
	}
	ex := o.extractTT(c, sub) // warm both caches
	o.identify(ex.stt)
	return o, sub, ex.stt
}

func TestExtractCacheHitZeroAlloc(t *testing.T) {
	o, sub, _ := warmOptimizer(t)
	c := gen.SmallSuite()[0].Build() // extract reads the circuit only on a miss
	c.Simplify()
	if n := testing.AllocsPerRun(200, func() {
		o.extractTT(c, sub)
	}); n != 0 {
		t.Fatalf("warm extractTT allocates %v times per call, want 0", n)
	}
}

func TestIdentifyCacheHitZeroAlloc(t *testing.T) {
	o, _, stt := warmOptimizer(t)
	if n := testing.AllocsPerRun(200, func() {
		o.identify(stt)
	}); n != 0 {
		t.Fatalf("warm identify allocates %v times per call, want 0", n)
	}
}

// TestTraceGateOffZeroAlloc pins the -dtrace=off contract end to end at the
// sweep's emission site: with no tracer installed (o.dt == nil, the default)
// traceGate must return before building a record, so tracing costs the
// untraced pipeline nothing.
func TestTraceGateOffZeroAlloc(t *testing.T) {
	o, sub, _ := warmOptimizer(t)
	c := gen.SmallSuite()[0].Build()
	c.Simplify()
	cand := &candidate{sub: sub}
	if n := testing.AllocsPerRun(200, func() {
		o.traceGate(c, sub.Out, 0, cand)
	}); n != 0 {
		t.Fatalf("traceGate with tracing off allocates %v times per call, want 0", n)
	}
}
