package obs

import (
	"flag"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"time"

	"compsynth/internal/circuit"
)

// Flags holds the runtime flags shared by every command:
//
//	-trace              record and print a span tree for the run
//	-metrics-out FILE   write the JSON run report to FILE
//	-v                  verbose progress on stderr
//	-pprof ADDR         serve net/http/pprof on ADDR (e.g. localhost:6060)
//	-workers N          worker goroutines for the parallel phases
type Flags struct {
	Trace      bool
	Verbose    bool
	MetricsOut string
	PprofAddr  string

	// Workers is the shared worker-count option threaded into every
	// parallel engine (resynthesis, fault simulation, the experiment
	// driver). Results are bit-identical for every value; 1 disables all
	// fan-out. The default, GOMAXPROCS, uses all available CPUs.
	Workers int
}

// AddFlags registers the shared flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Trace, "trace", false, "record per-phase spans and print the span tree on exit")
	fs.BoolVar(&f.Verbose, "v", false, "verbose progress output on stderr")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON run report to this file")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.IntVar(&f.Workers, "workers", runtime.GOMAXPROCS(0),
		"worker goroutines for parallel phases (results are identical for any value; 1 = serial)")
	return f
}

// Run bundles the live observability state of one tool invocation.
type Run struct {
	Tracer  *Tracer // nil unless -trace or -metrics-out was given
	Log     *Logger
	Metrics *Metrics
	Report  *Report

	flags Flags
	root  *Span
	base  Snapshot
	start time.Time
}

// Start builds the run state from the parsed flags: the logger, the tracer
// (only when tracing or reporting is requested, so the nil fast path stays
// active otherwise), the report skeleton, and the pprof server.
func (f *Flags) Start(tool string) *Run {
	r := &Run{
		Log:     NewLogger(os.Stdout, os.Stderr, f.Verbose),
		Metrics: Default(),
		flags:   *f,
		start:   time.Now(),
	}
	if f.Trace || f.MetricsOut != "" {
		r.Tracer = NewTracer()
	}
	r.base = r.Metrics.Snapshot()
	r.Report = &Report{
		Tool:  tool,
		Args:  os.Args[1:],
		Start: r.start,
		Env:   Environment(),
	}
	if f.PprofAddr != "" {
		addr, lg := f.PprofAddr, r.Log
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				lg.Verbosef("pprof server on %s failed: %v", addr, err)
			}
		}()
		r.Log.Verbosef("pprof listening on http://%s/debug/pprof", addr)
	}
	r.root = r.Tracer.StartSpan(tool)
	return r
}

// CircuitBefore records (and verbosely logs) the input circuit.
func (r *Run) CircuitBefore(c *circuit.Circuit) {
	info := InfoOf(c)
	r.Report.CircuitBefore = &info
	r.Log.Verbosef("input %s: %v, paths %d", c.Name, c.Stats(), info.Paths)
}

// CircuitAfter records (and verbosely logs) the output circuit.
func (r *Run) CircuitAfter(c *circuit.Circuit) {
	info := InfoOf(c)
	r.Report.CircuitAfter = &info
	r.Log.Verbosef("output %s: %v, paths %d", c.Name, c.Stats(), info.Paths)
}

// Finish closes the root span, snapshots metrics into the report, prints the
// span tree under -trace, and writes the JSON report when requested. It
// returns the report-writing error (callers treat it as fatal so a missing
// report never passes silently).
func (r *Run) Finish() error {
	r.root.End()
	r.Report.DurationMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.Report.Spans = r.Tracer.Export()
	r.Report.Metrics = r.Metrics.Snapshot().Diff(r.base)
	if r.flags.Trace {
		r.Tracer.Dump(os.Stderr)
	}
	if r.Log.Verbose() {
		os.Stderr.WriteString(r.Report.Metrics.Format())
	}
	if r.flags.MetricsOut != "" {
		if err := r.Report.WriteFile(r.flags.MetricsOut); err != nil {
			return err
		}
		r.Log.Verbosef("wrote report %s", r.flags.MetricsOut)
	}
	return nil
}
