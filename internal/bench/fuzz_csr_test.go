package bench_test

import (
	"os"
	"path/filepath"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
)

// FuzzCSRFreeze drives the incremental Freeze machinery over every circuit
// the parser accepts, reusing FuzzParseBench's seed corpus. After each step
// of a deterministic mutation sequence it freezes and runs circuit.Check,
// whose csr_stale audit deep-compares the (possibly journal-patched) view
// against a from-scratch rebuild — so any divergence between the
// incremental and full paths on a fuzz-discovered netlist is a failure.
func FuzzCSRFreeze(f *testing.F) {
	f.Add(bench.C17)
	f.Add(bench.Adder4)
	files, err := filepath.Glob(filepath.Join("..", "..", "circuits", "*.bench"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}

	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ParseString(src, "fuzz")
		if err != nil {
			return // not a circuit; FuzzParseBench owns parser robustness
		}
		opts := circuit.CheckOptions{AllowUnreachable: true}
		step := func(what string) {
			t.Helper()
			c.Freeze()
			if err := circuit.CheckWith(c, opts); err != nil {
				t.Fatalf("after %s: %v\ninput:\n%s", what, err, src)
			}
		}
		step("parse")

		// A deterministic edit script covering the interesting transitions:
		// pure additions, output designation, local rewiring, global
		// simplification and sweeps. Every op goes through the journal-
		// touching mutators, so each Freeze exercises the patch path (or its
		// churn-threshold fallback) against the reference.
		in := c.AddInput("fz_in")
		step("AddInput")
		g := c.AddGate(circuit.Not, "fz_not", in)
		step("AddGate")
		c.MarkOutput(g)
		step("MarkOutput")
		if len(c.Outputs) > 1 {
			o := c.Outputs[0]
			g2 := c.AddGate(circuit.And, "fz_and", o, g)
			c.MarkOutput(g2)
			step("AddGate over PO")
			c.SetFanin(g2, 1, o)
			step("SetFanin")
		}
		c.Rename(g, "fz_not_renamed")
		step("Rename")
		c.Simplify()
		step("Simplify")
		c.Strash()
		step("Strash")
		c.SweepDead()
		step("SweepDead")
		cc, _ := c.Compact()
		cc.Freeze()
		if err := circuit.CheckWith(cc, opts); err != nil {
			t.Fatalf("after Compact: %v\ninput:\n%s", err, src)
		}
	})
}
