// Package badmetric injects metricname-rule violations. It is a lint
// fixture: the go tool never builds testdata, only sftlint's own loader does.
package badmetric

import (
	"compsynth/internal/metric"
	"compsynth/internal/obs"
)

var (
	good  = obs.C("badmetric.events_total")
	camel = obs.C("badmetric.EventCount")
	theft = obs.G("resynth.stolen_name")
)

// Dynamic registers a computed name, which defeats static auditing.
func Dynamic(name string) *obs.Counter {
	return obs.C("badmetric." + name)
}

// Use keeps the registrations referenced.
func Use() {
	good.Add(1)
	camel.Add(1)
	theft.Set(1)
}

// The underlying metric package is the second registration path into the
// shared registry (used by packages below obs, like circuit); the rule must
// audit it identically.
var direct = metric.C("circuit.csr_hijack")

// UseDirect keeps the metric-path registration referenced.
func UseDirect() {
	direct.Inc()
}
