package threshold

import (
	"testing"

	"compsynth/internal/compare"
	"compsynth/internal/logic"
)

func TestGeqGateMatchesInterval(t *testing.T) {
	// The >=L threshold gate's table is exactly the [L, 2^n-1] interval.
	for n := 1; n <= 6; n++ {
		for l := 0; l <= 1<<n-1; l++ {
			got := GeqGate(n, l).Table()
			want := logic.FromInterval(n, l, 1<<n-1)
			if !got.Equal(want) {
				t.Fatalf("n=%d L=%d: %s != %s", n, l, got, want)
			}
		}
	}
}

func TestUnitTableMatchesInterval(t *testing.T) {
	// Section 3.1 composition: AND of >=L gate and complemented >=U+1 gate
	// equals the comparison function [L,U].
	for n := 1; n <= 5; n++ {
		for l := 0; l < 1<<n; l++ {
			for u := l; u < 1<<n; u++ {
				got := UnitTable(n, l, u)
				want := logic.FromInterval(n, l, u)
				if !got.Equal(want) {
					t.Fatalf("n=%d [%d,%d]: mismatch", n, l, u)
				}
			}
		}
	}
}

func TestUnitTableMatchesBuiltUnit(t *testing.T) {
	// The threshold view and the gate-level comparison unit agree.
	for _, bounds := range [][2]int{{5, 10}, {3, 15}, {0, 12}, {11, 12}, {7, 7}} {
		s := compare.Spec{N: 4, Perm: []int{0, 1, 2, 3}, L: bounds[0], U: bounds[1]}
		c := s.BuildStandalone("u", compare.BuildOptions{Merge: true})
		tt := UnitTable(4, bounds[0], bounds[1])
		for m := 0; m < 16; m++ {
			in := []bool{m&8 != 0, m&4 != 0, m&2 != 0, m&1 != 0}
			if c.Eval(in)[0] != tt.Get(m) {
				t.Fatalf("[%d,%d] minterm %d: unit and threshold disagree", bounds[0], bounds[1], m)
			}
		}
	}
}

func TestThresholdGatesAreUnate(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for l := 0; l <= 1<<n-1; l++ {
			if !IsUnate(GeqGate(n, l)) {
				t.Fatalf("GeqGate(%d,%d) not unate", n, l)
			}
		}
	}
}

func TestEvalDirect(t *testing.T) {
	g := Gate{Weights: []int{4, 2, 1}, T: 5}
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, false, true}, true}, // 5 >= 5
		{[]bool{true, false, false}, false},
		{[]bool{true, true, false}, true},
		{[]bool{false, true, true}, false},
	}
	for _, c := range cases {
		if g.Eval(c.in) != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.in, g.Eval(c.in), c.want)
		}
	}
}

func TestNegativeWeightUnate(t *testing.T) {
	// A gate with a negative weight is negative-unate in that input.
	g := Gate{Weights: []int{-2, 1}, T: 0}
	if !IsUnate(g) {
		t.Fatal("mixed-weight threshold gate should still be unate per input")
	}
}

func TestGateString(t *testing.T) {
	g := GeqGate(3, 5)
	if g.String() != "thr{w=[4 2 1] T=5}" {
		t.Fatalf("String = %q", g.String())
	}
}

func TestLeqComplementSemantics(t *testing.T) {
	// The complement of the T=U+1 gate accepts exactly values <= U.
	for u := 0; u < 8; u++ {
		tt := LeqGateComplement(3, u).Table().Not()
		for m := 0; m < 8; m++ {
			if tt.Get(m) != (m <= u) {
				t.Fatalf("u=%d m=%d", u, m)
			}
		}
	}
}
