package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
)

// The baseline is the committed ledger of accepted findings and suppression
// debt (lint_baseline.json at the repo root). In -baseline mode, findings
// whose IDs appear in the ledger are suppressed — they are debt, not
// regressions — while any finding NOT in the ledger fails the run, and any
// ledger entry that no longer matches a finding fails too (paid-off debt
// must be deleted from the ledger, keeping it honest). Every entry carries
// a mandatory justification, mirroring the //lint:ordered comment form.
//
// The ledger also pins the per-package counts of the in-source suppression
// comments (//lint:ordered, //lint:speculative). sftlint -debt recomputes
// them and fails on any drift in either direction: growth means new
// suppressions sneaked in without review; shrinkage means the ledger
// overstates the debt and must be ratcheted down in the same commit.

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	ID            string `json:"id"`
	Justification string `json:"justification"`
}

// DebtCounts tallies in-source suppression comments for one package.
type DebtCounts struct {
	Ordered     int `json:"ordered,omitempty"`
	Speculative int `json:"speculative,omitempty"`
}

// Baseline is the parsed ledger.
type Baseline struct {
	Version  int                   `json:"version"`
	Findings []BaselineEntry       `json:"findings"`
	Debt     map[string]DebtCounts `json:"debt"`
}

// LoadBaseline reads and validates a ledger file.
func LoadBaseline(file string) (*Baseline, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", file, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want 1", file, b.Version)
	}
	seen := map[string]bool{}
	for _, e := range b.Findings {
		if e.ID == "" {
			return nil, fmt.Errorf("lint: baseline %s has an entry without an id", file)
		}
		if strings.TrimSpace(e.Justification) == "" {
			return nil, fmt.Errorf("lint: baseline entry %s has no justification — accepted findings must say why", e.ID)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("lint: baseline entry %s is duplicated", e.ID)
		}
		seen[e.ID] = true
	}
	return &b, nil
}

// Apply splits diagnostics against the ledger: fresh findings (not
// baselined — these fail CI) and stale entry IDs (baselined but no longer
// found — the ledger must shed them).
func (b *Baseline) Apply(ds []Diagnostic) (fresh []Diagnostic, stale []string) {
	baselined := map[string]bool{}
	for _, e := range b.Findings {
		baselined[e.ID] = false
	}
	for _, d := range ds {
		if _, ok := baselined[d.ID]; ok {
			baselined[d.ID] = true
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, e := range b.Findings {
		if !baselined[e.ID] {
			stale = append(stale, e.ID)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// CountDebt tallies //lint:ordered and //lint:speculative comments per
// package (keyed by import path relative to the module).
func CountDebt(l *Loader, pkgs []*Package) map[string]DebtCounts {
	out := map[string]DebtCounts{}
	for _, p := range pkgs {
		rel := strings.TrimPrefix(p.Path, l.ModPath+"/")
		c := out[rel]
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					switch {
					case strings.HasPrefix(cm.Text, "//lint:ordered"):
						c.Ordered++
					case strings.HasPrefix(cm.Text, "//lint:speculative"):
						c.Speculative++
					}
				}
			}
		}
		if c != (DebtCounts{}) {
			out[rel] = c
		}
	}
	return out
}

// baselinedPerPackage derives, from the ledger's finding IDs (which embed
// module-relative file paths for syntactic rules), how many accepted
// findings each package directory carries. Interprocedural IDs carry no
// path and are tallied under "(interprocedural)".
func (b *Baseline) baselinedPerPackage() map[string]int {
	out := map[string]int{}
	for _, e := range b.Findings {
		parts := strings.Split(e.ID, "/")
		if len(parts) >= 3 && strings.HasSuffix(parts[len(parts)-2], ".go") {
			out[path.Dir(strings.Join(parts[1:len(parts)-1], "/"))]++
		} else {
			out["(interprocedural)"]++
		}
	}
	return out
}

// DebtReport renders the suppression-debt tally: per-package counts of
// in-source suppressions plus baselined findings, with totals.
func DebtReport(current map[string]DebtCounts, b *Baseline) string {
	perPkg := map[string]int{}
	if b != nil {
		perPkg = b.baselinedPerPackage()
	}
	keys := map[string]bool{}
	for k := range current {
		keys[k] = true
	}
	for k := range perPkg {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var sb strings.Builder
	var tOrd, tSpec, tBase int
	for _, k := range sorted {
		c := current[k]
		nb := perPkg[k]
		fmt.Fprintf(&sb, "%-40s ordered=%-3d speculative=%-3d baselined=%d\n", k, c.Ordered, c.Speculative, nb)
		tOrd += c.Ordered
		tSpec += c.Speculative
		tBase += nb
	}
	fmt.Fprintf(&sb, "%-40s ordered=%-3d speculative=%-3d baselined=%d\n", "TOTAL", tOrd, tSpec, tBase)
	return sb.String()
}

// CompareDebt checks the recomputed tally against the ledger's pinned one.
// Any drift fails, with direction-specific messages: growth is unreviewed
// new debt, shrinkage is a stale ledger.
func CompareDebt(current map[string]DebtCounts, b *Baseline) []string {
	var errs []string
	keys := map[string]bool{}
	for k := range current {
		keys[k] = true
	}
	for k := range b.Debt {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		cur, pin := current[k], b.Debt[k]
		check := func(kind string, c, p int) {
			switch {
			case c > p:
				errs = append(errs, fmt.Sprintf("%s: //lint:%s count grew %d -> %d; new suppressions need review — update the baseline debt in the same commit", k, kind, p, c))
			case c < p:
				errs = append(errs, fmt.Sprintf("%s: //lint:%s count shrank %d -> %d; ratchet the baseline debt down to match", k, kind, p, c))
			}
		}
		check("ordered", cur.Ordered, pin.Ordered)
		check("speculative", cur.Speculative, pin.Speculative)
	}
	return errs
}
