// Package par provides the deterministic worker-pool primitives shared by
// the pipeline's hot paths: candidate evaluation in resynthesis, fault
// partitioning in fault simulation, and independent circuits/rows in the
// experiment driver.
//
// The contract throughout is that parallelism never changes results: tasks
// write only task-indexed state (or insert into pure-function caches), so
// the output of every fan-out is bit-identical for any worker count,
// including 1. Which worker runs which task IS nondeterministic (tasks are
// claimed from an atomic counter), so anything order- or worker-dependent
// must be derived per task — see SeedFor for deterministic per-key RNG
// seeding.
package par

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"compsynth/internal/obs"
)

// Pool metrics (process-wide; atomic adds only).
var (
	mRuns  = obs.C("par.parallel_runs")
	mTasks = obs.C("par.tasks")
)

// Workers resolves a worker-count option: n <= 0 selects
// runtime.GOMAXPROCS(0) (all available CPUs), anything else is returned
// as-is. This is the shared meaning of Options.Workers / -workers across
// the pipeline.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn(worker, task) for every task in [0, n), distributing the
// tasks over min(Workers(workers), n) goroutines via an atomic claim
// counter. Each task runs exactly once; worker IDs are dense in [0, w), so
// fn may index per-worker scratch state (e.g. a private simulator) with its
// worker argument. Run returns after every task has completed.
//
// With one worker (or one task) fn runs inline on the calling goroutine and
// no span is recorded, keeping the serial path identical to a plain loop.
//
// tr may be nil. When tracing is on and the fan-out is real, one span named
// name is recorded with the worker count, the task count, and per-worker
// task tallies as attributes.
func Run(tr *obs.Tracer, name string, workers, n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		mTasks.Add(int64(n))
		return
	}
	sp := tr.StartSpan(name)
	sp.SetInt("workers", int64(w))
	sp.SetInt("tasks", int64(n))
	counts := make([]int64, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
				counts[wk]++
			}
		}(wk)
	}
	wg.Wait()
	for wk, c := range counts {
		sp.SetInt(fmt.Sprintf("worker%d_tasks", wk), c)
	}
	sp.End()
	mRuns.Inc()
	mTasks.Add(int64(n))
}

// Map runs fn for every index in [0, n) with the given parallelism and
// returns the results in index order.
func Map[T any](workers, n int, fn func(task int) T) []T {
	out := make([]T, n)
	Run(nil, "par.map", workers, n, func(_, i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible tasks. All tasks run to completion; if any
// failed, the error of the lowest-indexed failing task is returned (so the
// reported error does not depend on scheduling).
func MapErr[T any](workers, n int, fn func(task int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Run(nil, "par.map", workers, n, func(_, i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SeedFor derives a deterministic RNG seed from a base seed and a string
// key (FNV-1a). Sampling-style algorithms inside parallel regions must not
// share one rand.Rand — the interleaving would leak into results — nor use
// per-worker streams with dynamically claimed tasks. Deriving the seed from
// the task's own key makes the draw a pure function of (base, key),
// independent of worker count and visit order.
func SeedFor(base int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(base) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}
