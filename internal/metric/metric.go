// Package metric is the process-wide instrument registry: named counters,
// gauges and histograms behind the pipeline's telemetry. It sits below every
// other internal package (no compsynth imports) so that even the circuit core
// can register instruments without an import cycle; internal/obs re-exports
// the whole API under its own name, and most packages keep registering
// through obs. The sftlint metricname rule audits registrations from either
// path.
package metric

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. All
// methods are safe for concurrent use; lookup methods on a nil registry
// return nil instruments, whose methods in turn no-op.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

var std = NewMetrics()

// Default returns the process-wide registry. Pipeline packages register
// their instruments here at init; commands snapshot it into the run report.
func Default() *Metrics { return std }

var live = NewMetrics()

// Live returns the process-wide live-only registry: instruments whose values
// depend on scheduling, timing or worker interleaving — queue wait/run
// histograms, per-worker task tallies, memo-cache hit rates. The telemetry
// endpoints (/metrics, /progress) surface it next to Default, but run
// reports deliberately exclude it: reports feed the obsdiff determinism
// gates, which diff deterministic quantities at tolerance zero, and a
// scheduling-dependent value there would make every CI run a coin flip.
func Live() *Metrics { return live }

// C returns (creating if needed) the counter with this name in the Default
// registry. Shorthand for package-level instrument declarations.
func C(name string) *Counter { return std.Counter(name) }

// G returns the named gauge in the Default registry.
func G(name string) *Gauge { return std.Gauge(name) }

// H returns the named histogram in the Default registry.
func H(name string) *Histogram { return std.Histogram(name) }

// Counter returns the counter registered under name, creating it if absent.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// absent.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{maxSamples: defaultMaxSamples}
		m.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (the names stay registered).
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.counters {
		c.v.Store(0)
	}
	for _, g := range m.gauges {
		g.v.Store(0)
	}
	for _, h := range m.histograms {
		h.reset()
	}
}

// Counter is a monotonically increasing count (one atomic word).
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

const defaultMaxSamples = 1 << 16

// Histogram accumulates a distribution of float64 observations. Summary
// statistics (count, sum, min, max) are exact; percentiles are computed from
// a sample buffer capped at 65536 entries (observations past the cap update
// the summaries only).
type Histogram struct {
	mu         sync.Mutex
	count      int64
	sum        float64
	min, max   float64
	samples    []float64
	maxSamples int
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.maxSamples == 0 {
		h.maxSamples = defaultMaxSamples
	}
	if len(h.samples) < h.maxSamples {
		h.samples = append(h.samples, v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the sampled
// observations by the nearest-rank method, or 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	return percentileOf(sorted, p)
}

func percentileOf(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	if p <= 0 {
		return samples[0]
	}
	if p >= 100 {
		return samples[len(samples)-1]
	}
	// Nearest rank: the smallest value with at least p% of the mass at or
	// below it.
	rank := int(p/100*float64(len(samples))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(samples) {
		rank = len(samples) - 1
	}
	return samples[rank]
}

func (h *Histogram) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.samples = h.samples[:0]
}

// DefaultBucketBounds are the cumulative-bucket upper bounds attached to
// every histogram snapshot: a 1-2.5-5 ladder over six decades, wide enough
// for both the size-style distributions (candidate inputs, backtracks) and
// millisecond timings the pipeline observes. The +Inf bucket is implicit
// (it always equals Count).
var DefaultBucketBounds = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 100000, 1e6,
}

// Bucket is one cumulative histogram bucket: Count observations were <= LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramStats is the JSON-friendly summary of a histogram. Buckets are
// cumulative counts of the sampled observations over DefaultBucketBounds
// (the sample buffer is capped, so past the cap they undercount; Count and
// Sum stay exact).
type HistogramStats struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) stats() HistogramStats {
	h.mu.Lock()
	s := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 50)
	s.P90 = percentileSorted(sorted, 90)
	s.P99 = percentileSorted(sorted, 99)
	if len(sorted) > 0 {
		s.Buckets = make([]Bucket, len(DefaultBucketBounds))
		i := 0
		for bi, le := range DefaultBucketBounds {
			for i < len(sorted) && sorted[i] <= le {
				i++
			}
			s.Buckets[bi] = Bucket{LE: le, Count: int64(i)}
		}
	}
	return s
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Snapshot is a point-in-time copy of every registered instrument.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every instrument in the registry.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for name, c := range m.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(m.gauges))
		for name, g := range m.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(m.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(m.histograms))
		for name, h := range m.histograms {
			s.Histograms[name] = h.stats()
		}
	}
	return s
}

// Diff returns the counter-wise difference now-minus-base, dropping zero
// deltas and never-observed histograms. Gauges and the surviving histograms
// are taken from the later snapshot as-is.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	d := Snapshot{Gauges: s.Gauges}
	if len(s.Counters) > 0 {
		d.Counters = map[string]int64{}
		for name, v := range s.Counters {
			if delta := v - base.Counters[name]; delta != 0 {
				d.Counters[name] = delta
			}
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = map[string]HistogramStats{}
		for name, h := range s.Histograms {
			if h.Count > 0 {
				d.Histograms[name] = h
			}
		}
	}
	return d
}

// Format renders the snapshot as sorted "name value" lines (for -v output).
func (s Snapshot) Format() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%-40s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%-40s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%-40s n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%.0f",
			name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
