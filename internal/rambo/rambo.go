package rambo

import (
	"fmt"

	"compsynth/internal/circuit"
	"compsynth/internal/logic"
	"compsynth/internal/paths"
	"compsynth/internal/simulate"
	"compsynth/internal/subckt"
)

// Options configures the baseline optimizer.
type Options struct {
	K             int  // cut input limit
	MaxCandidates int  // cuts per node
	MaxPasses     int  // fixpoint cap
	Verify        bool // equivalence check per pass
	TryComplement bool // also minimize the offset and invert
	Seed          int64
}

// DefaultOptions mirrors the paper's comparison setup (K = 6 in Table 3).
func DefaultOptions() Options {
	return Options{K: 6, MaxCandidates: 24, MaxPasses: 12, Verify: true, TryComplement: true, Seed: 1993}
}

// Result reports an optimization run.
type Result struct {
	Circuit      *circuit.Circuit
	Passes       int
	Replacements int
	GatesBefore  int
	GatesAfter   int
	PathsBefore  uint64
	PathsAfter   uint64
}

func (r *Result) String() string {
	return fmt.Sprintf("passes=%d repl=%d gates %d->%d paths %d->%d",
		r.Passes, r.Replacements, r.GatesBefore, r.GatesAfter, r.PathsBefore, r.PathsAfter)
}

// Optimize resubstitutes K-input cones by minimized factored realizations
// whenever that reduces the equivalent-2-input gate count. The input circuit
// is not modified.
func Optimize(c *circuit.Circuit, opt Options) (*Result, error) {
	if opt.K <= 0 || opt.MaxPasses <= 0 {
		return nil, fmt.Errorf("rambo: invalid options")
	}
	poNames := c.PONames()
	work := c.Clone()
	work.Simplify()
	work, _ = work.Compact()
	res := &Result{GatesBefore: c.Equiv2Count(), PathsBefore: paths.MustCount(c)}
	cache := map[string][]Cube{}
	for pass := 0; pass < opt.MaxPasses; pass++ {
		before := work.Clone()
		n := onePass(work, opt, cache)
		res.Passes++
		res.Replacements += n
		work.Simplify()
		work, _ = work.Compact()
		if opt.Verify && !simulate.EquivalentRandom(before, work, 32, 14, opt.Seed+int64(pass)) {
			return nil, fmt.Errorf("rambo: pass %d broke equivalence", pass)
		}
		if n == 0 {
			break
		}
	}
	work.PreservePONames(poNames)
	res.Circuit = work
	res.GatesAfter = work.Equiv2Count()
	res.PathsAfter = paths.MustCount(work)
	return res, nil
}

func onePass(c *circuit.Circuit, opt Options, cache map[string][]Cube) int {
	db := subckt.ComputeCuts(c, opt.K, opt.MaxCandidates)
	topo := c.Topo()
	replaced := 0
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		if !c.Alive(g) {
			continue
		}
		nd := c.Nodes[g]
		if nd.Type == circuit.Input || nd.Type == circuit.Const0 || nd.Type == circuit.Const1 {
			continue
		}
		type plan struct {
			sub        *subckt.Subcircuit
			cubes      []Cube
			complement bool
			keepInputs []int
			save       int
		}
		var best *plan
		for _, sub := range db.EnumerateFromCuts(c, g) {
			tt := sub.Extract(c)
			stt, kept := tt.Shrink()
			if stt.Vars() == 0 {
				continue
			}
			keepInputs := make([]int, len(kept))
			for j, v := range kept {
				keepInputs[j] = sub.Inputs[v-1]
			}
			for _, compl := range complements(opt) {
				f := stt
				if compl {
					f = stt.Not()
				}
				cubes := minimizeCached(cache, f)
				cost, _ := FactoredCost(f.Vars(), cubes)
				save := sub.GateSavings(c) - cost
				if best == nil || save > best.save {
					best = &plan{sub: sub, cubes: cubes, complement: compl,
						keepInputs: keepInputs, save: save}
				}
			}
		}
		if best == nil || best.save <= 0 {
			continue
		}
		n := len(best.keepInputs)
		out := BuildFactored(c, n, best.cubes, best.keepInputs, fmt.Sprintf("rb%d_", g))
		if best.complement {
			out = c.AddGate(circuit.Not, fmt.Sprintf("rb%d_inv", g), out)
		}
		if out == g {
			continue
		}
		c.ReplaceUses(g, out)
		c.SweepDead()
		replaced++
	}
	return replaced
}

func complements(opt Options) []bool {
	if opt.TryComplement {
		return []bool{false, true}
	}
	return []bool{false}
}

func minimizeCached(cache map[string][]Cube, tt logic.TT) []Cube {
	key := fmt.Sprintf("%d:%x", tt.Vars(), tt.Words())
	if c, ok := cache[key]; ok {
		return c
	}
	c := Minimize(tt)
	cache[key] = c
	return c
}
