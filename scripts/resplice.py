#!/usr/bin/env python3
"""Replace the measured blocks in EXPERIMENTS.md with a newer tables run.

Usage: python3 scripts/resplice.py tables_output.txt
"""
import re
import sys


def main():
    src = open(sys.argv[1]).read()
    md = open("EXPERIMENTS.md").read()

    suite = "\n".join(l for l in src.splitlines() if l.startswith("#   "))
    md = re.sub(r"```\n#   rs1423.*?```", "```\n" + suite + "\n```", md, flags=re.S)

    for title, stop in [
        ("Table 2:", "# table 2"), ("Table 3:", "# table 3"),
        ("Table 4\\(a\\):", "# table 4"), ("Table 5:", "# table 5"),
        ("Table 6:", "# table 6"), ("Table 7:", "# table 7"),
    ]:
        m = re.search(title + r".*?(?=" + stop + ")", src, re.S)
        if not m:
            continue
        block = m.group(0).rstrip()
        md = re.sub(r"```\n" + title + r".*?```",
                    "```\n" + block + "\n```", md, flags=re.S)

    scale = re.search(r"scale=([0-9.]+)", src)
    total = re.search(r"# total (.+)", src)
    if scale and total:
        md = re.sub(r"Recorded run: .*\n",
                    "Recorded run: `go run ./cmd/tables -scale %s` "
                    "(wall clock %s, single core).\n" % (scale.group(1), total.group(1)),
                    md)
    open("EXPERIMENTS.md", "w").write(md)
    print("EXPERIMENTS.md re-spliced")


if __name__ == "__main__":
    main()
