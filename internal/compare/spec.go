// Package compare implements the paper's primary contribution: comparison
// functions and comparison units.
//
// A function f(y1..yn) is a comparison function (Definition 1) if there is a
// permutation (x1..xn) of its inputs and bounds L <= U such that, reading
// (x1..xn) as a binary number with x1 the most significant bit, f = 1 exactly
// on the minterms m with L <= m <= U. Such functions are implemented by
// comparison units: a >=L block and a <=U block feeding an AND gate, with the
// free-variable and trivial-bound simplifications of Section 3.2.
package compare

import (
	"fmt"

	"compsynth/internal/circuit"
	"compsynth/internal/logic"
)

// Spec describes a comparison-function realization of a function f over N
// inputs: under the permutation Perm (position i, 0-based, holds original
// input Perm[i]), the onset of f — or of its complement when Complement is
// set — is exactly the interval [L, U].
type Spec struct {
	N          int
	Perm       []int
	L, U       int
	Complement bool
}

func (s Spec) String() string {
	c := ""
	if s.Complement {
		c = " (complemented)"
	}
	return fmt.Sprintf("cmp{n=%d perm=%v L=%d U=%d%s}", s.N, s.Perm, s.L, s.U, c)
}

// lbit returns bit i (1-based position, 1 = MSB) of L.
func (s Spec) lbit(i int) int { return (s.L >> (s.N - i)) & 1 }

// ubit returns bit i of U.
func (s Spec) ubit(i int) int { return (s.U >> (s.N - i)) & 1 }

// FreeCount returns the number of free variables (Definition 2): the longest
// prefix of positions on which L and U agree.
func (s Spec) FreeCount() int {
	f := 0
	for i := 1; i <= s.N; i++ {
		if s.lbit(i) != s.ubit(i) {
			break
		}
		f++
	}
	return f
}

// suffix returns the value of bits i..N of x (i is 1-based).
func (s Spec) suffix(x, i int) int {
	if i > s.N {
		return 0
	}
	return x & ((1 << (s.N - i + 1)) - 1)
}

// GeqPresent reports whether the >=L block exists (Sec. 3.2.2: it is omitted
// when the non-free part of L is all zeros).
func (s Spec) GeqPresent() bool {
	return s.suffix(s.L, s.FreeCount()+1) != 0
}

// LeqPresent reports whether the <=U block exists (omitted when the non-free
// part of U is all ones).
func (s Spec) LeqPresent() bool {
	f := s.FreeCount()
	if f >= s.N {
		return false
	}
	return s.suffix(s.U, f+1) != (1<<(s.N-f))-1
}

// InGeq reports whether position i (1-based) has a path through the >=L
// block: the variable is non-free and bits i..N of L are not all zero.
func (s Spec) InGeq(i int) bool {
	return i > s.FreeCount() && s.suffix(s.L, i) != 0
}

// InLeq reports whether position i has a path through the <=U block.
func (s Spec) InLeq(i int) bool {
	return i > s.FreeCount() && s.suffix(s.U, i) != (1<<(s.N-i+1))-1
}

// Kp returns the number of paths from position i (1-based) to the unit
// output: 1 for a free variable, and the number of blocks the variable
// participates in otherwise (0, 1 or 2). This is the K_p of Section 2.
func (s Spec) Kp(i int) int {
	if i <= s.FreeCount() {
		return 1
	}
	k := 0
	if s.InGeq(i) {
		k++
	}
	if s.InLeq(i) {
		k++
	}
	return k
}

// KpOriginal returns Kp for the original (unpermuted) input index (0-based).
func (s Spec) KpOriginal(orig int) int {
	for i, p := range s.Perm {
		if p == orig {
			return s.Kp(i + 1)
		}
	}
	panic("compare: input index not in permutation")
}

// GateCost returns the equivalent-2-input gate count of the unit: each block
// with t participating variables costs t-1 gates, the output AND costs
// (#terms - 1), and inverters are free (weight 0), matching the paper's
// metric.
func (s Spec) GateCost() int {
	f := s.FreeCount()
	cost, terms := 0, f
	tGeq, tLeq := 0, 0
	for i := f + 1; i <= s.N; i++ {
		if s.InGeq(i) {
			tGeq++
		}
		if s.InLeq(i) {
			tLeq++
		}
	}
	if tGeq > 0 {
		cost += tGeq - 1
		terms++
	}
	if tLeq > 0 {
		cost += tLeq - 1
		terms++
	}
	if terms > 1 {
		cost += terms - 1
	}
	return cost
}

// PathCost returns the number of paths arriving at the unit output when the
// unit input for original variable j carries np[j] incoming paths:
// sum over j of np[j] * Kp(j). Used as Procedure 2's tie-break and
// Procedure 3's objective.
func (s Spec) PathCost(np []uint64) uint64 {
	if len(np) != s.N {
		panic("compare: np length mismatch")
	}
	var total uint64
	for i := 1; i <= s.N; i++ {
		total += np[s.Perm[i-1]] * uint64(s.Kp(i))
	}
	return total
}

// Table reconstructs the truth table of the function the spec describes,
// over the original variable order.
func (s Spec) Table() logic.TT {
	g := logic.FromInterval(s.N, s.L, s.U)
	if s.Complement {
		g = g.Not()
	}
	inv := make([]int, s.N)
	for i, p := range s.Perm {
		inv[p] = i
	}
	return g.Permute(inv)
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.N < 0 || s.N > logic.MaxVars {
		return fmt.Errorf("compare: bad N=%d", s.N)
	}
	if len(s.Perm) != s.N {
		return fmt.Errorf("compare: perm length %d != N %d", len(s.Perm), s.N)
	}
	seen := make([]bool, s.N)
	for _, p := range s.Perm {
		if p < 0 || p >= s.N || seen[p] {
			return fmt.Errorf("compare: invalid permutation %v", s.Perm)
		}
		seen[p] = true
	}
	if s.L < 0 || s.U >= 1<<s.N || s.L > s.U {
		return fmt.Errorf("compare: invalid bounds L=%d U=%d for n=%d", s.L, s.U, s.N)
	}
	return nil
}

// BuildOptions controls unit construction.
type BuildOptions struct {
	// Merge combines consecutive same-type 2-input gates into one k-input
	// gate (Figure 4). Off, the blocks are pure 2-input chains (Figure 2).
	Merge bool
	// NamePrefix prefixes generated node names.
	NamePrefix string
}

// Build appends a comparison unit implementing the spec to c. inputs[j] is
// the node carrying original variable y_{j+1}. It returns the node ID of the
// unit output. The construction follows Figures 1-5: per-position gates
// chosen by the bound bits, constant folding for trivial tails, free
// variables wired (possibly inverted) straight into the output AND, and an
// output inverter when Complement is set.
func (s Spec) Build(c *circuit.Circuit, inputs []int, opt BuildOptions) int {
	if len(inputs) != s.N {
		panic("compare: Build input count mismatch")
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	pfx := opt.NamePrefix
	inv := map[int]int{} // cached inverters, keyed by source node
	notOf := func(id int) int {
		if g, ok := inv[id]; ok {
			return g
		}
		g := c.AddGate(circuit.Not, pfx+"inv_"+c.Nodes[id].Name, id)
		inv[id] = g
		return g
	}
	in := func(i int) int { return inputs[s.Perm[i-1]] } // position -> node

	f := s.FreeCount()

	created := map[int]bool{} // chain gates built here, eligible for merging

	// >=L block over positions f+1..N, built from the LSB up.
	geq := -1
	for i := s.N; i > f; i-- {
		lit := in(i)
		if s.lbit(i) == 1 {
			if geq < 0 {
				geq = lit
			} else {
				geq = chain(c, circuit.And, lit, geq, opt, created, pfx, "geq")
			}
		} else if geq >= 0 {
			geq = chain(c, circuit.Or, lit, geq, opt, created, pfx, "geq")
		}
	}

	// <=U block over positions f+1..N, on inverted literals.
	leq := -1
	for i := s.N; i > f; i-- {
		if s.ubit(i) == 0 {
			nlit := notOf(in(i))
			if leq < 0 {
				leq = nlit
			} else {
				leq = chain(c, circuit.And, nlit, leq, opt, created, pfx, "leq")
			}
		} else if leq >= 0 {
			leq = chain(c, circuit.Or, notOf(in(i)), leq, opt, created, pfx, "leq")
		}
	}

	var terms []int
	if geq >= 0 {
		terms = append(terms, geq)
	}
	if leq >= 0 {
		terms = append(terms, leq)
	}
	for i := 1; i <= f; i++ {
		if s.lbit(i) == 1 {
			terms = append(terms, in(i))
		} else {
			terms = append(terms, notOf(in(i)))
		}
	}

	var out int
	switch len(terms) {
	case 0:
		out = c.AddGate(circuit.Const1, pfx+"one")
	case 1:
		out = terms[0]
	default:
		out = c.AddGate(circuit.And, pfx+"unit", terms...)
	}
	if s.Complement {
		out = c.AddGate(circuit.Not, pfx+"cmpl", out)
	}
	return out
}

// chain adds gate t(lit, prev), merging into prev when it is a same-type
// gate freshly created for this unit and merging is enabled (Figure 4).
func chain(c *circuit.Circuit, t circuit.GateType, lit, prev int, opt BuildOptions, created map[int]bool, pfx, tag string) int {
	if opt.Merge && created[prev] && c.Nodes[prev].Type == t {
		c.AddFaninFront(prev, lit)
		return prev
	}
	id := c.AddGate(t, fmt.Sprintf("%s%s_%d", pfx, tag, c.NumLive()), lit, prev)
	created[id] = true
	return id
}

// BuildStandalone constructs the unit as its own circuit with inputs named
// y1..yN (original order) and a single output.
func (s Spec) BuildStandalone(name string, opt BuildOptions) *circuit.Circuit {
	c := circuit.New(name)
	inputs := make([]int, s.N)
	for j := range inputs {
		inputs[j] = c.AddInput(fmt.Sprintf("y%d", j+1))
	}
	out := s.Build(c, inputs, opt)
	if out < len(c.Nodes) && c.Nodes[out].Type == circuit.Input {
		// The unit degenerates to a wire; add a buffer so the circuit has a
		// distinct output node.
		out = c.AddGate(circuit.Buf, "unit_buf", out)
	}
	c.MarkOutput(out)
	return c
}
