// Command sft runs the synthesis-for-testability flow on a .bench netlist:
// optional redundancy removal, Procedure 2 or 3 resynthesis, optional
// post-pass redundancy removal, and a testability report.
//
// Usage:
//
//	sft -in circuit.bench [-out out.bench] [-objective gates|paths|combined]
//	    [-k 5] [-sampling] [-redundancy] [-report]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"compsynth"
	"compsynth/internal/redundancy"
	"compsynth/internal/resynth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sft: ")
	var (
		in        = flag.String("in", "", "input .bench netlist (required)")
		out       = flag.String("out", "", "output .bench netlist (optional)")
		objective = flag.String("objective", "gates", "gates (Procedure 2), paths (Procedure 3) or combined")
		k         = flag.Int("k", 5, "subcircuit input limit K")
		sampling  = flag.Bool("sampling", false, "use the paper's 200-permutation identification")
		redund    = flag.Bool("redundancy", true, "apply redundancy removal after resynthesis")
		maxUnits  = flag.Int("max-units", 1, "allow ORs of up to this many comparison units (Sec. 6 ext.)")
		useSDC    = flag.Bool("sdc", false, "use reachability don't-cares during identification (Sec. 6 ext.)")
		report    = flag.Bool("report", false, "print a testability report (stuck-at + path delay)")
		seed      = flag.Int64("seed", 1995, "seed for campaigns")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	c, err := compsynth.LoadBench(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %v\n", *in, c.Stats())
	p0, err := compsynth.CountPaths(c)
	if err != nil {
		log.Fatalf("path count: %v (use smaller circuits; count exceeds uint64)", err)
	}
	fmt.Printf("paths: %d\n", p0)

	opt := resynth.DefaultOptions()
	opt.K = *k
	opt.UseSampling = *sampling
	opt.MaxUnits = *maxUnits
	opt.UseSDC = *useSDC
	opt.Seed = *seed
	switch *objective {
	case "gates":
		opt.Objective = resynth.MinGates
	case "paths":
		opt.Objective = resynth.MinPaths
	case "combined":
		opt.Objective = resynth.Combined
	default:
		log.Fatalf("unknown objective %q", *objective)
	}
	res, err := compsynth.Optimize(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resynthesis (%s, K=%d): %v\n", *objective, *k, res)

	final := res.Circuit
	if *redund {
		ropt := redundancy.DefaultOptions()
		rr, err := redundancy.Remove(final, ropt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("redundancy removal: %v\n", rr)
		final = rr.Circuit
	}
	if !compsynth.Equivalent(c, final) {
		log.Fatal("internal error: result not equivalent to input")
	}
	fmt.Printf("final: %v, paths %d\n", final.Stats(), mustPaths(final))

	if *report {
		sa := compsynth.StuckAtCampaign(final, 1<<16, *seed)
		fmt.Printf("stuck-at: %d faults, %d undetected after %d random patterns (eff. %d)\n",
			sa.TotalFaults, len(sa.Remaining), sa.Patterns, sa.LastEffective)
		pd := compsynth.PathDelayCampaign(final, 10000, 1000, *seed)
		fmt.Printf("robust PDF: %d/%d detected (%.2f%%), eff. pair %d\n",
			pd.Detected, pd.TotalFaults, 100*pd.Coverage(), pd.LastEffective)
	}
	if *out != "" {
		if err := compsynth.SaveBench(final, *out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func mustPaths(c *compsynth.Circuit) uint64 {
	n, err := compsynth.CountPaths(c)
	if err != nil {
		return 0
	}
	return n
}
