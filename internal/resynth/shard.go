package resynth

// Region-sharded parallel resynthesis with optimistic conflict detection.
//
// The serial sweep (pass in resynth.go) visits gates in reverse canonical
// order, evaluating each candidate set against the current circuit and
// applying winners immediately. The sharded sweep splits that into three
// phases per round, OCC-style:
//
//  1. Plan (serial): compute every pending gate's read/write footprint on
//     the frozen CSR view — its cut cones plus the consumers of every cone
//     gate — and union-find gates with overlapping footprints into disjoint
//     regions. Non-overlapping regions read disjoint state, so they are
//     provably independent.
//  2. Speculate (parallel): workers claim whole regions from a par.Queue
//     and run the full select-replacement evaluation for each gate
//     speculatively — reading the circuit, never writing it — buffering
//     the decision, candidate counters, and trace records into a gateEval.
//  3. Commit (serial): walk the canonical (level, id) order exactly as the
//     serial sweep does, replaying each speculation's side effects and
//     applying accepted replacements. Before a speculation is used it is
//     validated against the edit journal: every committed edit stamps the
//     nodes it touched (plus their fanins, which covers fanout-list growth
//     the journal cannot see) with a commit sequence number, and a
//     speculation whose footprint contains a node stamped after its epoch
//     is stale — the loser is aborted and re-queued, together with every
//     other pending speculation already invalidated, for one more
//     speculation round before the walk resumes.
//
// Because the commit phase makes every decision in the canonical serial
// order from validated speculations — and a stale speculation is recomputed
// rather than trusted — the optimized netlist, the decision-trace stream,
// the certificate evidence, and the run-report counters are byte-identical
// to the serial sweep at every worker count (TestShardedMatchesSerial, and
// the CI determinism gate over sft/sftexplain artifacts).

import (
	"fmt"
	"sort"

	"compsynth/internal/circuit"
	"compsynth/internal/metric"
	"compsynth/internal/obs"
	"compsynth/internal/obs/dtrace"
	"compsynth/internal/par"
)

// Shard telemetry. Conflict/re-queue behavior depends on region shapes but
// the *counts* here are deterministic for a given input (validation compares
// deterministic footprints against deterministic commit stamps); they still
// live in the Live registry — visible on /metrics and /progress, absent from
// run reports — because they describe machinery, not results, and must not
// widen the obsdiff zero-tolerance surface.
var (
	lShardRegions   = metric.Live().Counter("resynth.shard_regions")
	lShardConflicts = metric.Live().Counter("resynth.shard_conflicts")
	lShardRequeues  = metric.Live().Counter("resynth.shard_requeues")
	lShardCommits   = metric.Live().Counter("resynth.shard_commits")
)

// gateEval is one speculative evaluation of a gate: the decision plus every
// global side effect the serial sweep would have performed, buffered for the
// commit phase to replay in canonical order.
type gateEval struct {
	best   *candidate      // accepted replacement, nil to keep
	recs   []dtrace.Record // resolved trace records, nil when tracing is off
	nCand  int64           // candidates examined (mCandidates replay)
	widths []float64       // candidate input widths (hCandInputs replay)
	epoch  uint64          // commit sequence the speculation ran against
}

// shardRegion is one unit of speculative work: gates with overlapping
// footprints, in canonical commit order.
type shardRegion struct {
	gates []int
}

// shardState is the per-pass bookkeeping of the sharded sweep.
type shardState struct {
	evals     []*gateEval // per sparse id; nil = never speculated
	fps       [][]int32   // per sparse id: footprint at speculation time
	lastWrite []uint64    // per sparse id: commit sequence of the last edit
	commitSeq uint64
	queue     *par.Queue[shardRegion]
	fpr       *circuit.Footprinter
}

func newShardState(c *circuit.Circuit) *shardState {
	n := len(c.Nodes)
	return &shardState{
		evals:     make([]*gateEval, n),
		fps:       make([][]int32, n),
		lastWrite: make([]uint64, n),
		queue:     par.NewQueue[shardRegion](),
	}
}

// stale reports whether ev (a speculation for gate g) read state that a
// later commit has overwritten: any footprint node stamped after its epoch.
func (s *shardState) stale(g int, ev *gateEval) bool {
	for _, n := range s.fps[g] {
		if int(n) < len(s.lastWrite) && s.lastWrite[n] > ev.epoch {
			return true
		}
	}
	return false
}

// shardGates returns the pass snapshot's candidate gates — every live
// non-input, non-constant node — in canonical commit order (reverse topo).
func (o *optimizer) shardGates(c *circuit.Circuit) []int {
	topo := o.topo
	gates := make([]int, 0, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		t := c.Nodes[g].Type
		if t == circuit.Input || t == circuit.Const0 || t == circuit.Const1 {
			continue
		}
		gates = append(gates, g)
	}
	return gates
}

// computeFootprints fills s.fps for the given gates from the circuit's
// current frozen view: the union over the gate's cuts of each cut cone, cut
// nodes, and cone-gate consumers. Serial phase only (Freeze and the walker
// mutate caches/scratch).
func (o *optimizer) computeFootprints(c *circuit.Circuit, s *shardState, gates []int) {
	v := c.Freeze()
	if s.fpr == nil {
		s.fpr = circuit.NewFootprinter(v)
	} else {
		s.fpr.Rebind(v)
	}
	for _, g := range gates {
		s.fpr.Reset()
		for _, cut := range o.db.Cuts(g) {
			s.fpr.AddCone(g, cut)
		}
		s.fps[g] = append(s.fps[g][:0], s.fpr.Footprint()...)
	}
}

// partitionRegions groups gates whose footprints share a node into regions
// via union-find, preserving canonical commit order both across regions
// (by first member) and within each region. The partition is a pure function
// of the footprints — independent of worker count and scheduling.
func partitionRegions(gates []int, fps [][]int32, numNodes int) []shardRegion {
	parent := make([]int32, len(gates))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		switch {
		case ra == rb:
		case ra < rb:
			parent[rb] = ra
		default:
			parent[ra] = rb
		}
	}
	owner := make([]int32, numNodes)
	for i := range owner {
		owner[i] = -1
	}
	for i, g := range gates {
		for _, n := range fps[g] {
			if int(n) >= numNodes {
				continue
			}
			if o := owner[n]; o >= 0 {
				union(int32(i), o)
			} else {
				owner[n] = int32(i)
			}
		}
	}
	regionOf := make([]int32, len(gates))
	for i := range regionOf {
		regionOf[i] = -1
	}
	var regions []shardRegion
	for i, g := range gates {
		r := find(int32(i))
		k := regionOf[r]
		if k < 0 {
			k = int32(len(regions))
			regionOf[r] = k
			regions = append(regions, shardRegion{})
		}
		regions[k].gates = append(regions[k].gates, g)
	}
	return regions
}

// speculate runs one speculation round over the given pending gates:
// footprints and regions are computed serially on the current circuit
// state, then workers drain the region queue, evaluating every gate of
// their regions into s.evals. The circuit is read-only for the whole drain
// (lazy caches are made hot first), so concurrent region evaluation cannot
// race even when footprints would have allowed it to matter.
func (o *optimizer) speculate(c *circuit.Circuit, s *shardState, gates []int) {
	if len(gates) == 0 {
		return
	}
	// Make every lazily built read cache hot before fanning out: Fanouts
	// (removability) and the frozen view (footprints already forced it)
	// must not be rebuilt from a worker goroutine.
	c.RebuildFanouts()
	o.computeFootprints(c, s, gates)
	regions := partitionRegions(gates, s.fps, len(c.Nodes))
	lShardRegions.Add(int64(len(regions)))
	epoch := s.commitSeq
	for _, r := range regions {
		s.queue.Push(r)
	}
	s.queue.Drain(o.opt.Tracer, "resynth.shard", o.workers, func(_ int, r shardRegion) {
		for _, g := range r.gates {
			ev := &gateEval{epoch: epoch}
			ev.best = o.evalGate(c, g, ev)
			s.evals[g] = ev
		}
	})
}

// respeculate handles a validation failure at topo index from: it collects
// every pending gate (index from down to 0) whose speculation is stale or
// missing — the deterministic loser set — and runs one more speculation
// round for the batch before the commit walk resumes.
func (o *optimizer) respeculate(c *circuit.Circuit, s *shardState, topo []int, from int) {
	var batch []int
	for i := from; i >= 0; i-- {
		g := topo[i]
		if !c.Alive(g) {
			continue
		}
		t := c.Nodes[g].Type
		if t == circuit.Input || t == circuit.Const0 || t == circuit.Const1 {
			continue
		}
		if ev := s.evals[g]; ev == nil || s.stale(g, ev) {
			batch = append(batch, g)
		}
	}
	lShardRequeues.Add(int64(len(batch)))
	o.speculate(c, s, batch)
}

// commitApply applies an accepted replacement inside an edit-journal scope
// and stamps every node the edit moved — plus the fanins of each touched
// node, which covers the one class of read the journal cannot witness
// directly: a surviving node's fanout list growing because a freshly built
// unit gate consumes it.
func (o *optimizer) commitApply(c *circuit.Circuit, s *shardState, best *candidate) {
	c.BeginEditScope()
	o.apply(c, best)
	touched := c.EndEditScope()
	if len(touched) == 0 {
		return
	}
	s.commitSeq++
	for len(s.lastWrite) < len(c.Nodes) {
		s.lastWrite = append(s.lastWrite, 0)
	}
	for _, id := range touched {
		s.lastWrite[id] = s.commitSeq
		if c.Alive(id) {
			for _, f := range c.Nodes[id].Fanin {
				s.lastWrite[f] = s.commitSeq
			}
		}
	}
}

// passSharded is the region-sharded counterpart of the serial sweep in
// pass(): identical decisions, identical emission order, identical circuit —
// only the evaluation work is speculated in parallel. Called by pass() after
// the per-pass state (cuts, levels, path labels, SDC rows) is ready.
func (o *optimizer) passSharded(c *circuit.Circuit) int {
	topo := o.topo
	s := newShardState(c)
	o.speculate(c, s, o.shardGates(c))

	marked := make([]bool, len(c.Nodes))
	mark := func(id int) {
		for id >= len(marked) {
			marked = append(marked, false)
		}
		marked[id] = true
	}
	for _, out := range c.Outputs {
		mark(out)
	}
	replaced := 0
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		if !c.Alive(g) {
			o.traceGate(c, g, dtrace.SkippedDead, nil)
			continue
		}
		if !marked[g] {
			o.traceGate(c, g, dtrace.SkippedUnmarked, nil)
			continue
		}
		nd := c.Nodes[g]
		if nd.Type == circuit.Input || nd.Type == circuit.Const0 || nd.Type == circuit.Const1 {
			o.traceGate(c, g, dtrace.SkippedNonGate, nil)
			continue
		}
		ev := s.evals[g]
		if ev == nil || s.stale(g, ev) {
			// A committed edit overlapped this speculation's footprint: the
			// loser aborts and re-queues with every other invalidated
			// pending speculation, deterministically.
			lShardConflicts.Inc()
			o.respeculate(c, s, topo, i)
			ev = s.evals[g]
		}
		// Replay the speculation's buffered side effects exactly where the
		// serial sweep would have produced them.
		mCandidates.Add(ev.nCand)
		for _, w := range ev.widths {
			hCandInputs.Observe(w)
		}
		if o.dt != nil {
			for j := range ev.recs {
				o.dt.Emit(ev.recs[j])
			}
		}
		obs.EmitProgress("resynth.candidates", mCandidates.Value(), 0)
		lShardCommits.Inc()
		best := ev.best
		if best != nil {
			o.traceGate(c, g, dtrace.Replaced, best)
			o.commitApply(c, s, best)
			mReplacements.Inc()
			replaced++
			for _, in := range best.sub.Inputs {
				mark(in)
			}
		} else {
			o.traceGate(c, g, dtrace.Kept, nil)
			for _, f := range nd.Fanin {
				mark(f)
			}
		}
	}
	return replaced
}

// ---------------------------------------------------------------------------
// Exported partition audit surface (FuzzRegionPartition, tests).

// Region is one shard of a pass snapshot's candidate gates: gates whose
// read/write footprints overlap, transitively.
type Region struct {
	Gates      []int   // candidate gate ids, canonical commit order
	Footprints [][]int // Footprints[i] is Gates[i]'s footprint, sorted ascending
	Nodes      []int   // union of the footprints, sorted ascending
}

// Partition is the region decomposition the sharded sweep would use for the
// first pass over c: a cover of the candidate gates by disjoint regions with
// disjoint node sets, every gate's footprint contained in its region.
type Partition struct {
	Candidates []int // every candidate gate id, canonical commit order
	Regions    []Region
}

// Check verifies the partition invariants the sharded sweep's independence
// argument rests on: every region non-empty with one footprint per gate,
// every candidate gate assigned to exactly one region, footprints non-empty
// and contained in their region's node set, and region node sets pairwise
// disjoint. It returns the first violation found, or nil.
func (p *Partition) Check() error {
	seenGate := map[int]int{}
	for ri, r := range p.Regions {
		if len(r.Gates) == 0 {
			return fmt.Errorf("region %d is empty", ri)
		}
		if len(r.Footprints) != len(r.Gates) {
			return fmt.Errorf("region %d: %d footprints for %d gates", ri, len(r.Footprints), len(r.Gates))
		}
		nodes := map[int]bool{}
		for _, n := range r.Nodes {
			nodes[n] = true
		}
		for gi, g := range r.Gates {
			if prev, dup := seenGate[g]; dup {
				return fmt.Errorf("gate %d in regions %d and %d", g, prev, ri)
			}
			seenGate[g] = ri
			if len(r.Footprints[gi]) == 0 {
				return fmt.Errorf("gate %d has an empty footprint", g)
			}
			for _, n := range r.Footprints[gi] {
				if !nodes[n] {
					return fmt.Errorf("region %d: gate %d footprint node %d outside region node set", ri, g, n)
				}
			}
		}
	}
	for _, g := range p.Candidates {
		if _, ok := seenGate[g]; !ok {
			return fmt.Errorf("candidate gate %d not assigned to any region", g)
		}
	}
	if len(seenGate) != len(p.Candidates) {
		return fmt.Errorf("%d gates assigned, %d candidates", len(seenGate), len(p.Candidates))
	}
	seenNode := map[int]int{}
	for ri, r := range p.Regions {
		for _, n := range r.Nodes {
			if prev, dup := seenNode[n]; dup {
				return fmt.Errorf("node %d in regions %d and %d (regions must be disjoint)", n, prev, ri)
			}
			seenNode[n] = ri
		}
	}
	return nil
}

// ComputePartition normalizes c exactly as Optimize does (clone, simplify,
// compact), builds the first pass's derived state, and returns the region
// partition of that snapshot. Exported for audit: the fuzz harness asserts
// the cover/disjointness/containment invariants on arbitrary netlists.
func ComputePartition(c *circuit.Circuit, opt Options) (*Partition, error) {
	if opt.K <= 0 || opt.MaxPasses <= 0 {
		return nil, fmt.Errorf("resynth: invalid options K=%d passes=%d", opt.K, opt.MaxPasses)
	}
	work := c.Clone()
	work.Simplify()
	work, _ = work.Compact()
	o := &optimizer{opt: opt, workers: 1}
	o.rebuildFull(work)
	s := newShardState(work)
	gates := o.shardGates(work)
	o.computeFootprints(work, s, gates)
	regions := partitionRegions(gates, s.fps, len(work.Nodes))
	p := &Partition{Candidates: gates, Regions: make([]Region, len(regions))}
	for i, r := range regions {
		out := Region{Gates: r.gates, Footprints: make([][]int, len(r.gates))}
		seen := map[int]bool{}
		for j, g := range r.gates {
			fp := make([]int, len(s.fps[g]))
			for k, n := range s.fps[g] {
				fp[k] = int(n)
			}
			sort.Ints(fp)
			out.Footprints[j] = fp
			for _, n := range fp {
				if !seen[n] {
					seen[n] = true
					out.Nodes = append(out.Nodes, n)
				}
			}
		}
		sort.Ints(out.Nodes)
		p.Regions[i] = out
	}
	return p, nil
}
