package delay

import (
	"math/rand"

	"compsynth/internal/circuit"
	"compsynth/internal/obs"
	"compsynth/internal/paths"
)

// Campaign metrics.
var (
	mPairs       = obs.C("delay.pairs_simulated")
	mPDFDetected = obs.C("delay.path_faults_detected")
)

// Robust sensitization (Lin-Reddy conditions): an on-path transition
// propagates robustly through a gate iff
//
//   - when the transition moves TOWARD the gate's controlling value, every
//     side input holds the steady non-controlling value (S1 for AND/NAND,
//     S0 for OR/NOR);
//   - when it moves AWAY from the controlling value, every side input
//     settles at the non-controlling value, possibly with a same-direction
//     transition (S1 or R for AND/NAND, S0 or F for OR/NOR);
//   - NOT/BUF propagate unconditionally; XOR/XNOR require all side inputs
//     steady.

// sideOK reports whether side-input value s permits robust propagation of
// on-input value t (R or F) through a gate of type gt.
func sideOK(gt circuit.GateType, t, s V5) bool {
	switch gt {
	case circuit.Not, circuit.Buf:
		return true
	case circuit.And, circuit.Nand:
		if t == F { // toward controlling 0
			return s == S1
		}
		return s == S1 || s == R
	case circuit.Or, circuit.Nor:
		if t == R { // toward controlling 1
			return s == S0
		}
		return s == S0 || s == F
	case circuit.Xor, circuit.Xnor:
		return s == S0 || s == S1
	}
	return false
}

// EdgeRobust reports whether the fanin edge (pin `pin` of gate id) is
// robustly sensitized under the node values val: the on-input carries a
// transition, the gate output carries the corresponding transition, and all
// side inputs satisfy the robust conditions.
func EdgeRobust(c *circuit.Circuit, val []V5, id, pin int) bool {
	nd := c.Nodes[id]
	t := val[nd.Fanin[pin]]
	if t != R && t != F {
		return false
	}
	out := val[id]
	if out != R && out != F {
		return false
	}
	for i, f := range nd.Fanin {
		if i == pin {
			continue
		}
		if !sideOK(nd.Type, t, val[f]) {
			return false
		}
	}
	return true
}

// PathRobust reports whether the structural path (a PI-to-PO node sequence
// with per-step pin indices) is robustly tested by the pair (v1, v2). The
// launch transition is val[path[0]].
func PathRobust(c *circuit.Circuit, nodesOnPath []int, pins []int, v1, v2 []bool) bool {
	if len(nodesOnPath) < 1 || len(pins) != len(nodesOnPath)-1 {
		return false
	}
	val := Sim5(c, v1, v2)
	t := val[nodesOnPath[0]]
	if t != R && t != F {
		return false
	}
	for i := 1; i < len(nodesOnPath); i++ {
		if !EdgeRobust(c, val, nodesOnPath[i], pins[i-1]) {
			return false
		}
	}
	return true
}

// Path is a structural PI-to-PO path.
type Path struct {
	Nodes []int // node IDs from PI (or constant-free source) to PO driver
	Pins  []int // Pins[i] is the fanin pin of Nodes[i+1] fed by Nodes[i]
}

// edge is one fanout connection: pin `Pin` of gate `To`.
type edge struct {
	To, Pin int
}

// outEdges builds, for every node, the list of (consumer, pin) connections.
func outEdges(c *circuit.Circuit) [][]edge {
	es := make([][]edge, len(c.Nodes))
	for _, nd := range c.Nodes {
		if nd == nil || !c.Alive(nd.ID) {
			continue
		}
		for pin, f := range nd.Fanin {
			es[f] = append(es[f], edge{To: nd.ID, Pin: pin})
		}
	}
	return es
}

// EnumeratePaths lists all PI-to-PO paths, up to limit (0 = unlimited).
// Intended for small circuits (units, examples, tests); campaigns never
// enumerate.
func EnumeratePaths(c *circuit.Circuit, limit int) []Path {
	poUses := map[int]int{}
	for _, o := range c.Outputs {
		poUses[o]++
	}
	es := outEdges(c)
	var out []Path
	var nodesOnPath []int
	var pins []int
	var dfs func(id int)
	dfs = func(id int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		nodesOnPath = append(nodesOnPath, id)
		defer func() { nodesOnPath = nodesOnPath[:len(nodesOnPath)-1] }()
		for i := 0; i < poUses[id]; i++ {
			out = append(out, Path{
				Nodes: append([]int(nil), nodesOnPath...),
				Pins:  append([]int(nil), pins...),
			})
		}
		for _, e := range es[id] {
			pins = append(pins, e.Pin)
			dfs(e.To)
			pins = pins[:len(pins)-1]
		}
	}
	for _, in := range c.Inputs {
		dfs(in)
	}
	return out
}

// CampaignOptions configures a random-pattern robust PDF campaign.
type CampaignOptions struct {
	MaxPairs   int   // budget of two-pattern tests (0 = 20000)
	QuietPairs int   // stop after this many pairs with no new detection (0 = off)
	Seed       int64 // pattern generator seed
	VisitCap   int   // per-pair cap on sensitized-path completions (0 = 1<<20)
}

// CampaignResult summarizes a campaign (Table 7 columns).
type CampaignResult struct {
	TotalFaults   uint64 // 2 * number of structural paths
	Detected      int    // distinct robustly detected path delay faults
	Pairs         int    // pairs applied
	LastEffective int    // 1-based index of the last pair detecting a new fault
}

// Coverage returns detected / total.
func (r CampaignResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// RunRandom applies random two-pattern tests and counts the distinct path
// delay faults detected robustly. Detected faults are identified by a 64-bit
// FNV signature of the path's node sequence plus the launch direction, so no
// path enumeration or storage is needed; the denominator comes from
// Procedure 1.
func RunRandom(c *circuit.Circuit, opt CampaignOptions) CampaignResult {
	if opt.MaxPairs <= 0 {
		opt.MaxPairs = 20000
	}
	if opt.VisitCap <= 0 {
		opt.VisitCap = 1 << 20
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := CampaignResult{TotalFaults: 2 * paths.MustCount(c)}
	detected := map[uint64]bool{}
	es := outEdges(c)
	poUses := map[int]int{}
	for _, o := range c.Outputs {
		poUses[o]++
	}
	v1 := make([]bool, len(c.Inputs))
	v2 := make([]bool, len(c.Inputs))
	quiet := 0
	for pair := 1; pair <= opt.MaxPairs; pair++ {
		mPairs.Inc()
		for j := range v1 {
			v1[j] = rng.Intn(2) == 1
			v2[j] = rng.Intn(2) == 1
		}
		val := Sim5(c, v1, v2)
		newFound := 0
		visits := 0
		// DFS over robustly sensitized edges only; every trail reaching a
		// PO line is a robustly detected path fault. The signature mixes
		// the launch direction, the node sequence, the pin index of each
		// edge (distinguishing parallel edges) and the PO-use index
		// (distinguishing multiply-designated output lines).
		var dfs func(id int, sig uint64)
		dfs = func(id int, sig uint64) {
			if visits >= opt.VisitCap {
				return
			}
			visits++
			sig = fnvMix(sig, uint64(id))
			for i := 0; i < poUses[id]; i++ {
				k := fnvMix(sig, uint64(1_000_000_007+i))
				if !detected[k] {
					detected[k] = true
					newFound++
				}
			}
			for _, e := range es[id] {
				if EdgeRobust(c, val, e.To, e.Pin) {
					dfs(e.To, fnvMix(sig, uint64(e.Pin)))
				}
			}
		}
		for _, in := range c.Inputs {
			if val[in] == R || val[in] == F {
				dfs(in, fnvMix(fnvBasis, uint64(launchBit(val, in))))
			}
		}
		if newFound > 0 {
			res.Detected += newFound
			mPDFDetected.Add(int64(newFound))
			res.LastEffective = pair
			quiet = 0
		} else {
			quiet++
			if opt.QuietPairs > 0 && quiet >= opt.QuietPairs {
				res.Pairs = pair
				return res
			}
		}
	}
	res.Pairs = opt.MaxPairs
	return res
}

const fnvBasis = 14695981039346656037

func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

func launchBit(val []V5, id int) int {
	if val[id] == F {
		return 1
	}
	return 0
}
