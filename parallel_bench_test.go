// Parallel-scaling benchmarks: every engine below resolves Workers=0 to
// runtime.GOMAXPROCS(0), so `go test -bench 'Parallel' -cpu 1,4` sweeps the
// serial baseline against the 4-worker fan-out of the identical workload
// (results are bit-identical; only wall-clock changes). scripts/bench.sh
// records the sweep as BENCH_<date>.json.
//
// Unlike the table benches above, these rebuild their state each iteration
// (fresh Suite, fresh optimizer) so iteration 2+ cannot ride the memo
// caches and every measured iteration performs the full workload.
package compsynth

import (
	"testing"

	"compsynth/internal/exper"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	"compsynth/internal/gen"
	"compsynth/internal/resynth"
)

var parallelItems []exper.Named

// parallelSuiteItems prepares the benchmark circuits once (untimed); the
// per-iteration Suite is fresh so Procedure 2 really runs every iteration.
func parallelSuiteItems(b *testing.B) []exper.Named {
	b.Helper()
	if parallelItems == nil {
		cfg := benchConfig()
		items, err := exper.PrepareSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		parallelItems = items
	}
	return parallelItems
}

func BenchmarkTable2Parallel(b *testing.B) {
	items := parallelSuiteItems(b)
	cfg := benchConfig()
	cfg.Workers = 0 // GOMAXPROCS: -cpu sets the parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite := exper.NewSuite(cfg, items)
		if _, err := exper.Table2(suite); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultSimParallel(b *testing.B) {
	c := gen.Suite(0.2)[0].Build()
	fl := faults.Collapse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faultsim.Campaign(c, fl, faultsim.CampaignOptions{
			Patterns: 4096, Seed: int64(i), Workers: 0,
		})
	}
}

func BenchmarkResynthParallel(b *testing.B) {
	c := gen.SmallSuite()[0].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := resynth.DefaultOptions()
		opt.Verify = false
		opt.Workers = 0
		if _, err := resynth.Optimize(c, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResynthSharded is BenchmarkResynthParallel with the region-
// sharded sweep: same workload, same bit-identical result, but candidate
// evaluation fans out over footprint regions with OCC validation instead of
// the prefetch. On the single-CPU CI host the gate is allocs/op (obsdiff
// -tol-alloc 0.01 against BENCH_*_sharded.json), not wall-clock.
func BenchmarkResynthSharded(b *testing.B) {
	c := gen.SmallSuite()[0].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := resynth.DefaultOptions()
		opt.Verify = false
		opt.Workers = 0
		opt.Shard = true
		if _, err := resynth.Optimize(c, opt); err != nil {
			b.Fatal(err)
		}
	}
}
