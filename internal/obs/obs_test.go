package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	tr.TrackAllocs = false
	root := tr.StartSpan("root")
	a := tr.StartSpan("a")
	a.SetInt("n", 7)
	a.End()
	b := tr.StartSpan("b")
	c := tr.StartSpan("c")
	c.End()
	b.End()
	root.End()

	spans := tr.Export()
	if len(spans) != 1 || spans[0].Name != "root" {
		t.Fatalf("want single root span, got %+v", spans)
	}
	kids := spans[0].Children
	if len(kids) != 2 || kids[0].Name != "a" || kids[1].Name != "b" {
		t.Fatalf("root children = %+v, want [a b]", kids)
	}
	if got := kids[0].Attrs["n"]; got != int64(7) {
		t.Errorf("a.Attrs[n] = %v (%T), want 7", got, got)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "c" {
		t.Errorf("b children = %+v, want [c]", kids[1].Children)
	}
}

func TestSpanEndOutOfOrder(t *testing.T) {
	tr := NewTracer()
	tr.TrackAllocs = false
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	// Ending the parent with b still open must pop the cursor past b, so the
	// next span is a sibling of a, not a child of the abandoned b.
	a.End()
	sib := tr.StartSpan("sib")
	sib.End()
	b.End() // late; harmless
	b.End() // double End; harmless

	spans := tr.Export()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "sib" {
		t.Fatalf("roots = %+v, want [a sib]", spans)
	}
	if len(spans[0].Children) != 1 || spans[0].Children[0].Name != "b" {
		t.Errorf("a children = %+v, want [b]", spans[0].Children)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer()
	tr.TrackAllocs = false
	tr.MaxSpans = 2
	a := tr.StartSpan("a")
	tr.StartSpan("b").End()
	if s := tr.StartSpan("over"); s != nil {
		t.Fatalf("span past cap = %+v, want nil", s)
	}
	a.End()
	if got := tr.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
	if got := len(tr.Export()); got != 1 {
		t.Errorf("len(Export()) = %d, want 1 root", got)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter("resynth.passes").Add(2)
	m.Histogram("cand").Observe(3)
	tr := NewTracer()
	tr.TrackAllocs = false
	sp := tr.StartSpan("root")
	tr.StartSpan("child").End()
	sp.End()

	r := &Report{
		Tool:          "test",
		Args:          []string{"-k", "5"},
		Start:         time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		DurationMS:    12.5,
		Env:           Environment(),
		CircuitBefore: &CircuitInfo{Name: "c17", Inputs: 5, Outputs: 2, Gates: 6, Paths: 11},
		Spans:         tr.Export(),
		Metrics:       m.Snapshot(),
	}
	r.AddResult("answer", 42.0)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Tool != r.Tool || back.DurationMS != r.DurationMS || !back.Start.Equal(r.Start) {
		t.Errorf("header fields changed: %+v", back)
	}
	if !reflect.DeepEqual(back.Args, r.Args) {
		t.Errorf("args = %v, want %v", back.Args, r.Args)
	}
	if !reflect.DeepEqual(back.CircuitBefore, r.CircuitBefore) {
		t.Errorf("circuit_before = %+v, want %+v", back.CircuitBefore, r.CircuitBefore)
	}
	if got := back.Metrics.Counters["resynth.passes"]; got != 2 {
		t.Errorf("metrics counter = %d, want 2", got)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "root" ||
		len(back.Spans[0].Children) != 1 || back.Spans[0].Children[0].Name != "child" {
		t.Errorf("span tree lost: %+v", back.Spans)
	}
	if got := back.Results["answer"]; got != 42.0 {
		t.Errorf("results[answer] = %v, want 42", got)
	}
}

// TestNilNoopZeroAlloc pins the contract that makes unconditional
// instrumentation safe in hot loops: the whole nil chain must not allocate.
func TestNilNoopZeroAlloc(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan("hot")
		sp.SetInt("i", 1)
		sp.SetStr("s", "x")
		sp.End()
	}); n != 0 {
		t.Errorf("nil tracer span chain allocates %v per run, want 0", n)
	}
	var c *Counter
	var h *Histogram
	var lg *Logger
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1)
		lg.Verbosef("skipped %d", 1)
	}); n != 0 {
		t.Errorf("nil instruments allocate %v per run, want 0", n)
	}
	// The flight-recorder off path: with no sink installed, the hot-loop
	// progress hook is a single atomic load.
	SetProgressSink(nil)
	if n := testing.AllocsPerRun(100, func() {
		EmitProgress("stage", 1, 2)
	}); n != 0 {
		t.Errorf("EmitProgress without a sink allocates %v per run, want 0", n)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartSpan("x"); sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	if got := tr.Export(); got != nil {
		t.Errorf("nil Export = %v, want nil", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Errorf("nil Dropped = %d, want 0", got)
	}
}

func TestLoggerRouting(t *testing.T) {
	var out, errw bytes.Buffer
	lg := NewLogger(&out, &errw, false)
	lg.Printf("result %d", 1)
	lg.Verbosef("hidden")
	if out.String() != "result 1\n" {
		t.Errorf("out = %q", out.String())
	}
	if errw.Len() != 0 {
		t.Errorf("non-verbose logger wrote progress: %q", errw.String())
	}
	lg = NewLogger(&out, &errw, true)
	lg.Verbosef("shown")
	if !bytes.Contains(errw.Bytes(), []byte("shown")) {
		t.Errorf("verbose progress missing: %q", errw.String())
	}
}
