package delay

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/compare"
)

func TestClassifyExactC17(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	stats, ok := ClassifyExact(c, 8, 100)
	if !ok {
		t.Fatal("c17 should be classifiable")
	}
	if stats.Total != 22 {
		t.Fatalf("total = %d, want 22", stats.Total)
	}
	if stats.Testable+stats.Untestable != stats.Total {
		t.Fatal("partition broken")
	}
	if stats.Testable == 0 {
		t.Fatal("c17 must have robustly testable faults")
	}
	// A saturating random campaign can never exceed the exact count.
	res := RunRandom(c, CampaignOptions{MaxPairs: 20000, Seed: 5})
	if res.Detected > stats.Testable {
		t.Fatalf("campaign %d > exact %d", res.Detected, stats.Testable)
	}
}

func TestClassifyExactUnitFullTestability(t *testing.T) {
	// Independent confirmation of Section 3.3 through exhaustion rather
	// than the constructed test set: every unit fault is testable.
	for _, bounds := range [][2]int{{5, 10}, {11, 12}, {3, 15}, {0, 12}, {6, 9}} {
		s := compare.Spec{N: 4, Perm: []int{0, 1, 2, 3}, L: bounds[0], U: bounds[1]}
		c := s.BuildStandalone("u", compare.BuildOptions{Merge: true})
		stats, ok := ClassifyExact(c, 6, 200)
		if !ok {
			t.Fatal("unit should be classifiable")
		}
		if stats.Untestable != 0 {
			t.Fatalf("[%d,%d]: %d untestable faults in a comparison unit",
				bounds[0], bounds[1], stats.Untestable)
		}
	}
}

func TestClassifyExactFindsUntestable(t *testing.T) {
	// A redundant AND inside an OR creates robustly untestable paths:
	// f = a OR (a AND b): the a->AND->OR path cannot be robustly tested
	// (the side input a of the OR must be steady 0 while a transitions).
	c := circuit.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, g1)
	c.MarkOutput(g2)
	stats, ok := ClassifyExact(c, 6, 100)
	if !ok {
		t.Fatal("classifiable")
	}
	if stats.Untestable == 0 {
		t.Fatal("expected untestable faults in the redundant structure")
	}
}

func TestClassifyExactBoundsRespected(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	if _, ok := ClassifyExact(c, 3, 100); ok {
		t.Fatal("input bound ignored")
	}
	if _, ok := ClassifyExact(c, 8, 5); ok {
		t.Fatal("path bound ignored")
	}
}
