package faults

import (
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
)

func TestAllFaultSites(t *testing.T) {
	// o = AND(a,b); a also feeds a NOT: a fans out (2 pins) so its branches
	// get faults; b is single-fanout so only the stem.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, "g", a, b)
	n := c.AddGate(circuit.Not, "n", a)
	c.MarkOutput(g)
	c.MarkOutput(n)
	fl := All(c)
	// Stems: a,b,g,n = 8 faults. Branches: a->g pin, a->n pin = 4 faults.
	if len(fl) != 12 {
		t.Fatalf("fault count = %d, want 12: %v", len(fl), fl)
	}
}

func TestCollapseBufNotChain(t *testing.T) {
	// a -> NOT -> BUF -> out: all faults collapse to 2 classes.
	c := circuit.New("t")
	a := c.AddInput("a")
	n := c.AddGate(circuit.Not, "", a)
	bf := c.AddGate(circuit.Buf, "", n)
	c.MarkOutput(bf)
	fl := Collapse(c)
	if len(fl) != 2 {
		t.Fatalf("collapsed chain = %d classes, want 2: %v", len(fl), fl)
	}
}

func TestCollapseAndGate(t *testing.T) {
	// Single AND(a,b): full list has 6 faults (3 stems x 2).
	// Equivalences: a/0 ~ b/0 ~ g/0 -> classes: {a0,b0,g0}, {a1}, {b1},
	// {g1}: 4 classes.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, "", a, b)
	c.MarkOutput(g)
	fl := Collapse(c)
	if len(fl) != 4 {
		t.Fatalf("AND collapse = %d classes, want 4: %v", len(fl), fl)
	}
}

func TestCollapseNandNorPolarity(t *testing.T) {
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.Nand, "", a, b)
	c.MarkOutput(g)
	// a/0 ~ b/0 ~ g/1: classes {a0,b0,g1},{a1},{b1},{g0} = 4.
	if fl := Collapse(c); len(fl) != 4 {
		t.Fatalf("NAND collapse = %d, want 4: %v", len(fl), fl)
	}
	c2 := circuit.New("t2")
	a2 := c2.AddInput("a")
	b2 := c2.AddInput("b")
	g2 := c2.AddGate(circuit.Nor, "", a2, b2)
	c2.MarkOutput(g2)
	// a/1 ~ b/1 ~ g/0: 4 classes.
	if fl := Collapse(c2); len(fl) != 4 {
		t.Fatalf("NOR collapse = %d, want 4: %v", len(fl), fl)
	}
}

func TestCollapseC17(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	full := All(c)
	collapsed := Collapse(c)
	if len(collapsed) >= len(full) {
		t.Fatalf("collapse did not reduce: %d vs %d", len(collapsed), len(full))
	}
	// Known for c17: 22 collapsed faults is the standard figure for
	// equivalence collapsing (textbook value).
	if len(collapsed) != 22 {
		t.Logf("note: c17 collapsed classes = %d (textbook equivalence collapsing gives 22)", len(collapsed))
	}
	if len(full) != 34 {
		// 11 stems... document what we produce: 5 PI + 6 gates = 11 stems
		// (22) + branch pins on fanout stems 3,11,16 (2 each => 12): 34.
		t.Fatalf("c17 full fault list = %d, want 34", len(full))
	}
}

func TestCollapseDeterministic(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	a := Collapse(c)
	b := Collapse(c)
	if len(a) != len(b) {
		t.Fatal("nondeterministic collapse size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic collapse order")
		}
	}
}

func TestConstantsHaveNoFaults(t *testing.T) {
	c := circuit.New("t")
	a := c.AddInput("a")
	k := c.AddGate(circuit.Const1, "")
	g := c.AddGate(circuit.And, "", a, k)
	c.MarkOutput(g)
	for _, f := range All(c) {
		if f.Pin < 0 && f.Node == k {
			t.Fatal("stem fault on a constant")
		}
	}
}
