package gen

import (
	"testing"

	"compsynth/internal/circuit"
	"compsynth/internal/paths"
	"compsynth/internal/simulate"
)

func TestRandomValidAndDeterministic(t *testing.T) {
	p := Params{Name: "r", Inputs: 10, Outputs: 6, Gates: 80,
		Layers: 8, MaxFanin: 3, Locality: 0.7, InvProb: 0.2, Seed: 5}
	a := Random(p)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Inputs) != 10 || len(a.Outputs) != 6 {
		t.Fatalf("interface: %v", a.Stats())
	}
	b := Random(p)
	if !simulate.EquivalentRandom(a, b, 16, 12, 1) {
		t.Fatal("same seed produced different circuits")
	}
	p.Seed = 6
	cOther := Random(p)
	if simulate.EquivalentRandom(a, cOther, 16, 12, 1) {
		t.Fatal("different seeds produced identical functions (suspicious)")
	}
}

func TestRandomAllGatesLive(t *testing.T) {
	c := Random(Params{Name: "r", Inputs: 8, Outputs: 4, Gates: 60,
		Layers: 8, MaxFanin: 3, Locality: 0.8, Seed: 9})
	// After sweep+compact every non-PO gate must have fanout.
	c.RebuildFanouts()
	po := map[int]bool{}
	for _, o := range c.Outputs {
		po[o] = true
	}
	for _, nd := range c.Nodes {
		if nd == nil || !c.Alive(nd.ID) {
			continue
		}
		if nd.Type != circuit.Input && len(c.Fanouts(nd.ID)) == 0 && !po[nd.ID] {
			t.Fatalf("dangling gate %s", nd.Name)
		}
	}
}

func TestSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short mode")
	}
	for _, b := range Suite(0.25) {
		c := b.Build()
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if c.Equiv2Count() < 20 {
			t.Fatalf("%s: degenerate size %d", b.Name, c.Equiv2Count())
		}
		if _, err := paths.Count(c); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestMacroInjection(t *testing.T) {
	p := Params{Name: "m", Inputs: 12, Outputs: 8, Gates: 150, Layers: 8,
		MaxFanin: 3, Locality: 0.7, InvProb: 0.1, MacroProb: 0.3, Seed: 21}
	c := Random(p)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Macros produce multi-input AND/OR cones; verify some wide gate exists.
	wide := false
	for _, nd := range c.Nodes {
		if nd != nil && c.Alive(nd.ID) && len(nd.Fanin) >= 3 {
			wide = true
		}
	}
	if !wide {
		t.Fatal("no macro cones generated at MacroProb=0.3")
	}
	// Determinism still holds with macros.
	d := Random(p)
	if !simulate.EquivalentRandom(c, d, 16, 12, 1) {
		t.Fatal("macro generation not deterministic")
	}
}

func TestSmallSuite(t *testing.T) {
	for _, b := range SmallSuite() {
		c := b.Build()
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if paths.MustCount(c) < 10 {
			t.Fatalf("%s: too few paths", b.Name)
		}
	}
}
