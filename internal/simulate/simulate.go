// Package simulate provides 64-way pattern-parallel logic simulation of
// combinational circuits, the workhorse behind function extraction, fault
// simulation and equivalence checking.
package simulate

import (
	"math/rand"

	"compsynth/internal/circuit"
)

// Sim holds per-node 64-pattern words for one circuit.
type Sim struct {
	C     *circuit.Circuit
	Words []uint64 // indexed by node ID
	topo  []int
	buf   []uint64
}

// New prepares a simulator for c.
func New(c *circuit.Circuit) *Sim {
	return &Sim{C: c, Words: make([]uint64, len(c.Nodes)), topo: c.Topo()}
}

// SetInput assigns the 64-pattern word of primary input index j (input
// order, not node ID).
func (s *Sim) SetInput(j int, w uint64) {
	s.Words[s.C.Inputs[j]] = w
}

// Run evaluates all gates for the current input words.
func (s *Sim) Run() {
	for _, id := range s.topo {
		nd := s.C.Nodes[id]
		if nd.Type == circuit.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range nd.Fanin {
			s.buf = append(s.buf, s.Words[f])
		}
		s.Words[id] = nd.Type.EvalWords(s.buf)
	}
}

// Output returns the word of primary output index j.
func (s *Sim) Output(j int) uint64 {
	return s.Words[s.C.Outputs[j]]
}

// Outputs copies all PO words into dst (allocating if nil).
func (s *Sim) Outputs(dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, len(s.C.Outputs))
	}
	for j, o := range s.C.Outputs {
		dst[j] = s.Words[o]
	}
	return dst
}

// RandomPatterns fills the inputs with rng-driven words.
func (s *Sim) RandomPatterns(rng *rand.Rand) {
	for _, in := range s.C.Inputs {
		s.Words[in] = rng.Uint64()
	}
}

// EquivalentRandom checks functional equivalence of a and b (same PI and PO
// counts, positional correspondence) with rounds*64 random patterns followed
// by an exhaustive check when the input count is at most maxExhaustive.
// It returns false as soon as a differing pattern is found.
func EquivalentRandom(a, b *circuit.Circuit, rounds int, maxExhaustive int, seed int64) bool {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	n := len(a.Inputs)
	sa, sb := New(a), New(b)
	if n <= maxExhaustive && n < 30 {
		return equivalentExhaustive(sa, sb, n)
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		for j := 0; j < n; j++ {
			w := rng.Uint64()
			sa.SetInput(j, w)
			sb.SetInput(j, w)
		}
		sa.Run()
		sb.Run()
		for j := range a.Outputs {
			if sa.Output(j) != sb.Output(j) {
				return false
			}
		}
	}
	return true
}

func equivalentExhaustive(sa, sb *Sim, n int) bool {
	total := uint64(1) << n
	for base := uint64(0); base < total; base += 64 {
		for j := 0; j < n; j++ {
			var w uint64
			for b := uint64(0); b < 64 && base+b < total; b++ {
				if (base+b)>>(uint(j))&1 == 1 {
					w |= 1 << b
				}
			}
			sa.SetInput(j, w)
			sb.SetInput(j, w)
		}
		sa.Run()
		sb.Run()
		for j := range sa.C.Outputs {
			m := mask64(total - base)
			if (sa.Output(j)^sb.Output(j))&m != 0 {
				return false
			}
		}
	}
	return true
}

func mask64(remaining uint64) uint64 {
	if remaining >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << remaining) - 1
}
