// Package resynth implements the paper's circuit optimization procedures:
// Procedure 2 (reduce the equivalent-2-input gate count, ties broken by the
// path count), Procedure 3 (reduce the path count), and the combined measure
// of Section 4.3. Each procedure repeatedly sweeps the circuit from the
// primary outputs toward the inputs, replacing subcircuits that implement
// comparison functions by comparison units, until a fixpoint.
//
// Parallelism: with Options.Workers != 1 each pass runs a concurrent
// prefetch phase that evaluates every candidate subcircuit of the pass
// snapshot — truth-table extraction and comparison-function identification,
// the dominant cost — across worker goroutines, filling sharded
// memoization caches keyed purely by the candidate's function. The sweep
// that selects and applies replacements then runs serially in topological
// order exactly as in the serial algorithm, so the optimized circuit is
// bit-identical for every worker count. Sampling-mode identification seeds
// its RNG per truth table (derived from Options.Seed), never from a shared
// stream, so it too is independent of visit order and worker count.
//
// Incremental pass state: each pass needs K-feasible cuts, path labels,
// levels and (in SDC mode) exhaustive-simulation values for every node. A
// replacement only invalidates the transitive fanout cone of the rewired
// nodes — every one of these quantities is a pure function of a node's
// fanin cone — so between passes the optimizer recomputes exactly the
// dirty cone reported by the circuit's edit journal instead of rebuilding
// from scratch. The sweep order is the canonical topological order
// (level, id), which is identical whether the state was refreshed
// incrementally or rebuilt in full, so both paths produce bit-identical
// circuits (TestIncrementalMatchesFull pins this).
package resynth

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"compsynth/internal/circuit"
	"compsynth/internal/compare"
	"compsynth/internal/digest"
	"compsynth/internal/ledger"
	"compsynth/internal/logic"
	"compsynth/internal/obs"
	"compsynth/internal/obs/dtrace"
	"compsynth/internal/par"
	"compsynth/internal/paths"
	"compsynth/internal/simulate"
	"compsynth/internal/subckt"
)

// Pipeline metrics (process-wide; single atomic adds in the hot loops).
var (
	mCandidates   = obs.C("resynth.candidates_examined")
	mReplacements = obs.C("resynth.replacements_accepted")
	mPasses       = obs.C("resynth.passes")
	mCacheHits    = obs.C("resynth.identify_cache_hits")
	mExtractHits  = obs.C("resynth.extract_cache_hits")
	mDirty        = obs.C("resynth.dirty_nodes")
	hCandInputs   = obs.H("resynth.candidate_inputs")
	gPass         = obs.G("resynth.pass")
)

// Objective selects the optimization target.
type Objective int

// Objectives.
const (
	MinGates Objective = iota // Procedure 2
	MinPaths                  // Procedure 3
	Combined                  // Section 4.3: gates and paths together
)

func (o Objective) String() string {
	switch o {
	case MinGates:
		return "min-gates"
	case MinPaths:
		return "min-paths"
	case Combined:
		return "combined"
	}
	return "?"
}

// Options configures the optimizer.
type Options struct {
	K             int       // subcircuit input limit (paper: 5 or 6)
	Objective     Objective // which procedure to run
	MaxCandidates int       // candidate subcircuits per gate output
	MaxSpecs      int       // unit realizations considered per function
	MaxPasses     int       // fixpoint iteration cap
	Verify        bool      // check equivalence after every pass
	Check         bool      // validate IR invariants after every pass (circuit.Check)
	Merge         bool      // merge same-type chain gates (Figure 4)

	// Workers bounds the goroutines used by the per-pass candidate
	// prefetch. 0 selects runtime.GOMAXPROCS(0); 1 disables the prefetch
	// and runs fully serial. The result is bit-identical either way.
	Workers int

	// Shard switches each pass to the region-sharded sweep (shard.go):
	// candidate gates are partitioned into disjoint footprint regions,
	// workers speculatively evaluate whole regions, and a serial commit
	// phase replays the decisions in the canonical (level, id) order,
	// validating each speculation against the edit journal and re-queueing
	// conflict losers. The optimized circuit, the decision-trace stream,
	// the run report counters, and the certificate evidence are
	// bit-identical to the serial sweep at every worker count
	// (TestShardedMatchesSerial); Shard is a machine knob like Workers.
	// Off (the default) keeps the serial sweep with the prefetch phase.
	Shard bool

	// UseSampling switches identification to the paper's experimental
	// method: up to SamplingPerms random permutations, onset and offset.
	UseSampling   bool
	SamplingPerms int

	// MaxUnits > 1 enables the paper's Section 6 extension: when no single
	// comparison unit realizes a candidate function, try an OR of up to
	// MaxUnits units over a common permutation (MultiPerms tried).
	MaxUnits   int
	MultiPerms int

	// UseSDC enables the paper's Section 6 extension (1): input
	// combinations that can never occur at a candidate's inputs are
	// treated as don't-cares during identification. Exact reachability is
	// computed by exhaustive simulation, so the mode only engages on
	// circuits with at most SDCMaxInputs primary inputs (default 14).
	UseSDC       bool
	SDCMaxInputs int

	// CombinedGateWeight scales gate savings against path savings for the
	// Combined objective: measure = pathSaving + W * gateSaving.
	CombinedGateWeight float64

	// Certify records per-replacement equivalence evidence — the extracted
	// truth table, the care set when don't-cares were used, and the chosen
	// realization — into Result.Evidence, for the run certificate (-cert).
	// Off (the default), the replacement path allocates nothing extra.
	Certify bool

	Seed int64

	// Tracer records per-pass spans when non-nil; nil (the default) keeps
	// the zero-overhead fast path.
	Tracer *obs.Tracer

	// Dtrace streams one decision record per gate and per candidate the
	// serial sweep considers (see internal/obs/dtrace). Records are emitted
	// only from the serial sweep — never from the concurrent prefetch — and
	// carry no timing or cache provenance, so the stream is byte-identical
	// for every Workers value. The nil tracer (the default) no-ops without
	// allocating.
	Dtrace *dtrace.Tracer

	// forceFull disables the incremental between-pass refresh, rebuilding
	// every pass's derived state from scratch. Test-only: the determinism
	// test proves incremental and full runs are bit-identical.
	forceFull bool
}

// DefaultOptions returns the paper's experimental configuration (K=5).
func DefaultOptions() Options {
	return Options{
		K:             5,
		Objective:     MinGates,
		MaxCandidates: 32,
		MaxSpecs:      8,
		MaxPasses:     16,
		Verify:        true,
		Merge:         true,
		SamplingPerms: 200,
		Seed:          1995,

		MaxUnits:   1,
		MultiPerms: 60,

		SDCMaxInputs: 14,

		CombinedGateWeight: 4,
	}
}

// Result reports an optimization run.
type Result struct {
	Circuit      *circuit.Circuit
	Passes       int
	Replacements int
	GatesBefore  int
	GatesAfter   int
	PathsBefore  uint64
	PathsAfter   uint64

	// Evidence holds one entry per accepted replacement when
	// Options.Certify is set (nil otherwise). It is deliberately excluded
	// from MarshalJSON: reports summarize, certificates carry the proof.
	Evidence []ledger.Evidence
}

func (r *Result) String() string {
	return fmt.Sprintf("passes=%d repl=%d gates %d->%d paths %d->%d",
		r.Passes, r.Replacements, r.GatesBefore, r.GatesAfter, r.PathsBefore, r.PathsAfter)
}

// MarshalJSON serializes the run statistics (the circuit itself is omitted;
// reports carry circuit summaries separately). Field names mirror String().
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Passes       int    `json:"passes"`
		Replacements int    `json:"replacements"`
		GatesBefore  int    `json:"gates_before"`
		GatesAfter   int    `json:"gates_after"`
		PathsBefore  uint64 `json:"paths_before"`
		PathsAfter   uint64 `json:"paths_after"`
	}{r.Passes, r.Replacements, r.GatesBefore, r.GatesAfter, r.PathsBefore, r.PathsAfter})
}

// Optimize runs the selected procedure on a copy of c until no further
// improvement. The input circuit is not modified.
func Optimize(c *circuit.Circuit, opt Options) (*Result, error) {
	if opt.K <= 0 || opt.MaxPasses <= 0 {
		return nil, fmt.Errorf("resynth: invalid options K=%d passes=%d", opt.K, opt.MaxPasses)
	}
	sp := opt.Tracer.StartSpan("resynth.optimize")
	defer sp.End()
	sp.SetStr("objective", opt.Objective.String())
	sp.SetInt("k", int64(opt.K))
	poNames := c.PONames()
	work := c.Clone()
	work.Simplify()
	work, _ = work.Compact()
	res := &Result{
		GatesBefore: c.Equiv2Count(),
		PathsBefore: paths.MustCount(c),
	}
	o := &optimizer{
		opt:        opt,
		dt:         opt.Dtrace,
		workers:    par.Workers(opt.Workers),
		cache:      par.NewCache[logic.Key, cachedSpec](),
		multiCache: par.NewCache[logic.Key, cachedMulti](),
		dcCache:    par.NewCache[dcKey, cachedSpec](),
		allCache:   par.NewCache[logic.Key, []compare.Spec](),
	}
	sp.SetInt("workers", int64(o.workers))
	// The journal records which nodes each pass's rewrites and the
	// follow-up Simplify touch, so the next pass refreshes only that cone.
	// Node IDs therefore must stay stable across passes: compaction happens
	// once, after the fixpoint.
	work.BeginJournal()
	for pass := 0; pass < opt.MaxPasses; pass++ {
		o.passNo = pass + 1
		gPass.Set(int64(pass + 1))
		obs.EmitProgress("resynth.pass", int64(pass+1), int64(opt.MaxPasses))
		psp := opt.Tracer.StartSpan("resynth.pass")
		psp.SetInt("pass", int64(pass))
		var before *circuit.Circuit
		if opt.Verify {
			before = work.Clone()
		}
		n := o.pass(work)
		mPasses.Inc()
		res.Passes++
		res.Replacements += n
		work.Simplify()
		if opt.Verify {
			vsp := opt.Tracer.StartSpan("resynth.verify")
			ok := simulate.EquivalentRandom(before, work, 32, 14, opt.Seed+int64(pass))
			vsp.End()
			if !ok {
				psp.End()
				return nil, fmt.Errorf("resynth: pass %d broke equivalence", pass)
			}
		}
		if opt.Check {
			csp := opt.Tracer.StartSpan("resynth.check")
			// Mid-fixpoint the circuit carries dead tombstones and gates
			// that later passes may still rewire, so unreachable live
			// nodes are tolerated here; the post-Compact check below is
			// strict.
			err := circuit.CheckWith(work, circuit.CheckOptions{AllowUnreachable: true})
			if err == nil {
				err = circuit.CheckComparisonUnits(work)
			}
			csp.End()
			if err != nil {
				psp.End()
				return nil, fmt.Errorf("resynth: pass %d: %w", pass, err)
			}
		}
		psp.SetInt("replacements", int64(n))
		psp.End()
		if n == 0 {
			break
		}
	}
	work.EndJournal()
	work, _ = work.Compact()
	work.PreservePONames(poNames)
	if opt.Check {
		if err := circuit.Check(work); err != nil {
			return nil, fmt.Errorf("resynth: final circuit: %w", err)
		}
		if err := circuit.CheckComparisonUnits(work); err != nil {
			return nil, fmt.Errorf("resynth: final circuit: %w", err)
		}
	}
	res.Circuit = work
	res.GatesAfter = work.Equiv2Count()
	res.PathsAfter = paths.MustCount(work)
	res.Evidence = o.evidence
	return res, nil
}

type cachedSpec struct {
	spec compare.Spec
	ok   bool
}

type cachedMulti struct {
	spec compare.MultiSpec
	ok   bool
}

// dcKey identifies one don't-care identification query: the function and
// the care set.
type dcKey struct {
	f, care logic.Key
}

// extracted memoizes one candidate's extraction AND its support reduction:
// cuts repeat across the fanout of shared logic, so a cache hit skips both
// the simulation and the Shrink. kept is shared — callers must not mutate.
type extracted struct {
	tt   logic.TT // function over sub.Inputs
	stt  logic.TT // support-reduced table
	kept []int    // 1-based indices of retained inputs, in order
}

// optimizer carries the per-run state. The identification caches persist
// across passes (they are keyed by the candidate's function, which is
// circuit-independent); the extraction cache is rebuilt per pass because
// its keys are node IDs of the current snapshot. All caches are sharded
// and safe for the concurrent prefetch; every cached value is a pure
// function of its key, so racing fills store equal values.
type optimizer struct {
	opt        Options
	dt         *dtrace.Tracer // decision-trace sink; nil = off
	workers    int
	cache      *par.Cache[logic.Key, cachedSpec]
	multiCache *par.Cache[logic.Key, cachedMulti]
	dcCache    *par.Cache[dcKey, cachedSpec]
	allCache   *par.Cache[logic.Key, []compare.Spec]
	extracts   *par.Cache[subckt.Key, extracted]
	db         *subckt.CutDB

	// Incremental per-pass state. Every field below is a per-node pure
	// function of that node's fanin cone, so after a pass only the dirty
	// cone (journal-touched nodes plus their transitive fanout) needs
	// recomputation; everything else is reused verbatim. stateOK gates the
	// first pass onto the full-rebuild path.
	stateOK bool
	levels  []int
	topo    []int // live nodes in canonical topological order: (level, id)
	np      []uint64
	npOver  []bool // per-node label saturation, so npOK survives node death
	npOK    bool

	// SDC state: per-node value over all 2^nPI patterns (nil when the mode
	// is off or out of range).
	valbits   [][]uint64
	nPI       int
	careCache *par.Cache[digest.D, logic.TT]

	scratch []int // reused worklist for the dirty-cone closure

	// Certificate evidence, appended by apply when Options.Certify is set.
	passNo   int
	evidence []ledger.Evidence
}

// rngFor derives the RNG for one sampling-style identification call.
// Seeding from (Options.Seed, truth-table key) makes the draw a pure
// function of the function being identified — independent of gate visit
// order, of the interleaving of other identifications, and of which worker
// performs it — which is what keeps sampling mode deterministic under the
// concurrent prefetch (and fixes the historical shared-RNG coupling).
func (o *optimizer) rngFor(k logic.Key) *rand.Rand {
	return rand.New(rand.NewSource(k.Seed(o.opt.Seed)))
}

// pass performs one output-to-input sweep and returns the replacement count.
func (o *optimizer) pass(c *circuit.Circuit) int {
	touched := c.TakeJournal()
	csp := o.opt.Tracer.StartSpan("resynth.cuts")
	if !o.stateOK || touched == nil || o.opt.forceFull {
		o.rebuildFull(c)
	} else {
		o.refresh(c, touched)
	}
	csp.End()
	o.extracts = par.NewCache[subckt.Key, extracted]() // node IDs are only stable within one pass
	topo := o.topo
	if o.opt.Shard {
		// The sharded sweep speculates every gate's evaluation up front, so
		// the prefetch phase is subsumed; see shard.go.
		return o.passSharded(c)
	}
	if o.workers > 1 {
		o.prefetch(c, topo)
	}
	marked := make([]bool, len(c.Nodes))
	mark := func(id int) {
		for id >= len(marked) {
			marked = append(marked, false)
		}
		marked[id] = true
	}
	for _, out := range c.Outputs {
		mark(out)
	}
	replaced := 0
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		if !c.Alive(g) {
			o.traceGate(c, g, dtrace.SkippedDead, nil)
			continue
		}
		if !marked[g] {
			o.traceGate(c, g, dtrace.SkippedUnmarked, nil)
			continue
		}
		nd := c.Nodes[g]
		if nd.Type == circuit.Input || nd.Type == circuit.Const0 || nd.Type == circuit.Const1 {
			o.traceGate(c, g, dtrace.SkippedNonGate, nil)
			continue
		}
		best := o.selectReplacement(c, g)
		// Cumulative candidate progress for the flight recorder (the sink
		// throttles; the off path is one atomic load).
		obs.EmitProgress("resynth.candidates", mCandidates.Value(), 0)
		if best != nil {
			// Traced before apply, while g and its path label are live.
			o.traceGate(c, g, dtrace.Replaced, best)
			o.apply(c, best)
			mReplacements.Inc()
			replaced++
			for _, in := range best.sub.Inputs {
				mark(in)
			}
		} else {
			o.traceGate(c, g, dtrace.Kept, nil)
			for _, f := range nd.Fanin {
				mark(f)
			}
		}
	}
	return replaced
}

// traceGate emits the per-gate summary decision record: how the sweep
// disposed of node g this pass. With tracing off (o.dt == nil) it returns
// before building the record, keeping the sweep allocation-free.
func (o *optimizer) traceGate(c *circuit.Circuit, g int, outcome dtrace.Reason, best *candidate) {
	if o.dt == nil {
		return
	}
	rec := dtrace.Record{
		Pass:    o.passNo,
		Kind:    "gate",
		Node:    g,
		Name:    c.Nodes[g].Name,
		Outcome: outcome,
	}
	if best != nil {
		rec.Cut = best.sub.Inputs
		rec.Width = len(best.sub.Inputs)
		rec.GateSave = best.gateSave
		rec.PathsBefore = o.np[g]
		rec.PathsAfter = best.pathsOnG
		rec.UsedDC = best.hasCare
		o.setSpec(&rec, best.spec)
	}
	o.dt.Emit(rec)
}

// setSpec fills a record's realization fields from the chosen spec.
func (o *optimizer) setSpec(rec *dtrace.Record, spec compare.Realization) {
	_, rec.MultiUnit = spec.(compare.MultiSpec)
	if s, ok := spec.(fmt.Stringer); ok {
		rec.Spec = s.String()
	}
}

// candRec appends one candidate-level decision record for sub (a subcircuit
// rooted at g) to recs. Callers guard on o.dt != nil, so the off path never
// reaches here.
func (o *optimizer) candRec(recs []dtrace.Record, c *circuit.Circuit, g int, sub *subckt.Subcircuit, oldPaths uint64, outcome dtrace.Reason) []dtrace.Record {
	return append(recs, dtrace.Record{
		Pass:        o.passNo,
		Kind:        "cand",
		Node:        g,
		Name:        c.Nodes[g].Name,
		Outcome:     outcome,
		Cut:         sub.Inputs,
		Width:       len(sub.Inputs),
		PathsBefore: oldPaths,
	})
}

// sortTopo orders o.topo by (level, id). Levels increase along every edge,
// so this is a topological order — and unlike a worklist order it is a pure
// function of the circuit, identical whether levels were computed from
// scratch or refreshed incrementally.
func (o *optimizer) sortTopo() {
	lv := o.levels
	t := o.topo
	sort.Slice(t, func(i, j int) bool {
		if lv[t[i]] != lv[t[j]] {
			return lv[t[i]] < lv[t[j]]
		}
		return t[i] < t[j]
	})
}

func (o *optimizer) collectLive(c *circuit.Circuit) {
	o.topo = o.topo[:0]
	for id := 0; id < len(c.Nodes); id++ {
		if c.Alive(id) {
			o.topo = append(o.topo, id)
		}
	}
}

// rebuildFull computes every piece of per-pass state from scratch.
func (o *optimizer) rebuildFull(c *circuit.Circuit) {
	n := len(c.Nodes)
	o.levels = append(o.levels[:0], c.Levels()...)
	o.collectLive(c)
	o.sortTopo()
	o.db = subckt.NewCutDB(c, o.opt.K, o.opt.MaxCandidates)
	o.np = growU64(o.np[:0], n)
	o.npOver = growBool(o.npOver[:0], n)
	for _, id := range o.topo {
		o.db.ComputeNode(c, id)
		v, ok := paths.LabelNode(c, o.np, id)
		o.np[id] = v
		o.npOver[id] = !ok
	}
	o.recomputeNpOK()
	o.rebuildSDC(c)
	o.stateOK = true
}

// refresh recomputes state for the dirty cone only: the journal-touched
// nodes plus their transitive fanout. Everything outside the cone is a pure
// function of an unchanged fanin cone, so its stored value already equals
// what a full rebuild would produce.
func (o *optimizer) refresh(c *circuit.Circuit, touched map[int]bool) {
	c.RebuildFanouts()
	n := len(c.Nodes)
	o.levels = growInts(o.levels, n)
	o.np = growU64(o.np, n)
	o.npOver = growBool(o.npOver, n)
	if o.valbits != nil {
		for len(o.valbits) < n {
			o.valbits = append(o.valbits, nil)
		}
	}

	// Dirty closure over fanouts.
	dirty := make([]bool, n)
	stack := o.scratch[:0]
	//lint:ordered stack seeds a reachability closure; the dirty[] fixpoint is the same set for any visit order
	for id := range touched {
		if id < n && !dirty[id] {
			stack = append(stack, id)
		}
	}
	count := int64(0)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if dirty[id] {
			continue
		}
		dirty[id] = true
		count++
		for _, f := range c.Fanouts(id) {
			if !dirty[f] {
				stack = append(stack, f)
			}
		}
	}
	o.scratch = stack[:0]
	mDirty.Add(count)

	// Levels of dirty nodes, in dependency order via DFS (clean fanins keep
	// their stored level).
	done := make([]bool, n)
	var lvl func(id int) int
	lvl = func(id int) int {
		if !dirty[id] || done[id] {
			return o.levels[id]
		}
		done[id] = true
		nd := c.Nodes[id]
		m := -1
		for _, f := range nd.Fanin {
			if l := lvl(f); l > m {
				m = l
			}
		}
		o.levels[id] = m + 1
		return m + 1
	}
	for id := 0; id < n; id++ {
		if dirty[id] && c.Alive(id) {
			lvl(id)
		}
	}

	o.collectLive(c)
	o.sortTopo()

	o.db.Grow(c)
	for _, id := range o.topo {
		if !dirty[id] {
			continue
		}
		o.db.ComputeNode(c, id)
		v, ok := paths.LabelNode(c, o.np, id)
		o.np[id] = v
		o.npOver[id] = !ok
	}
	o.recomputeNpOK()
	o.refreshSDC(c, dirty)
}

func (o *optimizer) recomputeNpOK() {
	o.npOK = true
	for _, id := range o.topo {
		if o.npOver[id] {
			o.npOK = false
			break
		}
	}
}

func growInts(s []int, n int) []int {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growU64(s []uint64, n int) []uint64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growBool(s []bool, n int) []bool {
	for len(s) < n {
		s = append(s, false)
	}
	return s
}

// prefetch warms the extraction and identification caches for every gate of
// the pass snapshot, in parallel. Every cached value is a pure function of
// its key, so warming cannot change what the serial sweep below decides: a
// candidate whose function only arises after a mid-sweep mutation simply
// misses the cache and is computed inline. The prefetch reads the circuit
// but never mutates it (structural caches — topo, fanouts — were built by
// the state rebuild above).
func (o *optimizer) prefetch(c *circuit.Circuit, topo []int) {
	ids := make([]int, 0, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		t := c.Nodes[g].Type
		if t == circuit.Input || t == circuit.Const0 || t == circuit.Const1 {
			continue
		}
		ids = append(ids, g)
	}
	par.Run(o.opt.Tracer, "resynth.prefetch", o.workers, len(ids), func(_, i int) {
		o.prefetchGate(c, ids[i])
	})
}

// prefetchGate mirrors the identification cascade of selectReplacement for
// one gate, computing (and caching) everything expensive while skipping the
// cost accounting that stays serial.
func (o *optimizer) prefetchGate(c *circuit.Circuit, g int) {
	for _, sub := range o.db.EnumerateFromCuts(c, g) {
		ex := o.extractTT(c, sub)
		if ex.stt.Vars() == 0 {
			continue
		}
		_, ok := o.identify(ex.stt)
		if !ok && o.valbits != nil {
			keep := make([]int, len(ex.kept))
			for j, v := range ex.kept {
				keep[j] = sub.Inputs[v-1]
			}
			care := o.careSet(keep)
			if !care.IsConst(true) {
				_, ok = o.identifyDC(ex.stt, care)
			}
		}
		if !ok && o.opt.MaxUnits > 1 {
			_, ok = o.identifyMulti(ex.stt)
		}
		if !ok {
			continue
		}
		if o.opt.MaxSpecs > 1 && !o.opt.UseSampling {
			o.identifyAll(ex.stt)
		}
	}
}

// candidate pairs a subcircuit with its chosen unit realization and costs.
type candidate struct {
	sub        *subckt.Subcircuit
	spec       compare.Realization
	keepInputs []int // host node IDs for the spec's variables, in order
	gateSave   int   // N - N'
	pathsOnG   uint64

	// Evidence inputs (the tables are cache-shared; no extra allocation):
	// the support-reduced extracted function and, when identification used
	// reachability don't-cares, the care set it was matched under.
	stt     logic.TT
	care    logic.TT
	hasCare bool
}

// selectReplacement evaluates all candidates for gate output g and returns
// the chosen replacement, or nil to keep the existing logic.
//
// When decision tracing is on, one record per enumerated candidate is
// buffered in enumeration order and emitted at the end of the call, once the
// winner's outcome is known: losers to a realized winner stay Dominated, and
// the winner itself resolves to Accepted or to the enumerated rejection that
// blocked it (ObjectiveWorse, or PathBound when only the saturated path
// labels vetoed an otherwise-improving replacement).
func (o *optimizer) selectReplacement(c *circuit.Circuit, g int) *candidate {
	return o.evalGate(c, g, nil)
}

// evalGate is selectReplacement's engine, shared with the sharded sweep's
// speculation phase. With ev == nil it behaves exactly as the serial sweep
// always has: counters increment inline and trace records are emitted at the
// end of the call. With ev != nil the call is speculative — it may run on a
// worker goroutine concurrently with other evaluations — so every global
// side effect is buffered into ev instead (candidate count, histogram
// observations, resolved trace records) for the serial commit phase to
// replay in canonical order; the circuit is only read, never written.
//
//lint:speculative
func (o *optimizer) evalGate(c *circuit.Circuit, g int, ev *gateEval) *candidate {
	subs := o.db.EnumerateFromCuts(c, g)
	np, npOK := o.np, o.npOK
	oldPathsOnG := np[g]
	var best *candidate
	var recs []dtrace.Record               // per-candidate trace, nil unless o.dt != nil
	bestRec := -1                          // index in recs of the current best's record
	better := func(a, b *candidate) bool { // is a better than b?
		switch o.opt.Objective {
		case MinGates:
			if a.gateSave != b.gateSave {
				return a.gateSave > b.gateSave
			}
			return a.pathsOnG < b.pathsOnG
		case MinPaths:
			if a.pathsOnG != b.pathsOnG {
				return a.pathsOnG < b.pathsOnG
			}
			return a.gateSave > b.gateSave
		default: // Combined
			ma := float64(int64(oldPathsOnG)-int64(a.pathsOnG)) + o.opt.CombinedGateWeight*float64(a.gateSave)
			mb := float64(int64(oldPathsOnG)-int64(b.pathsOnG)) + o.opt.CombinedGateWeight*float64(b.gateSave)
			return ma > mb
		}
	}
	for _, sub := range subs {
		if ev == nil {
			mCandidates.Inc()
			hCandInputs.Observe(float64(len(sub.Inputs)))
		} else {
			ev.nCand++
			ev.widths = append(ev.widths, float64(len(sub.Inputs)))
		}
		// Extraction drops inputs the function does not depend on: they
		// contribute no logic and their paths disappear entirely.
		ex := o.extractTT(c, sub)
		if ex.stt.Vars() == 0 {
			if o.dt != nil {
				recs = o.candRec(recs, c, g, sub, oldPathsOnG, dtrace.ConstFunction)
			}
			continue // constant function: left to Simplify
		}
		stt, kept := ex.stt, ex.kept
		var spec compare.Realization
		var dcCare logic.TT
		usedDC := false
		single, ok := o.identify(stt)
		spec = single
		if !ok && o.valbits != nil {
			// Reachability don't-cares may still admit a single unit.
			keep := make([]int, len(kept))
			for j, v := range kept {
				keep[j] = sub.Inputs[v-1]
			}
			care := o.careSet(keep)
			if !care.IsConst(true) {
				single, ok = o.identifyDC(stt, care)
				spec = single
				if ok {
					dcCare, usedDC = care, true
				}
			}
		}
		if !ok && o.opt.MaxUnits > 1 {
			var multi compare.MultiSpec
			multi, ok = o.identifyMulti(stt)
			spec = multi
		}
		if !ok {
			if o.dt != nil {
				recs = o.candRec(recs, c, g, sub, oldPathsOnG, dtrace.NoComparisonUnit)
			}
			continue
		}
		keepInputs := make([]int, len(kept))
		subNp := make([]uint64, len(kept))
		for j, v := range kept {
			keepInputs[j] = sub.Inputs[v-1]
			subNp[j] = np[keepInputs[j]]
		}
		cand := &candidate{
			sub:        sub,
			spec:       spec,
			keepInputs: keepInputs,
			gateSave:   sub.GateSavings(c) - spec.GateCost(),
			pathsOnG:   spec.PathCost(subNp),
			stt:        stt,
			care:       dcCare,
			hasCare:    usedDC,
		}
		// Try alternative realizations when available.
		if o.opt.MaxSpecs > 1 && !o.opt.UseSampling {
			for _, alt := range o.identifyAll(stt) {
				ac := *cand
				ac.spec = alt
				ac.gateSave = sub.GateSavings(c) - alt.GateCost()
				ac.pathsOnG = alt.PathCost(subNp)
				if better(&ac, cand) {
					*cand = ac
				}
			}
		}
		if best == nil || better(cand, best) {
			best = cand
			bestRec = len(recs) // the record appended just below
		}
		if o.dt != nil {
			// Realized candidates default to Dominated; the winner's record
			// is resolved after the sweep below.
			recs = o.candRec(recs, c, g, sub, oldPathsOnG, dtrace.Dominated)
			rec := &recs[len(recs)-1]
			rec.GateSave = cand.gateSave
			rec.PathsAfter = cand.pathsOnG
			rec.UsedDC = cand.hasCare
			o.setSpec(rec, cand.spec)
		}
	}
	// Only rewrite when the objective strictly improves (the identity
	// replacement keeps the circuit unchanged otherwise). A best that fails
	// the gate resolves to its enumerated rejection: PathBound when only the
	// saturated path labels (npOK == false) vetoed an improvement the
	// objective would otherwise take, ObjectiveWorse for a plain shortfall.
	accepted := false
	rejection := dtrace.ObjectiveWorse
	if best != nil {
		switch o.opt.Objective {
		case MinGates:
			if best.gateSave > 0 || (best.gateSave == 0 && npOK && best.pathsOnG < oldPathsOnG) {
				accepted = true
			} else if best.gateSave == 0 && best.pathsOnG < oldPathsOnG && !npOK {
				rejection = dtrace.PathBound
			}
		case MinPaths:
			if npOK && best.pathsOnG < oldPathsOnG {
				accepted = true
			} else if best.pathsOnG < oldPathsOnG && !npOK {
				rejection = dtrace.PathBound
			}
		default:
			m := float64(int64(oldPathsOnG)-int64(best.pathsOnG)) + o.opt.CombinedGateWeight*float64(best.gateSave)
			if m > 0 {
				accepted = true
			}
		}
	}
	if o.dt != nil {
		if bestRec >= 0 {
			if accepted {
				recs[bestRec].Outcome = dtrace.Accepted
			} else {
				recs[bestRec].Outcome = rejection
			}
		}
		if ev != nil {
			ev.recs = recs // replayed by the commit phase, in commit order
		} else {
			for i := range recs {
				o.dt.Emit(recs[i])
			}
		}
	}
	if accepted {
		return best
	}
	return nil
}

// extractTT memoizes Subcircuit.Extract (and the follow-up support
// reduction) per pass: cuts repeat across the fanout of shared logic, and
// the prefetch phase plus the serial sweep visit every repeated cut at
// least twice. A warm hit performs no allocation.
func (o *optimizer) extractTT(c *circuit.Circuit, sub *subckt.Subcircuit) extracted {
	key := sub.Key()
	if ex, ok := o.extracts.Get(key); ok {
		mExtractHits.Inc()
		return ex
	}
	tt := sub.Extract(c)
	stt, kept := tt.Shrink()
	ex := extracted{tt: tt, stt: stt, kept: kept}
	o.extracts.Set(key, ex)
	return ex
}

// rebuildSDC precomputes every node's value over the full primary-input
// space (64 patterns per word) when the SDC mode is engaged.
func (o *optimizer) rebuildSDC(c *circuit.Circuit) {
	o.valbits = nil
	o.careCache = nil
	nPI := len(c.Inputs)
	max := o.opt.SDCMaxInputs
	if max <= 0 {
		max = 14
	}
	if !o.opt.UseSDC || nPI > max || nPI >= 30 {
		return
	}
	ssp := o.opt.Tracer.StartSpan("resynth.sdc")
	defer ssp.End()
	o.nPI = nPI
	words := ((1 << nPI) + 63) / 64
	o.valbits = make([][]uint64, len(c.Nodes))
	for j, id := range c.Inputs {
		o.valbits[id] = inputRow(j, words)
	}
	buf := make([]uint64, 0, 8)
	for _, id := range o.topo {
		if c.Nodes[id].Type == circuit.Input {
			continue
		}
		o.valbits[id] = o.evalRow(c, id, words, &buf)
	}
	o.careCache = par.NewCache[digest.D, logic.TT]()
}

// refreshSDC re-simulates only the dirty cone; clean rows are values of
// unchanged fanin cones and stay valid. The care cache restarts because its
// entries project rows that may have changed.
func (o *optimizer) refreshSDC(c *circuit.Circuit, dirty []bool) {
	if o.valbits == nil {
		return // mode off or out of range; PI count never changes mid-run
	}
	ssp := o.opt.Tracer.StartSpan("resynth.sdc")
	defer ssp.End()
	words := ((1 << o.nPI) + 63) / 64
	buf := make([]uint64, 0, 8)
	for _, id := range o.topo {
		if !dirty[id] || c.Nodes[id].Type == circuit.Input {
			continue
		}
		o.valbits[id] = o.evalRow(c, id, words, &buf)
	}
	o.careCache = par.NewCache[digest.D, logic.TT]()
}

// inputRow is primary input j's value over all patterns: bit p = bit j of p.
func inputRow(j, words int) []uint64 {
	row := make([]uint64, words)
	for w := range row {
		var word uint64
		for b := 0; b < 64; b++ {
			if (uint64(w*64+b)>>uint(j))&1 == 1 {
				word |= 1 << b
			}
		}
		row[w] = word
	}
	return row
}

// evalRow computes one gate's full-space value row from its fanins' rows.
func (o *optimizer) evalRow(c *circuit.Circuit, id, words int, buf *[]uint64) []uint64 {
	nd := c.Nodes[id]
	row := make([]uint64, words)
	for w := 0; w < words; w++ {
		b := (*buf)[:0]
		for _, f := range nd.Fanin {
			b = append(b, o.valbits[f][w])
		}
		*buf = b
		row[w] = nd.Type.EvalWords(b)
	}
	return row
}

// careSet projects the reachable primary-input space onto the given input
// nodes: bit m of the result is 1 iff some PI pattern drives the inputs to
// the combination m (MSB-first order, matching Extract). The projection is
// word-hoisted: each input's row is fetched once and 64 patterns are read
// per word.
func (o *optimizer) careSet(inputs []int) logic.TT {
	key := digest.New().Ints(inputs)
	if tt, ok := o.careCache.Get(key); ok {
		return tt
	}
	n := len(inputs)
	care := logic.New(n)
	rows := make([][]uint64, n)
	for j, id := range inputs {
		rows[j] = o.valbits[id]
	}
	total := 1 << o.nPI
	for base := 0; base < total; base += 64 {
		w := base >> 6
		lim := 64
		if total-base < 64 {
			lim = total - base
		}
		for b := 0; b < lim; b++ {
			idx := 0
			for j := 0; j < n; j++ {
				if rows[j][w]>>uint(b)&1 != 0 {
					idx |= 1 << (n - 1 - j)
				}
			}
			care.Set(idx, true)
		}
	}
	o.careCache.Set(key, care)
	return care
}

// identifyMulti finds a multi-unit realization (Section 6 extension), with
// memoization.
func (o *optimizer) identifyMulti(tt logic.TT) (compare.MultiSpec, bool) {
	key := tt.Key()
	if r, ok := o.multiCache.Get(key); ok {
		mCacheHits.Inc()
		return r.spec, r.ok
	}
	spec, ok := compare.IdentifyMulti(tt, o.opt.MaxUnits, o.opt.MultiPerms, o.rngFor(key))
	o.multiCache.Set(key, cachedMulti{spec, ok})
	return spec, ok
}

// identify finds a unit realization for tt, via the exact search or the
// paper's sampling method, with memoization. A warm hit performs no
// allocation: the key is a fixed-size value and the cache shards on it
// without building a string.
func (o *optimizer) identify(tt logic.TT) (compare.Spec, bool) {
	key := tt.Key()
	if r, ok := o.cache.Get(key); ok {
		mCacheHits.Inc()
		return r.spec, r.ok
	}
	var spec compare.Spec
	var ok bool
	if o.opt.UseSampling {
		spec, ok = compare.IdentifySampling(tt, o.opt.SamplingPerms, o.rngFor(key))
	} else {
		spec, ok = compare.IdentifyBest(tt)
	}
	o.cache.Set(key, cachedSpec{spec, ok})
	return spec, ok
}

// identifyDC finds a unit realization of tt under the care set, with
// memoization (the search is exact, so the cache is pure).
func (o *optimizer) identifyDC(tt, care logic.TT) (compare.Spec, bool) {
	key := dcKey{f: tt.Key(), care: care.Key()}
	if r, ok := o.dcCache.Get(key); ok {
		mCacheHits.Inc()
		return r.spec, r.ok
	}
	spec, ok := compare.IdentifyDC(tt, care)
	o.dcCache.Set(key, cachedSpec{spec, ok})
	return spec, ok
}

// identifyAll memoizes the alternative-realization enumeration (MaxSpecs is
// constant for the run, so the truth table alone keys it).
func (o *optimizer) identifyAll(tt logic.TT) []compare.Spec {
	key := tt.Key()
	if specs, ok := o.allCache.Get(key); ok {
		mCacheHits.Inc()
		return specs
	}
	specs := compare.IdentifyAll(tt, o.opt.MaxSpecs)
	o.allCache.Set(key, specs)
	return specs
}

// apply builds the unit, rewires g's consumers to it and sweeps dead logic.
func (o *optimizer) apply(c *circuit.Circuit, cand *candidate) {
	gate := c.Nodes[cand.sub.Out].Name // captured before the rewire kills the node
	out := cand.spec.Build(c, cand.keepInputs, compare.BuildOptions{
		Merge:      o.opt.Merge,
		NamePrefix: fmt.Sprintf("cu%d_", cand.sub.Out),
	})
	if out == cand.sub.Out {
		return
	}
	c.ReplaceUses(cand.sub.Out, out)
	c.SweepDead()
	if o.opt.Certify {
		ev := ledger.Evidence{
			Pass: o.passNo,
			Gate: gate,
			Vars: cand.stt.Vars(),
			TT:   cand.stt.Hex(),
			Spec: ledger.SpecInfoOf(cand.spec),
		}
		if cand.hasCare {
			ev.Care = cand.care.Hex()
		}
		o.evidence = append(o.evidence, ev)
	}
}
