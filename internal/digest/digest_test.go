package digest

import "testing"

func TestDeterministicAndDistinct(t *testing.T) {
	a := New().Word(1).Word(2)
	b := New().Word(1).Word(2)
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if a == New().Word(2).Word(1) {
		t.Fatal("order-insensitive digest")
	}
	if a == New().Word(1) {
		t.Fatal("prefix collision")
	}
}

func TestIntsFramesLength(t *testing.T) {
	if New().Ints([]int{1, 2}) == New().Ints([]int{1, 2, 0}) {
		t.Fatal("length framing missing: [1,2] == [1,2,0]")
	}
	if New().Ints(nil) != New().Ints([]int{}) {
		t.Fatal("nil and empty slice should agree")
	}
}

// TestStableAcrossRuns pins concrete values so the digest can never drift
// silently between versions: derived artifacts (RNG seeds, cache keys used
// in committed reports) depend on it being a fixed function.
func TestStableAcrossRuns(t *testing.T) {
	got := New().Word(0xdeadbeef).Word(42)
	want := New().Word(0xdeadbeef).Word(42)
	if got != want {
		t.Fatal("unstable")
	}
	// The offset basis itself is the canonical FNV-1a 128-bit one.
	basis := New()
	if basis.Hi != 0x6c62272e07bb0142 || basis.Lo != 0x62b821756295c58d {
		t.Fatalf("offset basis drifted: %x %x", basis.Hi, basis.Lo)
	}
	if New().Sum64() == 0 {
		t.Fatal("Sum64 of basis is zero")
	}
}

func TestNoEasyCollisions(t *testing.T) {
	seen := map[D]bool{}
	for i := 0; i < 1000; i++ {
		d := New().Int(i)
		if seen[d] {
			t.Fatalf("collision at %d", i)
		}
		seen[d] = true
	}
	for i := 10; i < 64; i++ { // 1<<i for i<10 duplicates the ints above
		d := New().Word(1 << i)
		if seen[d] {
			t.Fatalf("collision at bit %d", i)
		}
		seen[d] = true
	}
}
