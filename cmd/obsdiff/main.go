// Command obsdiff compares two observability artifacts — JSON run reports
// (-metrics-out) or bench baselines (BENCH_*.json) — and exits non-zero
// when any quantity regressed beyond tolerance. CI runs it against the
// committed baselines; see EXPERIMENTS.md for the recipe.
//
// Usage:
//
//	obsdiff [-tol f] [-tol-time f] [-tol-bench f] [-tol-alloc f]
//	        [-metric name=f]... [-all] [-json] BEFORE AFTER
//
// Tolerances are relative fractions (0.1 = 10%). Exit status: 0 when every
// delta is within tolerance, 1 on regression, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"compsynth/internal/obsdiff"
)

func main() {
	opt := obsdiff.DefaultOptions()
	opt.PerMetric = map[string]float64{}
	flag.Float64Var(&opt.Tol, "tol", opt.Tol,
		"relative tolerance for deterministic quantities (counters, circuit stats)")
	flag.Float64Var(&opt.TolTime, "tol-time", opt.TolTime,
		"relative tolerance for wall-clock quantities (durations, span timings)")
	flag.Float64Var(&opt.TolBench, "tol-bench", opt.TolBench,
		"relative tolerance for benchmark ns/op, B/op and speedups")
	flag.Float64Var(&opt.TolAlloc, "tol-alloc", opt.TolAlloc,
		"relative tolerance for benchmark allocs/op (default 0: allocations may only fall)")
	flag.Func("metric", "per-quantity tolerance override, name=fraction (repeatable)", func(s string) error {
		name, frac, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=fraction, got %q", s)
		}
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil {
			return err
		}
		opt.PerMetric[name] = f
		return nil
	})
	all := flag.Bool("all", false, "print every delta, not only regressions")
	asJSON := flag.Bool("json", false, "emit the full diff as JSON")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [flags] BEFORE AFTER")
		flag.PrintDefaults()
		os.Exit(2)
	}

	res, err := obsdiff.DiffFiles(flag.Arg(0), flag.Arg(1), opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
			os.Exit(2)
		}
	} else {
		res.Format(os.Stdout, *all)
	}
	if len(res.Regressions()) > 0 {
		os.Exit(1)
	}
}
