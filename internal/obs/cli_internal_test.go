package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestStartTelemetryNotLinked pins the error a command gets when -listen is
// given but the telemetry package was not blank-imported. The test binary
// does link it (the external tests import it), so the registered starter is
// saved and restored around the check; tests in one package run
// sequentially, so the swap is race-free.
func TestStartTelemetryNotLinked(t *testing.T) {
	saved := telemetryStart
	telemetryStart = nil
	defer func() { telemetryStart = saved }()
	f := &Flags{Listen: "127.0.0.1:0"}
	if _, err := f.start("x"); err == nil || !strings.Contains(err.Error(), "not linked in") {
		t.Fatalf("start with unlinked telemetry: err = %v, want 'not linked in'", err)
	}
}

// TestStartEventsOpenError pins that an -events file that cannot be created
// fails Start (the shell wrapper reports it and exits 2) instead of running
// without the requested artifact.
func TestStartEventsOpenError(t *testing.T) {
	f := &Flags{Events: filepath.Join(t.TempDir(), "no-such-dir", "ev.ndjson")}
	if _, err := f.start("x"); err == nil || !strings.Contains(err.Error(), "-events") {
		t.Fatalf("start with uncreatable events file: err = %v, want '-events' error", err)
	}
}

// TestStartBadListenAddr exercises the real telemetry starter's bind-failure
// path through start (the external tests link the server in).
func TestStartBadListenAddr(t *testing.T) {
	if telemetryStart == nil {
		t.Skip("telemetry not linked")
	}
	f := &Flags{Listen: "127.0.0.1:notaport"}
	if _, err := f.start("x"); err == nil || !strings.Contains(err.Error(), "-listen") {
		t.Fatalf("start with bad listen addr: err = %v, want '-listen' error", err)
	}
}

// TestHistogramBuckets pins the cumulative-bucket computation on the
// snapshot: counts are nondecreasing over DefaultBucketBounds, and values
// past the last bound appear only in the implicit +Inf bucket (== Count).
func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("b")
	for _, v := range []float64{0.5, 1, 2, 30, 2e6} {
		h.Observe(v)
	}
	s := m.Snapshot().Histograms["b"]
	if len(s.Buckets) != len(DefaultBucketBounds) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(DefaultBucketBounds))
	}
	want := map[float64]int64{1: 2, 2.5: 3, 25: 3, 50: 4, 1e6: 4}
	for i, b := range s.Buckets {
		if b.LE != DefaultBucketBounds[i] {
			t.Errorf("bucket %d LE = %v, want %v", i, b.LE, DefaultBucketBounds[i])
		}
		if i > 0 && b.Count < s.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative at %v: %v < %v", b.LE, b.Count, s.Buckets[i-1].Count)
		}
		if w, ok := want[b.LE]; ok && b.Count != w {
			t.Errorf("bucket le=%v count = %d, want %d", b.LE, b.Count, w)
		}
	}
	// 2e6 lies beyond the last bound: only Count (the implicit +Inf bucket)
	// sees it.
	if last := s.Buckets[len(s.Buckets)-1]; last.Count != 4 || s.Count != 5 {
		t.Errorf("last bucket %v / count %d, want 4 / 5", last, s.Count)
	}
}

// TestHistogramSnapshotDiff pins that a histogram observed before the base
// snapshot still appears (with its full stats) in the diff — histograms are
// carried by the later snapshot, not subtracted.
func TestHistogramSnapshotDiff(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat")
	h.Observe(10)
	base := m.Snapshot()
	h.Observe(30)
	d := m.Snapshot().Diff(base)
	hs, ok := d.Histograms["lat"]
	if !ok {
		t.Fatal("observed histogram missing from diff")
	}
	if hs.Count != 2 || hs.Sum != 40 || hs.Max != 30 {
		t.Errorf("diff histogram = %+v, want count=2 sum=40 max=30", hs)
	}
	if len(hs.Buckets) == 0 {
		t.Error("diff histogram lost its buckets")
	}
}
